package seqavf_test

import (
	"fmt"
	"log"

	"seqavf"
)

// Example resolves the paper's Table 1 "simple pipeline" case: every
// latch between a read port and a write port gets
// MIN(pAVF_R(S1), pAVF_W(S2)).
func Example() {
	d := seqavf.NewDesign("pipe")
	d.AddStructure("S1", 8, 8)
	d.AddStructure("S2", 8, 8)
	m := d.AddModule("m")
	b := seqavf.Build(m)
	out := b.Pipe("q", 8, 3, b.SRead("rd", 8, "S1", "rd"))
	b.SWrite("wr", "S2", "wr", out)
	d.AddFub("F", "m")

	fd, err := seqavf.Flatten(d)
	if err != nil {
		log.Fatal(err)
	}
	g, err := seqavf.BuildGraph(fd)
	if err != nil {
		log.Fatal(err)
	}
	a, err := seqavf.NewAnalyzer(g, seqavf.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	in := seqavf.NewInputs()
	in.ReadPorts[seqavf.StructPort{Struct: "S1", Port: "rd"}] = 0.40
	in.WritePorts[seqavf.StructPort{Struct: "S2", Port: "wr"}] = 0.25
	res, err := a.Solve(in)
	if err != nil {
		log.Fatal(err)
	}
	v, _, _ := g.VertexBase("F", "q_2")
	fmt.Printf("AVF(q_2) = %.2f\n", res.AVF[v])
	fmt.Printf("equation: %s\n", res.Equation(v))
	// Output:
	// AVF(q_2) = 0.25
	// equation: MIN(pAVF_R(S1.rd), pAVF_W(S2.wr))
}

// ExampleResult_Reevaluate shows the §5.1 closed-form payoff: new
// measurements plug into the resolved equations without re-walking.
func ExampleResult_Reevaluate() {
	d := seqavf.NewDesign("pipe")
	d.AddStructure("S1", 8, 8)
	d.AddStructure("S2", 8, 8)
	m := d.AddModule("m")
	b := seqavf.Build(m)
	b.SWrite("wr", "S2", "wr", b.Pipe("q", 8, 2, b.SRead("rd", 8, "S1", "rd")))
	d.AddFub("F", "m")
	fd, _ := seqavf.Flatten(d)
	g, _ := seqavf.BuildGraph(fd)
	a, _ := seqavf.NewAnalyzer(g, seqavf.DefaultOptions())

	in := seqavf.NewInputs()
	in.ReadPorts[seqavf.StructPort{Struct: "S1", Port: "rd"}] = 0.40
	in.WritePorts[seqavf.StructPort{Struct: "S2", Port: "wr"}] = 0.25
	res, _ := a.Solve(in)
	v, _, _ := g.VertexBase("F", "q_1")
	fmt.Printf("busy workload:  %.2f\n", res.AVF[v])

	in.ReadPorts[seqavf.StructPort{Struct: "S1", Port: "rd"}] = 0.05
	if err := res.Reevaluate(in); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quiet workload: %.2f\n", res.AVF[v])
	// Output:
	// busy workload:  0.25
	// quiet workload: 0.05
}

// ExampleRunPerfModel measures port AVFs with the bundled
// ACE-instrumented performance model.
func ExampleRunPerfModel() {
	res, err := seqavf.RunPerfModel(seqavf.MD5Workload(100), seqavf.DefaultPerfConfig())
	if err != nil {
		log.Fatal(err)
	}
	// The register-only kernel produces no ACE cache traffic.
	fmt.Printf("DCache.ld pAVF: %.2f\n", res.Report.ReadPorts["DCache.ld"])
	fmt.Printf("halted with %d outputs\n", len(res.Out))
	// Output:
	// DCache.ld pAVF: 0.00
	// halted with 4 outputs
}
