# Developer entry points. `make ci` is the tier-1 gate recorded in
# ROADMAP.md: vet, build, and the full test suite under the race
# detector must all pass before a change lands.

GO ?= go

.PHONY: all build vet test race bench fuzz-smoke cover run-seqavfd run-fleet-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -shuffle=on randomizes test order so inter-test state dependencies
# surface in CI instead of in the field.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Short coverage-guided runs of the native fuzz targets (Go allows one
# -fuzz target per invocation, hence one line each).
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzParsePavfTable -fuzztime=10s ./cmd/internal/cliutil/
	$(GO) test -run=^$$ -fuzz=FuzzParseIntervalTable -fuzztime=10s ./internal/pavfio/
	$(GO) test -run=^$$ -fuzz=FuzzCompilePlan -fuzztime=10s ./internal/sweep/
	$(GO) test -run=^$$ -fuzz=FuzzEnvMatrix -fuzztime=10s ./internal/sweep/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeArtifact -fuzztime=10s ./internal/artifact/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeFUBState -fuzztime=10s ./internal/artifact/
	$(GO) test -run=^$$ -fuzz=FuzzParseReplicaList -fuzztime=10s ./internal/fleet/
	$(GO) test -run=^$$ -fuzz=FuzzMergeExposition -fuzztime=10s ./internal/fleet/
	$(GO) test -run=^$$ -fuzz=FuzzParseHardenRequest -fuzztime=10s ./internal/harden/

# Coverage floors on the numerical core (solver, sweep engine, pAVF
# closed forms); see scripts/cover.sh for the gated packages and
# thresholds.
cover:
	GO=$(GO) ./scripts/cover.sh

# End-to-end smoke of the sweep service: generate a design, start
# seqavfd, probe /healthz, run one sweep, then SIGTERM it.
run-seqavfd: build
	./scripts/seqavfd_smoke.sh

# End-to-end smoke of the sweep fleet: 3 replicas with cross-wired
# artifact peers behind seqavf-gateway, a routed sweep, the merged
# /metrics, and a rolling restart that warm-starts over the remote
# artifact tier.
run-fleet-smoke: build
	./scripts/fleet_smoke.sh

ci: vet build race cover fuzz-smoke
