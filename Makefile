# Developer entry points. `make ci` is the tier-1 gate recorded in
# ROADMAP.md: vet, build, and the full test suite under the race
# detector must all pass before a change lands.

GO ?= go

.PHONY: all build vet test race bench fuzz-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Short coverage-guided runs of the native fuzz targets (Go allows one
# -fuzz target per invocation, hence two).
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzParsePavfTable -fuzztime=10s ./cmd/internal/cliutil/
	$(GO) test -run=^$$ -fuzz=FuzzCompilePlan -fuzztime=10s ./internal/sweep/

ci: vet build race fuzz-smoke
