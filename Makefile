# Developer entry points. `make ci` is the tier-1 gate recorded in
# ROADMAP.md: vet, build, and the full test suite under the race
# detector must all pass before a change lands.

GO ?= go

.PHONY: all build vet test race bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

ci: vet build race
