// Package cells generates common RTL building blocks into netlist
// modules: FIFOs, one-hot FSMs, arbiters, Gray counters and LFSRs. These
// are the idioms the paper's §4.3 loop discussion names — "stall loops,
// head and tail pointer update loops and so forth" — provided both so the
// synthetic design generator can emit realistic feedback structure and so
// the analysis can be tested against functionally verified circuits.
//
// Every generator writes into an existing netlist.Builder with a unique
// name prefix and returns the names of its interface signals.
package cells

import (
	"fmt"

	"seqavf/internal/netlist"
)

// FIFO is the interface of a generated FIFO queue.
type FIFO struct {
	// Out is the head entry (valid when Empty is 0).
	Out string
	// Empty / Full are status flags.
	Empty string
	Full  string
	// Prefix names the cell instance (slot/pointer nodes start with it).
	Prefix string
	Depth  int
}

// NewFIFO generates a depth-entry FIFO (depth must be a power of two,
// >= 2) of the given width. din is the data input; push and pop are
// 1-bit controls (a push while full or a pop while empty is ignored).
// The head/tail pointers and the recirculating storage slots all form
// feedback loops — exactly the structures SART's loop-boundary treatment
// exists for.
func NewFIFO(b *netlist.Builder, prefix string, depth, width int, din, push, pop string) (*FIFO, error) {
	if depth < 2 || depth&(depth-1) != 0 {
		return nil, fmt.Errorf("cells: FIFO depth %d not a power of two >= 2", depth)
	}
	if width < 1 {
		return nil, fmt.Errorf("cells: FIFO width %d", width)
	}
	pbits := 1
	for 1<<pbits < depth {
		pbits++
	}
	pbits++ // wrap bit distinguishes full from empty
	n := func(s string) string { return prefix + "_" + s }

	one := b.Const(n("one"), pbits, 1)
	head := n("head")
	tail := n("tail")
	b.M.Add(&netlist.Node{Name: head, Kind: netlist.KindSeq, Width: pbits, Inputs: []string{n("head_next")}})
	b.M.Add(&netlist.Node{Name: tail, Kind: netlist.KindSeq, Width: pbits, Inputs: []string{n("tail_next")}})

	empty := b.C(n("empty"), 1, netlist.OpEq, head, tail)
	wrapMask := b.Const(n("wrapbit"), pbits, uint64(depth))
	headInv := b.C(n("head_wr"), pbits, netlist.OpXor, head, wrapMask)
	full := b.C(n("full"), 1, netlist.OpEq, headInv, tail)

	notFull := b.C(n("nfull"), 1, netlist.OpNot, full)
	notEmpty := b.C(n("nempty"), 1, netlist.OpNot, empty)
	doPush := b.C(n("do_push"), 1, netlist.OpAnd, push, notFull)
	doPop := b.C(n("do_pop"), 1, netlist.OpAnd, pop, notEmpty)

	b.C(n("tail_inc"), pbits, netlist.OpAdd, tail, one)
	b.Mux(n("tail_next"), pbits, doPush, tail, n("tail_inc"))
	b.C(n("head_inc"), pbits, netlist.OpAdd, head, one)
	b.Mux(n("head_next"), pbits, doPop, head, n("head_inc"))

	// Index views (wrap bit stripped).
	idxBits := pbits - 1
	tailIdx := b.Select(n("tail_idx"), idxBits, tail, 0)
	headIdx := b.Select(n("head_idx"), idxBits, head, 0)

	// Storage slots with recirculation muxes.
	var slots []string
	for i := 0; i < depth; i++ {
		slot := n(fmt.Sprintf("slot%d", i))
		iconst := b.Const(n(fmt.Sprintf("c%d", i)), idxBits, uint64(i))
		hit := b.C(n(fmt.Sprintf("tl_is%d", i)), 1, netlist.OpEq, tailIdx, iconst)
		wr := b.C(n(fmt.Sprintf("wr%d", i)), 1, netlist.OpAnd, doPush, hit)
		b.M.Add(&netlist.Node{Name: slot, Kind: netlist.KindSeq, Width: width,
			Inputs: []string{n(fmt.Sprintf("slot%d_next", i))}})
		b.Mux(n(fmt.Sprintf("slot%d_next", i)), width, wr, slot, din)
		slots = append(slots, slot)
	}
	// Head-entry mux tree.
	out := slots[0]
	for i := 1; i < depth; i++ {
		iconst := n(fmt.Sprintf("c%d", i))
		sel := b.C(n(fmt.Sprintf("hd_is%d", i)), 1, netlist.OpEq, headIdx, iconst)
		out = b.Mux(n(fmt.Sprintf("rd%d", i)), width, sel, out, slots[i])
	}
	dout := b.C(n("out"), width, netlist.OpPass, out)
	return &FIFO{Out: dout, Empty: empty, Full: full, Prefix: prefix, Depth: depth}, nil
}

// NewOneHotFSM generates an n-state one-hot ring FSM that advances when
// advance is 1, returning the per-state strobe signals. State 0 is the
// reset state. Each state bit recirculates — n coupled loop nodes.
func NewOneHotFSM(b *netlist.Builder, prefix string, n int, advance string) ([]string, error) {
	if n < 2 {
		return nil, fmt.Errorf("cells: FSM needs >= 2 states")
	}
	name := func(s string) string { return prefix + "_" + s }
	states := make([]string, n)
	for i := 0; i < n; i++ {
		init := uint64(0)
		if i == 0 {
			init = 1
		}
		states[i] = name(fmt.Sprintf("s%d", i))
		b.M.Add(&netlist.Node{Name: states[i], Kind: netlist.KindSeq, Width: 1,
			Inputs: []string{name(fmt.Sprintf("s%d_next", i))}, Init: init})
	}
	for i := 0; i < n; i++ {
		prev := states[(i+n-1)%n]
		b.Mux(name(fmt.Sprintf("s%d_next", i)), 1, advance, states[i], prev)
	}
	return states, nil
}

// NewTDMArbiter generates a time-division arbiter over the request lines:
// a free-running pointer visits each requester in turn and grants it when
// it is requesting. Returns the one-hot grant signals. (A strict
// round-robin would skip idle requesters; TDM keeps the logic compact
// while still producing the pointer-update loop the analysis cares
// about.)
func NewTDMArbiter(b *netlist.Builder, prefix string, reqs []string) ([]string, error) {
	n := len(reqs)
	if n < 2 || n > 64 {
		return nil, fmt.Errorf("cells: arbiter needs 2..64 requesters, got %d", n)
	}
	pbits := 1
	for 1<<pbits < n {
		pbits++
	}
	name := func(s string) string { return prefix + "_" + s }
	ptr := name("ptr")
	b.M.Add(&netlist.Node{Name: ptr, Kind: netlist.KindSeq, Width: pbits, Inputs: []string{name("ptr_next")}})
	one := b.Const(name("one"), pbits, 1)
	inc := b.C(name("inc"), pbits, netlist.OpAdd, ptr, one)
	if n == 1<<pbits {
		b.C(name("ptr_next"), pbits, netlist.OpPass, inc)
	} else {
		// Wrap at n for non-power-of-two requester counts.
		lim := b.Const(name("lim"), pbits, uint64(n))
		atLim := b.C(name("at_lim"), 1, netlist.OpEq, inc, lim)
		zero := b.Const(name("zero"), pbits, 0)
		b.Mux(name("ptr_next"), pbits, atLim, inc, zero)
	}
	grants := make([]string, n)
	for i := 0; i < n; i++ {
		iconst := b.Const(name(fmt.Sprintf("c%d", i)), pbits, uint64(i))
		sel := b.C(name(fmt.Sprintf("sel%d", i)), 1, netlist.OpEq, ptr, iconst)
		grants[i] = b.C(name(fmt.Sprintf("gnt%d", i)), 1, netlist.OpAnd, sel, reqs[i])
	}
	return grants, nil
}

// NewGrayCounter generates a width-bit Gray-code counter advancing when
// en is 1, returning the Gray output signal. The binary core is a loop;
// Gray outputs are glitch-free sequence labels (FIFO pointers in real
// designs cross clock domains this way).
func NewGrayCounter(b *netlist.Builder, prefix string, width int, en string) (string, error) {
	if width < 2 || width > 63 {
		return "", fmt.Errorf("cells: gray counter width %d out of range", width)
	}
	name := func(s string) string { return prefix + "_" + s }
	bin := name("bin")
	b.M.Add(&netlist.Node{Name: bin, Kind: netlist.KindSeq, Width: width, Inputs: []string{name("bin_next")}})
	one := b.Const(name("one"), width, 1)
	inc := b.C(name("inc"), width, netlist.OpAdd, bin, one)
	b.Mux(name("bin_next"), width, en, bin, inc)
	shifted := b.CP(name("shr1"), width, netlist.OpShrK, 1, bin)
	return b.C(name("gray"), width, netlist.OpXor, bin, shifted), nil
}

// lfsrTaps lists maximal-length Fibonacci LFSR tap positions (1-based,
// per the standard XAPP052 table) for widths 2..32.
var lfsrTaps = map[int][]int{
	2: {2, 1}, 3: {3, 2}, 4: {4, 3}, 5: {5, 3}, 6: {6, 5}, 7: {7, 6},
	8: {8, 6, 5, 4}, 9: {9, 5}, 10: {10, 7}, 11: {11, 9},
	12: {12, 6, 4, 1}, 13: {13, 4, 3, 1}, 14: {14, 5, 3, 1}, 15: {15, 14},
	16: {16, 15, 13, 4}, 17: {17, 14}, 18: {18, 11}, 19: {19, 6, 2, 1},
	20: {20, 17}, 21: {21, 19}, 22: {22, 21}, 23: {23, 18},
	24: {24, 23, 22, 17}, 25: {25, 22}, 26: {26, 6, 2, 1}, 27: {27, 5, 2, 1},
	28: {28, 25}, 29: {29, 27}, 30: {30, 6, 4, 1}, 31: {31, 28},
	32: {32, 22, 2, 1},
}

// NewLFSR generates a maximal-length Fibonacci LFSR of the given width
// (2..32), returning the register output. The feedback is the
// random-logic loop archetype.
func NewLFSR(b *netlist.Builder, prefix string, width int, init uint64) (string, error) {
	taps, ok := lfsrTaps[width]
	if !ok {
		return "", fmt.Errorf("cells: LFSR width %d out of range [2,32]", width)
	}
	if init == 0 {
		init = 1 // all-zero state is absorbing
	}
	name := func(s string) string { return prefix + "_" + s }
	reg := name("reg")
	b.M.Add(&netlist.Node{Name: reg, Kind: netlist.KindSeq, Width: width,
		Inputs: []string{name("next")}, Init: init & (1<<uint(width) - 1)})
	fb := b.Select(name("tap0"), 1, reg, taps[0]-1)
	for i := 1; i < len(taps); i++ {
		bit := b.Select(name(fmt.Sprintf("tap%d", i)), 1, reg, taps[i]-1)
		fb = b.C(name(fmt.Sprintf("fb%d", i)), 1, netlist.OpXor, fb, bit)
	}
	low := b.Select(name("low"), width-1, reg, 0)
	b.C(name("next"), width, netlist.OpConcat, fb, low)
	return reg, nil
}
