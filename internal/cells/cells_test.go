package cells

import (
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/rtlsim"
)

// harness builds a single-FUB design around a cell and instantiates the
// simulator with external inputs.
type harness struct {
	t *testing.T
	d *netlist.Design
	b *netlist.Builder
}

func newHarness(t *testing.T) *harness {
	d := netlist.NewDesign("cells")
	m := d.AddModule("m")
	return &harness{t: t, d: d, b: netlist.Build(m)}
}

func (h *harness) sim() *rtlsim.Sim {
	h.t.Helper()
	h.d.AddFub("F", "m")
	if err := h.d.Validate(); err != nil {
		h.t.Fatalf("Validate: %v", err)
	}
	fd, err := netlist.Flatten(h.d)
	if err != nil {
		h.t.Fatalf("Flatten: %v", err)
	}
	s, err := rtlsim.New(fd, nil)
	if err != nil {
		h.t.Fatalf("rtlsim.New: %v", err)
	}
	return s
}

func set(t *testing.T, s *rtlsim.Sim, port string, v uint64) {
	t.Helper()
	if err := s.SetInput("F", port, v); err != nil {
		t.Fatal(err)
	}
}

func val(t *testing.T, s *rtlsim.Sim, node string) uint64 {
	t.Helper()
	v, err := s.Value("F", node)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestFIFOQueueSemantics(t *testing.T) {
	h := newHarness(t)
	din := h.b.In("din", 8)
	push := h.b.In("push", 1)
	pop := h.b.In("pop", 1)
	f, err := NewFIFO(h.b, "q", 4, 8, din, push, pop)
	if err != nil {
		t.Fatal(err)
	}
	h.b.Out("o_out", 8, f.Out)
	h.b.Out("o_empty", 1, f.Empty)
	h.b.Out("o_full", 1, f.Full)
	s := h.sim()

	if val(t, s, "o_empty") != 1 || val(t, s, "o_full") != 0 {
		t.Fatal("fresh FIFO not empty")
	}
	// Push 4 values to full.
	for i := uint64(1); i <= 4; i++ {
		set(t, s, "din", i*11)
		set(t, s, "push", 1)
		set(t, s, "pop", 0)
		s.Settle()
		s.Step()
	}
	if val(t, s, "o_full") != 1 {
		t.Fatal("FIFO should be full after 4 pushes")
	}
	// A push while full is ignored.
	set(t, s, "din", 99)
	s.Settle()
	s.Step()
	if val(t, s, "o_out") != 11 {
		t.Fatalf("head = %d, want 11", val(t, s, "o_out"))
	}
	// Pop everything in order.
	set(t, s, "push", 0)
	set(t, s, "pop", 1)
	for i := uint64(1); i <= 4; i++ {
		s.Settle()
		if got := val(t, s, "o_out"); got != i*11 {
			t.Fatalf("FIFO order: got %d, want %d", got, i*11)
		}
		s.Step()
	}
	if val(t, s, "o_empty") != 1 {
		t.Fatal("FIFO should drain to empty")
	}
	// A pop while empty is ignored (no underflow).
	s.Settle()
	s.Step()
	if val(t, s, "o_empty") != 1 || val(t, s, "o_full") != 0 {
		t.Fatal("underflow corrupted state")
	}
}

func TestFIFOInterleavedPushPop(t *testing.T) {
	h := newHarness(t)
	din := h.b.In("din", 16)
	push := h.b.In("push", 1)
	pop := h.b.In("pop", 1)
	f, err := NewFIFO(h.b, "q", 8, 16, din, push, pop)
	if err != nil {
		t.Fatal(err)
	}
	h.b.Out("o_out", 16, f.Out)
	h.b.Out("o_empty", 1, f.Empty)
	s := h.sim()

	var model []uint64
	next := uint64(100)
	for step := 0; step < 200; step++ {
		doPush := step%3 != 0 && len(model) < 8
		doPop := step%2 == 0 && len(model) > 0
		if doPush {
			set(t, s, "din", next)
		}
		set(t, s, "push", b2u(doPush))
		set(t, s, "pop", b2u(doPop))
		s.Settle()
		if doPop {
			if got := val(t, s, "o_out"); got != model[0] {
				t.Fatalf("step %d: head %d, want %d", step, got, model[0])
			}
		}
		s.Step()
		if doPush {
			model = append(model, next)
			next++
		}
		if doPop {
			model = model[1:]
		}
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func TestFIFOValidation(t *testing.T) {
	h := newHarness(t)
	din := h.b.In("din", 8)
	if _, err := NewFIFO(h.b, "q", 3, 8, din, din, din); err == nil {
		t.Fatal("non-power-of-two depth accepted")
	}
	if _, err := NewFIFO(h.b, "q", 4, 0, din, din, din); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestOneHotFSMRotates(t *testing.T) {
	h := newHarness(t)
	adv := h.b.In("adv", 1)
	states, err := NewOneHotFSM(h.b, "fsm", 3, adv)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range states {
		h.b.Out(stateOut(i), 1, st)
	}
	s := h.sim()

	read := func() (got [3]uint64) {
		for i := range got {
			got[i] = val(t, s, stateOut(i))
		}
		return
	}
	if read() != [3]uint64{1, 0, 0} {
		t.Fatalf("reset state = %v", read())
	}
	set(t, s, "adv", 0)
	s.Settle()
	s.Step()
	if read() != [3]uint64{1, 0, 0} {
		t.Fatal("FSM advanced without enable")
	}
	set(t, s, "adv", 1)
	s.Settle()
	for _, want := range [][3]uint64{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}} {
		s.Step()
		if read() != want {
			t.Fatalf("FSM state = %v, want %v", read(), want)
		}
	}
	if _, err := NewOneHotFSM(h.b, "bad", 1, adv); err == nil {
		t.Fatal("single-state FSM accepted")
	}
}

func stateOut(i int) string {
	return []string{"s0o", "s1o", "s2o"}[i]
}

func TestTDMArbiterVisitsAll(t *testing.T) {
	h := newHarness(t)
	reqs := []string{h.b.In("r0", 1), h.b.In("r1", 1), h.b.In("r2", 1)}
	grants, err := NewTDMArbiter(h.b, "arb", reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range grants {
		h.b.Out([]string{"g0", "g1", "g2"}[i], 1, g)
	}
	s := h.sim()
	for _, r := range []string{"r0", "r1", "r2"} {
		set(t, s, r, 1)
	}
	s.Settle()
	counts := [3]int{}
	for step := 0; step < 9; step++ {
		granted := -1
		for i, g := range []string{"g0", "g1", "g2"} {
			if val(t, s, g) == 1 {
				if granted >= 0 {
					t.Fatal("multiple grants")
				}
				granted = i
			}
		}
		if granted < 0 {
			t.Fatal("no grant with all requesting")
		}
		counts[granted]++
		s.Step()
	}
	if counts != [3]int{3, 3, 3} {
		t.Fatalf("unfair grants: %v", counts)
	}
	// An idle requester is never granted.
	set(t, s, "r1", 0)
	s.Settle()
	for step := 0; step < 6; step++ {
		if val(t, s, "g1") == 1 {
			t.Fatal("granted idle requester")
		}
		s.Step()
	}
}

func TestGrayCounterUnitDistance(t *testing.T) {
	h := newHarness(t)
	en := h.b.In("en", 1)
	gray, err := NewGrayCounter(h.b, "gc", 4, en)
	if err != nil {
		t.Fatal(err)
	}
	h.b.Out("g", 4, gray)
	s := h.sim()
	set(t, s, "en", 1)
	s.Settle()
	prev := val(t, s, "g")
	seen := map[uint64]bool{prev: true}
	for i := 0; i < 15; i++ {
		s.Step()
		cur := val(t, s, "g")
		if popcount(prev^cur) != 1 {
			t.Fatalf("gray step changed %d bits (%#x -> %#x)", popcount(prev^cur), prev, cur)
		}
		if seen[cur] && i < 15 {
			t.Fatalf("gray sequence repeated early at %#x", cur)
		}
		seen[cur] = true
		prev = cur
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func TestLFSRPeriod(t *testing.T) {
	h := newHarness(t)
	reg, err := NewLFSR(h.b, "lfsr", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.b.Out("r", 8, reg)
	s := h.sim()
	start := val(t, s, "r")
	period := 0
	for i := 0; i < 1<<9; i++ {
		s.Step()
		period++
		if v := val(t, s, "r"); v == start {
			break
		}
		if v := val(t, s, "r"); v == 0 {
			t.Fatal("LFSR reached absorbing zero state")
		}
	}
	if period != 255 { // maximal for width 8
		t.Fatalf("LFSR period = %d, want 255", period)
	}
}

// TestCellsAreLoopNodes: the analysis classifies FIFO pointers, slots,
// FSM rings and counters as loop-boundary nodes — the §4.3 inventory.
func TestCellsAreLoopNodes(t *testing.T) {
	h := newHarness(t)
	din := h.b.In("din", 8)
	push := h.b.In("push", 1)
	pop := h.b.In("pop", 1)
	f, err := NewFIFO(h.b, "q", 4, 8, din, push, pop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOneHotFSM(h.b, "fsm", 3, push); err != nil {
		t.Fatal(err)
	}
	h.b.Out("o", 8, f.Out)
	h.d.AddFub("F", "m")
	if err := h.d.Validate(); err != nil {
		t.Fatal(err)
	}
	fd, err := netlist.Flatten(h.d)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(fd)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAnalyzer(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []string{"q_head", "q_tail", "q_slot0", "q_slot3", "fsm_s0", "fsm_s2"} {
		v, _, ok := g.VertexBase("F", node)
		if !ok {
			t.Fatalf("node %s missing", node)
		}
		if a.Role(v) != core.RoleLoop {
			t.Errorf("%s role = %v, want loop", node, a.Role(v))
		}
	}
}
