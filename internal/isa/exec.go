package isa

import "fmt"

// TraceEntry records one retired dynamic instruction for downstream
// analyses (ACE deadness, pipeline replay).
type TraceEntry struct {
	PC    uint32
	Instr Instr
	// Result is the value written to Rd (when WritesReg).
	Result uint32
	// Addr is the effective word address for LD/ST.
	Addr uint32
	// StoreVal is the value stored for ST.
	StoreVal uint32
	// Taken reports branch outcome.
	Taken bool
	// OutVal is the value emitted for OUT.
	OutVal uint32
}

// ExecResult is the outcome of an architectural run.
type ExecResult struct {
	// Out is the program-output stream — the SDC observation points.
	Out []uint32
	// Trace lists every retired instruction in order.
	Trace []TraceEntry
	// Halted is true when the program reached HLT (false: step limit).
	Halted bool
	// Regs is the final register file.
	Regs [16]uint32
	// Mem is the final data memory.
	Mem map[uint32]uint32
}

// DefaultMaxSteps bounds Exec when the program does not specify a budget.
const DefaultMaxSteps = 2_000_000

// Exec runs p on the architectural (ISA-level) reference machine. It is
// the golden model: the performance model and the gate-level core must
// both produce the same output stream.
func Exec(p *Program, maxSteps int) (*ExecResult, error) {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	res := &ExecResult{Mem: make(map[uint32]uint32, len(p.Data))}
	for a, v := range p.Data {
		res.Mem[a] = v
	}
	var regs [16]uint32
	pc := uint32(0)
	for step := 0; step < maxSteps; step++ {
		if int(pc) >= len(p.Code) {
			return nil, fmt.Errorf("isa: %s: pc %d ran off code (len %d)", p.Name, pc, len(p.Code))
		}
		in := p.Code[pc]
		te := TraceEntry{PC: pc, Instr: in}
		next := pc + 1
		a, b := regs[in.Ra], regs[in.Rb]
		switch in.Op {
		case NOP:
		case ADD:
			te.Result = a + b
		case SUB:
			te.Result = a - b
		case AND:
			te.Result = a & b
		case OR:
			te.Result = a | b
		case XOR:
			te.Result = a ^ b
		case SHL:
			te.Result = a << (b & 31)
		case SHR:
			te.Result = a >> (b & 31)
		case MUL:
			te.Result = a * b
		case ADDI:
			te.Result = a + uint32(in.Imm)
		case ANDI:
			te.Result = a & in.UImm()
		case ORI:
			te.Result = a | in.UImm()
		case XORI:
			te.Result = a ^ in.UImm()
		case LUI:
			te.Result = in.UImm() << 12
		case LD:
			te.Addr = a + uint32(in.Imm)
			te.Result = res.Mem[te.Addr]
		case ST:
			te.Addr = a + uint32(in.Imm)
			te.StoreVal = b
			res.Mem[te.Addr] = b
		case BEQ:
			te.Taken = a == b
		case BNE:
			te.Taken = a != b
		case JMP:
			te.Taken = true
		case OUT:
			te.OutVal = a
			res.Out = append(res.Out, a)
		case HLT:
			res.Trace = append(res.Trace, te)
			res.Halted = true
			res.Regs = regs
			return res, nil
		default:
			return nil, fmt.Errorf("isa: %s: invalid opcode %d at pc %d", p.Name, in.Op, pc)
		}
		if in.WritesReg() {
			regs[in.Rd] = te.Result
		}
		if te.Taken {
			next = uint32(int32(pc) + 1 + in.Imm)
		}
		res.Trace = append(res.Trace, te)
		pc = next
	}
	res.Regs = regs
	return res, nil
}

// ACEFlags computes, for each trace entry, whether the instruction was
// necessary for architecturally correct execution — the dynamic-deadness
// analysis the ACE model applies before attributing structure events.
//
// The analysis walks the trace backward maintaining live registers and
// live memory words. OUT is architecturally visible by definition;
// branches steer control and are treated as ACE; an ALU/load result is ACE
// only if its destination is consumed by a later ACE instruction before
// being overwritten (transitively dead code is un-ACE); a store is ACE
// only if the stored word is later loaded by an ACE consumer.
//
// If the program did not halt (trace truncated), everything still live at
// the cut is conservatively treated as consumed.
func ACEFlags(trace []TraceEntry, halted bool) []bool {
	flags := make([]bool, len(trace))
	var liveReg [16]bool
	liveMem := make(map[uint32]bool)
	if !halted {
		for i := range liveReg {
			liveReg[i] = true
		}
	}
	for i := len(trace) - 1; i >= 0; i-- {
		te := &trace[i]
		in := te.Instr
		ace := false
		switch {
		case in.Op == OUT:
			ace = true
		case in.Op == HLT || in.Op == NOP:
			ace = false
		case in.IsBranch():
			ace = true
		case in.Op == ST:
			if halted {
				ace = liveMem[te.Addr]
			} else {
				ace = true // truncated run: stored data may still matter
			}
			if ace {
				delete(liveMem, te.Addr)
			}
		case in.WritesReg():
			ace = liveReg[in.Rd]
			if ace {
				liveReg[in.Rd] = false
			}
		}
		flags[i] = ace
		if ace {
			if in.ReadsRa() && in.Ra != 0 {
				liveReg[in.Ra] = true
			}
			if in.ReadsRb() && in.Rb != 0 {
				liveReg[in.Rb] = true
			}
			if in.Op == LD {
				liveMem[te.Addr] = true
			}
		}
	}
	return flags
}
