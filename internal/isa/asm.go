package isa

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the textual assembly format, so workloads can be
// supplied to the tools as files rather than Go code:
//
//	; comment (also '#')
//	.data 10 1234          ; initialize data word: mem[10] = 1234
//	start:                 ; label
//	    addi r1, r0, 5
//	    ld   r2, r1, 3     ; r2 = mem[r1+3]
//	    st   r1, r2, 0     ; mem[r1+0] = r2  (st ra, rb, imm)
//	    bne  r1, r2, start
//	    out  r1
//	    hlt
//
// Register operands are r0..r15; immediates are decimal or 0x hex.

// ParseAsm assembles a program from the textual format.
func ParseAsm(name string, r io.Reader) (*Program, error) {
	b := NewBuilder(name)
	sc := bufio.NewScanner(r)
	lineNo := 0
	fail := func(format string, args ...any) error {
		return fmt.Errorf("isa: %s:%d: %s", name, lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			if i := strings.IndexByte(line, ':'); i >= 0 && !strings.ContainsAny(line[:i], " \t,") {
				b.Label(strings.TrimSpace(line[:i]))
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
		mn := strings.ToLower(fields[0])
		args := fields[1:]
		if mn == ".data" {
			if len(args) != 2 {
				return nil, fail(".data takes addr value")
			}
			addr, err1 := strconv.ParseUint(args[0], 0, 32)
			val, err2 := strconv.ParseUint(args[1], 0, 32)
			if err1 != nil || err2 != nil {
				return nil, fail("bad .data operands %q %q", args[0], args[1])
			}
			b.SetData(uint32(addr), uint32(val))
			continue
		}
		if err := assembleInstr(b, mn, args); err != nil {
			return nil, fail("%v", err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}

func assembleInstr(b *Builder, mn string, args []string) error {
	op := OpFromMnemonic(mn)
	if !op.Valid() && mn != "nop" {
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	reg := func(s string) (uint8, error) {
		if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
			return 0, fmt.Errorf("bad register %q", s)
		}
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n > 15 {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return uint8(n), nil
	}
	imm := func(s string) (int32, error) {
		v, err := strconv.ParseInt(s, 0, 32)
		if err != nil || v < -2048 || v > 4095 {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return int32(v), nil
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s takes %d operands, got %d", mn, n, len(args))
		}
		return nil
	}
	switch op {
	case NOP, HLT:
		if err := need(0); err != nil {
			return err
		}
		b.I(op, 0, 0, 0, 0)
	case ADD, SUB, AND, OR, XOR, SHL, SHR, MUL:
		if err := need(3); err != nil {
			return err
		}
		rd, e1 := reg(args[0])
		ra, e2 := reg(args[1])
		rb, e3 := reg(args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return firstErr(e1, e2, e3)
		}
		b.R(op, rd, ra, rb)
	case ADDI, ANDI, ORI, XORI, LD:
		if err := need(3); err != nil {
			return err
		}
		rd, e1 := reg(args[0])
		ra, e2 := reg(args[1])
		iv, e3 := imm(args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return firstErr(e1, e2, e3)
		}
		b.I(op, rd, ra, 0, iv)
	case LUI:
		if err := need(2); err != nil {
			return err
		}
		rd, e1 := reg(args[0])
		iv, e2 := imm(args[1])
		if e1 != nil || e2 != nil {
			return firstErr(e1, e2)
		}
		b.Imm(LUI, rd, 0, iv)
	case ST:
		// st ra, rb, imm : mem[ra+imm] = rb
		if err := need(3); err != nil {
			return err
		}
		ra, e1 := reg(args[0])
		rb, e2 := reg(args[1])
		iv, e3 := imm(args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return firstErr(e1, e2, e3)
		}
		b.I(ST, 0, ra, rb, iv)
	case BEQ, BNE:
		if err := need(3); err != nil {
			return err
		}
		ra, e1 := reg(args[0])
		rb, e2 := reg(args[1])
		if e1 != nil || e2 != nil {
			return firstErr(e1, e2)
		}
		b.Branch(op, ra, rb, args[2])
	case JMP:
		if err := need(1); err != nil {
			return err
		}
		b.Jump(args[0])
	case OUT:
		if err := need(1); err != nil {
			return err
		}
		ra, err := reg(args[0])
		if err != nil {
			return err
		}
		b.Out(ra)
	default:
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// OpFromMnemonic maps an assembly mnemonic to its opcode (NOP for
// unknown; check Valid or compare against the mnemonic).
func OpFromMnemonic(mn string) Op {
	for op := NOP; op < numOps; op++ {
		if op.String() == mn {
			return op
		}
	}
	return numOps // invalid
}

// WriteAsm disassembles a program into the textual format (data section
// first, then code; branch targets are emitted as explicit offsets since
// original labels are not retained).
func WriteAsm(w io.Writer, p *Program) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; %s\n", p.Name)
	addrs := make([]uint32, 0, len(p.Data))
	for a := range p.Data {
		addrs = append(addrs, a)
	}
	for i := 1; i < len(addrs); i++ {
		for j := i; j > 0 && addrs[j] < addrs[j-1]; j-- {
			addrs[j], addrs[j-1] = addrs[j-1], addrs[j]
		}
	}
	for _, a := range addrs {
		fmt.Fprintf(bw, ".data %d %d\n", a, p.Data[a])
	}
	for pc, in := range p.Code {
		// Branch offsets become explicit labels so the output
		// reassembles with ParseAsm.
		switch in.Op {
		case BEQ, BNE:
			fmt.Fprintf(bw, "L%d: %s r%d, r%d, L%d\n", pc, in.Op, in.Ra, in.Rb, pc+1+int(in.Imm))
		case JMP:
			fmt.Fprintf(bw, "L%d: jmp L%d\n", pc, pc+1+int(in.Imm))
		case ST:
			fmt.Fprintf(bw, "L%d: st r%d, r%d, %d\n", pc, in.Ra, in.Rb, in.Imm)
		case LD:
			fmt.Fprintf(bw, "L%d: ld r%d, r%d, %d\n", pc, in.Rd, in.Ra, in.Imm)
		case LUI:
			fmt.Fprintf(bw, "L%d: lui r%d, %d\n", pc, in.Rd, in.Imm)
		case ADDI, ANDI, ORI, XORI:
			fmt.Fprintf(bw, "L%d: %s r%d, r%d, %d\n", pc, in.Op, in.Rd, in.Ra, in.Imm)
		case OUT:
			fmt.Fprintf(bw, "L%d: out r%d\n", pc, in.Ra)
		case NOP, HLT:
			fmt.Fprintf(bw, "L%d: %s\n", pc, in.Op)
		default:
			fmt.Fprintf(bw, "L%d: %s r%d, r%d, r%d\n", pc, in.Op, in.Rd, in.Ra, in.Rb)
		}
	}
	return bw.Flush()
}
