package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, ra, rb uint8, imm int16) bool {
		i := Instr{
			Op: Op(op % uint8(numOps)),
			Rd: rd & 0xF, Ra: ra & 0xF, Rb: rb & 0xF,
			Imm: int32(imm) % 2048,
		}
		got := Decode(i.Encode())
		return got == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSignExtension(t *testing.T) {
	i := Instr{Op: ADDI, Rd: 1, Ra: 2, Imm: -1}
	d := Decode(i.Encode())
	if d.Imm != -1 {
		t.Fatalf("imm = %d, want -1", d.Imm)
	}
	if d.UImm() != 0xFFF {
		t.Fatalf("UImm = %#x", d.UImm())
	}
}

func TestExecSimpleArithmetic(t *testing.T) {
	p := NewBuilder("arith").
		Imm(ADDI, 1, 0, 5).
		Imm(ADDI, 2, 0, 7).
		R(ADD, 3, 1, 2).
		R(MUL, 4, 3, 1).
		Out(3).Out(4).
		Halt().
		MustBuild()
	res, err := Exec(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if len(res.Out) != 2 || res.Out[0] != 12 || res.Out[1] != 60 {
		t.Fatalf("out = %v", res.Out)
	}
}

func TestExecR0IsZero(t *testing.T) {
	p := NewBuilder("r0").
		Imm(ADDI, 0, 0, 99). // write to r0 is discarded
		Out(0).
		Halt().MustBuild()
	res, err := Exec(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Out[0] != 0 {
		t.Fatalf("r0 = %d, want 0", res.Out[0])
	}
}

func TestExecLoadStoreAndLoop(t *testing.T) {
	// Sum mem[0..4] with a countdown loop.
	b := NewBuilder("sum")
	for i := uint32(0); i < 5; i++ {
		b.SetData(i, i+10)
	}
	b.Imm(ADDI, 1, 0, 0). // sum
				Imm(ADDI, 2, 0, 0). // index
				Imm(ADDI, 3, 0, 5). // limit
				Label("loop").
				I(LD, 4, 2, 0, 0). // r4 = mem[r2]
				R(ADD, 1, 1, 4).
				Imm(ADDI, 2, 2, 1).
				Branch(BNE, 2, 3, "loop").
				Out(1).
				Halt()
	p := b.MustBuild()
	res, err := Exec(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Out[0] != 10+11+12+13+14 {
		t.Fatalf("sum = %d", res.Out[0])
	}
}

func TestExecBranchNotTaken(t *testing.T) {
	p := NewBuilder("bnt").
		Imm(ADDI, 1, 0, 1).
		Branch(BEQ, 1, 0, "skip"). // not taken
		Out(1).
		Label("skip").
		Halt().MustBuild()
	res, err := Exec(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out) != 1 {
		t.Fatalf("out = %v", res.Out)
	}
}

func TestExecRunsOffCode(t *testing.T) {
	p := &Program{Name: "off", Code: []Instr{{Op: NOP}}}
	if _, err := Exec(p, 0); err == nil {
		t.Fatal("expected run-off error")
	}
}

func TestExecStepLimit(t *testing.T) {
	p := NewBuilder("spin").Label("l").Jump("l").MustBuild()
	res, err := Exec(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Fatal("spin loop should not halt")
	}
	if len(res.Trace) != 100 {
		t.Fatalf("trace len = %d", len(res.Trace))
	}
}

func TestLoadConst(t *testing.T) {
	for _, v := range []uint32{0, 1, 0x7FF, 0x800, 0xFFF, 0x1000, 0xABCDE, 0xFFFFFF} {
		p := NewBuilder("lc").LoadConst(5, v).Out(5).Halt().MustBuild()
		res, err := Exec(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Out[0] != v {
			t.Fatalf("LoadConst(%#x) produced %#x", v, res.Out[0])
		}
	}
	if _, err := NewBuilder("big").LoadConst(1, 1<<24).Halt().Build(); err == nil {
		t.Fatal("LoadConst should reject >= 2^24")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("x").Jump("nowhere").Build(); err == nil {
		t.Fatal("undefined label accepted")
	}
	if _, err := NewBuilder("x").Label("a").Label("a").Build(); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestACEFlagsDeadCode(t *testing.T) {
	p := NewBuilder("dead").
		Imm(ADDI, 1, 0, 5). // ACE: feeds OUT
		Imm(ADDI, 2, 0, 6). // dead: overwritten below before any read
		Imm(ADDI, 2, 0, 7). // ACE: feeds r3
		R(ADD, 3, 1, 2).    // ACE
		Imm(ADDI, 4, 0, 9). // dead: never read
		Out(3).
		Halt().MustBuild()
	res, err := Exec(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	flags := ACEFlags(res.Trace, res.Halted)
	want := []bool{true, false, true, true, false, true, false} // ..., OUT, HLT
	if len(flags) != len(want) {
		t.Fatalf("flags len = %d", len(flags))
	}
	for i := range want {
		if flags[i] != want[i] {
			t.Fatalf("flag[%d] (%v) = %v, want %v", i, res.Trace[i].Instr, flags[i], want[i])
		}
	}
}

func TestACEFlagsTransitiveDeadness(t *testing.T) {
	p := NewBuilder("trans").
		Imm(ADDI, 1, 0, 1). // feeds r2 which is dead => transitively dead
		R(ADD, 2, 1, 1).    // dead: r2 never consumed
		Imm(ADDI, 3, 0, 3). // ACE
		Out(3).
		Halt().MustBuild()
	res, _ := Exec(p, 0)
	flags := ACEFlags(res.Trace, res.Halted)
	if flags[0] || flags[1] {
		t.Fatalf("transitively dead chain marked ACE: %v", flags)
	}
	if !flags[2] {
		t.Fatal("live producer marked dead")
	}
}

func TestACEFlagsStoreLiveness(t *testing.T) {
	p := NewBuilder("mem").
		Imm(ADDI, 1, 0, 42).
		I(ST, 0, 0, 1, 10). // mem[10] = r1: ACE (loaded below)
		I(ST, 0, 0, 1, 11). // mem[11] = r1: dead (overwritten below, never loaded)
		I(ST, 0, 0, 0, 11). // mem[11] = 0: dead (never loaded)
		I(LD, 2, 0, 0, 10). // ACE
		Out(2).
		Halt().MustBuild()
	res, _ := Exec(p, 0)
	flags := ACEFlags(res.Trace, res.Halted)
	if !flags[1] {
		t.Fatal("consumed store marked dead")
	}
	if flags[2] || flags[3] {
		t.Fatalf("dead stores marked ACE: %v", flags)
	}
}

func TestACEFlagsTruncatedRunConservative(t *testing.T) {
	p := NewBuilder("trunc").
		Imm(ADDI, 1, 0, 5).
		I(ST, 0, 0, 1, 3).
		Label("l").Jump("l").MustBuild()
	res, err := Exec(p, 50)
	if err != nil {
		t.Fatal(err)
	}
	flags := ACEFlags(res.Trace, res.Halted)
	// With the run truncated, the write and store must stay conservative.
	if !flags[0] || !flags[1] {
		t.Fatalf("truncated run not conservative: %v", flags[:3])
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := map[string]Instr{
		"nop":            {Op: NOP},
		"add r1, r2, r3": {Op: ADD, Rd: 1, Ra: 2, Rb: 3},
		"addi r1, r0, 5": {Op: ADDI, Rd: 1, Imm: 5},
		"ld r2, [r3+4]":  {Op: LD, Rd: 2, Ra: 3, Imm: 4},
		"st r5, [r1-2]":  {Op: ST, Ra: 1, Rb: 5, Imm: -2},
		"beq r1, r2, +7": {Op: BEQ, Ra: 1, Rb: 2, Imm: 7},
		"out r9":         {Op: OUT, Ra: 9},
		"jmp -3":         {Op: JMP, Imm: -3},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestParseAsmBasics(t *testing.T) {
	src := `
; sum mem[0..2]
.data 0 10
.data 1 20
.data 2 0x1E
    addi r1, r0, 0     ; sum
    addi r2, r0, 0     ; index
    addi r3, r0, 3
loop:
    ld   r4, r2, 0
    add  r1, r1, r4
    addi r2, r2, 1
    bne  r2, r3, loop
    out  r1
    hlt
`
	p, err := ParseAsm("sum", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out) != 1 || res.Out[0] != 60 {
		t.Fatalf("out = %v, want [60]", res.Out)
	}
}

func TestParseAsmErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"bad mnemonic", "frob r1, r2, r3\n", "unknown mnemonic"},
		{"bad register", "add rx, r1, r2\n", "bad register"},
		{"big register", "add r16, r1, r2\n", "bad register"},
		{"bad imm", "addi r1, r0, zebra\n", "bad immediate"},
		{"wrong arity", "add r1, r2\n", "takes 3 operands"},
		{"undefined label", "jmp nowhere\nhlt\n", "undefined label"},
		{"bad data", ".data x 1\n", "bad .data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseAsm("t", strings.NewReader(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestAsmRoundTrip: disassemble generated kernels and reassemble; the
// programs must produce identical outputs.
func TestAsmRoundTrip(t *testing.T) {
	progs := []*Program{
		NewBuilder("t").Imm(ADDI, 1, 0, 7).Out(1).Halt().MustBuild(),
	}
	for _, p := range progs {
		var sb strings.Builder
		if err := WriteAsm(&sb, p); err != nil {
			t.Fatal(err)
		}
		p2, err := ParseAsm(p.Name, strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("%s: reassembly failed: %v\n%s", p.Name, err, sb.String())
		}
		a, err := Exec(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Exec(p2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Out) != len(b.Out) {
			t.Fatalf("%s: output lengths differ", p.Name)
		}
		for i := range a.Out {
			if a.Out[i] != b.Out[i] {
				t.Fatalf("%s: out[%d] differs", p.Name, i)
			}
		}
	}
}
