// Package isa defines the small load/store instruction set shared by the
// ACE-instrumented performance model (internal/uarch), the workload
// generators (internal/workload), and the gate-level netlist core
// (internal/tinycore). Having one ISA on both sides of the tool flow is
// what lets the reproduction validate SART against RTL fault injection:
// the performance model measures port AVFs for the same machine the
// netlist implements.
//
// The machine: 16 32-bit registers (r0 reads as zero), word-addressed
// data memory, a program-output port (OUT) that serves as the SDC
// observation point, and a HLT instruction.
//
// Encoding (32 bits): op[31:24] rd[23:20] ra[19:16] rb[15:12] imm12[11:0]
// (imm is sign-extended; branches are PC-relative in instruction words).
package isa

import "fmt"

// Op is an instruction opcode.
type Op uint8

const (
	NOP  Op = iota
	ADD     // rd = ra + rb
	SUB     // rd = ra - rb
	AND     // rd = ra & rb
	OR      // rd = ra | rb
	XOR     // rd = ra ^ rb
	SHL     // rd = ra << (rb & 31)
	SHR     // rd = ra >> (rb & 31)
	MUL     // rd = ra * rb (low 32 bits)
	ADDI    // rd = ra + imm
	ANDI    // rd = ra & imm
	ORI     // rd = ra | imm
	XORI    // rd = ra ^ imm
	LUI     // rd = imm << 12
	LD      // rd = mem[ra + imm]
	ST      // mem[ra + imm] = rb
	BEQ     // if ra == rb: pc += imm
	BNE     // if ra != rb: pc += imm
	JMP     // pc += imm
	OUT     // emit ra to the program output port
	HLT     // stop
	numOps
)

var opNames = [...]string{
	NOP: "nop", ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SHL: "shl", SHR: "shr", MUL: "mul", ADDI: "addi", ANDI: "andi",
	ORI: "ori", XORI: "xori", LUI: "lui", LD: "ld", ST: "st",
	BEQ: "beq", BNE: "bne", JMP: "jmp", OUT: "out", HLT: "hlt",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// Instr is one decoded instruction.
type Instr struct {
	Op         Op
	Rd, Ra, Rb uint8
	Imm        int32 // 12-bit signed immediate
}

// Categories used by hazard logic and ACE analysis.

// WritesReg reports whether the instruction writes Rd.
func (i Instr) WritesReg() bool {
	switch i.Op {
	case ADD, SUB, AND, OR, XOR, SHL, SHR, MUL, ADDI, ANDI, ORI, XORI, LUI, LD:
		return i.Rd != 0
	}
	return false
}

// ReadsRa reports whether the instruction reads Ra.
func (i Instr) ReadsRa() bool {
	switch i.Op {
	case ADD, SUB, AND, OR, XOR, SHL, SHR, MUL, ADDI, ANDI, ORI, XORI, LD, ST, BEQ, BNE, OUT:
		return true
	}
	return false
}

// ReadsRb reports whether the instruction reads Rb.
func (i Instr) ReadsRb() bool {
	switch i.Op {
	case ADD, SUB, AND, OR, XOR, SHL, SHR, MUL, ST, BEQ, BNE:
		return true
	}
	return false
}

// IsBranch reports whether the instruction can redirect the PC.
func (i Instr) IsBranch() bool { return i.Op == BEQ || i.Op == BNE || i.Op == JMP }

// IsMem reports whether the instruction accesses data memory.
func (i Instr) IsMem() bool { return i.Op == LD || i.Op == ST }

const immMask = 0xFFF

// UImm returns the immediate zero-extended to 12 bits. The logical
// immediates (ANDI/ORI/XORI/LUI) use this form; arithmetic, memory, and
// branch immediates are sign-extended (Imm).
func (i Instr) UImm() uint32 { return uint32(i.Imm) & immMask }

// Encode packs the instruction into a 32-bit word.
func (i Instr) Encode() uint32 {
	return uint32(i.Op)<<24 |
		uint32(i.Rd&0xF)<<20 |
		uint32(i.Ra&0xF)<<16 |
		uint32(i.Rb&0xF)<<12 |
		uint32(i.Imm)&immMask
}

// Decode unpacks a 32-bit word. Unknown opcodes decode with Op preserved
// so simulators can treat them as NOP or fault.
func Decode(w uint32) Instr {
	imm := int32(w & immMask)
	if imm&0x800 != 0 {
		imm -= 0x1000
	}
	return Instr{
		Op:  Op(w >> 24),
		Rd:  uint8(w >> 20 & 0xF),
		Ra:  uint8(w >> 16 & 0xF),
		Rb:  uint8(w >> 12 & 0xF),
		Imm: imm,
	}
}

func (i Instr) String() string {
	switch i.Op {
	case NOP, HLT:
		return i.Op.String()
	case OUT:
		return fmt.Sprintf("out r%d", i.Ra)
	case JMP:
		return fmt.Sprintf("jmp %+d", i.Imm)
	case BEQ, BNE:
		return fmt.Sprintf("%s r%d, r%d, %+d", i.Op, i.Ra, i.Rb, i.Imm)
	case LD:
		return fmt.Sprintf("ld r%d, [r%d%+d]", i.Rd, i.Ra, i.Imm)
	case ST:
		return fmt.Sprintf("st r%d, [r%d%+d]", i.Rb, i.Ra, i.Imm)
	case ADDI, ANDI, ORI, XORI:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Ra, i.Imm)
	case LUI:
		return fmt.Sprintf("lui r%d, %d", i.Rd, i.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Ra, i.Rb)
	}
}

// Program is an assembled workload: code, initial data memory, and a
// cycle budget for simulators.
type Program struct {
	Name string
	Code []Instr
	// Data holds initial data-memory words, keyed by word address.
	Data map[uint32]uint32
	// MaxCycles bounds simulation (0 means the simulator default).
	MaxCycles int
}

// Builder assembles programs with labels and branch fixups.
type Builder struct {
	name   string
	code   []Instr
	data   map[uint32]uint32
	labels map[string]int
	fixups []fixup
	errs   []error
}

type fixup struct {
	at    int
	label string
}

// NewBuilder starts assembling a program.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, data: make(map[uint32]uint32), labels: make(map[string]int)}
}

// Emit appends an instruction.
func (b *Builder) Emit(i Instr) *Builder {
	b.code = append(b.code, i)
	return b
}

// I is shorthand for Emit with field arguments.
func (b *Builder) I(op Op, rd, ra, rb uint8, imm int32) *Builder {
	return b.Emit(Instr{Op: op, Rd: rd, Ra: ra, Rb: rb, Imm: imm})
}

// R emits a three-register ALU instruction.
func (b *Builder) R(op Op, rd, ra, rb uint8) *Builder { return b.I(op, rd, ra, rb, 0) }

// Imm emits a register-immediate instruction.
func (b *Builder) Imm(op Op, rd, ra uint8, imm int32) *Builder { return b.I(op, rd, ra, 0, imm) }

// Label defines a branch target at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("isa: duplicate label %q", name))
	}
	b.labels[name] = len(b.code)
	return b
}

// Branch emits a branch to a label (resolved at Build time).
func (b *Builder) Branch(op Op, ra, rb uint8, label string) *Builder {
	b.fixups = append(b.fixups, fixup{at: len(b.code), label: label})
	return b.I(op, 0, ra, rb, 0)
}

// Jump emits an unconditional jump to a label.
func (b *Builder) Jump(label string) *Builder {
	b.fixups = append(b.fixups, fixup{at: len(b.code), label: label})
	return b.I(JMP, 0, 0, 0, 0)
}

// Out emits an observation-point output of ra.
func (b *Builder) Out(ra uint8) *Builder { return b.I(OUT, 0, ra, 0, 0) }

// Halt emits HLT.
func (b *Builder) Halt() *Builder { return b.I(HLT, 0, 0, 0, 0) }

// SetData initializes a data-memory word.
func (b *Builder) SetData(addr, value uint32) *Builder {
	b.data[addr] = value
	return b
}

// LoadConst emits instructions setting rd to a constant below 2^24 using
// only rd (LUI fills bits 23:12, ORI the low 12 bits; both immediates are
// zero-extended for the logical ops). It records an error for larger
// values.
func (b *Builder) LoadConst(rd uint8, v uint32) *Builder {
	if v >= 1<<24 {
		b.errs = append(b.errs, fmt.Errorf("isa: LoadConst value %#x exceeds 24 bits", v))
		return b
	}
	b.Imm(LUI, rd, 0, int32(v>>12))
	return b.Imm(ORI, rd, rd, int32(v&0xFFF))
}

// Build resolves fixups and returns the program.
func (b *Builder) Build() (*Program, error) {
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("isa: undefined label %q", f.label))
			continue
		}
		// PC-relative: offset from the instruction after the branch.
		off := target - (f.at + 1)
		if off < -2048 || off > 2047 {
			b.errs = append(b.errs, fmt.Errorf("isa: branch to %q out of range (%d)", f.label, off))
			continue
		}
		b.code[f.at].Imm = int32(off)
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	return &Program{Name: b.name, Code: b.code, Data: b.data}, nil
}

// MustBuild is Build that panics on assembly errors (for tests and
// statically known-good generators).
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
