// Package pavfio parses and renders the line-oriented pAVF table format
// shared by the CLIs (acerun/designgen produce it, sartool/sweeprun
// consume it) and the seqavfd sweep service. It is the validation
// choke-point of the ingestion path: every value that reaches
// core.Inputs through this package is finite and in [0,1], so the
// solver's capped term-set sums — min(1, Σ pAVF) — can never be
// poisoned by a NaN, an infinity, or an out-of-range measurement, and a
// long-lived server cannot be corrupted by one malformed upload.
package pavfio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"seqavf/internal/core"
)

// MaxLineBytes bounds one pAVF table line. The default bufio.Scanner
// buffer (64KB) is too small for machine-generated tables with deeply
// hierarchical port names; anything past this limit is not a pAVF table.
const MaxLineBytes = 4 << 20

// Parse parses the line-oriented pAVF table consumed by sartool and
// produced by acerun/designgen:
//
//	R <Struct>.<port> <pAVF_R>
//	W <Struct>.<port> <pAVF_W>
//	S <Struct> <structure AVF>
//
// Blank lines and #-comments are skipped. name labels the source in error
// messages.
//
// Every value is validated on the way in: an AVF is a probability, so
// NaN, infinities, and anything outside [0,1] are rejected with a
// file:line error rather than handed to the solver, where a single NaN
// would poison the capped term-set sums of every downstream node.
// Duplicate records for the same port or structure are also errors —
// silent last-wins hides measurement-merge mistakes.
func Parse(name string, r io.Reader) (*core.Inputs, error) {
	in := core.NewInputs()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), MaxLineBytes)
	firstLine := make(map[string]int) // "R IQ.rd" -> line of first record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if err := applyRecord(name, lineNo, fields, in, firstLine); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return nil, fmt.Errorf("%s:%d: line exceeds %d bytes (not a pAVF table?)", name, lineNo+1, MaxLineBytes)
		}
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return in, nil
}

// applyRecord validates one R/W/S record line and applies it to in. It
// is the shared validation core of Parse and ParseIntervals: every value
// is checked finite and in [0,1], and duplicates (tracked per table —
// or per window, for interval tables — in firstLine) are rejected.
func applyRecord(name string, lineNo int, fields []string, in *core.Inputs, firstLine map[string]int) error {
	if len(fields) != 3 {
		return fmt.Errorf("%s:%d: want '<R|W|S> <name> <value>'", name, lineNo)
	}
	v, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return fmt.Errorf("%s:%d: bad value %q", name, lineNo, fields[2])
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
		return fmt.Errorf("%s:%d: %s value %v out of [0,1] (AVFs are probabilities)",
			name, lineNo, fields[0], fields[2])
	}
	key := fields[0] + " " + fields[1]
	if prev, dup := firstLine[key]; dup {
		return fmt.Errorf("%s:%d: duplicate %q record (first at line %d)",
			name, lineNo, key, prev)
	}
	firstLine[key] = lineNo
	switch fields[0] {
	case "R", "W":
		st, port, ok := strings.Cut(fields[1], ".")
		if !ok {
			return fmt.Errorf("%s:%d: port %q not Struct.port", name, lineNo, fields[1])
		}
		sp := core.StructPort{Struct: st, Port: port}
		if fields[0] == "R" {
			in.ReadPorts[sp] = v
		} else {
			in.WritePorts[sp] = v
		}
	case "S":
		in.StructAVF[fields[1]] = v
	default:
		return fmt.Errorf("%s:%d: unknown record %q", name, lineNo, fields[0])
	}
	return nil
}

// ReadFile parses the pAVF table at path. See Parse for the format.
func ReadFile(path string) (*core.Inputs, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(path, f)
}

// NamedInputs pairs a workload name with its parsed pAVF tables.
type NamedInputs struct {
	Name   string
	Inputs *core.Inputs
}

// ReadDir parses every file in dir matching glob (filepath.Match
// syntax) as a pAVF table, sorted by file name. The workload name is the
// file base without its extension. An empty match set is an error — a
// sweep over zero workloads is almost always a mistyped glob.
func ReadDir(dir, glob string) ([]NamedInputs, error) {
	matches, err := filepath.Glob(filepath.Join(dir, glob))
	if err != nil {
		return nil, fmt.Errorf("bad glob %q: %w", glob, err)
	}
	sort.Strings(matches)
	var out []NamedInputs
	nameSrc := make(map[string]string) // workload name -> file it came from
	for _, path := range matches {
		if fi, err := os.Stat(path); err != nil || fi.IsDir() {
			continue
		}
		in, err := ReadFile(path)
		if err != nil {
			return nil, err
		}
		base := filepath.Base(path)
		name := strings.TrimSuffix(base, filepath.Ext(base))
		// Stripping the extension must stay injective over the matched
		// files: md5.pavf and md5.txt would otherwise both report as
		// workload "md5" and silently duplicate sweep rows.
		if prev, ok := nameSrc[name]; ok {
			return nil, fmt.Errorf("workload name %q is ambiguous: %s and %s both match %q",
				name, prev, base, glob)
		}
		nameSrc[name] = base
		out = append(out, NamedInputs{Name: name, Inputs: in})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no pAVF tables match %s in %s", glob, dir)
	}
	return out, nil
}

// Write renders in as a sorted pAVF table in the Parse format.
func Write(w io.Writer, in *core.Inputs) (int, error) {
	lines := make([]string, 0, len(in.ReadPorts)+len(in.WritePorts)+len(in.StructAVF))
	for sp, v := range in.ReadPorts {
		lines = append(lines, fmt.Sprintf("R %s %.6f", sp, v))
	}
	for sp, v := range in.WritePorts {
		lines = append(lines, fmt.Sprintf("W %s %.6f", sp, v))
	}
	for s, v := range in.StructAVF {
		lines = append(lines, fmt.Sprintf("S %s %.6f", s, v))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return 0, err
		}
	}
	return len(lines), nil
}
