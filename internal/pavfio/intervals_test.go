package pavfio

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"seqavf/internal/core"
)

const sampleIntervals = `# workload md5
# measured on tinycore, window=1000
# window 0 0 1000
R RegFile.rd0 0.125
W RegFile.wr0 0.25
S RegFile 0.5
# window 1 1000 2000
R RegFile.rd0 0.0625
W RegFile.wr0 0.125
S RegFile 0.25
# window 2 2500 3000
R RegFile.rd0 0
W RegFile.wr0 0
S RegFile 0
`

func TestParseIntervalsSample(t *testing.T) {
	tab, err := ParseIntervals("sample", strings.NewReader(sampleIntervals))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Workload != "md5" {
		t.Fatalf("workload = %q", tab.Workload)
	}
	if len(tab.Windows) != 3 {
		t.Fatalf("windows = %d", len(tab.Windows))
	}
	// Window 2 opens after a gap — gaps are legal, overlaps are not.
	w := tab.Windows[2]
	if w.Index != 2 || w.Start != 2500 || w.End != 3000 {
		t.Fatalf("window 2 = %+v", w)
	}
	if got := tab.Windows[1].Inputs.ReadPorts[core.StructPort{Struct: "RegFile", Port: "rd0"}]; got != 0.0625 {
		t.Fatalf("window 1 rd0 = %v", got)
	}
	if got := tab.Cycles(); got != 3000 {
		t.Fatalf("cycles = %d", got)
	}
	if got := (&IntervalTable{}).Cycles(); got != 0 {
		t.Fatalf("empty cycles = %d", got)
	}
}

func TestParseIntervalsDuplicateScopedPerWindow(t *testing.T) {
	// The same record in two windows is the normal case, not a duplicate.
	ok := "# window 0 0 10\nR A.p 0.1\n# window 1 10 20\nR A.p 0.2\n"
	if _, err := ParseIntervals("t", strings.NewReader(ok)); err != nil {
		t.Fatal(err)
	}
	bad := "# window 0 0 10\nR A.p 0.1\nR A.p 0.2\n"
	if _, err := ParseIntervals("t", strings.NewReader(bad)); err == nil {
		t.Fatal("duplicate within a window accepted")
	}
}

func TestParseIntervalsRejects(t *testing.T) {
	cases := []struct {
		name, table, wantErr string
	}{
		{"recordBeforeWindow", "R A.p 0.1\n", "before first '# window'"},
		{"noWindows", "# just a comment\n", "no '# window' directives"},
		{"directiveArity", "# window 0 0\n", "want '# window"},
		{"badIndex", "# window x 0 10\nR A.p 0.1\n", "bad window index"},
		{"negIndex", "# window -1 0 10\nR A.p 0.1\n", "bad window index"},
		{"badStart", "# window 0 x 10\nR A.p 0.1\n", "bad window start"},
		{"badEnd", "# window 0 0 x\nR A.p 0.1\n", "bad window end"},
		{"outOfSequence", "# window 1 0 10\nR A.p 0.1\n", "out of sequence"},
		{"skippedIndex", "# window 0 0 10\nR A.p 0.1\n# window 2 10 20\nR A.p 0.1\n", "out of sequence"},
		{"emptySpan", "# window 0 10 10\nR A.p 0.1\n", "is empty"},
		{"overlap", "# window 0 0 10\nR A.p 0.1\n# window 1 5 20\nR A.p 0.1\n", "inside window"},
		{"emptyWindow", "# window 0 0 10\n# window 1 10 20\nR A.p 0.1\n", "has no records"},
		{"emptyLastWindow", "# window 0 0 10\nR A.p 0.1\n# window 1 10 20\n", "has no records"},
		{"workloadArity", "# workload\n# window 0 0 10\nR A.p 0.1\n", "want '# workload"},
		{"workloadConflict", "# workload a\n# workload b\n# window 0 0 10\nR A.p 0.1\n", "conflicts"},
		{"badRecord", "# window 0 0 10\nR A.p 1.5\n", "out of [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseIntervals("t", strings.NewReader(tc.table))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseIntervalsRepeatedWorkloadAgrees(t *testing.T) {
	table := "# workload md5\n# window 0 0 10\nR A.p 0.1\n# workload md5\n# window 1 10 20\nR A.p 0.2\n"
	tab, err := ParseIntervals("t", strings.NewReader(table))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Workload != "md5" {
		t.Fatalf("workload = %q", tab.Workload)
	}
}

func TestParseIntervalsLineTooLong(t *testing.T) {
	long := "# window 0 0 10\nR A.p 0.1\n# " + strings.Repeat("x", MaxLineBytes+1)
	_, err := ParseIntervals("t", strings.NewReader(long))
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteIntervalsRoundTrip(t *testing.T) {
	tab, err := ParseIntervals("sample", strings.NewReader(sampleIntervals))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	n, err := WriteIntervals(&b, tab)
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("wrote %d record lines, want 9", n)
	}
	back, err := ParseIntervals("roundtrip", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", tab, back)
	}
}

func TestReadIntervalFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "md5.ipavf")
	if err := os.WriteFile(path, []byte(sampleIntervals), 0o644); err != nil {
		t.Fatal(err)
	}
	tab, err := ReadIntervalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Windows) != 3 {
		t.Fatalf("windows = %d", len(tab.Windows))
	}
	if _, err := ReadIntervalFile(path + ".nope"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadIntervalDir(t *testing.T) {
	dir := t.TempDir()
	// sampleIntervals carries "# workload md5": the directive wins over
	// the file stem. The second table has no directive and is named after
	// its file.
	if err := os.WriteFile(filepath.Join(dir, "a.ipavf"), []byte(sampleIntervals), 0o644); err != nil {
		t.Fatal(err)
	}
	anon := "# window 0 0 10\nR RegFile.rd0 0.5\n"
	if err := os.WriteFile(filepath.Join(dir, "sha.ipavf"), []byte(anon), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "skip.txt"), []byte("not a table"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIntervalDir(dir, "*.ipavf")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "md5" || got[1].Name != "sha" {
		t.Fatalf("ReadIntervalDir = %+v", got)
	}
	if len(got[0].Table.Windows) != 3 || len(got[1].Table.Windows) != 1 {
		t.Fatalf("window counts: %d, %d", len(got[0].Table.Windows), len(got[1].Table.Windows))
	}
}

func TestReadIntervalDirAmbiguousNames(t *testing.T) {
	dir := t.TempDir()
	// Both tables resolve to workload "md5": one via directive, one via
	// file stem.
	if err := os.WriteFile(filepath.Join(dir, "a.ipavf"), []byte(sampleIntervals), 0o644); err != nil {
		t.Fatal(err)
	}
	anon := "# window 0 0 10\nR RegFile.rd0 0.5\n"
	if err := os.WriteFile(filepath.Join(dir, "md5.ipavf"), []byte(anon), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIntervalDir(dir, "*.ipavf"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous names accepted: %v", err)
	}
	if _, err := ReadIntervalDir(dir, "*.nope"); err == nil {
		t.Fatal("empty match set accepted")
	}
}
