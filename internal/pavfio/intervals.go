package pavfio

// Multi-window interval tables: the streaming extension of the pAVF
// table format for time-resolved sweeps. One file carries a sequence of
// windows, each a complete pAVF table confined to a half-open cycle
// range:
//
//	# workload md5            (optional; all occurrences must agree)
//	# window 0 0 1000
//	R RegFile.rd0 0.125000
//	...
//	# window 1 1000 2000
//	R RegFile.rd0 0.093000
//	...
//
// The same strictness as Parse applies, plus window-geometry rules:
// indices are sequential from 0, every span has Start < End, and
// successive windows are ordered and non-overlapping (gaps allowed).
// Records before the first window directive are errors, as is a window
// with no records. Duplicate records are rejected per window.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"seqavf/internal/core"
)

// IntervalWindow is one time window of an interval table: a half-open
// cycle span [Start, End) and the pAVF inputs measured inside it.
type IntervalWindow struct {
	Index  int
	Start  uint64
	End    uint64
	Inputs *core.Inputs
}

// IntervalTable is a parsed multi-window pAVF table.
type IntervalTable struct {
	// Workload is the name from the table's "# workload" directive, or
	// "" when the table carries none.
	Workload string
	// Windows are ordered, non-overlapping, and indexed from 0.
	Windows []IntervalWindow
}

// Cycles returns the total span the table covers, End of the last
// window minus Start of the first (including any interior gaps).
func (t *IntervalTable) Cycles() uint64 {
	if len(t.Windows) == 0 {
		return 0
	}
	return t.Windows[len(t.Windows)-1].End - t.Windows[0].Start
}

// ParseIntervals parses a multi-window pAVF table (see the package
// comment above for the format). name labels the source in errors.
// Every record value passes the same finite-[0,1] validation as Parse;
// window geometry is validated strictly with file:line errors.
func ParseIntervals(name string, r io.Reader) (*IntervalTable, error) {
	t := &IntervalTable{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), MaxLineBytes)
	var (
		cur       *IntervalWindow
		curRecs   int
		firstLine map[string]int
		lineNo    int
		wlLine    int
	)
	closeWindow := func() error {
		if cur != nil && curRecs == 0 {
			return fmt.Errorf("%s:%d: window %d has no records", name, lineNo, cur.Index)
		}
		return nil
	}
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if strings.HasPrefix(fields[0], "#") {
			// Directives are "# window ..." / "# workload ..." with the
			// keyword as its own field; anything else is a comment.
			if fields[0] != "#" || len(fields) < 2 {
				continue
			}
			switch fields[1] {
			case "window":
				if len(fields) != 5 {
					return nil, fmt.Errorf("%s:%d: want '# window <idx> <start> <end>'", name, lineNo)
				}
				idx, err := strconv.Atoi(fields[2])
				if err != nil || idx < 0 {
					return nil, fmt.Errorf("%s:%d: bad window index %q", name, lineNo, fields[2])
				}
				start, err := strconv.ParseUint(fields[3], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad window start %q", name, lineNo, fields[3])
				}
				end, err := strconv.ParseUint(fields[4], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad window end %q", name, lineNo, fields[4])
				}
				if idx != len(t.Windows) {
					return nil, fmt.Errorf("%s:%d: window index %d out of sequence (want %d)",
						name, lineNo, idx, len(t.Windows))
				}
				if start >= end {
					return nil, fmt.Errorf("%s:%d: window %d span [%d,%d) is empty", name, lineNo, idx, start, end)
				}
				if n := len(t.Windows); n > 0 && start < t.Windows[n-1].End {
					return nil, fmt.Errorf("%s:%d: window %d starts at %d, inside window %d [%d,%d)",
						name, lineNo, idx, start, n-1, t.Windows[n-1].Start, t.Windows[n-1].End)
				}
				if err := closeWindow(); err != nil {
					return nil, err
				}
				t.Windows = append(t.Windows, IntervalWindow{
					Index: idx, Start: start, End: end, Inputs: core.NewInputs(),
				})
				cur = &t.Windows[len(t.Windows)-1]
				curRecs = 0
				firstLine = make(map[string]int)
			case "workload":
				if len(fields) != 3 {
					return nil, fmt.Errorf("%s:%d: want '# workload <name>'", name, lineNo)
				}
				if t.Workload != "" && t.Workload != fields[2] {
					return nil, fmt.Errorf("%s:%d: workload %q conflicts with %q (line %d)",
						name, lineNo, fields[2], t.Workload, wlLine)
				}
				t.Workload = fields[2]
				wlLine = lineNo
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("%s:%d: record before first '# window' directive", name, lineNo)
		}
		if err := applyRecord(name, lineNo, fields, cur.Inputs, firstLine); err != nil {
			return nil, err
		}
		curRecs++
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return nil, fmt.Errorf("%s:%d: line exceeds %d bytes (not a pAVF table?)", name, lineNo+1, MaxLineBytes)
		}
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if err := closeWindow(); err != nil {
		return nil, err
	}
	if len(t.Windows) == 0 {
		return nil, fmt.Errorf("%s: no '# window' directives (not an interval table)", name)
	}
	return t, nil
}

// ReadIntervalFile parses the multi-window pAVF table at path.
func ReadIntervalFile(path string) (*IntervalTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseIntervals(path, f)
}

// NamedIntervals pairs a workload name with its parsed interval table.
type NamedIntervals struct {
	Name  string
	Table *IntervalTable
}

// ReadIntervalDir parses every file in dir matching glob as a
// multi-window pAVF table. A table's "# workload" directive names the
// workload; a table without one is named after its file with the
// extension stripped (the same rule as ReadDir). The final names must
// be unique across the matched files.
func ReadIntervalDir(dir, glob string) ([]NamedIntervals, error) {
	matches, err := filepath.Glob(filepath.Join(dir, glob))
	if err != nil {
		return nil, fmt.Errorf("bad glob %q: %w", glob, err)
	}
	sort.Strings(matches)
	var out []NamedIntervals
	nameSrc := make(map[string]string) // workload name -> file it came from
	for _, path := range matches {
		if fi, err := os.Stat(path); err != nil || fi.IsDir() {
			continue
		}
		t, err := ReadIntervalFile(path)
		if err != nil {
			return nil, err
		}
		base := filepath.Base(path)
		name := t.Workload
		if name == "" {
			name = strings.TrimSuffix(base, filepath.Ext(base))
		}
		if prev, ok := nameSrc[name]; ok {
			return nil, fmt.Errorf("workload name %q is ambiguous: %s and %s both match %q",
				name, prev, base, glob)
		}
		nameSrc[name] = base
		out = append(out, NamedIntervals{Name: name, Table: t})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no interval tables match %s in %s", glob, dir)
	}
	return out, nil
}

// WriteIntervals renders t in the ParseIntervals format: an optional
// workload directive, then each window's directive followed by its
// sorted pAVF table. Returns the record-line count (directives
// excluded).
func WriteIntervals(w io.Writer, t *IntervalTable) (int, error) {
	if t.Workload != "" {
		if _, err := fmt.Fprintf(w, "# workload %s\n", t.Workload); err != nil {
			return 0, err
		}
	}
	total := 0
	for _, win := range t.Windows {
		if _, err := fmt.Fprintf(w, "# window %d %d %d\n", win.Index, win.Start, win.End); err != nil {
			return total, err
		}
		n, err := Write(w, win.Inputs)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
