package pavfio

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseIntervalTable throws arbitrary bytes at the multi-window
// table parser: it must never panic, and anything it accepts must be
// well-formed — every value finite and in [0,1] (a NaN would poison the
// solver's capped sums downstream), every window non-empty with a
// positive span, windows strictly ordered and non-overlapping with
// sequential indices.
func FuzzParseIntervalTable(f *testing.F) {
	f.Add(sampleIntervals)
	f.Add("# window 0 0 10\nR A.p 0.5\n")
	f.Add("# workload a\n# workload b\n# window 0 0 10\nR A.p 0.5\n")
	f.Add("# window 0 0 10\n# window 1 10 20\nR A.p 0.5\n")
	f.Add("# window 0 0 10\nR A.p 0.5\n# window 1 5 20\nR A.p 0.5\n")
	f.Add("# window 1 0 10\nR A.p 0.5\n")
	f.Add("# window 0 10 10\nR A.p 0.5\n")
	f.Add("# window 0 0 18446744073709551615\nS x NaN\n")
	f.Add("R A.p 0.5\n# window 0 0 10\n")
	f.Add("#window 0 0 10\n# window 0 0 10\nS s 1\n")
	f.Add("# window 0 0 10\nR A.p 0.1\nR A.p 0.1\n")
	f.Fuzz(func(t *testing.T, table string) {
		tab, err := ParseIntervals("fuzz", strings.NewReader(table))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		if len(tab.Windows) == 0 {
			t.Fatalf("accepted table has no windows\ntable:\n%s", table)
		}
		prevEnd := uint64(0)
		for i, w := range tab.Windows {
			if w.Index != i {
				t.Fatalf("window %d carries index %d\ntable:\n%s", i, w.Index, table)
			}
			if w.Start >= w.End {
				t.Fatalf("window %d span [%d,%d) is empty\ntable:\n%s", i, w.Start, w.End, table)
			}
			if i > 0 && w.Start < prevEnd {
				t.Fatalf("window %d overlaps its predecessor\ntable:\n%s", i, table)
			}
			prevEnd = w.End
			if w.Inputs == nil {
				t.Fatalf("window %d has nil inputs\ntable:\n%s", i, table)
			}
			recs := 0
			check := func(what string, v float64) {
				t.Helper()
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
					t.Fatalf("accepted %s value %v outside [0,1] in window %d\ntable:\n%s", what, v, i, table)
				}
			}
			for sp, v := range w.Inputs.ReadPorts {
				check("R "+sp.String(), v)
				recs++
			}
			for sp, v := range w.Inputs.WritePorts {
				check("W "+sp.String(), v)
				recs++
			}
			for s, v := range w.Inputs.StructAVF {
				check("S "+s, v)
				recs++
			}
			if recs == 0 {
				t.Fatalf("accepted window %d has no records\ntable:\n%s", i, table)
			}
		}
	})
}
