package pavfio

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"seqavf/internal/core"
)

const sampleTable = `# measured on tinycore
R RegFile.rd0 0.125
R RegFile.rd1 0.0625
W RegFile.wr0 0.25
S RegFile 0.5
S IMem 1
`

func TestParseSample(t *testing.T) {
	in, err := Parse("sample", strings.NewReader(sampleTable))
	if err != nil {
		t.Fatal(err)
	}
	if got := in.ReadPorts[core.StructPort{Struct: "RegFile", Port: "rd0"}]; got != 0.125 {
		t.Fatalf("rd0 = %v", got)
	}
	if got := in.WritePorts[core.StructPort{Struct: "RegFile", Port: "wr0"}]; got != 0.25 {
		t.Fatalf("wr0 = %v", got)
	}
	if got := in.StructAVF["IMem"]; got != 1 {
		t.Fatalf("IMem = %v", got)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, table, wantErr string
	}{
		{"arity", "R RegFile.rd0\n", "want '<R|W|S>"},
		{"badValue", "R RegFile.rd0 zebra\n", "bad value"},
		{"nan", "R RegFile.rd0 NaN\n", "out of [0,1]"},
		{"inf", "W RegFile.wr0 +Inf\n", "out of [0,1]"},
		{"negative", "S RegFile -0.1\n", "out of [0,1]"},
		{"above1", "S RegFile 1.5\n", "out of [0,1]"},
		{"duplicate", "R A.p 0.1\nR A.p 0.2\n", "duplicate"},
		{"noDot", "R RegFile 0.1\n", "not Struct.port"},
		{"unknown", "X RegFile.rd0 0.1\n", "unknown record"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("t", strings.NewReader(tc.table))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseLineTooLong(t *testing.T) {
	long := "# " + strings.Repeat("x", MaxLineBytes+1)
	_, err := Parse("t", strings.NewReader(long))
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	in, err := Parse("sample", strings.NewReader(sampleTable))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	n, err := Write(&b, in)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("wrote %d lines, want 5", n)
	}
	back, err := Parse("roundtrip", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, back) {
		t.Fatalf("round trip mismatch:\n%v\n%v", in, back)
	}
}

func TestReadDir(t *testing.T) {
	dir := t.TempDir()
	for _, f := range []string{"b.pavf", "a.pavf"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte(sampleTable), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadDir(dir, "*.pavf")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("workloads = %+v", got)
	}
	if _, err := ReadDir(dir, "*.nope"); err == nil {
		t.Fatal("empty match set accepted")
	}
}

func TestReadDirAmbiguousNames(t *testing.T) {
	dir := t.TempDir()
	for _, f := range []string{"md5.pavf", "md5.txt"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte(sampleTable), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ReadDir(dir, "md5.*"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.pavf")); err == nil {
		t.Fatal("missing file accepted")
	}
}
