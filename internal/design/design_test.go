package design

import (
	"strings"
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

func generate(t *testing.T, seed uint64) *Generated {
	t.Helper()
	g, err := Generate(DefaultConfig(seed))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return g
}

func analyze(t *testing.T, g *Generated, opts core.Options) (*core.Analyzer, *core.Inputs) {
	t.Helper()
	fd, err := netlist.Flatten(g.Design)
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	bg, err := graph.Build(fd)
	if err != nil {
		t.Fatalf("graph.Build: %v", err)
	}
	a, err := core.NewAnalyzer(bg, opts)
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	res, err := uarch.Run(workload.Lattice(8), uarch.DefaultConfig())
	if err != nil {
		t.Fatalf("uarch.Run: %v", err)
	}
	in, err := g.Inputs(res.Report)
	if err != nil {
		t.Fatalf("Inputs: %v", err)
	}
	return a, in
}

func TestGenerateValidDesign(t *testing.T) {
	g := generate(t, 1)
	if err := g.Design.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(g.Design.Fubs) != DefaultConfig(1).NumFubs {
		t.Fatalf("fubs = %d", len(g.Design.Fubs))
	}
	if len(g.ReadSpecs) == 0 || len(g.WriteSpecs) == 0 {
		t.Fatal("no structure ports generated")
	}
	if len(g.Design.Structures) != len(g.StructArch) {
		t.Fatalf("struct bindings incomplete: %d vs %d",
			len(g.Design.Structures), len(g.StructArch))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := generate(t, 7)
	b := generate(t, 7)
	var bufA, bufB []byte
	{
		var sbA, sbB stringsBuilder
		if err := netlist.Write(&sbA, a.Design); err != nil {
			t.Fatal(err)
		}
		if err := netlist.Write(&sbB, b.Design); err != nil {
			t.Fatal(err)
		}
		bufA, bufB = sbA.b, sbB.b
	}
	if string(bufA) != string(bufB) {
		t.Fatal("generation not deterministic")
	}
	c := generate(t, 8)
	var sbC stringsBuilder
	if err := netlist.Write(&sbC, c.Design); err != nil {
		t.Fatal(err)
	}
	if string(bufA) == string(sbC.b) {
		t.Fatal("different seeds produced identical designs")
	}
}

type stringsBuilder struct{ b []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

func TestEndToEndAnalysis(t *testing.T) {
	g := generate(t, 3)
	a, in := analyze(t, g, core.DefaultOptions())
	res, err := a.Solve(in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	sum := res.Summarize()
	t.Logf("summary: %+v", sum)
	if sum.SeqBits < 2000 {
		t.Fatalf("design too small: %d sequential bits", sum.SeqBits)
	}
	if sum.WeightedSeqAVF <= 0.01 || sum.WeightedSeqAVF >= 0.9 {
		t.Fatalf("weighted sequential AVF implausible: %v", sum.WeightedSeqAVF)
	}
	if sum.VisitedFraction < 0.9 {
		t.Fatalf("visited fraction = %v, want > 0.9", sum.VisitedFraction)
	}
	if sum.LoopSeqBits == 0 || sum.CtrlBits == 0 {
		t.Fatalf("expected loops and control regs: %+v", sum)
	}
	if sum.LoopSeqFraction > 0.15 {
		t.Fatalf("loop fraction too high: %v", sum.LoopSeqFraction)
	}
}

func TestPartitionedConvergesOnGenerated(t *testing.T) {
	g := generate(t, 5)
	a, in := analyze(t, g, core.DefaultOptions())
	mono, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	part, err := a.SolvePartitioned(in)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Converged {
		t.Fatalf("no convergence in %d iterations", part.Iterations)
	}
	if d := core.MaxAbsDiff(mono, part); d > 1e-9 {
		t.Fatalf("partitioned deviates by %v", d)
	}
	if part.Iterations >= 20 {
		t.Fatalf("needed %d iterations; paper-scale designs converge earlier", part.Iterations)
	}
}

func TestGroundTruthIsMaskedModel(t *testing.T) {
	g := generate(t, 9)
	a, in := analyze(t, g, core.DefaultOptions())
	res, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	truth := g.GroundTruth(res)
	if len(truth) != a.G.NumVerts() {
		t.Fatal("truth size mismatch")
	}
	below := 0
	for v := range truth {
		if truth[v] > res.AVF[v]+1e-12 {
			t.Fatalf("truth above model at vertex %d: %v > %v", v, truth[v], res.AVF[v])
		}
		if truth[v] < res.AVF[v]-1e-12 {
			below++
		}
	}
	if below == 0 {
		t.Fatal("masking had no effect")
	}
	// Deterministic.
	t2 := g.GroundTruth(res)
	for v := range truth {
		if truth[v] != t2[v] {
			t.Fatal("ground truth not deterministic")
		}
	}
}

func TestInputsRejectUnknownArchetype(t *testing.T) {
	g := generate(t, 2)
	res, err := uarch.Run(workload.MD5Like(20), uarch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	delete(res.Report.ReadPorts, "RegFile.rd0")
	// Only fails if some port actually bound to that archetype; scan.
	uses := false
	for _, spec := range g.ReadSpecs {
		if spec.Archetype == "RegFile.rd0" {
			uses = true
		}
	}
	_, err = g.Inputs(res.Report)
	if uses && err == nil {
		t.Fatal("missing archetype accepted")
	}
	if !uses {
		t.Skip("seed did not bind RegFile.rd0")
	}
}

func TestInvalidConfig(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.NumFubs = 1
	if _, err := Generate(cfg); err == nil {
		t.Fatal("NumFubs=1 accepted")
	}
	cfg = DefaultConfig(1)
	cfg.LanesMax = 0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("LanesMax=0 accepted")
	}
}

// TestInvariantsAcrossSeeds fuzzes the generator: for a population of
// designs, the SART invariants must hold — partitioned equals monolithic,
// AVFs bounded by both one-sided estimates, decomposition sums to AVF.
func TestInvariantsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short")
	}
	perf, err := uarch.Run(workload.MD5Like(40), uarch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(50); seed < 58; seed++ {
		cfg := DefaultConfig(seed)
		cfg.NumFubs = 8 + int(seed%5)
		cfg.ParityFrac = float64(seed%3) * 0.2
		cfg.ECCFrac = float64(seed%2) * 0.1
		g, err := Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fd, err := netlist.Flatten(g.Design)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bg, err := graph.Build(fd)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a, err := core.NewAnalyzer(bg, CanonicalOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		in, err := g.Inputs(perf.Report)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mono, err := a.Solve(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		part, err := a.SolvePartitioned(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !part.Converged {
			t.Fatalf("seed %d: no convergence", seed)
		}
		if d := core.MaxAbsDiff(mono, part); d > 1e-9 {
			t.Fatalf("seed %d: partitioned deviates by %v", seed, d)
		}
		for v := 0; v < bg.NumVerts(); v++ {
			id := graph.VertexID(v)
			avf := mono.AVF[v]
			if avf < 0 || avf > 1 {
				t.Fatalf("seed %d: AVF out of range at %s", seed, bg.Name(id))
			}
			x := mono.Exprs[v]
			if avf > x.FwdValue(mono.Env)+1e-12 || avf > x.BwdValue(mono.Env)+1e-12 {
				t.Fatalf("seed %d: AVF exceeds an estimate at %s", seed, bg.Name(id))
			}
			dec := mono.Decompose(id)
			if diff := dec.Total() - avf; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("seed %d: decomposition mismatch at %s", seed, bg.Name(id))
			}
		}
	}
}

func TestGenerateChain(t *testing.T) {
	d, err := GenerateChain(5, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Fubs) != 5 || len(d.Connects) != 4 {
		t.Fatalf("chain shape: %d fubs, %d connects", len(d.Fubs), len(d.Connects))
	}
	if _, err := GenerateChain(1, 2, 8); err == nil {
		t.Fatal("degenerate chain accepted")
	}
	if _, err := GenerateChain(4, 0, 8); err == nil {
		t.Fatal("zero stages accepted")
	}
}

func TestCanonicalOptions(t *testing.T) {
	opts := CanonicalOptions()
	if opts.LoopPAVF != 0.3 || opts.PseudoPAVF != 0.2 {
		t.Fatalf("canonical options drifted: %+v", opts)
	}
}

func TestProtectFractions(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.ParityFrac = 0.5
	cfg.ECCFrac = 0.3
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var par, ecc, none int
	for _, st := range g.Design.Structures {
		switch st.Prot {
		case netlist.ProtParity:
			par++
		case netlist.ProtECC:
			ecc++
		default:
			none++
		}
	}
	if par == 0 || ecc == 0 || none == 0 {
		t.Fatalf("protection mix degenerate: parity=%d ecc=%d none=%d", par, ecc, none)
	}
	if frac := float64(par+ecc) / float64(par+ecc+none); frac < 0.5 || frac > 0.95 {
		t.Fatalf("protected fraction %v far from configured 0.8", frac)
	}
}

// TestGeneratedDesignTextRoundTrip: generated designs survive the EXLIF
// text format byte-for-byte across seeds (serializer determinism + parser
// fidelity at scale).
func TestGeneratedDesignTextRoundTrip(t *testing.T) {
	for seed := uint64(30); seed < 34; seed++ {
		cfg := DefaultConfig(seed)
		cfg.NumFubs = 6
		cfg.ParityFrac = 0.3
		g, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var first stringsBuilder
		if err := netlist.Write(&first, g.Design); err != nil {
			t.Fatal(err)
		}
		d2, err := netlist.Parse(strings.NewReader(string(first.b)))
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if err := d2.Validate(); err != nil {
			t.Fatalf("seed %d: revalidate: %v", seed, err)
		}
		var second stringsBuilder
		if err := netlist.Write(&second, d2); err != nil {
			t.Fatal(err)
		}
		if string(first.b) != string(second.b) {
			t.Fatalf("seed %d: round trip not stable", seed)
		}
	}
}
