// Package design generates the "XeonLike" synthetic processor netlist:
// the stand-in for the Intel Xeon® core RTL the paper analyzed (which we
// cannot have). The generator emits the same topological vocabulary the
// paper's methodology is defined over — simple pipelines, logical join
// points, distribution splits, FSM/stall feedback loops, configuration
// control registers, DFX debug taps, and latch arrays bound to
// ACE-modeled structures — at a configurable scale, wired into tens of
// FUBs with a mostly feed-forward interconnect.
//
// Every generated structure port carries an archetype binding: which port
// of the ACE performance model (internal/uarch) it behaves like, plus an
// activity scale. Inputs() turns a measured ACE report into the
// core.Inputs table for SART, so workload dependence flows end to end.
package design

import (
	"fmt"

	"seqavf/internal/ace"
	"seqavf/internal/cells"
	"seqavf/internal/core"
	"seqavf/internal/netlist"
	"seqavf/internal/stats"
)

// Config parameterizes the generator. The zero value is unusable; start
// from DefaultConfig.
type Config struct {
	Seed    uint64
	NumFubs int
	Width   int // datapath width of every lane and port

	LanesMin, LanesMax   int
	StagesMin, StagesMax int

	PJoin  float64 // per-stage probability of merging two lanes
	PSplit float64 // per-stage probability of forking a lane
	PCtrl  float64 // per-stage-lane probability of a control-reg mask
	PDebug float64 // per-stage-lane probability of a DFX tap
	// LoopsPerFub bounds the accumulator feedback loops inserted per FUB
	// (0..n).
	LoopsPerFub int
	// CellsPerFub bounds the structured cells (FIFOs, one-hot FSMs,
	// LFSRs from internal/cells) inserted per FUB — the "head and tail
	// pointer update loops and so forth" of §4.3.
	CellsPerFub int

	// Structure ports per FUB.
	ReadsMin, ReadsMax   int
	WritesMin, WritesMax int
	// StructEntries sizes generated latch arrays.
	StructEntries int

	// ScaleMin/Max bound the activity scale applied to archetype pAVFs.
	ScaleMin, ScaleMax float64

	// MaskMin/Max bound the per-node logical masking factor of the
	// ground-truth model (see GroundTruth).
	MaskMin, MaskMax float64

	// ParityFrac / ECCFrac set the fraction of generated structures that
	// carry end-to-end parity (DUE) or ECC (DCE) protection. The
	// canonical configuration leaves everything unprotected; the
	// protection-sweep experiment raises these to reproduce the paper's
	// §1 claim that protecting arrays raises the sequential share of SDC.
	ParityFrac, ECCFrac float64
}

// DefaultConfig is the scale used by the experiments: a few tens of FUBs,
// tens of thousands of bits.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:          seed,
		NumFubs:       32,
		Width:         12,
		LanesMin:      3,
		LanesMax:      6,
		StagesMin:     3,
		StagesMax:     8,
		PJoin:         0.35,
		PSplit:        0.25,
		PCtrl:         0.02,
		PDebug:        0.08,
		LoopsPerFub:   1,
		CellsPerFub:   1,
		ReadsMin:      1,
		ReadsMax:      2,
		WritesMin:     1,
		WritesMax:     3,
		StructEntries: 16,
		ScaleMin:      0.08,
		ScaleMax:      0.45,
		MaskMin:       0.70,
		MaskMax:       1.00,
		ParityFrac:    0,
		ECCFrac:       0,
	}
}

// CanonicalOptions returns the SART options the experiments run the
// XeonLike design with: the paper's loop-boundary value (0.3, chosen via
// the Figure 8 sweep) and a boundary pseudo-structure pAVF of 0.2 —
// standing in for the paper's practice of assigning measured pAVFs to the
// pseudo-structures that wrap circuits outside the analyzed RTL.
func CanonicalOptions() core.Options {
	opts := core.DefaultOptions()
	opts.LoopPAVF = 0.3
	opts.PseudoPAVF = 0.2
	return opts
}

// PortSpec binds a generated structure port to a performance-model
// archetype port and an activity scale.
type PortSpec struct {
	// Archetype is a uarch report key like "RegFile.rd0".
	Archetype string
	Scale     float64
}

// Generated is a complete synthetic design plus its ACE bindings.
type Generated struct {
	Config Config
	Design *netlist.Design
	// ReadSpecs/WriteSpecs bind each structure port to its archetype.
	ReadSpecs  map[core.StructPort]PortSpec
	WriteSpecs map[core.StructPort]PortSpec
	// StructArch maps each generated structure to the uarch structure
	// whose measured AVF it inherits (scaled).
	StructArch map[string]PortSpec
}

var readArchetypes = []string{
	"FetchQ.drain", "IQ.issue", "RegFile.rd0", "RegFile.rd1",
	"StoreBuf.drain", "DCache.ld",
}

var writeArchetypes = []string{
	"FetchQ.fill", "IQ.alloc", "RegFile.wr0", "StoreBuf.alloc",
	"DCache.fill", "DCache.st",
}

// structArchetypes is biased toward latency-dominated arrays
// (architectural state) — the population whose high structure AVFs made
// the paper's structure-AVF proxy so conservative for sequentials.
var structArchetypes = []string{
	"RegFile", "RegFile", "RegFile", "FetchQ", "IQ", "StoreBuf", "DCache",
}

// Generate builds the synthetic design.
func Generate(cfg Config) (*Generated, error) {
	if cfg.NumFubs < 2 || cfg.Width < 2 || cfg.LanesMin < 1 ||
		cfg.LanesMax < cfg.LanesMin || cfg.StagesMax < cfg.StagesMin || cfg.StagesMin < 1 {
		return nil, fmt.Errorf("design: invalid config %+v", cfg)
	}
	rng := stats.New(cfg.Seed)
	g := &Generated{
		Config:     cfg,
		Design:     netlist.NewDesign(fmt.Sprintf("xeonlike_%d", cfg.Seed)),
		ReadSpecs:  make(map[core.StructPort]PortSpec),
		WriteSpecs: make(map[core.StructPort]PortSpec),
		StructArch: make(map[string]PortSpec),
	}
	type outPort struct{ fub, port string }
	var openOutputs []outPort
	protFor := func(frng *stats.RNG) netlist.Protection {
		r := frng.Float64()
		switch {
		case r < cfg.ECCFrac:
			return netlist.ProtECC
		case r < cfg.ECCFrac+cfg.ParityFrac:
			return netlist.ProtParity
		default:
			return netlist.ProtNone
		}
	}

	for fi := 0; fi < cfg.NumFubs; fi++ {
		fubName := fmt.Sprintf("FUB%02d", fi)
		modName := fmt.Sprintf("fub%02d", fi)
		m := g.Design.AddModule(modName)
		b := netlist.Build(m)
		frng := rng.Fork(uint64(fi))

		var lanes []string
		uid := 0
		fresh := func(prefix string) string {
			uid++
			return fmt.Sprintf("%s_%d", prefix, uid)
		}

		// Sources: FUB inputs (wired below) and structure read ports.
		nIn := 1 + frng.Intn(3)
		var inPorts []string
		for k := 0; k < nIn; k++ {
			p := b.In(fmt.Sprintf("in%d", k), cfg.Width)
			inPorts = append(inPorts, p)
			lanes = append(lanes, p)
		}
		nRd := cfg.ReadsMin + frng.Intn(cfg.ReadsMax-cfg.ReadsMin+1)
		if fi < 2 && nRd == 0 {
			nRd = 1 // front FUBs always have measured sources
		}
		for k := 0; k < nRd; k++ {
			sname := fmt.Sprintf("S%02dR%d", fi, k)
			g.Design.AddStructure(sname, cfg.StructEntries, cfg.Width).Prot = protFor(frng)
			g.StructArch[sname] = PortSpec{
				Archetype: structArchetypes[frng.Intn(len(structArchetypes))],
				Scale:     1.0,
			}
			port := "rd"
			lane := b.SRead(fresh("srd"), cfg.Width, sname, port)
			g.ReadSpecs[core.StructPort{Struct: sname, Port: port}] = PortSpec{
				Archetype: readArchetypes[frng.Intn(len(readArchetypes))],
				Scale:     frng.Range(cfg.ScaleMin, cfg.ScaleMax),
			}
			lanes = append(lanes, lane)
		}

		// Control registers available for masking.
		var ctrls []string
		nCtrl := frng.Intn(3)
		for k := 0; k < nCtrl; k++ {
			name := fmt.Sprintf("cfg_reg%d", k)
			ctrls = append(ctrls, b.CtrlReg(name, cfg.Width, name, uint64(frng.Intn(1<<cfg.Width))))
		}

		// Stages.
		nStages := cfg.StagesMin + frng.Intn(cfg.StagesMax-cfg.StagesMin+1)
		loopsLeft := frng.Intn(cfg.LoopsPerFub + 1)
		cellsLeft := frng.Intn(cfg.CellsPerFub + 1)
		maxLanes := cfg.LanesMax
		joinOps := []netlist.Op{netlist.OpXor, netlist.OpAnd, netlist.OpOr}
		for s := 0; s < nStages; s++ {
			// Join.
			if len(lanes) >= 2 && frng.Bool(cfg.PJoin) {
				i := frng.Intn(len(lanes))
				j := frng.Intn(len(lanes))
				if i != j {
					op := joinOps[frng.Intn(len(joinOps))]
					merged := b.C(fresh("join"), cfg.Width, op, lanes[i], lanes[j])
					// Remove j, replace i.
					lanes[i] = merged
					lanes[j] = lanes[len(lanes)-1]
					lanes = lanes[:len(lanes)-1]
				}
			}
			// Split.
			if len(lanes) < maxLanes && frng.Bool(cfg.PSplit) {
				lanes = append(lanes, lanes[frng.Intn(len(lanes))])
			}
			// Structured cell insertion: a FIFO, one-hot FSM, or LFSR
			// grafted into one lane (the realistic loop inventory).
			if cellsLeft > 0 && frng.Bool(0.2) {
				cellsLeft--
				i := frng.Intn(len(lanes))
				switch frng.Intn(6) {
				case 0:
					push := b.Select(fresh("c_push"), 1, lanes[i], 0)
					pop := b.Select(fresh("c_pop"), 1, lanes[i], 1)
					fifo, err := cells.NewFIFO(b, fresh("c_fifo"), 2, cfg.Width, lanes[i], push, pop)
					if err != nil {
						return nil, err
					}
					lanes[i] = fifo.Out
				case 1, 2:
					adv := b.Select(fresh("c_adv"), 1, lanes[i], 0)
					sts, err := cells.NewOneHotFSM(b, fresh("c_fsm"), 3, adv)
					if err != nil {
						return nil, err
					}
					inv := b.C(fresh("c_inv"), cfg.Width, netlist.OpNot, lanes[i])
					lanes[i] = b.Mux(fresh("c_gate"), cfg.Width, sts[1], lanes[i], inv)
				default:
					lf, err := cells.NewLFSR(b, fresh("c_lfsr"), cfg.Width, frng.Uint64())
					if err != nil {
						return nil, err
					}
					lanes[i] = b.C(fresh("c_mix"), cfg.Width, netlist.OpXor, lanes[i], lf)
				}
			}
			// Loop insertion: an accumulator FSM mixed into one lane.
			if loopsLeft > 0 && frng.Bool(0.3) {
				loopsLeft--
				i := frng.Intn(len(lanes))
				acc := fresh("acc")
				nxt := fresh("acc_next")
				b.M.Add(&netlist.Node{Name: acc, Kind: netlist.KindSeq, Width: cfg.Width, Inputs: []string{nxt}})
				b.C(nxt, cfg.Width, netlist.OpAdd, acc, lanes[i])
				lanes[i] = b.C(fresh("mixl"), cfg.Width, netlist.OpXor, lanes[i], acc)
			}
			// Per-lane: optional control mask, optional debug tap, then
			// the stage's pipeline register.
			for i := range lanes {
				if len(ctrls) > 0 && frng.Bool(cfg.PCtrl) {
					lanes[i] = b.C(fresh("gate"), cfg.Width, netlist.OpAnd,
						lanes[i], ctrls[frng.Intn(len(ctrls))])
				}
				if frng.Bool(cfg.PDebug) {
					b.M.Add(&netlist.Node{
						Name: fresh("dbg_tap"), Kind: netlist.KindSeq,
						Width: cfg.Width, Inputs: []string{lanes[i]},
						Class: netlist.ClassDebug,
					})
				}
				lanes[i] = b.Seq(fmt.Sprintf("st%d_%s", s, fresh("q")), cfg.Width, lanes[i])
			}
		}

		// Sinks: structure writes and FUB outputs.
		nWr := cfg.WritesMin + frng.Intn(cfg.WritesMax-cfg.WritesMin+1)
		nOut := 1 + frng.Intn(2)
		needed := nWr + nOut
		for len(lanes) < needed {
			lanes = append(lanes, lanes[frng.Intn(len(lanes))])
		}
		// Merge excess lanes into lane 0 so nothing dangles.
		for len(lanes) > needed {
			last := lanes[len(lanes)-1]
			lanes = lanes[:len(lanes)-1]
			lanes[0] = b.C(fresh("fold"), cfg.Width, netlist.OpXor, lanes[0], last)
		}
		li := 0
		for k := 0; k < nWr; k++ {
			sname := fmt.Sprintf("S%02dW%d", fi, k)
			g.Design.AddStructure(sname, cfg.StructEntries, cfg.Width).Prot = protFor(frng)
			g.StructArch[sname] = PortSpec{
				Archetype: structArchetypes[frng.Intn(len(structArchetypes))],
				Scale:     1.0,
			}
			b.SWrite(fresh("swr"), sname, "wr", lanes[li])
			g.WriteSpecs[core.StructPort{Struct: sname, Port: "wr"}] = PortSpec{
				Archetype: writeArchetypes[frng.Intn(len(writeArchetypes))],
				Scale:     frng.Range(cfg.ScaleMin, cfg.ScaleMax),
			}
			li++
		}
		var outs []string
		for k := 0; k < nOut; k++ {
			p := fmt.Sprintf("out%d", k)
			b.Out(p, cfg.Width, lanes[li])
			outs = append(outs, p)
			li++
		}

		g.Design.AddFub(fubName, modName)

		// Inter-FUB wiring: inputs come from recent FUBs' outputs; the
		// first FUBs keep undriven (boundary pseudo-structure) inputs.
		if fi > 0 {
			for _, in := range inPorts {
				if frng.Bool(0.15) {
					continue // leave a sprinkling of boundary inputs
				}
				src := openOutputs[frng.Intn(len(openOutputs))]
				g.Design.ConnectPorts(src.fub, src.port, fubName, in)
			}
		}
		for _, p := range outs {
			openOutputs = append(openOutputs, outPort{fub: fubName, port: p})
		}
		// Keep the pool biased toward recent FUBs.
		if len(openOutputs) > 6 {
			openOutputs = openOutputs[len(openOutputs)-6:]
		}
	}
	if err := g.Design.Validate(); err != nil {
		return nil, fmt.Errorf("design: generated netlist invalid: %w", err)
	}
	return g, nil
}

// Inputs derives the SART input tables from a measured ACE report by
// applying each port's archetype binding. Unknown archetype keys are an
// error (the report must come from the uarch model).
func (g *Generated) Inputs(rep *ace.Report) (*core.Inputs, error) {
	in := core.NewInputs()
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	for sp, spec := range g.ReadSpecs {
		base, ok := rep.ReadPorts[spec.Archetype]
		if !ok {
			return nil, fmt.Errorf("design: report lacks read archetype %s", spec.Archetype)
		}
		in.ReadPorts[sp] = clamp(base * spec.Scale)
	}
	for sp, spec := range g.WriteSpecs {
		base, ok := rep.WritePorts[spec.Archetype]
		if !ok {
			return nil, fmt.Errorf("design: report lacks write archetype %s", spec.Archetype)
		}
		in.WritePorts[sp] = clamp(base * spec.Scale)
	}
	for sname, spec := range g.StructArch {
		base, ok := rep.StructAVF[spec.Archetype]
		if !ok {
			return nil, fmt.Errorf("design: report lacks structure archetype %s", spec.Archetype)
		}
		in.StructAVF[sname] = clamp(base * spec.Scale)
	}
	return in, nil
}

// GroundTruth derives the per-sequential-bit "silicon truth" AVF used by
// the simulated beam test. SART cannot see logical masking beyond the ACE
// model (§4, second assumption); the generative truth applies a per-node
// masking factor in [MaskMin, MaskMax], drawn deterministically from the
// design seed, to SART's estimate. Truth is therefore never above the
// model — the documented direction of SART's conservatism — while the gap
// varies node to node.
func (g *Generated) GroundTruth(res *core.Result) []float64 {
	rng := stats.New(g.Config.Seed ^ 0xBEEF)
	gr := res.Analyzer.G
	truth := make([]float64, gr.NumVerts())
	maskOf := make(map[*netlist.Node]float64)
	for v := 0; v < gr.NumVerts(); v++ {
		node := gr.Verts[v].Node
		m, ok := maskOf[node]
		if !ok {
			m = rng.Range(g.Config.MaskMin, g.Config.MaskMax)
			maskOf[node] = m
		}
		truth[v] = res.AVF[v] * m
	}
	return truth
}
