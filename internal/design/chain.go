package design

import (
	"fmt"

	"seqavf/internal/netlist"
)

// GenerateChain builds a pure FUB chain: a measured source structure at
// the head, a measured sink structure at the tail, and n FUBs of plain
// pipeline stages in between. Because a pAVF value crosses exactly one
// partition boundary per relaxation iteration (§5.2), the iterations
// needed to converge grow linearly with the chain length — the property
// the convergence-scaling experiment demonstrates. (The paper's 20
// iterations correspond to its design's partition diameter.)
func GenerateChain(nFubs, stagesPerFub, width int) (*netlist.Design, error) {
	if nFubs < 2 || stagesPerFub < 1 || width < 1 {
		return nil, fmt.Errorf("design: invalid chain geometry (%d fubs, %d stages, %d bits)",
			nFubs, stagesPerFub, width)
	}
	d := netlist.NewDesign(fmt.Sprintf("chain%d", nFubs))
	d.AddStructure("HEAD", 8, width)
	d.AddStructure("TAIL", 8, width)

	head := d.AddModule("head")
	hb := netlist.Build(head)
	hb.Out("o", width, hb.Pipe("hq", width, stagesPerFub, hb.SRead("rd", width, "HEAD", "rd")))

	link := func(i int) string {
		name := fmt.Sprintf("link%02d", i)
		m := d.AddModule(name)
		lb := netlist.Build(m)
		lb.Out("o", width, lb.Pipe("q", width, stagesPerFub, lb.In("i", width)))
		return name
	}

	tail := d.AddModule("tail")
	tb := netlist.Build(tail)
	tb.SWrite("wr", "TAIL", "wr", tb.Pipe("tq", width, stagesPerFub, tb.In("i", width)))

	d.AddFub("F00", "head")
	prev := "F00"
	for i := 1; i < nFubs-1; i++ {
		fub := fmt.Sprintf("F%02d", i)
		d.AddFub(fub, link(i))
		d.ConnectPorts(prev, "o", fub, "i")
		prev = fub
	}
	last := fmt.Sprintf("F%02d", nFubs-1)
	d.AddFub(last, "tail")
	d.ConnectPorts(prev, "o", last, "i")
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
