// Package workload generates the instruction-level workloads that drive
// the ACE performance model and the gate-level core.
//
// Two named kernels mirror the workloads the paper beam-tested (§6.2):
//
//   - Lattice: particle positions on a 2D lattice with inter-particle
//     forces (load-heavy stencil compute);
//   - MD5Like: MD5-style register-only mixing rounds — like the paper's
//     modified MD5Sum, memory accesses are removed so the kernel performs
//     the same calculations without being a true hash.
//
// Synthetic generates parameterized workloads (instruction mix, dead-code
// fraction, memory footprint) and Suite builds the many-workload
// population standing in for the paper's 547-trace server suite.
package workload

import (
	"fmt"

	"seqavf/internal/isa"
	"seqavf/internal/stats"
)

// Lattice builds the 2D lattice-force kernel over an n x n grid
// (n >= 3). The paper modified its 3D version to 2D for beam testing; we
// generate the 2D form directly. Interior cells average their four
// neighbors, subtract the center (a discrete Laplacian "force"), store
// the result to a second buffer and fold it into a checksum that is
// emitted as program output.
func Lattice(n int) *isa.Program {
	if n < 3 {
		n = 3
	}
	b := isa.NewBuilder(fmt.Sprintf("lattice%d", n))
	cells := uint32(n * n)
	rng := stats.New(uint64(n) * 0x9E37)
	for i := uint32(0); i < cells; i++ {
		b.SetData(i, uint32(rng.Uint64()&0xFFFF))
	}
	const (
		rI     = 1  // cell index
		rLim   = 2  // loop limit
		rSum   = 3  // checksum
		rC     = 4  // center
		rE     = 5  // east
		rW     = 6  // west
		rN     = 7  // north
		rS     = 8  // south
		rAcc   = 9  // accumulator
		rGrid  = 10 // n
		rBase2 = 11 // output buffer base
		rAddr  = 12 // scratch address
		rTwo   = 13 // shift amount
	)
	b.LoadConst(rGrid, uint32(n))
	b.LoadConst(rBase2, cells)
	b.Imm(isa.ADDI, rTwo, 0, 2)
	b.LoadConst(rI, uint32(n+1))         // first interior cell
	b.LoadConst(rLim, cells-uint32(n)-1) // last interior cell + 1
	b.Imm(isa.ADDI, rSum, 0, 0)
	b.Label("loop")
	b.I(isa.LD, rC, rI, 0, 0)
	b.I(isa.LD, rE, rI, 0, 1)
	b.I(isa.LD, rW, rI, 0, -1)
	b.R(isa.ADD, rAddr, rI, rGrid)
	b.I(isa.LD, rS, rAddr, 0, 0)
	b.R(isa.SUB, rAddr, rI, rGrid)
	b.I(isa.LD, rN, rAddr, 0, 0)
	b.R(isa.ADD, rAcc, rE, rW)
	b.R(isa.ADD, rAcc, rAcc, rN)
	b.R(isa.ADD, rAcc, rAcc, rS)
	b.R(isa.SHR, rAcc, rAcc, rTwo) // neighbor average
	b.R(isa.SUB, rAcc, rAcc, rC)   // force term
	b.R(isa.ADD, rAddr, rI, rBase2)
	b.I(isa.ST, 0, rAddr, rAcc, 0)
	b.R(isa.XOR, rSum, rSum, rAcc)
	b.Imm(isa.ADDI, rI, rI, 1)
	b.Branch(isa.BNE, rI, rLim, "loop")
	// Read-back pass: fold the stored forces into the checksum so the
	// stores are architecturally required (ACE), as in the real kernel
	// where the force buffer feeds the next timestep.
	b.LoadConst(rI, cells+uint32(n)+1)
	b.LoadConst(rLim, 2*cells-uint32(n)-1)
	b.Label("verify")
	b.I(isa.LD, rC, rI, 0, 0)
	b.R(isa.XOR, rSum, rSum, rC)
	b.Imm(isa.ADDI, rI, rI, 1)
	b.Branch(isa.BNE, rI, rLim, "verify")
	b.Out(rSum)
	b.Halt()
	return b.MustBuild()
}

// MD5Like builds the register-only MD5-style mixing kernel: the paper's
// modified MD5Sum with memory accesses removed ("it does all the same
// calculations" without computing a true hash). rounds is the number of
// mixing rounds (>= 1).
func MD5Like(rounds int) *isa.Program {
	if rounds < 1 {
		rounds = 1
	}
	b := isa.NewBuilder(fmt.Sprintf("md5like%d", rounds))
	const (
		rA, rB, rC, rD = 1, 2, 3, 4
		rK             = 5  // evolving message/constant word
		rCnt           = 6  // round counter
		rLim           = 7  // rounds
		rF             = 8  // F function value
		rT             = 9  // temp
		rOnes          = 10 // 0xFFFFFFFF
		rMulK          = 11 // multiplicative constant
		rSh            = 12 // rotate amount
		rShC           = 13 // 32 - rotate amount
		rOne           = 14
	)
	b.Imm(isa.ADDI, rOne, 0, 1)
	b.R(isa.SUB, rOnes, 0, rOne) // 0 - 1 = all ones
	b.LoadConst(rA, 0x674523)
	b.LoadConst(rB, 0xEFCDAB)
	b.LoadConst(rC, 0x98BADC)
	b.LoadConst(rD, 0x103254)
	b.LoadConst(rK, 0xD76AA4)
	b.LoadConst(rMulK, 0x010193) // small odd multiplier
	b.Imm(isa.ADDI, rCnt, 0, 0)
	b.LoadConst(rLim, uint32(rounds))
	b.Imm(isa.ADDI, rSh, 0, 7)
	b.LoadConst(rShC, 25)
	b.Label("round")
	// F = (B & C) | (~B & D)
	b.R(isa.AND, rF, rB, rC)
	b.R(isa.XOR, rT, rB, rOnes) // ~B
	b.R(isa.AND, rT, rT, rD)
	b.R(isa.OR, rF, rF, rT)
	// A = B + rotl(A + F + K, s)
	b.R(isa.ADD, rT, rA, rF)
	b.R(isa.ADD, rT, rT, rK)
	b.R(isa.SHL, rF, rT, rSh)
	b.R(isa.SHR, rT, rT, rShC)
	b.R(isa.OR, rT, rT, rF)
	b.R(isa.ADD, rT, rT, rB)
	// Rotate the working registers: A<-D, D<-C, C<-B, B<-T.
	b.R(isa.OR, rF, rA, 0) // save old A (dead after this round -> un-ACE mix)
	b.R(isa.OR, rA, rD, 0)
	b.R(isa.OR, rD, rC, 0)
	b.R(isa.OR, rC, rB, 0)
	b.R(isa.OR, rB, rT, 0)
	// Evolve the message word.
	b.R(isa.MUL, rK, rK, rMulK)
	b.Imm(isa.ADDI, rK, rK, 0x357)
	b.Imm(isa.ADDI, rCnt, rCnt, 1)
	b.Branch(isa.BNE, rCnt, rLim, "round")
	b.Out(rA)
	b.Out(rB)
	b.Out(rC)
	b.Out(rD)
	b.Halt()
	return b.MustBuild()
}

// PointerChase builds a serial linked-list traversal: each load's result
// is the next load's address (no memory-level parallelism, load-use
// stalls every iteration). nodes is the list length; laps the number of
// traversals. It models the pointer-heavy server codes of the paper's
// trace suite.
func PointerChase(nodes, laps int) *isa.Program {
	if nodes < 2 {
		nodes = 2
	}
	if laps < 1 {
		laps = 1
	}
	b := isa.NewBuilder(fmt.Sprintf("pchase%dx%d", nodes, laps))
	// Build a shuffled singly linked ring: mem[i] -> next index.
	rng := stats.New(uint64(nodes)*31 + uint64(laps))
	perm := rng.Perm(nodes)
	for i := 0; i < nodes; i++ {
		b.SetData(uint32(perm[i]), uint32(perm[(i+1)%nodes]))
	}
	const (
		rPtr, rSum, rLap, rLim, rStart = 1, 2, 3, 4, 5
	)
	b.LoadConst(rStart, uint32(perm[0]))
	b.R(isa.OR, rPtr, rStart, 0)
	b.Imm(isa.ADDI, rLap, 0, 0)
	b.LoadConst(rLim, uint32(laps*nodes))
	b.Label("chase")
	b.I(isa.LD, rPtr, rPtr, 0, 0) // ptr = mem[ptr]: serial dependence
	b.R(isa.ADD, rSum, rSum, rPtr)
	b.Imm(isa.ADDI, rLap, rLap, 1)
	b.Branch(isa.BNE, rLap, rLim, "chase")
	b.Out(rSum)
	b.Halt()
	return b.MustBuild()
}

// TransactionMix builds a transaction-processing-like kernel: each
// "transaction" hashes a key, reads a record, branches on its contents,
// updates it and writes it back, emitting a running commit checksum. It
// models the branchy read-modify-write server workloads of the paper's
// suite.
func TransactionMix(records, txns int) *isa.Program {
	if records < 4 {
		records = 4
	}
	if txns < 1 {
		txns = 1
	}
	b := isa.NewBuilder(fmt.Sprintf("txn%dx%d", records, txns))
	rng := stats.New(uint64(records)*977 + uint64(txns))
	for i := 0; i < records; i++ {
		b.SetData(uint32(i), uint32(rng.Uint64()&0xFFFF))
	}
	const (
		rKey, rRec, rVal, rTx, rLim = 1, 2, 3, 4, 5
		rMask, rSum, rMul, rOne     = 6, 7, 8, 9
	)
	b.LoadConst(rMask, uint32(records-1)) // records must be power of two
	b.LoadConst(rMul, 0x9E37)
	b.Imm(isa.ADDI, rOne, 0, 1)
	b.Imm(isa.ADDI, rKey, 0, 17)
	b.Imm(isa.ADDI, rTx, 0, 0)
	b.LoadConst(rLim, uint32(txns))
	b.Label("txn")
	// Hash the key into a record index.
	b.R(isa.MUL, rKey, rKey, rMul)
	b.Imm(isa.ADDI, rKey, rKey, 0x71)
	b.R(isa.AND, rRec, rKey, rMask)
	b.I(isa.LD, rVal, rRec, 0, 0)
	// Branch on record contents: even records credit, odd ones debit.
	b.Imm(isa.ANDI, rSum, rVal, 1)
	b.Branch(isa.BNE, rSum, 0, "debit")
	b.Imm(isa.ADDI, rVal, rVal, 7)
	b.Jump("commit")
	b.Label("debit")
	b.R(isa.SUB, rVal, rVal, rOne)
	b.Label("commit")
	b.I(isa.ST, 0, rRec, rVal, 0)
	b.R(isa.XOR, rSum, rSum, rVal)
	b.Out(rSum)
	b.Imm(isa.ADDI, rTx, rTx, 1)
	b.Branch(isa.BNE, rTx, rLim, "txn")
	b.Halt()
	return b.MustBuild()
}

// Extended returns the full workload population: the named beam kernels,
// the server-style kernels, and a synthetic suite.
func Extended(synthCount int, seed uint64) []*isa.Program {
	progs := []*isa.Program{
		Lattice(12), MD5Like(200), PointerChase(32, 8), TransactionMix(16, 96),
	}
	progs = append(progs, Suite(synthCount, seed)...)
	return progs
}

// SynthConfig parameterizes a generated workload.
type SynthConfig struct {
	Name string
	Seed uint64
	// Iterations of the main loop.
	Iterations int
	// BodyLen is the number of generated body instructions per iteration.
	BodyLen int
	// MemFrac is the fraction of body slots that access memory.
	MemFrac float64
	// StoreFrac is the fraction of memory slots that are stores.
	StoreFrac float64
	// DeadFrac is the fraction of body slots writing registers that are
	// never consumed (dynamically dead code -> un-ACE).
	DeadFrac float64
	// SkipFrac is the fraction of slots preceded by a conditional
	// forward skip (exercises branch logic).
	SkipFrac float64
	// Footprint is the data-memory working-set size in words.
	Footprint int
}

// DefaultSynth returns a balanced configuration.
func DefaultSynth(name string, seed uint64) SynthConfig {
	return SynthConfig{
		Name:       name,
		Seed:       seed,
		Iterations: 64,
		BodyLen:    24,
		MemFrac:    0.25,
		StoreFrac:  0.4,
		DeadFrac:   0.15,
		SkipFrac:   0.08,
		Footprint:  64,
	}
}

// Synthetic generates a terminating workload per cfg. Registers r1..r8
// carry live data, r13/r14 receive dead writes, r9 is the loop counter,
// r10 its limit, r11 the memory base cursor, r12 scratch.
func Synthetic(cfg SynthConfig) *isa.Program {
	rng := stats.New(cfg.Seed)
	b := isa.NewBuilder(cfg.Name)
	if cfg.Footprint < 4 {
		cfg.Footprint = 4
	}
	for i := 0; i < cfg.Footprint; i++ {
		b.SetData(uint32(i), uint32(rng.Uint64()))
	}
	const (
		liveLo, liveHi = 1, 8
		rCnt, rLim     = 9, 10
		rBase          = 11
		rScratch       = 12
		deadLo, deadHi = 13, 14
	)
	live := func() uint8 { return uint8(liveLo + rng.Intn(liveHi-liveLo+1)) }
	dead := func() uint8 { return uint8(deadLo + rng.Intn(deadHi-deadLo+1)) }
	for r := uint8(liveLo); r <= liveHi; r++ {
		b.Imm(isa.ADDI, r, 0, int32(rng.Intn(512)))
	}
	b.Imm(isa.ADDI, rCnt, 0, 0)
	b.LoadConst(rLim, uint32(cfg.Iterations))
	b.Imm(isa.ADDI, rBase, 0, 0)
	b.Label("loop")
	alu := []isa.Op{isa.ADD, isa.SUB, isa.XOR, isa.AND, isa.OR, isa.MUL}
	for s := 0; s < cfg.BodyLen; s++ {
		if rng.Bool(cfg.SkipFrac) {
			// Conditional forward skip over the next instruction.
			b.I(isa.BEQ, 0, live(), live(), 1)
		}
		switch {
		case rng.Bool(cfg.MemFrac):
			off := int32(rng.Intn(cfg.Footprint))
			if rng.Bool(cfg.StoreFrac) {
				b.I(isa.ST, 0, rBase, live(), off)
			} else {
				b.I(isa.LD, live(), rBase, 0, off)
			}
		case rng.Bool(cfg.DeadFrac):
			b.R(alu[rng.Intn(len(alu))], dead(), live(), live())
		default:
			b.R(alu[rng.Intn(len(alu))], live(), live(), live())
		}
	}
	// Fold the live registers into a checksum and emit it each iteration.
	b.R(isa.XOR, rScratch, 1, 2)
	for r := uint8(3); r <= liveHi; r++ {
		b.R(isa.XOR, rScratch, rScratch, r)
	}
	b.Out(rScratch)
	b.Imm(isa.ADDI, rCnt, rCnt, 1)
	b.Branch(isa.BNE, rCnt, rLim, "loop")
	b.Halt()
	return b.MustBuild()
}

// Suite generates n synthetic workloads with varied instruction mixes,
// standing in for the paper's 547-workload server suite.
func Suite(n int, seed uint64) []*isa.Program {
	rng := stats.New(seed)
	progs := make([]*isa.Program, 0, n)
	for i := 0; i < n; i++ {
		cfg := DefaultSynth(fmt.Sprintf("synth%03d", i), rng.Uint64())
		cfg.Iterations = 32 + rng.Intn(96)
		cfg.BodyLen = 12 + rng.Intn(28)
		cfg.MemFrac = rng.Range(0.05, 0.45)
		cfg.StoreFrac = rng.Range(0.2, 0.6)
		cfg.DeadFrac = rng.Range(0.0, 0.35)
		cfg.SkipFrac = rng.Range(0.0, 0.15)
		cfg.Footprint = 16 << rng.Intn(4)
		progs = append(progs, Synthetic(cfg))
	}
	return progs
}

// Standard returns the named kernels plus a small synthetic population —
// the default workload set for the experiments.
func Standard(synthCount int, seed uint64) []*isa.Program {
	progs := []*isa.Program{Lattice(12), MD5Like(200)}
	progs = append(progs, Suite(synthCount, seed)...)
	return progs
}
