package workload

import "seqavf/internal/isa"

// SDCVirus builds a worst-case vulnerability workload modeled on the
// paper's SER-model-validation application (ref [8], "SDC Virus: An
// Application for SER Model Validation"): code constructed so that as
// much machine state as possible is architecturally required at all
// times, maximizing AVF and therefore the measurable SDC rate under a
// beam.
//
// Every general register stays live across iterations (each is read and
// folded into a checksum chain before being rewritten), a memory region
// is kept continuously live (each word stored is reloaded a lap later),
// and the checksum is emitted every iteration so no work is dynamically
// dead.
func SDCVirus(iters int) *isa.Program {
	if iters < 1 {
		iters = 1
	}
	b := isa.NewBuilder("sdcvirus")
	const (
		regLo, regHi = 1, 11 // live data registers
		rSum         = 12
		rCnt         = 13
		rLim         = 14
		bufLen       = 16
	)
	for i := uint32(0); i < bufLen; i++ {
		b.SetData(i, 0xA5A5+i)
	}
	for r := uint8(regLo); r <= regHi; r++ {
		b.Imm(isa.ADDI, r, 0, int32(r)*37)
	}
	b.Imm(isa.ADDI, rCnt, 0, 0)
	b.LoadConst(rLim, uint32(iters))
	b.Label("lap")
	// Fold every live register into the checksum, then refresh it from
	// its neighbor so the whole register file stays architecturally
	// required.
	b.R(isa.XOR, rSum, rSum, uint8(regLo))
	for r := uint8(regLo); r < regHi; r++ {
		b.R(isa.XOR, rSum, rSum, r+1)
		b.R(isa.ADD, r, r, r+1)
	}
	b.Imm(isa.ADDI, regHi, regHi, 1)
	// Memory liveness: reload the word stored on the previous lap, fold
	// it in, store the fresh checksum for the next lap.
	b.Imm(isa.ANDI, 15, rCnt, bufLen-1)
	b.I(isa.LD, regLo, 15, 0, 0)
	b.R(isa.XOR, rSum, rSum, regLo)
	b.I(isa.ST, 0, 15, rSum, 0)
	// Observable every iteration: nothing is dead.
	b.Out(rSum)
	b.Imm(isa.ADDI, rCnt, rCnt, 1)
	b.Branch(isa.BNE, rCnt, rLim, "lap")
	b.Halt()
	return b.MustBuild()
}
