package workload

import (
	"strings"
	"testing"

	"seqavf/internal/isa"
)

func TestLatticeTerminatesAndOutputs(t *testing.T) {
	for _, n := range []int{3, 6, 12} {
		p := Lattice(n)
		res, err := isa.Exec(p, 0)
		if err != nil {
			t.Fatalf("lattice %d: %v", n, err)
		}
		if !res.Halted {
			t.Fatalf("lattice %d did not halt", n)
		}
		if len(res.Out) != 1 {
			t.Fatalf("lattice %d out = %v", n, res.Out)
		}
		// The kernel must actually store results to the second buffer.
		stored := 0
		for a := range res.Mem {
			if a >= uint32(n*n) {
				stored++
			}
		}
		if stored == 0 {
			t.Fatalf("lattice %d stored nothing", n)
		}
	}
}

func TestLatticeDeterministic(t *testing.T) {
	a, _ := isa.Exec(Lattice(8), 0)
	b, _ := isa.Exec(Lattice(8), 0)
	if a.Out[0] != b.Out[0] {
		t.Fatal("lattice not deterministic")
	}
}

func TestMD5LikeMixes(t *testing.T) {
	p := MD5Like(100)
	res, err := isa.Exec(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || len(res.Out) != 4 {
		t.Fatalf("halted=%v out=%v", res.Halted, res.Out)
	}
	// Different round counts give different digests.
	res2, _ := isa.Exec(MD5Like(101), 0)
	same := 0
	for i := range res.Out {
		if res.Out[i] == res2.Out[i] {
			same++
		}
	}
	if same == 4 {
		t.Fatal("digest did not change with round count")
	}
	// No memory traffic in the register-only kernel.
	for i, te := range res.Trace {
		if te.Instr.IsMem() {
			t.Fatalf("md5-like performed memory access at %d: %v", i, te.Instr)
		}
	}
}

func TestSyntheticTerminates(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		cfg := DefaultSynth("s", seed)
		p := Synthetic(cfg)
		res, err := isa.Exec(p, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Halted {
			t.Fatalf("seed %d did not halt", seed)
		}
		if len(res.Out) != cfg.Iterations {
			t.Fatalf("seed %d: %d outputs, want %d", seed, len(res.Out), cfg.Iterations)
		}
	}
}

func TestSyntheticRespectsMix(t *testing.T) {
	cfg := DefaultSynth("memheavy", 3)
	cfg.MemFrac = 0.9
	p := Synthetic(cfg)
	res, err := isa.Exec(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := 0
	for _, te := range res.Trace {
		if te.Instr.IsMem() {
			mem++
		}
	}
	frac := float64(mem) / float64(len(res.Trace))
	if frac < 0.4 {
		t.Fatalf("memory fraction = %v, want heavy", frac)
	}

	cfg2 := DefaultSynth("nomem", 3)
	cfg2.MemFrac = 0
	res2, err := isa.Exec(Synthetic(cfg2), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, te := range res2.Trace {
		if te.Instr.IsMem() {
			t.Fatal("MemFrac=0 workload accessed memory")
		}
	}
}

func TestSuiteVariety(t *testing.T) {
	progs := Suite(8, 99)
	if len(progs) != 8 {
		t.Fatalf("suite size = %d", len(progs))
	}
	names := make(map[string]bool)
	lens := make(map[int]bool)
	for _, p := range progs {
		if names[p.Name] {
			t.Fatalf("duplicate workload name %s", p.Name)
		}
		names[p.Name] = true
		lens[len(p.Code)] = true
		res, err := isa.Exec(p, 0)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !res.Halted {
			t.Fatalf("%s did not halt", p.Name)
		}
	}
	if len(lens) < 3 {
		t.Fatalf("suite lacks variety: %d distinct code sizes", len(lens))
	}
}

func TestStandardIncludesNamedKernels(t *testing.T) {
	progs := Standard(3, 1)
	if len(progs) != 5 {
		t.Fatalf("standard set size = %d", len(progs))
	}
	if progs[0].Name != "lattice12" || progs[1].Name != "md5like200" {
		t.Fatalf("named kernels missing: %s %s", progs[0].Name, progs[1].Name)
	}
}

func TestSuiteDeterministicAcrossCalls(t *testing.T) {
	a := Suite(3, 5)
	b := Suite(3, 5)
	for i := range a {
		if len(a[i].Code) != len(b[i].Code) {
			t.Fatal("suite generation not deterministic")
		}
		for j := range a[i].Code {
			if a[i].Code[j] != b[i].Code[j] {
				t.Fatal("instruction mismatch")
			}
		}
	}
}

func TestPointerChase(t *testing.T) {
	p := PointerChase(16, 4)
	res, err := isa.Exec(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || len(res.Out) != 1 {
		t.Fatalf("halted=%v out=%v", res.Halted, res.Out)
	}
	// Every loop iteration is a dependent load.
	loads := 0
	for _, te := range res.Trace {
		if te.Instr.Op == isa.LD {
			loads++
		}
	}
	if loads != 16*4 {
		t.Fatalf("loads = %d, want 64", loads)
	}
	// The ring visits every node: the traversal covers all addresses.
	seen := make(map[uint32]bool)
	for _, te := range res.Trace {
		if te.Instr.Op == isa.LD {
			seen[te.Addr] = true
		}
	}
	if len(seen) != 16 {
		t.Fatalf("ring visited %d nodes, want 16", len(seen))
	}
}

func TestTransactionMix(t *testing.T) {
	p := TransactionMix(16, 40)
	res, err := isa.Exec(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || len(res.Out) != 40 {
		t.Fatalf("halted=%v outs=%d", res.Halted, len(res.Out))
	}
	// Transactions perform read-modify-write pairs and branch both ways.
	var lds, sts, takenBr, notTaken int
	for _, te := range res.Trace {
		switch {
		case te.Instr.Op == isa.LD:
			lds++
		case te.Instr.Op == isa.ST:
			sts++
		case te.Instr.Op == isa.BNE && te.Instr.Imm != 0:
			if te.Taken {
				takenBr++
			} else {
				notTaken++
			}
		}
	}
	if lds != 40 || sts != 40 {
		t.Fatalf("ld/st = %d/%d, want 40/40", lds, sts)
	}
	if takenBr == 0 || notTaken == 0 {
		t.Fatalf("branch outcomes unbalanced: %d taken, %d not", takenBr, notTaken)
	}
}

func TestExtendedPopulation(t *testing.T) {
	progs := Extended(2, 9)
	if len(progs) != 6 {
		t.Fatalf("extended size = %d", len(progs))
	}
	for _, p := range progs {
		res, err := isa.Exec(p, 0)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !res.Halted {
			t.Fatalf("%s did not halt", p.Name)
		}
	}
}

func TestSDCVirusMaximizesVulnerability(t *testing.T) {
	p := SDCVirus(64)
	res, err := isa.Exec(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || len(res.Out) != 64 {
		t.Fatalf("halted=%v outs=%d", res.Halted, len(res.Out))
	}
	// Virtually nothing is dynamically dead.
	flags := isa.ACEFlags(res.Trace, res.Halted)
	ace := 0
	for _, f := range flags {
		if f {
			ace++
		}
	}
	frac := float64(ace) / float64(len(flags))
	if frac < 0.9 {
		t.Fatalf("SDC virus ACE fraction = %v, want > 0.9", frac)
	}
}

// TestKernelsDisassembleAndReassemble: the generated kernels round-trip
// through the assembly text format with identical behavior.
func TestKernelsDisassembleAndReassemble(t *testing.T) {
	for _, p := range []*isa.Program{Lattice(5), MD5Like(15), TransactionMix(8, 6), SDCVirus(8)} {
		var sb strings.Builder
		if err := isa.WriteAsm(&sb, p); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		p2, err := isa.ParseAsm(p.Name, strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("%s: reassembly: %v", p.Name, err)
		}
		a, err := isa.Exec(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := isa.Exec(p2, 0)
		if err != nil {
			t.Fatalf("%s: reassembled exec: %v", p.Name, err)
		}
		if len(a.Out) != len(b.Out) {
			t.Fatalf("%s: outputs differ in length", p.Name)
		}
		for i := range a.Out {
			if a.Out[i] != b.Out[i] {
				t.Fatalf("%s: out[%d] = %d vs %d", p.Name, i, a.Out[i], b.Out[i])
			}
		}
	}
}
