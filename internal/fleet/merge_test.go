package fleet

import (
	"math"
	"strings"
	"testing"
)

func mustParse(t *testing.T, page string) *Exposition {
	t.Helper()
	exp, err := ParseExposition([]byte(page))
	if err != nil {
		t.Fatalf("ParseExposition: %v\npage:\n%s", err, page)
	}
	return exp
}

func sampleValue(t *testing.T, exp *Exposition, family, name, labels string) float64 {
	t.Helper()
	fam, ok := exp.byName[family]
	if !ok {
		t.Fatalf("family %q missing", family)
	}
	for _, s := range fam.Samples {
		if s.Name == name && s.Labels == labels {
			return s.Value
		}
	}
	t.Fatalf("sample %s%s missing from family %q", name, labels, family)
	return 0
}

func TestMergeCountersAndGauges(t *testing.T) {
	a := mustParse(t, `# TYPE server_sweep_ok counter
server_sweep_ok 3
# TYPE gateway_replica_unhealthy gauge
gateway_replica_unhealthy 1
`)
	b := mustParse(t, `# TYPE server_sweep_ok counter
server_sweep_ok 4
# TYPE gateway_replica_unhealthy gauge
gateway_replica_unhealthy 0
# TYPE only_here counter
only_here 9
`)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := sampleValue(t, m, "server_sweep_ok", "server_sweep_ok", ""); got != 7 {
		t.Fatalf("merged counter = %v, want 7", got)
	}
	if got := sampleValue(t, m, "gateway_replica_unhealthy", "gateway_replica_unhealthy", ""); got != 1 {
		t.Fatalf("merged gauge = %v, want 1", got)
	}
	if got := sampleValue(t, m, "only_here", "only_here", ""); got != 9 {
		t.Fatalf("one-sided family = %v, want 9", got)
	}
}

func TestMergeHistogramBuckets(t *testing.T) {
	page := `# TYPE req_seconds histogram
req_seconds_bucket{le="0.05"} 2
req_seconds_bucket{le="0.5"} 5
req_seconds_bucket{le="+Inf"} 6
req_seconds_sum 1.25
req_seconds_count 6
`
	a, b := mustParse(t, page), mustParse(t, page)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	fam := m.byName["req_seconds"]
	if fam == nil || fam.Type != "histogram" {
		t.Fatalf("merged histogram family missing or untyped: %+v", fam)
	}
	if got := sampleValue(t, m, "req_seconds", "req_seconds_bucket", `{le="0.5"}`); got != 10 {
		t.Fatalf("bucket le=0.5 = %v, want 10", got)
	}
	if got := sampleValue(t, m, "req_seconds", "req_seconds_bucket", `{le="+Inf"}`); got != 12 {
		t.Fatalf("bucket le=+Inf = %v, want 12", got)
	}
	if got := sampleValue(t, m, "req_seconds", "req_seconds_sum", ""); got != 2.5 {
		t.Fatalf("sum = %v, want 2.5", got)
	}
	if got := sampleValue(t, m, "req_seconds", "req_seconds_count", ""); got != 12 {
		t.Fatalf("count = %v, want 12", got)
	}
	// The rendered page must re-parse and keep bucket order.
	re := mustParse(t, m.String())
	if got := sampleValue(t, re, "req_seconds", "req_seconds_count", ""); got != 12 {
		t.Fatalf("re-parsed count = %v, want 12", got)
	}
	var bounds []string
	for _, s := range re.byName["req_seconds"].Samples {
		if strings.HasSuffix(s.Name, "_bucket") {
			bounds = append(bounds, s.Labels)
		}
	}
	want := []string{`{le="0.05"}`, `{le="0.5"}`, `{le="+Inf"}`}
	if strings.Join(bounds, " ") != strings.Join(want, " ") {
		t.Fatalf("bucket order drifted: %v, want %v", bounds, want)
	}
}

func TestMergeTypeConflict(t *testing.T) {
	a := mustParse(t, "# TYPE x counter\nx 1\n")
	b := mustParse(t, "# TYPE x gauge\nx 2\n")
	if _, err := Merge(a, b); err == nil {
		t.Fatal("merging counter-vs-gauge family succeeded, want error")
	}
}

func TestParseExpositionErrors(t *testing.T) {
	bad := []string{
		"# TYPE onlythree counter extra junk\n",
		"# TYPE 9name counter\n",
		"# TYPE x wat\n",
		"name_no_value\n",
		"x notanumber\n",
		`x{le="0.5` + "\n", // unterminated label block
		"9name 1\n",
		"x 1 2 3\n",
	}
	for _, page := range bad {
		if _, err := ParseExposition([]byte(page)); err == nil {
			t.Fatalf("accepted malformed page %q", page)
		}
	}
	// Oversized input is rejected outright.
	if _, err := ParseExposition(make([]byte, maxExpositionBytes+1)); err == nil {
		t.Fatal("accepted oversized exposition")
	}
}

func TestParseExpositionTolerates(t *testing.T) {
	exp := mustParse(t, "# HELP x helpful words here\n# just a comment\n\r\nx 1 1712345678\nx{a=\"b c}d\"} 2\n")
	if got := sampleValue(t, exp, "x", "x", ""); got != 1 {
		t.Fatalf("timestamped sample = %v, want 1", got)
	}
	if got := sampleValue(t, exp, "x", "x", `{a="b c}d"}`); got != 2 {
		t.Fatalf("quoted-brace label sample = %v, want 2", got)
	}
}

func TestFormatPromValueSpecials(t *testing.T) {
	for v, want := range map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		2.5:          "2.5",
	} {
		if got := formatPromValue(v); got != want {
			t.Fatalf("formatPromValue(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatPromValue(math.NaN()); got != "NaN" {
		t.Fatalf("formatPromValue(NaN) = %q", got)
	}
}

// FuzzMergeExposition: parsing never panics; an accepted page merged
// with itself re-parses, and every sample's value exactly doubles (or
// stays NaN) — the point-wise-sum contract.
func FuzzMergeExposition(f *testing.F) {
	f.Add("# TYPE a counter\na 1\na{x=\"y\"} 2\n")
	f.Add("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 0.5\nh_count 3\n")
	f.Add("free 1 99\n# HELP free text\n")
	f.Fuzz(func(t *testing.T, page string) {
		exp, err := ParseExposition([]byte(page))
		if err != nil {
			return
		}
		exp2, err := ParseExposition([]byte(page))
		if err != nil {
			t.Fatalf("page parsed once but not twice: %v", err)
		}
		merged, err := Merge(exp, exp2)
		if err != nil {
			t.Fatalf("self-merge failed: %v", err)
		}
		re, err := ParseExposition([]byte(merged.String()))
		if err != nil {
			t.Fatalf("merged page does not re-parse: %v\npage:\n%s", err, merged.String())
		}
		for _, fam := range exp.Families {
			for _, s := range fam.Samples {
				reFam, ok := re.byName[fam.Name]
				if !ok {
					// The family may have been folded into a histogram family
					// under a different name; find the sample anywhere.
					reFam = findSampleFamily(re, s.Name, s.Labels)
					if reFam == nil {
						t.Fatalf("sample %s%s lost in merge", s.Name, s.Labels)
					}
				}
				got, found := lookup(reFam, s.Name, s.Labels)
				if !found {
					reFam = findSampleFamily(re, s.Name, s.Labels)
					if reFam == nil {
						t.Fatalf("sample %s%s lost in merge", s.Name, s.Labels)
					}
					got, _ = lookup(reFam, s.Name, s.Labels)
				}
				want := s.Value * 2
				if math.IsNaN(s.Value) {
					if !math.IsNaN(got) {
						t.Fatalf("sample %s%s: NaN became %v", s.Name, s.Labels, got)
					}
					continue
				}
				// Compare through the same format round-trip the merged page
				// went through.
				if formatPromValue(got) != formatPromValue(want) {
					t.Fatalf("sample %s%s: self-merge = %v, want %v", s.Name, s.Labels, got, want)
				}
			}
		}
	})
}

func findSampleFamily(e *Exposition, name, labels string) *Family {
	for _, fam := range e.Families {
		if _, ok := lookup(fam, name, labels); ok {
			return fam
		}
	}
	return nil
}

func lookup(f *Family, name, labels string) (float64, bool) {
	for _, s := range f.Samples {
		if s.Name == name && s.Labels == labels {
			return s.Value, true
		}
	}
	return 0, false
}
