package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"seqavf/internal/netlist"
	"seqavf/internal/obs"
)

// Config parameterizes a Gateway. Replicas is required; everything else
// has serviceable defaults.
type Config struct {
	// Replicas is the static fleet: normalized base URLs (see
	// ParseReplicaList). Routing keys rendezvous-hash over this list.
	Replicas []string
	// Obs receives gateway telemetry: per-route counters, the unhealthy-
	// replica gauge, and request spans. nil disables instrumentation.
	Obs *obs.Registry
	// Client performs proxied requests. nil uses a client with a 10s
	// timeout.
	Client *http.Client
	// MaxBodyBytes caps request bodies buffered for routing. 0 means 8MB.
	MaxBodyBytes int64
	// Retries bounds additional replicas tried after the owner fails
	// (dead replica → next hash choice). 0 means every remaining replica.
	Retries int
	// Backoff is the pause between fail-over attempts. 0 means 50ms.
	Backoff time.Duration
	// Cooldown quarantines a replica after a transport failure: it drops
	// to the back of every preference list until the cooldown elapses.
	// 0 means 5s.
	Cooldown time.Duration
}

// Gateway fronts a fleet of seqavfd replicas: it consistent-hash routes
// design traffic (sweeps, uploads, edits, artifact fetches) to the
// owning replica, fails over with backoff when the owner is dead,
// propagates W3C trace context so a request's span tree continues
// inside the replica, and aggregates the fleet's Prometheus
// expositions on its own /metrics.
type Gateway struct {
	cfg    Config
	reg    *obs.Registry
	client *http.Client

	mu   sync.Mutex
	down map[string]time.Time // replica → quarantined until
}

// New validates cfg and returns a Gateway.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("fleet: gateway needs at least one replica")
	}
	seen := make(map[string]bool)
	for _, r := range cfg.Replicas {
		norm, err := NormalizeReplica(r)
		if err != nil {
			return nil, err
		}
		if norm != r {
			return nil, fmt.Errorf("fleet: replica %q is not normalized (want %q)", r, norm)
		}
		if seen[r] {
			return nil, fmt.Errorf("fleet: duplicate replica %q", r)
		}
		seen[r] = true
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.Retries <= 0 || cfg.Retries > len(cfg.Replicas)-1 {
		cfg.Retries = len(cfg.Replicas) - 1
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	return &Gateway{
		cfg:    cfg,
		reg:    cfg.Obs,
		client: cfg.Client,
		down:   make(map[string]time.Time),
	}, nil
}

// Replicas returns the configured replica list.
func (g *Gateway) Replicas() []string { return append([]string(nil), g.cfg.Replicas...) }

// Handler returns the gateway mux:
//
//	GET  /healthz        — fleet health: per-replica liveness fan-out
//	GET  /metrics        — fleet-wide Prometheus exposition (merged)
//	GET  /metrics.json   — the gateway's own obs registry snapshot
//	GET  /v1/designs     — union of every replica's registered designs
//	POST /v1/designs     — routed to the design's owner (netlist name),
//	                       then replicated to the runner-up candidate
//	POST /v1/designs/{name}/edit — routed to the owner, then replicated
//	POST /v1/sweep       — routed to the design's owner
//	POST /v1/harden      — routed to the owner; multi-budget sweeps are
//	                       split across the top-2 candidates and merged
//	GET  /v1/artifacts/{fingerprint} — routed by artifact fingerprint
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.Handle("GET /metrics.json", g.reg.MetricsHandler())
	mux.HandleFunc("GET /v1/designs", g.handleListDesigns)
	mux.HandleFunc("POST /v1/designs", g.handleUpload)
	mux.HandleFunc("POST /v1/designs/{name}/edit", g.handleEdit)
	mux.HandleFunc("POST /v1/sweep", g.handleSweep)
	mux.HandleFunc("POST /v1/harden", g.handleHarden)
	mux.HandleFunc("GET /v1/artifacts/{fingerprint}", g.handleArtifact)
	return mux
}

// startRequest opens the gateway's request span, adopting an incoming
// traceparent and echoing the assigned one, exactly like the replica
// does — so client → gateway → replica is one trace.
func (g *Gateway) startRequest(w http.ResponseWriter, r *http.Request, endpoint string) (*obs.Span, context.Context) {
	ctx := r.Context()
	if tid, pid, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		ctx = obs.ContextWithRemoteParent(ctx, tid, pid)
	}
	sp := g.reg.StartSpanContext(ctx, "gateway.request")
	sp.SetAttr("endpoint", endpoint)
	if tid := sp.TraceID(); !tid.IsZero() {
		w.Header().Set("traceparent", obs.FormatTraceparent(tid, sp.SpanID()))
	}
	return sp, obs.ContextWithSpan(ctx, sp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (g *Gateway) writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	g.reg.Counter("gateway.errors").Inc()
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// healthy reports whether a replica is outside its quarantine window.
func (g *Gateway) healthy(replica string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	until, quarantined := g.down[replica]
	if quarantined && time.Now().After(until) {
		delete(g.down, replica)
		g.reg.Gauge("gateway.replica_unhealthy").Set(float64(len(g.down)))
		return true
	}
	return !quarantined
}

// markDown quarantines a replica for the cooldown; markUp clears it on
// the first successful response.
func (g *Gateway) markDown(replica string) {
	g.mu.Lock()
	g.down[replica] = time.Now().Add(g.cfg.Cooldown)
	g.reg.Gauge("gateway.replica_unhealthy").Set(float64(len(g.down)))
	g.mu.Unlock()
}

func (g *Gateway) markUp(replica string) {
	g.mu.Lock()
	if _, ok := g.down[replica]; ok {
		delete(g.down, replica)
		g.reg.Gauge("gateway.replica_unhealthy").Set(float64(len(g.down)))
	}
	g.mu.Unlock()
}

// rank orders the fleet for a routing key: rendezvous order, with
// quarantined replicas demoted to the tail (they are still tried last —
// a fully dark fleet should produce connection errors, not a routing
// dead end).
func (g *Gateway) rank(key string) []string {
	ranked := Rank(key, g.cfg.Replicas)
	healthy := make([]string, 0, len(ranked))
	var quarantined []string
	for _, r := range ranked {
		if g.healthy(r) {
			healthy = append(healthy, r)
		} else {
			quarantined = append(quarantined, r)
		}
	}
	return append(healthy, quarantined...)
}

// retryableStatus reports replica responses worth failing over: the
// gateway-ish 5xx family a dying or draining replica emits. Everything
// else — including 429 backpressure and 4xx client errors — passes
// through, because the next hash choice would answer no differently
// (and a 429 must reach the client so it backs off).
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout
}

// forward proxies one request to the fleet: replicas are tried in rank
// order (owner first), transport failures and retryable statuses
// quarantine the replica and fail over to the next choice after the
// backoff, and the first conclusive response streams back to the
// client. key is the routing key; pathAndQuery is the upstream path;
// body may be nil for GETs. Returns the replica that served the
// conclusive response and its status code ("" and 502 when no replica
// answered) so callers can replicate writes to the runner-up.
func (g *Gateway) forward(ctx context.Context, w http.ResponseWriter, key, method, pathAndQuery, contentType string, body []byte) (string, int) {
	ranked := g.rank(key)
	attempts := g.cfg.Retries + 1
	if attempts > len(ranked) {
		attempts = len(ranked)
	}
	sp := obs.SpanFromContext(ctx)
	var lastErr error
	for i := 0; i < attempts; i++ {
		replica := ranked[i]
		if i > 0 {
			g.reg.Counter("gateway.retries").Inc()
			select {
			case <-time.After(g.cfg.Backoff):
			case <-ctx.Done():
				g.reg.Counter("gateway.proxy_errors").Inc()
				g.writeErr(w, http.StatusBadGateway, "fleet: %v", ctx.Err())
				return "", http.StatusBadGateway
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, replica+pathAndQuery, rd)
		if err != nil {
			lastErr = err
			continue
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if sp != nil && !sp.TraceID().IsZero() {
			req.Header.Set("traceparent", obs.FormatTraceparent(sp.TraceID(), sp.SpanID()))
		}
		resp, err := g.client.Do(req)
		if err != nil {
			lastErr = err
			g.reg.Counter("gateway.replica_errors").Inc()
			g.markDown(replica)
			continue
		}
		if retryableStatus(resp.StatusCode) && i+1 < attempts {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			lastErr = fmt.Errorf("replica %s returned %s", replica, resp.Status)
			g.reg.Counter("gateway.replica_errors").Inc()
			g.markDown(replica)
			continue
		}
		g.markUp(replica)
		g.reg.Counter("gateway.route_total").Inc()
		sp.SetAttr("replica", replica)
		sp.SetAttr("attempts", i+1)
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		return replica, resp.StatusCode
	}
	g.reg.Counter("gateway.proxy_errors").Inc()
	sp.SetAttr("error", fmt.Sprint(lastErr))
	g.writeErr(w, http.StatusBadGateway, "fleet: no replica answered for key %q: %v", key, lastErr)
	return "", http.StatusBadGateway
}

// readBody buffers a routed request's body under the configured cap.
func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			g.writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		} else {
			g.writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return body, true
}

func (g *Gateway) handleSweep(w http.ResponseWriter, r *http.Request) {
	g.reg.Counter("gateway.sweep_requests").Inc()
	sp, ctx := g.startRequest(w, r, "/v1/sweep")
	defer sp.End()
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	// Only the routing key is needed here; the owning replica re-decodes
	// and fully validates the envelope.
	var env struct {
		Design string `json:"design"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		g.writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if env.Design == "" {
		g.writeErr(w, http.StatusBadRequest, "request names no design to route by")
		return
	}
	sp.SetAttr("design", env.Design)
	g.forward(ctx, w, env.Design, http.MethodPost, "/v1/sweep", "application/json", body)
}

func (g *Gateway) handleUpload(w http.ResponseWriter, r *http.Request) {
	g.reg.Counter("gateway.upload_requests").Inc()
	sp, ctx := g.startRequest(w, r, "/v1/designs")
	defer sp.End()
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	// The routing key is the name the design will register under: the
	// ?name= override when present, else the netlist's own design name.
	name := r.URL.Query().Get("name")
	if name == "" {
		d, err := netlist.Parse(bytes.NewReader(body))
		if err != nil {
			g.writeErr(w, http.StatusUnprocessableEntity, "parsing netlist to route upload: %v", err)
			return
		}
		name = d.Name
	}
	sp.SetAttr("design", name)
	path := "/v1/designs"
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	replica, status := g.forward(ctx, w, name, http.MethodPost, path, r.Header.Get("Content-Type"), body)
	if status >= 200 && status < 300 {
		g.replicateDesign(ctx, replica, name, r.Header.Get("Content-Type"), body)
	}
}

func (g *Gateway) handleEdit(w http.ResponseWriter, r *http.Request) {
	g.reg.Counter("gateway.edit_requests").Inc()
	name := r.PathValue("name")
	sp, ctx := g.startRequest(w, r, "/v1/designs/{name}/edit")
	defer sp.End()
	sp.SetAttr("design", name)
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	replica, status := g.forward(ctx, w, name, http.MethodPost,
		"/v1/designs/"+strings.ReplaceAll(name, "/", "%2F")+"/edit",
		r.Header.Get("Content-Type"), body)
	if status >= 200 && status < 300 {
		g.replicateDesign(ctx, replica, name, r.Header.Get("Content-Type"), body)
	}
}

// replicateDesign best-effort copies a design write that just succeeded
// on `served` to the highest-ranked other replica, so the top-2
// rendezvous candidates both hold the design. Without this, an owner
// failure strands routed reads: /v1/sweep and /v1/harden fail over to
// the runner-up and get a 404 for a design only the dead owner ever
// saw. The upload and edit bodies are both full netlists, so one
// sequence covers both: try the edit endpoint (idempotent when the
// secondary already has the design), and fall back to a named upload
// when it answers 404. Failures only count gateway.design_fanout_errors
// — the primary write already succeeded and was acked to the client.
func (g *Gateway) replicateDesign(ctx context.Context, served, name, contentType string, body []byte) {
	if served == "" || len(g.cfg.Replicas) < 2 {
		return
	}
	var secondary string
	for _, r := range Rank(name, g.cfg.Replicas) {
		if r != served {
			secondary = r
			break
		}
	}
	if secondary == "" {
		return
	}
	editPath := "/v1/designs/" + strings.ReplaceAll(name, "/", "%2F") + "/edit"
	status, err := g.post(ctx, secondary+editPath, contentType, body)
	if err == nil && status == http.StatusNotFound {
		status, err = g.post(ctx, secondary+"/v1/designs?name="+url.QueryEscape(name), contentType, body)
	}
	if err != nil || status < 200 || status >= 300 {
		g.reg.Counter("gateway.design_fanout_errors").Inc()
		return
	}
	g.reg.Counter("gateway.design_fanout_total").Inc()
}

// post issues an internal POST (replication traffic) and returns the
// status code; the response body is drained and discarded.
func (g *Gateway) post(ctx context.Context, url, contentType string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if sp := obs.SpanFromContext(ctx); sp != nil && !sp.TraceID().IsZero() {
		req.Header.Set("traceparent", obs.FormatTraceparent(sp.TraceID(), sp.SpanID()))
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	return resp.StatusCode, nil
}

func (g *Gateway) handleArtifact(w http.ResponseWriter, r *http.Request) {
	g.reg.Counter("gateway.artifact_requests").Inc()
	fp := r.PathValue("fingerprint")
	sp, ctx := g.startRequest(w, r, "/v1/artifacts/{fingerprint}")
	defer sp.End()
	sp.SetAttr("fingerprint", fp)
	g.forward(ctx, w, fp, http.MethodGet, "/v1/artifacts/"+fp, "", nil)
}

// handleListDesigns unions GET /v1/designs across the fleet: with
// rendezvous routing each design registers on one owner, so the fleet's
// catalog is the deduplicated union of the replicas' catalogs.
func (g *Gateway) handleListDesigns(w http.ResponseWriter, r *http.Request) {
	sp, ctx := g.startRequest(w, r, "/v1/designs")
	defer sp.End()
	type reply struct {
		replica string
		infos   []json.RawMessage
		err     error
	}
	replies := fanout(g, func(replica string) reply {
		var infos []json.RawMessage
		err := g.getJSON(ctx, replica+"/v1/designs", &infos)
		return reply{replica, infos, err}
	})
	seen := make(map[string]json.RawMessage)
	errs := 0
	for _, rep := range replies {
		if rep.err != nil {
			errs++
			continue
		}
		for _, raw := range rep.infos {
			var named struct {
				Name string `json:"name"`
			}
			if json.Unmarshal(raw, &named) == nil && named.Name != "" {
				seen[named.Name] = raw
			}
		}
	}
	if errs == len(replies) {
		g.writeErr(w, http.StatusBadGateway, "fleet: no replica answered /v1/designs")
		return
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]json.RawMessage, len(names))
	for i, n := range names {
		out[i] = seen[n]
	}
	writeJSON(w, http.StatusOK, out)
}

// ReplicaHealth is one replica's row in the gateway /healthz reply.
type ReplicaHealth struct {
	Replica string `json:"replica"`
	OK      bool   `json:"ok"`
	Designs int    `json:"designs,omitempty"`
	Error   string `json:"error,omitempty"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_, ctx := g.startRequest(w, r, "/healthz")
	rows := fanout(g, func(replica string) ReplicaHealth {
		var hz struct {
			Designs int `json:"designs"`
		}
		if err := g.getJSON(ctx, replica+"/healthz", &hz); err != nil {
			return ReplicaHealth{Replica: replica, Error: err.Error()}
		}
		return ReplicaHealth{Replica: replica, OK: true, Designs: hz.Designs}
	})
	up := 0
	for _, row := range rows {
		if row.OK {
			up++
		}
	}
	status, state := http.StatusOK, "ok"
	switch {
	case up == 0:
		status, state = http.StatusServiceUnavailable, "down"
	case up < len(rows):
		state = "degraded"
	}
	writeJSON(w, status, map[string]any{
		"status":   state,
		"replicas": rows,
	})
}

// handleMetrics serves the fleet-wide exposition: every reachable
// replica's /metrics page plus the gateway's own registry, summed
// point-wise. Unreachable or unparseable replicas are skipped and
// counted (gateway.scrape_errors) — a dead replica must not take the
// fleet's dashboards down with it.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	_, ctx := g.startRequest(w, r, "/metrics")
	pages := fanout(g, func(replica string) *Exposition {
		data, err := g.get(ctx, replica+"/metrics")
		if err != nil {
			g.reg.Counter("gateway.scrape_errors").Inc()
			return nil
		}
		exp, err := ParseExposition(data)
		if err != nil {
			g.reg.Counter("gateway.scrape_errors").Inc()
			return nil
		}
		return exp
	})
	var own strings.Builder
	_ = g.reg.WriteProm(&own)
	if exp, err := ParseExposition([]byte(own.String())); err == nil {
		pages = append(pages, exp)
	}
	merged, err := Merge(pages...)
	if err != nil {
		g.writeErr(w, http.StatusInternalServerError, "merging expositions: %v", err)
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	var sb strings.Builder
	merged.WriteTo(&sb)
	io.WriteString(w, sb.String())
}

// fanout runs fn against every replica concurrently and returns the
// results in replica order. Methods cannot be generic, so the
// aggregation endpoints call this free function with the gateway as the
// first argument.
func fanout[T any](g *Gateway, fn func(replica string) T) []T {
	out := make([]T, len(g.cfg.Replicas))
	var wg sync.WaitGroup
	for i, replica := range g.cfg.Replicas {
		wg.Add(1)
		go func(i int, replica string) {
			defer wg.Done()
			out[i] = fn(replica)
		}(i, replica)
	}
	wg.Wait()
	return out
}

// get fetches a URL through the gateway's client.
func (g *Gateway) get(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxExpositionBytes+1))
}

// getJSON fetches and decodes a JSON endpoint.
func (g *Gateway) getJSON(ctx context.Context, url string, v any) error {
	data, err := g.get(ctx, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
