package fleet

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-exposition (format 0.0.4) parsing and merging. The
// gateway scrapes every replica's /metrics, parses each page, and sums
// series point-wise to serve one fleet-wide exposition: counters and
// gauges add, and histogram _bucket/_sum/_count series add per le=
// label — sound because every replica registers the latency histograms
// with the identical fixed bucket layout (obs.LatencyBuckets). Exponent
// histograms merge by bucket-bound union, which stays cumulative-
// monotone but is only as aligned as the populated buckets; fleet
// dashboards should read the FixedHistogram families, as documented in
// internal/obs/prom.go.

// Exposition is a parsed metrics page: typed families in input order,
// each holding its samples in input order.
type Exposition struct {
	Families []*Family
	byName   map[string]*Family
}

// Family is one metric family: the TYPE declaration plus every sample
// whose name belongs to it (for histograms, the _bucket/_sum/_count
// series).
type Family struct {
	Name    string
	Type    string // "counter", "gauge", "histogram", or "untyped"
	Samples []*Sample
	byKey   map[string]*Sample
}

// Sample is one series point: the full sample name (family name, or
// family name + _bucket/_sum/_count for histograms), its raw label
// block (`{le="0.05"}` or empty), and the value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// key identifies a series within a family.
func (s *Sample) key() string { return s.Name + s.Labels }

const (
	maxExpositionBytes  = 8 << 20
	maxExpositionSeries = 100000
)

// ParseExposition parses one Prometheus text page. It accepts the
// subset the obs registry emits (TYPE comments, unlabeled samples, and
// label blocks) plus HELP/arbitrary comments and optional timestamps,
// and rejects malformed names, label blocks, and values with a
// line-numbered error. Inputs beyond 8MB or 100k series are rejected
// outright so a misbehaving replica cannot balloon the gateway.
func ParseExposition(data []byte) (*Exposition, error) {
	if len(data) > maxExpositionBytes {
		return nil, fmt.Errorf("fleet: exposition exceeds %d bytes", maxExpositionBytes)
	}
	exp := &Exposition{byName: make(map[string]*Family)}
	series := 0
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			// Only "# TYPE name type" is structural; HELP and free-form
			// comments pass through unrecorded.
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("fleet: exposition line %d: malformed TYPE comment", ln+1)
				}
				name, typ := fields[2], fields[3]
				if !validPromName(name) {
					return nil, fmt.Errorf("fleet: exposition line %d: bad family name %q", ln+1, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("fleet: exposition line %d: unknown type %q", ln+1, typ)
				}
				fam := exp.family(name)
				if fam.Type != "untyped" && fam.Type != typ {
					return nil, fmt.Errorf("fleet: exposition line %d: family %q declared both %s and %s",
						ln+1, fam.Name, fam.Type, typ)
				}
				fam.Type = typ
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("fleet: exposition line %d: %v", ln+1, err)
		}
		series++
		if series > maxExpositionSeries {
			return nil, fmt.Errorf("fleet: exposition exceeds %d series", maxExpositionSeries)
		}
		fam := exp.familyForSample(name)
		fam.add(&Sample{Name: name, Labels: labels, Value: value})
	}
	return exp, nil
}

// family returns (creating if needed) the family record for name.
func (e *Exposition) family(name string) *Family {
	if f, ok := e.byName[name]; ok {
		return f
	}
	f := &Family{Name: name, Type: "untyped", byKey: make(map[string]*Sample)}
	e.byName[name] = f
	e.Families = append(e.Families, f)
	return f
}

// familyForSample maps a sample name onto its family: _bucket/_sum/
// _count suffixes belong to an already-declared histogram family,
// anything else is its own family.
func (e *Exposition) familyForSample(name string) *Family {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if f, ok := e.byName[base]; ok && f.Type == "histogram" {
				return f
			}
		}
	}
	return e.family(name)
}

// add accumulates a sample into the family, summing duplicates.
func (f *Family) add(s *Sample) {
	if prev, ok := f.byKey[s.key()]; ok {
		prev.Value += s.Value
		return
	}
	f.byKey[s.key()] = s
	f.Samples = append(f.Samples, s)
}

// parseSampleLine splits `name[{labels}] value [timestamp]`.
func parseSampleLine(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j, err := labelBlockEnd(rest, i)
		if err != nil {
			return "", "", 0, err
		}
		labels = rest[i : j+1]
		rest = rest[j+1:]
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", "", 0, fmt.Errorf("sample %q missing value", line)
		}
		name, rest = rest[:sp], rest[sp:]
	}
	if !validPromName(name) {
		return "", "", 0, fmt.Errorf("bad sample name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("sample %q: want value [timestamp]", line)
	}
	value, perr := strconv.ParseFloat(fields[0], 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("sample %q: bad value: %v", line, perr)
	}
	return name, labels, value, nil
}

// labelBlockEnd returns the index of the '}' closing the label block
// that opens at i, honoring quoted label values with escapes.
func labelBlockEnd(s string, i int) (int, error) {
	inQuote := false
	for j := i + 1; j < len(s); j++ {
		switch {
		case inQuote && s[j] == '\\':
			j++ // skip the escaped byte
		case s[j] == '"':
			inQuote = !inQuote
		case !inQuote && s[j] == '}':
			return j, nil
		}
	}
	return 0, fmt.Errorf("unterminated label block in %q", s)
}

func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// Merge sums expositions point-wise: same (sample name, label block) →
// values add; families and series unknown to earlier pages append in
// encounter order. Since every replica emits its families sorted and
// its histogram buckets in ascending bound order, the merged page
// preserves those orders. A family declared with conflicting types
// across pages is an error — replicas of one fleet run one binary, so
// a type clash means the list mixes incompatible services.
func Merge(pages ...*Exposition) (*Exposition, error) {
	out := &Exposition{byName: make(map[string]*Family)}
	for _, page := range pages {
		if page == nil {
			continue
		}
		for _, fam := range page.Families {
			dst := out.family(fam.Name)
			if fam.Type != "untyped" {
				if dst.Type != "untyped" && dst.Type != fam.Type {
					return nil, fmt.Errorf("fleet: merging %q: type %s vs %s", fam.Name, dst.Type, fam.Type)
				}
				dst.Type = fam.Type
			}
			for _, s := range fam.Samples {
				dst.add(&Sample{Name: s.Name, Labels: s.Labels, Value: s.Value})
			}
		}
	}
	return out, nil
}

// WriteTo renders the exposition back to the text format, families
// sorted by name for a stable page, samples in accumulated order.
func (e *Exposition) WriteTo(sb *strings.Builder) {
	fams := append([]*Family(nil), e.Families...)
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	for _, fam := range fams {
		if fam.Type != "untyped" {
			fmt.Fprintf(sb, "# TYPE %s %s\n", fam.Name, fam.Type)
		}
		for _, s := range fam.Samples {
			fmt.Fprintf(sb, "%s%s %s\n", s.Name, s.Labels, formatPromValue(s.Value))
		}
	}
}

// String renders the exposition as one text page.
func (e *Exposition) String() string {
	var sb strings.Builder
	e.WriteTo(&sb)
	return sb.String()
}

func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
