package fleet

import (
	"fmt"
	"net/url"
	"strings"
)

// ParseReplicaList parses a comma-separated list of replica base URLs —
// the -replicas / -peers flag syntax. Entries are trimmed; empty
// entries are skipped (so trailing commas are harmless); an entry
// without a scheme gets "http://"; trailing slashes are stripped so
// path joining is uniform. Duplicates (after normalization) and URLs
// with anything beyond scheme://host[:port][/path] are rejected: a
// replica address with a query or fragment is almost certainly a typo,
// and routing the same replica twice would double its share of the
// hash space.
func ParseReplicaList(s string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	for _, raw := range strings.Split(s, ",") {
		entry := strings.TrimSpace(raw)
		if entry == "" {
			continue
		}
		norm, err := NormalizeReplica(entry)
		if err != nil {
			return nil, err
		}
		if seen[norm] {
			return nil, fmt.Errorf("fleet: duplicate replica %q", norm)
		}
		seen[norm] = true
		out = append(out, norm)
	}
	return out, nil
}

// NormalizeReplica validates one replica base URL and returns its
// canonical form (explicit scheme, no trailing slash).
func NormalizeReplica(entry string) (string, error) {
	if !strings.Contains(entry, "://") {
		entry = "http://" + entry
	}
	u, err := url.Parse(entry)
	if err != nil {
		return "", fmt.Errorf("fleet: replica %q: %v", entry, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("fleet: replica %q: scheme must be http or https", entry)
	}
	if u.Host == "" {
		return "", fmt.Errorf("fleet: replica %q: missing host", entry)
	}
	if u.RawQuery != "" || u.Fragment != "" || u.User != nil {
		return "", fmt.Errorf("fleet: replica %q: must be scheme://host[:port][/path]", entry)
	}
	u.Path = strings.TrimRight(u.Path, "/")
	return u.String(), nil
}
