// Gateway routing for POST /v1/harden, the selective-hardening
// optimizer. A harden request with one budget routes like a sweep: to
// the design's rendezvous owner, with failover. A budget sweep (>= 2
// budgets) is embarrassingly parallel across budgets — each plan is an
// independent optimization over the same model — so the gateway splits
// the budget list contiguously across the top-2 candidates for the
// design, runs both halves concurrently, and splices the plan arrays
// back together in request order. Both candidates hold the design
// because design writes replicate to the runner-up (replicateDesign).
// Any sub-request failure falls back to a plain single-replica forward,
// so the fan-out is purely a latency optimization, never a correctness
// hazard.
//
// The gateway deliberately does not import internal/harden: it decodes
// only the two fields it routes by (design, budgets) and treats the
// rest of the envelope — and the replica responses — as opaque JSON.

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"seqavf/internal/obs"
)

func (g *Gateway) handleHarden(w http.ResponseWriter, r *http.Request) {
	g.reg.Counter("gateway.harden_requests").Inc()
	sp, ctx := g.startRequest(w, r, "/v1/harden")
	defer sp.End()
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	// Only the routing key and the budget list are needed here; the
	// replicas re-decode and fully validate the envelope.
	var env struct {
		Design  string    `json:"design"`
		Budgets []float64 `json:"budgets"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		g.writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if env.Design == "" {
		g.writeErr(w, http.StatusBadRequest, "request names no design to route by")
		return
	}
	sp.SetAttr("design", env.Design)
	sp.SetAttr("budgets", len(env.Budgets))
	if len(env.Budgets) >= 2 && len(g.cfg.Replicas) >= 2 {
		if g.hardenFanout(ctx, w, env.Design, env.Budgets, body) {
			sp.SetAttr("fanout", true)
			return
		}
	}
	g.forward(ctx, w, env.Design, http.MethodPost, "/v1/harden", "application/json", body)
}

// hardenFanout splits a budget sweep across the top-2 ranked replicas
// and merges the plan arrays. Returns true when it wrote the response;
// false means the caller should fall back to a single forward (the
// fallback re-ranks, and any replica a sub-request found dead has been
// quarantined to the tail by then). The merged response carries the
// first half's metadata (sens_cache, top_terms, elapsed_ms) — both
// halves answer them identically except for elapsed time.
func (g *Gateway) hardenFanout(ctx context.Context, w http.ResponseWriter, design string, budgets []float64, body []byte) bool {
	ranked := g.rank(design)
	if len(ranked) < 2 {
		return false
	}
	var envelope map[string]json.RawMessage
	if err := json.Unmarshal(body, &envelope); err != nil {
		return false
	}
	mid := (len(budgets) + 1) / 2
	halves := [2][]float64{budgets[:mid], budgets[mid:]}
	var payloads [2]map[string]json.RawMessage
	var errs [2]error
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payloads[i], errs[i] = g.hardenSub(ctx, ranked[i], envelope, halves[i])
		}(i)
	}
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		return false
	}
	var plans [2][]json.RawMessage
	for i := range payloads {
		if err := json.Unmarshal(payloads[i]["plans"], &plans[i]); err != nil {
			return false
		}
	}
	all, err := json.Marshal(append(plans[0], plans[1]...))
	if err != nil {
		return false
	}
	merged := payloads[0]
	merged["plans"] = all
	g.reg.Counter("gateway.harden_fanout_total").Inc()
	g.reg.Counter("gateway.route_total").Add(2)
	writeJSON(w, http.StatusOK, merged)
	return true
}

// hardenSub posts one half of a split budget sweep to a replica: the
// original envelope with only the budgets field rewritten. Any non-200
// answer — including 429 backpressure — is an error here; the caller's
// single-replica fallback gives backpressure its normal path to the
// client.
func (g *Gateway) hardenSub(ctx context.Context, replica string, envelope map[string]json.RawMessage, budgets []float64) (map[string]json.RawMessage, error) {
	sub := make(map[string]json.RawMessage, len(envelope))
	for k, v := range envelope {
		sub[k] = v
	}
	b, err := json.Marshal(budgets)
	if err != nil {
		return nil, err
	}
	sub["budgets"] = b
	payload, err := json.Marshal(sub)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, replica+"/v1/harden", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if sp := obs.SpanFromContext(ctx); sp != nil && !sp.TraceID().IsZero() {
		req.Header.Set("traceparent", obs.FormatTraceparent(sp.TraceID(), sp.SpanID()))
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.reg.Counter("gateway.replica_errors").Inc()
		g.markDown(replica)
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		if retryableStatus(resp.StatusCode) {
			g.reg.Counter("gateway.replica_errors").Inc()
			g.markDown(replica)
		}
		return nil, fmt.Errorf("replica %s returned %s", replica, resp.Status)
	}
	g.markUp(replica)
	var out map[string]json.RawMessage
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out, nil
}
