package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"seqavf/internal/obs"
)

// stubReplica is a minimal seqavfd stand-in: it records which paths it
// served, answers /v1/sweep with its own identity, and can be told to
// fail with a given status.
type stubReplica struct {
	ts       *httptest.Server
	id       string
	hits     atomic.Int64
	failWith atomic.Int64 // 0 = healthy, else HTTP status to return
	lastTP   atomic.Value // last traceparent header seen (string)
}

func newStubReplica(t *testing.T, id string) *stubReplica {
	t.Helper()
	sr := &stubReplica{id: id}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"status":"ok","designs":1}`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "# TYPE server_sweep_ok counter\nserver_sweep_ok %d\n", sr.hits.Load())
	})
	mux.HandleFunc("/v1/designs", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `[{"name":%q,"vertices":1,"seq_bits":1}]`, "design-of-"+sr.id)
	})
	mux.HandleFunc("/v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		if code := sr.failWith.Load(); code != 0 {
			w.WriteHeader(int(code))
			fmt.Fprintf(w, `{"error":"stub failure"}`)
			return
		}
		sr.lastTP.Store(r.Header.Get("traceparent"))
		sr.hits.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"served_by":%q,"echo_len":%d}`, sr.id, len(body))
	})
	sr.ts = httptest.NewServer(mux)
	t.Cleanup(sr.ts.Close)
	return sr
}

func newTestFleet(t *testing.T, n int) ([]*stubReplica, *Gateway) {
	t.Helper()
	reps := make([]*stubReplica, n)
	urls := make([]string, n)
	for i := range reps {
		reps[i] = newStubReplica(t, fmt.Sprintf("r%d", i))
		urls[i] = reps[i].ts.URL
	}
	gw, err := New(Config{
		Replicas: urls,
		Obs:      obs.New(),
		Backoff:  time.Millisecond,
		Cooldown: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reps, gw
}

func postSweep(t *testing.T, h http.Handler, design string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	body := fmt.Sprintf(`{"design":%q,"workloads":[]}`, design)
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var reply struct {
		ServedBy string `json:"served_by"`
	}
	_ = json.Unmarshal(rr.Body.Bytes(), &reply)
	return rr, reply.ServedBy
}

// Routing is deterministic and agrees with the rendezvous ranking: the
// same design always lands on the same replica, and that replica is the
// key's rendezvous owner.
func TestGatewayRoutesByOwner(t *testing.T) {
	reps, gw := newTestFleet(t, 3)
	h := gw.Handler()
	byURL := make(map[string]*stubReplica)
	for _, r := range reps {
		byURL[r.ts.URL] = r
	}
	for i := 0; i < 8; i++ {
		design := fmt.Sprintf("design-%d", i)
		owner := byURL[Owner(design, gw.Replicas())]
		for rep := 0; rep < 2; rep++ {
			rr, servedBy := postSweep(t, h, design)
			if rr.Code != http.StatusOK {
				t.Fatalf("design %q: status %d: %s", design, rr.Code, rr.Body.String())
			}
			if servedBy != owner.id {
				t.Fatalf("design %q served by %s, rendezvous owner is %s", design, servedBy, owner.id)
			}
		}
	}
}

// A dead owner fails over to the next hash choice; once the owner is
// quarantined, subsequent requests skip it without paying the error.
func TestGatewayFailover(t *testing.T) {
	reps, gw := newTestFleet(t, 3)
	h := gw.Handler()
	byURL := make(map[string]*stubReplica)
	for _, r := range reps {
		byURL[r.ts.URL] = r
	}
	// Find a design and kill its owner.
	design := "failover-design"
	ranked := Rank(design, gw.Replicas())
	owner, second := byURL[ranked[0]], byURL[ranked[1]]
	owner.ts.Close()

	rr, servedBy := postSweep(t, h, design)
	if rr.Code != http.StatusOK {
		t.Fatalf("failover request: status %d: %s", rr.Code, rr.Body.String())
	}
	if servedBy != second.id {
		t.Fatalf("failover served by %s, want second choice %s", servedBy, second.id)
	}
	if got := gw.reg.Counter("gateway.retries").Load(); got == 0 {
		t.Fatal("failover did not count a retry")
	}
	if got := gw.reg.Gauge("gateway.replica_unhealthy").Load(); got != 1 {
		t.Fatalf("gateway.replica_unhealthy = %v, want 1", got)
	}
	// The dead owner is quarantined: the next request must go straight to
	// the second choice (no retry counted).
	before := gw.reg.Counter("gateway.retries").Load()
	if _, servedBy := postSweep(t, h, design); servedBy != second.id {
		t.Fatalf("post-quarantine request served by %s, want %s", servedBy, second.id)
	}
	if got := gw.reg.Counter("gateway.retries").Load(); got != before {
		t.Fatal("quarantined replica was retried again")
	}
}

// Replica 5xx unavailability fails over; 429 backpressure and 4xx pass
// through to the client untouched.
func TestGatewayStatusHandling(t *testing.T) {
	reps, gw := newTestFleet(t, 2)
	h := gw.Handler()
	byURL := make(map[string]*stubReplica)
	for _, r := range reps {
		byURL[r.ts.URL] = r
	}
	design := "status-design"
	ranked := Rank(design, gw.Replicas())
	owner, second := byURL[ranked[0]], byURL[ranked[1]]

	owner.failWith.Store(http.StatusServiceUnavailable)
	rr, servedBy := postSweep(t, h, design)
	if rr.Code != http.StatusOK || servedBy != second.id {
		t.Fatalf("503 fail-over: status %d served by %q, want 200 from %s", rr.Code, servedBy, second.id)
	}

	// 429 must pass through, not fail over: wait out the quarantine the
	// 503 earned, then make the owner busy.
	time.Sleep(60 * time.Millisecond)
	owner.failWith.Store(http.StatusTooManyRequests)
	rr, _ = postSweep(t, h, design)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("429 from owner: gateway returned %d, want passthrough 429", rr.Code)
	}

	time.Sleep(60 * time.Millisecond)
	owner.failWith.Store(http.StatusNotFound)
	rr, _ = postSweep(t, h, design)
	if rr.Code != http.StatusNotFound {
		t.Fatalf("404 from owner: gateway returned %d, want passthrough 404", rr.Code)
	}
}

// The gateway's own traceparent continues into the replica.
func TestGatewayTracePropagation(t *testing.T) {
	reps, gw := newTestFleet(t, 2)
	h := gw.Handler()
	byURL := make(map[string]*stubReplica)
	for _, r := range reps {
		byURL[r.ts.URL] = r
	}
	design := "traced-design"
	owner := byURL[Owner(design, gw.Replicas())]

	body := fmt.Sprintf(`{"design":%q,"workloads":[]}`, design)
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
	req.Header.Set("traceparent", "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	upstream, _ := owner.lastTP.Load().(string)
	if !strings.Contains(upstream, "0123456789abcdef0123456789abcdef") {
		t.Fatalf("replica saw traceparent %q, want the client's trace ID carried through", upstream)
	}
	if echo := rr.Header().Get("traceparent"); !strings.Contains(echo, "0123456789abcdef0123456789abcdef") {
		t.Fatalf("gateway echoed traceparent %q, want client's trace ID", echo)
	}
}

// /metrics merges every replica's exposition plus the gateway's own.
func TestGatewayMergedMetrics(t *testing.T) {
	reps, gw := newTestFleet(t, 3)
	h := gw.Handler()
	for i := 0; i < 6; i++ {
		if rr, _ := postSweep(t, h, fmt.Sprintf("design-%d", i)); rr.Code != http.StatusOK {
			t.Fatalf("sweep %d failed: %d", i, rr.Code)
		}
	}
	var total int64
	for _, r := range reps {
		total += r.hits.Load()
	}
	if total != 6 {
		t.Fatalf("replicas served %d sweeps, want 6", total)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rr.Code)
	}
	exp, err := ParseExposition(rr.Body.Bytes())
	if err != nil {
		t.Fatalf("merged page does not parse: %v", err)
	}
	if got, ok := lookup(exp.byName["server_sweep_ok"], "server_sweep_ok", ""); !ok || got != 6 {
		t.Fatalf("merged server_sweep_ok = %v (ok=%v), want 6", got, ok)
	}
	// The gateway's own counters are in the page too.
	fam := findSampleFamily(exp, "gateway_route_total", "")
	if fam == nil {
		t.Fatal("gateway's own gateway_route_total missing from merged page")
	}
	if got, _ := lookup(fam, "gateway_route_total", ""); got != 6 {
		t.Fatalf("gateway_route_total = %v, want 6", got)
	}
}

// /v1/designs is the deduplicated union of the replicas' catalogs.
func TestGatewayDesignUnion(t *testing.T) {
	_, gw := newTestFleet(t, 3)
	h := gw.Handler()
	req := httptest.NewRequest(http.MethodGet, "/v1/designs", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("/v1/designs: %d: %s", rr.Code, rr.Body.String())
	}
	var infos []struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("union has %d designs, want 3: %s", len(infos), rr.Body.String())
	}
	for i := 1; i < len(infos); i++ {
		if infos[i].Name <= infos[i-1].Name {
			t.Fatalf("union not sorted: %q before %q", infos[i-1].Name, infos[i].Name)
		}
	}
}

// /healthz degrades, then goes down, as replicas die.
func TestGatewayHealthz(t *testing.T) {
	reps, gw := newTestFleet(t, 2)
	h := gw.Handler()
	get := func() (int, string) {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		var reply struct {
			Status string `json:"status"`
		}
		_ = json.Unmarshal(rr.Body.Bytes(), &reply)
		return rr.Code, reply.Status
	}
	if code, status := get(); code != http.StatusOK || status != "ok" {
		t.Fatalf("healthy fleet: %d %q", code, status)
	}
	reps[0].ts.Close()
	if code, status := get(); code != http.StatusOK || status != "degraded" {
		t.Fatalf("one replica down: %d %q, want 200 degraded", code, status)
	}
	reps[1].ts.Close()
	if code, status := get(); code != http.StatusServiceUnavailable || status != "down" {
		t.Fatalf("all replicas down: %d %q, want 503 down", code, status)
	}
}

func TestGatewayConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty replica list accepted")
	}
	if _, err := New(Config{Replicas: []string{"http://a:1/"}}); err == nil {
		t.Fatal("non-normalized replica accepted")
	}
	if _, err := New(Config{Replicas: []string{"http://a:1", "http://a:1"}}); err == nil {
		t.Fatal("duplicate replica accepted")
	}
}
