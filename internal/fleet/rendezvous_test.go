package fleet

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func replicaSet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://replica-%d:8091", i)
	}
	return out
}

func TestRankDeterministic(t *testing.T) {
	reps := replicaSet(5)
	for _, key := range []string{"", "xeonlike_1", "a", "design/with/slashes"} {
		a := Rank(key, reps)
		b := Rank(key, reps)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("key %q: two rankings differ: %v vs %v", key, a, b)
		}
		if len(a) != len(reps) {
			t.Fatalf("key %q: ranking lost replicas: %v", key, a)
		}
		if Owner(key, reps) != a[0] {
			t.Fatalf("key %q: Owner %q != Rank[0] %q", key, Owner(key, reps), a[0])
		}
	}
}

func TestRankInputUnmodified(t *testing.T) {
	reps := replicaSet(4)
	orig := append([]string(nil), reps...)
	Rank("some-design", reps)
	if !reflect.DeepEqual(reps, orig) {
		t.Fatalf("Rank reordered its input slice: %v", reps)
	}
}

// Removing one replica must only remap the keys that replica owned:
// every other key keeps its owner, and the orphaned keys move to their
// previous second choice.
func TestRankMinimalRemap(t *testing.T) {
	reps := replicaSet(6)
	removed := reps[2]
	shrunk := append(append([]string(nil), reps[:2]...), reps[3:]...)
	moved := 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("design-%d", i)
		before := Rank(key, reps)
		after := Owner(key, shrunk)
		if before[0] == removed {
			moved++
			if after != before[1] {
				t.Fatalf("key %q: orphaned by %s, expected promotion of %s, got %s",
					key, removed, before[1], after)
			}
		} else if after != before[0] {
			t.Fatalf("key %q: owner changed from %s to %s though %s was not its owner",
				key, before[0], after, removed)
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: removed replica owned no keys")
	}
}

// Rendezvous hashing should spread keys roughly evenly: with 1000 keys
// over 4 replicas no replica should stray wildly from 250.
func TestRankDistribution(t *testing.T) {
	reps := replicaSet(4)
	counts := make(map[string]int)
	for i := 0; i < 1000; i++ {
		counts[Owner(fmt.Sprintf("design-%d", i), reps)]++
	}
	for _, r := range reps {
		if counts[r] < 150 || counts[r] > 350 {
			t.Fatalf("replica %s owns %d of 1000 keys; distribution badly skewed: %v",
				r, counts[r], counts)
		}
	}
}

func TestOwnerEmpty(t *testing.T) {
	if got := Owner("k", nil); got != "" {
		t.Fatalf("Owner of empty fleet = %q, want empty", got)
	}
}

func TestParseReplicaList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
		err  string
	}{
		{in: "", want: nil},
		{in: " , ,", want: nil},
		{in: "host:8091", want: []string{"http://host:8091"}},
		{in: "http://a:1,https://b:2/base/", want: []string{"http://a:1", "https://b:2/base"}},
		{in: "a:1, a:1", err: "duplicate"},
		{in: "a:1,http://a:1", err: "duplicate"},
		{in: "ftp://a:1", err: "scheme"},
		{in: "http://", err: "host"},
		{in: "http://a:1?x=1", err: "scheme://host"},
		{in: "http://a:1#frag", err: "scheme://host"},
		{in: "http://user@a:1", err: "scheme://host"},
	}
	for _, tc := range cases {
		got, err := ParseReplicaList(tc.in)
		if tc.err != "" {
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Fatalf("ParseReplicaList(%q) err = %v, want containing %q", tc.in, err, tc.err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseReplicaList(%q): %v", tc.in, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("ParseReplicaList(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// FuzzParseReplicaList: no input may panic, and accepted lists must
// round-trip — every entry re-normalizes to itself, so routing by the
// parsed list is stable across processes.
func FuzzParseReplicaList(f *testing.F) {
	f.Add("host:8091")
	f.Add("http://a:1,https://b:2/base/,c")
	f.Add(" ,,x,")
	f.Add("http://a:1?q=1")
	f.Fuzz(func(t *testing.T, s string) {
		urls, err := ParseReplicaList(s)
		if err != nil {
			return
		}
		seen := make(map[string]bool)
		for _, u := range urls {
			norm, nerr := NormalizeReplica(u)
			if nerr != nil {
				t.Fatalf("accepted entry %q fails NormalizeReplica: %v", u, nerr)
			}
			if norm != u {
				t.Fatalf("accepted entry %q is not a fixed point (normalizes to %q)", u, norm)
			}
			if seen[u] {
				t.Fatalf("accepted list has duplicate %q", u)
			}
			seen[u] = true
		}
	})
}
