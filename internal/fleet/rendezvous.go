// Package fleet turns a set of independent seqavfd replicas into one
// horizontally scaled sweep service. It provides the three pieces the
// gateway and the artifact store's remote tier share:
//
//   - rendezvous (highest-random-weight) hashing, the consistent-hash
//     scheme that assigns every routing key a stable, fully ordered
//     preference list over the replica set — adding or removing one
//     replica only remaps the keys that replica owned;
//   - replica-list parsing for the -replicas / -peers CLI flags;
//   - Prometheus text-exposition parsing and merging, so a gateway can
//     serve one fleet-wide /metrics from N per-replica scrapes.
//
// The gateway itself (Gateway) proxies sweep and design traffic to the
// owning replica with trace-context propagation, quarantines dead
// replicas, and re-routes to the next hash choice.
package fleet

import (
	"hash/fnv"
	"sort"
)

// score is the HRW weight of (replica, key): a 64-bit FNV-1a over the
// replica identity, a NUL separator, and the key, pushed through a
// splitmix64 finalizer. Each replica gets an independent pseudo-random
// draw per key; the ranking orders replicas by draw. The separator
// keeps ("ab","c") and ("a","bc") from colliding. The finalizer is
// load-bearing: each FNV-1a step (h^b)*p is affine enough that, for a
// fixed key suffix, replicas' raw digests preserve their pre-key
// ordering for most keys — without the avalanche, one replica owns the
// whole keyspace.
func score(replica, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(replica))
	h.Write([]byte{0})
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Rank orders replicas by rendezvous weight for key, best first. The
// first entry is the key's owner; the rest are the fail-over order. The
// ordering is stable across processes (it depends only on the strings)
// and minimal under membership change: removing a replica promotes the
// next choice for exactly the keys that replica owned, and every other
// key keeps its owner. The input slice is not modified; ties (which
// require a 64-bit hash collision) break toward the lexicographically
// smaller replica so all routers agree.
func Rank(key string, replicas []string) []string {
	ranked := append([]string(nil), replicas...)
	scores := make(map[string]uint64, len(ranked))
	for _, r := range ranked {
		scores[r] = score(r, key)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		si, sj := scores[ranked[i]], scores[ranked[j]]
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// Owner returns the rendezvous owner of key, or "" for an empty
// replica list.
func Owner(key string, replicas []string) string {
	if len(replicas) == 0 {
		return ""
	}
	best, bestScore := "", uint64(0)
	for _, r := range replicas {
		s := score(r, key)
		if best == "" || s > bestScore || (s == bestScore && r < best) {
			best, bestScore = r, s
		}
	}
	return best
}
