package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"seqavf/internal/obs"
	"seqavf/internal/pavfio"
	"seqavf/internal/sweep"
)

// TestServeSweepBlockedLoad drives two designs concurrently through one
// shared engine on the BLOCKED evaluation path: BlockSize 4 over
// 6-workload requests means every request is exactly one full block plus
// one ragged 2-lane block. Under load with backpressure retries, every
// request must complete (zero drops), every served value must be
// bit-identical to a direct engine sweep of the same table, and /metrics
// must show the block kernel — not the scalar path — served the traffic,
// with exact block and workload counts.
func TestServeSweepBlockedLoad(t *testing.T) {
	s, reg, results := newTestServer(t, Config{
		MaxConcurrent: 4,
		Sweep:         sweep.Options{BlockSize: 4, Workers: 2},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 16
	const perClient = 2
	const workloads = 6 // BlockSize 4 -> blocks of 4 and 2 per request
	names := []string{"alpha", "beta"}
	bodies := make(map[string][]byte)
	refs := make(map[string]map[string]map[string]float64) // design -> workload -> node -> seqAVF
	for _, n := range names {
		bodies[n] = sweepBody(t, n, results[n], workloads, 500)
		// Reference values from a direct blocked engine sweep of the same
		// parsed tables — the served numbers must match these bit for bit.
		var req SweepRequest
		if err := json.Unmarshal(bodies[n], &req); err != nil {
			t.Fatal(err)
		}
		ws := make([]sweep.Workload, len(req.Workloads))
		for i, w := range req.Workloads {
			in, err := pavfio.Parse(w.Name, strings.NewReader(w.PAVF))
			if err != nil {
				t.Fatalf("parsing reference table: %v", err)
			}
			ws[i] = sweep.Workload{Name: w.Name, Inputs: in}
		}
		eng := sweep.New(sweep.Options{BlockSize: 4, Workers: 1})
		batch, err := eng.Sweep(results[n], ws)
		if err != nil {
			t.Fatalf("reference sweep: %v", err)
		}
		refs[n] = make(map[string]map[string]float64, len(ws))
		for i, r := range batch.Results {
			refs[n][batch.Names[i]] = r.SeqAVFByNode()
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	var mu sync.Mutex
	var completed int
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := names[c%len(names)]
			body, err := json.Marshal(func() SweepRequest {
				var req SweepRequest
				json.Unmarshal(bodies[name], &req)
				req.Nodes = true
				return req
			}())
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < perClient; i++ {
				var respBody []byte
				var status int
				for attempt := 0; ; attempt++ {
					r, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- fmt.Errorf("client %d: %v", c, err)
						return
					}
					respBody, err = io.ReadAll(r.Body)
					r.Body.Close()
					if err != nil {
						errs <- fmt.Errorf("client %d: reading body: %v", c, err)
						return
					}
					if r.StatusCode != http.StatusTooManyRequests {
						status = r.StatusCode
						break
					}
					if attempt > 200 {
						errs <- fmt.Errorf("client %d: still 429 after %d attempts", c, attempt)
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
				if status != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d: %s", c, status, respBody)
					return
				}
				var sr SweepResponse
				if err := json.Unmarshal(respBody, &sr); err != nil {
					errs <- fmt.Errorf("client %d: bad response JSON: %v", c, err)
					return
				}
				if len(sr.Results) != workloads {
					errs <- fmt.Errorf("client %d: %d results, want %d", c, len(sr.Results), workloads)
					return
				}
				for _, wr := range sr.Results {
					want := refs[name][wr.Name]
					if len(wr.SeqAVF) != len(want) {
						errs <- fmt.Errorf("client %d: workload %s served %d nodes, reference %d",
							c, wr.Name, len(wr.SeqAVF), len(want))
						return
					}
					for node, v := range want {
						if wr.SeqAVF[node] != v {
							errs <- fmt.Errorf("client %d: %s/%s served %v, blocked engine %v",
								c, wr.Name, node, wr.SeqAVF[node], v)
							return
						}
					}
				}
				mu.Lock()
				completed++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if completed != clients*perClient {
		t.Fatalf("completed %d sweeps, want %d (zero dropped requests)", completed, clients*perClient)
	}

	// The kernel telemetry must attribute ALL served traffic to the
	// blocked path: 2 blocks per request (4+2 lanes), 6 workloads per
	// request, and nothing on the scalar counter.
	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap obs.Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("/metrics.json not a snapshot: %v", err)
	}
	requests := int64(clients * perClient)
	if got := snap.Counters["sweep.block_evals"]; got != 2*requests {
		t.Errorf("sweep.block_evals = %d, want %d (2 blocks per %d-workload request at width 4)",
			got, 2*requests, workloads)
	}
	if got := snap.Counters["sweep.workloads_blocked"]; got != int64(workloads)*requests {
		t.Errorf("sweep.workloads_blocked = %d, want %d", got, int64(workloads)*requests)
	}
	if got := snap.Counters["sweep.workloads_scalar"]; got != 0 {
		t.Errorf("sweep.workloads_scalar = %d, want 0 (blocked engine must not fall back)", got)
	}
	if got := reg.Gauge("server.in_flight").Load(); got != 0 {
		t.Errorf("in_flight gauge = %v after drain, want 0", got)
	}
	t.Logf("blocked load: %d sweeps across %d designs, %d block evals",
		completed, len(names), snap.Counters["sweep.block_evals"])
}
