package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"seqavf/internal/core"
	"seqavf/internal/pavfio"
	"seqavf/internal/sweep"
)

// SweepRequest is the body of POST /v1/sweep: one registered design plus
// one pAVF table per workload, in the same text format the CLIs exchange
// (see pavfio.Parse). Nodes additionally returns per-sequential-node
// seqAVFs for every workload.
type SweepRequest struct {
	Design    string          `json:"design"`
	Workloads []SweepWorkload `json:"workloads"`
	Nodes     bool            `json:"nodes,omitempty"`
}

// SweepWorkload names one workload and carries its measured pAVF table.
type SweepWorkload struct {
	Name string `json:"name"`
	PAVF string `json:"pavf"`
}

// SweepResponse mirrors sweeprun's report: plan statistics plus
// per-workload design summaries, index-aligned with the request.
type SweepResponse struct {
	Design    string           `json:"design"`
	Workloads int              `json:"workloads"`
	Plan      sweep.Stats      `json:"plan"`
	ElapsedMS float64          `json:"eval_elapsed_ms"`
	PerSec    float64          `json:"workloads_per_sec"`
	Results   []WorkloadResult `json:"results"`
}

// WorkloadResult is one workload's scores.
type WorkloadResult struct {
	Name    string             `json:"name"`
	Summary core.Summary       `json:"summary"`
	SeqAVF  map[string]float64 `json:"seqavf,omitempty"`
}

// DesignInfo describes one registered design on GET /v1/designs.
type DesignInfo struct {
	Name     string      `json:"name"`
	Vertices int         `json:"vertices"`
	SeqBits  int         `json:"seq_bits"`
	Plan     sweep.Stats `json:"plan"`
}

// Handler returns the service mux:
//
//	GET  /healthz      — liveness + design count
//	GET  /metrics      — obs registry JSON snapshot
//	GET  /debug/pprof/ — net/http/pprof profiles
//	GET  /v1/designs   — registered designs and plan shapes
//	POST /v1/designs   — upload a textual netlist; solve + register it
//	POST /v1/sweep     — evaluate workload pAVF tables through one design
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.reg.MetricsHandler())
	mux.HandleFunc("GET /v1/designs", s.handleListDesigns)
	mux.HandleFunc("POST /v1/designs", s.handleUploadDesign)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// writeJSON encodes v with status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr emits the uniform {"error": ...} body.
func (s *Server) writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	s.reg.Counter("server.errors").Inc()
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.designs)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"designs":   n,
		"in_flight": len(s.sem),
		"uptime_ms": time.Since(s.start).Milliseconds(),
	})
}

func (s *Server) handleListDesigns(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]DesignInfo, 0, len(s.designs))
	for _, d := range s.designs {
		infos = append(infos, DesignInfo{Name: d.Name, Vertices: d.Vertices, SeqBits: d.SeqBits, Plan: d.Plan})
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

// rejectBusy emits the backpressure response: 429 plus a Retry-After
// hint, so saturated clients back off instead of queueing server-side.
func (s *Server) rejectBusy(w http.ResponseWriter) {
	s.reg.Counter("server.rejected_busy").Inc()
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second)))
	writeJSON(w, http.StatusTooManyRequests, map[string]string{
		"error": "server at concurrency limit, retry later",
	})
}

func (s *Server) handleUploadDesign(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("server.upload_requests").Inc()
	if !s.acquire() {
		s.rejectBusy(w)
		return
	}
	defer s.release()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeBodyErr(w, err)
		return
	}
	d, err := s.LoadNetlist(r.URL.Query().Get("name"), strings.NewReader(string(body)), core.DefaultOptions())
	if err != nil {
		s.writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, DesignInfo{Name: d.Name, Vertices: d.Vertices, SeqBits: d.SeqBits, Plan: d.Plan})
}

// writeBodyErr maps body-read failures: 413 for the size cap, 400 otherwise.
func (s *Server) writeBodyErr(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		s.writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		return
	}
	s.writeErr(w, http.StatusBadRequest, "reading body: %v", err)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("server.sweep_requests").Inc()
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeBodyErr(w, err)
			return
		}
		s.writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	d := s.Design(req.Design)
	if d == nil {
		s.writeErr(w, http.StatusNotFound, "unknown design %q (see GET /v1/designs)", req.Design)
		return
	}
	if len(req.Workloads) == 0 {
		s.writeErr(w, http.StatusBadRequest, "no workloads in request")
		return
	}
	// The hardened table parser is the ingestion choke-point: a NaN, an
	// out-of-range value, or a duplicate record fails the request here,
	// before anything reaches the long-lived engine.
	ws := make([]sweep.Workload, len(req.Workloads))
	for i, rw := range req.Workloads {
		name := rw.Name
		if name == "" {
			name = fmt.Sprintf("workload[%d]", i)
		}
		in, err := pavfio.Parse(name, strings.NewReader(rw.PAVF))
		if err != nil {
			s.writeErr(w, http.StatusUnprocessableEntity, "workload %q: %v", name, err)
			return
		}
		ws[i] = sweep.Workload{Name: name, Inputs: in}
	}

	if !s.acquire() {
		s.rejectBusy(w)
		return
	}
	defer s.release()

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	start := time.Now()
	batch, err := s.eng.SweepContext(ctx, d.Result, ws)
	s.reg.Histogram("server.sweep_ms").Observe(float64(time.Since(start)) / float64(time.Millisecond))
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.writeErr(w, http.StatusServiceUnavailable, "sweep timed out after %v", s.cfg.RequestTimeout)
		case errors.Is(err, context.Canceled):
			// Client gone or server aborting a drain: the 503 only reaches
			// a client that is still listening.
			s.writeErr(w, http.StatusServiceUnavailable, "sweep cancelled: %v", err)
		default:
			s.writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		}
		return
	}

	resp := SweepResponse{
		Design:    d.Name,
		Workloads: len(batch.Results),
		Plan:      batch.Plan.Stats(),
		ElapsedMS: float64(batch.Elapsed.Microseconds()) / 1e3,
		PerSec:    batch.WorkloadsPerSec(),
		Results:   make([]WorkloadResult, len(batch.Results)),
	}
	for i, res := range batch.Results {
		wr := WorkloadResult{Name: batch.Names[i], Summary: res.Summarize()}
		if req.Nodes {
			wr.SeqAVF = res.SeqAVFByNode()
		}
		resp.Results[i] = wr
	}
	s.reg.Counter("server.sweep_ok").Inc()
	writeJSON(w, http.StatusOK, resp)
}
