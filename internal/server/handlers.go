package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"seqavf/internal/core"
	"seqavf/internal/obs"
	"seqavf/internal/pavfio"
	"seqavf/internal/sweep"
)

// SweepRequest is the body of POST /v1/sweep: one registered design plus
// one pAVF table per workload, in the same text format the CLIs exchange
// (see pavfio.Parse). Nodes additionally returns per-sequential-node
// seqAVFs for every workload.
type SweepRequest struct {
	Design    string          `json:"design"`
	Workloads []SweepWorkload `json:"workloads"`
	Nodes     bool            `json:"nodes,omitempty"`
}

// SweepWorkload names one workload and carries its measured pAVF table.
type SweepWorkload struct {
	Name string `json:"name"`
	PAVF string `json:"pavf"`
}

// SweepResponse mirrors sweeprun's report: plan statistics plus
// per-workload design summaries, index-aligned with the request.
type SweepResponse struct {
	Design    string           `json:"design"`
	Workloads int              `json:"workloads"`
	Plan      sweep.Stats      `json:"plan"`
	ElapsedMS float64          `json:"eval_elapsed_ms"`
	PerSec    float64          `json:"workloads_per_sec"`
	Results   []WorkloadResult `json:"results"`
}

// WorkloadResult is one workload's scores.
type WorkloadResult struct {
	Name    string             `json:"name"`
	Summary core.Summary       `json:"summary"`
	SeqAVF  map[string]float64 `json:"seqavf,omitempty"`
}

// DesignInfo describes one registered design on GET /v1/designs.
type DesignInfo struct {
	Name     string      `json:"name"`
	Vertices int         `json:"vertices"`
	SeqBits  int         `json:"seq_bits"`
	Plan     sweep.Stats `json:"plan"`
}

// EditResponse describes an applied ECO on POST /v1/designs/{name}/edit:
// the replacement design plus what the incremental re-solve reused.
// Incremental is null when the re-solve fell back to a cold solve.
type EditResponse struct {
	DesignInfo
	Incremental *core.Incremental `json:"incremental"`
}

// Handler returns the service mux:
//
//	GET  /healthz        — liveness + design count
//	GET  /metrics        — Prometheus text exposition (scrape me)
//	GET  /metrics.json   — obs registry JSON snapshot (spans, manifest)
//	GET  /debug/requests — flight recorder: last K request records
//	GET  /debug/pprof/   — net/http/pprof profiles
//	GET  /v1/designs     — registered designs and plan shapes
//	POST /v1/designs     — upload a textual netlist; solve + register it
//	POST /v1/designs/{name}/edit — ECO: incremental re-solve + atomic replace
//	POST /v1/sweep       — evaluate workload pAVF tables through one design
//	POST /v1/sweep/intervals — time-resolved sweep: multi-window tables → AVF time series
//	POST /v1/harden      — selective-hardening optimizer: budget sweep → protection plans
//	GET  /v1/artifacts/{fingerprint} — raw .sart bytes (fleet pull-through)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.reg.PromHandler())
	mux.Handle("GET /metrics.json", s.reg.MetricsHandler())
	mux.Handle("GET /debug/requests", s.flight.Handler())
	mux.HandleFunc("GET /v1/designs", s.handleListDesigns)
	mux.HandleFunc("POST /v1/designs", s.handleUploadDesign)
	mux.HandleFunc("POST /v1/designs/{name}/edit", s.handleEditDesign)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/sweep/intervals", s.handleSweepIntervals)
	mux.HandleFunc("POST /v1/harden", s.handleHarden)
	mux.HandleFunc("GET /v1/artifacts/{fingerprint}", s.handleGetArtifact)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// startRequest opens the per-request root span: it adopts an incoming
// W3C traceparent header (so a gateway's trace continues through this
// process), echoes the assigned traceparent on the response, and
// returns the span plus a context carrying it for downstream stages.
func (s *Server) startRequest(w http.ResponseWriter, r *http.Request, endpoint string) (*obs.Span, context.Context) {
	ctx := r.Context()
	if tid, pid, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		ctx = obs.ContextWithRemoteParent(ctx, tid, pid)
	}
	sp := s.reg.StartSpanContext(ctx, "server.request")
	sp.SetAttr("endpoint", endpoint)
	if tid := sp.TraceID(); !tid.IsZero() {
		w.Header().Set("traceparent", obs.FormatTraceparent(tid, sp.SpanID()))
	}
	return sp, obs.ContextWithSpan(ctx, sp)
}

// finishRequest closes the request span, observes the request latency,
// derives the flight record's per-stage durations from the span's
// children, records it, and — when the request overran the slow
// threshold — promotes the full span tree to the structured slow log.
func (s *Server) finishRequest(sp *obs.Span, start time.Time, rec obs.RequestRecord) {
	sp.SetAttr("status", rec.Status)
	sp.End()
	elapsed := time.Since(start)
	s.reg.FixedHistogram("server.request_seconds", obs.LatencyBuckets).Observe(elapsed.Seconds())
	rec.Time = time.Now()
	rec.DurationSeconds = elapsed.Seconds()
	if tid := sp.TraceID(); !tid.IsZero() {
		rec.TraceID = tid.String()
	}
	for _, c := range sp.Children() {
		d := c.Duration().Seconds()
		switch c.Name() {
		case "ingest":
			rec.IngestSeconds += d
		case "sweep.plan":
			rec.PlanSeconds += d
			if src, ok := c.Attr("source").(string); ok {
				rec.PlanSource = src
			}
		case "sweep.eval":
			rec.EvalSeconds += d
		default:
			// Upload solves and restores count as the plan stage: they
			// are the "how do I get evaluable closed forms" phase.
			if c.Name() == "solve" || c.Name() == "artifact.restore" {
				rec.PlanSeconds += d
			}
		}
	}
	if rec.PlanSource == "" {
		if disp, ok := sp.Attr("artifact").(string); ok {
			rec.PlanSource = disp
		}
	}
	s.flight.Record(rec)
	if s.cfg.SlowRequest > 0 && elapsed >= s.cfg.SlowRequest {
		s.logSlowRequest(sp, rec)
	}
}

// logSlowRequest writes one JSON line: the flight record plus the full
// span tree of the offending request — enough to see which stage ate
// the budget without re-running anything.
func (s *Server) logSlowRequest(sp *obs.Span, rec obs.RequestRecord) {
	s.reg.Counter("server.slow_requests").Inc()
	line, err := json.Marshal(struct {
		SlowRequest obs.RequestRecord `json:"slow_request"`
		Spans       obs.SpanSnapshot  `json:"spans"`
	}{rec, sp.Snapshot()})
	if err != nil {
		return
	}
	s.slowMu.Lock()
	fmt.Fprintf(s.cfg.SlowLog, "%s\n", line)
	s.slowMu.Unlock()
}

// writeJSON encodes v with status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr emits the uniform {"error": ...} body.
func (s *Server) writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	s.reg.Counter("server.errors").Inc()
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.designs)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"designs":   n,
		"in_flight": len(s.sem),
		"uptime_ms": time.Since(s.start).Milliseconds(),
	})
}

func (s *Server) handleListDesigns(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]DesignInfo, 0, len(s.designs))
	for _, d := range s.designs {
		infos = append(infos, DesignInfo{Name: d.Name, Vertices: d.Vertices, SeqBits: d.SeqBits, Plan: d.Plan})
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

// rejectBusy emits the backpressure response: 429 plus a Retry-After
// hint, so saturated clients back off instead of queueing server-side.
func (s *Server) rejectBusy(w http.ResponseWriter) {
	s.reg.Counter("server.rejected_busy").Inc()
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second)))
	writeJSON(w, http.StatusTooManyRequests, map[string]string{
		"error": "server at concurrency limit, retry later",
	})
}

func (s *Server) handleUploadDesign(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("server.upload_requests").Inc()
	rsp, ctx := s.startRequest(w, r, "/v1/designs")
	start := time.Now()
	rec := obs.RequestRecord{Endpoint: "/v1/designs", Status: http.StatusCreated, Outcome: "ok"}
	defer func() { s.finishRequest(rsp, start, rec) }()
	fail := func(write func(), status int, outcome string) {
		rec.Status, rec.Outcome = status, outcome
		write()
	}
	if !s.acquire() {
		fail(func() { s.rejectBusy(w) }, http.StatusTooManyRequests, "busy")
		return
	}
	defer s.release()
	isp := rsp.Child("ingest")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	isp.End()
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		fail(func() { s.writeBodyErr(w, err) }, status, err.Error())
		return
	}
	d, err := s.LoadNetlistContext(ctx, r.URL.Query().Get("name"), strings.NewReader(string(body)), core.DefaultOptions())
	if err != nil {
		fail(func() { s.writeErr(w, http.StatusUnprocessableEntity, "%v", err) },
			http.StatusUnprocessableEntity, err.Error())
		return
	}
	rec.Design = d.Name
	rec.Fingerprint = fmt.Sprintf("%016x", d.Result.Analyzer.Fingerprint())
	writeJSON(w, http.StatusCreated, DesignInfo{Name: d.Name, Vertices: d.Vertices, SeqBits: d.SeqBits, Plan: d.Plan})
}

// handleEditDesign applies an ECO to a registered design: the body is
// the full edited netlist, the re-solve is seeded from the live design's
// converged per-FUB state, and the registration is swapped atomically.
// The response reports how much of the prior solve survived the edit.
func (s *Server) handleEditDesign(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("server.edit_requests").Inc()
	name := r.PathValue("name")
	rsp, ctx := s.startRequest(w, r, "/v1/designs/{name}/edit")
	start := time.Now()
	rec := obs.RequestRecord{Endpoint: "/v1/designs/{name}/edit", Design: name, Status: http.StatusOK, Outcome: "ok"}
	defer func() { s.finishRequest(rsp, start, rec) }()
	fail := func(write func(), status int, outcome string) {
		rec.Status, rec.Outcome = status, outcome
		write()
	}
	if !s.acquire() {
		fail(func() { s.rejectBusy(w) }, http.StatusTooManyRequests, "busy")
		return
	}
	defer s.release()
	isp := rsp.Child("ingest")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	isp.End()
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		fail(func() { s.writeBodyErr(w, err) }, status, err.Error())
		return
	}
	d, st, err := s.EditNetlistContext(ctx, name, strings.NewReader(string(body)), core.DefaultOptions())
	if err != nil {
		var unknown *UnknownDesignError
		status := http.StatusUnprocessableEntity
		if errors.As(err, &unknown) {
			status = http.StatusNotFound
		}
		fail(func() { s.writeErr(w, status, "%v", err) }, status, err.Error())
		return
	}
	rec.Fingerprint = fmt.Sprintf("%016x", d.Result.Analyzer.Fingerprint())
	writeJSON(w, http.StatusOK, EditResponse{
		DesignInfo:  DesignInfo{Name: d.Name, Vertices: d.Vertices, SeqBits: d.SeqBits, Plan: d.Plan},
		Incremental: st,
	})
}

// handleGetArtifact serves raw .sart bytes by fingerprint — the fleet's
// pull-through source. Peers verify what they fetch with the CRC-checked
// decoder, so this endpoint ships bytes as-is; it never decodes. A node
// without an artifact store (or without the artifact) answers 404 and
// the fetching peer moves down its rendezvous list.
func (s *Server) handleGetArtifact(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("server.artifact_requests").Inc()
	st := s.cfg.Artifacts
	if st == nil {
		s.writeErr(w, http.StatusNotFound, "artifact store not configured")
		return
	}
	key := r.PathValue("fingerprint")
	if len(key) != 16 {
		s.writeErr(w, http.StatusBadRequest, "fingerprint must be 16 hex digits")
		return
	}
	fp, err := strconv.ParseUint(key, 16, 64)
	if err != nil || strings.ContainsAny(key, "ABCDEF+-") {
		s.writeErr(w, http.StatusBadRequest, "fingerprint must be 16 lowercase hex digits")
		return
	}
	data, err := st.Raw(fp)
	if errors.Is(err, fs.ErrNotExist) {
		s.writeErr(w, http.StatusNotFound, "no artifact for fingerprint %s", key)
		return
	}
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, "reading artifact: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// writeBodyErr maps body-read failures: 413 for the size cap, 400 otherwise.
func (s *Server) writeBodyErr(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		s.writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		return
	}
	s.writeErr(w, http.StatusBadRequest, "reading body: %v", err)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("server.sweep_requests").Inc()
	rsp, rctx := s.startRequest(w, r, "/v1/sweep")
	start := time.Now()
	rec := obs.RequestRecord{Endpoint: "/v1/sweep", Status: http.StatusOK, Outcome: "ok"}
	defer func() { s.finishRequest(rsp, start, rec) }()
	fail := func(status int, format string, args ...any) {
		rec.Status, rec.Outcome = status, fmt.Sprintf(format, args...)
		s.writeErr(w, status, "%s", rec.Outcome)
	}

	// Ingest stage: decode the envelope and run every pAVF table through
	// the hardened parser — the ingestion choke-point where a NaN, an
	// out-of-range value, or a duplicate record fails the request before
	// anything reaches the long-lived engine.
	isp := rsp.Child("ingest")
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		isp.End()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			rec.Status, rec.Outcome = http.StatusRequestEntityTooLarge, err.Error()
			s.writeBodyErr(w, err)
			return
		}
		fail(http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	rec.Design = req.Design
	rec.Workloads = len(req.Workloads)
	d := s.Design(req.Design)
	if d == nil {
		isp.End()
		fail(http.StatusNotFound, "unknown design %q (see GET /v1/designs)", req.Design)
		return
	}
	rec.Fingerprint = fmt.Sprintf("%016x", d.Result.Analyzer.Fingerprint())
	if len(req.Workloads) == 0 {
		isp.End()
		fail(http.StatusBadRequest, "no workloads in request")
		return
	}
	ws := make([]sweep.Workload, len(req.Workloads))
	for i, rw := range req.Workloads {
		name := rw.Name
		if name == "" {
			name = fmt.Sprintf("workload[%d]", i)
		}
		in, err := pavfio.Parse(name, strings.NewReader(rw.PAVF))
		if err != nil {
			isp.End()
			fail(http.StatusUnprocessableEntity, "workload %q: %v", name, err)
			return
		}
		ws[i] = sweep.Workload{Name: name, Inputs: in}
	}
	isp.SetAttr("workloads", len(ws))
	isp.End()

	if !s.acquire() {
		rec.Status, rec.Outcome = http.StatusTooManyRequests, "busy"
		s.rejectBusy(w)
		return
	}
	defer s.release()

	ctx, cancel := s.requestCtx(rctx)
	defer cancel()
	batch, err := s.eng.SweepContext(ctx, d.Result, ws)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			fail(http.StatusServiceUnavailable, "sweep timed out after %v", s.cfg.RequestTimeout)
		case errors.Is(err, context.Canceled):
			// Client gone or server aborting a drain: the 503 only reaches
			// a client that is still listening.
			fail(http.StatusServiceUnavailable, "sweep cancelled: %v", err)
		default:
			fail(http.StatusUnprocessableEntity, "%v", err)
		}
		return
	}

	resp := SweepResponse{
		Design:    d.Name,
		Workloads: len(batch.Results),
		Plan:      batch.Plan.Stats(),
		ElapsedMS: float64(batch.Elapsed.Microseconds()) / 1e3,
		PerSec:    batch.WorkloadsPerSec(),
		Results:   make([]WorkloadResult, len(batch.Results)),
	}
	for i, res := range batch.Results {
		wr := WorkloadResult{Name: batch.Names[i], Summary: res.Summarize()}
		if req.Nodes {
			wr.SeqAVF = res.SeqAVFByNode()
		}
		resp.Results[i] = wr
	}
	s.reg.Counter("server.sweep_ok").Inc()
	writeJSON(w, http.StatusOK, resp)
}
