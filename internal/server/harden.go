package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"seqavf/internal/harden"
	"seqavf/internal/obs"
	"seqavf/internal/pavfio"
	"seqavf/internal/sweep"
)

// handleHarden serves POST /v1/harden: the selective-hardening
// optimizer over one registered design. With workloads in the request,
// node gains are computed on the mean AVF across them (one blocked
// sweep); without, on the design's solved baseline result. Term
// sensitivities (top_terms > 0) come from the artifact store's .sens
// cache when one is configured, keyed by (fingerprint, env hash).
func (s *Server) handleHarden(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("harden.requests").Inc()
	rsp, rctx := s.startRequest(w, r, "/v1/harden")
	start := time.Now()
	rec := obs.RequestRecord{Endpoint: "/v1/harden", Status: http.StatusOK, Outcome: "ok"}
	defer func() { s.finishRequest(rsp, start, rec) }()
	fail := func(status int, format string, args ...any) {
		rec.Status, rec.Outcome = status, fmt.Sprintf(format, args...)
		s.writeErr(w, status, "%s", rec.Outcome)
	}

	// Ingest: the strict request parser rejects NaN/Inf/negative budgets
	// and malformed cost tables with field-level errors; workload pAVF
	// tables then run through the same hardened parser /v1/sweep uses.
	isp := rsp.Child("ingest")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		isp.End()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			rec.Status, rec.Outcome = http.StatusRequestEntityTooLarge, err.Error()
			s.writeBodyErr(w, err)
			return
		}
		fail(http.StatusBadRequest, "reading body: %v", err)
		return
	}
	req, err := harden.ParseRequest(body)
	if err != nil {
		isp.End()
		fail(http.StatusBadRequest, "%v", err)
		return
	}
	rec.Design = req.Design
	rec.Workloads = len(req.Workloads)
	d := s.Design(req.Design)
	if d == nil {
		isp.End()
		fail(http.StatusNotFound, "unknown design %q (see GET /v1/designs)", req.Design)
		return
	}
	rec.Fingerprint = fmt.Sprintf("%016x", d.Result.Analyzer.Fingerprint())
	ws := make([]sweep.Workload, len(req.Workloads))
	names := make([]string, len(req.Workloads))
	for i, rw := range req.Workloads {
		in, err := pavfio.Parse(rw.Name, strings.NewReader(rw.PAVF))
		if err != nil {
			isp.End()
			fail(http.StatusUnprocessableEntity, "workload %q: %v", rw.Name, err)
			return
		}
		ws[i] = sweep.Workload{Name: rw.Name, Inputs: in}
		names[i] = rw.Name
	}
	isp.SetAttr("workloads", len(ws))
	isp.End()

	if !s.acquire() {
		rec.Status, rec.Outcome = http.StatusTooManyRequests, "busy"
		s.rejectBusy(w)
		return
	}
	defer s.release()

	ctx, cancel := s.requestCtx(rctx)
	defer cancel()

	// The optimization substrate: the design's solved result, or — with
	// workloads — a shallow copy carrying the mean AVF vector across them
	// (gains are linear in AVF, so the mean-AVF plan minimizes the mean
	// residual chip AVF over the workload set).
	agg := d.Result
	a := d.Result.Analyzer
	env, err := a.CheckedEnv(d.Result.Inputs)
	if err != nil {
		fail(http.StatusInternalServerError, "design env: %v", err)
		return
	}
	if len(ws) > 0 {
		batch, err := s.eng.SweepContext(ctx, d.Result, ws)
		if err != nil {
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				fail(http.StatusServiceUnavailable, "harden sweep timed out after %v", s.cfg.RequestTimeout)
			case errors.Is(err, context.Canceled):
				fail(http.StatusServiceUnavailable, "harden sweep cancelled: %v", err)
			default:
				fail(http.StatusUnprocessableEntity, "%v", err)
			}
			return
		}
		mean := make([]float64, len(d.Result.AVF))
		for _, res := range batch.Results {
			for v, x := range res.AVF {
				mean[v] += x
			}
		}
		envSum := make([]float64, len(env))
		for _, wl := range ws {
			wenv, err := a.CheckedEnv(wl.Inputs)
			if err != nil {
				fail(http.StatusUnprocessableEntity, "workload env: %v", err)
				return
			}
			for t, x := range wenv {
				envSum[t] += x
			}
		}
		n := float64(len(ws))
		for v := range mean {
			mean[v] /= n
		}
		for t := range envSum {
			env[t] = envSum[t] / n
		}
		cp := *d.Result
		cp.AVF = mean
		agg = &cp
	}

	model, err := harden.NewModel(agg, req.Costs)
	if err != nil {
		fail(http.StatusUnprocessableEntity, "%v", err)
		return
	}
	osp := rsp.Child("harden.optimize")
	plans, err := model.Sweep(req.Budgets, req.Solver)
	osp.SetAttr("budgets", len(req.Budgets))
	osp.End()
	s.reg.FixedHistogram("harden.optimize_seconds", obs.LatencyBuckets).Observe(osp.Duration().Seconds())
	if err != nil {
		fail(http.StatusUnprocessableEntity, "%v", err)
		return
	}

	resp := harden.Response{
		Design:      d.Name,
		Workloads:   names,
		SeqBits:     model.SeqBits(),
		Candidates:  len(model.Candidates()),
		BaseChipAVF: model.Base().WeightedSeqAVF,
		Plans:       plans,
	}
	if req.TopTerms > 0 {
		// Term sensitivities are computed at the (mean) environment via
		// the analytical gradient, consulting the .sens cache first. The
		// plan comes from the engine's LRU, so a warm design pays nothing.
		plan, err := s.eng.PlanContext(ctx, d.Result)
		if err != nil {
			fail(http.StatusUnprocessableEntity, "compiling plan: %v", err)
			return
		}
		var st harden.SensStore
		if s.cfg.Artifacts != nil {
			st = s.cfg.Artifacts
		}
		vec, hit, err := harden.CachedTermDerivs(plan, env, st)
		if err != nil {
			fail(http.StatusUnprocessableEntity, "term sensitivities: %v", err)
			return
		}
		if hit {
			s.reg.Counter("harden.sens_cache_hits").Inc()
			resp.SensCache = "hit"
		} else {
			s.reg.Counter("harden.sens_cache_misses").Inc()
			resp.SensCache = "miss"
		}
		ranked := harden.RankDerivs(a.Universe(), vec.Deriv)
		if len(ranked) > req.TopTerms {
			ranked = ranked[:req.TopTerms]
		}
		resp.TopTerms = ranked
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
	s.reg.Counter("harden.ok").Inc()
	writeJSON(w, http.StatusOK, resp)
}
