package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"seqavf/internal/core"
	"seqavf/internal/design"
	"seqavf/internal/graph/graphtest"
	"seqavf/internal/netlist"
	"seqavf/internal/obs"
	"seqavf/internal/pavfio"
	"seqavf/internal/stats"
	"seqavf/internal/sweep"
)

// solvedDesign generates a design and solves it for registration.
func solvedDesign(t testing.TB, seed uint64) *core.Result {
	t.Helper()
	d, err := graphtest.Generate(graphtest.Small(seed))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	a, err := core.NewAnalyzer(d.Graph, core.DefaultOptions())
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	res, err := a.Solve(neutralInputs(a))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

// pavfText renders a complete, seeded pAVF table for res's design.
func pavfText(t testing.TB, res *core.Result, seed uint64) string {
	t.Helper()
	rng := stats.New(seed)
	in := core.NewInputs()
	reads := res.Analyzer.ReadPortTerms()
	sort.Slice(reads, func(i, j int) bool {
		return reads[i].String() < reads[j].String()
	})
	for _, sp := range reads {
		in.ReadPorts[sp] = rng.Float64()
	}
	writes := res.Analyzer.WritePortTerms()
	sort.Slice(writes, func(i, j int) bool {
		return writes[i].String() < writes[j].String()
	})
	for _, sp := range writes {
		in.WritePorts[sp] = rng.Float64()
	}
	var sb strings.Builder
	if _, err := pavfio.Write(&sb, in); err != nil {
		t.Fatalf("pavfio.Write: %v", err)
	}
	return sb.String()
}

// sweepBody builds a POST /v1/sweep body with n seeded workloads.
func sweepBody(t testing.TB, designName string, res *core.Result, n int, seedBase uint64) []byte {
	t.Helper()
	req := SweepRequest{Design: designName}
	for i := 0; i < n; i++ {
		req.Workloads = append(req.Workloads, SweepWorkload{
			Name: fmt.Sprintf("w%d", i),
			PAVF: pavfText(t, res, seedBase+uint64(i)),
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// newTestServer registers two designs and returns the server plus its
// registry.
func newTestServer(t testing.TB, cfg Config) (*Server, *obs.Registry, map[string]*core.Result) {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	if cfg.Sweep.Workers == 0 {
		cfg.Sweep.Workers = 1
	}
	s := New(cfg)
	results := make(map[string]*core.Result)
	for i, name := range []string{"alpha", "beta"} {
		res := solvedDesign(t, uint64(31+i))
		if _, err := s.AddResult(name, res); err != nil {
			t.Fatalf("AddResult(%s): %v", name, err)
		}
		results[name] = res
	}
	return s, cfg.Obs, results
}

func postJSON(t testing.TB, client *http.Client, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, b
}

// TestServeSweepLoad is the acceptance load test: 64 concurrent clients
// sweeping 2 designs through a limiter smaller than the client count.
// Every request must eventually complete (clients honor the 429
// backpressure and retry), responses must be well-formed and match the
// request shape, and the repeated designs must be served from the plan
// cache.
func TestServeSweepLoad(t *testing.T) {
	s, reg, results := newTestServer(t, Config{MaxConcurrent: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 64
	const perClient = 3
	names := []string{"alpha", "beta"}
	bodies := make(map[string][]byte)
	for _, n := range names {
		bodies[n] = sweepBody(t, n, results[n], 4, 900)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	var retried, completed int64
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := names[c%len(names)]
			for i := 0; i < perClient; i++ {
				var resp *http.Response
				var body []byte
				for attempt := 0; ; attempt++ {
					r, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(bodies[name]))
					if err != nil {
						errs <- fmt.Errorf("client %d: %v", c, err)
						return
					}
					body, err = io.ReadAll(r.Body)
					r.Body.Close()
					if err != nil {
						errs <- fmt.Errorf("client %d: reading body: %v", c, err)
						return
					}
					if r.StatusCode != http.StatusTooManyRequests {
						resp = r
						break
					}
					if r.Header.Get("Retry-After") == "" {
						errs <- fmt.Errorf("client %d: 429 without Retry-After", c)
						return
					}
					if attempt > 200 {
						errs <- fmt.Errorf("client %d: still 429 after %d attempts", c, attempt)
						return
					}
					mu.Lock()
					retried++
					mu.Unlock()
					time.Sleep(2 * time.Millisecond)
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, body)
					return
				}
				var sr SweepResponse
				if err := json.Unmarshal(body, &sr); err != nil {
					errs <- fmt.Errorf("client %d: bad response JSON: %v", c, err)
					return
				}
				if sr.Design != name || len(sr.Results) != 4 {
					errs <- fmt.Errorf("client %d: response %q/%d results, want %q/4", c, sr.Design, len(sr.Results), name)
					return
				}
				for j, wr := range sr.Results {
					if wr.Name != fmt.Sprintf("w%d", j) {
						errs <- fmt.Errorf("client %d: result %d named %q", c, j, wr.Name)
						return
					}
					if wr.Summary.WeightedSeqAVF < 0 || wr.Summary.WeightedSeqAVF > 1 {
						errs <- fmt.Errorf("client %d: AVF %v out of [0,1]", c, wr.Summary.WeightedSeqAVF)
						return
					}
				}
				mu.Lock()
				completed++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if completed != clients*perClient {
		t.Fatalf("completed %d sweeps, want %d (zero dropped responses)", completed, clients*perClient)
	}
	// Both designs were registered (2 compile misses); every request after
	// that must hit the plan cache.
	hits := reg.Counter("sweep.plan_cache_hits").Load()
	misses := reg.Counter("sweep.plan_cache_misses").Load()
	if hits < clients*perClient {
		t.Errorf("plan cache hits = %d, want >= %d (repeat designs must reuse plans)", hits, clients*perClient)
	}
	if misses != 2 {
		t.Errorf("plan cache misses = %d, want exactly the 2 registrations", misses)
	}
	if got := reg.Gauge("server.in_flight").Load(); got != 0 {
		t.Errorf("in_flight gauge = %v after drain, want 0", got)
	}
	t.Logf("load: %d sweeps, %d retries after 429, %d cache hits", completed, retried, hits)
}

// TestSaturationReturns429: with every slot occupied the service must
// fail fast with 429 + Retry-After, and recover once a slot frees.
func TestSaturationReturns429(t *testing.T) {
	s, reg, results := newTestServer(t, Config{MaxConcurrent: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := sweepBody(t, "alpha", results["alpha"], 1, 50)

	// Occupy both slots out-of-band.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	resp, b := postJSON(t, http.DefaultClient, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated sweep returned %d: %s", resp.StatusCode, b)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if got := reg.Counter("server.rejected_busy").Load(); got != 1 {
		t.Fatalf("rejected_busy = %d, want 1", got)
	}
	<-s.sem
	<-s.sem
	resp, b = postJSON(t, http.DefaultClient, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep after release returned %d: %s", resp.StatusCode, b)
	}
}

// TestShutdownDrains: http.Server.Shutdown must let an in-flight sweep
// finish and deliver its 200 before the listener dies — the SIGTERM
// drain path of seqavfd.
func TestShutdownDrains(t *testing.T) {
	s, _, results := newTestServer(t, Config{MaxConcurrent: 2})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.onSlotAcquired = func() {
		once.Do(func() {
			close(started)
			<-release
		})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)

	url := "http://" + ln.Addr().String()
	body := sweepBody(t, "alpha", results["alpha"], 2, 70)
	type result struct {
		status int
		body   []byte
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resc <- result{status: resp.StatusCode, body: b}
	}()
	<-started

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- hs.Shutdown(sctx) }()
	// The sweep is pinned in-flight; Shutdown must wait for it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a sweep was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-resc
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("drained request returned %d: %s", r.status, r.body)
	}
}

// TestAbortCancelsInFlight: Abort (the drain-deadline overrun path) must
// cancel a running sweep, failing it with 503 instead of leaving workers
// running.
func TestAbortCancelsInFlight(t *testing.T) {
	s, reg, results := newTestServer(t, Config{MaxConcurrent: 2})
	started := make(chan struct{})
	var once sync.Once
	s.onSlotAcquired = func() {
		once.Do(func() {
			close(started)
			// Give requestCtx's watcher a moment to arm, then abort. The
			// sweep itself starts after this hook returns, already
			// cancelled.
			s.Abort()
		})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, b := postJSON(t, http.DefaultClient, ts.URL+"/v1/sweep",
		sweepBody(t, "beta", results["beta"], 8, 90))
	<-started
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("aborted sweep returned %d: %s", resp.StatusCode, b)
	}
	if got := reg.Counter("sweep.cancelled").Load(); got != 1 {
		t.Fatalf("sweep.cancelled = %d, want 1", got)
	}
}

// TestRequestTimeout: a sweep outliving RequestTimeout must come back as
// 503, not hang. A nanosecond deadline is expired before the engine's
// first chunk, making the timeout deterministic.
func TestRequestTimeout(t *testing.T) {
	s, _, results := newTestServer(t, Config{MaxConcurrent: 2, RequestTimeout: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, b := postJSON(t, http.DefaultClient, ts.URL+"/v1/sweep",
		sweepBody(t, "alpha", results["alpha"], 4, 110))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out sweep returned %d: %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), "timed out") && !strings.Contains(string(b), "cancelled") {
		t.Fatalf("timeout error body: %s", b)
	}
}

// TestBodyLimitAndBadInputs: oversized bodies are 413; malformed pAVF
// tables (the hardened parser), unknown designs, and empty requests are
// client errors with JSON bodies.
func TestBodyLimitAndBadInputs(t *testing.T) {
	s, _, results := newTestServer(t, Config{MaxBodyBytes: 2048})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := sweepBody(t, "alpha", results["alpha"], 64, 130) // far beyond 2KB
	resp, b := postJSON(t, http.DefaultClient, ts.URL+"/v1/sweep", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body returned %d: %s", resp.StatusCode, b)
	}

	cases := []struct {
		name   string
		body   string
		status int
		want   string
	}{
		{"bad json", "{", http.StatusBadRequest, "decoding"},
		{"unknown design", `{"design":"nope","workloads":[{"name":"w","pavf":"R IQ.rd 0.5\n"}]}`,
			http.StatusNotFound, "unknown design"},
		{"no workloads", `{"design":"alpha","workloads":[]}`, http.StatusBadRequest, "no workloads"},
		{"NaN pavf", `{"design":"alpha","workloads":[{"name":"w","pavf":"R IQ.rd NaN\n"}]}`,
			http.StatusUnprocessableEntity, "out of [0,1]"},
		{"foreign port", `{"design":"alpha","workloads":[{"name":"w","pavf":"R NoSuch.rd 0.5\n"}]}`,
			http.StatusUnprocessableEntity, "does not have"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, b := postJSON(t, http.DefaultClient, ts.URL+"/v1/sweep", []byte(tc.body))
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, b)
			}
			var e map[string]string
			if err := json.Unmarshal(b, &e); err != nil {
				t.Fatalf("error body not JSON: %s", b)
			}
			if !strings.Contains(e["error"], tc.want) {
				t.Fatalf("error %q does not mention %q", e["error"], tc.want)
			}
		})
	}
}

// TestDesignUploadAndSweep: POST /v1/designs with a textual netlist must
// solve, register, and serve sweeps for the new design.
func TestDesignUploadAndSweep(t *testing.T) {
	s, reg, _ := newTestServer(t, Config{MaxBodyBytes: 64 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := design.DefaultConfig(99)
	cfg.NumFubs = 4
	gen, err := design.Generate(cfg)
	if err != nil {
		t.Fatalf("design.Generate: %v", err)
	}
	var nl bytes.Buffer
	if err := netlist.Write(&nl, gen.Design); err != nil {
		t.Fatalf("netlist.Write: %v", err)
	}
	resp, b := postJSON(t, http.DefaultClient, ts.URL+"/v1/designs", nl.Bytes())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload returned %d: %s", resp.StatusCode, b)
	}
	var info DesignInfo
	if err := json.Unmarshal(b, &info); err != nil {
		t.Fatalf("upload response: %v", err)
	}
	if info.Name != gen.Design.Name || info.Vertices == 0 {
		t.Fatalf("upload registered %+v", info)
	}
	// Re-uploading the same name is a conflict, not a silent replace.
	resp, b = postJSON(t, http.DefaultClient, ts.URL+"/v1/designs", nl.Bytes())
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("duplicate upload returned %d: %s", resp.StatusCode, b)
	}

	// Sweep the uploaded design end to end.
	d := s.Design(info.Name)
	if d == nil {
		t.Fatal("uploaded design not registered")
	}
	body := sweepBody(t, info.Name, d.Result, 3, 150)
	resp, b = postJSON(t, http.DefaultClient, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep of uploaded design returned %d: %s", resp.StatusCode, b)
	}
	var sr SweepResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 3 || sr.Plan.UniqueSets == 0 {
		t.Fatalf("sweep response %+v", sr)
	}
	if got := reg.Gauge("server.designs").Load(); got != 3 {
		t.Fatalf("designs gauge = %v, want 3", got)
	}
}

// TestHealthzAndMetrics: the observability endpoints must serve JSON that
// reflects request activity, and /debug/pprof must answer.
func TestHealthzAndMetrics(t *testing.T) {
	s, _, results := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp, b := postJSON(t, http.DefaultClient, ts.URL+"/v1/sweep",
		sweepBody(t, "alpha", results["alpha"], 1, 170)); resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, b)
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	code, b := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}
	var hz map[string]any
	if err := json.Unmarshal(b, &hz); err != nil || hz["status"] != "ok" || hz["designs"].(float64) != 2 {
		t.Fatalf("/healthz body %s (err %v)", b, err)
	}

	code, b = get("/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json: %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("/metrics.json not a snapshot: %v", err)
	}
	if snap.Counters["server.sweep_ok"] != 1 || snap.Counters["sweep.plan_cache_hits"] != 1 {
		t.Fatalf("/metrics.json counters %v", snap.Counters)
	}
	if snap.Histograms["server.request_seconds"].Count != 1 {
		t.Fatalf("/metrics.json histograms %v", snap.Histograms)
	}

	code, b = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if !strings.Contains(string(b), "server_request_seconds_bucket") ||
		!strings.Contains(string(b), "# TYPE server_sweep_ok counter") {
		t.Fatalf("/metrics not Prometheus text:\n%s", b)
	}

	code, b = get("/v1/designs")
	if code != http.StatusOK {
		t.Fatalf("/v1/designs: %d", code)
	}
	var infos []DesignInfo
	if err := json.Unmarshal(b, &infos); err != nil || len(infos) != 2 || infos[0].Name != "alpha" {
		t.Fatalf("/v1/designs body %s (err %v)", b, err)
	}

	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}

// TestSweepMatchesEngine: a served sweep must be bit-identical to driving
// the engine directly — HTTP adds transport, not arithmetic.
func TestSweepMatchesEngine(t *testing.T) {
	s, _, results := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	res := results["beta"]
	table := pavfText(t, res, 777)
	reqBody, _ := json.Marshal(SweepRequest{
		Design:    "beta",
		Workloads: []SweepWorkload{{Name: "w", PAVF: table}},
		Nodes:     true,
	})
	resp, b := postJSON(t, http.DefaultClient, ts.URL+"/v1/sweep", reqBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, b)
	}
	var sr SweepResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatal(err)
	}

	in, err := pavfio.Parse("ref", strings.NewReader(table))
	if err != nil {
		t.Fatal(err)
	}
	eng := sweep.New(sweep.Options{Workers: 1})
	batch, err := eng.Sweep(res, []sweep.Workload{{Name: "w", Inputs: in}})
	if err != nil {
		t.Fatal(err)
	}
	want := batch.Results[0].SeqAVFByNode()
	got := sr.Results[0].SeqAVF
	if len(got) != len(want) {
		t.Fatalf("served %d nodes, engine %d", len(got), len(want))
	}
	for node, v := range want {
		if got[node] != v {
			t.Fatalf("node %s: served %v, engine %v", node, got[node], v)
		}
	}
}
