package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"seqavf/internal/design"
	"seqavf/internal/fleet"
	"seqavf/internal/harden"
	"seqavf/internal/netlist"
)

// waitForCount polls a counter-ish predicate until it holds or the
// deadline passes: design replication runs after the client's response
// is written, so assertions about it must tolerate a short lag.
func waitForCount(t testing.TB, what string, fn func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !fn() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFleetHardenThroughGateway drives POST /v1/harden end to end
// through the gateway: a multi-budget sweep must split across the top-2
// candidates, merge back in request order, and survive a concurrent
// burst under the race detector.
func TestFleetHardenThroughGateway(t *testing.T) {
	res := solvedDesign(t, 93)
	reps := newFleetReplicas(t, 3, 4, 0, nil)
	names := ownedDesigns(t, reps, res)
	_, gwReg, gwTS := newGateway(t, replicaURLs(reps))

	budgets := []float64{3, 9, 1e6}
	body, err := json.Marshal(harden.Request{Design: names[0], Budgets: budgets, TopTerms: 3})
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postJSON(t, http.DefaultClient, gwTS.URL+"/v1/harden", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("harden via gateway: status %d: %s", resp.StatusCode, raw)
	}
	var hr harden.Response
	if err := json.Unmarshal(raw, &hr); err != nil {
		t.Fatalf("bad merged response: %v\n%s", err, raw)
	}
	if hr.Design != names[0] || len(hr.Plans) != len(budgets) {
		t.Fatalf("merged response %q with %d plans, want %q/%d: %s",
			hr.Design, len(hr.Plans), names[0], len(budgets), raw)
	}
	for i, p := range hr.Plans {
		if p.Budget != budgets[i] {
			t.Errorf("plan %d has budget %v, want %v (merge must preserve request order)", i, p.Budget, budgets[i])
		}
		if len(p.Chosen) == 0 {
			t.Errorf("plan %d chose nothing", i)
		}
		if p.ResidualChipAVF > p.BaseChipAVF {
			t.Errorf("plan %d residual %v above base %v", i, p.ResidualChipAVF, p.BaseChipAVF)
		}
	}
	if last := hr.Plans[len(hr.Plans)-1]; last.ResidualChipAVF != 0 {
		t.Errorf("unbounded budget left residual %v", last.ResidualChipAVF)
	}
	if len(hr.TopTerms) == 0 {
		t.Error("merged response dropped top_terms")
	}
	if got := gwReg.Counter("gateway.harden_requests").Load(); got != 1 {
		t.Errorf("gateway.harden_requests = %d, want 1", got)
	}
	if got := gwReg.Counter("gateway.harden_fanout_total").Load(); got != 1 {
		t.Errorf("gateway.harden_fanout_total = %d, want 1", got)
	}

	// Concurrent burst: every request must come back 200 (retrying only
	// 429 backpressure), exercising the fan-out path under -race.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(harden.Request{
				Design:  names[i%len(names)],
				Budgets: []float64{3, 1e6},
			})
			for attempt := 0; attempt < 200; attempt++ {
				resp, raw := postJSON(t, http.DefaultClient, gwTS.URL+"/v1/harden", b)
				if resp.StatusCode == http.StatusOK {
					return
				}
				if resp.StatusCode != http.StatusTooManyRequests {
					errs <- fmt.Errorf("request %d: status %d: %s", i, resp.StatusCode, raw)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			errs <- fmt.Errorf("request %d: never got past backpressure", i)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFleetDesignFanoutFailover is the replication acceptance test: a
// design uploaded through the gateway lands on its owner AND the
// runner-up candidate, so killing the owner must not 404 subsequent
// routed reads — the exact failure mode single-copy registration had.
func TestFleetDesignFanoutFailover(t *testing.T) {
	reps := newFleetReplicas(t, 3, 4, 0, nil)
	urls := replicaURLs(reps)
	_, gwReg, gwTS := newGateway(t, urls)

	cfg := design.DefaultConfig(11)
	cfg.NumFubs = 3
	gen, err := design.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var nl bytes.Buffer
	if err := netlist.Write(&nl, gen.Design); err != nil {
		t.Fatal(err)
	}
	name := gen.Design.Name

	resp, raw := postJSON(t, http.DefaultClient, gwTS.URL+"/v1/designs", nl.Bytes())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload via gateway: status %d: %s", resp.StatusCode, raw)
	}
	waitForCount(t, "upload replication", func() bool {
		return gwReg.Counter("gateway.design_fanout_total").Load() == 1
	})

	// Exactly the top-2 rendezvous candidates hold the design.
	ranked := fleet.Rank(name, urls)
	idx := make(map[string]int, len(urls))
	for i, u := range urls {
		idx[u] = i
	}
	owner, second, third := idx[ranked[0]], idx[ranked[1]], idx[ranked[2]]
	if reps[owner].srv.Design(name) == nil {
		t.Fatal("owner does not hold the uploaded design")
	}
	waitForCount(t, "secondary registration", func() bool {
		return reps[second].srv.Design(name) != nil
	})
	if reps[third].srv.Design(name) != nil {
		t.Error("third-ranked replica holds the design; replication should stop at top-2")
	}

	// An edit through the gateway replicates too, keeping both copies
	// current.
	mod := gen.Design.Modules[gen.Design.Fubs[0].Module]
	var src *netlist.Node
	for _, n := range mod.Nodes {
		if (n.Kind == netlist.KindComb || n.Kind == netlist.KindSeq) && n.Class != netlist.ClassDebug {
			src = n
			break
		}
	}
	if src == nil {
		t.Fatal("no eligible source node for the edit")
	}
	mod.Nodes = append(mod.Nodes, &netlist.Node{
		Name: "eco_q", Kind: netlist.KindSeq, Width: src.Width, Inputs: []string{src.Name},
	})
	var edited bytes.Buffer
	if err := netlist.Write(&edited, gen.Design); err != nil {
		t.Fatal(err)
	}
	resp, raw = postJSON(t, http.DefaultClient, gwTS.URL+"/v1/designs/"+name+"/edit", edited.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit via gateway: status %d: %s", resp.StatusCode, raw)
	}
	waitForCount(t, "edit replication", func() bool {
		return gwReg.Counter("gateway.design_fanout_total").Load() == 2
	})

	// Kill the owner: a harden routed by the design name must fail over
	// to the runner-up and succeed against its replicated copy.
	reps[owner].ts.Close()
	body, err := json.Marshal(harden.Request{Design: name, Budgets: []float64{1e9}})
	if err != nil {
		t.Fatal(err)
	}
	resp, raw = postJSON(t, http.DefaultClient, gwTS.URL+"/v1/harden", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-failover harden: status %d: %s", resp.StatusCode, raw)
	}
	var hr harden.Response
	if err := json.Unmarshal(raw, &hr); err != nil {
		t.Fatal(err)
	}
	if len(hr.Plans) != 1 || len(hr.Plans[0].Chosen) == 0 {
		t.Fatalf("post-failover harden returned no plan: %s", raw)
	}
	if got := reps[second].reg.Counter("harden.requests").Load(); got == 0 {
		t.Error("runner-up served no harden requests after failover")
	}
	// And a sweep against the replicated copy works too.
	sres := reps[second].srv.Design(name).Result
	sbody := sweepBody(t, name, sres, 1, 800)
	resp, raw = postJSON(t, http.DefaultClient, gwTS.URL+"/v1/sweep", sbody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-failover sweep: status %d: %s", resp.StatusCode, raw)
	}
}
