package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/design"
	"seqavf/internal/graph"
	"seqavf/internal/netlist"
)

// TestEditDesignEndpoint drives the ECO path end to end over HTTP: upload
// a design, POST an edited netlist to /v1/designs/{name}/edit, and check
// that the re-solve was incremental (some FUBs reused), the registration
// was replaced in place, the replacement still sweeps, and the answer
// matches a cold solve of the edited netlist.
func TestEditDesignEndpoint(t *testing.T) {
	s, reg, _ := newTestServer(t, Config{MaxBodyBytes: 64 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := design.DefaultConfig(7)
	cfg.NumFubs = 4
	gen, err := design.Generate(cfg)
	if err != nil {
		t.Fatalf("design.Generate: %v", err)
	}
	var nl bytes.Buffer
	if err := netlist.Write(&nl, gen.Design); err != nil {
		t.Fatalf("netlist.Write: %v", err)
	}
	resp, b := postJSON(t, http.DefaultClient, ts.URL+"/v1/designs", nl.Bytes())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload returned %d: %s", resp.StatusCode, b)
	}
	name := gen.Design.Name
	before := s.Design(name)
	designsBefore := reg.Gauge("server.designs").Load()

	// The ECO: register one existing signal of the first FUB's module
	// behind a fresh flop — the hierarchical form of graphtest's add-flop.
	mod := gen.Design.Modules[gen.Design.Fubs[0].Module]
	var src *netlist.Node
	for _, n := range mod.Nodes {
		if (n.Kind == netlist.KindComb || n.Kind == netlist.KindSeq) && n.Class != netlist.ClassDebug {
			src = n
			break
		}
	}
	if src == nil {
		t.Fatalf("module %s has no eligible source node", mod.Name)
	}
	mod.Nodes = append(mod.Nodes, &netlist.Node{
		Name: "eco_q", Kind: netlist.KindSeq, Width: src.Width, Inputs: []string{src.Name},
	})
	var edited bytes.Buffer
	if err := netlist.Write(&edited, gen.Design); err != nil {
		t.Fatalf("netlist.Write (edited): %v", err)
	}

	resp, b = postJSON(t, http.DefaultClient, ts.URL+"/v1/designs/"+name+"/edit", edited.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit returned %d: %s", resp.StatusCode, b)
	}
	var er EditResponse
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatalf("edit response: %v", err)
	}
	if er.Incremental == nil {
		t.Fatalf("edit fell back to a cold solve: %s", b)
	}
	if er.Incremental.FubsDirty == 0 || er.Incremental.FubsDirty >= er.Incremental.FubsTotal {
		t.Fatalf("add-flop dirtied %d of %d FUBs", er.Incremental.FubsDirty, er.Incremental.FubsTotal)
	}
	if !er.Incremental.Converged {
		t.Fatalf("incremental re-solve did not converge: %+v", er.Incremental)
	}
	if er.Vertices != before.Vertices+src.Width {
		t.Fatalf("edited design has %d vertices, want %d + %d", er.Vertices, before.Vertices, src.Width)
	}

	// Replaced, not added: same design count, new registration.
	if got := reg.Gauge("server.designs").Load(); got != designsBefore {
		t.Fatalf("designs gauge moved %v -> %v on edit", designsBefore, got)
	}
	after := s.Design(name)
	if after == before {
		t.Fatal("edit did not replace the registered design")
	}

	// The replacement must agree with a cold solve of the edited netlist.
	parsed, err := netlist.Parse(bytes.NewReader(edited.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fd, err := netlist.Flatten(parsed)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(fd)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAnalyzer(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := a.Solve(neutralInputs(a))
	if err != nil {
		t.Fatal(err)
	}
	if d := core.MaxAbsDiff(after.Result, cold); !(d <= a.Opts.Epsilon) {
		t.Fatalf("edited design diverges from cold solve by %v", d)
	}

	// And it still serves sweeps.
	body := sweepBody(t, name, after.Result, 2, 500)
	resp, b = postJSON(t, http.DefaultClient, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep of edited design returned %d: %s", resp.StatusCode, b)
	}

	// Editing an unregistered name is 404, not a fresh registration.
	resp, b = postJSON(t, http.DefaultClient, ts.URL+"/v1/designs/nonexistent/edit", edited.Bytes())
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("edit of unknown design returned %d: %s", resp.StatusCode, b)
	}
	if got := reg.Counter("server.edit_requests").Load(); got != 2 {
		t.Fatalf("edit_requests counter = %v, want 2", got)
	}
}
