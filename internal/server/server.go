// Package server implements the seqavfd HTTP service: the request/response
// form of the paper's §5.1 equation-reuse flow. Designs are solved
// symbolically once (at startup or on upload) and their closed forms are
// compiled into deduplicated evaluation plans; each sweep request then
// re-evaluates the cached plan of one design against the request's
// workload pAVF tables — no walks, no RTL, just environment rebuilds —
// which is what makes a long-lived scoring service viable at all.
//
// The service is production-shaped rather than a demo handler:
//
//   - a bounded concurrency limiter applies backpressure: when every slot
//     is busy, requests fail fast with 429 and a Retry-After hint instead
//     of queueing without bound;
//   - every sweep runs under a per-request context deadline, and the
//     cancellation is threaded into the sweep engine's worker pool, so an
//     abandoned request stops burning CPU mid-batch;
//   - request bodies are size-capped before they are parsed;
//   - Abort cancels in-flight sweeps when a graceful drain overruns its
//     deadline;
//   - /healthz, /metrics (Prometheus text exposition), /metrics.json
//     (the obs registry snapshot), /debug/requests (the flight
//     recorder), and /debug/pprof make the process observable in place;
//   - every request runs under a trace: an incoming W3C traceparent
//     header is honored (the response echoes the assigned traceparent),
//     and the request's span tree — ingest, plan/artifact, kernel —
//     feeds the flight recorder and, past Config.SlowRequest, the
//     structured slow log.
package server

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"seqavf/internal/artifact"
	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/obs"
	"seqavf/internal/sweep"
)

// Config parameterizes a Server. The zero value is usable: GOMAXPROCS
// concurrent sweeps, 30s request timeout, 8MB bodies, 1s Retry-After.
type Config struct {
	// Sweep configures the shared evaluation engine (workers per batch,
	// chunking, plan-cache capacity). Its Obs field is overridden by Obs
	// below so engine and server report into one registry.
	Sweep sweep.Options
	// Obs receives service telemetry: request/error/backpressure counters,
	// a sweep latency histogram, in-flight and design-count gauges, plus
	// everything the sweep engine and solver record. nil disables
	// instrumentation (the /metrics endpoint then serves an empty
	// snapshot).
	Obs *obs.Registry
	// MaxConcurrent bounds concurrently evaluated requests (sweeps and
	// design uploads). 0 uses GOMAXPROCS.
	MaxConcurrent int
	// RequestTimeout caps one sweep evaluation. 0 means 30s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies. 0 means 8MB.
	MaxBodyBytes int64
	// RetryAfter is the backoff hint attached to 429 responses. 0 means 1s.
	RetryAfter time.Duration
	// Artifacts, when non-nil, persists solved designs and compiled plans
	// across process restarts: LoadNetlist warm-starts from a stored
	// artifact on a fingerprint match instead of solving, solved uploads
	// are written back, and the sweep engine consults the store behind
	// its in-memory plan cache.
	Artifacts *artifact.Store
	// FlightRecorderSize bounds the /debug/requests ring: the last K
	// request records (trace ID, design, per-stage durations, plan
	// disposition, outcome) kept for after-the-fact latency forensics.
	// 0 means 128.
	FlightRecorderSize int
	// SlowRequest, when > 0, promotes any request slower than the
	// threshold to the slow log: its full span tree is written as one
	// JSON line to SlowLog, so "why was that sweep slow?" is answerable
	// without having traced every request externally.
	SlowRequest time.Duration
	// SlowLog receives slow-request span trees (one JSON object per
	// line). nil uses os.Stderr.
	SlowLog io.Writer
}

// Design is one solved design registered with the server.
type Design struct {
	Name     string
	Result   *core.Result
	Plan     sweep.Stats
	Vertices int
	SeqBits  int
}

// Server serves workload sweeps over solved designs. Create with New,
// register designs with AddResult or LoadNetlist, and mount Handler on an
// http.Server.
type Server struct {
	cfg    Config
	eng    *sweep.Engine
	reg    *obs.Registry
	sem    chan struct{}
	start  time.Time
	flight *obs.FlightRecorder
	slowMu sync.Mutex // serializes SlowLog writes

	mu      sync.RWMutex
	designs map[string]*Design

	stopOnce sync.Once
	stop     chan struct{} // closed by Abort: cancels in-flight sweeps

	// onSlotAcquired is a test hook invoked while holding a concurrency
	// slot, before the engine runs; it lets tests pin requests in flight
	// deterministically.
	onSlotAcquired func()
}

// New returns a Server with no designs registered.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.SlowLog == nil {
		cfg.SlowLog = os.Stderr
	}
	cfg.Sweep.Obs = cfg.Obs
	if cfg.Artifacts != nil {
		// Guarded: assigning a nil *artifact.Store unconditionally would
		// make Sweep.Store a non-nil interface wrapping nil.
		cfg.Sweep.Store = cfg.Artifacts
	}
	// Pre-register the pipeline latency histograms so /metrics exposes
	// every stage's family — with identical fixed bucket layouts across
	// replicas — from the first scrape, not the first request.
	cfg.Obs.FixedHistogram("server.request_seconds", obs.LatencyBuckets)
	cfg.Obs.FixedHistogram("sweep.plan_compile_seconds", obs.LatencyBuckets)
	cfg.Obs.FixedHistogram("sweep.block_eval_seconds", obs.LatencyBuckets)
	cfg.Obs.FixedHistogram("artifact.restore_seconds", obs.LatencyBuckets)
	cfg.Obs.FixedHistogram("harden.optimize_seconds", obs.LatencyBuckets)
	return &Server{
		cfg:     cfg,
		eng:     sweep.New(cfg.Sweep),
		reg:     cfg.Obs,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		start:   time.Now(),
		flight:  obs.NewFlightRecorder(cfg.FlightRecorderSize),
		designs: make(map[string]*Design),
		stop:    make(chan struct{}),
	}
}

// Engine exposes the shared sweep engine (for tests and stats).
func (s *Server) Engine() *sweep.Engine { return s.eng }

// DuplicateDesignError reports an attempt to register a second design
// under a name that is already taken. Callers registering from multiple
// sources (e.g. repeated -design flags) can unwrap it with errors.As to
// report which sources collided.
type DuplicateDesignError struct {
	Name string
}

func (e *DuplicateDesignError) Error() string {
	return fmt.Sprintf("server: design %q already registered", e.Name)
}

// AddResult registers a solved design under name (the design's own name
// when empty), eagerly compiling its evaluation plan so the first request
// pays no compile latency. Duplicate names are rejected: silently
// replacing a live design would make concurrent requests to one name
// answer from two different circuits.
func (s *Server) AddResult(name string, res *core.Result) (*Design, error) {
	if name == "" {
		name = res.Analyzer.G.Design.Name
	}
	plan, err := s.eng.Plan(res)
	if err != nil {
		return nil, fmt.Errorf("server: compiling plan for %q: %w", name, err)
	}
	seq := 0
	for v := 0; v < res.Analyzer.G.NumVerts(); v++ {
		if res.IsSequentialBit(graph.VertexID(v)) {
			seq++
		}
	}
	d := &Design{
		Name:     name,
		Result:   res,
		Plan:     plan.Stats(),
		Vertices: res.Analyzer.G.NumVerts(),
		SeqBits:  seq,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.designs[name]; dup {
		return nil, &DuplicateDesignError{Name: name}
	}
	s.designs[name] = d
	s.reg.Gauge("server.designs").Set(float64(len(s.designs)))
	return d, nil
}

// LoadNetlist parses a textual netlist, solves it symbolically under
// opts, and registers it under name (the netlist's design name when
// empty). The solve runs against a neutral all-0.5 baseline: the closed
// forms — the only thing sweeps reuse — depend on graph structure alone,
// not on the baseline values.
//
// With Config.Artifacts set, the solve is skipped entirely when the
// store holds an artifact for the design's fingerprint (a warm start,
// counted as artifact.warm_start), and a cold solve is persisted back
// (artifact.cold_start) so the next process restart warm-starts.
func (s *Server) LoadNetlist(name string, r io.Reader, opts core.Options) (*Design, error) {
	return s.LoadNetlistContext(context.Background(), name, r, opts)
}

// LoadNetlistContext is LoadNetlist with request-scoped tracing: the
// artifact restore (warm start) or symbolic solve (cold start) nests
// under ctx's current span, and the span gains an "artifact" attribute
// ("warm" or "cold") that the flight recorder surfaces as the upload's
// plan disposition.
func (s *Server) LoadNetlistContext(ctx context.Context, name string, r io.Reader, opts core.Options) (*Design, error) {
	a, err := s.analyzeNetlist(r, opts)
	if err != nil {
		return nil, err
	}
	if st := s.cfg.Artifacts; st != nil {
		res, _, err := st.GetContext(ctx, a)
		if err != nil {
			// A stale or corrupt artifact is never fatal: fall through to
			// the cold solve and regenerate it.
			s.reg.Counter("server.artifact_errors").Inc()
		}
		if res != nil {
			// Uploads and startup loads always solve against the neutral
			// baseline, so a warm start usually skips even the
			// re-evaluation; a store shared with CLI runs may hold other
			// inputs, which are plugged back in.
			if in := neutralInputs(a); !res.Inputs.Equal(in) {
				if err := res.Reevaluate(in); err != nil {
					return nil, fmt.Errorf("server: re-evaluating stored artifact for %q: %w", a.G.Design.Name, err)
				}
			}
			s.reg.Counter("artifact.warm_start").Inc()
			obs.SpanFromContext(ctx).SetAttr("artifact", "warm")
			return s.AddResult(name, res)
		}
	}
	res, err := a.SolveContext(ctx, neutralInputs(a))
	if err != nil {
		return nil, fmt.Errorf("server: solving %q: %w", a.G.Design.Name, err)
	}
	if s.cfg.Artifacts != nil {
		// AddResult compiles the plan through the sweep engine, whose
		// second-level store (wired in New) persists the artifact —
		// result and plan together — so the next restart warm-starts.
		s.reg.Counter("artifact.cold_start").Inc()
		obs.SpanFromContext(ctx).SetAttr("artifact", "cold")
	}
	return s.AddResult(name, res)
}

// analyzeNetlist runs the shared upload prelude: parse, validate,
// flatten, extract the bit graph, and build the analyzer.
func (s *Server) analyzeNetlist(r io.Reader, opts core.Options) (*core.Analyzer, error) {
	d, err := netlist.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("server: parsing netlist: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("server: netlist %q: %w", d.Name, err)
	}
	fd, err := netlist.Flatten(d)
	if err != nil {
		return nil, fmt.Errorf("server: flattening %q: %w", d.Name, err)
	}
	g, err := graph.Build(fd)
	if err != nil {
		return nil, fmt.Errorf("server: building graph for %q: %w", d.Name, err)
	}
	opts.Obs = s.reg
	a, err := core.NewAnalyzer(g, opts)
	if err != nil {
		return nil, fmt.Errorf("server: analyzing %q: %w", d.Name, err)
	}
	return a, nil
}

// UnknownDesignError reports an edit against a name with no registered
// design: there is nothing to re-solve incrementally from.
type UnknownDesignError struct {
	Name string
}

func (e *UnknownDesignError) Error() string {
	return fmt.Sprintf("server: design %q not registered", e.Name)
}

// ReplaceResult registers a solved design under name, replacing any
// design already live there. The swap is atomic under the registry lock:
// requests in flight keep sweeping the result they resolved, new
// requests see the replacement. This is the ECO path's registration —
// uploads that must not silently displace a live design use AddResult.
func (s *Server) ReplaceResult(name string, res *core.Result) (*Design, error) {
	if name == "" {
		name = res.Analyzer.G.Design.Name
	}
	plan, err := s.eng.Plan(res)
	if err != nil {
		return nil, fmt.Errorf("server: compiling plan for %q: %w", name, err)
	}
	seq := 0
	for v := 0; v < res.Analyzer.G.NumVerts(); v++ {
		if res.IsSequentialBit(graph.VertexID(v)) {
			seq++
		}
	}
	d := &Design{
		Name:     name,
		Result:   res,
		Plan:     plan.Stats(),
		Vertices: res.Analyzer.G.NumVerts(),
		SeqBits:  seq,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.designs[name] = d
	s.reg.Gauge("server.designs").Set(float64(len(s.designs)))
	return d, nil
}

// EditNetlistContext applies an ECO: it parses the edited netlist,
// re-solves it incrementally from the registered design's converged
// state — walking only the FUBs whose fingerprints the edit moved — and
// atomically replaces the live design. The returned statistics report
// what was reused. A re-solve failure falls back to a cold solve (nil
// statistics) rather than failing the edit: incremental is an
// optimization. The request span gains artifact="incremental" (or
// "cold") so the flight recorder shows the disposition. With
// Config.Artifacts set, the replacement is persisted through the plan
// compile exactly like an upload.
func (s *Server) EditNetlistContext(ctx context.Context, name string, r io.Reader, opts core.Options) (*Design, *core.Incremental, error) {
	old := s.Design(name)
	if old == nil {
		return nil, nil, &UnknownDesignError{Name: name}
	}
	a, err := s.analyzeNetlist(r, opts)
	if err != nil {
		return nil, nil, err
	}
	in := neutralInputs(a)
	var (
		res *core.Result
		st  *core.Incremental
	)
	prior, err := old.Result.PriorState()
	if err == nil {
		res, st, err = a.ResolveIncrementalContext(ctx, in, prior)
	}
	if err != nil {
		// The prior was unusable (e.g. a design rename swapped in an
		// unrelated circuit): solve cold, the edit still lands.
		s.reg.Counter("server.edit_cold_fallbacks").Inc()
		res, err = a.SolveContext(ctx, in)
		if err != nil {
			return nil, nil, fmt.Errorf("server: solving %q: %w", a.G.Design.Name, err)
		}
	}
	disp := "cold"
	if st != nil {
		disp = "incremental"
	}
	obs.SpanFromContext(ctx).SetAttr("artifact", disp)
	d, err := s.ReplaceResult(name, res)
	if err != nil {
		return nil, nil, err
	}
	return d, st, nil
}

// neutralInputs assigns 0.5 to every structure port the design has; the
// symbolic solve only needs a complete environment, not meaningful values.
func neutralInputs(a *core.Analyzer) *core.Inputs {
	in := core.NewInputs()
	for _, sp := range a.ReadPortTerms() {
		in.ReadPorts[sp] = 0.5
	}
	for _, sp := range a.WritePortTerms() {
		in.WritePorts[sp] = 0.5
	}
	return in
}

// Design returns the registered design, or nil.
func (s *Server) Design(name string) *Design {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.designs[name]
}

// DesignNames returns the registered design names (unordered).
func (s *Server) DesignNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.designs))
	for n := range s.designs {
		names = append(names, n)
	}
	return names
}

// Abort cancels every in-flight sweep. Call it when a graceful drain
// (http.Server.Shutdown) exceeds its deadline: pending responses fail
// with 503 instead of holding the process open. Idempotent.
func (s *Server) Abort() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// acquire claims a concurrency slot without queueing. It returns false —
// backpressure — when every slot is busy.
func (s *Server) acquire() bool {
	select {
	case s.sem <- struct{}{}:
		s.reg.Gauge("server.in_flight").Set(float64(len(s.sem)))
		if s.onSlotAcquired != nil {
			s.onSlotAcquired()
		}
		return true
	default:
		return false
	}
}

func (s *Server) release() {
	<-s.sem
	s.reg.Gauge("server.in_flight").Set(float64(len(s.sem)))
}

// requestCtx derives the evaluation context for one request: the given
// context (the client's, already carrying the request span), capped by
// the request timeout, cancelled early by Abort.
func (s *Server) requestCtx(base context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(base, s.cfg.RequestTimeout)
	select {
	case <-s.stop:
		// Abort already happened: hand out a context that is cancelled
		// before the sweep starts, not racing a watcher goroutine.
		cancel()
		return ctx, cancel
	default:
	}
	go func() {
		select {
		case <-s.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}
