package server

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"seqavf/internal/artifact"
	"seqavf/internal/core"
	"seqavf/internal/design"
	"seqavf/internal/netlist"
	"seqavf/internal/obs"
	"seqavf/internal/sweep"
)

// genNetlist renders one generated design as netlist text.
func genNetlist(t *testing.T, seed uint64) (string, string) {
	t.Helper()
	cfg := design.DefaultConfig(seed)
	cfg.NumFubs = 4
	gen, err := design.Generate(cfg)
	if err != nil {
		t.Fatalf("design.Generate: %v", err)
	}
	var nl bytes.Buffer
	if err := netlist.Write(&nl, gen.Design); err != nil {
		t.Fatalf("netlist.Write: %v", err)
	}
	return nl.String(), gen.Design.Name
}

// TestLoadNetlistWarmStart simulates a daemon restart: the first server
// solves a design cold and persists it; a second server sharing the same
// artifact directory must register the same design without solving —
// with bit-identical AVFs — and still serve sweeps from it.
func TestLoadNetlistWarmStart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "artifacts")
	nl, name := genNetlist(t, 7)

	load := func(reg *obs.Registry) (*Server, *Design) {
		st, err := artifact.Open(dir, artifact.Options{Obs: reg})
		if err != nil {
			t.Fatalf("artifact.Open: %v", err)
		}
		s := New(Config{Obs: reg, Artifacts: st, Sweep: sweep.Options{Workers: 1}})
		d, err := s.LoadNetlist("", strings.NewReader(nl), core.DefaultOptions())
		if err != nil {
			t.Fatalf("LoadNetlist: %v", err)
		}
		return s, d
	}

	reg1 := obs.New()
	_, cold := load(reg1)
	if got := reg1.Counter("artifact.cold_start").Load(); got != 1 {
		t.Fatalf("first load: cold_start = %d, want 1", got)
	}
	if got := reg1.Counter("artifact.warm_start").Load(); got != 0 {
		t.Fatalf("first load: warm_start = %d, want 0", got)
	}

	reg2 := obs.New()
	s2, warm := load(reg2)
	if got := reg2.Counter("artifact.warm_start").Load(); got != 1 {
		t.Fatalf("second load: warm_start = %d, want 1", got)
	}
	if got := reg2.Counter("artifact.cold_start").Load(); got != 0 {
		t.Fatalf("second load: cold_start = %d, want 0", got)
	}
	if warm.Name != name || warm.Name != cold.Name {
		t.Fatalf("warm-started design named %q, cold %q, want %q", warm.Name, cold.Name, name)
	}
	for v := range cold.Result.AVF {
		if warm.Result.AVF[v] != cold.Result.AVF[v] {
			t.Fatalf("vertex %d: warm AVF %v != cold AVF %v", v, warm.Result.AVF[v], cold.Result.AVF[v])
		}
	}

	// The warm-started design must serve sweeps end to end.
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	body := sweepBody(t, name, warm.Result, 2, 900)
	resp, b := postJSON(t, http.DefaultClient, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep of warm-started design returned %d: %s", resp.StatusCode, b)
	}
}

// TestDuplicateDesignErrorType pins the typed duplicate error so callers
// (seqavfd's startup loop) can distinguish a name collision from a solve
// failure and report both sources.
func TestDuplicateDesignErrorType(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	res := solvedDesign(t, 77)
	if _, err := s.AddResult("alpha", res); err == nil {
		t.Fatal("duplicate AddResult succeeded")
	} else {
		var dup *DuplicateDesignError
		if !errors.As(err, &dup) {
			t.Fatalf("duplicate AddResult error %T (%v), want *DuplicateDesignError", err, err)
		}
		if dup.Name != "alpha" {
			t.Fatalf("DuplicateDesignError.Name = %q, want alpha", dup.Name)
		}
	}
}
