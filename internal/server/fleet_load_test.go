package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"seqavf/internal/artifact"
	"seqavf/internal/core"
	"seqavf/internal/design"
	"seqavf/internal/fleet"
	"seqavf/internal/netlist"
	"seqavf/internal/obs"
)

// fleetReplica is one live seqavfd stand-in: a real Server behind a
// real listener, with its registry for post-hoc assertions.
type fleetReplica struct {
	srv *Server
	reg *obs.Registry
	ts  *httptest.Server
}

// newFleetReplicas starts n replicas, each with the same configuration.
// serviceFloor, when positive, is slept while holding a concurrency
// slot — a deterministic per-request service time that stands in for
// CPU-bound sweep work, so throughput scaling is measurable even on a
// single-core CI machine (sleeps overlap across replicas; CPU does not).
func newFleetReplicas(t testing.TB, n int, maxConcurrent int, serviceFloor time.Duration, store func(i int) *artifact.Store) []*fleetReplica {
	t.Helper()
	reps := make([]*fleetReplica, n)
	for i := range reps {
		reg := obs.New()
		cfg := Config{Obs: reg, MaxConcurrent: maxConcurrent}
		cfg.Sweep.Workers = 1
		if store != nil {
			cfg.Artifacts = store(i)
		}
		srv := New(cfg)
		if serviceFloor > 0 {
			srv.onSlotAcquired = func() { time.Sleep(serviceFloor) }
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		reps[i] = &fleetReplica{srv: srv, reg: reg, ts: ts}
	}
	return reps
}

func replicaURLs(reps []*fleetReplica) []string {
	urls := make([]string, len(reps))
	for i, r := range reps {
		urls[i] = r.ts.URL
	}
	return urls
}

// newGateway fronts the given replicas with a real gateway listener.
func newGateway(t testing.TB, urls []string) (*fleet.Gateway, *obs.Registry, *httptest.Server) {
	t.Helper()
	reg := obs.New()
	gw, err := fleet.New(fleet.Config{
		Replicas: urls,
		Obs:      reg,
		Client:   &http.Client{Timeout: 60 * time.Second},
		Backoff:  5 * time.Millisecond,
		Cooldown: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return gw, reg, ts
}

// ownedDesigns picks one design name per replica such that rendezvous
// routing sends name[i] to urls[i], then registers the shared solved
// result under every name on every replica — so any replica can serve
// any design (the fleet-wide design loading the gateway's failover
// assumes).
func ownedDesigns(t testing.TB, reps []*fleetReplica, res *core.Result) []string {
	t.Helper()
	urls := replicaURLs(reps)
	names := make([]string, len(reps))
	found := 0
	for i := 0; found < len(reps) && i < 10000; i++ {
		name := fmt.Sprintf("fleet-design-%d", i)
		owner := fleet.Owner(name, urls)
		for j, u := range urls {
			if u == owner && names[j] == "" {
				names[j] = name
				found++
				break
			}
		}
	}
	if found != len(reps) {
		t.Fatalf("could not find one owned design per replica: %v", names)
	}
	for _, r := range reps {
		for _, name := range names {
			if _, err := r.srv.AddResult(name, res); err != nil {
				t.Fatalf("AddResult(%s): %v", name, err)
			}
		}
	}
	return names
}

// TestFleetThroughput is the scaling acceptance test: with a 150ms
// service floor per sweep and one slot per replica, 3 replicas behind
// the gateway must clear a 12-request workload at least 2.5× faster
// than 1 replica does — and with zero drops (every response 200).
func TestFleetThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput soak")
	}
	const (
		floor    = 150 * time.Millisecond
		requests = 12
	)
	res := solvedDesign(t, 91)
	reps := newFleetReplicas(t, 3, 1, floor, nil)
	names := ownedDesigns(t, reps, res)
	bodies := make(map[string][]byte, len(names))
	for _, name := range names {
		bodies[name] = sweepBody(t, name, res, 1, 400)
	}

	run := func(gwURL string, clients int) time.Duration {
		t.Helper()
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		per := requests / clients
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				name := names[c%len(names)]
				for i := 0; i < per; i++ {
					resp, b := postJSON(t, http.DefaultClient, gwURL+"/v1/sweep", bodies[name])
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, b)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	// Baseline: the whole workload through a single-replica gateway,
	// one sequential client (MaxConcurrent=1 serializes anyway).
	_, _, soloTS := newGateway(t, replicaURLs(reps[:1]))
	soloElapsed := run(soloTS.URL, 1)

	// Fleet: same workload through the 3-replica gateway, one pinned
	// client per replica so the 1-slot replicas never 429.
	_, gwReg, fleetTS := newGateway(t, replicaURLs(reps))
	fleetElapsed := run(fleetTS.URL, 3)

	ratio := float64(soloElapsed) / float64(fleetElapsed)
	t.Logf("solo %v, fleet %v, speedup %.2fx", soloElapsed, fleetElapsed, ratio)
	if ratio < 2.5 {
		t.Fatalf("3-replica fleet speedup %.2fx, want >= 2.5x (solo %v, fleet %v)",
			ratio, soloElapsed, fleetElapsed)
	}
	if got := gwReg.Counter("gateway.route_total").Load(); got != requests {
		t.Fatalf("gateway routed %d requests, want %d", got, requests)
	}
	if got := gwReg.Counter("gateway.proxy_errors").Load(); got != 0 {
		t.Fatalf("gateway counted %d proxy errors, want 0", got)
	}
	// Each replica served exactly its designs' share: routing was
	// consistent, not round-robin.
	for i, r := range reps {
		if got := r.reg.Counter("server.sweep_ok").Load(); got != requests/3+requests {
			// requests/3 from the fleet run; all 12 from the solo run land
			// on replica 0 only.
			if i == 0 || got != requests/3 {
				t.Fatalf("replica %d served %d sweeps, want %d (or %d for the solo baseline replica)",
					i, got, requests/3, requests/3+requests)
			}
		}
	}
}

// TestFleetStormZeroDrops hammers the fleet with more clients than
// slots while scraping merged metrics concurrently: every request must
// eventually succeed (429s are retried, nothing is lost), and the
// fleet-wide exposition must account for every sweep.
func TestFleetStormZeroDrops(t *testing.T) {
	res := solvedDesign(t, 92)
	reps := newFleetReplicas(t, 3, 2, 0, nil)
	names := ownedDesigns(t, reps, res)
	_, _, gwTS := newGateway(t, replicaURLs(reps))

	const clients, perClient = 8, 4
	bodies := make(map[string][]byte, len(names))
	for _, name := range names {
		bodies[name] = sweepBody(t, name, res, 1, 500)
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients+1)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := names[c%len(names)]
			for i := 0; i < perClient; i++ {
				for attempt := 0; ; attempt++ {
					resp, b := postJSON(t, http.DefaultClient, gwTS.URL+"/v1/sweep", bodies[name])
					if resp.StatusCode == http.StatusOK {
						break
					}
					if resp.StatusCode == http.StatusTooManyRequests && attempt < 200 {
						time.Sleep(2 * time.Millisecond)
						continue
					}
					errs <- fmt.Errorf("client %d req %d: status %d: %s", c, i, resp.StatusCode, b)
					return
				}
			}
		}(c)
	}
	// Concurrent scrapes of the merged exposition must never fail or
	// serve an unparseable page.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			resp, err := http.Get(gwTS.URL + "/metrics")
			if err != nil {
				errs <- fmt.Errorf("scrape %d: %v", i, err)
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("scrape %d: status %d", i, resp.StatusCode)
				return
			}
			if _, err := fleet.ParseExposition(b); err != nil {
				errs <- fmt.Errorf("scrape %d: merged page unparseable: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var served int64
	for _, r := range reps {
		served += r.reg.Counter("server.sweep_ok").Load()
	}
	if served != clients*perClient {
		t.Fatalf("replicas served %d sweeps, want %d (zero drops)", served, clients*perClient)
	}
	// The merged exposition sums the fleet's counters.
	resp, err := http.Get(gwTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exp, err := fleet.ParseExposition(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range exp.Families {
		for _, s := range fam.Samples {
			if s.Name == "server_sweep_ok" && s.Labels == "" && int64(s.Value) != served {
				t.Fatalf("merged server_sweep_ok = %v, want %d", s.Value, served)
			}
		}
	}
}

// TestFleetFailoverLive kills a live replica and drives a design it
// owned: the gateway must re-route to the next hash choice and the
// request must succeed, because every replica loads every design.
func TestFleetFailoverLive(t *testing.T) {
	res := solvedDesign(t, 93)
	reps := newFleetReplicas(t, 3, 4, 0, nil)
	names := ownedDesigns(t, reps, res)
	gw, gwReg, gwTS := newGateway(t, replicaURLs(reps))

	victim := 1
	reps[victim].ts.Close()
	body := sweepBody(t, names[victim], res, 1, 600)
	resp, b := postJSON(t, http.DefaultClient, gwTS.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover sweep: status %d: %s", resp.StatusCode, b)
	}
	if got := gwReg.Counter("gateway.retries").Load(); got == 0 {
		t.Fatal("failover counted no retries")
	}
	if got := gwReg.Gauge("gateway.replica_unhealthy").Load(); got != 1 {
		t.Fatalf("gateway.replica_unhealthy = %v, want 1", got)
	}
	// The surviving replicas, not the victim, served it.
	if got := reps[victim].reg.Counter("server.sweep_ok").Load(); got != 0 {
		t.Fatalf("dead replica served %d sweeps", got)
	}
	_ = gw
}

// TestFleetRemoteWarmStart is the rolling-restart acceptance test: a
// replica restarted with an EMPTY artifact directory must warm-start
// its designs from a peer's artifact store over the remote tier — no
// re-solve — and serve bit-identical sweep results.
func TestFleetRemoteWarmStart(t *testing.T) {
	// Replica A: solves cold and persists the artifact.
	regA := obs.New()
	storeA, err := artifact.Open(t.TempDir(), artifact.Options{Obs: regA})
	if err != nil {
		t.Fatal(err)
	}
	cfgA := Config{Obs: regA, Artifacts: storeA}
	cfgA.Sweep.Workers = 1
	srvA := New(cfgA)
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()

	gen, err := design.Generate(func() design.Config {
		c := design.DefaultConfig(77)
		c.NumFubs = 3
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	var nl bytes.Buffer
	if err := netlist.Write(&nl, gen.Design); err != nil {
		t.Fatal(err)
	}
	dA, err := srvA.LoadNetlist("", bytes.NewReader(nl.Bytes()), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if regA.Counter("artifact.cold_start").Load() != 1 {
		t.Fatal("replica A did not solve cold")
	}

	// Replica B: empty artifact dir, remote tier pointed at A. Loading
	// the same netlist must warm-start through the fleet.
	regB := obs.New()
	storeB, err := artifact.Open(t.TempDir(), artifact.Options{
		Obs:    regB,
		Remote: &artifact.Remote{Peers: []string{tsA.URL}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgB := Config{Obs: regB, Artifacts: storeB}
	cfgB.Sweep.Workers = 1
	srvB := New(cfgB)
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	dB, err := srvB.LoadNetlist("", bytes.NewReader(nl.Bytes()), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := regB.Counter("artifact.remote_hits").Load(); got != 1 {
		t.Fatalf("artifact.remote_hits = %d, want 1 (warm start must come from the peer)", got)
	}
	if got := regB.Counter("artifact.warm_start").Load(); got != 1 {
		t.Fatalf("artifact.warm_start = %d, want 1", got)
	}
	if got := regB.Counter("artifact.cold_start").Load(); got != 0 {
		t.Fatalf("replica B solved cold %d times though the peer held the artifact", got)
	}

	// Same design, same workloads, both replicas: results bit-identical.
	body := sweepBody(t, dA.Name, dA.Result, 3, 700)
	respA, bA := postJSON(t, http.DefaultClient, tsA.URL+"/v1/sweep", body)
	respB, bB := postJSON(t, http.DefaultClient, tsB.URL+"/v1/sweep", body)
	if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
		t.Fatalf("sweeps: A=%d B=%d", respA.StatusCode, respB.StatusCode)
	}
	var srA, srB SweepResponse
	if err := json.Unmarshal(bA, &srA); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bB, &srB); err != nil {
		t.Fatal(err)
	}
	if dA.Name != dB.Name {
		t.Fatalf("design names diverge: %q vs %q", dA.Name, dB.Name)
	}
	if len(srA.Results) != len(srB.Results) {
		t.Fatalf("result counts diverge: %d vs %d", len(srA.Results), len(srB.Results))
	}
	for i := range srA.Results {
		a, b := srA.Results[i], srB.Results[i]
		if a.Summary != b.Summary {
			t.Fatalf("workload %d: cold-solved summary %+v != remote-warm summary %+v", i, a.Summary, b.Summary)
		}
	}
}
