package server

// POST /v1/sweep/intervals — the time-resolved sweep endpoint. The
// request carries one multi-window pAVF table per workload (the pavfio
// interval format); the engine evaluates every window as one lane of a
// single blocked batch and the response returns each workload's
// per-node AVF time series plus the summary statistics (peak window,
// peak/mean ratio) that a whole-run sweep cannot express.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"seqavf/internal/obs"
	"seqavf/internal/pavfio"
	"seqavf/internal/sweep"
)

// IntervalSweepRequest is the body of POST /v1/sweep/intervals: one
// registered design plus one multi-window interval table per workload
// (see pavfio.ParseIntervals for the text format).
type IntervalSweepRequest struct {
	Design    string                  `json:"design"`
	Workloads []IntervalSweepWorkload `json:"workloads"`
	// Nodes includes each workload's per-sequential-node AVF time
	// series in the response.
	Nodes bool `json:"nodes,omitempty"`
}

// IntervalSweepWorkload names one workload and carries its interval
// table. Name may be empty when the table itself carries a
// "# workload" directive; when both are present they must agree.
type IntervalSweepWorkload struct {
	Name  string `json:"name"`
	Table string `json:"table"`
}

// IntervalSweepResponse reports the time-resolved sweep: plan
// statistics plus per-workload AVF time series, index-aligned with the
// request.
type IntervalSweepResponse struct {
	Design           string                   `json:"design"`
	Workloads        int                      `json:"workloads"`
	WindowsEvaluated int                      `json:"windows_evaluated"`
	Plan             sweep.Stats              `json:"plan"`
	ElapsedMS        float64                  `json:"eval_elapsed_ms"`
	Results          []IntervalWorkloadResult `json:"results"`
}

// IntervalWindowInfo is one window's half-open cycle span.
type IntervalWindowInfo struct {
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
}

// IntervalWorkloadResult is one workload's AVF time series: the window
// geometry, the per-window chip AVF, its peak statistics, and (with
// nodes: true) the per-sequential-node series, each value index-aligned
// with Windows.
type IntervalWorkloadResult struct {
	Name             string               `json:"name"`
	Windows          []IntervalWindowInfo `json:"windows"`
	ChipAVF          []float64            `json:"chip_avf"`
	TimeWeightedMean float64              `json:"time_weighted_mean"`
	PeakWindow       int                  `json:"peak_window"`
	PeakChipAVF      float64              `json:"peak_chip_avf"`
	PeakToMean       float64              `json:"peak_to_mean"`
	SeqAVF           map[string][]float64 `json:"seqavf,omitempty"`
}

func (s *Server) handleSweepIntervals(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("sweep.interval_requests").Inc()
	rsp, rctx := s.startRequest(w, r, "/v1/sweep/intervals")
	start := time.Now()
	rec := obs.RequestRecord{Endpoint: "/v1/sweep/intervals", Status: http.StatusOK, Outcome: "ok"}
	defer func() { s.finishRequest(rsp, start, rec) }()
	fail := func(status int, format string, args ...any) {
		rec.Status, rec.Outcome = status, fmt.Sprintf(format, args...)
		s.writeErr(w, status, "%s", rec.Outcome)
	}

	// Ingest stage: decode the envelope and run every interval table
	// through the strict multi-window parser — malformed geometry or a
	// single out-of-range value fails the request here, before anything
	// reaches the engine.
	isp := rsp.Child("ingest")
	var req IntervalSweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		isp.End()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			rec.Status, rec.Outcome = http.StatusRequestEntityTooLarge, err.Error()
			s.writeBodyErr(w, err)
			return
		}
		fail(http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	rec.Design = req.Design
	rec.Workloads = len(req.Workloads)
	d := s.Design(req.Design)
	if d == nil {
		isp.End()
		fail(http.StatusNotFound, "unknown design %q (see GET /v1/designs)", req.Design)
		return
	}
	rec.Fingerprint = fmt.Sprintf("%016x", d.Result.Analyzer.Fingerprint())
	if len(req.Workloads) == 0 {
		isp.End()
		fail(http.StatusBadRequest, "no workloads in request")
		return
	}
	ws := make([]sweep.IntervalWorkload, len(req.Workloads))
	for i, rw := range req.Workloads {
		name := rw.Name
		if name == "" {
			name = fmt.Sprintf("workload[%d]", i)
		}
		tab, err := pavfio.ParseIntervals(name, strings.NewReader(rw.Table))
		if err != nil {
			isp.End()
			fail(http.StatusUnprocessableEntity, "workload %q: %v", name, err)
			return
		}
		// Name consistency: a table directive must agree with the
		// request's name for the same workload (and supplies the name
		// when the request omits it).
		if tab.Workload != "" {
			if rw.Name != "" && rw.Name != tab.Workload {
				isp.End()
				fail(http.StatusUnprocessableEntity,
					"workload %q: table's '# workload %s' directive disagrees with the request name", rw.Name, tab.Workload)
				return
			}
			name = tab.Workload
		}
		iw := sweep.IntervalWorkload{Name: name}
		for _, win := range tab.Windows {
			iw.Windows = append(iw.Windows, sweep.WindowSpan{Start: win.Start, End: win.End})
			iw.Inputs = append(iw.Inputs, win.Inputs)
		}
		ws[i] = iw
	}
	isp.SetAttr("workloads", len(ws))
	isp.End()

	if !s.acquire() {
		rec.Status, rec.Outcome = http.StatusTooManyRequests, "busy"
		s.rejectBusy(w)
		return
	}
	defer s.release()

	ctx, cancel := s.requestCtx(rctx)
	defer cancel()
	batch, err := s.eng.SweepIntervalsContext(ctx, d.Result, ws)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			fail(http.StatusServiceUnavailable, "interval sweep timed out after %v", s.cfg.RequestTimeout)
		case errors.Is(err, context.Canceled):
			fail(http.StatusServiceUnavailable, "interval sweep cancelled: %v", err)
		default:
			fail(http.StatusUnprocessableEntity, "%v", err)
		}
		return
	}

	resp := IntervalSweepResponse{
		Design:           d.Name,
		Workloads:        len(batch.Workloads),
		WindowsEvaluated: batch.WindowsEvaluated,
		Plan:             batch.Plan.Stats(),
		ElapsedMS:        float64(batch.Elapsed.Microseconds()) / 1e3,
		Results:          make([]IntervalWorkloadResult, len(batch.Workloads)),
	}
	for i, iw := range batch.Workloads {
		wr := IntervalWorkloadResult{
			Name:             iw.Name,
			Windows:          make([]IntervalWindowInfo, len(iw.Windows)),
			ChipAVF:          iw.Summary.ChipAVF,
			TimeWeightedMean: iw.Summary.TimeWeightedMean,
			PeakWindow:       iw.Summary.PeakWindow,
			PeakChipAVF:      iw.Summary.PeakChipAVF,
			PeakToMean:       iw.Summary.PeakToMean,
		}
		for wi, span := range iw.Windows {
			wr.Windows[wi] = IntervalWindowInfo{Start: span.Start, End: span.End}
		}
		if req.Nodes {
			// Per-node time series: node -> one AVF per window, in
			// window order.
			wr.SeqAVF = make(map[string][]float64)
			for wi, res := range iw.Results {
				for node, avf := range res.SeqAVFByNode() {
					series, ok := wr.SeqAVF[node]
					if !ok {
						series = make([]float64, len(iw.Results))
						wr.SeqAVF[node] = series
					}
					series[wi] = avf
				}
			}
		}
		resp.Results[i] = wr
	}
	s.reg.Counter("server.interval_sweep_ok").Inc()
	writeJSON(w, http.StatusOK, resp)
}
