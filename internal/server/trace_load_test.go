package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"seqavf/internal/obs"
)

// TestTraceparentFlightRecorder is the tracing acceptance test: a sweep
// sent with a W3C traceparent must land in /debug/requests carrying the
// same trace ID, with non-zero per-stage durations, and the response
// must echo a traceparent continuing the incoming trace.
func TestTraceparentFlightRecorder(t *testing.T) {
	s, _, results := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, err := http.NewRequest("POST", ts.URL+"/v1/sweep",
		bytes.NewReader(sweepBody(t, "alpha", results["alpha"], 3, 500)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	const wantTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	echo := resp.Header.Get("traceparent")
	etid, _, ok := obs.ParseTraceparent(echo)
	if !ok || etid.String() != wantTrace {
		t.Fatalf("response traceparent %q does not continue trace %s", echo, wantTrace)
	}

	fresp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	var recs []obs.RequestRecord
	if err := json.Unmarshal(fb, &recs); err != nil {
		t.Fatalf("/debug/requests body %q: %v", fb, err)
	}
	if len(recs) != 1 {
		t.Fatalf("flight records = %d, want 1", len(recs))
	}
	rec := recs[0]
	if rec.TraceID != wantTrace {
		t.Fatalf("record trace %q, want %q", rec.TraceID, wantTrace)
	}
	if rec.Endpoint != "/v1/sweep" || rec.Design != "alpha" || rec.Workloads != 3 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Status != http.StatusOK || rec.Outcome != "ok" {
		t.Fatalf("record status/outcome = %d %q", rec.Status, rec.Outcome)
	}
	if rec.IngestSeconds <= 0 || rec.PlanSeconds <= 0 || rec.EvalSeconds <= 0 {
		t.Fatalf("per-stage durations not all positive: ingest=%v plan=%v eval=%v",
			rec.IngestSeconds, rec.PlanSeconds, rec.EvalSeconds)
	}
	if rec.DurationSeconds < rec.EvalSeconds {
		t.Fatalf("total %v < eval stage %v", rec.DurationSeconds, rec.EvalSeconds)
	}
	if rec.PlanSource != "cache" {
		t.Fatalf("plan source %q, want cache (design pre-registered)", rec.PlanSource)
	}
	if rec.Fingerprint == "" || len(rec.Fingerprint) != 16 {
		t.Fatalf("fingerprint %q", rec.Fingerprint)
	}
}

// TestUntracedRequestGetsFreshTrace: without a traceparent the server
// must mint a trace and still record the request.
func TestUntracedRequestGetsFreshTrace(t *testing.T) {
	s, _, results := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := postJSON(t, http.DefaultClient, ts.URL+"/v1/sweep",
		sweepBody(t, "beta", results["beta"], 1, 71))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d", resp.StatusCode)
	}
	if _, _, ok := obs.ParseTraceparent(resp.Header.Get("traceparent")); !ok {
		t.Fatalf("response traceparent %q invalid", resp.Header.Get("traceparent"))
	}
	recs := s.flight.Snapshot()
	if len(recs) != 1 || recs[0].TraceID == "" {
		t.Fatalf("flight records = %+v", recs)
	}
}

// promHistogram is one parsed exposition family.
type promHistogram struct {
	bounds []string
	cum    []uint64
	sum    float64
	count  uint64
}

// parsePromText parses exposition text into histogram families and
// scalar samples, failing the test on any malformed line.
func parsePromText(t *testing.T, text string) (map[string]*promHistogram, map[string]float64) {
	t.Helper()
	hists := make(map[string]*promHistogram)
	scalars := make(map[string]float64)
	get := func(fam string) *promHistogram {
		h := hists[fam]
		if h == nil {
			h = &promHistogram{}
			hists[fam] = h
		}
		return h
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		switch {
		case strings.Contains(name, "_bucket{le="):
			fam := name[:strings.Index(name, "_bucket{")]
			le := name[strings.Index(name, `le="`)+4 : len(name)-2]
			c, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", line, err)
			}
			h := get(fam)
			h.bounds = append(h.bounds, le)
			h.cum = append(h.cum, c)
		case strings.HasSuffix(name, "_sum") && hists[strings.TrimSuffix(name, "_sum")] != nil:
			get(strings.TrimSuffix(name, "_sum")).sum, _ = strconv.ParseFloat(val, 64)
		case strings.HasSuffix(name, "_count") && hists[strings.TrimSuffix(name, "_count")] != nil:
			get(strings.TrimSuffix(name, "_count")).count, _ = strconv.ParseUint(val, 10, 64)
		default:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("scalar value %q: %v", line, err)
			}
			scalars[name] = f
		}
	}
	return hists, scalars
}

// TestPromExpositionUnderLoad scrapes /metrics while 64 concurrent
// clients sweep, and checks every scraped page is a valid exposition:
// each histogram family has monotone cumulative buckets ending in
// le="+Inf" equal to _count, plus _sum/_count lines. Run under -race
// this also proves scrapes do not race request recording.
func TestPromExpositionUnderLoad(t *testing.T) {
	s, _, results := newTestServer(t, Config{MaxConcurrent: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 64
	body := sweepBody(t, "alpha", results["alpha"], 2, 300)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
				if resp.StatusCode != http.StatusTooManyRequests {
					errs <- fmt.Errorf("sweep: %d", resp.StatusCode)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	// Scrape concurrently with the load.
	scrapes := make(chan string, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				errs <- err
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if got := resp.Header.Get("Content-Type"); got != obs.PromContentType {
				errs <- fmt.Errorf("scrape Content-Type %q", got)
				return
			}
			scrapes <- string(b)
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	close(scrapes)
	for err := range errs {
		t.Fatal(err)
	}

	pages := 0
	for page := range scrapes {
		pages++
		hists, _ := parsePromText(t, page)
		for fam, h := range hists {
			if len(h.bounds) == 0 || h.bounds[len(h.bounds)-1] != "+Inf" {
				t.Fatalf("%s: bucket series %v does not end in +Inf", fam, h.bounds)
			}
			for i := 1; i < len(h.cum); i++ {
				if h.cum[i] < h.cum[i-1] {
					t.Fatalf("%s: cumulative buckets not monotone: %v", fam, h.cum)
				}
			}
			if h.cum[len(h.cum)-1] != h.count {
				t.Fatalf("%s: le=+Inf %d != _count %d", fam, h.cum[len(h.cum)-1], h.count)
			}
		}
	}
	if pages != 8 {
		t.Fatalf("scraped %d pages, want 8", pages)
	}

	// The final page must carry the request histogram with all 64 sweeps.
	resp, _ := http.Get(ts.URL + "/metrics")
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	hists, scalars := parsePromText(t, string(b))
	h := hists["server_request_seconds"]
	if h == nil || h.count != clients {
		t.Fatalf("server_request_seconds count = %+v, want %d", h, clients)
	}
	if h.sum <= 0 {
		t.Fatalf("server_request_seconds sum = %v", h.sum)
	}
	if scalars["server_sweep_ok"] != clients {
		t.Fatalf("server_sweep_ok = %v, want %d", scalars["server_sweep_ok"], clients)
	}
	if got := s.flight.Len(); got != clients {
		t.Fatalf("flight recorder retained %d, want %d", got, clients)
	}
}

// TestSlowRequestLog: a request over the SlowRequest threshold must be
// promoted to the slow log as one JSON line carrying the trace ID and
// the full span tree.
func TestSlowRequestLog(t *testing.T) {
	var slow syncBuffer
	s, reg, results := newTestServer(t, Config{
		SlowRequest: time.Nanosecond, // everything is slow
		SlowLog:     &slow,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, b := postJSON(t, http.DefaultClient, ts.URL+"/v1/sweep",
		sweepBody(t, "alpha", results["alpha"], 1, 42))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, b)
	}
	var line struct {
		SlowRequest obs.RequestRecord `json:"slow_request"`
		Spans       obs.SpanSnapshot  `json:"spans"`
	}
	if err := json.Unmarshal(slow.Bytes(), &line); err != nil {
		t.Fatalf("slow log %q: %v", slow.Bytes(), err)
	}
	if line.SlowRequest.TraceID == "" || line.Spans.TraceID != line.SlowRequest.TraceID {
		t.Fatalf("slow log trace IDs: record %q, spans %q", line.SlowRequest.TraceID, line.Spans.TraceID)
	}
	if line.Spans.Name != "server.request" || len(line.Spans.Children) == 0 {
		t.Fatalf("slow log span tree = %+v", line.Spans)
	}
	if reg.Counter("server.slow_requests").Load() != 1 {
		t.Fatalf("server.slow_requests = %d", reg.Counter("server.slow_requests").Load())
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for test log capture.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}
