package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"seqavf/internal/artifact"
	"seqavf/internal/harden"
	"seqavf/internal/obs"
)

// hardenBody builds a POST /v1/harden body.
func hardenBody(t testing.TB, req harden.Request) []byte {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestHardenEndpoint(t *testing.T) {
	s, reg, results := newTestServer(t, Config{MaxConcurrent: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := hardenBody(t, harden.Request{
		Design: "alpha",
		// Small-config nodes are 3 bits wide (cost 3 by default), so the
		// smallest budget affords exactly one node and the last covers all.
		Budgets:  []float64{3, 9, 1e6},
		TopTerms: 5,
	})
	resp, raw := postJSON(t, http.DefaultClient, ts.URL+"/v1/harden", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var hr harden.Response
	if err := json.Unmarshal(raw, &hr); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, raw)
	}
	if hr.Design != "alpha" || len(hr.Plans) != 3 {
		t.Fatalf("response %q with %d plans, want alpha/3: %s", hr.Design, len(hr.Plans), raw)
	}
	if hr.SeqBits <= 0 || hr.Candidates <= 0 {
		t.Fatalf("empty model: %s", raw)
	}
	for i, p := range hr.Plans {
		if len(p.Chosen) == 0 {
			t.Errorf("plan %d (budget %v) chose nothing", i, p.Budget)
		}
		if p.ResidualChipAVF > p.BaseChipAVF {
			t.Errorf("plan %d residual %v above base %v", i, p.ResidualChipAVF, p.BaseChipAVF)
		}
		if p.TotalCost > p.Budget {
			t.Errorf("plan %d overspent: %v > %v", i, p.TotalCost, p.Budget)
		}
		for _, c := range p.Chosen {
			if !strings.Contains(c.Key, "/") {
				t.Errorf("plan %d candidate key %q not fub/node", i, c.Key)
			}
		}
	}
	// The last budget covers everything: residual must be exactly zero.
	if last := hr.Plans[2]; last.ResidualChipAVF != 0 {
		t.Errorf("unbounded budget left residual %v", last.ResidualChipAVF)
	}
	if len(hr.TopTerms) == 0 || len(hr.TopTerms) > 5 {
		t.Errorf("top_terms=5 returned %d entries", len(hr.TopTerms))
	}
	if hr.SensCache != "miss" {
		t.Errorf("first request sens_cache %q, want miss", hr.SensCache)
	}
	if got := reg.Counter("harden.requests").Load(); got != 1 {
		t.Errorf("harden.requests = %d, want 1", got)
	}
	if got := reg.Counter("harden.ok").Load(); got != 1 {
		t.Errorf("harden.ok = %d, want 1", got)
	}

	// Workload-driven request: gains computed on the mean AVF across the
	// supplied tables; the plans must still be well-formed and ranked.
	res := results["beta"]
	wbody := hardenBody(t, harden.Request{
		Design: "beta",
		Workloads: []harden.Workload{
			{Name: "w0", PAVF: pavfText(t, res, 1400)},
			{Name: "w1", PAVF: pavfText(t, res, 1401)},
		},
		Budgets: []float64{4},
		Solver:  harden.SolverGreedy,
	})
	resp, raw = postJSON(t, http.DefaultClient, ts.URL+"/v1/harden", wbody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workload harden status %d: %s", resp.StatusCode, raw)
	}
	var whr harden.Response
	if err := json.Unmarshal(raw, &whr); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	if len(whr.Workloads) != 2 || whr.Workloads[0] != "w0" {
		t.Errorf("workload echo %v", whr.Workloads)
	}
	if len(whr.Plans) != 1 || whr.Plans[0].Solver != harden.SolverGreedy {
		t.Errorf("plans %+v", whr.Plans)
	}
	for _, p := range whr.Plans {
		for i := 1; i < len(p.Chosen); i++ {
			if p.Chosen[i-1].Density() < p.Chosen[i].Density() {
				t.Errorf("chosen not ranked by density: %v before %v",
					p.Chosen[i-1].Density(), p.Chosen[i].Density())
			}
		}
	}
}

func TestHardenEndpointErrors(t *testing.T) {
	s, _, _ := newTestServer(t, Config{MaxConcurrent: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"unknown design", `{"design":"nope","budgets":[5]}`, http.StatusNotFound},
		{"no budgets", `{"design":"alpha","budgets":[]}`, http.StatusBadRequest},
		{"negative budget", `{"design":"alpha","budgets":[-1]}`, http.StatusBadRequest},
		{"nan budget", `{"design":"alpha","budgets":[null]}`, http.StatusBadRequest},
		{"bad solver", `{"design":"alpha","budgets":[5],"solver":"anneal"}`, http.StatusBadRequest},
		{"unknown field", `{"design":"alpha","budgets":[5],"frobnicate":1}`, http.StatusBadRequest},
		{"unknown cost key", `{"design":"alpha","budgets":[5],"costs":{"no/such":1}}`, http.StatusUnprocessableEntity},
		{"bad pavf", `{"design":"alpha","budgets":[5],"workloads":[{"name":"w","pavf":"garbage here"}]}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, raw := postJSON(t, http.DefaultClient, ts.URL+"/v1/harden", []byte(tc.body))
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.status, raw)
		}
		var e map[string]string
		if err := json.Unmarshal(raw, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body not {\"error\": ...}: %s", tc.name, raw)
		}
	}
}

// TestHardenSensCache: with an artifact store configured, the second
// identical request serves its term gradient from the .sens artifact.
func TestHardenSensCache(t *testing.T) {
	reg := obs.New()
	st, err := artifact.Open(t.TempDir(), artifact.Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := newTestServer(t, Config{MaxConcurrent: 4, Obs: reg, Artifacts: st})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := hardenBody(t, harden.Request{Design: "alpha", Budgets: []float64{8}, TopTerms: 3})
	for i, want := range []string{"miss", "hit"} {
		resp, raw := postJSON(t, http.DefaultClient, ts.URL+"/v1/harden", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, raw)
		}
		var hr harden.Response
		if err := json.Unmarshal(raw, &hr); err != nil {
			t.Fatal(err)
		}
		if hr.SensCache != want {
			t.Errorf("request %d sens_cache %q, want %q", i, hr.SensCache, want)
		}
	}
	if hits := reg.Counter("harden.sens_cache_hits").Load(); hits != 1 {
		t.Errorf("harden.sens_cache_hits = %d, want 1", hits)
	}
	if misses := reg.Counter("harden.sens_cache_misses").Load(); misses != 1 {
		t.Errorf("harden.sens_cache_misses = %d, want 1", misses)
	}
	// The vector landed as a .sens artifact in the store's directory.
	if n := globSens(t, st.Dir()); n != 1 {
		t.Errorf("store holds %d .sens files, want 1", n)
	}
	// A different workload env is a different cache key.
	body2 := hardenBody(t, harden.Request{
		Design:    "alpha",
		Workloads: []harden.Workload{{Name: "w", PAVF: pavfText(t, s.Design("alpha").Result, 77)}},
		Budgets:   []float64{8},
		TopTerms:  3,
	})
	resp, raw := postJSON(t, http.DefaultClient, ts.URL+"/v1/harden", body2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var hr harden.Response
	if err := json.Unmarshal(raw, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.SensCache != "miss" {
		t.Errorf("different env should miss, got %q", hr.SensCache)
	}
	if n := globSens(t, st.Dir()); n != 2 {
		t.Errorf("store holds %d .sens files, want 2", n)
	}
}

func globSens(t *testing.T, dir string) int {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "*.sens"))
	if err != nil {
		t.Fatal(err)
	}
	return len(m)
}
