package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"seqavf/internal/core"
	"seqavf/internal/obs"
	"seqavf/internal/pavfio"
	"seqavf/internal/sweep"
)

// intervalTable renders a T-window interval table for res's design, each
// window a seeded pAVF table over contiguous 100-cycle spans.
func intervalTable(t testing.TB, name string, res *core.Result, windows int, seedBase uint64) string {
	t.Helper()
	var sb strings.Builder
	if name != "" {
		fmt.Fprintf(&sb, "# workload %s\n", name)
	}
	for w := 0; w < windows; w++ {
		fmt.Fprintf(&sb, "# window %d %d %d\n", w, w*100, (w+1)*100)
		sb.WriteString(pavfText(t, res, seedBase+uint64(w)))
	}
	return sb.String()
}

// intervalBody builds a POST /v1/sweep/intervals body.
func intervalBody(t testing.TB, designName string, res *core.Result, workloads, windows int, seedBase uint64, nodes bool) []byte {
	t.Helper()
	req := IntervalSweepRequest{Design: designName, Nodes: nodes}
	for i := 0; i < workloads; i++ {
		name := fmt.Sprintf("iw%d", i)
		req.Workloads = append(req.Workloads, IntervalSweepWorkload{
			Name:  name,
			Table: intervalTable(t, name, res, windows, seedBase+uint64(i)*1000),
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestSweepIntervalsEndpoint checks the time-resolved endpoint end to
// end: response shape, per-node time series, summary statistics, and
// value-exact agreement with a reference engine fed the same tables.
func TestSweepIntervalsEndpoint(t *testing.T) {
	s, _, results := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const windows = 5
	body := intervalBody(t, "alpha", results["alpha"], 2, windows, 9000, true)
	resp, b := postJSON(t, http.DefaultClient, ts.URL+"/v1/sweep/intervals", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("intervals: %d %s", resp.StatusCode, b)
	}
	var out IntervalSweepResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("response %q: %v", b, err)
	}
	if out.Design != "alpha" || out.Workloads != 2 || out.WindowsEvaluated != 2*windows {
		t.Fatalf("response header = %+v", out)
	}
	if len(out.Results) != 2 {
		t.Fatalf("results = %d", len(out.Results))
	}

	// Reference: same tables through a fresh engine.
	ref := sweep.New(sweep.Options{Workers: 1})
	var req IntervalSweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	for i, wr := range out.Results {
		if wr.Name != fmt.Sprintf("iw%d", i) {
			t.Fatalf("workload %d name %q", i, wr.Name)
		}
		if len(wr.Windows) != windows || len(wr.ChipAVF) != windows {
			t.Fatalf("workload %d shape: %d windows, %d chip AVFs", i, len(wr.Windows), len(wr.ChipAVF))
		}
		if len(wr.SeqAVF) == 0 {
			t.Fatalf("workload %d: no per-node series", i)
		}
		for node, series := range wr.SeqAVF {
			if len(series) != windows {
				t.Fatalf("workload %d node %s series length %d", i, node, len(series))
			}
		}
		tab, err := pavfio.ParseIntervals(wr.Name, strings.NewReader(req.Workloads[i].Table))
		if err != nil {
			t.Fatal(err)
		}
		iw := sweep.IntervalWorkload{Name: wr.Name}
		for _, win := range tab.Windows {
			iw.Windows = append(iw.Windows, sweep.WindowSpan{Start: win.Start, End: win.End})
			iw.Inputs = append(iw.Inputs, win.Inputs)
		}
		rb, err := ref.SweepIntervals(results["alpha"], []sweep.IntervalWorkload{iw})
		if err != nil {
			t.Fatal(err)
		}
		want := rb.Workloads[0].Summary
		for w := 0; w < windows; w++ {
			if wr.ChipAVF[w] != want.ChipAVF[w] {
				t.Fatalf("workload %d window %d chip AVF %v != reference %v", i, w, wr.ChipAVF[w], want.ChipAVF[w])
			}
		}
		if wr.TimeWeightedMean != want.TimeWeightedMean || wr.PeakWindow != want.PeakWindow ||
			wr.PeakChipAVF != want.PeakChipAVF || wr.PeakToMean != want.PeakToMean {
			t.Fatalf("workload %d summary %+v != reference %+v", i, wr, want)
		}
		for node, series := range wr.SeqAVF {
			refSeries := make([]float64, windows)
			for w, r := range rb.Workloads[0].Results {
				refSeries[w] = r.SeqAVFByNode()[node]
			}
			for w := 0; w < windows; w++ {
				if series[w] != refSeries[w] {
					t.Fatalf("workload %d node %s window %d: %v != reference %v", i, node, w, series[w], refSeries[w])
				}
			}
		}
	}
}

// TestSweepIntervalsRejects covers the endpoint's validation surface.
func TestSweepIntervalsRejects(t *testing.T) {
	s, _, results := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	res := results["alpha"]

	post := func(body any) (int, string) {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, rb := postJSON(t, http.DefaultClient, ts.URL+"/v1/sweep/intervals", b)
		return resp.StatusCode, string(rb)
	}

	// Request name disagreeing with the table's workload directive.
	code, rb := post(IntervalSweepRequest{Design: "alpha", Workloads: []IntervalSweepWorkload{
		{Name: "other", Table: intervalTable(t, "iw0", res, 2, 1)},
	}})
	if code != http.StatusUnprocessableEntity || !strings.Contains(rb, "disagrees") {
		t.Fatalf("name conflict: %d %s", code, rb)
	}
	// Directive-only naming is allowed and surfaces the directive name.
	code, rb = post(IntervalSweepRequest{Design: "alpha", Workloads: []IntervalSweepWorkload{
		{Table: intervalTable(t, "fromdir", res, 2, 2)},
	}})
	if code != http.StatusOK || !strings.Contains(rb, `"fromdir"`) {
		t.Fatalf("directive naming: %d %s", code, rb)
	}
	// Malformed window geometry → 422 with a file:line position.
	code, rb = post(IntervalSweepRequest{Design: "alpha", Workloads: []IntervalSweepWorkload{
		{Name: "bad", Table: "# window 0 100 50\nR A.p 0.5\n"},
	}})
	if code != http.StatusUnprocessableEntity || !strings.Contains(rb, "bad:1") {
		t.Fatalf("bad geometry: %d %s", code, rb)
	}
	// Whole-run table (no window directives) is not an interval table.
	code, rb = post(IntervalSweepRequest{Design: "alpha", Workloads: []IntervalSweepWorkload{
		{Name: "flat", Table: pavfText(t, res, 3)},
	}})
	if code != http.StatusUnprocessableEntity || !strings.Contains(rb, "before first '# window'") {
		t.Fatalf("flat table: %d %s", code, rb)
	}
	// Unknown design.
	code, _ = post(IntervalSweepRequest{Design: "nope", Workloads: []IntervalSweepWorkload{
		{Name: "w", Table: intervalTable(t, "w", res, 2, 4)},
	}})
	if code != http.StatusNotFound {
		t.Fatalf("unknown design: %d", code)
	}
	// Empty workload list.
	code, _ = post(IntervalSweepRequest{Design: "alpha"})
	if code != http.StatusBadRequest {
		t.Fatalf("no workloads: %d", code)
	}
}

// TestSweepIntervalsLoad is the interval acceptance load test: 16
// concurrent clients pushing multi-window sweeps through a limiter
// smaller than the client count. Every request must eventually succeed
// (zero drops — clients honor the 429 backpressure), the window
// counters must land on /metrics, a traced request must round-trip its
// traceparent through /debug/requests, and the in-flight gauge must
// read zero after the drain.
func TestSweepIntervalsLoad(t *testing.T) {
	s, reg, results := newTestServer(t, Config{MaxConcurrent: 4, Sweep: sweep.Options{Workers: 2}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		clients   = 16
		perClient = 2
		workloads = 2
		windows   = 4
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				body := intervalBody(t, "alpha", results["alpha"], workloads, windows,
					uint64(c*10000+r*100), false)
				for attempt := 0; ; attempt++ {
					if attempt > 200 {
						errs <- fmt.Errorf("client %d: no success after %d attempts", c, attempt)
						return
					}
					resp, err := http.Post(ts.URL+"/v1/sweep/intervals", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						var out IntervalSweepResponse
						if err := json.Unmarshal(b, &out); err != nil {
							errs <- fmt.Errorf("client %d: bad response: %v", c, err)
							return
						}
						if out.WindowsEvaluated != workloads*windows {
							errs <- fmt.Errorf("client %d: %d windows evaluated, want %d",
								c, out.WindowsEvaluated, workloads*windows)
							return
						}
						break
					}
					if resp.StatusCode != http.StatusTooManyRequests {
						errs <- fmt.Errorf("client %d: %d %s", c, resp.StatusCode, b)
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Window counters, on the registry and on the Prometheus exposition.
	const wantWindows = clients * perClient * workloads * windows
	if got := reg.Counter("sweep.windows_evaluated").Load(); got != wantWindows {
		t.Fatalf("sweep.windows_evaluated = %d, want %d", got, wantWindows)
	}
	if got := reg.Counter("server.interval_sweep_ok").Load(); got != clients*perClient {
		t.Fatalf("server.interval_sweep_ok = %d, want %d", got, clients*perClient)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	_, scalars := parsePromText(t, string(page))
	if got := scalars["sweep_windows_evaluated"]; got != wantWindows {
		t.Fatalf("exposition sweep_windows_evaluated = %v, want %d", got, wantWindows)
	}
	if got := scalars["sweep_interval_requests"]; got < clients*perClient {
		t.Fatalf("exposition sweep_interval_requests = %v, want >= %d", got, clients*perClient)
	}

	// Traceparent round-trip through the flight recorder.
	const parent = "00-aaaabbbbccccddddeeeeffff00001111-00f067aa0ba902b7-01"
	treq, err := http.NewRequest("POST", ts.URL+"/v1/sweep/intervals",
		bytes.NewReader(intervalBody(t, "beta", results["beta"], 1, windows, 777, false)))
	if err != nil {
		t.Fatal(err)
	}
	treq.Header.Set("Content-Type", "application/json")
	treq.Header.Set("traceparent", parent)
	tresp, err := http.DefaultClient.Do(treq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("traced request: %d", tresp.StatusCode)
	}
	const wantTrace = "aaaabbbbccccddddeeeeffff00001111"
	if etid, _, ok := obs.ParseTraceparent(tresp.Header.Get("traceparent")); !ok || etid.String() != wantTrace {
		t.Fatalf("response traceparent %q does not continue trace %s", tresp.Header.Get("traceparent"), wantTrace)
	}
	fresp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	var recs []obs.RequestRecord
	if err := json.Unmarshal(fb, &recs); err != nil {
		t.Fatalf("/debug/requests body %q: %v", fb, err)
	}
	found := false
	for _, rec := range recs {
		if rec.TraceID != wantTrace {
			continue
		}
		found = true
		if rec.Endpoint != "/v1/sweep/intervals" || rec.Design != "beta" || rec.Workloads != 1 {
			t.Fatalf("traced record = %+v", rec)
		}
		if rec.Status != http.StatusOK || rec.Outcome != "ok" {
			t.Fatalf("traced record status/outcome = %d %q", rec.Status, rec.Outcome)
		}
		if rec.IngestSeconds <= 0 || rec.EvalSeconds <= 0 {
			t.Fatalf("traced record stages: ingest=%v eval=%v", rec.IngestSeconds, rec.EvalSeconds)
		}
	}
	if !found {
		t.Fatalf("no flight record carries trace %s (got %d records)", wantTrace, len(recs))
	}

	// Drained: nothing left in flight.
	if got := len(s.sem); got != 0 {
		t.Fatalf("in-flight after drain = %d", got)
	}
}
