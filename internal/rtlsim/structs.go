package rtlsim

// Behavioral structure models. Port conventions:
//
//   - read ports: addrs[0] is the entry address (absent for single-entry
//     or whole-structure reads, which return entry 0);
//   - write ports: addrs[0] is the entry address, optional addrs[1] is an
//     active-high enable (write suppressed when 0).

// RegArray is a register-file-like array of entries.
type RegArray struct {
	Entries int
	Width   int
	// ZeroEntry pins entry 0 to zero (RISC-style r0) when true.
	ZeroEntry bool
	data      []uint64
	// pending writes applied at Tick (write-before-read semantics within
	// a cycle are NOT modeled: reads see the pre-edge state).
	pend []pendWrite
}

type pendWrite struct {
	addr int
	data uint64
}

// NewRegArray allocates a zeroed array.
func NewRegArray(entries, width int, zeroEntry bool) *RegArray {
	return &RegArray{Entries: entries, Width: width, ZeroEntry: zeroEntry, data: make([]uint64, entries)}
}

// Read implements StructSim.
func (r *RegArray) Read(port string, addrs []uint64) uint64 {
	addr := 0
	if len(addrs) > 0 {
		addr = int(addrs[0]) % r.Entries
	}
	if r.ZeroEntry && addr == 0 {
		return 0
	}
	return r.data[addr] & widthMask(r.Width)
}

// Write implements StructSim.
func (r *RegArray) Write(port string, data uint64, addrs []uint64) {
	addr := 0
	if len(addrs) > 0 {
		addr = int(addrs[0]) % r.Entries
	}
	if len(addrs) > 1 && addrs[1]&1 == 0 {
		return // enable low
	}
	if r.ZeroEntry && addr == 0 {
		return
	}
	r.pend = append(r.pend, pendWrite{addr: addr, data: data & widthMask(r.Width)})
}

// Tick implements StructSim.
func (r *RegArray) Tick() {
	for _, w := range r.pend {
		r.data[w.addr] = w.data
	}
	r.pend = r.pend[:0]
}

// Clone implements StructSim.
func (r *RegArray) Clone() StructSim {
	c := *r
	c.data = append([]uint64(nil), r.data...)
	c.pend = append([]pendWrite(nil), r.pend...)
	return &c
}

// Hash implements StructSim.
func (r *RegArray) Hash() uint64 {
	h := uint64(1469598103934665603)
	for _, v := range r.data {
		h ^= v
		h *= 1099511628211
	}
	return h
}

// Set initializes an entry directly (test/benchmark setup).
func (r *RegArray) Set(entry int, v uint64) { r.data[entry] = v & widthMask(r.Width) }

// Get reads an entry directly.
func (r *RegArray) Get(entry int) uint64 { return r.data[entry] }

// SparseMem is a sparse word memory (data memory).
type SparseMem struct {
	Width int
	data  map[uint64]uint64
	pend  []memWrite
}

type memWrite struct {
	addr, data uint64
}

// NewSparseMem allocates an empty memory.
func NewSparseMem(width int) *SparseMem {
	return &SparseMem{Width: width, data: make(map[uint64]uint64)}
}

// Init sets a word before simulation.
func (m *SparseMem) Init(addr, v uint64) { m.data[addr] = v & widthMask(m.Width) }

// Read implements StructSim.
func (m *SparseMem) Read(port string, addrs []uint64) uint64 {
	if len(addrs) == 0 {
		return 0
	}
	return m.data[addrs[0]]
}

// Write implements StructSim.
func (m *SparseMem) Write(port string, data uint64, addrs []uint64) {
	if len(addrs) == 0 {
		return
	}
	if len(addrs) > 1 && addrs[1]&1 == 0 {
		return
	}
	m.pend = append(m.pend, memWrite{addr: addrs[0], data: data & widthMask(m.Width)})
}

// Tick implements StructSim.
func (m *SparseMem) Tick() {
	for _, w := range m.pend {
		m.data[w.addr] = w.data
	}
	m.pend = m.pend[:0]
}

// Clone implements StructSim.
func (m *SparseMem) Clone() StructSim {
	c := &SparseMem{Width: m.Width, data: make(map[uint64]uint64, len(m.data))}
	for k, v := range m.data {
		c.data[k] = v
	}
	c.pend = append([]memWrite(nil), m.pend...)
	return c
}

// Hash implements StructSim. Order-independent fold so map iteration
// order cannot perturb comparisons.
func (m *SparseMem) Hash() uint64 {
	var h uint64
	for k, v := range m.data {
		if v == 0 {
			continue // treat explicit zero same as absent
		}
		x := k*0x9E3779B97F4A7C15 ^ v
		x ^= x >> 29
		x *= 0xBF58476D1CE4E5B9
		h += x
	}
	return h
}

// Get reads a word directly.
func (m *SparseMem) Get(addr uint64) uint64 { return m.data[addr] }

// ROM is a read-only word store (instruction memory). Writes are ignored.
type ROM struct {
	words []uint64
}

// NewROM copies the given contents.
func NewROM(words []uint64) *ROM {
	return &ROM{words: append([]uint64(nil), words...)}
}

// Read implements StructSim; out-of-range addresses return 0.
func (r *ROM) Read(port string, addrs []uint64) uint64 {
	if len(addrs) == 0 {
		return 0
	}
	a := addrs[0]
	if a >= uint64(len(r.words)) {
		return 0
	}
	return r.words[a]
}

// Write implements StructSim (ignored: ROM).
func (r *ROM) Write(port string, data uint64, addrs []uint64) {}

// Tick implements StructSim.
func (r *ROM) Tick() {}

// Clone implements StructSim. ROM contents are immutable, so the receiver
// itself is returned.
func (r *ROM) Clone() StructSim { return r }

// Hash implements StructSim. Contents never change, so a constant
// suffices.
func (r *ROM) Hash() uint64 { return 0 }
