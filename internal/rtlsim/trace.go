package rtlsim

import (
	"fmt"
	"io"
	"strings"
)

// Tracer records selected node values each cycle and renders them as a
// text waveform — the debugging companion to the simulator (a stand-in
// for the VCD dumps of a real RTL flow).
type Tracer struct {
	sim   *Sim
	nodes []traceNode
	rows  [][]uint64
}

type traceNode struct {
	fub, node string
	label     string
}

// NewTracer watches the given "fub/node" references. Unknown references
// are rejected up front.
func NewTracer(sim *Sim, refs ...string) (*Tracer, error) {
	t := &Tracer{sim: sim}
	for _, ref := range refs {
		fub, node, ok := strings.Cut(ref, "/")
		if !ok {
			return nil, fmt.Errorf("rtlsim: trace ref %q not fub/node", ref)
		}
		if _, err := sim.Value(fub, node); err != nil {
			return nil, err
		}
		t.nodes = append(t.nodes, traceNode{fub: fub, node: node, label: ref})
	}
	return t, nil
}

// Sample records the current settled values.
func (t *Tracer) Sample() {
	row := make([]uint64, len(t.nodes))
	for i, n := range t.nodes {
		row[i], _ = t.sim.Value(n.fub, n.node)
	}
	t.rows = append(t.rows, row)
}

// Step samples then advances the simulation one cycle.
func (t *Tracer) Step() {
	t.Sample()
	t.sim.Step()
}

// Run advances n cycles, sampling each.
func (t *Tracer) Run(n int) {
	for i := 0; i < n; i++ {
		t.Step()
	}
}

// Rows returns the recorded samples (one slice per cycle, one value per
// watched node, in NewTracer order).
func (t *Tracer) Rows() [][]uint64 { return t.rows }

// WriteText renders the trace as a table, one row per cycle.
func (t *Tracer) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%-6s", "cycle")
	for _, n := range t.nodes {
		fmt.Fprintf(w, " %-14s", n.label)
	}
	fmt.Fprintln(w)
	for c, row := range t.rows {
		fmt.Fprintf(w, "%-6d", c)
		for _, v := range row {
			fmt.Fprintf(w, " %-14x", v)
		}
		fmt.Fprintln(w)
	}
}

// Changes returns, for each watched node, the number of cycles its value
// differed from the previous sample — the activity measure behind loop
// characterization heuristics.
func (t *Tracer) Changes() []int {
	out := make([]int, len(t.nodes))
	for c := 1; c < len(t.rows); c++ {
		for i := range t.nodes {
			if t.rows[c][i] != t.rows[c-1][i] {
				out[i]++
			}
		}
	}
	return out
}
