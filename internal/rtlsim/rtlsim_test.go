package rtlsim

import (
	"strings"
	"testing"

	"seqavf/internal/netlist"
)

func counterSim(t *testing.T) *Sim {
	t.Helper()
	d := netlist.NewDesign("cnt")
	m := d.AddModule("m")
	b := netlist.Build(m)
	one := b.Const("one", 8, 1)
	b.Seq("count", 8, "next")
	b.C("next", 8, netlist.OpAdd, "count", one)
	b.Out("q", 8, "count")
	d.AddFub("F", "m")
	return mustSim(t, d, nil)
}

func mustSim(t *testing.T, d *netlist.Design, structs map[string]StructSim) *Sim {
	t.Helper()
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	fd, err := netlist.Flatten(d)
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	s, err := New(fd, structs)
	if err != nil {
		t.Fatalf("rtlsim.New: %v", err)
	}
	return s
}

func val(t *testing.T, s *Sim, fub, node string) uint64 {
	t.Helper()
	v, err := s.Value(fub, node)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCounterCounts(t *testing.T) {
	s := counterSim(t)
	for want := uint64(0); want < 10; want++ {
		if got := val(t, s, "F", "count"); got != want {
			t.Fatalf("cycle %d: count = %d, want %d", s.Cycle(), got, want)
		}
		s.Step()
	}
	if s.Cycle() != 10 {
		t.Fatalf("cycle = %d", s.Cycle())
	}
}

func TestCounterWraps(t *testing.T) {
	s := counterSim(t)
	for i := 0; i < 256; i++ {
		s.Step()
	}
	if got := val(t, s, "F", "count"); got != 0 {
		t.Fatalf("8-bit counter should wrap: %d", got)
	}
}

func TestCombOps(t *testing.T) {
	d := netlist.NewDesign("ops")
	m := d.AddModule("m")
	b := netlist.Build(m)
	a := b.Const("a", 8, 0b1100)
	c := b.Const("c", 8, 0b1010)
	sel := b.Const("s1", 1, 1)
	b.C("and", 8, netlist.OpAnd, a, c)
	b.C("or", 8, netlist.OpOr, a, c)
	b.C("xor", 8, netlist.OpXor, a, c)
	b.C("not", 8, netlist.OpNot, a)
	b.C("add", 8, netlist.OpAdd, a, c)
	b.C("sub", 8, netlist.OpSub, a, c)
	b.C("mul", 8, netlist.OpMul, a, c)
	b.Mux("mux", 8, sel, a, c)
	b.C("eq", 1, netlist.OpEq, a, a)
	b.C("ne", 1, netlist.OpNe, a, c)
	b.C("lt", 1, netlist.OpLt, c, a)
	b.C("redor", 1, netlist.OpRedOr, a)
	b.C("redand", 1, netlist.OpRedAnd, a)
	b.C("redxor", 1, netlist.OpRedXor, a)
	b.Select("sel2", 2, a, 2)
	b.C("cat", 16, netlist.OpConcat, a, c)
	b.CP("shlk", 8, netlist.OpShlK, 2, a)
	b.CP("shrk", 8, netlist.OpShrK, 1, a)
	b.C("dec", 16, netlist.OpDecode, "sel2")
	b.Out("o", 8, "and")
	d.AddFub("F", "m")
	s := mustSim(t, d, nil)

	cases := map[string]uint64{
		"and": 0b1000, "or": 0b1110, "xor": 0b0110,
		"not": 0xF3, "add": 22, "sub": 2, "mul": 120,
		"mux": 0b1010, "eq": 1, "ne": 1, "lt": 1,
		"redor": 1, "redand": 0, "redxor": 0,
		"sel2": 0b11, "cat": 0b1010_00001100, "shlk": 0b110000, "shrk": 0b110,
		"dec": 1 << 3,
	}
	for node, want := range cases {
		if got := val(t, s, "F", node); got != want {
			t.Errorf("%s = %#b, want %#b", node, got, want)
		}
	}
}

func TestEnabledSeqHolds(t *testing.T) {
	d := netlist.NewDesign("en")
	m := d.AddModule("m")
	b := netlist.Build(m)
	en := b.In("en", 1)
	din := b.In("din", 8)
	b.SeqEn("r", 8, din, en)
	b.Out("q", 8, "r")
	d.AddFub("F", "m")
	s := mustSim(t, d, nil)

	if err := s.SetInput("F", "din", 0x5A); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInput("F", "en", 0); err != nil {
		t.Fatal(err)
	}
	s.Settle()
	s.Step()
	if got := val(t, s, "F", "r"); got != 0 {
		t.Fatalf("disabled latch captured: %#x", got)
	}
	if err := s.SetInput("F", "en", 1); err != nil {
		t.Fatal(err)
	}
	s.Settle()
	s.Step()
	if got := val(t, s, "F", "r"); got != 0x5A {
		t.Fatalf("enabled latch missed: %#x", got)
	}
}

func structDesign(t *testing.T) (*netlist.Design, *RegArray) {
	t.Helper()
	d := netlist.NewDesign("rf")
	d.AddStructure("RF", 16, 32)
	m := d.AddModule("m")
	b := netlist.Build(m)
	addr := b.In("addr", 4)
	wdata := b.In("wdata", 32)
	wen := b.In("wen", 1)
	rd := b.SRead("rf_rd", 32, "RF", "rd0", addr)
	b.SWrite("rf_wr", "RF", "wr0", wdata, addr, wen)
	b.Out("q", 32, rd)
	d.AddFub("F", "m")
	return d, NewRegArray(16, 32, true)
}

func TestStructReadWrite(t *testing.T) {
	d, rf := structDesign(t)
	s := mustSim(t, d, map[string]StructSim{"RF": rf})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.SetInput("F", "addr", 5))
	must(s.SetInput("F", "wdata", 1234))
	must(s.SetInput("F", "wen", 1))
	s.Settle()
	s.Step() // write commits at the edge
	must(s.SetInput("F", "wen", 0))
	s.Settle()
	if got := val(t, s, "F", "q"); got != 1234 {
		t.Fatalf("readback = %d", got)
	}
	// Zero-entry pinning.
	must(s.SetInput("F", "addr", 0))
	must(s.SetInput("F", "wdata", 99))
	must(s.SetInput("F", "wen", 1))
	s.Settle()
	s.Step()
	s.Settle()
	if got := val(t, s, "F", "q"); got != 0 {
		t.Fatalf("r0 = %d, want 0", got)
	}
	// Write with enable low is suppressed.
	must(s.SetInput("F", "addr", 5))
	must(s.SetInput("F", "wdata", 777))
	must(s.SetInput("F", "wen", 0))
	s.Settle()
	s.Step()
	if got := val(t, s, "F", "q"); got != 1234 {
		t.Fatalf("suppressed write changed state: %d", got)
	}
}

func TestMissingStructModel(t *testing.T) {
	d, _ := structDesign(t)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	fd, _ := netlist.Flatten(d)
	if _, err := New(fd, nil); err == nil {
		t.Fatal("missing behavioral model accepted")
	}
}

func TestFlipBitAndClone(t *testing.T) {
	s := counterSim(t)
	for i := 0; i < 5; i++ {
		s.Step()
	}
	g := s.Clone()
	if s.Hash() != g.Hash() {
		t.Fatal("clone hash differs")
	}
	if err := s.FlipBit("F", "count", 2); err != nil {
		t.Fatal(err)
	}
	if s.Hash() == g.Hash() {
		t.Fatal("flip did not change hash")
	}
	if got, want := val(t, s, "F", "count"), uint64(5^4); got != want {
		t.Fatalf("count after flip = %d, want %d", got, want)
	}
	// The clone is unaffected and both evolve independently.
	g.Step()
	if got := val(t, g, "F", "count"); got != 6 {
		t.Fatalf("golden clone diverged: %d", got)
	}
}

func TestFlipBitValidation(t *testing.T) {
	s := counterSim(t)
	if err := s.FlipBit("F", "next", 0); err == nil {
		t.Fatal("flipping a comb node accepted")
	}
	if err := s.FlipBit("F", "count", 8); err == nil {
		t.Fatal("out-of-range bit accepted")
	}
	if err := s.FlipBit("X", "count", 0); err == nil {
		t.Fatal("unknown fub accepted")
	}
}

func TestSeqSites(t *testing.T) {
	s := counterSim(t)
	sites := s.SeqSites()
	if len(sites) != 1 || sites[0].Node != "count" || sites[0].Width != 8 {
		t.Fatalf("sites = %+v", sites)
	}
}

func TestCrossFubDataflow(t *testing.T) {
	d := netlist.NewDesign("x")
	ma := d.AddModule("ma")
	ba := netlist.Build(ma)
	one := ba.Const("one", 8, 3)
	ba.Seq("r", 8, "nx")
	ba.C("nx", 8, netlist.OpAdd, "r", one)
	ba.Out("o", 8, "r")
	mb := d.AddModule("mb")
	bb := netlist.Build(mb)
	in := bb.In("i", 8)
	bb.Out("o2", 8, bb.C("dbl", 8, netlist.OpAdd, in, in))
	d.AddFub("A", "ma")
	d.AddFub("B", "mb")
	d.ConnectPorts("A", "o", "B", "i")
	s := mustSim(t, d, nil)
	s.Step()
	s.Step() // r = 6
	if got := val(t, s, "B", "o2"); got != 12 {
		t.Fatalf("cross-FUB value = %d, want 12", got)
	}
}

func TestSparseMemAndROM(t *testing.T) {
	mem := NewSparseMem(32)
	mem.Init(7, 42)
	if got := mem.Read("ld", []uint64{7}); got != 42 {
		t.Fatalf("mem read = %d", got)
	}
	mem.Write("st", 100, []uint64{9})
	if got := mem.Read("ld", []uint64{9}); got != 0 {
		t.Fatal("write visible before Tick")
	}
	mem.Tick()
	if got := mem.Read("ld", []uint64{9}); got != 100 {
		t.Fatalf("post-tick read = %d", got)
	}
	c := mem.Clone()
	mem.Write("st", 1, []uint64{9})
	mem.Tick()
	if c.Read("ld", []uint64{9}) != 100 {
		t.Fatal("clone shares state")
	}

	rom := NewROM([]uint64{10, 20, 30})
	if rom.Read("fetch", []uint64{1}) != 20 {
		t.Fatal("rom read")
	}
	rom.Write("x", 99, []uint64{1})
	if rom.Read("fetch", []uint64{1}) != 20 {
		t.Fatal("rom should ignore writes")
	}
	if rom.Read("fetch", []uint64{5}) != 0 {
		t.Fatal("rom OOB should read 0")
	}
}

func TestHashIgnoresZeroMemWords(t *testing.T) {
	a := NewSparseMem(32)
	b := NewSparseMem(32)
	a.Init(5, 0) // explicit zero
	if a.Hash() != b.Hash() {
		t.Fatal("explicit zero changed hash")
	}
}

func TestTracer(t *testing.T) {
	s := counterSim(t)
	tr, err := NewTracer(s, "F/count", "F/next")
	if err != nil {
		t.Fatal(err)
	}
	tr.Run(5)
	rows := tr.Rows()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for c, row := range rows {
		if row[0] != uint64(c) || row[1] != uint64(c+1) {
			t.Fatalf("cycle %d trace = %v", c, row)
		}
	}
	changes := tr.Changes()
	if changes[0] != 4 || changes[1] != 4 {
		t.Fatalf("changes = %v", changes)
	}
	var sb strings.Builder
	tr.WriteText(&sb)
	if !strings.Contains(sb.String(), "F/count") {
		t.Fatal("render missing header")
	}
	if _, err := NewTracer(s, "nofub"); err == nil {
		t.Fatal("bad ref accepted")
	}
	if _, err := NewTracer(s, "F/ghost"); err == nil {
		t.Fatal("unknown node accepted")
	}
}
