// Package rtlsim is a cycle-accurate simulator for flattened netlists —
// the "slow, detailed RTL simulation" side of the paper's trade-off, used
// by the statistical fault injection baseline (internal/sfi) and to
// validate the hand-built netlist core against the architectural model.
//
// Word-level combinational nodes are levelized once and evaluated in
// dependency order every cycle; sequential nodes latch at the cycle edge;
// structure ports delegate to behavioral models (register files, RAMs,
// ROMs) registered per structure — mirroring how real RTL instantiates
// array macros that are modeled behaviorally.
package rtlsim

import (
	"fmt"

	"seqavf/internal/netlist"
)

// StructSim is a behavioral model backing one netlist structure.
type StructSim interface {
	// Read services a read port: addrs are the port's address/enable
	// input values in declaration order.
	Read(port string, addrs []uint64) uint64
	// Write captures a write port at the cycle edge.
	Write(port string, data uint64, addrs []uint64)
	// Tick advances internal state at the end of a cycle.
	Tick()
	// Clone returns a deep copy (for golden/fault paired simulation).
	Clone() StructSim
	// Hash folds the structure state into a comparison hash.
	Hash() uint64
}

type nodeKind uint8

const (
	nkInput nodeKind = iota
	nkOutput
	nkSeq
	nkComb
	nkConst
	nkSRead
	nkSWrite
)

type simNode struct {
	kind   nodeKind
	node   *netlist.Node
	fub    int32
	mask   uint64
	inputs []int32 // global node indices
	// driver is the cross-FUB source for driven input ports (-1 none).
	driver int32
	strct  int32 // index into Sim.structs for struct ports
}

// Sim is an instantiated simulation of a flattened design.
type Sim struct {
	fd    *netlist.FlatDesign
	nodes []simNode
	// order lists nodes needing per-cycle evaluation, in dependency order.
	order []int32
	// seqs/swrites are updated at the cycle edge.
	seqs    []int32
	swrites []int32

	structNames []string
	structs     []StructSim

	vals  []uint64 // current settled values (seq nodes: state)
	cycle uint64
	// evals counts combinational node evaluations since construction —
	// the simulator's unit of work for telemetry (Clone inherits the
	// running total; see Evals).
	evals uint64

	index map[string]int32 // "fub/node" -> index
}

// New builds a simulator for fd. structs supplies a behavioral model per
// structure name; every structure referenced by a port must be present.
func New(fd *netlist.FlatDesign, structs map[string]StructSim) (*Sim, error) {
	s := &Sim{fd: fd, index: make(map[string]int32)}
	// Stable structure table.
	for _, name := range sortedKeys(structs) {
		s.structNames = append(s.structNames, name)
		s.structs = append(s.structs, structs[name])
	}
	structIdx := make(map[string]int32)
	for i, n := range s.structNames {
		structIdx[n] = int32(i)
	}

	// Create nodes.
	for fi, fub := range fd.Fubs {
		for _, n := range fub.Nodes {
			idx := int32(len(s.nodes))
			s.index[fub.Name+"/"+n.Name] = idx
			sn := simNode{node: n, fub: int32(fi), mask: widthMask(n.Width), driver: -1, strct: -1}
			switch n.Kind {
			case netlist.KindInput:
				sn.kind = nkInput
			case netlist.KindOutput:
				sn.kind = nkOutput
			case netlist.KindSeq:
				sn.kind = nkSeq
			case netlist.KindComb:
				sn.kind = nkComb
			case netlist.KindConst:
				sn.kind = nkConst
			case netlist.KindStructRead:
				sn.kind = nkSRead
				si, ok := structIdx[n.Struct]
				if !ok {
					return nil, fmt.Errorf("rtlsim: no behavioral model for structure %q", n.Struct)
				}
				sn.strct = si
			case netlist.KindStructWrite:
				sn.kind = nkSWrite
				si, ok := structIdx[n.Struct]
				if !ok {
					return nil, fmt.Errorf("rtlsim: no behavioral model for structure %q", n.Struct)
				}
				sn.strct = si
			default:
				return nil, fmt.Errorf("rtlsim: unsupported node kind %v", n.Kind)
			}
			s.nodes = append(s.nodes, sn)
		}
	}
	// Resolve inputs.
	for i := range s.nodes {
		sn := &s.nodes[i]
		fub := fd.Fubs[sn.fub]
		sn.inputs = make([]int32, len(sn.node.Inputs))
		for j, ref := range sn.node.Inputs {
			idx, ok := s.index[fub.Name+"/"+ref]
			if !ok {
				return nil, fmt.Errorf("rtlsim: %s/%s references unknown %q", fub.Name, sn.node.Name, ref)
			}
			sn.inputs[j] = idx
		}
		if sn.kind == nkSeq {
			s.seqs = append(s.seqs, int32(i))
		}
		if sn.kind == nkSWrite {
			s.swrites = append(s.swrites, int32(i))
		}
	}
	// Cross-FUB drivers.
	for _, c := range fd.Connects {
		from, ok1 := s.index[c.From.Fub+"/"+c.From.Port]
		to, ok2 := s.index[c.To.Fub+"/"+c.To.Port]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("rtlsim: bad connect %v -> %v", c.From, c.To)
		}
		s.nodes[to].driver = from
	}
	if err := s.levelize(); err != nil {
		return nil, err
	}
	s.vals = make([]uint64, len(s.nodes))
	s.Reset()
	return s, nil
}

func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

// levelize orders per-cycle evaluated nodes (everything except seq/const,
// whose values are state) by combinational dependency.
func (s *Sim) levelize() error {
	n := len(s.nodes)
	evaluated := func(i int32) bool {
		k := s.nodes[i].kind
		return k == nkComb || k == nkOutput || k == nkInput || k == nkSRead || k == nkSWrite
	}
	indeg := make([]int32, n)
	succs := make([][]int32, n)
	addDep := func(from, to int32) {
		if evaluated(from) {
			succs[from] = append(succs[from], to)
			indeg[to]++
		}
	}
	for i := 0; i < n; i++ {
		sn := &s.nodes[i]
		if !evaluated(int32(i)) {
			continue
		}
		for _, in := range sn.inputs {
			addDep(in, int32(i))
		}
		if sn.kind == nkInput && sn.driver >= 0 {
			addDep(sn.driver, int32(i))
		}
	}
	var queue []int32
	for i := 0; i < n; i++ {
		if evaluated(int32(i)) && indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		s.order = append(s.order, v)
		for _, w := range succs[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	want := 0
	for i := 0; i < n; i++ {
		if evaluated(int32(i)) {
			want++
		}
	}
	if len(s.order) != want {
		return fmt.Errorf("rtlsim: combinational cycle (%d of %d ordered)", len(s.order), want)
	}
	return nil
}

// Reset restores registers to their init values and cycle to 0. Structure
// models are NOT reset (recreate the Sim for a fully fresh machine).
func (s *Sim) Reset() {
	for _, i := range s.seqs {
		s.vals[i] = s.nodes[i].node.Init & s.nodes[i].mask
	}
	for i := range s.nodes {
		if s.nodes[i].kind == nkConst {
			s.vals[i] = uint64(s.nodes[i].node.Param) & s.nodes[i].mask
		}
	}
	s.cycle = 0
	s.settle()
}

// Cycle returns the current cycle count.
func (s *Sim) Cycle() uint64 { return s.cycle }

// Evals returns the cumulative combinational node evaluations performed
// by this Sim instance (every settle evaluates NumEvalNodes nodes). A
// Clone starts from the parent's running total, so campaign-level tallies
// should derive work from cycles x NumEvalNodes instead of summing clones.
func (s *Sim) Evals() uint64 { return s.evals }

// NumEvalNodes returns the number of nodes evaluated per settled cycle —
// the per-cycle work factor telemetry multiplies simulated cycles by.
func (s *Sim) NumEvalNodes() int { return len(s.order) }

// settle evaluates all combinational logic against current state.
func (s *Sim) settle() {
	s.evals += uint64(len(s.order))
	for _, i := range s.order {
		sn := &s.nodes[i]
		switch sn.kind {
		case nkInput:
			if sn.driver >= 0 {
				s.vals[i] = s.vals[sn.driver]
			}
			// Undriven inputs keep their externally poked value.
		case nkOutput:
			s.vals[i] = s.vals[sn.inputs[0]]
		case nkComb:
			s.vals[i] = s.evalComb(sn)
		case nkSRead:
			addrs := make([]uint64, len(sn.inputs))
			for j, in := range sn.inputs {
				addrs[j] = s.vals[in]
			}
			s.vals[i] = s.structs[sn.strct].Read(sn.node.Port, addrs) & sn.mask
		case nkSWrite:
			// Captured at the edge; nothing to settle.
		}
	}
}

func (s *Sim) evalComb(sn *simNode) uint64 {
	in := func(j int) uint64 { return s.vals[sn.inputs[j]] }
	var v uint64
	switch sn.node.Op {
	case netlist.OpPass:
		v = in(0)
	case netlist.OpNot:
		v = ^in(0)
	case netlist.OpAnd:
		v = in(0)
		for j := 1; j < len(sn.inputs); j++ {
			v &= in(j)
		}
	case netlist.OpOr:
		v = in(0)
		for j := 1; j < len(sn.inputs); j++ {
			v |= in(j)
		}
	case netlist.OpXor:
		v = in(0)
		for j := 1; j < len(sn.inputs); j++ {
			v ^= in(j)
		}
	case netlist.OpNand:
		v = ^(in(0) & in(1))
	case netlist.OpNor:
		v = ^(in(0) | in(1))
	case netlist.OpXnor:
		v = ^(in(0) ^ in(1))
	case netlist.OpMux:
		if in(0)&1 == 1 {
			v = in(2)
		} else {
			v = in(1)
		}
	case netlist.OpAdd:
		v = in(0) + in(1)
	case netlist.OpSub:
		v = in(0) - in(1)
	case netlist.OpMul:
		v = in(0) * in(1)
	case netlist.OpShl:
		sh := in(1) & 63
		v = in(0) << sh
	case netlist.OpShr:
		sh := in(1) & 63
		v = (in(0) & sn.mask) >> sh
	case netlist.OpEq:
		if in(0)&s.nodes[sn.inputs[0]].mask == in(1)&s.nodes[sn.inputs[1]].mask {
			v = 1
		}
	case netlist.OpNe:
		if in(0)&s.nodes[sn.inputs[0]].mask != in(1)&s.nodes[sn.inputs[1]].mask {
			v = 1
		}
	case netlist.OpLt:
		if in(0)&s.nodes[sn.inputs[0]].mask < in(1)&s.nodes[sn.inputs[1]].mask {
			v = 1
		}
	case netlist.OpRedAnd:
		if in(0)&s.nodes[sn.inputs[0]].mask == s.nodes[sn.inputs[0]].mask {
			v = 1
		}
	case netlist.OpRedOr:
		if in(0)&s.nodes[sn.inputs[0]].mask != 0 {
			v = 1
		}
	case netlist.OpRedXor:
		x := in(0) & s.nodes[sn.inputs[0]].mask
		x ^= x >> 32
		x ^= x >> 16
		x ^= x >> 8
		x ^= x >> 4
		x ^= x >> 2
		x ^= x >> 1
		v = x & 1
	case netlist.OpSelect:
		v = in(0) >> uint(sn.node.Param)
	case netlist.OpConcat:
		off := uint(0)
		for j := 0; j < len(sn.inputs); j++ {
			w := uint(s.nodes[sn.inputs[j]].node.Width)
			v |= (in(j) & widthMask(int(w))) << off
			off += w
		}
	case netlist.OpShlK:
		v = in(0) << uint(sn.node.Param)
	case netlist.OpShrK:
		v = (in(0) & sn.mask) >> uint(sn.node.Param)
	case netlist.OpDecode:
		idx := in(0) & s.nodes[sn.inputs[0]].mask
		if idx < 64 {
			v = 1 << idx
		}
	}
	return v & sn.mask
}

// Step advances one clock cycle: capture sequential next-state and
// structure writes against the settled logic, commit, then re-settle.
func (s *Sim) Step() {
	// Capture.
	next := make([]uint64, len(s.seqs))
	for k, i := range s.seqs {
		sn := &s.nodes[i]
		d := s.vals[sn.inputs[0]] & sn.mask
		if sn.node.HasEnable() && s.vals[sn.inputs[1]]&1 == 0 {
			d = s.vals[i] // hold
		}
		next[k] = d
	}
	for _, i := range s.swrites {
		sn := &s.nodes[i]
		data := s.vals[sn.inputs[0]]
		addrs := make([]uint64, len(sn.inputs)-1)
		for j := 1; j < len(sn.inputs); j++ {
			addrs[j-1] = s.vals[sn.inputs[j]]
		}
		s.structs[sn.strct].Write(sn.node.Port, data, addrs)
	}
	// Commit.
	for k, i := range s.seqs {
		s.vals[i] = next[k]
	}
	for _, st := range s.structs {
		st.Tick()
	}
	s.cycle++
	s.settle()
}

// Value returns the settled value of fub/node.
func (s *Sim) Value(fub, node string) (uint64, error) {
	i, ok := s.index[fub+"/"+node]
	if !ok {
		return 0, fmt.Errorf("rtlsim: unknown node %s/%s", fub, node)
	}
	return s.vals[i], nil
}

// SetInput pokes an undriven FUB input port (external stimulus). The new
// value takes effect at the next settle (Step or Settle).
func (s *Sim) SetInput(fub, port string, v uint64) error {
	i, ok := s.index[fub+"/"+port]
	if !ok || s.nodes[i].kind != nkInput {
		return fmt.Errorf("rtlsim: %s/%s is not an input port", fub, port)
	}
	if s.nodes[i].driver >= 0 {
		return fmt.Errorf("rtlsim: input %s/%s is driven internally", fub, port)
	}
	s.vals[i] = v & s.nodes[i].mask
	return nil
}

// Settle re-evaluates combinational logic (after SetInput or FlipBit).
func (s *Sim) Settle() { s.settle() }

// SeqSite names one injectable sequential bit.
type SeqSite struct {
	Fub, Node string
	Width     int
}

// SeqSites lists every sequential node (the SFI injection universe).
func (s *Sim) SeqSites() []SeqSite {
	var out []SeqSite
	for i := range s.nodes {
		if s.nodes[i].kind == nkSeq {
			out = append(out, SeqSite{
				Fub:   s.fd.Fubs[s.nodes[i].fub].Name,
				Node:  s.nodes[i].node.Name,
				Width: s.nodes[i].node.Width,
			})
		}
	}
	return out
}

// FlipBit injects a single-event upset into bit of a sequential node and
// re-settles downstream logic.
func (s *Sim) FlipBit(fub, node string, bit int) error {
	i, ok := s.index[fub+"/"+node]
	if !ok {
		return fmt.Errorf("rtlsim: unknown node %s/%s", fub, node)
	}
	if s.nodes[i].kind != nkSeq {
		return fmt.Errorf("rtlsim: %s/%s is not sequential", fub, node)
	}
	if bit < 0 || bit >= s.nodes[i].node.Width {
		return fmt.Errorf("rtlsim: bit %d out of range for %s/%s", bit, fub, node)
	}
	s.vals[i] ^= 1 << uint(bit)
	s.settle()
	return nil
}

// Clone deep-copies the machine (registers, cycle, structures).
func (s *Sim) Clone() *Sim {
	c := *s
	c.vals = append([]uint64(nil), s.vals...)
	c.structs = make([]StructSim, len(s.structs))
	for i, st := range s.structs {
		c.structs[i] = st.Clone()
	}
	return &c
}

// Hash folds all architectural state (registers + structures) into a
// comparison hash, used by SFI to detect resident-but-unpropagated faults.
func (s *Sim) Hash() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, i := range s.seqs {
		mix(s.vals[i])
	}
	for _, st := range s.structs {
		mix(st.Hash())
	}
	return h
}

func sortedKeys(m map[string]StructSim) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
