package ace

// Quantized AVF (Biswas et al., SELSE 2009 — the paper's ref [20]):
// instead of one scalar AVF per structure, vulnerability is tracked over
// small windows of time, exposing program-phase variation that a full-run
// average hides. The ACE model family the paper builds on includes this
// analysis; here it quantizes the same lifetime events the Structure
// tracker records.
//
// A QAVF tracker divides time into fixed windows and attributes each ACE
// residency interval to the windows it overlaps.

// QAVF accumulates windowed ACE bit-cycles for one structure.
type QAVF struct {
	Window uint64 // cycles per window
	bits   float64
	// aceBitCycles[w] accumulates ACE bit-cycles attributed to window w.
	aceBitCycles []float64
}

// NewQAVF creates a tracker for a structure of totalBits with the given
// window size (cycles).
func NewQAVF(totalBits int, window uint64) *QAVF {
	if window == 0 {
		window = 1
	}
	return &QAVF{Window: window, bits: float64(totalBits)}
}

// AddInterval attributes an ACE residency of width bits spanning
// [from, to) cycles across the windows it overlaps.
func (q *QAVF) AddInterval(from, to uint64, width int) {
	if to <= from {
		return
	}
	lastW := int((to - 1) / q.Window)
	for len(q.aceBitCycles) <= lastW {
		q.aceBitCycles = append(q.aceBitCycles, 0)
	}
	for w := int(from / q.Window); w <= lastW; w++ {
		lo := uint64(w) * q.Window
		hi := lo + q.Window
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		q.aceBitCycles[w] += float64(width) * float64(hi-lo)
	}
}

// Series returns the per-window AVF values up to endCycle.
func (q *QAVF) Series(endCycle uint64) []float64 {
	if q.bits == 0 || endCycle == 0 {
		return nil
	}
	nw := int((endCycle + q.Window - 1) / q.Window)
	out := make([]float64, nw)
	for w := 0; w < nw; w++ {
		span := q.Window
		if uint64(w+1)*q.Window > endCycle {
			span = endCycle - uint64(w)*q.Window
		}
		var v float64
		if w < len(q.aceBitCycles) {
			v = q.aceBitCycles[w] / (q.bits * float64(span))
		}
		if v > 1 {
			v = 1
		}
		out[w] = v
	}
	return out
}

// Peak returns the maximum windowed AVF — the quantity QAVF exists to
// expose (worst-phase vulnerability exceeding the full-run average).
func (q *QAVF) Peak(endCycle uint64) float64 {
	peak := 0.0
	for _, v := range q.Series(endCycle) {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Quantize attaches a QAVF tracker to a Structure: lifetime closures are
// mirrored into the windowed accumulator. Call before any events are
// recorded; windows receive the same write→last-ACE-read intervals the
// scalar AVF integrates (the unknown tail is excluded — QAVF reports
// known-ACE phase behavior).
func (s *Structure) Quantize(window uint64) *QAVF {
	q := NewQAVF(s.Bits(), window)
	s.qavf = q
	return q
}
