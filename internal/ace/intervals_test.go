package ace

import (
	"math"
	"testing"
)

// buildQuantizedModel runs a two-phase workload on a quantized model:
// phase 1 (cycles 0..500) is hot, phase 2 (500..1000) idle.
func buildQuantizedModel(t *testing.T) (*Model, *Structure) {
	t.Helper()
	m := NewModel()
	m.Quantize(100)
	s := m.AddStructure("Q", 4, 8)
	for c := uint64(0); c < 500; c += 10 {
		s.Write("wr", int(c/10)%4, c, true)
		s.Read("rd", int(c/10)%4, c+9, true)
	}
	for e := 0; e < 4; e++ {
		s.Invalidate(e, 500)
	}
	return m, s
}

func TestFinishIntervalsRequiresQuantize(t *testing.T) {
	m := NewModel()
	m.AddStructure("S", 1, 8)
	if _, _, err := m.FinishIntervals(100); err == nil {
		t.Fatal("FinishIntervals without Quantize succeeded")
	}
	m.Quantize(10)
	if _, _, err := m.FinishIntervals(0); err == nil {
		t.Fatal("FinishIntervals with zero cycles succeeded")
	}
}

func TestFinishIntervalsWindowGeometry(t *testing.T) {
	m, _ := buildQuantizedModel(t)
	whole, ir, err := m.FinishIntervals(950) // ragged final window
	if err != nil {
		t.Fatal(err)
	}
	if whole == nil || whole.Cycles != 950 {
		t.Fatalf("whole report cycles = %+v", whole)
	}
	if ir.Window != 100 || ir.Cycles != 950 {
		t.Fatalf("interval header = %+v", ir)
	}
	if len(ir.Windows) != 10 {
		t.Fatalf("window count = %d, want 10", len(ir.Windows))
	}
	for i, w := range ir.Windows {
		if w.Index != i {
			t.Fatalf("window %d has index %d", i, w.Index)
		}
		wantStart := uint64(i) * 100
		wantEnd := wantStart + 100
		if wantEnd > 950 {
			wantEnd = 950
		}
		if w.Start != wantStart || w.End != wantEnd {
			t.Fatalf("window %d span [%d,%d), want [%d,%d)", i, w.Start, w.End, wantStart, wantEnd)
		}
		if w.Report.Cycles != w.End-w.Start {
			t.Fatalf("window %d report cycles %d != span", i, w.Report.Cycles)
		}
	}
}

func TestIntervalPortPAVFIntegratesToWholeRun(t *testing.T) {
	m, _ := buildQuantizedModel(t)
	whole, ir, err := m.FinishIntervals(1000)
	if err != nil {
		t.Fatal(err)
	}
	// The time-weighted mean of window pAVFs must equal the whole-run
	// pAVF: both count the same ACE events over the same total cycles.
	for _, key := range []string{"Q.rd", "Q.wr"} {
		var sum float64
		for _, w := range ir.Windows {
			span := float64(w.Report.Cycles)
			v, ok := w.Report.ReadPorts[key]
			if !ok {
				v, ok = w.Report.WritePorts[key]
			}
			if !ok {
				t.Fatalf("window %d lacks port %s", w.Index, key)
			}
			sum += v * span
		}
		got := sum / float64(ir.Cycles)
		want, ok := whole.ReadPorts[key]
		if !ok {
			want = whole.WritePorts[key]
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("port %s: time-weighted mean %v != whole-run %v", key, got, want)
		}
	}
	// Phase structure: the hot half has traffic, the idle half none.
	if v := ir.Windows[2].Report.ReadPorts["Q.rd"]; v == 0 {
		t.Fatal("hot window has zero read pAVF")
	}
	if v := ir.Windows[8].Report.ReadPorts["Q.rd"]; v != 0 {
		t.Fatalf("idle window read pAVF = %v, want 0", v)
	}
}

func TestIntervalStructAVFMatchesSeries(t *testing.T) {
	m, s := buildQuantizedModel(t)
	_, ir, err := m.FinishIntervals(1000)
	if err != nil {
		t.Fatal(err)
	}
	series := s.qavf.Series(1000)
	for _, w := range ir.Windows {
		want := 0.0
		if w.Index < len(series) {
			want = series[w.Index]
		}
		if got := w.Report.StructAVF["Q"]; got != want {
			t.Fatalf("window %d struct AVF %v != series %v", w.Index, got, want)
		}
		if w.Report.StructBits["Q"] != s.Bits() {
			t.Fatalf("window %d bits = %d", w.Index, w.Report.StructBits["Q"])
		}
	}
	// Hot windows vulnerable, idle windows not.
	if ir.Windows[2].Report.StructAVF["Q"] == 0 {
		t.Fatal("hot window struct AVF is zero")
	}
	if ir.Windows[8].Report.StructAVF["Q"] != 0 {
		t.Fatal("idle window struct AVF is non-zero")
	}
}

func TestLateAddStructureIsQuantized(t *testing.T) {
	m := NewModel()
	m.Quantize(50)
	s := m.AddStructure("Late", 1, 4)
	s.Write("wr", 0, 10, true)
	s.Read("rd", 0, 40, true)
	s.Invalidate(0, 60)
	_, ir, err := m.FinishIntervals(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ir.Windows) != 2 {
		t.Fatalf("window count = %d", len(ir.Windows))
	}
	if ir.Windows[0].Report.StructAVF["Late"] == 0 {
		t.Fatal("late-added structure was not quantized: window AVF is zero")
	}
	if ir.Windows[0].Report.ReadPorts["Late.rd"] == 0 {
		t.Fatal("late-added structure has no windowed port counts")
	}
}

func TestIntervalHD1CarriesWholeRunAVF(t *testing.T) {
	m := NewModel()
	m.Quantize(100)
	s := m.AddStructure("S", 1, 8)
	s.Write("wr", 0, 5, true)
	s.Read("rd", 0, 50, true)
	h := m.AddHD1("TLB", 16, 20)
	h.Lookup(0x1234, true)
	h.Lookup(0x1235, true)
	whole, ir, err := m.FinishIntervals(300)
	if err != nil {
		t.Fatal(err)
	}
	want := whole.StructAVF["TLB"]
	for _, w := range ir.Windows {
		if got := w.Report.StructAVF["TLB"]; got != want {
			t.Fatalf("window %d HD1 AVF %v != whole-run %v", w.Index, got, want)
		}
	}
}

func TestWindowPAVFBounds(t *testing.T) {
	p := &Port{Name: "x", Dir: DirRead}
	if p.WindowPAVF(0, 100) != 0 {
		t.Fatal("empty port has non-zero window pAVF")
	}
	p.noteWindowACE(5, 10)
	p.noteWindowACE(7, 10)
	p.noteWindowACE(25, 10)
	if got := p.WindowPAVF(0, 10); math.Abs(got-0.2) > 1e-15 {
		t.Fatalf("window 0 pAVF = %v", got)
	}
	if got := p.WindowPAVF(1, 10); got != 0 {
		t.Fatalf("window 1 pAVF = %v", got)
	}
	if got := p.WindowPAVF(2, 1); got != 1 {
		t.Fatalf("capped window pAVF = %v, want 1", got)
	}
	if p.WindowPAVF(-1, 10) != 0 || p.WindowPAVF(99, 10) != 0 || p.WindowPAVF(0, 0) != 0 {
		t.Fatal("out-of-range window pAVF not zero")
	}
}
