// Package ace implements ACE lifetime analysis — the analytical AVF
// technique of Mukherjee et al. (MICRO 2003) that the paper's performance
// model uses to measure structure AVFs and the port AVFs SART consumes.
//
// A Structure tracks read/write events against its entries. Residency
// intervals that end in an ACE consumption count as ACE bit-cycles; data
// still resident when simulation ends counts as unknown (conservatively
// ACE, per Equation 3: "residence time of all ACE+unknown bits"). Port
// counters record the fraction of cycles each port moves ACE data —
// exactly the paper's pAVF_R and pAVF_W definitions:
//
//	pAVF_R = ACE reads from the structure / total simulated cycles
//	pAVF_W = ACE writes to the structure / total simulated cycles
//
// Structures may declare bit fields ("Bit Field Analysis", §5.1): each
// field is tracked separately so control entries whose fields are ACE
// under different conditions do not over-count.
//
// The companion HD1Tracker implements a simplified Hamming-distance-1
// analysis for address-based structures (Biswas et al., ISCA 2005).
package ace

import (
	"fmt"
	"sort"
)

// Dir is a port direction.
type Dir uint8

const (
	// DirRead ports drain data out of a structure.
	DirRead Dir = iota
	// DirWrite ports fill data into a structure.
	DirWrite
)

func (d Dir) String() string {
	if d == DirRead {
		return "read"
	}
	return "write"
}

// Field is one bit field of a structure entry.
type Field struct {
	Name  string
	Width int
}

// Port accumulates event counts for one structure port.
type Port struct {
	Name   string
	Dir    Dir
	Events uint64
	ACE    uint64

	// winACE[w] counts the ACE events that landed in time window w.
	// Populated only when the owning structure is quantized (see
	// Structure.Quantize); the whole-run counters above are always kept.
	winACE []uint64
}

// noteWindowACE attributes one ACE event at cycle to its window.
func (p *Port) noteWindowACE(cycle, window uint64) {
	w := int(cycle / window)
	for len(p.winACE) <= w {
		p.winACE = append(p.winACE, 0)
	}
	p.winACE[w]++
}

// WindowPAVF returns the port AVF of window w given the window's cycle
// span: ACE events attributed to the window over its length — the same
// rate definition as PAVF, restricted to one phase.
func (p *Port) WindowPAVF(w int, span uint64) float64 {
	if span == 0 || w < 0 || w >= len(p.winACE) {
		return 0
	}
	v := float64(p.winACE[w]) / float64(span)
	if v > 1 {
		v = 1
	}
	return v
}

// PAVF returns the port AVF over the given cycle count.
func (p *Port) PAVF(cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	v := float64(p.ACE) / float64(cycles)
	if v > 1 {
		v = 1
	}
	return v
}

// fieldState tracks the in-flight lifetime of one field of one entry.
type fieldState struct {
	valid       bool
	writeCycle  uint64
	lastACERead uint64
	hadACERead  bool
}

// Structure is one ACE-tracked storage structure.
type Structure struct {
	Name    string
	Entries int
	Fields  []Field

	ports map[string]*Port
	state [][]fieldState // [entry][field]

	aceBitCycles     float64
	unknownBitCycles float64
	finished         bool
	cycles           uint64

	// Little's-Law bookkeeping (§4 of the paper: "AVF can be computed as
	// the product of the average ACE latency and the average ACE
	// throughput"): completed ACE residencies and their total latency.
	aceResidencies  uint64
	aceLatencySum   float64
	aceWriteArrival uint64 // ACE writes observed (throughput numerator)

	// qavf optionally mirrors closed ACE residencies into time windows
	// (Quantized AVF; see Quantize).
	qavf *QAVF
}

// NewStructure creates a tracker. With no fields, a single "data" field of
// the given width is assumed.
func NewStructure(name string, entries, width int, fields ...Field) *Structure {
	if len(fields) == 0 {
		fields = []Field{{Name: "data", Width: width}}
	}
	s := &Structure{
		Name:    name,
		Entries: entries,
		Fields:  fields,
		ports:   make(map[string]*Port),
		state:   make([][]fieldState, entries),
	}
	for i := range s.state {
		s.state[i] = make([]fieldState, len(fields))
	}
	return s
}

// Width returns the total entry width (sum of field widths).
func (s *Structure) Width() int {
	w := 0
	for _, f := range s.Fields {
		w += f.Width
	}
	return w
}

// Bits returns total storage bits.
func (s *Structure) Bits() int { return s.Entries * s.Width() }

// DeclarePort registers a port ahead of use so it appears in reports even
// if no event ever hits it.
func (s *Structure) DeclarePort(name string, dir Dir) *Port {
	if p, ok := s.ports[name]; ok {
		return p
	}
	p := &Port{Name: name, Dir: dir}
	s.ports[name] = p
	return p
}

func (s *Structure) port(name string, dir Dir) *Port {
	p, ok := s.ports[name]
	if !ok {
		p = s.DeclarePort(name, dir)
	}
	return p
}

// Write records a whole-entry write through port at cycle; ace flags
// whether the written value is (potentially) required for architecturally
// correct execution.
func (s *Structure) Write(portName string, entry int, cycle uint64, ace bool) {
	aces := make([]bool, len(s.Fields))
	for i := range aces {
		aces[i] = ace
	}
	s.WriteFields(portName, entry, cycle, aces)
}

// WriteFields records a write with per-field ACEness (bit-field analysis).
func (s *Structure) WriteFields(portName string, entry int, cycle uint64, aceByField []bool) {
	if entry < 0 || entry >= s.Entries {
		panic(fmt.Sprintf("ace: %s entry %d out of range", s.Name, entry))
	}
	p := s.port(portName, DirWrite)
	p.Events++
	anyACE := false
	for fi := range s.Fields {
		ace := fi < len(aceByField) && aceByField[fi]
		anyACE = anyACE || ace
		st := &s.state[entry][fi]
		if st.valid {
			s.closeLifetime(st, fi)
		}
		*st = fieldState{valid: true, writeCycle: cycle}
		// A write of known-dead data starts an un-ACE lifetime; reads of
		// it will carry ace=false and contribute nothing.
		_ = ace
	}
	if anyACE {
		p.ACE++
		s.aceWriteArrival++
		if s.qavf != nil {
			p.noteWindowACE(cycle, s.qavf.Window)
		}
	}
}

// Read records a read of the whole entry through port at cycle; ace flags
// whether the consumer needs the value for correct execution.
func (s *Structure) Read(portName string, entry int, cycle uint64, ace bool) {
	fields := make([]bool, len(s.Fields))
	for i := range fields {
		fields[i] = ace
	}
	s.ReadFields(portName, entry, cycle, fields)
}

// ReadFields records a read with per-field ACE consumption.
func (s *Structure) ReadFields(portName string, entry int, cycle uint64, aceByField []bool) {
	if entry < 0 || entry >= s.Entries {
		panic(fmt.Sprintf("ace: %s entry %d out of range", s.Name, entry))
	}
	p := s.port(portName, DirRead)
	p.Events++
	anyACE := false
	for fi := range s.Fields {
		ace := fi < len(aceByField) && aceByField[fi]
		if !ace {
			continue
		}
		anyACE = true
		st := &s.state[entry][fi]
		if !st.valid {
			continue // read of never-written state: ignore
		}
		if cycle > st.lastACERead {
			st.lastACERead = cycle
		}
		st.hadACERead = true
	}
	if anyACE {
		p.ACE++
		if s.qavf != nil {
			p.noteWindowACE(cycle, s.qavf.Window)
		}
	}
}

// Invalidate ends all lifetimes of an entry (e.g. eviction, flush).
func (s *Structure) Invalidate(entry int, cycle uint64) {
	for fi := range s.Fields {
		st := &s.state[entry][fi]
		if st.valid {
			s.closeLifetime(st, fi)
			st.valid = false
		}
	}
	_ = cycle
}

// closeLifetime retires a completed residency: write→lastACERead is ACE
// when consumed; the tail (and unconsumed residencies) is un-ACE.
func (s *Structure) closeLifetime(st *fieldState, fi int) {
	if st.hadACERead && st.lastACERead > st.writeCycle {
		lat := float64(st.lastACERead - st.writeCycle)
		s.aceBitCycles += float64(s.Fields[fi].Width) * lat
		s.aceResidencies++
		s.aceLatencySum += lat
		if s.qavf != nil {
			s.qavf.AddInterval(st.writeCycle, st.lastACERead, s.Fields[fi].Width)
		}
	}
}

// LittleAVF estimates the structure AVF via Little's Law: the product of
// average ACE latency and ACE arrival rate, normalized by entry count.
// Array structures are latency-dominated (long residencies); ports are
// throughput-dominated — the asymmetry §4 builds on. The estimate covers
// the known-ACE component only (no unknown tail), so it lower-bounds
// AVF() and converges to it for fully drained steady-state runs.
func (s *Structure) LittleAVF() float64 {
	if !s.finished {
		panic("ace: LittleAVF before Finish")
	}
	if s.cycles == 0 || s.aceResidencies == 0 {
		return 0
	}
	avgLatency := s.aceLatencySum / float64(s.aceResidencies)
	throughput := float64(s.aceWriteArrival) / float64(s.cycles) // entries/cycle
	v := avgLatency * throughput / float64(s.Entries)
	if v > 1 {
		v = 1
	}
	return v
}

// Finish closes the analysis at endCycle: still-resident data becomes the
// unknown component (conservatively ACE).
func (s *Structure) Finish(endCycle uint64) {
	if s.finished {
		return
	}
	s.finished = true
	s.cycles = endCycle
	for e := range s.state {
		for fi := range s.state[e] {
			st := &s.state[e][fi]
			if !st.valid {
				continue
			}
			w := float64(s.Fields[fi].Width)
			if st.hadACERead {
				lat := float64(st.lastACERead - st.writeCycle)
				s.aceBitCycles += w * lat
				if lat > 0 {
					s.aceResidencies++
					s.aceLatencySum += lat
					if s.qavf != nil {
						s.qavf.AddInterval(st.writeCycle, st.lastACERead, s.Fields[fi].Width)
					}
				}
				if endCycle > st.lastACERead {
					s.unknownBitCycles += w * float64(endCycle-st.lastACERead)
				}
			} else if endCycle > st.writeCycle {
				s.unknownBitCycles += w * float64(endCycle-st.writeCycle)
			}
			st.valid = false
		}
	}
}

// AVF returns the structure AVF per Equation 3. Finish must have been
// called.
func (s *Structure) AVF() float64 {
	if !s.finished {
		panic("ace: AVF before Finish")
	}
	denom := float64(s.Bits()) * float64(s.cycles)
	if denom == 0 {
		return 0
	}
	v := (s.aceBitCycles + s.unknownBitCycles) / denom
	if v > 1 {
		v = 1
	}
	return v
}

// ACEBitCycles exposes the accumulated known-ACE residency.
func (s *Structure) ACEBitCycles() float64 { return s.aceBitCycles }

// UnknownBitCycles exposes the accumulated unknown residency.
func (s *Structure) UnknownBitCycles() float64 { return s.unknownBitCycles }

// Ports returns the structure's ports sorted by name.
func (s *Structure) Ports() []*Port {
	out := make([]*Port, 0, len(s.ports))
	for _, p := range s.ports {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
