package ace

import (
	"fmt"
	"sort"
)

// Model aggregates the ACE trackers of one performance-model run.
type Model struct {
	structs map[string]*Structure
	hd1s    map[string]*HD1Tracker
	order   []string
	hdOrder []string
	// window is the interval size set by Quantize (0 = not quantized).
	window uint64
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{
		structs: make(map[string]*Structure),
		hd1s:    make(map[string]*HD1Tracker),
	}
}

// AddStructure registers and returns a new lifetime-tracked structure.
func (m *Model) AddStructure(name string, entries, width int, fields ...Field) *Structure {
	s := NewStructure(name, entries, width, fields...)
	if m.window > 0 {
		// The model was quantized before this structure was registered:
		// late additions get the same window so FinishIntervals covers
		// every lifetime tracker.
		s.Quantize(m.window)
	}
	m.structs[name] = s
	m.order = append(m.order, name)
	return s
}

// AddHD1 registers and returns a Hamming-distance-1 address tracker.
func (m *Model) AddHD1(name string, entries, tagBits int) *HD1Tracker {
	h := NewHD1Tracker(name, entries, tagBits)
	m.hd1s[name] = h
	m.hdOrder = append(m.hdOrder, name)
	return h
}

// Structure returns a registered structure, or nil.
func (m *Model) Structure(name string) *Structure { return m.structs[name] }

// Finish closes every tracker at endCycle and produces the run's report.
func (m *Model) Finish(endCycle uint64) *Report {
	r := &Report{
		Cycles:     endCycle,
		StructAVF:  make(map[string]float64),
		LittleAVF:  make(map[string]float64),
		StructBits: make(map[string]int),
		ReadPorts:  make(map[string]float64),
		WritePorts: make(map[string]float64),
	}
	for _, name := range m.order {
		s := m.structs[name]
		s.Finish(endCycle)
		r.StructAVF[name] = s.AVF()
		r.LittleAVF[name] = s.LittleAVF()
		r.StructBits[name] = s.Bits()
		for _, p := range s.Ports() {
			key := name + "." + p.Name
			if p.Dir == DirRead {
				r.ReadPorts[key] = p.PAVF(endCycle)
				r.ReadEvents += p.Events
				r.ACEReads += p.ACE
			} else {
				r.WritePorts[key] = p.PAVF(endCycle)
				r.WriteEvents += p.Events
				r.ACEWrites += p.ACE
			}
		}
	}
	for _, name := range m.hdOrder {
		h := m.hd1s[name]
		r.StructAVF[name] = h.AVF(endCycle)
		r.StructBits[name] = h.Bits()
		r.Lookups += h.lookups
		r.ACELookups += h.aceLookups
	}
	return r
}

// Report is the measured output of one ACE-instrumented run: structure
// AVFs (Equation 3) and port pAVFs keyed "Struct.port".
type Report struct {
	Cycles    uint64
	StructAVF map[string]float64
	// LittleAVF is the Little's-Law estimate (latency x throughput) of
	// each lifetime-tracked structure's known-ACE AVF component.
	LittleAVF  map[string]float64
	StructBits map[string]int
	ReadPorts  map[string]float64
	WritePorts map[string]float64
	// Event tallies for telemetry: total port events across all
	// lifetime-tracked structures, the ACE subset of each, and HD1
	// tag-array probes. Average sums them (totals over the suite).
	ReadEvents  uint64
	WriteEvents uint64
	ACEReads    uint64
	ACEWrites   uint64
	Lookups     uint64
	ACELookups  uint64
}

// StructNames returns structure names in lexical order.
func (r *Report) StructNames() []string {
	names := make([]string, 0, len(r.StructAVF))
	for n := range r.StructAVF {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AvgStructAVF returns the bit-weighted average structure AVF — the
// conservative proxy the paper used for sequential AVF before this work.
func (r *Report) AvgStructAVF() float64 {
	var sum, bits float64
	for n, avf := range r.StructAVF {
		b := float64(r.StructBits[n])
		sum += avf * b
		bits += b
	}
	if bits == 0 {
		return 0
	}
	return sum / bits
}

// Average combines per-workload reports into a suite-average report
// (uniform weighting across workloads, as when the paper averages pAVFs
// over its 547-trace suite). All reports must cover the same structures.
func Average(reports []*Report) (*Report, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("ace: no reports to average")
	}
	out := &Report{
		StructAVF:  make(map[string]float64),
		LittleAVF:  make(map[string]float64),
		StructBits: make(map[string]int),
		ReadPorts:  make(map[string]float64),
		WritePorts: make(map[string]float64),
	}
	n := float64(len(reports))
	for _, r := range reports {
		out.Cycles += r.Cycles
		out.ReadEvents += r.ReadEvents
		out.WriteEvents += r.WriteEvents
		out.ACEReads += r.ACEReads
		out.ACEWrites += r.ACEWrites
		out.Lookups += r.Lookups
		out.ACELookups += r.ACELookups
		for k, v := range r.StructAVF {
			out.StructAVF[k] += v / n
			out.StructBits[k] = r.StructBits[k]
		}
		for k, v := range r.LittleAVF {
			out.LittleAVF[k] += v / n
		}
		for k, v := range r.ReadPorts {
			out.ReadPorts[k] += v / n
		}
		for k, v := range r.WritePorts {
			out.WritePorts[k] += v / n
		}
	}
	for _, r := range reports {
		for k := range out.StructAVF {
			if _, ok := r.StructAVF[k]; !ok {
				return nil, fmt.Errorf("ace: report missing structure %s", k)
			}
		}
	}
	return out, nil
}
