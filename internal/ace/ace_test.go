package ace

import (
	"math"
	"testing"
)

func approx(t *testing.T, got, want float64, what string) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

func TestLifetimeACEWhenConsumed(t *testing.T) {
	s := NewStructure("Q", 2, 8)
	// Entry 0: written at cycle 10, ACE-read at cycle 30, overwritten 50.
	s.Write("wr", 0, 10, true)
	s.Read("rd", 0, 30, true)
	s.Write("wr", 0, 50, true)
	s.Finish(100)
	// ACE residency: 8 bits x (30-10) = 160. The second write's residency
	// (50..100, never read) is unknown: 8 x 50 = 400.
	approx(t, s.ACEBitCycles(), 160, "ace bit-cycles")
	approx(t, s.UnknownBitCycles(), 400, "unknown bit-cycles")
	// AVF = (160+400) / (2*8*100) = 0.35
	approx(t, s.AVF(), 0.35, "AVF")
}

func TestLifetimeUnACEWhenNeverRead(t *testing.T) {
	s := NewStructure("Q", 1, 4)
	s.Write("wr", 0, 0, true)
	s.Write("wr", 0, 10, true) // overwrites unread data: un-ACE
	s.Invalidate(0, 20)
	s.Finish(100)
	approx(t, s.ACEBitCycles(), 0, "ace")
	// Invalidate closes the lifetime before Finish, so nothing is unknown.
	approx(t, s.UnknownBitCycles(), 0, "unknown")
	approx(t, s.AVF(), 0, "AVF")
}

func TestUnACEReadDoesNotExtendLifetime(t *testing.T) {
	s := NewStructure("Q", 1, 8)
	s.Write("wr", 0, 0, true)
	s.Read("rd", 0, 40, false) // dynamically dead consumer
	s.Invalidate(0, 60)
	s.Finish(100)
	approx(t, s.AVF(), 0, "AVF with only un-ACE reads")
}

func TestPortPAVFCounts(t *testing.T) {
	s := NewStructure("RF", 4, 32)
	for c := uint64(0); c < 100; c++ {
		if c%2 == 0 {
			s.Read("rd0", int(c%4), c, c%4 == 0) // 50 reads, 25 ACE
		}
		if c%5 == 0 {
			s.Write("wr0", int(c%4), c, true) // 20 ACE writes
		}
	}
	s.Finish(100)
	var rd, wr *Port
	for _, p := range s.Ports() {
		switch p.Name {
		case "rd0":
			rd = p
		case "wr0":
			wr = p
		}
	}
	if rd.Events != 50 || wr.Events != 20 {
		t.Fatalf("event counts: rd=%d wr=%d", rd.Events, wr.Events)
	}
	approx(t, rd.PAVF(100), 0.25, "pAVF_R")
	approx(t, wr.PAVF(100), 0.20, "pAVF_W")
}

func TestBitFieldAnalysis(t *testing.T) {
	// A control structure whose two fields are ACE under different
	// conditions ("Bit Field Analysis", §5.1).
	s := NewStructure("CTL", 1, 0,
		Field{Name: "opinfo", Width: 6},
		Field{Name: "pred", Width: 2},
	)
	if s.Width() != 8 {
		t.Fatalf("Width = %d", s.Width())
	}
	s.WriteFields("wr", 0, 0, []bool{true, true})
	// Only the opinfo field is consumed.
	s.ReadFields("rd", 0, 50, []bool{true, false})
	s.Invalidate(0, 50)
	s.Finish(100)
	// ACE: 6 bits x 50 cycles = 300; pred contributes nothing.
	approx(t, s.ACEBitCycles(), 300, "field ace")
	approx(t, s.AVF(), 300.0/(8*100), "field AVF")
}

func TestFinishUnknownAfterACERead(t *testing.T) {
	s := NewStructure("Q", 1, 1)
	s.Write("wr", 0, 0, true)
	s.Read("rd", 0, 20, true)
	s.Finish(100)
	approx(t, s.ACEBitCycles(), 20, "ace")
	approx(t, s.UnknownBitCycles(), 80, "unknown tail")
}

func TestAVFCapsAtOne(t *testing.T) {
	s := NewStructure("Q", 1, 1)
	s.Write("wr", 0, 0, true)
	s.Read("rd", 0, 100, true)
	s.Finish(100)
	approx(t, s.AVF(), 1.0, "fully resident AVF")
}

func TestAVFPanicsBeforeFinish(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStructure("Q", 1, 1).AVF()
}

func TestEntryRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStructure("Q", 2, 1).Write("wr", 5, 0, true)
}

func TestHD1ExactMatchVulnerability(t *testing.T) {
	h := NewHD1Tracker("TAGS", 4, 16)
	h.Store(0, 0xABCD)
	h.Lookup(0xABCD, true) // exact: all 16 bits vulnerable
	approx(t, h.AVF(1), 16.0/(4*16), "exact match AVF")
}

func TestHD1DistanceOne(t *testing.T) {
	h := NewHD1Tracker("TAGS", 2, 8)
	h.Store(0, 0b00001111)
	h.Lookup(0b00001110, true) // distance 1: one bit vulnerable
	approx(t, h.AVF(1), 1.0/16.0, "distance-1 AVF")
	// Distance 2: nothing vulnerable.
	h2 := NewHD1Tracker("T2", 1, 8)
	h2.Store(0, 0b00001111)
	h2.Lookup(0b00001100, true)
	approx(t, h2.AVF(1), 0, "distance-2 AVF")
}

func TestHD1IgnoresUnACEAndInvalid(t *testing.T) {
	h := NewHD1Tracker("TAGS", 2, 8)
	h.Store(0, 0x0F)
	h.Lookup(0x0F, false) // un-ACE lookup
	h.Invalidate(0)
	h.Lookup(0x0F, true) // no valid entries
	approx(t, h.AVF(10), 0, "AVF")
	total, ace := h.Lookups()
	if total != 2 || ace != 1 {
		t.Fatalf("lookups = %d/%d", total, ace)
	}
}

func TestModelReport(t *testing.T) {
	m := NewModel()
	q := m.AddStructure("Q", 2, 8)
	m.AddHD1("TAGS", 2, 8).Store(0, 1)
	q.Write("wr", 0, 0, true)
	q.Read("rd", 0, 50, true)
	r := m.Finish(100)

	if r.Cycles != 100 {
		t.Fatalf("cycles = %d", r.Cycles)
	}
	if _, ok := r.StructAVF["Q"]; !ok {
		t.Fatal("Q missing from report")
	}
	if _, ok := r.StructAVF["TAGS"]; !ok {
		t.Fatal("TAGS missing from report")
	}
	if r.StructBits["Q"] != 16 || r.StructBits["TAGS"] != 16 {
		t.Fatalf("bits: %v", r.StructBits)
	}
	approx(t, r.ReadPorts["Q.rd"], 0.01, "Q.rd pAVF")
	approx(t, r.WritePorts["Q.wr"], 0.01, "Q.wr pAVF")
	names := r.StructNames()
	if len(names) != 2 || names[0] != "Q" {
		t.Fatalf("names = %v", names)
	}
}

func TestAverageReports(t *testing.T) {
	mk := func(avf, rd float64) *Report {
		return &Report{
			Cycles:     100,
			StructAVF:  map[string]float64{"Q": avf},
			StructBits: map[string]int{"Q": 8},
			ReadPorts:  map[string]float64{"Q.rd": rd},
			WritePorts: map[string]float64{"Q.wr": 0.1},
		}
	}
	avg, err := Average([]*Report{mk(0.2, 0.4), mk(0.4, 0.2)})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, avg.StructAVF["Q"], 0.3, "avg struct AVF")
	approx(t, avg.ReadPorts["Q.rd"], 0.3, "avg read pAVF")
	approx(t, avg.WritePorts["Q.wr"], 0.1, "avg write pAVF")
	if avg.Cycles != 200 {
		t.Fatalf("cycles = %d", avg.Cycles)
	}
	if _, err := Average(nil); err == nil {
		t.Fatal("Average(nil) should fail")
	}
}

func TestAvgStructAVFWeighted(t *testing.T) {
	r := &Report{
		StructAVF:  map[string]float64{"A": 1.0, "B": 0.0},
		StructBits: map[string]int{"A": 10, "B": 30},
	}
	approx(t, r.AvgStructAVF(), 0.25, "bit-weighted average")
}

func TestLittleAVFSteadyState(t *testing.T) {
	// Steady stream: one entry, write at t, read at t+10, rewrite at t+10.
	// Latency 10, throughput 0.1 entries/cycle, 1 entry -> AVF = 1.0.
	s := NewStructure("Q", 1, 8)
	for c := uint64(0); c < 1000; c += 10 {
		s.Write("wr", 0, c, true)
		s.Read("rd", 0, c+10, true)
	}
	s.Finish(1000)
	little := s.LittleAVF()
	full := s.AVF()
	if math.Abs(little-full) > 0.05 {
		t.Fatalf("Little's law %v vs lifetime %v", little, full)
	}
}

func TestLittleAVFLowerBoundsAVF(t *testing.T) {
	// With an unknown tail, Little underestimates (known-ACE only).
	s := NewStructure("Q", 2, 8)
	s.Write("wr", 0, 0, true)
	s.Read("rd", 0, 40, true)
	s.Write("wr", 1, 10, true) // never read: unknown tail
	s.Finish(100)
	if s.LittleAVF() > s.AVF()+1e-12 {
		t.Fatalf("Little %v exceeds AVF %v", s.LittleAVF(), s.AVF())
	}
	if s.LittleAVF() <= 0 {
		t.Fatal("Little estimate vanished")
	}
}

func TestLittleAVFPanicsBeforeFinish(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStructure("Q", 1, 1).LittleAVF()
}

func TestLittleAVFInReport(t *testing.T) {
	m := NewModel()
	q := m.AddStructure("Q", 1, 8)
	q.Write("wr", 0, 0, true)
	q.Read("rd", 0, 50, true)
	r := m.Finish(100)
	if _, ok := r.LittleAVF["Q"]; !ok {
		t.Fatal("report missing LittleAVF")
	}
	avg, err := Average([]*Report{r, r})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg.LittleAVF["Q"]-r.LittleAVF["Q"]) > 1e-12 {
		t.Fatal("Average dropped LittleAVF")
	}
}
