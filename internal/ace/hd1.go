package ace

import "math/bits"

// HD1Tracker implements a simplified Hamming-distance-1 analysis for
// address-based structures (CAM tags, TLBs, cache tag arrays) following
// Biswas et al., "Computing Architectural Vulnerability Factors for
// Address-Based Structures" (ISCA 2005).
//
// A stored tag bit is vulnerable on an ACE lookup when flipping it would
// change the match outcome:
//
//   - an exact match (distance 0): flipping any stored tag bit converts a
//     hit into a false miss, so every tag bit of the matching entry is
//     vulnerable for that lookup;
//   - distance exactly 1: flipping the single differing bit converts a
//     miss into a false hit, so that one bit is vulnerable.
//
// Each ACE lookup contributes one cycle of vulnerability for the affected
// bits; AVF integrates those bit-cycles over the simulation. This is the
// per-access discretization of the interval analysis in the original
// paper, adequate because lookups dominate tag vulnerability.
type HD1Tracker struct {
	Name    string
	Entries int
	TagBits int

	valid []bool
	tags  []uint32

	vulnBitCycles float64
	lookups       uint64
	aceLookups    uint64
}

// NewHD1Tracker creates a tracker for an address array of the given
// geometry (tagBits <= 32).
func NewHD1Tracker(name string, entries, tagBits int) *HD1Tracker {
	return &HD1Tracker{
		Name:    name,
		Entries: entries,
		TagBits: tagBits,
		valid:   make([]bool, entries),
		tags:    make([]uint32, entries),
	}
}

func (h *HD1Tracker) mask() uint32 {
	if h.TagBits >= 32 {
		return ^uint32(0)
	}
	return 1<<uint(h.TagBits) - 1
}

// Store records a tag fill.
func (h *HD1Tracker) Store(entry int, tag uint32) {
	h.valid[entry] = true
	h.tags[entry] = tag & h.mask()
}

// Invalidate clears an entry.
func (h *HD1Tracker) Invalidate(entry int) { h.valid[entry] = false }

// Lookup records an associative search for tag. Only ACE lookups
// contribute vulnerability.
func (h *HD1Tracker) Lookup(tag uint32, ace bool) {
	h.lookups++
	if !ace {
		return
	}
	h.aceLookups++
	tag &= h.mask()
	for e := 0; e < h.Entries; e++ {
		if !h.valid[e] {
			continue
		}
		switch bits.OnesCount32(h.tags[e] ^ tag) {
		case 0:
			h.vulnBitCycles += float64(h.TagBits)
		case 1:
			h.vulnBitCycles++
		}
	}
}

// Bits returns the array's total tag bits.
func (h *HD1Tracker) Bits() int { return h.Entries * h.TagBits }

// AVF returns the tag-array AVF over the given simulated cycle count.
func (h *HD1Tracker) AVF(cycles uint64) float64 {
	denom := float64(h.Bits()) * float64(cycles)
	if denom == 0 {
		return 0
	}
	v := h.vulnBitCycles / denom
	if v > 1 {
		v = 1
	}
	return v
}

// Lookups returns (total, ACE) lookup counts.
func (h *HD1Tracker) Lookups() (total, ace uint64) { return h.lookups, h.aceLookups }
