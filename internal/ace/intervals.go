package ace

// Time-resolved (interval) report emission: instead of one whole-run
// Report, a quantized model divides the run into fixed windows and emits
// one Report per window — per-window structure AVFs (from the QAVF
// trackers) and per-window port pAVFs (ACE events attributed to the
// window they occurred in, over the window's span). The whole run
// integrates back exactly: total ACE events are the sum of per-window
// events, so the time-weighted mean of window pAVFs is the whole-run
// pAVF, which is the identity the interval sweep path is property-tested
// against downstream.

import "fmt"

// IntervalWindow is one time window of an interval report: the half-open
// cycle range [Start, End) and the measurements confined to it.
type IntervalWindow struct {
	Index int
	Start uint64
	End   uint64
	// Report carries the window's structure AVFs and port pAVFs. Its
	// Cycles field is the window span (End - Start), so downstream
	// consumers weight windows by Report.Cycles exactly as they weight
	// whole runs.
	Report *Report
}

// IntervalReport is the windowed counterpart of Report: the same
// measurements, resolved over fixed windows of the run.
type IntervalReport struct {
	// Window is the nominal window size in cycles; the final window may
	// be shorter when the run length is not a multiple.
	Window uint64
	// Cycles is the whole run length the windows tile.
	Cycles uint64
	// Windows are the report's time windows, ordered and non-overlapping
	// by construction.
	Windows []IntervalWindow
}

// Quantize attaches QAVF trackers with one shared window size to every
// lifetime-tracked structure of the model, enabling FinishIntervals.
// Hamming-distance-1 trackers are per-access and carry no event cycles,
// so they are not windowed; interval reports carry their whole-run AVF
// in every window (the best constant estimate). Call before any events
// are recorded.
func (m *Model) Quantize(window uint64) {
	if window == 0 {
		window = 1
	}
	m.window = window
	for _, name := range m.order {
		m.structs[name].Quantize(window)
	}
}

// FinishIntervals closes the analysis at endCycle and returns both the
// whole-run report and the windowed interval report. The model must have
// been quantized (Quantize) before events were recorded; the per-window
// port counters are only populated from that point on.
func (m *Model) FinishIntervals(endCycle uint64) (*Report, *IntervalReport, error) {
	if m.window == 0 {
		return nil, nil, fmt.Errorf("ace: FinishIntervals without Quantize")
	}
	if endCycle == 0 {
		return nil, nil, fmt.Errorf("ace: FinishIntervals with zero cycles")
	}
	whole := m.Finish(endCycle)
	nw := int((endCycle + m.window - 1) / m.window)
	ir := &IntervalReport{Window: m.window, Cycles: endCycle, Windows: make([]IntervalWindow, nw)}

	// Per-structure windowed AVF series, computed once.
	series := make(map[string][]float64, len(m.order))
	for _, name := range m.order {
		series[name] = m.structs[name].qavf.Series(endCycle)
	}

	for w := 0; w < nw; w++ {
		start := uint64(w) * m.window
		end := start + m.window
		if end > endCycle {
			end = endCycle
		}
		span := end - start
		rep := &Report{
			Cycles:     span,
			StructAVF:  make(map[string]float64),
			LittleAVF:  make(map[string]float64),
			StructBits: make(map[string]int),
			ReadPorts:  make(map[string]float64),
			WritePorts: make(map[string]float64),
		}
		for _, name := range m.order {
			s := m.structs[name]
			if sv := series[name]; w < len(sv) {
				rep.StructAVF[name] = sv[w]
			} else {
				rep.StructAVF[name] = 0
			}
			rep.StructBits[name] = s.Bits()
			for _, p := range s.Ports() {
				key := name + "." + p.Name
				v := p.WindowPAVF(w, span)
				if p.Dir == DirRead {
					rep.ReadPorts[key] = v
				} else {
					rep.WritePorts[key] = v
				}
			}
		}
		// Address-based trackers report their whole-run AVF in every
		// window: HD1 vulnerability is attributed per access, not per
		// cycle, so the run average is the only sound windowed value.
		for _, name := range m.hdOrder {
			rep.StructAVF[name] = whole.StructAVF[name]
			rep.StructBits[name] = whole.StructBits[name]
		}
		ir.Windows[w] = IntervalWindow{Index: w, Start: start, End: end, Report: rep}
	}
	return whole, ir, nil
}
