package ace

import (
	"math"
	"testing"
)

func TestQAVFWindowAttribution(t *testing.T) {
	q := NewQAVF(10, 100)
	// Interval spanning windows 0 and 1: [50, 150), 10 bits.
	q.AddInterval(50, 150, 10)
	series := q.Series(200)
	if len(series) != 2 {
		t.Fatalf("series len = %d", len(series))
	}
	// Window 0: 10 bits x 50 cycles / (10 bits x 100 cycles) = 0.5.
	if math.Abs(series[0]-0.5) > 1e-12 || math.Abs(series[1]-0.5) > 1e-12 {
		t.Fatalf("series = %v", series)
	}
	if math.Abs(q.Peak(200)-0.5) > 1e-12 {
		t.Fatalf("peak = %v", q.Peak(200))
	}
}

func TestQAVFPartialLastWindow(t *testing.T) {
	q := NewQAVF(4, 100)
	q.AddInterval(200, 250, 4)
	series := q.Series(250) // last window spans 50 cycles
	if len(series) != 3 {
		t.Fatalf("series len = %d", len(series))
	}
	if math.Abs(series[2]-1.0) > 1e-12 {
		t.Fatalf("partial window AVF = %v, want 1.0", series[2])
	}
	if series[0] != 0 || series[1] != 0 {
		t.Fatalf("idle windows non-zero: %v", series)
	}
}

func TestQAVFEmptyAndDegenerate(t *testing.T) {
	q := NewQAVF(0, 0)
	if q.Window != 1 {
		t.Fatal("zero window not defended")
	}
	if got := q.Series(0); got != nil {
		t.Fatalf("empty series = %v", got)
	}
	q.AddInterval(10, 10, 4) // zero-length interval ignored
	if q.Peak(100) != 0 {
		t.Fatal("zero-length interval counted")
	}
}

func TestQuantizedStructureExposesPhases(t *testing.T) {
	// Phase 1 (cycles 0..500): hot — written and promptly ACE-read.
	// Phase 2 (cycles 500..1000): idle.
	s := NewStructure("Q", 1, 8)
	q := s.Quantize(100)
	for c := uint64(0); c < 500; c += 10 {
		s.Write("wr", 0, c, true)
		s.Read("rd", 0, c+9, true)
	}
	s.Invalidate(0, 500)
	s.Finish(1000)
	series := q.Series(1000)
	if len(series) != 10 {
		t.Fatalf("series len = %d", len(series))
	}
	hot, idle := series[2], series[8]
	if hot < 0.5 {
		t.Fatalf("hot phase AVF = %v", hot)
	}
	if idle != 0 {
		t.Fatalf("idle phase AVF = %v", idle)
	}
	// The peak exceeds the full-run average — QAVF's reason to exist.
	if q.Peak(1000) <= s.AVF() {
		t.Fatalf("peak %v should exceed run average %v", q.Peak(1000), s.AVF())
	}
}
