// Package uarch is the detailed micro-architectural performance model of
// the reproduction's small core, instrumented with ACE lifetime analysis
// (internal/ace). It plays the role of the paper's ACE-instrumented
// performance model: it executes workloads at cycle granularity and
// measures, for every modeled storage structure, the structure AVF
// (Equation 3) and the per-port pAVFs that SART consumes.
//
// The machine is a scalar in-order 5-stage pipeline (IF ID EX MEM WB) with:
//
//	FetchQ    fetched instruction words awaiting decode
//	IQ        decoded instruction queue with bit fields (op/regs/imm) —
//	          exercising the paper's Bit Field Analysis
//	RegFile   16x32 architectural registers (2 read ports, 1 write port)
//	StoreBuf  pending stores (addr/data fields)
//	DCache    direct-mapped data cache array
//	DTag      the cache tag array, tracked with Hamming-distance-1 analysis
//
// Timing is modeled by replaying the architectural trace through a stage
// scheduler with load-use, branch-redirect, and cache-miss stalls. The
// dynamic ACEness of each instruction comes from isa.ACEFlags (backward
// liveness over the trace), so structure events carry exact ACE/un-ACE
// attribution.
package uarch

import (
	"fmt"
	"time"

	"seqavf/internal/ace"
	"seqavf/internal/isa"
	"seqavf/internal/obs"
)

// Config sets the machine geometry and penalties.
type Config struct {
	FetchQEntries   int
	IQEntries       int
	StoreBufEntries int
	CacheLines      int // direct-mapped data cache lines
	BTBEntries      int // branch target buffer entries
	TagBits         int
	MissPenalty     int // cycles added on a data-cache miss
	BranchPenalty   int // cycles added on a taken branch
	// IssueWidth > 1 models a superscalar front end: up to IssueWidth
	// instructions issue per cycle when free of RAW hazards, with one
	// memory operation per group and branches ending a group. Port pAVFs
	// are per-cycle rates, so a wider machine concentrates more ACE
	// traffic into each cycle.
	IssueWidth int
	// WholeEntryIQ disables Bit Field Analysis on the instruction queue:
	// the entry is tracked as one field whose ACEness is the
	// instruction's (the pre-§5.1 conservative treatment). Used by the
	// ablation that quantifies how much field resolution buys.
	WholeEntryIQ bool
	// Window, when > 0, quantizes the ACE model into fixed windows of
	// that many cycles: Result.Intervals then carries per-window
	// structure AVFs and port pAVFs (the time-resolved measurements the
	// interval sweep path consumes) alongside the whole-run Report.
	Window    uint64
	MaxInstrs int // trace budget (0 = isa.DefaultMaxSteps)
	// Obs receives performance-model telemetry: per-run spans
	// (arch_exec/replay/ace_finish), cycle and instruction counters, ACE
	// read/write tallies, and retirement-rate gauges. nil disables it.
	Obs *obs.Registry
}

// DefaultConfig returns the geometry used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		FetchQEntries:   8,
		IQEntries:       8,
		StoreBufEntries: 4,
		CacheLines:      16,
		BTBEntries:      8,
		TagBits:         12,
		MissPenalty:     4,
		BranchPenalty:   2,
	}
}

// Structure and port names exposed to the SART binding (step 4 of the
// paper's tool flow maps these onto RTL latch arrays).
const (
	StructFetchQ   = "FetchQ"
	StructIQ       = "IQ"
	StructRegFile  = "RegFile"
	StructStoreBuf = "StoreBuf"
	StructDCache   = "DCache"
	StructDTag     = "DTag"
	StructBTB      = "BTB"
	StructBTBTag   = "BTBTag"
)

// Result is the outcome of one instrumented run.
type Result struct {
	Program *isa.Program
	Cycles  uint64
	Instrs  int
	IPC     float64
	// Out is the observed program output (identical to the architectural
	// run by construction).
	Out []uint32
	// Report carries structure AVFs and port pAVFs for SART.
	Report *ace.Report
	// Intervals carries the windowed measurements when Config.Window was
	// set (nil otherwise): one report per time window of the run.
	Intervals *ace.IntervalReport
	// ACEInstrFraction is the share of dynamic instructions that were
	// necessary for architecturally correct execution.
	ACEInstrFraction float64
}

// Run executes p on the performance model and returns the ACE
// measurements.
func Run(p *isa.Program, cfg Config) (*Result, error) {
	sp := cfg.Obs.StartSpan("uarch.run")
	defer sp.End()
	sp.SetAttr("program", p.Name)
	start := time.Now()
	maxSteps := cfg.MaxInstrs
	if maxSteps <= 0 {
		maxSteps = p.MaxCycles
	}
	asp := sp.Child("arch_exec")
	arch, err := isa.Exec(p, maxSteps)
	if err != nil {
		asp.End()
		return nil, fmt.Errorf("uarch: architectural run: %w", err)
	}
	flags := isa.ACEFlags(arch.Trace, arch.Halted)
	asp.SetAttr("instrs", len(arch.Trace))
	asp.End()
	rsp := sp.Child("replay")

	m := ace.NewModel()
	if cfg.Window > 0 {
		m.Quantize(cfg.Window)
	}
	fetchq := m.AddStructure(StructFetchQ, cfg.FetchQEntries, 32)
	var iq *ace.Structure
	if cfg.WholeEntryIQ {
		iq = m.AddStructure(StructIQ, cfg.IQEntries, 32)
	} else {
		iq = m.AddStructure(StructIQ, cfg.IQEntries, 0,
			ace.Field{Name: "op", Width: 8},
			ace.Field{Name: "regs", Width: 12},
			ace.Field{Name: "imm", Width: 12},
		)
	}
	regfile := m.AddStructure(StructRegFile, 16, 32)
	storebuf := m.AddStructure(StructStoreBuf, cfg.StoreBufEntries, 0,
		ace.Field{Name: "addr", Width: 16},
		ace.Field{Name: "data", Width: 32},
	)
	dcache := m.AddStructure(StructDCache, cfg.CacheLines, 32)
	dtag := m.AddHD1(StructDTag, cfg.CacheLines, cfg.TagBits)
	btb := m.AddStructure(StructBTB, cfg.BTBEntries, 32)
	btbTag := m.AddHD1(StructBTBTag, cfg.BTBEntries, cfg.TagBits)

	// Declare every port up front so reports cover quiet ports too.
	fetchq.DeclarePort("fill", ace.DirWrite)
	fetchq.DeclarePort("drain", ace.DirRead)
	iq.DeclarePort("alloc", ace.DirWrite)
	iq.DeclarePort("issue", ace.DirRead)
	regfile.DeclarePort("rd0", ace.DirRead)
	regfile.DeclarePort("rd1", ace.DirRead)
	regfile.DeclarePort("wr0", ace.DirWrite)
	storebuf.DeclarePort("alloc", ace.DirWrite)
	storebuf.DeclarePort("drain", ace.DirRead)
	dcache.DeclarePort("ld", ace.DirRead)
	dcache.DeclarePort("fill", ace.DirWrite)
	dcache.DeclarePort("st", ace.DirWrite)
	btb.DeclarePort("pred", ace.DirRead)
	btb.DeclarePort("fill", ace.DirWrite)

	// BTB model state: direct-mapped by PC.
	btbValid := make([]bool, cfg.BTBEntries)
	btbPC := make([]uint32, cfg.BTBEntries)
	// Cache model state: direct-mapped, word lines.
	lineValid := make([]bool, cfg.CacheLines)
	lineTag := make([]uint32, cfg.CacheLines)
	lineOf := func(addr uint32) int { return int(addr) % cfg.CacheLines }
	tagOf := func(addr uint32) uint32 { return addr / uint32(cfg.CacheLines) }

	cycle := uint64(0)
	sbSlot := 0
	aceCount := 0
	slot := 1
	pendingStall := uint64(0)
	var prevIn isa.Instr
	for i, te := range arch.Trace {
		in := te.Instr
		aceI := flags[i]
		if aceI {
			aceCount++
		}
		if cfg.IssueWidth > 1 && i > 0 {
			// Superscalar grouping: stay in the issue cycle when the
			// instruction pairs cleanly with its predecessors.
			if slot < cfg.IssueWidth && canPair(prevIn, in) && pendingStall == 0 {
				slot++
			} else {
				cycle += 1 + pendingStall
				pendingStall = 0
				slot = 1
			}
		}
		cIF := cycle
		cID := cycle + 1
		cEX := cycle + 2
		cMEM := cycle + 3
		cWB := cycle + 4

		// IF: fetched word enters the fetch queue; the BTB is probed for
		// every fetch (a false hit redirects the front end, so lookups
		// carry the instruction's ACEness).
		fqSlot := i % cfg.FetchQEntries
		fetchq.Write("fill", fqSlot, cIF, aceI)
		btbSlot := int(te.PC) % cfg.BTBEntries
		btbTag.Lookup(te.PC/uint32(cfg.BTBEntries), aceI)
		if btbValid[btbSlot] && btbPC[btbSlot] == te.PC && in.IsBranch() {
			btb.Read("pred", btbSlot, cIF, aceI)
		}
		// ID: drain fetch queue, allocate IQ entry, read registers.
		fetchq.Read("drain", fqSlot, cID, aceI)
		iqSlot := i % cfg.IQEntries
		// Bit Field Analysis: the op field matters whenever the
		// instruction is ACE; the register-specifier field only when a
		// register is actually read or written; the immediate field only
		// for immediate-consuming encodings.
		usesRegs := in.ReadsRa() || in.ReadsRb() || in.WritesReg()
		usesImm := usesImmediate(in)
		if cfg.WholeEntryIQ {
			iq.Write("alloc", iqSlot, cID, aceI)
		} else {
			iq.WriteFields("alloc", iqSlot, cID, []bool{aceI, aceI && usesRegs, aceI && usesImm})
		}
		if in.ReadsRa() {
			regfile.Read("rd0", int(in.Ra), cID, aceI && in.Ra != 0)
		}
		if in.ReadsRb() {
			regfile.Read("rd1", int(in.Rb), cID, aceI && in.Rb != 0)
		}
		// EX: issue from the IQ.
		if cfg.WholeEntryIQ {
			iq.Read("issue", iqSlot, cEX, aceI)
		} else {
			iq.ReadFields("issue", iqSlot, cEX, []bool{aceI, aceI && usesRegs, aceI && usesImm})
		}
		// MEM: data cache and store buffer.
		stall := uint64(0)
		switch in.Op {
		case isa.LD:
			line := lineOf(te.Addr)
			hit := lineValid[line] && lineTag[line] == tagOf(te.Addr)
			dtag.Lookup(tagOf(te.Addr), aceI)
			if hit {
				dcache.Read("ld", line, cMEM, aceI)
			} else {
				stall += uint64(cfg.MissPenalty)
				dcache.Write("fill", line, cMEM+stall, aceI)
				dcache.Read("ld", line, cMEM+stall, aceI)
				lineValid[line] = true
				lineTag[line] = tagOf(te.Addr)
				dtag.Store(line, tagOf(te.Addr))
			}
		case isa.ST:
			storebuf.WriteFields("alloc", sbSlot, cMEM, []bool{aceI, aceI})
			// Drain two cycles later into the cache line.
			storebuf.ReadFields("drain", sbSlot, cMEM+2, []bool{aceI, aceI})
			line := lineOf(te.Addr)
			dcache.Write("st", line, cMEM+2, aceI)
			dtag.Lookup(tagOf(te.Addr), aceI)
			lineValid[line] = true
			lineTag[line] = tagOf(te.Addr)
			dtag.Store(line, tagOf(te.Addr))
			sbSlot = (sbSlot + 1) % cfg.StoreBufEntries
		}
		// Taken branches train the BTB.
		if in.IsBranch() && te.Taken {
			btb.Write("fill", btbSlot, cEX, aceI)
			btbTag.Store(btbSlot, te.PC/uint32(cfg.BTBEntries))
			btbValid[btbSlot] = true
			btbPC[btbSlot] = te.PC
		}
		// WB: register write.
		if in.WritesReg() {
			regfile.Write("wr0", int(in.Rd), cWB, aceI)
		}

		if cfg.IssueWidth > 1 {
			// Wide mode: accumulate this instruction's penalties; they
			// apply when the next group starts.
			pendingStall += stall
			if in.IsBranch() && te.Taken {
				pendingStall += uint64(cfg.BranchPenalty)
			}
			if i+1 < len(arch.Trace) {
				next := arch.Trace[i+1].Instr
				if in.Op == isa.LD && in.Rd != 0 &&
					((next.ReadsRa() && next.Ra == in.Rd) || (next.ReadsRb() && next.Rb == in.Rd)) {
					pendingStall++ // load-use bubble
				}
			}
			prevIn = in
			continue
		}
		// Advance: scalar machine retires one instruction per cycle plus
		// hazard stalls.
		cycle++
		cycle += stall
		if in.IsBranch() && te.Taken {
			cycle += uint64(cfg.BranchPenalty)
		}
		if i+1 < len(arch.Trace) {
			next := arch.Trace[i+1].Instr
			if in.Op == isa.LD && in.Rd != 0 &&
				((next.ReadsRa() && next.Ra == in.Rd) || (next.ReadsRb() && next.Rb == in.Rd)) {
				cycle++ // load-use bubble
			}
		}
	}
	if cfg.IssueWidth > 1 {
		cycle += 1 + pendingStall
	}
	endCycle := cycle + 4 // drain the pipeline
	rsp.SetAttr("cycles", endCycle)
	rsp.End()
	fsp := sp.Child("ace_finish")
	var (
		report    *ace.Report
		intervals *ace.IntervalReport
	)
	if cfg.Window > 0 {
		report, intervals, err = m.FinishIntervals(endCycle)
		if err != nil {
			fsp.End()
			return nil, fmt.Errorf("uarch: windowed finish: %w", err)
		}
	} else {
		report = m.Finish(endCycle)
	}
	fsp.End()

	res := &Result{
		Program:   p,
		Cycles:    endCycle,
		Instrs:    len(arch.Trace),
		Out:       arch.Out,
		Report:    report,
		Intervals: intervals,
	}
	if endCycle > 0 {
		res.IPC = float64(len(arch.Trace)) / float64(endCycle)
	}
	if len(arch.Trace) > 0 {
		res.ACEInstrFraction = float64(aceCount) / float64(len(arch.Trace))
	}
	if reg := cfg.Obs; reg != nil {
		reg.Counter("uarch.runs").Inc()
		reg.Counter("uarch.cycles").Add(int64(endCycle))
		reg.Counter("uarch.instrs").Add(int64(len(arch.Trace)))
		reg.Counter("uarch.ace_instrs").Add(int64(aceCount))
		reg.Counter("ace.read_events").Add(int64(report.ReadEvents))
		reg.Counter("ace.write_events").Add(int64(report.WriteEvents))
		reg.Counter("ace.ace_reads").Add(int64(report.ACEReads))
		reg.Counter("ace.ace_writes").Add(int64(report.ACEWrites))
		reg.Counter("ace.tag_lookups").Add(int64(report.Lookups))
		reg.Gauge("uarch.ipc").Set(res.IPC)
		if elapsed := time.Since(start).Seconds(); elapsed > 0 {
			reg.Gauge("uarch.instrs_per_sec").Set(float64(len(arch.Trace)) / elapsed)
			reg.Gauge("uarch.cycles_per_sec").Set(float64(endCycle) / elapsed)
		}
	}
	return res, nil
}

// canPair reports whether cur may share an issue cycle with prev: no RAW
// dependence, at most one memory operation per group, and branches end a
// group.
func canPair(prev, cur isa.Instr) bool {
	if prev.IsBranch() {
		return false
	}
	if prev.IsMem() && cur.IsMem() {
		return false
	}
	if prev.WritesReg() {
		if (cur.ReadsRa() && cur.Ra == prev.Rd) || (cur.ReadsRb() && cur.Rb == prev.Rd) {
			return false
		}
	}
	return true
}

func usesImmediate(in isa.Instr) bool {
	switch in.Op {
	case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.LUI, isa.LD, isa.ST,
		isa.BEQ, isa.BNE, isa.JMP:
		return true
	}
	return false
}

// RunSuite executes every program and returns the per-workload results
// plus the suite-average ACE report (the paper averages pAVFs over its
// 547-trace suite before applying them to the RTL).
func RunSuite(progs []*isa.Program, cfg Config) ([]*Result, *ace.Report, error) {
	if len(progs) == 0 {
		return nil, nil, fmt.Errorf("uarch: empty suite")
	}
	results := make([]*Result, 0, len(progs))
	reports := make([]*ace.Report, 0, len(progs))
	for _, p := range progs {
		r, err := Run(p, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("uarch: %s: %w", p.Name, err)
		}
		results = append(results, r)
		reports = append(reports, r.Report)
	}
	avg, err := ace.Average(reports)
	if err != nil {
		return nil, nil, err
	}
	return results, avg, nil
}
