package uarch

import (
	"testing"

	"seqavf/internal/isa"
	"seqavf/internal/workload"
)

func TestRunMatchesArchitecturalOutput(t *testing.T) {
	p := workload.MD5Like(50)
	arch, err := isa.Exec(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out) != len(arch.Out) {
		t.Fatalf("out lengths differ: %d vs %d", len(res.Out), len(arch.Out))
	}
	for i := range res.Out {
		if res.Out[i] != arch.Out[i] {
			t.Fatalf("out[%d] = %d, want %d", i, res.Out[i], arch.Out[i])
		}
	}
}

func TestTimingAccounting(t *testing.T) {
	p := workload.Lattice(6)
	res, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= uint64(res.Instrs) {
		t.Fatalf("cycles %d should exceed instr count %d (stalls)", res.Cycles, res.Instrs)
	}
	if res.IPC <= 0 || res.IPC > 1 {
		t.Fatalf("IPC = %v out of (0,1]", res.IPC)
	}
}

func TestReportCoversAllStructures(t *testing.T) {
	res, err := Run(workload.Lattice(6), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	for _, s := range []string{StructFetchQ, StructIQ, StructRegFile, StructStoreBuf, StructDCache, StructDTag} {
		if _, ok := r.StructAVF[s]; !ok {
			t.Errorf("report missing structure %s", s)
		}
	}
	for _, port := range []string{"RegFile.rd0", "RegFile.rd1", "FetchQ.drain", "IQ.issue", "StoreBuf.drain", "DCache.ld"} {
		if _, ok := r.ReadPorts[port]; !ok {
			t.Errorf("report missing read port %s", port)
		}
	}
	for _, port := range []string{"RegFile.wr0", "FetchQ.fill", "IQ.alloc", "StoreBuf.alloc", "DCache.fill", "DCache.st"} {
		if _, ok := r.WritePorts[port]; !ok {
			t.Errorf("report missing write port %s", port)
		}
	}
}

func TestPAVFsAreSane(t *testing.T) {
	res, err := Run(workload.Lattice(8), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	check := func(m map[string]float64, what string) {
		for k, v := range m {
			if v < 0 || v > 1 {
				t.Errorf("%s %s = %v out of [0,1]", what, k, v)
			}
		}
	}
	check(res.Report.ReadPorts, "read port")
	check(res.Report.WritePorts, "write port")
	for k, v := range res.Report.StructAVF {
		if v < 0 || v > 1 {
			t.Errorf("struct AVF %s = %v", k, v)
		}
	}
	// A load-heavy kernel must actually exercise the cache read port.
	if res.Report.ReadPorts["DCache.ld"] == 0 {
		t.Error("lattice kernel produced no ACE cache reads")
	}
	// The fetch path carries every ACE instruction: its fill pAVF should
	// be the largest port rate in a scalar machine.
	if res.Report.WritePorts["FetchQ.fill"] < res.Report.WritePorts["StoreBuf.alloc"] {
		t.Error("fetch fill rate below store-buffer alloc rate")
	}
}

func TestDeadCodeLowersACEFraction(t *testing.T) {
	cfgLo := workload.DefaultSynth("lo", 7)
	cfgLo.DeadFrac = 0
	cfgHi := cfgLo
	cfgHi.Name = "hi"
	cfgHi.DeadFrac = 0.5
	lo, err := Run(workload.Synthetic(cfgLo), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Run(workload.Synthetic(cfgHi), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if hi.ACEInstrFraction >= lo.ACEInstrFraction {
		t.Fatalf("dead code did not lower ACE fraction: %v vs %v",
			hi.ACEInstrFraction, lo.ACEInstrFraction)
	}
	// And the IQ pAVFs should drop with it.
	if hi.Report.ReadPorts["IQ.issue"] >= lo.Report.ReadPorts["IQ.issue"] {
		t.Fatalf("IQ issue pAVF did not drop: %v vs %v",
			hi.Report.ReadPorts["IQ.issue"], lo.Report.ReadPorts["IQ.issue"])
	}
}

func TestWorkloadsProduceDistinctPAVFs(t *testing.T) {
	a, err := Run(workload.Lattice(8), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(workload.MD5Like(200), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The register-only kernel has (almost) no cache traffic; the
	// lattice kernel is load-heavy.
	if b.Report.ReadPorts["DCache.ld"] >= a.Report.ReadPorts["DCache.ld"] {
		t.Fatalf("md5-like cache reads (%v) should be below lattice (%v)",
			b.Report.ReadPorts["DCache.ld"], a.Report.ReadPorts["DCache.ld"])
	}
}

func TestRunSuite(t *testing.T) {
	progs := workload.Suite(4, 42)
	results, avg, err := RunSuite(progs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	if avg.ReadPorts["RegFile.rd0"] <= 0 {
		t.Fatal("suite average has zero regfile read pAVF")
	}
	if _, _, err := RunSuite(nil, DefaultConfig()); err == nil {
		t.Fatal("empty suite should fail")
	}
}

func TestBitFieldAnalysisDifferentiatesFields(t *testing.T) {
	// A branch-free ALU-only program: imm field largely un-ACE relative
	// to op field when instructions use register forms.
	b := isa.NewBuilder("regonly")
	b.Imm(isa.ADDI, 1, 0, 3)
	b.Imm(isa.ADDI, 2, 0, 4)
	for i := 0; i < 50; i++ {
		b.R(isa.ADD, 3, 1, 2)
		b.R(isa.XOR, 1, 3, 2)
	}
	b.Out(1)
	b.Halt()
	res, err := Run(b.MustBuild(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Bit-field analysis keeps the IQ AVF below what whole-entry
	// (all-fields-ACE) tracking would report; with mostly register-form
	// instructions the imm field contributes almost nothing, so the IQ
	// AVF must sit measurably below the fetch queue's.
	iq := res.Report.StructAVF[StructIQ]
	if iq <= 0 {
		t.Fatal("IQ AVF is zero")
	}
	if iq >= res.Report.StructAVF[StructFetchQ] {
		t.Fatalf("expected field-resolved IQ AVF (%v) below FetchQ AVF (%v)",
			iq, res.Report.StructAVF[StructFetchQ])
	}
}

func TestBTBStructures(t *testing.T) {
	// A loop-heavy workload trains and re-reads the BTB.
	res, err := Run(workload.TransactionMix(16, 60), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.WritePorts["BTB.fill"] == 0 {
		t.Fatal("no BTB fills on a branchy workload")
	}
	if res.Report.ReadPorts["BTB.pred"] == 0 {
		t.Fatal("no BTB hits on a loop")
	}
	if _, ok := res.Report.StructAVF[StructBTBTag]; !ok {
		t.Fatal("BTB tag array missing from report")
	}
	// A branch-free straight-line program leaves the BTB silent.
	b := isa.NewBuilder("straight")
	b.Imm(isa.ADDI, 1, 0, 1)
	for i := 0; i < 30; i++ {
		b.R(isa.ADD, 1, 1, 1)
	}
	b.Out(1)
	b.Halt()
	quiet, err := Run(b.MustBuild(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Report.WritePorts["BTB.fill"] != 0 {
		t.Fatal("BTB filled without taken branches")
	}
}

func TestPointerChaseStallsPipeline(t *testing.T) {
	chase, err := Run(workload.PointerChase(16, 8), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	md5, err := Run(workload.MD5Like(100), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if chase.IPC >= md5.IPC {
		t.Fatalf("dependent loads should lower IPC: chase %.3f vs md5 %.3f",
			chase.IPC, md5.IPC)
	}
}

func TestSDCVirusTopsWorkloadsOnAVF(t *testing.T) {
	virus, err := Run(workload.SDCVirus(128), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	normal, err := Run(workload.Synthetic(workload.DefaultSynth("n", 4)), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if virus.Report.AvgStructAVF() <= normal.Report.AvgStructAVF() {
		t.Fatalf("virus avg struct AVF %.3f not above normal %.3f",
			virus.Report.AvgStructAVF(), normal.Report.AvgStructAVF())
	}
	if virus.Report.ReadPorts["FetchQ.drain"] <= normal.Report.ReadPorts["FetchQ.drain"] {
		t.Fatal("virus fetch pAVF not elevated")
	}
}

func TestLittleLawTracksLifetimeOnRealWorkload(t *testing.T) {
	res, err := Run(workload.SDCVirus(128), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// For the continuously-live structures the two estimators agree
	// within the unknown-tail gap.
	for _, s := range []string{StructRegFile, StructDCache} {
		full := res.Report.StructAVF[s]
		little := res.Report.LittleAVF[s]
		if little < 0.5*full {
			t.Errorf("%s: Little %v far below lifetime %v", s, little, full)
		}
	}
}

// TestGeometrySensitivity: port pAVFs are per-cycle rates, so machine
// geometry changes them — slower memory stretches cycles and dilutes the
// fetch-path rates, which is why the paper measures pAVFs on a detailed
// performance model rather than assuming them.
func TestGeometrySensitivity(t *testing.T) {
	p := workload.Lattice(8)
	fast := DefaultConfig()
	slow := DefaultConfig()
	slow.MissPenalty = 40
	slow.CacheLines = 2 // thrash
	a, err := Run(p, fast)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, slow)
	if err != nil {
		t.Fatal(err)
	}
	if b.IPC >= a.IPC {
		t.Fatalf("slow memory did not lower IPC: %v vs %v", b.IPC, a.IPC)
	}
	if b.Report.ReadPorts["RegFile.rd0"] >= a.Report.ReadPorts["RegFile.rd0"] {
		t.Fatalf("stalls did not dilute regfile read rate: %v vs %v",
			b.Report.ReadPorts["RegFile.rd0"], a.Report.ReadPorts["RegFile.rd0"])
	}
}

// TestIssueWidthAblation: a dual-issue machine retires faster and
// concentrates more ACE traffic into each cycle, raising port pAVFs —
// why port rates must be measured on a model of the actual machine.
func TestIssueWidthAblation(t *testing.T) {
	p := workload.MD5Like(150)
	narrow, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wideCfg := DefaultConfig()
	wideCfg.IssueWidth = 2
	wide, err := Run(p, wideCfg)
	if err != nil {
		t.Fatal(err)
	}
	if wide.IPC <= narrow.IPC {
		t.Fatalf("dual issue did not raise IPC: %v vs %v", wide.IPC, narrow.IPC)
	}
	if wide.IPC > 2 {
		t.Fatalf("IPC %v exceeds issue width", wide.IPC)
	}
	if wide.Report.WritePorts["FetchQ.fill"] <= narrow.Report.WritePorts["FetchQ.fill"] {
		t.Fatalf("fetch rate did not rise with width: %v vs %v",
			wide.Report.WritePorts["FetchQ.fill"], narrow.Report.WritePorts["FetchQ.fill"])
	}
	// Outputs unchanged: timing only.
	if len(wide.Out) != len(narrow.Out) {
		t.Fatal("issue width changed program output")
	}
}

// TestIssueWidthOneIsDefaultPath: the scalar path is bit-identical to the
// default config (protects the calibrated experiment numbers).
func TestIssueWidthOneIsDefaultPath(t *testing.T) {
	p := workload.Lattice(6)
	a, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.IssueWidth = 1
	b, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	for k, v := range a.Report.ReadPorts {
		if b.Report.ReadPorts[k] != v {
			t.Fatalf("port %s differs", k)
		}
	}
}

// TestBitFieldAblation quantifies §5.1's claim that Bit Field Analysis
// makes control-structure pAVFs "much less conservative": whole-entry
// tracking must report a strictly higher IQ AVF.
func TestBitFieldAblation(t *testing.T) {
	p := workload.Synthetic(workload.DefaultSynth("abl", 5))
	fields, err := Run(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	whole := DefaultConfig()
	whole.WholeEntryIQ = true
	coarse, err := Run(p, whole)
	if err != nil {
		t.Fatal(err)
	}
	if fields.Report.StructAVF[StructIQ] >= coarse.Report.StructAVF[StructIQ] {
		t.Fatalf("field analysis did not reduce IQ AVF: %v vs %v",
			fields.Report.StructAVF[StructIQ], coarse.Report.StructAVF[StructIQ])
	}
	// Timing is untouched by the tracking mode.
	if fields.Cycles != coarse.Cycles {
		t.Fatal("ablation changed timing")
	}
	t.Logf("IQ AVF: fields %.4f vs whole-entry %.4f (%.0f%% lower)",
		fields.Report.StructAVF[StructIQ], coarse.Report.StructAVF[StructIQ],
		100*(1-fields.Report.StructAVF[StructIQ]/coarse.Report.StructAVF[StructIQ]))
}
