// Blocked multi-workload evaluation: the SoA kernel behind batch sweeps.
//
// Plan.Eval walks the full CSR index arrays (setOff/setIDs/fwdIdx/bwdIdx)
// once per workload, so a 1000-workload sweep streams the same plan
// indices 1000 times. The blocked kernel instead lays W workloads'
// environments out as an EnvMatrix in structure-of-arrays order —
// term-major, workload-lane-minor, so all W values of one term sit in one
// contiguous row — and traverses the plan ONCE per block: every subterm
// set is summed across all lanes before the next set's indices are
// touched, and the per-vertex MIN pass reads fwdIdx/bwdIdx once for all W
// workloads. Per-workload cost drops to the arithmetic itself; the index
// traffic is amortized W ways (the positional-popcount blocking idea,
// applied to saturating sums).
//
// The kernel replays pavf's arithmetic exactly — per-lane sums add terms
// in ascending TermID order and saturate at exactly 1.0, after which the
// lane is excluded from further adds just as Set.Eval's break stops its
// scalar sum — so EvalBlock results are bit-identical to per-workload
// Eval for every lane, every block width, and every ragged tail.

package sweep

import (
	"fmt"

	"seqavf/internal/core"
	"seqavf/internal/pavf"
)

// DefaultBlockSize is the lane width used when Options.BlockSize is 0:
// 16 lanes make every term row two cache lines of float64, wide enough to
// amortize the plan traversal and small enough that the scratch matrix
// (NumSets x 16) stays cache-resident for typical plans.
const DefaultBlockSize = 16

// EnvMatrix holds a block of per-workload term environments in SoA order:
// term-major, workload-lane-minor, so vals[t*lanes : (t+1)*lanes] is term
// t's pAVF across every lane. Build it with Reset (from workloads, with
// full input validation) or ResetEnvs (from prebuilt environments); the
// SoA buffer is reused across Resets, so one matrix per worker serves a
// whole sweep. The zero value is an empty matrix ready for Reset.
type EnvMatrix struct {
	lanes int
	terms int
	vals  []float64
	// envs are the per-lane environments the matrix was transposed from;
	// they are freshly allocated by Reset (never pooled) because the
	// Results evaluated from this block adopt them.
	envs []pavf.Env
}

// Lanes returns the number of workload lanes in the matrix.
func (m *EnvMatrix) Lanes() int { return m.lanes }

// Terms returns the number of terms per lane (the universe length).
func (m *EnvMatrix) Terms() int { return m.terms }

// Env returns lane w's environment (the one its Result adopts).
func (m *EnvMatrix) Env(w int) pavf.Env { return m.envs[w] }

// At returns term id's value in lane w.
func (m *EnvMatrix) At(id pavf.TermID, w int) float64 {
	return m.vals[int(id)*m.lanes+w]
}

// Reset rebuilds the matrix for one block of workloads against a: each
// lane goes through the same fused CheckInputs+BuildEnv the scalar path
// uses (core.Analyzer.CheckedEnv), then pavf.Env.Validate gates the
// result — a NaN, Inf, or out-of-range pAVF is rejected here, at build
// time, and never reaches the kernel. Errors name the offending
// workload. The SoA buffer is reused; the per-lane environments are
// fresh allocations.
func (m *EnvMatrix) Reset(a *core.Analyzer, ws []Workload) error {
	envs := make([]pavf.Env, len(ws))
	for i, w := range ws {
		env, err := a.CheckedEnv(w.Inputs)
		if err != nil {
			return fmt.Errorf("sweep: workload %q: %w", w.Name, err)
		}
		if err := env.Validate(); err != nil {
			return fmt.Errorf("sweep: workload %q: %w", w.Name, err)
		}
		envs[i] = env
	}
	m.adopt(envs)
	return nil
}

// ResetEnvs rebuilds the matrix from prebuilt environments. Every lane
// must have the same length and pass pavf.Env.Validate; a ragged or
// non-finite lane is refused so the kernel never indexes out of range or
// propagates NaN.
func (m *EnvMatrix) ResetEnvs(envs []pavf.Env) error {
	var terms int
	if len(envs) > 0 {
		terms = len(envs[0])
	}
	for w, env := range envs {
		if len(env) != terms {
			return fmt.Errorf("sweep: env matrix lane %d has %d terms, lane 0 has %d", w, len(env), terms)
		}
		if err := env.Validate(); err != nil {
			return fmt.Errorf("sweep: env matrix lane %d: %w", w, err)
		}
	}
	m.adopt(envs)
	return nil
}

// adopt transposes validated environments into the SoA buffer.
func (m *EnvMatrix) adopt(envs []pavf.Env) {
	lanes := len(envs)
	terms := 0
	if lanes > 0 {
		terms = len(envs[0])
	}
	m.lanes, m.terms, m.envs = lanes, terms, envs
	need := lanes * terms
	if cap(m.vals) < need {
		m.vals = make([]float64, need)
	} else {
		m.vals = m.vals[:need]
	}
	for t := 0; t < terms; t++ {
		row := m.vals[t*lanes : (t+1)*lanes]
		for w := 0; w < lanes; w++ {
			row[w] = envs[w][t]
		}
	}
}

// ScratchLen returns the scratch length EvalBlock needs for a given lane
// count: an SoA running-sum row per subterm set, plus one value per
// unique (fwd, bwd) slot pair for the lane currently being broadcast.
func (p *Plan) ScratchLen(lanes int) int {
	return p.NumSets()*lanes + len(p.pairFwd)
}

// EvalBlock resolves every vertex AVF for every lane of m in one plan
// traversal, writing lane w's per-vertex AVFs into out[w]. scratch needs
// ScratchLen(Lanes()) entries (per-set running sums followed by the
// vertex-major AVF staging rows, both SoA like the matrix). Shape
// mismatches are errors, not panics. Results are bit-identical to
// evaluating each lane's environment through Eval.
func (p *Plan) EvalBlock(m *EnvMatrix, scratch []float64, out [][]float64) error {
	if m.lanes == 0 {
		return nil
	}
	if want := p.Analyzer.Universe().Len(); m.terms != want {
		return fmt.Errorf("sweep: env matrix has %d terms but design %q has a universe of %d",
			m.terms, p.Analyzer.G.Design.Name, want)
	}
	if len(out) != m.lanes {
		return fmt.Errorf("sweep: %d output vectors for %d lanes", len(out), m.lanes)
	}
	nv := p.NumVerts()
	for w, o := range out {
		if len(o) != nv {
			return fmt.Errorf("sweep: output vector %d has %d entries, plan has %d vertices", w, len(o), nv)
		}
	}
	if need := p.ScratchLen(m.lanes); len(scratch) < need {
		return fmt.Errorf("sweep: scratch has %d entries, block kernel needs %d", len(scratch), need)
	}
	p.evalEnvBlock(m, scratch, out)
	return nil
}

// evalEnvBlock is the blocked kernel proper. Pass 1 streams the CSR set
// table once, accumulating all lanes of each set before moving on; the
// per-lane saturation `min(1, sum+term)` is bit-identical to Set.Eval's
// capped break — sums of validated in-[0,1] terms are monotone, and a
// lane pinned at exactly 1.0 stays there for every later add. Pass 2
// exploits MIN sharing: vertices with the same (fwd, bwd) slot pair
// resolve identically, so each lane computes one MIN per unique pair
// (an unknown side is a conservative 1.0, and set sums never exceed 1,
// so the MIN collapses to the known side) and then broadcasts through
// pairIdx with one sequential write per vertex. Both passes replay
// evalEnv's arithmetic exactly.
func (p *Plan) evalEnvBlock(m *EnvMatrix, scratch []float64, out [][]float64) {
	lanes := m.lanes
	vals := m.vals
	nSets := len(p.setOff) - 1
	sums := scratch[:nSets*lanes]
	for s := 0; s < nSets; s++ {
		row := sums[s*lanes : s*lanes+lanes]
		for w := range row {
			row[w] = 0
		}
		for _, id := range p.setIDs[p.setOff[s]:p.setOff[s+1]] {
			col := vals[int(id)*lanes : int(id)*lanes+lanes]
			col = col[:len(row)]
			for w := range row {
				row[w] = min(1, row[w]+col[w])
			}
		}
	}
	nPairs := len(p.pairFwd)
	pv := scratch[nSets*lanes : nSets*lanes+nPairs]
	pairFwd, pairBwd := p.pairFwd, p.pairBwd
	runPair, runOff := p.runPair, p.runOff
	for w := 0; w < lanes; w++ {
		for pi := 0; pi < nPairs; pi++ {
			fi, bi := pairFwd[pi], pairBwd[pi]
			switch {
			case fi >= 0 && bi >= 0:
				pv[pi] = min(sums[int(fi)*lanes+w], sums[int(bi)*lanes+w])
			case fi >= 0:
				pv[pi] = sums[int(fi)*lanes+w]
			case bi >= 0:
				pv[pi] = sums[int(bi)*lanes+w]
			default:
				pv[pi] = 1
			}
		}
		o := out[w]
		for r, pi := range runPair {
			c := pv[pi]
			seg := o[runOff[r]:runOff[r+1]]
			for i := range seg {
				seg[i] = c
			}
		}
	}
}

// EvalBlockInto evaluates one block of workloads through the plan,
// writing a full core.Result per workload into dst (index-aligned with
// ws). m is reset for the block — its SoA buffer is reused, so one matrix
// per worker serves a whole sweep; a nil m uses a throwaway. scratch must
// hold ScratchLen(len(ws)) entries (nil allocates). Each Result's AVF
// vector is a view into one fresh per-block backing array, and its Env is
// the lane's freshly built environment; Results are bit-identical to
// per-workload Eval, field for field.
func (p *Plan) EvalBlockInto(ws []Workload, m *EnvMatrix, scratch []float64, dst []*core.Result) error {
	if len(dst) != len(ws) {
		return fmt.Errorf("sweep: %d result slots for %d workloads", len(dst), len(ws))
	}
	if m == nil {
		m = new(EnvMatrix)
	}
	if err := m.Reset(p.Analyzer, ws); err != nil {
		return err
	}
	lanes := len(ws)
	if lanes == 0 {
		return nil
	}
	if need := p.ScratchLen(lanes); len(scratch) < need {
		scratch = make([]float64, need)
	}
	nv := p.NumVerts()
	buf := make([]float64, lanes*nv)
	out := make([][]float64, lanes)
	for w := range out {
		out[w] = buf[w*nv : (w+1)*nv : (w+1)*nv]
	}
	if err := p.EvalBlock(m, scratch, out); err != nil {
		return err
	}
	for w := range ws {
		dst[w] = &core.Result{
			Analyzer:   p.Analyzer,
			Inputs:     ws[w].Inputs,
			Env:        m.envs[w],
			Exprs:      p.exprs,
			AVF:        out[w],
			Visited:    p.visited,
			Iterations: 1,
			Converged:  true,
		}
	}
	return nil
}
