package sweep

import (
	"fmt"
	"math"
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/graph/graphtest"
	"seqavf/internal/stats"
)

// ulpClose reports whether a and b agree within k ulps at their
// magnitude — the tolerance for values that are the same sum
// reassociated, where each of the ~n non-negative additions contributes
// at most one rounding.
func ulpClose(a, b, k float64) bool {
	diff := math.Abs(a - b)
	if diff == 0 {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	ulp := math.Nextafter(scale, math.Inf(1)) - scale
	return diff <= k*ulp
}

// TestPropertyIntervalDifferential is the time-resolved differential
// property test: on 200 seeded random designs, a T-window interval
// sweep must
//
//  1. produce each window's result bit-identical to an independent
//     single-window sweep of the same inputs — at every block width,
//     including scalar (1), ragged (2, 3), wider than the lane count
//     (16 > T), exactly T, and T+7 — because windows are just lanes and
//     the kernel contract is EvalBlock == Eval bit for bit; and
//  2. satisfy the integration identity: the time-weighted mean of the
//     per-window chip AVFs equals the chip AVF of the time-weighted
//     mean AVF vector (WholeRunAVF), since Summarize is linear in the
//     AVF vector. The two differ only by float reassociation over
//     non-negative terms, so they must agree to a few thousand ulps.
func TestPropertyIntervalDifferential(t *testing.T) {
	const seeds = 200
	engines := make(map[int]*Engine)
	engine := func(width int) *Engine {
		if e, ok := engines[width]; ok {
			return e
		}
		e := New(Options{Workers: 2, BlockSize: width, CacheSize: 2})
		engines[width] = e
		return e
	}
	scalarRef := New(Options{Workers: 1, BlockSize: -1, CacheSize: 2})

	for seed := uint64(0); seed < seeds; seed++ {
		a, res, _ := solved(t, graphtest.Small(seed), seed^0x1eaf)
		nT := 3 + int(seed%6) // 3..8 windows
		rng := stats.New(seed ^ 0x717e)

		w := IntervalWorkload{Name: fmt.Sprintf("seed%d", seed)}
		cursor := uint64(0)
		for wi := 0; wi < nT; wi++ {
			if rng.Float64() < 0.3 {
				cursor += 1 + uint64(40*rng.Float64()) // interior gap
			}
			span := 50 + uint64(200*rng.Float64())
			w.Windows = append(w.Windows, WindowSpan{Start: cursor, End: cursor + span})
			w.Inputs = append(w.Inputs, randomInputs(a, seed*1009+uint64(wi)))
			cursor += span
		}

		// Reference: each window swept independently through the scalar
		// kernel, one single-workload batch at a time.
		ref := make([]*core.Result, nT)
		for wi := 0; wi < nT; wi++ {
			b, err := scalarRef.Sweep(res, []Workload{{Name: "solo", Inputs: w.Inputs[wi]}})
			if err != nil {
				t.Fatalf("seed %d: reference sweep window %d: %v", seed, wi, err)
			}
			ref[wi] = b.Results[0]
		}

		var summary IntervalSummary
		for _, width := range []int{1, 2, 3, 16, nT, nT + 7} {
			b, err := engine(width).SweepIntervals(res, []IntervalWorkload{w})
			if err != nil {
				t.Fatalf("seed %d width %d: SweepIntervals: %v", seed, width, err)
			}
			iw := b.Workloads[0]
			if len(iw.Results) != nT || b.WindowsEvaluated != nT {
				t.Fatalf("seed %d width %d: %d results for %d windows", seed, width, len(iw.Results), nT)
			}
			for wi := 0; wi < nT; wi++ {
				got, want := iw.Results[wi].AVF, ref[wi].AVF
				for v := range got {
					if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
						t.Fatalf("seed %d width %d window %d vertex %d: packed lane %v != independent sweep %v (must be bit-identical)",
							seed, width, wi, v, got[v], want[v])
					}
				}
			}
			summary = iw.Summary
		}

		// Integration identity on the (width-independent) results.
		whole := WholeRunAVF(w.Windows, ref)
		avg := *ref[0]
		avg.AVF = whole
		chipOfMean := avg.Summarize().WeightedSeqAVF
		if !ulpClose(summary.TimeWeightedMean, chipOfMean, 4096) {
			t.Fatalf("seed %d: time-weighted mean of window chip AVFs %v != chip AVF of whole-run vector %v (diff %v)",
				seed, summary.TimeWeightedMean, chipOfMean, summary.TimeWeightedMean-chipOfMean)
		}
		for wi, avf := range summary.ChipAVF {
			if !(avf >= 0 && avf <= 1) {
				t.Fatalf("seed %d window %d chip AVF %v out of [0,1]", seed, wi, avf)
			}
		}
	}
}
