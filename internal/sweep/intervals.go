package sweep

// Time-resolved (interval) sweeps: a workload measured over T time
// windows is evaluated as T lanes of one batch sharing a single
// compiled plan. The windows ride the existing blocked kernel — each
// window's inputs are one more lane in the EnvMatrix — so a T-window
// sweep costs one plan compile plus T lane evaluations, and every
// window's result is bit-identical to a standalone single-window sweep
// (the kernel contract EvalBlock == Eval, lane by lane).

import (
	"context"
	"fmt"
	"time"

	"seqavf/internal/core"
)

// WindowSpan is a half-open cycle range [Start, End).
type WindowSpan struct {
	Start uint64
	End   uint64
}

// Span returns the window length in cycles.
func (w WindowSpan) Span() uint64 { return w.End - w.Start }

// IntervalWorkload is one workload's time-resolved measurements: the
// window geometry and one pAVF input table per window (index-aligned).
type IntervalWorkload struct {
	Name    string
	Windows []WindowSpan
	Inputs  []*core.Inputs
}

// validate checks the window geometry the rest of the pipeline assumes:
// at least one window, inputs aligned with windows, every span
// non-empty, windows ordered and non-overlapping.
func (w *IntervalWorkload) validate() error {
	if len(w.Windows) == 0 {
		return fmt.Errorf("sweep: interval workload %q has no windows", w.Name)
	}
	if len(w.Inputs) != len(w.Windows) {
		return fmt.Errorf("sweep: interval workload %q has %d input tables for %d windows",
			w.Name, len(w.Inputs), len(w.Windows))
	}
	for i, win := range w.Windows {
		if win.Start >= win.End {
			return fmt.Errorf("sweep: interval workload %q window %d span [%d,%d) is empty",
				w.Name, i, win.Start, win.End)
		}
		if i > 0 && win.Start < w.Windows[i-1].End {
			return fmt.Errorf("sweep: interval workload %q window %d starts at %d, inside window %d",
				w.Name, i, win.Start, i-1)
		}
		if w.Inputs[i] == nil {
			return fmt.Errorf("sweep: interval workload %q window %d has nil inputs", w.Name, i)
		}
	}
	return nil
}

// IntervalSummary aggregates a workload's AVF time series: the
// per-window chip AVF (the design-wide weighted sequential AVF), its
// time-weighted mean, and where and how sharply it peaks. PeakToMean is
// the paper-style "peak/average" vulnerability ratio — a run with phase
// behavior shows a ratio well above 1, which a whole-run average hides.
type IntervalSummary struct {
	// ChipAVF[w] is window w's design-wide weighted sequential AVF.
	ChipAVF []float64
	// TimeWeightedMean weights each window by its cycle span; it equals
	// the whole-run chip AVF of the time-weighted-mean input (the
	// identity the differential tests pin).
	TimeWeightedMean float64
	PeakWindow       int
	PeakChipAVF      float64
	// PeakToMean is PeakChipAVF / TimeWeightedMean (0 when the mean is 0).
	PeakToMean float64
}

// IntervalResult is one workload's time-resolved sweep outcome:
// per-window solver results (index-aligned with Windows) and the
// summarized time series.
type IntervalResult struct {
	Name    string
	Windows []WindowSpan
	Results []*core.Result
	Summary IntervalSummary
}

// IntervalBatch is the outcome of one interval sweep.
type IntervalBatch struct {
	Plan      *Plan
	Workloads []IntervalResult
	// WindowsEvaluated counts lanes across all workloads.
	WindowsEvaluated int
	Elapsed          time.Duration
}

// SweepIntervals evaluates every workload's windows through res's
// compiled plan. See SweepIntervalsContext.
func (e *Engine) SweepIntervals(res *core.Result, workloads []IntervalWorkload) (*IntervalBatch, error) {
	return e.SweepIntervalsContext(context.Background(), res, workloads)
}

// SweepIntervalsContext flattens the workloads' windows into lanes of
// one batch — window w of workload k becomes lane "name#w" — runs them
// through SweepContext (one shared plan, blocked kernel, worker pool,
// cancellation), then reshapes the lane results back window-major per
// workload and summarizes each time series.
func (e *Engine) SweepIntervalsContext(ctx context.Context, res *core.Result, workloads []IntervalWorkload) (*IntervalBatch, error) {
	if len(workloads) == 0 {
		return nil, fmt.Errorf("sweep: no interval workloads")
	}
	total := 0
	for i := range workloads {
		if err := workloads[i].validate(); err != nil {
			return nil, err
		}
		total += len(workloads[i].Windows)
	}
	lanes := make([]Workload, 0, total)
	for i := range workloads {
		w := &workloads[i]
		for wi, in := range w.Inputs {
			lanes = append(lanes, Workload{Name: fmt.Sprintf("%s#%d", w.Name, wi), Inputs: in})
		}
	}
	batch, err := e.SweepContext(ctx, res, lanes)
	if err != nil {
		return nil, err
	}
	out := &IntervalBatch{
		Plan:             batch.Plan,
		Workloads:        make([]IntervalResult, len(workloads)),
		WindowsEvaluated: total,
		Elapsed:          batch.Elapsed,
	}
	lane := 0
	for i := range workloads {
		w := &workloads[i]
		results := batch.Results[lane : lane+len(w.Windows)]
		lane += len(w.Windows)
		out.Workloads[i] = IntervalResult{
			Name:    w.Name,
			Windows: w.Windows,
			Results: results,
			Summary: summarizeIntervals(w.Windows, results),
		}
	}
	e.opts.Obs.Counter("sweep.windows_evaluated").Add(int64(total))
	e.opts.Obs.Counter("sweep.interval_batches").Inc()
	return out, nil
}

// summarizeIntervals reduces a window-major result series to its chip
// AVF time series and peak statistics.
func summarizeIntervals(spans []WindowSpan, results []*core.Result) IntervalSummary {
	s := IntervalSummary{ChipAVF: make([]float64, len(results))}
	var weighted, cycles float64
	for w, r := range results {
		avf := r.Summarize().WeightedSeqAVF
		s.ChipAVF[w] = avf
		span := float64(spans[w].Span())
		weighted += avf * span
		cycles += span
		if avf > s.PeakChipAVF || w == 0 {
			s.PeakChipAVF = avf
			s.PeakWindow = w
		}
	}
	if cycles > 0 {
		s.TimeWeightedMean = weighted / cycles
	}
	if s.TimeWeightedMean > 0 {
		s.PeakToMean = s.PeakChipAVF / s.TimeWeightedMean
	}
	return s
}

// WholeRunAVF integrates a window-major result series back to the
// whole-run per-vertex AVF vector: the time-weighted mean of the
// per-window AVF vectors. Because Result.Summarize is linear in the AVF
// vector, the chip AVF of this vector equals the time-weighted mean of
// the per-window chip AVFs (up to float reassociation) — the identity
// the differential property test verifies.
func WholeRunAVF(spans []WindowSpan, results []*core.Result) []float64 {
	if len(results) == 0 {
		return nil
	}
	out := make([]float64, len(results[0].AVF))
	var cycles float64
	for w, r := range results {
		span := float64(spans[w].Span())
		cycles += span
		for v, a := range r.AVF {
			out[v] += a * span
		}
	}
	if cycles > 0 {
		for v := range out {
			out[v] /= cycles
		}
	}
	return out
}
