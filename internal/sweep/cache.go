package sweep

import (
	"container/list"
	"sync"
)

// planCache is a mutex-guarded LRU of compiled plans keyed by design
// fingerprint. Compilation is cheap next to a solve but not free (one pass
// over every equation plus set interning); a server re-sweeping a rotating
// population of designs should pay it once per design, not once per batch.
type planCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *Plan
	entries map[uint64]*list.Element
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[uint64]*list.Element),
	}
}

// get returns the cached plan for fp (marking it most recently used), or
// nil.
func (c *planCache) get(fp uint64) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fp]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*Plan)
}

// put inserts p, evicting the least recently used plan beyond capacity.
func (c *planCache) put(p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[p.Fingerprint]; ok {
		el.Value = p
		c.order.MoveToFront(el)
		return
	}
	c.entries[p.Fingerprint] = c.order.PushFront(p)
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*Plan).Fingerprint)
	}
}

// len reports the number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
