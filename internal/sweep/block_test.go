package sweep

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/graph/graphtest"
	"seqavf/internal/pavf"
)

// blockWidths are the lane widths every blocked-path test sweeps:
// degenerate (1 = scalar), tiny, a ragged prime, the default, and wider
// than most test batches (so whole sweeps are one ragged block).
var blockWidths = []int{1, 2, 7, 16, 64}

// bitIdentical fails the test unless got and want match bit for bit —
// not within a tolerance; the blocked kernel must replay the scalar
// arithmetic exactly.
func bitIdentical(t *testing.T, ctxt string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d AVFs, want %d", ctxt, len(got), len(want))
	}
	for v := range got {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("%s: vertex %d = %x (%v), scalar %x (%v)",
				ctxt, v, math.Float64bits(got[v]), got[v], math.Float64bits(want[v]), want[v])
		}
	}
}

// TestPropertyBlockBitIdentity is the blocked kernel's bit-identity
// property test: on 200 seeded random designs, EvalBlock through the
// engine must reproduce the scalar per-workload Plan.Eval results bit
// for bit — for every tested lane width, for ragged tails (batch length
// not a multiple of the width), for widths wider than the batch, and for
// empty batches. Workload order is shuffled per width so result slots
// are checked positionally, and the engine runs two workers, so `go test
// -race` exercises concurrent block claims over one shared plan.
func TestPropertyBlockBitIdentity(t *testing.T) {
	const seeds = 200
	engines := make(map[int]*Engine, len(blockWidths))
	for _, w := range blockWidths {
		// ChunkSize 3 forces claims that are not block multiples, so the
		// engine's round-up-to-whole-blocks sharding is exercised too.
		engines[w] = New(Options{Workers: 2, BlockSize: w, ChunkSize: 3, CacheSize: 4})
	}
	for seed := uint64(0); seed < seeds; seed++ {
		_, res, _ := solved(t, graphtest.Small(seed), seed^0xb10cb10c)
		p, err := Compile(res)
		if err != nil {
			t.Fatalf("seed %d: Compile: %v", seed, err)
		}

		// 0..20 workloads: seed 0 exercises the empty batch.
		n := int(seed % 21)
		base := make([]Workload, n)
		for i := range base {
			base[i] = Workload{
				Name:   fmt.Sprintf("w%02d", i),
				Inputs: randomInputs(res.Analyzer, seed*31+uint64(i)),
			}
		}
		want := make(map[string]*core.Result, n)
		for _, w := range base {
			r, err := p.Eval(w.Inputs, nil)
			if err != nil {
				t.Fatalf("seed %d: scalar Eval(%s): %v", seed, w.Name, err)
			}
			want[w.Name] = r
		}

		for _, width := range blockWidths {
			// Deterministic per-width shuffle: block boundaries land on
			// different workloads than the scalar reference order.
			ws := make([]Workload, n)
			copy(ws, base)
			rot := int(seed+uint64(width)) % max(n, 1)
			ws = append(ws[rot:], ws[:rot]...)

			batch, err := engines[width].Sweep(res, ws)
			if err != nil {
				t.Fatalf("seed %d width %d: Sweep: %v", seed, width, err)
			}
			if len(batch.Results) != n {
				t.Fatalf("seed %d width %d: %d results for %d workloads", seed, width, len(batch.Results), n)
			}
			for i, r := range batch.Results {
				ref := want[batch.Names[i]]
				ctxt := fmt.Sprintf("seed %d width %d workload %s", seed, width, batch.Names[i])
				bitIdentical(t, ctxt, r.AVF, ref.AVF)
				if len(r.Env) != len(ref.Env) {
					t.Fatalf("%s: env has %d terms, scalar %d", ctxt, len(r.Env), len(ref.Env))
				}
				for id := range r.Env {
					if math.Float64bits(r.Env[id]) != math.Float64bits(ref.Env[id]) {
						t.Fatalf("%s: env term %d = %v, scalar %v", ctxt, id, r.Env[id], ref.Env[id])
					}
				}
			}
		}
	}
}

// TestEvalBlockDirect drives Plan.EvalBlock through its exported surface
// — EnvMatrix.ResetEnvs on prebuilt environments, explicit scratch and
// output buffers — and checks bit-identity against evalEnv directly,
// plus the shape-mismatch errors the engine relies on being errors
// rather than panics.
func TestEvalBlockDirect(t *testing.T) {
	a, res, in := solved(t, graphtest.Default(3), 7)
	p, err := Compile(res)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	envs := make([]pavf.Env, 5)
	for i := range envs {
		env, err := a.CheckedEnv(randomInputs(a, uint64(100+i)))
		if err != nil {
			t.Fatalf("CheckedEnv: %v", err)
		}
		envs[i] = env
	}
	var m EnvMatrix
	if err := m.ResetEnvs(envs); err != nil {
		t.Fatalf("ResetEnvs: %v", err)
	}
	if m.Lanes() != len(envs) || m.Terms() != a.Universe().Len() {
		t.Fatalf("matrix %dx%d, want %dx%d", m.Lanes(), m.Terms(), len(envs), a.Universe().Len())
	}
	for w, env := range envs {
		for id := range env {
			if m.At(pavf.TermID(id), w) != env[id] {
				t.Fatalf("At(%d,%d) = %v, env %v", id, w, m.At(pavf.TermID(id), w), env[id])
			}
		}
	}
	out := make([][]float64, len(envs))
	for w := range out {
		out[w] = make([]float64, p.NumVerts())
	}
	scratch := make([]float64, p.ScratchLen(len(envs)))
	if err := p.EvalBlock(&m, scratch, out); err != nil {
		t.Fatalf("EvalBlock: %v", err)
	}
	single := make([]float64, p.NumSets())
	avf := make([]float64, p.NumVerts())
	for w, env := range envs {
		p.evalEnv(env, single, avf)
		bitIdentical(t, fmt.Sprintf("lane %d", w), out[w], avf)
	}

	// Shape mismatches must come back as errors.
	if err := p.EvalBlock(&m, scratch, out[:3]); err == nil {
		t.Error("EvalBlock accepted too few output vectors")
	}
	if err := p.EvalBlock(&m, scratch[:1], out); err == nil {
		t.Error("EvalBlock accepted undersized scratch")
	}
	short := [][]float64{out[0], out[1], out[2], out[3], out[4][:1]}
	if err := p.EvalBlock(&m, scratch, short); err == nil {
		t.Error("EvalBlock accepted a short output vector")
	}
	if err := m.ResetEnvs([]pavf.Env{envs[0], envs[1][:2]}); err == nil {
		t.Error("ResetEnvs accepted ragged environments")
	}
	bad := append(pavf.Env(nil), envs[0]...)
	bad[1] = math.NaN()
	if err := m.ResetEnvs([]pavf.Env{bad}); err == nil {
		t.Error("ResetEnvs accepted a NaN environment")
	}

	// A matrix from a different design's universe is refused.
	_, res2, _ := solved(t, graphtest.Default(4), 7)
	p2, err := Compile(res2)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if p2.Analyzer.Universe().Len() != a.Universe().Len() {
		if err := p2.EvalBlock(&m, scratch, out); err == nil {
			t.Error("EvalBlock accepted a matrix from a different universe")
		}
	}
	_ = in
}

// TestEvalBlockIntoErrors: the block entry point the engine calls must
// reject slot/workload length mismatches and name the offending workload
// when a lane's inputs are bad.
func TestEvalBlockIntoErrors(t *testing.T) {
	a, res, _ := solved(t, graphtest.Small(5), 1)
	p, err := Compile(res)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	ws := []Workload{
		{Name: "good", Inputs: randomInputs(a, 1)},
		{Name: "bad", Inputs: core.NewInputs()}, // missing every port pAVF
	}
	dst := make([]*core.Result, 1)
	if err := p.EvalBlockInto(ws, nil, nil, dst); err == nil {
		t.Error("EvalBlockInto accepted mismatched dst length")
	}
	dst = make([]*core.Result, 2)
	err = p.EvalBlockInto(ws, nil, nil, dst)
	if err == nil {
		t.Fatal("EvalBlockInto accepted a workload with missing port pAVFs")
	}
	if !strings.Contains(err.Error(), `"bad"`) {
		t.Fatalf("error %q does not name the failing workload", err)
	}
}
