package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"seqavf/internal/core"
	"seqavf/internal/obs"
)

// Options configure an Engine. The zero value is usable: all cores, auto
// chunking, an 8-plan cache, no telemetry.
type Options struct {
	// Workers bounds the evaluation goroutines. 0 uses GOMAXPROCS; 1 runs
	// serially. Results are identical either way.
	Workers int
	// ChunkSize is the number of workloads one worker claims at a time
	// (the shard granularity). 0 picks a size that gives each worker ~4
	// claims per batch, amortizing the claim overhead while keeping the
	// tail balanced. When the blocked kernel is active the chunk is
	// rounded up to a multiple of BlockSize so claims shard by whole
	// blocks and only the batch tail runs ragged.
	ChunkSize int
	// BlockSize is the blocked-kernel lane width: workloads evaluated
	// together per plan traversal (Plan.EvalBlock). 0 uses
	// DefaultBlockSize (16); 1 (or any negative value) forces the scalar
	// per-workload path. Results are bit-identical either way — the knob
	// trades scratch-matrix footprint against index-traffic amortization.
	BlockSize int
	// CacheSize bounds the compiled-plan LRU (by design fingerprint).
	// 0 means 8.
	CacheSize int
	// Obs receives engine telemetry: compile/eval spans, plan cache
	// hit/miss counters, workload counters, and a workloads/sec gauge.
	// nil disables instrumentation.
	Obs *obs.Registry
	// Store is an optional second-level plan store behind the in-memory
	// LRU (typically an *artifact.Store): a memory miss consults it
	// before compiling, and fresh compiles are persisted back. Store
	// failures never fail a sweep — they are counted and the engine
	// falls through to a fresh compile.
	Store PlanStore
}

// PlanStore is the second-level plan cache contract (satisfied by
// internal/artifact.Store without an import cycle). GetPlan returns
// (nil, nil) on a clean miss; a returned plan must be bit-identical in
// behavior to Compile(res). The context carries request-scoped trace
// state (the store parents its restore span under it), not
// cancellation: restores are short and run to completion.
type PlanStore interface {
	GetPlan(ctx context.Context, res *core.Result) (*Plan, error)
	PutPlan(res *core.Result, p *Plan) error
}

// Engine evaluates batches of workloads through compiled plans. One Engine
// serves any number of designs concurrently; plans are cached LRU by
// design fingerprint.
type Engine struct {
	opts  Options
	cache *planCache
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	if opts.CacheSize <= 0 {
		opts.CacheSize = 8
	}
	return &Engine{opts: opts, cache: newPlanCache(opts.CacheSize)}
}

// Workload pairs a name with its measured pAVF tables.
type Workload struct {
	Name   string
	Inputs *core.Inputs
}

// Batch is the outcome of one sweep: per-workload results (index-aligned
// with the submitted workloads) plus the plan and timing.
type Batch struct {
	Plan *Plan
	// Names and Results are index-aligned with the submitted workloads.
	Names   []string
	Results []*core.Result
	// Elapsed covers evaluation only (compile time is cached and reported
	// on the compile span / counters instead).
	Elapsed time.Duration
}

// WorkloadsPerSec returns the batch evaluation throughput.
func (b *Batch) WorkloadsPerSec() float64 {
	if b.Elapsed <= 0 {
		return 0
	}
	return float64(len(b.Results)) / b.Elapsed.Seconds()
}

// Plan returns the compiled plan for res's design: from the in-memory
// LRU on hit, else from the second-level store (decoded plans enter the
// LRU like compiled ones), else by compiling — and a fresh compile is
// persisted back to the store so the next process starts warm.
func (e *Engine) Plan(res *core.Result) (*Plan, error) {
	return e.PlanContext(context.Background(), res)
}

// PlanContext is Plan with request-scoped tracing: the "sweep.plan"
// span nests under ctx's current span (the server's per-request root),
// its "source" attribute records how the plan was obtained (cache /
// store / compile), and cold compiles feed the
// sweep.plan_compile_seconds latency histogram.
func (e *Engine) PlanContext(ctx context.Context, res *core.Result) (*Plan, error) {
	fp := res.Analyzer.Fingerprint()
	sp := e.opts.Obs.StartSpanContext(ctx, "sweep.plan")
	defer sp.End()
	if p := e.cache.get(fp); p != nil {
		e.opts.Obs.Counter("sweep.plan_cache_hits").Inc()
		sp.SetAttr("source", "cache")
		return p, nil
	}
	e.opts.Obs.Counter("sweep.plan_cache_misses").Inc()
	if e.opts.Store != nil {
		p, err := e.opts.Store.GetPlan(obs.ContextWithSpan(ctx, sp), res)
		switch {
		case err != nil:
			// A corrupt or version-skewed artifact must not fail the
			// sweep: count it and recompile (the Put below overwrites
			// the bad entry).
			e.opts.Obs.Counter("sweep.plan_store_errors").Inc()
		case p != nil:
			e.opts.Obs.Counter("sweep.plan_store_hits").Inc()
			sp.SetAttr("source", "store")
			e.cache.put(p)
			return p, nil
		default:
			e.opts.Obs.Counter("sweep.plan_store_misses").Inc()
		}
	}
	csp := sp.Child("compile")
	start := time.Now()
	p, err := Compile(res)
	if err != nil {
		csp.End()
		return nil, err
	}
	e.opts.Obs.FixedHistogram("sweep.plan_compile_seconds", obs.LatencyBuckets).
		Observe(time.Since(start).Seconds())
	st := p.Stats()
	csp.SetAttr("vertices", st.Vertices)
	csp.SetAttr("unique_sets", st.UniqueSets)
	csp.SetAttr("set_refs", st.SetRefs)
	csp.End()
	sp.SetAttr("source", "compile")
	e.opts.Obs.Counter("sweep.plan_compiles").Inc()
	e.cache.put(p)
	if e.opts.Store != nil {
		if err := e.opts.Store.PutPlan(res, p); err != nil {
			e.opts.Obs.Counter("sweep.plan_store_put_errors").Inc()
		}
	}
	return p, nil
}

// CachedPlans reports the number of plans currently cached.
func (e *Engine) CachedPlans() int { return e.cache.len() }

// Sweep evaluates every workload through res's compiled plan. Workloads
// are sharded into chunks claimed by a bounded worker pool; each worker
// reuses one subterm scratch buffer across its chunk. The first workload
// error aborts the batch.
func (e *Engine) Sweep(res *core.Result, workloads []Workload) (*Batch, error) {
	return e.SweepContext(context.Background(), res, workloads)
}

// SweepContext is Sweep with cancellation: when ctx is cancelled (an
// abandoned HTTP request, a server drain deadline), every worker stops at
// its next chunk claim instead of burning CPU through the rest of the
// batch, and the batch fails with the context's cause. Workloads already
// evaluated are discarded — a cancelled sweep returns no partial batch.
func (e *Engine) SweepContext(ctx context.Context, res *core.Result, workloads []Workload) (*Batch, error) {
	plan, err := e.PlanContext(ctx, res)
	if err != nil {
		return nil, err
	}
	n := len(workloads)
	workers := e.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	block := e.opts.BlockSize
	switch {
	case block == 0:
		block = DefaultBlockSize
	case block < 1:
		block = 1
	}
	chunk := e.opts.ChunkSize
	if chunk <= 0 {
		chunk = (n + workers*4 - 1) / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
	}
	if block > 1 {
		// Shard by whole blocks: every claim except the batch tail is a
		// multiple of the lane width, so ragged blocks appear at most
		// once per sweep instead of once per claim.
		chunk = (chunk + block - 1) / block * block
	}

	sp := e.opts.Obs.StartSpanContext(ctx, "sweep.eval")
	sp.SetAttr("workloads", n)
	sp.SetAttr("workers", workers)
	sp.SetAttr("chunk", chunk)
	sp.SetAttr("block", block)
	// Resolved once per batch (one registry-map lookup), observed once
	// per kernel invocation — the per-block cost inside the worker loop
	// is two clock reads and one histogram mutex.
	var blockHist *obs.Histogram
	if block > 1 {
		blockHist = e.opts.Obs.FixedHistogram("sweep.block_eval_seconds", obs.LatencyBuckets)
	}
	start := time.Now()

	batch := &Batch{
		Plan:    plan,
		Names:   make([]string, n),
		Results: make([]*core.Result, n),
	}
	for i, w := range workloads {
		batch.Names[i] = w.Name
	}

	done := ctx.Done()
	var next atomic.Int64
	var blocks atomic.Int64
	var firstErr atomic.Value // error
	run := func() {
		// Per-worker scratch, pooled across every claim the worker makes:
		// the scalar path needs one subterm row, the blocked path a
		// NumSets x block matrix plus the worker's own EnvMatrix (its SoA
		// buffer is reused across blocks; the per-lane environments are
		// fresh because Results adopt them).
		var m EnvMatrix
		scratchLanes := 1
		if block > 1 {
			scratchLanes = block
		}
		scratch := make([]float64, plan.ScratchLen(scratchLanes))
		for {
			select {
			case <-done:
				firstErr.CompareAndSwap(nil, fmt.Errorf("sweep: cancelled: %w", context.Cause(ctx)))
				return
			default:
			}
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n || firstErr.Load() != nil {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if block > 1 {
				for b := lo; b < hi; b += block {
					be := b + block
					if be > hi {
						be = hi
					}
					bstart := time.Now()
					if err := plan.EvalBlockInto(workloads[b:be], &m, scratch, batch.Results[b:be]); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					blockHist.Observe(time.Since(bstart).Seconds())
					blocks.Add(1)
				}
				continue
			}
			for i := lo; i < hi; i++ {
				r, err := plan.Eval(workloads[i].Inputs, scratch)
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("sweep: workload %q: %w", workloads[i].Name, err))
					return
				}
				batch.Results[i] = r
			}
		}
	}
	if workers == 1 {
		run()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				run()
			}()
		}
		wg.Wait()
	}
	batch.Elapsed = time.Since(start)
	sp.SetAttr("elapsed", batch.Elapsed.String())
	sp.End()
	if err, _ := firstErr.Load().(error); err != nil {
		if ctx.Err() != nil {
			e.opts.Obs.Counter("sweep.cancelled").Inc()
		}
		return nil, err
	}
	e.opts.Obs.Counter("sweep.workloads").Add(int64(n))
	e.opts.Obs.Counter("sweep.batches").Inc()
	e.opts.Obs.Gauge("sweep.workloads_per_sec").Set(batch.WorkloadsPerSec())
	if block > 1 {
		// Kernel telemetry: which evaluation path served the batch, how
		// many kernel invocations it took, and the blocked throughput.
		e.opts.Obs.Counter("sweep.workloads_blocked").Add(int64(n))
		e.opts.Obs.Counter("sweep.block_evals").Add(blocks.Load())
		e.opts.Obs.Gauge("sweep.kernel_workloads_per_sec").Set(batch.WorkloadsPerSec())
	} else {
		e.opts.Obs.Counter("sweep.workloads_scalar").Add(int64(n))
	}
	return batch, nil
}
