package sweep

import (
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/graph/graphtest"
)

// TestPropertyAllSolversAgree is the cross-implementation property test:
// on 200 seeded random designs, the monolithic solver, the
// FUB-partitioned relaxation, closed-form re-evaluation, and the compiled
// sweep plan must produce the same AVF vector within 1e-9, and every AVF
// must lie in [0,1]. Any divergence prints the offending seed, which
// replays deterministically through graphtest.
func TestPropertyAllSolversAgree(t *testing.T) {
	const (
		seeds = 200
		tol   = 1e-9
	)
	eng := New(Options{Workers: 2, CacheSize: 4})
	for seed := uint64(0); seed < seeds; seed++ {
		cfg := graphtest.Small(seed)
		d, err := graphtest.Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: Generate: %v", seed, err)
		}
		a, err := core.NewAnalyzer(d.Graph, core.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: NewAnalyzer: %v", seed, err)
		}
		in := randomInputs(a, seed^0xdeadbeef)

		mono, err := a.Solve(in)
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		for v, avf := range mono.AVF {
			if !(avf >= 0 && avf <= 1) {
				t.Fatalf("seed %d: vertex %d AVF %v out of [0,1]", seed, v, avf)
			}
		}

		part, err := a.SolvePartitioned(in)
		if err != nil {
			t.Fatalf("seed %d: SolvePartitioned: %v", seed, err)
		}
		if !part.Converged {
			t.Fatalf("seed %d: partitioned relaxation did not converge in %d iterations",
				seed, part.Iterations)
		}
		if d := core.MaxAbsDiff(mono, part); !(d <= tol) {
			t.Fatalf("seed %d: partitioned deviates from monolithic by %v (> %v)", seed, d, tol)
		}

		// Re-evaluate the monolithic closed forms against fresh inputs,
		// then back, to exercise the Reevaluate path on this design.
		in2 := randomInputs(a, seed^0xabcdef01)
		if err := mono.Reevaluate(in2); err != nil {
			t.Fatalf("seed %d: Reevaluate: %v", seed, err)
		}
		fresh2, err := a.Solve(in2)
		if err != nil {
			t.Fatalf("seed %d: Solve(in2): %v", seed, err)
		}
		if d := core.MaxAbsDiff(mono, fresh2); !(d <= tol) {
			t.Fatalf("seed %d: Reevaluate deviates from fresh solve by %v (> %v)", seed, d, tol)
		}

		// Sweep both workloads through the compiled plan.
		batch, err := eng.Sweep(fresh2, []Workload{
			{Name: "w1", Inputs: in},
			{Name: "w2", Inputs: in2},
		})
		if err != nil {
			t.Fatalf("seed %d: Sweep: %v", seed, err)
		}
		if err := mono.Reevaluate(in); err != nil {
			t.Fatalf("seed %d: Reevaluate(in): %v", seed, err)
		}
		if d := core.MaxAbsDiff(batch.Results[0], mono); !(d <= tol) {
			t.Fatalf("seed %d: sweep(w1) deviates from closed forms by %v (> %v)", seed, d, tol)
		}
		if d := core.MaxAbsDiff(batch.Results[1], fresh2); !(d <= tol) {
			t.Fatalf("seed %d: sweep(w2) deviates from fresh solve by %v (> %v)", seed, d, tol)
		}
		for i, r := range batch.Results {
			for v, avf := range r.AVF {
				if !(avf >= 0 && avf <= 1) {
					t.Fatalf("seed %d: sweep workload %d vertex %d AVF %v out of [0,1]", seed, i, v, avf)
				}
			}
		}
	}
}
