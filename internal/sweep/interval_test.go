package sweep

import (
	"strings"
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/graph/graphtest"
	"seqavf/internal/obs"
)

// intervalFixture builds a T-window interval workload over a generated
// design with seeded per-window inputs and contiguous equal spans.
func intervalFixture(t testing.TB, seed uint64, windows int, span uint64) (*core.Result, IntervalWorkload) {
	t.Helper()
	a, res, _ := solved(t, graphtest.Small(seed), seed^0x5eed)
	w := IntervalWorkload{Name: "w"}
	for i := 0; i < windows; i++ {
		w.Windows = append(w.Windows, WindowSpan{Start: uint64(i) * span, End: uint64(i+1) * span})
		w.Inputs = append(w.Inputs, randomInputs(a, seed*997+uint64(i)))
	}
	return res, w
}

func TestSweepIntervalsValidation(t *testing.T) {
	res, good := intervalFixture(t, 1, 3, 100)
	eng := New(Options{Workers: 1})
	cases := []struct {
		name    string
		mutate  func(w *IntervalWorkload)
		wantErr string
	}{
		{"noWindows", func(w *IntervalWorkload) { w.Windows = nil; w.Inputs = nil }, "has no windows"},
		{"misaligned", func(w *IntervalWorkload) { w.Inputs = w.Inputs[:2] }, "input tables for"},
		{"emptySpan", func(w *IntervalWorkload) { w.Windows[1].End = w.Windows[1].Start }, "is empty"},
		{"overlap", func(w *IntervalWorkload) { w.Windows[1].Start = 50 }, "inside window"},
		{"nilInputs", func(w *IntervalWorkload) { w.Inputs[2] = nil }, "nil inputs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := good
			w.Windows = append([]WindowSpan(nil), good.Windows...)
			w.Inputs = append([]*core.Inputs(nil), good.Inputs...)
			tc.mutate(&w)
			_, err := eng.SweepIntervals(res, []IntervalWorkload{w})
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want %q", err, tc.wantErr)
			}
		})
	}
	if _, err := eng.SweepIntervals(res, nil); err == nil {
		t.Fatal("empty workload list accepted")
	}
}

func TestSweepIntervalsShapeAndCounters(t *testing.T) {
	reg := obs.New()
	res, w := intervalFixture(t, 2, 5, 200)
	eng := New(Options{Workers: 2, BlockSize: 2, Obs: reg})
	b, err := eng.SweepIntervals(res, []IntervalWorkload{w, w})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Workloads) != 2 || b.WindowsEvaluated != 10 {
		t.Fatalf("batch shape: %d workloads, %d windows", len(b.Workloads), b.WindowsEvaluated)
	}
	for _, iw := range b.Workloads {
		if len(iw.Results) != 5 || len(iw.Summary.ChipAVF) != 5 {
			t.Fatalf("workload shape: %d results, %d chip AVFs", len(iw.Results), len(iw.Summary.ChipAVF))
		}
		for wi, r := range iw.Results {
			if r == nil {
				t.Fatalf("window %d result missing", wi)
			}
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sweep.windows_evaluated"]; got != 10 {
		t.Fatalf("sweep.windows_evaluated = %d", got)
	}
	if got := snap.Counters["sweep.interval_batches"]; got != 1 {
		t.Fatalf("sweep.interval_batches = %d", got)
	}
}

func TestIntervalSummaryStats(t *testing.T) {
	res, w := intervalFixture(t, 3, 4, 100)
	// Stretch window 2 so the time weighting is non-uniform.
	w.Windows[2].End = w.Windows[2].Start + 300
	w.Windows[3] = WindowSpan{Start: w.Windows[2].End, End: w.Windows[2].End + 100}
	eng := New(Options{Workers: 1})
	b, err := eng.SweepIntervals(res, []IntervalWorkload{w})
	if err != nil {
		t.Fatal(err)
	}
	s := b.Workloads[0].Summary
	var weighted, cycles float64
	peak, peakW := s.ChipAVF[0], 0
	for wi, avf := range s.ChipAVF {
		span := float64(w.Windows[wi].Span())
		weighted += avf * span
		cycles += span
		if avf > peak {
			peak, peakW = avf, wi
		}
	}
	if s.TimeWeightedMean != weighted/cycles {
		t.Fatalf("mean = %v, want %v", s.TimeWeightedMean, weighted/cycles)
	}
	if s.PeakWindow != peakW || s.PeakChipAVF != peak {
		t.Fatalf("peak = (%d, %v), want (%d, %v)", s.PeakWindow, s.PeakChipAVF, peakW, peak)
	}
	if s.TimeWeightedMean > 0 && s.PeakToMean != peak/s.TimeWeightedMean {
		t.Fatalf("peak/mean = %v", s.PeakToMean)
	}
	if s.PeakToMean < 1 {
		t.Fatalf("peak/mean %v < 1: peak cannot be below the mean", s.PeakToMean)
	}
}

func TestWholeRunAVFEdges(t *testing.T) {
	if got := WholeRunAVF(nil, nil); got != nil {
		t.Fatalf("empty series = %v", got)
	}
	res, w := intervalFixture(t, 4, 2, 100)
	eng := New(Options{Workers: 1})
	b, err := eng.SweepIntervals(res, []IntervalWorkload{w})
	if err != nil {
		t.Fatal(err)
	}
	iw := b.Workloads[0]
	whole := WholeRunAVF(iw.Windows, iw.Results)
	if len(whole) != len(iw.Results[0].AVF) {
		t.Fatalf("whole-run vector length %d", len(whole))
	}
	// Equal spans: the mean of two windows lies between them, bit by bit.
	for v := range whole {
		lo, hi := iw.Results[0].AVF[v], iw.Results[1].AVF[v]
		if lo > hi {
			lo, hi = hi, lo
		}
		if whole[v] < lo-1e-15 || whole[v] > hi+1e-15 {
			t.Fatalf("vertex %d: mean %v outside [%v,%v]", v, whole[v], lo, hi)
		}
	}
}
