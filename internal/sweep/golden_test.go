package sweep

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures from current output")

// TestTinycoreGoldenBlockMatrix pins the blocked kernel's arithmetic on
// a real design end to end: tinycore's multi-workload AVF matrix —
// per-sequential-node seqAVFs for every workload, plus each workload's
// full AVF-vector sum accumulated in vertex order — evaluated through
// the engine with a lane width that leaves a ragged tail block. Values
// are stored as hexadecimal float64 literals and compared bit for bit,
// so ANY change to the kernel arithmetic (summation order, saturation,
// the MIN broadcast) fails this test loudly; run with -update to bless
// an intentional change.
func TestTinycoreGoldenBlockMatrix(t *testing.T) {
	_, res, ws := tinycoreBatch(t, 6)
	// Block width 4 over 6 workloads: one full block and one ragged.
	eng := New(Options{Workers: 1, BlockSize: 4})
	batch, err := eng.Sweep(res, ws)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}

	got := make(map[string]string)
	for i, r := range batch.Results {
		name := batch.Names[i]
		for node, avf := range r.SeqAVFByNode() {
			got[name+"/"+node] = strconv.FormatFloat(avf, 'x', -1, 64)
		}
		sum := 0.0
		for _, avf := range r.AVF {
			sum += avf
		}
		got[name+"/__avfsum"] = strconv.FormatFloat(sum, 'x', -1, 64)
	}
	if len(got) == 0 {
		t.Fatal("no sequential nodes in tinycore batch")
	}

	path := filepath.Join("testdata", "tinycore_block_matrix.golden")
	if *updateGolden {
		writeBlockGolden(t, path, got)
		t.Logf("rewrote %s with %d entries", path, len(got))
	}
	want := readBlockGolden(t, path)
	if len(got) != len(want) {
		t.Errorf("matrix shape drifted: golden has %d entries, current run has %d", len(want), len(got))
	}
	for key, wv := range want {
		gv, ok := got[key]
		if !ok {
			t.Errorf("entry %s present in golden but missing from current run", key)
			continue
		}
		if gv != wv {
			gf, _ := strconv.ParseFloat(gv, 64)
			wf, _ := strconv.ParseFloat(wv, 64)
			t.Errorf("entry %s drifted: golden %s (%v), got %s (%v) — blocked kernel arithmetic changed; run with -update only if intentional",
				key, wv, wf, gv, gf)
		}
	}
	for key := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("entry %s missing from golden (run with -update if intentional)", key)
		}
	}

	// The golden values must also be what the scalar path produces: the
	// fixture pins one arithmetic, shared bit for bit by both kernels.
	scalar := New(Options{Workers: 1, BlockSize: 1})
	sb, err := scalar.Sweep(res, ws)
	if err != nil {
		t.Fatalf("scalar Sweep: %v", err)
	}
	for i := range sb.Results {
		for v := range sb.Results[i].AVF {
			if math.Float64bits(sb.Results[i].AVF[v]) != math.Float64bits(batch.Results[i].AVF[v]) {
				t.Fatalf("workload %s vertex %d: scalar %v, blocked %v",
					sb.Names[i], v, sb.Results[i].AVF[v], batch.Results[i].AVF[v])
			}
		}
	}
}

func writeBlockGolden(t *testing.T, path string, m map[string]string) {
	t.Helper()
	writeGoldenWithHeader(t, path, m,
		"# tinycore blocked-sweep AVF matrix: workload/node -> hexfloat seqAVF (exact bits)\n"+
			"# __avfsum is the workload's full AVF vector summed in vertex order\n"+
			"# regenerate: go test ./internal/sweep/ -run TestTinycoreGoldenBlockMatrix -update\n")
}

func writeGoldenWithHeader(t *testing.T, path string, m map[string]string, header string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(header)
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s %s\n", k, m[k])
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readBlockGolden(t *testing.T, path string) map[string]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("golden fixture unreadable (run with -update to create): %v", err)
	}
	defer f.Close()
	out := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 2 {
			t.Fatalf("%s: malformed line %q", path, sc.Text())
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("%s: bad hexfloat in %q: %v", path, sc.Text(), err)
		}
		out[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}
