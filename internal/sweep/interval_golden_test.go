package sweep

import (
	"bytes"
	"fmt"
	"math"
	"path/filepath"
	"strconv"
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/pavfio"
	"seqavf/internal/tinycore"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

// TestTinycoreGoldenIntervals pins the whole time-resolved pipeline on a
// real design: tinycore runs MD5Like(40) on the quantized performance
// model, the windowed ACE report binds to the netlist ports, the
// interval table round-trips through the pavfio multi-window format
// (pinning its serialization at %.6f), and the engine sweeps the six
// windows as lanes of one blocked batch with a ragged tail. The golden
// fixture holds each window's per-sequential-node seqAVF plus the
// summary statistics as hexadecimal float64 literals compared bit for
// bit; run with -update to bless an intentional change.
func TestTinycoreGoldenIntervals(t *testing.T) {
	p := workload.MD5Like(40)
	fd, err := tinycore.FlatDesign(len(p.Code))
	if err != nil {
		t.Fatalf("tinycore: %v", err)
	}
	g, err := graph.Build(fd)
	if err != nil {
		t.Fatalf("graph: %v", err)
	}
	a, err := core.NewAnalyzer(g, core.DefaultOptions())
	if err != nil {
		t.Fatalf("analyzer: %v", err)
	}
	cfg := uarch.DefaultConfig()
	cfg.Window = 150 // 867-cycle run: five full windows and a ragged sixth
	perf, err := uarch.Run(p, cfg)
	if err != nil {
		t.Fatalf("uarch: %v", err)
	}
	if perf.Intervals == nil {
		t.Fatal("windowed run produced no interval report")
	}
	perWindow, err := tinycore.BindIntervals(perf.Intervals)
	if err != nil {
		t.Fatalf("BindIntervals: %v", err)
	}

	// Round-trip through the multi-window table format so the fixture
	// also pins the serialized representation.
	tab := &pavfio.IntervalTable{Workload: "md5_40"}
	for i, win := range perf.Intervals.Windows {
		tab.Windows = append(tab.Windows, pavfio.IntervalWindow{
			Index: i, Start: win.Start, End: win.End, Inputs: perWindow[i],
		})
	}
	var buf bytes.Buffer
	if _, err := pavfio.WriteIntervals(&buf, tab); err != nil {
		t.Fatalf("WriteIntervals: %v", err)
	}
	back, err := pavfio.ParseIntervals("roundtrip", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseIntervals: %v", err)
	}
	if back.Workload != "md5_40" || len(back.Windows) != len(tab.Windows) {
		t.Fatalf("round trip lost shape: %q, %d windows", back.Workload, len(back.Windows))
	}

	base, err := tinycore.BindInputs(perf.Report)
	if err != nil {
		t.Fatalf("BindInputs: %v", err)
	}
	res, err := a.Solve(base)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	iw := IntervalWorkload{Name: back.Workload}
	for _, win := range back.Windows {
		iw.Windows = append(iw.Windows, WindowSpan{Start: win.Start, End: win.End})
		iw.Inputs = append(iw.Inputs, win.Inputs)
	}
	// Block width 4 over 6 window lanes: one full block and one ragged.
	eng := New(Options{Workers: 1, BlockSize: 4})
	b, err := eng.SweepIntervals(res, []IntervalWorkload{iw})
	if err != nil {
		t.Fatalf("SweepIntervals: %v", err)
	}
	out := b.Workloads[0]

	got := make(map[string]string)
	hex := func(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }
	for wi, r := range out.Results {
		for node, avf := range r.SeqAVFByNode() {
			got[fmt.Sprintf("w%d/%s", wi, node)] = hex(avf)
		}
		got[fmt.Sprintf("w%d/__chipavf", wi)] = hex(out.Summary.ChipAVF[wi])
		// The seqAVF nodes above are tinycore's FSM registers, whose
		// closed forms are insensitive to the measured inputs; the full
		// AVF-vector sum is what varies window to window and pins the
		// input-dependent combinational arithmetic.
		sum := 0.0
		for _, avf := range r.AVF {
			sum += avf
		}
		got[fmt.Sprintf("w%d/__avfsum", wi)] = hex(sum)
	}
	got["__summary/time_weighted_mean"] = hex(out.Summary.TimeWeightedMean)
	got["__summary/peak_chipavf"] = hex(out.Summary.PeakChipAVF)
	got["__summary/peak_window"] = strconv.Itoa(out.Summary.PeakWindow)
	got["__summary/peak_to_mean"] = hex(out.Summary.PeakToMean)
	if len(got) < 10 {
		t.Fatalf("suspiciously small interval matrix: %d entries", len(got))
	}

	path := filepath.Join("testdata", "tinycore_intervals.golden")
	if *updateGolden {
		writeIntervalGolden(t, path, got)
		t.Logf("rewrote %s with %d entries", path, len(got))
	}
	want := readBlockGolden(t, path)
	if len(got) != len(want) {
		t.Errorf("matrix shape drifted: golden has %d entries, current run has %d", len(want), len(got))
	}
	for key, wv := range want {
		gv, ok := got[key]
		if !ok {
			t.Errorf("entry %s present in golden but missing from current run", key)
			continue
		}
		if gv != wv {
			t.Errorf("entry %s drifted: golden %s, got %s — interval pipeline output changed; run with -update only if intentional",
				key, wv, gv)
		}
	}
	for key := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("entry %s missing from golden (run with -update if intentional)", key)
		}
	}

	// The packed lanes must match six independent single-window sweeps
	// bit for bit — the windows-as-lanes contract on the real design.
	solo := New(Options{Workers: 1, BlockSize: 1})
	for wi := range iw.Windows {
		sb, err := solo.Sweep(res, []Workload{{Name: "solo", Inputs: iw.Inputs[wi]}})
		if err != nil {
			t.Fatalf("solo sweep window %d: %v", wi, err)
		}
		for v := range sb.Results[0].AVF {
			if math.Float64bits(sb.Results[0].AVF[v]) != math.Float64bits(out.Results[wi].AVF[v]) {
				t.Fatalf("window %d vertex %d: solo %v != packed %v", wi, v,
					sb.Results[0].AVF[v], out.Results[wi].AVF[v])
			}
		}
	}
}

func writeIntervalGolden(t *testing.T, path string, m map[string]string) {
	t.Helper()
	writeGoldenWithHeader(t, path, m,
		"# tinycore interval-sweep AVF matrix: w<idx>/node -> hexfloat seqAVF (exact bits)\n"+
			"# __chipavf is the window's weighted sequential AVF; __avfsum its full AVF vector\n"+
			"# summed in vertex order; __summary pins the time-series stats\n"+
			"# regenerate: go test ./internal/sweep/ -run TestTinycoreGoldenIntervals -update\n")
}
