// Package sweep is the workload sweep engine: the compile-once /
// serve-many half of the paper's §5.1 symbolic-propagation claim, built
// for batches.
//
// A solved core.Result carries one closed-form equation per bit vertex:
// AVF = MIN(Union(forward terms), Union(backward terms)). Evaluating a new
// workload therefore needs only a new term environment — no walks. But the
// per-vertex equations are massively redundant: propagation copies the same
// term sets down whole pipelines, so a design with hundreds of thousands of
// bits typically resolves to a few hundred distinct sets. Compile flattens
// the equations into a deduplicated plan — every distinct term set becomes
// one shared subterm slot, evaluated once per workload — and Engine pushes
// batches of workloads through compiled plans with a bounded worker pool,
// per-shard chunking, and an LRU plan cache keyed by the analyzer's design
// fingerprint.
//
// Numerically the plan is exact: subterm evaluation replays pavf.Set.Eval's
// summation order (ascending TermID, capped at 1.0) and the final MIN
// matches pavf.Expr.Eval, so plan results are bit-identical to
// Result.Reevaluate and to a fresh Solve under the same inputs.
package sweep

import (
	"fmt"

	"seqavf/internal/core"
	"seqavf/internal/pavf"
)

// Plan is a compiled, immutable evaluation plan for one design. It is safe
// for concurrent Eval calls: evaluation writes only into caller-provided
// or freshly allocated buffers.
type Plan struct {
	// Analyzer is the design the plan was compiled for; environments are
	// built against its term universe.
	Analyzer *core.Analyzer
	// Fingerprint is Analyzer.Fingerprint(), the plan-cache key.
	Fingerprint uint64

	// exprs aliases the source result's closed forms (read-only), so
	// per-workload Results can render equations and statistics.
	exprs   []pavf.Expr
	visited []bool

	// The deduplicated set table in CSR form: set s covers
	// setIDs[setOff[s]:setOff[s+1]], IDs ascending as in pavf.Set.
	setOff []int32
	setIDs []pavf.TermID
	// fwdIdx/bwdIdx give each vertex's set slot per direction, or -1 when
	// the walk never reached that side (conservative 1.0).
	fwdIdx []int32
	bwdIdx []int32

	// The deduplicated (fwdIdx, bwdIdx) pair table: vertices sharing both
	// set slots resolve to the same MIN, so the blocked kernel computes
	// each distinct pair once per lane and broadcasts the values.
	// pairFwd/pairBwd are the slot pair for each unique pair (slot -1 =
	// unknown side). Adjacent vertices overwhelmingly share a pair (the
	// bits of one node), so the vertex->pair map is run-length encoded:
	// run r covers vertices [runOff[r], runOff[r+1]) and resolves to pair
	// runPair[r], turning the broadcast into a constant fill per run.
	pairFwd []int32
	pairBwd []int32
	runOff  []int32
	runPair []int32
}

// Stats describes a compiled plan's shape.
type Stats struct {
	// Vertices is the number of bit equations the plan resolves.
	Vertices int
	// UniqueSets counts distinct term sets — the subterms evaluated once
	// per workload.
	UniqueSets int
	// SetRefs counts per-vertex set references (known sides only);
	// SetRefs/UniqueSets is the sharing factor the dedup exploits.
	SetRefs int
	// Terms is the total TermID count across unique sets.
	Terms int
}

// Compile flattens res's closed-form equations into an evaluation plan.
func Compile(res *core.Result) (*Plan, error) {
	a := res.Analyzer
	n := a.G.NumVerts()
	if len(res.Exprs) != n {
		return nil, fmt.Errorf("sweep: result has %d equations but design %q has %d vertices",
			len(res.Exprs), a.G.Design.Name, n)
	}
	p := &Plan{
		Analyzer:    a,
		Fingerprint: a.Fingerprint(),
		exprs:       res.Exprs,
		visited:     res.Visited,
		setOff:      []int32{0},
		fwdIdx:      make([]int32, n),
		bwdIdx:      make([]int32, n),
	}
	index := make(map[string]int32)
	var key []byte
	intern := func(s pavf.Set) int32 {
		ids := s.IDs()
		key = key[:0]
		for _, id := range ids {
			key = append(key, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		if i, ok := index[string(key)]; ok {
			return i
		}
		i := int32(len(p.setOff) - 1)
		index[string(key)] = i
		p.setIDs = append(p.setIDs, ids...)
		p.setOff = append(p.setOff, int32(len(p.setIDs)))
		return i
	}
	for v := 0; v < n; v++ {
		x := &res.Exprs[v]
		if x.KnownFwd {
			p.fwdIdx[v] = intern(x.Fwd)
		} else {
			p.fwdIdx[v] = -1
		}
		if x.KnownBwd {
			p.bwdIdx[v] = intern(x.Bwd)
		} else {
			p.bwdIdx[v] = -1
		}
	}
	p.buildPairs()
	return p, nil
}

// buildPairs fills the unique (fwd, bwd) slot-pair table and its
// run-length-encoded vertex map. Derived entirely from fwdIdx/bwdIdx, so
// both Compile and Restore produce identical tables for the same CSR
// plan.
func (p *Plan) buildPairs() {
	n := len(p.fwdIdx)
	seen := make(map[uint64]int32, 64)
	prev := int32(-1)
	for v := 0; v < n; v++ {
		fi, bi := p.fwdIdx[v], p.bwdIdx[v]
		key := uint64(uint32(fi))<<32 | uint64(uint32(bi))
		pi, ok := seen[key]
		if !ok {
			pi = int32(len(p.pairFwd))
			seen[key] = pi
			p.pairFwd = append(p.pairFwd, fi)
			p.pairBwd = append(p.pairBwd, bi)
		}
		if pi != prev {
			p.runOff = append(p.runOff, int32(v))
			p.runPair = append(p.runPair, pi)
			prev = pi
		}
	}
	p.runOff = append(p.runOff, int32(n))
}

// Raw is the plan's CSR subterm table in serializable form. Slices alias
// the plan's internal storage and must not be modified.
type Raw struct {
	// SetOff/SetIDs are the deduplicated set table in CSR form: set s
	// covers SetIDs[SetOff[s]:SetOff[s+1]], term IDs strictly ascending.
	SetOff []int32
	SetIDs []pavf.TermID
	// FwdIdx/BwdIdx give each vertex's set slot per direction, -1 when the
	// walk never reached that side.
	FwdIdx []int32
	BwdIdx []int32
}

// Raw exposes the plan's CSR subterm table for persistence
// (internal/artifact). The returned slices alias the plan and are
// read-only.
func (p *Plan) Raw() Raw {
	return Raw{SetOff: p.setOff, SetIDs: p.setIDs, FwdIdx: p.fwdIdx, BwdIdx: p.bwdIdx}
}

// Restore reconstructs a compiled plan — and the closed-form equation
// table it evaluates — from a persisted CSR table. It validates every
// structural invariant evaluation relies on — offsets monotone and in
// range, per-set term IDs strictly ascending and inside a's term
// universe, per-vertex indices in range — so a corrupted or adversarial
// table is refused instead of producing out-of-range indexing at Eval
// time. The returned equation slice is the plan's own (each Expr shares
// the validated SetIDs backing array); a plan restored from the CSR
// written by Raw is bit-identical in behavior to a fresh Compile. This
// is the artifact-decode hot path: validation, set construction, and
// equation rebuild are fused into single passes.
func Restore(a *core.Analyzer, raw Raw, visited []bool) (*Plan, []pavf.Expr, error) {
	n := a.G.NumVerts()
	if len(raw.FwdIdx) != n || len(raw.BwdIdx) != n {
		return nil, nil, fmt.Errorf("sweep: raw plan covers %d/%d vertices but design has %d",
			len(raw.FwdIdx), len(raw.BwdIdx), n)
	}
	if len(visited) != n {
		return nil, nil, fmt.Errorf("sweep: %d visited flags for %d vertices", len(visited), n)
	}
	if len(raw.SetOff) < 1 || raw.SetOff[0] != 0 || int(raw.SetOff[len(raw.SetOff)-1]) != len(raw.SetIDs) {
		return nil, nil, fmt.Errorf("sweep: raw plan offsets malformed (%d offsets, %d term IDs)",
			len(raw.SetOff), len(raw.SetIDs))
	}
	nSets := len(raw.SetOff) - 1
	uniLen := pavf.TermID(a.Universe().Len())
	sets := make([]pavf.Set, nSets)
	for s := 0; s < nSets; s++ {
		lo, hi := raw.SetOff[s], raw.SetOff[s+1]
		if lo > hi {
			return nil, nil, fmt.Errorf("sweep: raw plan set %d has negative extent [%d,%d)", s, lo, hi)
		}
		prev := pavf.TermID(-1)
		for _, id := range raw.SetIDs[lo:hi] {
			if id < 0 || id >= uniLen {
				return nil, nil, fmt.Errorf("sweep: raw plan set %d references term %d outside universe of %d", s, id, uniLen)
			}
			if id <= prev {
				return nil, nil, fmt.Errorf("sweep: raw plan set %d terms not strictly ascending at %d", s, id)
			}
			prev = id
		}
		sets[s] = pavf.SetFromSorted(raw.SetIDs[lo:hi])
	}
	// Validate the per-vertex indices in their own linear scans (cheap:
	// two int32 arrays, no stores), so the equation fill below indexes
	// sets unchecked.
	for v, fi := range raw.FwdIdx {
		if fi < -1 || int(fi) >= nSets {
			return nil, nil, fmt.Errorf("sweep: raw plan vertex %d forward index %d out of range (%d sets)", v, fi, nSets)
		}
	}
	for v, bi := range raw.BwdIdx {
		if bi < -1 || int(bi) >= nSets {
			return nil, nil, fmt.Errorf("sweep: raw plan vertex %d backward index %d out of range (%d sets)", v, bi, nSets)
		}
	}
	exprs := make([]pavf.Expr, n)
	for v := range exprs {
		x := &exprs[v]
		if fi := raw.FwdIdx[v]; fi >= 0 {
			x.Fwd, x.KnownFwd = sets[fi], true
		}
		if bi := raw.BwdIdx[v]; bi >= 0 {
			x.Bwd, x.KnownBwd = sets[bi], true
		}
	}
	p := &Plan{
		Analyzer:    a,
		Fingerprint: a.Fingerprint(),
		exprs:       exprs,
		visited:     visited,
		setOff:      raw.SetOff,
		setIDs:      raw.SetIDs,
		fwdIdx:      raw.FwdIdx,
		bwdIdx:      raw.BwdIdx,
	}
	p.buildPairs()
	return p, exprs, nil
}

// NumVerts returns the number of bit equations in the plan.
func (p *Plan) NumVerts() int { return len(p.fwdIdx) }

// NumSets returns the number of deduplicated subterm sets.
func (p *Plan) NumSets() int { return len(p.setOff) - 1 }

// Stats summarizes the plan's shape.
func (p *Plan) Stats() Stats {
	st := Stats{
		Vertices:   p.NumVerts(),
		UniqueSets: p.NumSets(),
		Terms:      len(p.setIDs),
	}
	for v := range p.fwdIdx {
		if p.fwdIdx[v] >= 0 {
			st.SetRefs++
		}
		if p.bwdIdx[v] >= 0 {
			st.SetRefs++
		}
	}
	return st
}

// evalEnv resolves every vertex AVF under env. scratch must have at least
// NumSets entries; avf must have NumVerts entries. Subterm evaluation and
// the final MIN replay pavf's arithmetic exactly (same order, same cap),
// so results are bit-identical to Expr.Eval.
func (p *Plan) evalEnv(env pavf.Env, scratch, avf []float64) {
	for s := 0; s < len(p.setOff)-1; s++ {
		sum := 0.0
		for _, id := range p.setIDs[p.setOff[s]:p.setOff[s+1]] {
			sum += env[id]
			if sum >= 1 {
				sum = 1
				break
			}
		}
		scratch[s] = sum
	}
	for v := range avf {
		f, b := 1.0, 1.0
		if i := p.fwdIdx[v]; i >= 0 {
			f = scratch[i]
		}
		if i := p.bwdIdx[v]; i >= 0 {
			b = scratch[i]
		}
		if b < f {
			f = b
		}
		avf[v] = f
	}
}

// Eval evaluates one workload through the plan, returning a full
// core.Result (closed forms shared with the compiled source, AVF vector
// fresh). scratch may be nil or a reusable buffer of at least NumSets
// entries. Like the blocked kernel (EvalBlock), it validates the built
// environment, so a NaN smuggled past BuildEnv's clamping is rejected
// here instead of propagating into AVFs — the scalar and blocked paths
// accept exactly the same inputs.
func (p *Plan) Eval(in *core.Inputs, scratch []float64) (*core.Result, error) {
	env, err := p.Analyzer.CheckedEnv(in)
	if err != nil {
		return nil, err
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if len(scratch) < p.NumSets() {
		scratch = make([]float64, p.NumSets())
	}
	avf := make([]float64, p.NumVerts())
	p.evalEnv(env, scratch, avf)
	return &core.Result{
		Analyzer:   p.Analyzer,
		Inputs:     in,
		Env:        env,
		Exprs:      p.exprs,
		AVF:        avf,
		Visited:    p.visited,
		Iterations: 1,
		Converged:  true,
	}, nil
}
