package sweep

import (
	"math"
	"sort"
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/graph/graphtest"
	"seqavf/internal/pavf"
)

// FuzzCompilePlan drives the generator -> solver -> plan compiler -> plan
// evaluator chain from fuzzed seeds and shape knobs: no input may panic,
// every generated design must compile into a plan, and plan evaluation
// must stay bit-identical to Result.Reevaluate.
func FuzzCompilePlan(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint8(2), uint8(2), uint8(2))
	f.Add(uint64(42), uint64(7), uint8(1), uint8(1), uint8(1))
	f.Add(uint64(12345), uint64(99), uint8(3), uint8(4), uint8(3))
	f.Fuzz(func(t *testing.T, seed, inputSeed uint64, fubs, layers, width uint8) {
		cfg := graphtest.Small(seed)
		cfg.Fubs = 1 + int(fubs%3)
		cfg.Layers = 1 + int(layers%4)
		cfg.Width = 1 + int(width%4)
		d, err := graphtest.Generate(cfg)
		if err != nil {
			t.Fatalf("Generate rejected a bounded config %+v: %v", cfg, err)
		}
		a, err := core.NewAnalyzer(d.Graph, core.DefaultOptions())
		if err != nil {
			t.Fatalf("NewAnalyzer: %v", err)
		}
		in := randomInputs(a, inputSeed)
		res, err := a.Solve(in)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		p, err := Compile(res)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		if p.NumVerts() != a.G.NumVerts() {
			t.Fatalf("plan covers %d of %d vertices", p.NumVerts(), a.G.NumVerts())
		}
		in2 := randomInputs(a, inputSeed^0x5bf03635)
		got, err := p.Eval(in2, nil)
		if err != nil {
			t.Fatalf("Eval: %v", err)
		}
		if err := res.Reevaluate(in2); err != nil {
			t.Fatalf("Reevaluate: %v", err)
		}
		for v := range got.AVF {
			if got.AVF[v] != res.AVF[v] {
				t.Fatalf("vertex %d: plan %v != reevaluate %v", v, got.AVF[v], res.AVF[v])
			}
			if !(got.AVF[v] >= 0 && got.AVF[v] <= 1) {
				t.Fatalf("vertex %d: AVF %v out of [0,1]", v, got.AVF[v])
			}
		}
	})
}

// FuzzEnvMatrix attacks the blocked kernel's validation boundary: one
// port pAVF of one workload in a block is replaced with an arbitrary
// float64 bit pattern (NaNs, infinities, subnormals, negatives, huge
// values). The invariant: EnvMatrix construction must reject the block
// at build time exactly when the value is outside [0,1] (including NaN),
// must accept it otherwise, and must never panic or let a non-finite
// value reach EvalBlock — and the same boundary holds for ResetEnvs on a
// directly corrupted prebuilt environment.
func FuzzEnvMatrix(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint8(3), uint16(0), uint64(0x7ff8000000000001)) // NaN
	f.Add(uint64(7), uint64(2), uint8(1), uint16(5), uint64(0x7ff0000000000000)) // +Inf
	f.Add(uint64(9), uint64(3), uint8(4), uint16(1), math.Float64bits(-0.25))
	f.Add(uint64(11), uint64(4), uint8(2), uint16(9), math.Float64bits(0.75)) // in range
	f.Add(uint64(13), uint64(5), uint8(0), uint16(3), math.Float64bits(1.0)) // boundary
	f.Fuzz(func(t *testing.T, seed, inputSeed uint64, lanes uint8, portIdx uint16, valBits uint64) {
		_, res, _ := solved(t, graphtest.Small(seed), inputSeed)
		p, err := Compile(res)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		a := res.Analyzer
		n := 1 + int(lanes%6)
		ws := make([]Workload, n)
		for i := range ws {
			ws[i] = Workload{Name: "w", Inputs: randomInputs(a, inputSeed*17+uint64(i))}
		}

		// Corrupt one port of one workload with the fuzzed bit pattern.
		v := math.Float64frombits(valBits)
		victim := ws[int(seed)%n].Inputs
		sortPorts := func(m map[core.StructPort]float64) []core.StructPort {
			out := make([]core.StructPort, 0, len(m))
			for sp := range m {
				out = append(out, sp)
			}
			sort.Slice(out, func(i, j int) bool {
				return out[i].Struct < out[j].Struct ||
					(out[i].Struct == out[j].Struct && out[i].Port < out[j].Port)
			})
			return out
		}
		reads := sortPorts(victim.ReadPorts)
		writes := sortPorts(victim.WritePorts)
		if len(reads)+len(writes) == 0 {
			t.Skip("design has no structure ports")
		}
		pi := int(portIdx) % (len(reads) + len(writes))
		if pi < len(reads) {
			victim.ReadPorts[reads[pi]] = v
		} else {
			victim.WritePorts[writes[pi-len(reads)]] = v
		}
		bad := !(v >= 0 && v <= 1) // NaN, Inf, negative, > 1

		var m EnvMatrix
		err = m.Reset(a, ws)
		if bad && err == nil {
			t.Fatalf("EnvMatrix.Reset accepted port value %v (bits %#x)", v, valBits)
		}
		if !bad && err != nil {
			t.Fatalf("EnvMatrix.Reset rejected in-range port value %v: %v", v, err)
		}
		dst := make([]*core.Result, n)
		err = p.EvalBlockInto(ws, nil, nil, dst)
		if bad {
			if err == nil {
				t.Fatalf("EvalBlockInto accepted port value %v (bits %#x)", v, valBits)
			}
			return
		}
		if err != nil {
			t.Fatalf("EvalBlockInto rejected in-range port value %v: %v", v, err)
		}
		for i, r := range dst {
			for vi, avf := range r.AVF {
				if !(avf >= 0 && avf <= 1) {
					t.Fatalf("workload %d vertex %d: AVF %v escaped [0,1]", i, vi, avf)
				}
			}
		}

		// Same boundary for prebuilt environments: corrupt one term
		// directly and ResetEnvs must apply the identical accept/reject
		// rule (Top stays 1, so only non-Top terms are fuzzed here).
		env := append(pavf.Env(nil), m.Env(0)...)
		if len(env) > 1 {
			env[1+int(portIdx)%(len(env)-1)] = v
			err = m.ResetEnvs([]pavf.Env{env})
			if bad && err == nil {
				t.Fatalf("ResetEnvs accepted term value %v (bits %#x)", v, valBits)
			}
			if !bad && err != nil {
				t.Fatalf("ResetEnvs rejected in-range term value %v: %v", v, err)
			}
		}
	})
}
