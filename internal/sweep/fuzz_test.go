package sweep

import (
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/graph/graphtest"
)

// FuzzCompilePlan drives the generator -> solver -> plan compiler -> plan
// evaluator chain from fuzzed seeds and shape knobs: no input may panic,
// every generated design must compile into a plan, and plan evaluation
// must stay bit-identical to Result.Reevaluate.
func FuzzCompilePlan(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint8(2), uint8(2), uint8(2))
	f.Add(uint64(42), uint64(7), uint8(1), uint8(1), uint8(1))
	f.Add(uint64(12345), uint64(99), uint8(3), uint8(4), uint8(3))
	f.Fuzz(func(t *testing.T, seed, inputSeed uint64, fubs, layers, width uint8) {
		cfg := graphtest.Small(seed)
		cfg.Fubs = 1 + int(fubs%3)
		cfg.Layers = 1 + int(layers%4)
		cfg.Width = 1 + int(width%4)
		d, err := graphtest.Generate(cfg)
		if err != nil {
			t.Fatalf("Generate rejected a bounded config %+v: %v", cfg, err)
		}
		a, err := core.NewAnalyzer(d.Graph, core.DefaultOptions())
		if err != nil {
			t.Fatalf("NewAnalyzer: %v", err)
		}
		in := randomInputs(a, inputSeed)
		res, err := a.Solve(in)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		p, err := Compile(res)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		if p.NumVerts() != a.G.NumVerts() {
			t.Fatalf("plan covers %d of %d vertices", p.NumVerts(), a.G.NumVerts())
		}
		in2 := randomInputs(a, inputSeed^0x5bf03635)
		got, err := p.Eval(in2, nil)
		if err != nil {
			t.Fatalf("Eval: %v", err)
		}
		if err := res.Reevaluate(in2); err != nil {
			t.Fatalf("Reevaluate: %v", err)
		}
		for v := range got.AVF {
			if got.AVF[v] != res.AVF[v] {
				t.Fatalf("vertex %d: plan %v != reevaluate %v", v, got.AVF[v], res.AVF[v])
			}
			if !(got.AVF[v] >= 0 && got.AVF[v] <= 1) {
				t.Fatalf("vertex %d: AVF %v out of [0,1]", v, got.AVF[v])
			}
		}
	})
}
