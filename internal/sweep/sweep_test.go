package sweep

import (
	"context"
	"errors"
	"math"
	"sort"
	"strings"
	"testing"
	"time"

	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/graph/graphtest"
	"seqavf/internal/obs"
	"seqavf/internal/stats"
	"seqavf/internal/tinycore"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

// solved builds a generated design's analyzer and solves it against
// seeded random inputs.
func solved(t testing.TB, cfg graphtest.Config, inputSeed uint64) (*core.Analyzer, *core.Result, *core.Inputs) {
	t.Helper()
	d, err := graphtest.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	a, err := core.NewAnalyzer(d.Graph, core.DefaultOptions())
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	in := randomInputs(a, inputSeed)
	res, err := a.Solve(in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return a, res, in
}

// randomInputs assigns seeded pAVFs to every structure port, iterating
// ports in sorted order so the assignment is deterministic.
func randomInputs(a *core.Analyzer, seed uint64) *core.Inputs {
	rng := stats.New(seed)
	in := core.NewInputs()
	reads := a.ReadPortTerms()
	sort.Slice(reads, func(i, j int) bool {
		return reads[i].Struct < reads[j].Struct ||
			(reads[i].Struct == reads[j].Struct && reads[i].Port < reads[j].Port)
	})
	for _, sp := range reads {
		in.ReadPorts[sp] = rng.Float64()
	}
	writes := a.WritePortTerms()
	sort.Slice(writes, func(i, j int) bool {
		return writes[i].Struct < writes[j].Struct ||
			(writes[i].Struct == writes[j].Struct && writes[i].Port < writes[j].Port)
	})
	for _, sp := range writes {
		in.WritePorts[sp] = rng.Float64()
	}
	return in
}

// TestPlanDedup: compilation must actually share term sets — the whole
// point of the plan — and account for every known equation side.
func TestPlanDedup(t *testing.T) {
	_, res, _ := solved(t, graphtest.Default(11), 1)
	p, err := Compile(res)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	st := p.Stats()
	if st.Vertices != res.Analyzer.G.NumVerts() {
		t.Errorf("plan covers %d vertices, graph has %d", st.Vertices, res.Analyzer.G.NumVerts())
	}
	if st.UniqueSets == 0 || st.SetRefs == 0 {
		t.Fatalf("empty plan: %+v", st)
	}
	if st.UniqueSets >= st.SetRefs {
		t.Errorf("no sharing: %d unique sets for %d refs (propagation should duplicate sets heavily)", st.UniqueSets, st.SetRefs)
	}
	refs := 0
	for v := 0; v < st.Vertices; v++ {
		x := &res.Exprs[v]
		if x.KnownFwd {
			refs++
		}
		if x.KnownBwd {
			refs++
		}
	}
	if refs != st.SetRefs {
		t.Errorf("plan has %d set refs, equations have %d known sides", st.SetRefs, refs)
	}
}

// TestPlanEvalMatchesReevaluate: plan evaluation must be bit-identical to
// Result.Reevaluate under fresh inputs.
func TestPlanEvalMatchesReevaluate(t *testing.T) {
	a, res, _ := solved(t, graphtest.Default(3), 1)
	p, err := Compile(res)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for seed := uint64(2); seed < 6; seed++ {
		in := randomInputs(a, seed)
		got, err := p.Eval(in, nil)
		if err != nil {
			t.Fatalf("Eval: %v", err)
		}
		if err := res.Reevaluate(in); err != nil {
			t.Fatalf("Reevaluate: %v", err)
		}
		for v := range got.AVF {
			if got.AVF[v] != res.AVF[v] {
				t.Fatalf("seed %d vertex %d: plan %v != reevaluate %v (must be bit-identical)",
					seed, v, got.AVF[v], res.AVF[v])
			}
		}
	}
}

// TestPlanEvalRejectsForeignInputs: inputs naming ports the design lacks
// must be refused, not silently defaulted.
func TestPlanEvalRejectsForeignInputs(t *testing.T) {
	_, res, in := solved(t, graphtest.Small(5), 1)
	p, err := Compile(res)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	bad := core.NewInputs()
	for sp, v := range in.ReadPorts {
		bad.ReadPorts[sp] = v
	}
	for sp, v := range in.WritePorts {
		bad.WritePorts[sp] = v
	}
	bad.ReadPorts[core.StructPort{Struct: "NoSuchStruct", Port: "rd"}] = 0.5
	if _, err := p.Eval(bad, nil); err == nil {
		t.Fatal("Eval accepted inputs for a port the design does not have")
	} else if !strings.Contains(err.Error(), "NoSuchStruct") {
		t.Fatalf("error does not name the stray port: %v", err)
	}
}

// TestEngineSweep: batch results must match per-workload plan evaluation,
// align with submitted order, and survive both serial and parallel modes.
func TestEngineSweep(t *testing.T) {
	a, res, _ := solved(t, graphtest.Default(17), 1)
	var ws []Workload
	for seed := uint64(0); seed < 9; seed++ {
		ws = append(ws, Workload{
			Name:   string(rune('a' + seed)),
			Inputs: randomInputs(a, 100+seed),
		})
	}
	ref := make([][]float64, len(ws))
	p, err := Compile(res)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for i, w := range ws {
		r, err := p.Eval(w.Inputs, nil)
		if err != nil {
			t.Fatalf("Eval: %v", err)
		}
		ref[i] = r.AVF
	}
	for _, workers := range []int{1, 4} {
		eng := New(Options{Workers: workers, ChunkSize: 2})
		batch, err := eng.Sweep(res, ws)
		if err != nil {
			t.Fatalf("Sweep(workers=%d): %v", workers, err)
		}
		if len(batch.Results) != len(ws) {
			t.Fatalf("workers=%d: %d results for %d workloads", workers, len(batch.Results), len(ws))
		}
		for i := range ws {
			if batch.Names[i] != ws[i].Name {
				t.Fatalf("workers=%d: result %d named %q, want %q", workers, i, batch.Names[i], ws[i].Name)
			}
			for v := range ref[i] {
				if batch.Results[i].AVF[v] != ref[i][v] {
					t.Fatalf("workers=%d workload %d vertex %d: %v != %v",
						workers, i, v, batch.Results[i].AVF[v], ref[i][v])
				}
			}
		}
	}
}

// TestEngineSweepError: a bad workload must abort the batch with an error
// naming it.
func TestEngineSweepError(t *testing.T) {
	a, res, _ := solved(t, graphtest.Small(5), 1)
	ws := []Workload{
		{Name: "good", Inputs: randomInputs(a, 1)},
		{Name: "bad", Inputs: core.NewInputs()}, // missing every port pAVF
	}
	eng := New(Options{Workers: 1})
	if _, err := eng.Sweep(res, ws); err == nil {
		t.Fatal("Sweep accepted a workload with missing port pAVFs")
	} else if !strings.Contains(err.Error(), `"bad"`) {
		t.Fatalf("error does not name the failing workload: %v", err)
	}
}

// TestSweepContextCancel: a cancelled context must abort the batch with
// the cancellation cause instead of evaluating to the end, and must count
// the abort on the registry.
func TestSweepContextCancel(t *testing.T) {
	a, res, _ := solved(t, graphtest.Default(17), 1)
	var ws []Workload
	for seed := uint64(0); seed < 64; seed++ {
		ws = append(ws, Workload{
			Name:   string(rune('a' + seed%26)),
			Inputs: randomInputs(a, 200+seed),
		})
	}
	reg := obs.New()
	eng := New(Options{Workers: 4, ChunkSize: 1, Obs: reg})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: every worker must bail at its first claim
	if _, err := eng.SweepContext(ctx, res, ws); err == nil {
		t.Fatal("SweepContext completed under a cancelled context")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if got := reg.Counter("sweep.cancelled").Load(); got != 1 {
		t.Fatalf("sweep.cancelled = %d, want 1", got)
	}
	// The same engine still serves uncancelled sweeps afterwards.
	if _, err := eng.Sweep(res, ws[:4]); err != nil {
		t.Fatalf("Sweep after cancelled batch: %v", err)
	}
}

// TestPlanCacheLRU: the engine must reuse plans per design fingerprint
// and evict least-recently-used beyond capacity.
func TestPlanCacheLRU(t *testing.T) {
	reg := obs.New()
	eng := New(Options{CacheSize: 2, Obs: reg})
	results := make([]*core.Result, 3)
	for i := range results {
		_, res, _ := solved(t, graphtest.Small(uint64(20+i)), 1)
		results[i] = res
	}
	hits := func() int64 { return reg.Counter("sweep.plan_cache_hits").Load() }
	misses := func() int64 { return reg.Counter("sweep.plan_cache_misses").Load() }

	p0, err := eng.Plan(results[0])
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if got, _ := eng.Plan(results[0]); got != p0 {
		t.Fatal("second Plan call for the same design did not return the cached plan")
	}
	if hits() != 1 || misses() != 1 {
		t.Fatalf("after warm hit: hits=%d misses=%d, want 1/1", hits(), misses())
	}
	// Fill to capacity with design 1, then insert design 2: design 0 is
	// the LRU victim.
	if _, err := eng.Plan(results[1]); err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if _, err := eng.Plan(results[2]); err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if eng.CachedPlans() != 2 {
		t.Fatalf("cache holds %d plans, capacity is 2", eng.CachedPlans())
	}
	if got, _ := eng.Plan(results[0]); got == p0 {
		t.Fatal("evicted plan returned from cache")
	}
	if misses() != 4 {
		t.Fatalf("re-planning evicted design should miss: misses=%d, want 4", misses())
	}
}

// TestSweepSpeedup: on tinycore at 32 workloads the compiled batch sweep
// must beat 32 per-workload full solves by >= 5x (the ISSUE acceptance
// bar; in practice it is orders of magnitude).
func TestSweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	a, res, ws := tinycoreBatch(t, 32)
	eng := New(Options{Workers: 1}) // serial: measure algorithmic win, not parallelism
	if _, err := eng.Plan(res); err != nil {
		t.Fatalf("Plan: %v", err)
	}

	t0 := time.Now()
	batch, err := eng.Sweep(res, ws)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	sweepTime := time.Since(t0)

	t0 = time.Now()
	fresh := make([]*core.Result, len(ws))
	for i, w := range ws {
		if fresh[i], err = a.Solve(w.Inputs); err != nil {
			t.Fatalf("Solve: %v", err)
		}
	}
	solveTime := time.Since(t0)

	for i := range ws {
		if d := core.MaxAbsDiff(batch.Results[i], fresh[i]); d != 0 || math.IsNaN(d) {
			t.Fatalf("workload %d: sweep deviates from fresh solve by %v", i, d)
		}
	}
	ratio := float64(solveTime) / float64(sweepTime)
	t.Logf("32 workloads on tinycore: solve %v, sweep %v (%.1fx)", solveTime, sweepTime, ratio)
	if ratio < 5 {
		t.Errorf("batch sweep only %.1fx faster than per-workload solve, want >= 5x", ratio)
	}
}

// tinycoreBatch solves tinycore once and synthesizes n workloads as
// seeded perturbations of a measured ACE report's inputs.
func tinycoreBatch(t testing.TB, n int) (*core.Analyzer, *core.Result, []Workload) {
	t.Helper()
	p := workload.MD5Like(40)
	fd, err := tinycore.FlatDesign(len(p.Code))
	if err != nil {
		t.Fatalf("tinycore: %v", err)
	}
	g, err := graph.Build(fd)
	if err != nil {
		t.Fatalf("graph: %v", err)
	}
	a, err := core.NewAnalyzer(g, core.DefaultOptions())
	if err != nil {
		t.Fatalf("analyzer: %v", err)
	}
	perf, err := uarch.Run(p, uarch.DefaultConfig())
	if err != nil {
		t.Fatalf("uarch: %v", err)
	}
	base, err := tinycore.BindInputs(perf.Report)
	if err != nil {
		t.Fatalf("BindInputs: %v", err)
	}
	res, err := a.Solve(base)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	ws := make([]Workload, n)
	for i := range ws {
		ws[i] = Workload{Name: string(rune('A' + i%26)), Inputs: perturb(base, uint64(i))}
	}
	return a, res, ws
}

// perturb jitters every measured pAVF deterministically, clamped to [0,1].
func perturb(base *core.Inputs, seed uint64) *core.Inputs {
	rng := stats.New(0x9e3779b97f4a7c15 ^ seed)
	out := core.NewInputs()
	jitter := func(v float64) float64 {
		v += (rng.Float64() - 0.5) * 0.2
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	perturbPorts := func(dst, src map[core.StructPort]float64) {
		keys := make([]core.StructPort, 0, len(src))
		for sp := range src {
			keys = append(keys, sp)
		}
		sort.Slice(keys, func(i, j int) bool {
			return keys[i].Struct < keys[j].Struct ||
				(keys[i].Struct == keys[j].Struct && keys[i].Port < keys[j].Port)
		})
		for _, sp := range keys {
			dst[sp] = jitter(src[sp])
		}
	}
	perturbPorts(out.ReadPorts, base.ReadPorts)
	perturbPorts(out.WritePorts, base.WritePorts)
	for s, v := range base.StructAVF {
		out.StructAVF[s] = v
	}
	return out
}
