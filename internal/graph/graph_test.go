package graph

import (
	"strings"
	"testing"

	"seqavf/internal/netlist"
)

// pipelineDesign: S1 read -> q1 -> q2 -> S2 write, all 4 bits wide, one FUB.
func pipelineDesign(t *testing.T) *Graph {
	t.Helper()
	d := netlist.NewDesign("pipe")
	d.AddStructure("S1", 8, 4)
	d.AddStructure("S2", 8, 4)
	m := d.AddModule("m")
	b := netlist.Build(m)
	rd := b.SRead("s1_rd", 4, "S1", "rd")
	q1 := b.Seq("q1", 4, rd)
	q2 := b.Seq("q2", 4, q1)
	b.SWrite("s2_wr", "S2", "wr", q2)
	d.AddFub("F", "m")
	return mustBuild(t, d)
}

func mustBuild(t *testing.T, d *netlist.Design) *Graph {
	t.Helper()
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	fd, err := netlist.Flatten(d)
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	g, err := Build(fd)
	if err != nil {
		t.Fatalf("graph.Build: %v", err)
	}
	return g
}

func TestPipelineEdgesElementwise(t *testing.T) {
	g := pipelineDesign(t)
	q1, w, ok := g.VertexBase("F", "q1")
	if !ok || w != 4 {
		t.Fatalf("VertexBase q1: %v %d", ok, w)
	}
	rd, _, _ := g.VertexBase("F", "s1_rd")
	for b := VertexID(0); b < 4; b++ {
		preds := g.Preds(q1 + b)
		if len(preds) != 1 || preds[0] != rd+b {
			t.Fatalf("q1[%d] preds = %v, want [s1_rd[%d]]", b, preds, b)
		}
	}
	q2, _, _ := g.VertexBase("F", "q2")
	for b := VertexID(0); b < 4; b++ {
		succs := g.Succs(q1 + b)
		if len(succs) != 1 || succs[0] != q2+b {
			t.Fatalf("q1[%d] succs = %v", b, succs)
		}
	}
	// No loops in a straight pipeline.
	if vs := g.LoopSeqVertices(); len(vs) != 0 {
		t.Fatalf("unexpected loop vertices: %v", vs)
	}
}

func TestMixingOpAllToAll(t *testing.T) {
	d := netlist.NewDesign("mix")
	d.AddStructure("S", 4, 4)
	m := d.AddModule("m")
	b := netlist.Build(m)
	rd := b.SRead("rd", 4, "S", "r")
	sum := b.C("sum", 4, netlist.OpAdd, rd, rd)
	b.SWrite("wr", "S", "w", sum)
	d.AddFub("F", "m")
	g := mustBuild(t, d)
	sumBase, _, _ := g.VertexBase("F", "sum")
	for b := VertexID(0); b < 4; b++ {
		// Each sum bit depends on all 4 rd bits, twice (two operands).
		if got := len(g.Preds(sumBase + b)); got != 8 {
			t.Fatalf("sum[%d] has %d preds, want 8", b, got)
		}
	}
}

func TestMuxBroadcastAndSelect(t *testing.T) {
	d := netlist.NewDesign("mux")
	d.AddStructure("S", 4, 8)
	m := d.AddModule("m")
	b := netlist.Build(m)
	rd := b.SRead("rd", 8, "S", "r")
	sel := b.Select("selbit", 1, rd, 7)
	lo := b.Select("lo", 4, rd, 0)
	hi := b.Select("hi", 4, rd, 4)
	mx := b.Mux("mx", 4, sel, lo, hi)
	b.SWrite("wr", "S", "w", mx)
	d.AddFub("F", "m")
	g := mustBuild(t, d)

	// Select routes exact bits.
	loBase, _, _ := g.VertexBase("F", "lo")
	rdBase, _, _ := g.VertexBase("F", "rd")
	for i := VertexID(0); i < 4; i++ {
		p := g.Preds(loBase + i)
		if len(p) != 1 || p[0] != rdBase+i {
			t.Fatalf("lo[%d] preds %v", i, p)
		}
	}
	hiBase, _, _ := g.VertexBase("F", "hi")
	for i := VertexID(0); i < 4; i++ {
		p := g.Preds(hiBase + i)
		if len(p) != 1 || p[0] != rdBase+4+i {
			t.Fatalf("hi[%d] preds %v", i, p)
		}
	}
	// Mux: each output bit has 3 preds (sel broadcast + two data bits).
	mxBase, _, _ := g.VertexBase("F", "mx")
	selBase, _, _ := g.VertexBase("F", "selbit")
	for i := VertexID(0); i < 4; i++ {
		p := g.Preds(mxBase + i)
		if len(p) != 3 {
			t.Fatalf("mx[%d] has %d preds", i, len(p))
		}
		found := false
		for _, x := range p {
			if x == selBase {
				found = true
			}
		}
		if !found {
			t.Fatalf("mx[%d] missing select broadcast", i)
		}
	}
}

func loopDesign(t *testing.T) *Graph {
	t.Helper()
	d := netlist.NewDesign("loop")
	d.AddStructure("S", 4, 8)
	m := d.AddModule("m")
	b := netlist.Build(m)
	one := b.Const("one", 8, 1)
	// count feeds cnt_next feeds count: a 2-node loop (1 seq, 1 comb).
	b.Seq("count", 8, "cnt_next")
	b.C("cnt_next", 8, netlist.OpAdd, "count", one)
	// A non-loop pipeline hanging off the loop.
	rd := b.SRead("rd", 8, "S", "r")
	mix := b.C("mix", 8, netlist.OpXor, "count", rd)
	q := b.Seq("q", 8, mix)
	b.SWrite("wr", "S", "w", q)
	d.AddFub("F", "m")
	return mustBuild(t, d)
}

func TestLoopDetection(t *testing.T) {
	g := loopDesign(t)
	loopSeqs := g.LoopSeqVertices()
	if len(loopSeqs) != 8 { // the 8 bits of count
		t.Fatalf("loop seq bits = %d, want 8", len(loopSeqs))
	}
	for _, v := range loopSeqs {
		if g.Verts[v].Node.Name != "count" {
			t.Fatalf("unexpected loop member %s", g.Name(v))
		}
	}
	// cnt_next (comb) must also be marked in-loop but is not a seq.
	cn, _, _ := g.VertexBase("F", "cnt_next")
	if !g.Verts[cn].InLoop {
		t.Fatal("cnt_next should be in loop")
	}
	// q must not be in a loop.
	qb, _, _ := g.VertexBase("F", "q")
	if g.Verts[qb].InLoop {
		t.Fatal("q wrongly marked in loop")
	}
}

func TestSelfLoopSeq(t *testing.T) {
	d := netlist.NewDesign("hold")
	m := d.AddModule("m")
	b := netlist.Build(m)
	b.Seq("r", 4, "r") // r holds itself: self-loop
	b.Out("o", 4, "r")
	d.AddFub("F", "m")
	g := mustBuild(t, d)
	if got := len(g.LoopSeqVertices()); got != 4 {
		t.Fatalf("self-loop seq bits = %d, want 4", got)
	}
}

func TestCombLoopRejected(t *testing.T) {
	d := netlist.NewDesign("combloop")
	m := d.AddModule("m")
	b := netlist.Build(m)
	b.C("a", 1, netlist.OpNot, "b")
	b.C("b", 1, netlist.OpNot, "a")
	b.Out("o", 1, "a")
	d.AddFub("F", "m")
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	fd, err := netlist.Flatten(d)
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	_, err = Build(fd)
	if err == nil || !strings.Contains(err.Error(), "combinational loop") {
		t.Fatalf("want combinational loop error, got %v", err)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := loopDesign(t)
	fixed := func(v VertexID) bool {
		vx := &g.Verts[v]
		return vx.InLoop && vx.Node.Kind == netlist.KindSeq ||
			vx.Node.Kind == netlist.KindStructRead ||
			vx.Node.Kind == netlist.KindStructWrite ||
			vx.Node.Kind == netlist.KindConst
	}
	order, err := g.TopoOrder(fixed)
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := make(map[VertexID]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, v := range order {
		for _, w := range g.Succs(v) {
			if _, ok := pos[w]; !ok {
				continue // fixed
			}
			if pos[w] < pos[v] {
				t.Fatalf("edge %s -> %s violates order", g.Name(v), g.Name(w))
			}
		}
	}
	// All non-fixed vertices must appear.
	want := 0
	for v := 0; v < g.NumVerts(); v++ {
		if !fixed(VertexID(v)) {
			want++
		}
	}
	if len(order) != want {
		t.Fatalf("order covers %d of %d", len(order), want)
	}
}

func TestTopoOrderFailsWithoutCut(t *testing.T) {
	g := loopDesign(t)
	_, err := g.TopoOrder(func(VertexID) bool { return false })
	if err == nil {
		t.Fatal("TopoOrder should fail when loops are not cut")
	}
}

func TestCrossEdgesAndBoundary(t *testing.T) {
	d := netlist.NewDesign("two")
	ma := d.AddModule("ma")
	ba := netlist.Build(ma)
	ba.Out("q", 4, ba.Seq("r", 4, ba.In("x", 4)))
	mb := d.AddModule("mb")
	bb := netlist.Build(mb)
	bb.Out("y", 4, bb.Seq("r", 4, bb.In("p", 4)))
	d.AddFub("A", "ma")
	d.AddFub("B", "mb")
	d.ConnectPorts("A", "q", "B", "p")
	g := mustBuild(t, d)

	if len(g.CrossEdges) != 4 {
		t.Fatalf("cross edges = %d, want 4", len(g.CrossEdges))
	}
	aq, _, _ := g.VertexBase("A", "q")
	bp, _, _ := g.VertexBase("B", "p")
	for b := VertexID(0); b < 4; b++ {
		if !g.DrivenInputs[bp+b] {
			t.Fatalf("B.p[%d] should be driven", b)
		}
		if !g.ConsumedOutputs[aq+b] {
			t.Fatalf("A.q[%d] should be consumed", b)
		}
		if !g.IsCross(aq+b, bp+b) {
			t.Fatal("IsCross false for cross edge")
		}
	}
	// A.x is a boundary input: not driven.
	ax, _, _ := g.VertexBase("A", "x")
	if g.DrivenInputs[ax] {
		t.Fatal("A.x should be a boundary input")
	}
	// B.y is a boundary output: not consumed.
	by, _, _ := g.VertexBase("B", "y")
	if g.ConsumedOutputs[by] {
		t.Fatal("B.y should be a boundary output")
	}
}

func TestStructPortEdges(t *testing.T) {
	d := netlist.NewDesign("sp")
	d.AddStructure("RF", 16, 8)
	m := d.AddModule("m")
	b := netlist.Build(m)
	addr := b.In("addr", 4)
	rd := b.SRead("rd", 8, "RF", "r0", addr)
	q := b.Seq("q", 8, rd)
	b.SWrite("wr", "RF", "w0", q, addr)
	d.AddFub("F", "m")
	g := mustBuild(t, d)

	// Address bits feed every read-port data bit.
	rdBase, _, _ := g.VertexBase("F", "rd")
	for i := VertexID(0); i < 8; i++ {
		if got := len(g.Preds(rdBase + i)); got != 4 {
			t.Fatalf("rd[%d] preds = %d, want 4 addr bits", i, got)
		}
	}
	// Write port: q data bits map onto the single placeholder vertex,
	// plus 4 addr bits.
	wrBase, w, _ := g.VertexBase("F", "wr")
	if w != 1 {
		t.Fatalf("swrite width = %d", w)
	}
	if got := len(g.Preds(wrBase)); got != 12 { // 8 data + 4 addr
		t.Fatalf("wr preds = %d, want 12", got)
	}
}

func TestNameFormatting(t *testing.T) {
	g := pipelineDesign(t)
	q1, _, _ := g.VertexBase("F", "q1")
	if got := g.Name(q1 + 2); got != "F/q1[2]" {
		t.Fatalf("Name = %q", got)
	}
}

func TestEnabledSeqSelfLoop(t *testing.T) {
	d := netlist.NewDesign("en")
	m := d.AddModule("m")
	b := netlist.Build(m)
	en := b.In("en", 1)
	din := b.In("din", 8)
	b.SeqEn("r", 8, din, en)
	b.Out("q", 8, "r")
	d.AddFub("F", "m")
	g := mustBuild(t, d)
	// Every bit of the enabled register is a retention loop.
	if got := len(g.LoopSeqVertices()); got != 8 {
		t.Fatalf("enabled seq loop bits = %d, want 8", got)
	}
	// A plain register is not.
	d2 := netlist.NewDesign("plain")
	m2 := d2.AddModule("m")
	b2 := netlist.Build(m2)
	b2.Out("q", 8, b2.Seq("r", 8, b2.In("din", 8)))
	d2.AddFub("F", "m")
	g2 := mustBuild(t, d2)
	if got := len(g2.LoopSeqVertices()); got != 0 {
		t.Fatalf("plain seq loop bits = %d, want 0", got)
	}
}

func TestMeasureStats(t *testing.T) {
	g := loopDesign(t)
	st := Measure(g)
	if st.Fubs != 1 || st.Vertices != g.NumVerts() {
		t.Fatalf("basic counts wrong: %+v", st)
	}
	if st.SeqBits != 16 { // count + q
		t.Fatalf("seq bits = %d", st.SeqBits)
	}
	if st.LoopSeqBits != 8 {
		t.Fatalf("loop seq bits = %d", st.LoopSeqBits)
	}
	if st.OpBits[netlist.OpAdd] != 8 || st.OpBits[netlist.OpXor] != 8 {
		t.Fatalf("op mix = %v", st.OpBits)
	}
	if st.MaxCombDepth < 1 {
		t.Fatalf("comb depth = %d", st.MaxCombDepth)
	}
	if st.MaxFanout < 1 || st.Edges == 0 {
		t.Fatalf("connectivity stats: %+v", st)
	}
	var sb strings.Builder
	st.WriteText(&sb)
	if !strings.Contains(sb.String(), "operator mix") {
		t.Fatal("render incomplete")
	}
}
