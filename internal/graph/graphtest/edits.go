package graphtest

import (
	"fmt"
	"sort"

	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/stats"
)

// EditKind names one family of seeded netlist edits. The four structural
// kinds model the local ECOs an incremental re-solver must survive; the
// fifth changes nothing structural so measurement-only workload swaps
// can be proven to invalidate no FUB state.
type EditKind int

const (
	// EditAddFlop registers an existing signal behind a fresh flop.
	EditAddFlop EditKind = iota
	// EditRemoveFlop de-retimes: an eligible flop becomes a pass-through.
	EditRemoveFlop
	// EditRetimeCell moves a register across its driving combinational
	// cell (forward retiming of one stage).
	EditRetimeCell
	// EditRewireFubio re-points one cross-FUB connect at a different
	// upstream output port (or severs it when no alternative exists).
	EditRewireFubio
	// EditPavfOnly applies no structural change at all: the caller
	// perturbs the pAVF input tables instead.
	EditPavfOnly
)

func (k EditKind) String() string {
	switch k {
	case EditAddFlop:
		return "add-flop"
	case EditRemoveFlop:
		return "remove-flop"
	case EditRetimeCell:
		return "retime-cell"
	case EditRewireFubio:
		return "rewire-fubio"
	case EditPavfOnly:
		return "pavf-only"
	default:
		return fmt.Sprintf("EditKind(%d)", int(k))
	}
}

// Edit describes one applied edit: the kind that actually ran (a kind
// with no eligible site falls back to EditAddFlop, which always has
// one), a human-readable description, and the FUBs whose structure the
// edit touched — the set an incremental re-solver is allowed to mark
// dirty.
type Edit struct {
	Kind        EditKind
	Desc        string
	TouchedFubs []string
}

// ApplyEdit clones d.Flat, applies one seeded edit of the given kind,
// and rebuilds the bit graph. The original design is never mutated. The
// same (design, kind, seed) triple always yields the same edit.
func (d *Design) ApplyEdit(kind EditKind, seed uint64) (*netlist.FlatDesign, *graph.Graph, *Edit, error) {
	return ApplyEditFlat(d.Flat, d.Graph, kind, seed)
}

// ApplyEditFlat is ApplyEdit for a bare flattened design plus its
// extracted graph (used for loop-membership checks: removing a register
// on a feedback path would create a combinational loop, so such sites
// are never eligible).
func ApplyEditFlat(fd *netlist.FlatDesign, g *graph.Graph, kind EditKind, seed uint64) (*netlist.FlatDesign, *graph.Graph, *Edit, error) {
	out := fd.Clone()
	rng := stats.New(seed)
	var ed *Edit
	switch kind {
	case EditAddFlop:
		ed = addFlop(out, rng)
	case EditRemoveFlop:
		ed = removeFlop(out, g, rng)
	case EditRetimeCell:
		ed = retimeCell(out, g, rng)
	case EditRewireFubio:
		ed = rewireFubio(out, rng)
	case EditPavfOnly:
		ed = &Edit{Kind: EditPavfOnly, Desc: "no structural change (perturb pAVF tables)"}
	default:
		return nil, nil, nil, fmt.Errorf("graphtest: unknown edit kind %v", kind)
	}
	if ed == nil {
		// No eligible site for the requested kind on this seed; adding a
		// flop is always possible and keeps the harness total.
		ed = addFlop(out, rng)
		ed.Desc = fmt.Sprintf("%s (no eligible site; fell back): %s", kind, ed.Desc)
	}
	sort.Strings(ed.TouchedFubs)
	ng, err := graph.Build(out)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("graphtest: edited design invalid (%s): %w", ed.Desc, err)
	}
	return out, ng, ed, nil
}

// freshName returns a node name not yet used in f.
func freshName(f *netlist.FlatFub, prefix string) string {
	used := make(map[string]bool, len(f.Nodes))
	for _, n := range f.Nodes {
		used[n.Name] = true
	}
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		if !used[name] {
			return name
		}
	}
}

// producesSignal reports whether a flat node yields a value another node
// may consume as an input.
func producesSignal(n *netlist.Node) bool {
	switch n.Kind {
	case netlist.KindStructWrite, netlist.KindOutput:
		return false
	}
	return n.Class != netlist.ClassDebug
}

// nodeInLoop reports whether any bit of the named node sits on a
// sequential feedback loop in the pre-edit graph.
func nodeInLoop(g *graph.Graph, fub, node string) bool {
	base, width, ok := g.VertexBase(fub, node)
	if !ok {
		return true // unknown to the graph: treat as ineligible
	}
	for i := 0; i < width; i++ {
		if g.Verts[int(base)+i].InLoop {
			return true
		}
	}
	return false
}

func addFlop(fd *netlist.FlatDesign, rng *stats.RNG) *Edit {
	type site struct {
		fub *netlist.FlatFub
		src *netlist.Node
	}
	var sites []site
	for _, f := range fd.Fubs {
		for _, n := range f.Nodes {
			if producesSignal(n) {
				sites = append(sites, site{f, n})
			}
		}
	}
	s := sites[rng.Intn(len(sites))]
	name := freshName(s.fub, "eco_add_q")
	s.fub.AddNode(&netlist.Node{
		Name: name, Kind: netlist.KindSeq, Width: s.src.Width, Inputs: []string{s.src.Name},
	})
	return &Edit{
		Kind:        EditAddFlop,
		Desc:        fmt.Sprintf("add flop %s/%s registering %s", s.fub.Name, name, s.src.Name),
		TouchedFubs: []string{s.fub.Name},
	}
}

func removeFlop(fd *netlist.FlatDesign, g *graph.Graph, rng *stats.RNG) *Edit {
	type site struct {
		fub *netlist.FlatFub
		q   *netlist.Node
	}
	var sites []site
	for _, f := range fd.Fubs {
		for _, n := range f.Nodes {
			// A looped flop cannot lose its register (the cut becomes a
			// combinational cycle); an enabled flop holds state the pass
			// node cannot express.
			if n.Kind == netlist.KindSeq && !n.HasEnable() && n.Class != netlist.ClassDebug &&
				!nodeInLoop(g, f.Name, n.Name) {
				sites = append(sites, site{f, n})
			}
		}
	}
	if len(sites) == 0 {
		return nil
	}
	s := sites[rng.Intn(len(sites))]
	s.q.Kind = netlist.KindComb
	s.q.Op = netlist.OpPass
	s.q.Clock = ""
	s.q.Init = 0
	return &Edit{
		Kind:        EditRemoveFlop,
		Desc:        fmt.Sprintf("remove flop %s/%s (now a pass-through)", s.fub.Name, s.q.Name),
		TouchedFubs: []string{s.fub.Name},
	}
}

func retimeCell(fd *netlist.FlatDesign, g *graph.Graph, rng *stats.RNG) *Edit {
	type site struct {
		fub  *netlist.FlatFub
		q, c *netlist.Node
	}
	var sites []site
	for _, f := range fd.Fubs {
		for _, n := range f.Nodes {
			if n.Kind != netlist.KindSeq || n.HasEnable() || n.Class == netlist.ClassDebug ||
				nodeInLoop(g, f.Name, n.Name) {
				continue
			}
			c := f.Node(n.Inputs[0])
			if c == nil || c.Kind != netlist.KindComb || len(c.Inputs) == 0 {
				continue
			}
			sites = append(sites, site{f, n, c})
		}
	}
	if len(sites) == 0 {
		return nil
	}
	s := sites[rng.Intn(len(sites))]
	src := s.fub.Node(s.c.Inputs[0])
	name := freshName(s.fub, "eco_ret_q")
	// The register moves from the cell's output to its first input: the
	// old flop becomes a pass-through of the cell, and a fresh flop of
	// the input signal's width takes its place upstream.
	s.q.Kind = netlist.KindComb
	s.q.Op = netlist.OpPass
	s.q.Clock = ""
	s.q.Init = 0
	s.fub.AddNode(&netlist.Node{
		Name: name, Kind: netlist.KindSeq, Width: src.Width, Inputs: []string{src.Name},
	})
	s.c.Inputs[0] = name
	return &Edit{
		Kind:        EditRetimeCell,
		Desc:        fmt.Sprintf("retime %s/%s across cell %s (new flop %s)", s.fub.Name, s.q.Name, s.c.Name, name),
		TouchedFubs: []string{s.fub.Name},
	}
}

func rewireFubio(fd *netlist.FlatDesign, rng *stats.RNG) *Edit {
	if len(fd.Connects) == 0 {
		return nil
	}
	ci := rng.Intn(len(fd.Connects))
	conn := &fd.Connects[ci]
	fubIdx := make(map[string]int, len(fd.Fubs))
	for i, f := range fd.Fubs {
		fubIdx[f.Name] = i
	}
	toIdx := fubIdx[conn.To.Fub]
	toFub := fd.Fub(conn.To.Fub)
	var width int
	if toFub != nil {
		if in := toFub.Node(conn.To.Port); in != nil {
			width = in.Width
		}
	}
	// Alternative sources: same-width output ports of strictly earlier
	// FUBs, preserving the feed-forward FUB order generated designs
	// guarantee (no new cross-FUB cycles, so no role changes outside the
	// touched set).
	type src struct{ fub, port string }
	var cands []src
	for i, f := range fd.Fubs {
		if i >= toIdx {
			break
		}
		for _, n := range f.Nodes {
			if n.Kind == netlist.KindOutput && n.Width == width &&
				!(f.Name == conn.From.Fub && n.Name == conn.From.Port) {
				cands = append(cands, src{f.Name, n.Name})
			}
		}
	}
	oldFrom, to := conn.From, conn.To
	if len(cands) == 0 {
		// No alternative driver: sever the connect; the input port falls
		// back to its boundary pseudo-structure. (conn dangles once the
		// slice is spliced, hence the copies above.)
		fd.Connects = append(fd.Connects[:ci], fd.Connects[ci+1:]...)
		return &Edit{
			Kind:        EditRewireFubio,
			Desc:        fmt.Sprintf("sever connect %s -> %s", oldFrom, to),
			TouchedFubs: dedupFubs(oldFrom.Fub, to.Fub),
		}
	}
	c := cands[rng.Intn(len(cands))]
	conn.From = netlist.PortRef{Fub: c.fub, Port: c.port}
	return &Edit{
		Kind:        EditRewireFubio,
		Desc:        fmt.Sprintf("rewire %s: %s -> %s.%s", conn.To, oldFrom, c.fub, c.port),
		TouchedFubs: dedupFubs(oldFrom.Fub, c.fub, conn.To.Fub),
	}
}

func dedupFubs(names ...string) []string {
	seen := make(map[string]bool, len(names))
	out := names[:0]
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
