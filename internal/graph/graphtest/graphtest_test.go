package graphtest

import (
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/graph"
)

// TestDeterministic: the same Config must reproduce the same design
// bit-for-bit — property tests report seeds, and a reported seed has to
// replay the failure.
func TestDeterministic(t *testing.T) {
	for _, cfg := range []Config{Default(7), Small(7)} {
		a1 := analyzer(t, cfg)
		a2 := analyzer(t, cfg)
		if a1.Fingerprint() != a2.Fingerprint() {
			t.Errorf("config %+v: two generations disagree: %x vs %x",
				cfg, a1.Fingerprint(), a2.Fingerprint())
		}
	}
	if analyzer(t, Small(1)).Fingerprint() == analyzer(t, Small(2)).Fingerprint() {
		t.Error("different seeds produced identical designs")
	}
}

// TestRoleCoverage: across a handful of seeds the generator must exercise
// every structural feature the SART walks care about, or property tests
// silently stop covering them.
func TestRoleCoverage(t *testing.T) {
	var loops, ctrls, reads, writes, verts int
	for seed := uint64(0); seed < 8; seed++ {
		a := analyzer(t, Default(seed))
		loops += a.NumLoopTerms()
		reads += len(a.ReadPortTerms())
		writes += len(a.WritePortTerms())
		verts += a.G.NumVerts()
		for v := 0; v < a.G.NumVerts(); v++ {
			if a.Role(graph.VertexID(v)) == core.RoleControl {
				ctrls++
			}
		}
	}
	if verts == 0 {
		t.Fatal("generated designs have no bits")
	}
	if loops == 0 {
		t.Error("no feedback loops generated across 8 seeds")
	}
	if ctrls == 0 {
		t.Error("no control-register bits generated across 8 seeds")
	}
	if reads == 0 || writes == 0 {
		t.Errorf("structure ports missing: %d reads, %d writes", reads, writes)
	}
}

// TestSolvable: every generated design must solve without error and yield
// AVFs in [0,1].
func TestSolvable(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		a := analyzer(t, Small(seed))
		in := core.NewInputs()
		for _, sp := range a.ReadPortTerms() {
			in.ReadPorts[sp] = 0.5
		}
		for _, sp := range a.WritePortTerms() {
			in.WritePorts[sp] = 0.25
		}
		res, err := a.Solve(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for v, avf := range res.AVF {
			if avf < 0 || avf > 1 {
				t.Fatalf("seed %d: vertex %d AVF %v out of [0,1]", seed, v, avf)
			}
		}
	}
}

func analyzer(t *testing.T, cfg Config) *core.Analyzer {
	t.Helper()
	d, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate(%+v): %v", cfg, err)
	}
	a, err := core.NewAnalyzer(d.Graph, core.DefaultOptions())
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	return a
}
