// Package graphtest generates seeded random multi-FUB designs for tests:
// layered DAGs of combinational and sequential nodes with configurable FUB
// count, fan-in/out, feedback-loop edges, control registers, debug taps,
// structure ports, and cross-FUB wiring. Every knob the SART walks care
// about (walk sources and sinks, loop-boundary cuts, stripped DFX logic,
// boundary pseudo-structures) appears in generated designs, so property
// tests over random seeds exercise the full role vocabulary.
//
// Generation is deterministic in Config (SplitMix64 streams from
// internal/stats): the same Config always yields the same design, so a
// failing seed reported by a property test reproduces exactly.
package graphtest

import (
	"fmt"

	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/stats"
)

// Config parameterizes the generator. Start from Default or Small.
type Config struct {
	Seed uint64
	// Fubs is the FUB count; cross-FUB connects form a feed-forward DAG
	// over them (values only flow from lower-indexed FUBs to higher).
	Fubs int
	// Layers and LayerNodes shape each FUB's DAG: Layers ranks of
	// LayerNodes nodes, each drawing inputs from any earlier rank.
	Layers     int
	LayerNodes int
	// FanIn bounds the inputs per combinational node (>= 1). Fan-out is
	// emergent: every produced signal stays eligible as a later input.
	FanIn int
	// Width is the bit width of every signal.
	Width int
	// Reads / Writes count the structure read/write ports per FUB.
	Reads, Writes int
	// PSeq is the probability a layer node is registered (KindSeq).
	PSeq float64
	// PLoop is the per-layer probability of inserting an accumulator
	// feedback loop (a sequential cycle — SART's §4.3 loop boundary).
	PLoop float64
	// PCtrl is the per-node probability of masking with a configuration
	// control register.
	PCtrl float64
	// PDebug is the per-node probability of attaching a DFX debug tap.
	PDebug float64
	// PCross is the probability a FUB input port is driven by an earlier
	// FUB's output; undriven inputs become boundary pseudo-structures.
	PCross float64
	// StructEntries sizes generated structures.
	StructEntries int
}

// Default returns a mid-sized configuration (a few thousand bits).
func Default(seed uint64) Config {
	return Config{
		Seed:          seed,
		Fubs:          6,
		Layers:        5,
		LayerNodes:    4,
		FanIn:         3,
		Width:         8,
		Reads:         2,
		Writes:        2,
		PSeq:          0.4,
		PLoop:         0.3,
		PCtrl:         0.1,
		PDebug:        0.1,
		PCross:        0.8,
		StructEntries: 8,
	}
}

// Small returns a tiny configuration for high-iteration property tests
// (hundreds of bits; a full solve takes well under a millisecond).
func Small(seed uint64) Config {
	return Config{
		Seed:          seed,
		Fubs:          3,
		Layers:        3,
		LayerNodes:    2,
		FanIn:         2,
		Width:         3,
		Reads:         1,
		Writes:        1,
		PSeq:          0.5,
		PLoop:         0.35,
		PCtrl:         0.15,
		PDebug:        0.15,
		PCross:        0.7,
		StructEntries: 4,
	}
}

// Design bundles a generated netlist with its flattened form and extracted
// bit graph, ready to hand to core.NewAnalyzer.
type Design struct {
	Config  Config
	Netlist *netlist.Design
	Flat    *netlist.FlatDesign
	Graph   *graph.Graph
}

// Generate builds, validates, flattens, and graph-extracts one random
// design. Errors indicate an invalid Config, not an unlucky seed: every
// reachable random choice produces a valid netlist.
func Generate(cfg Config) (*Design, error) {
	if cfg.Fubs < 1 || cfg.Layers < 1 || cfg.LayerNodes < 1 || cfg.FanIn < 1 ||
		cfg.Width < 1 || cfg.Width > netlist.MaxWidth || cfg.Reads < 0 || cfg.Writes < 0 {
		return nil, fmt.Errorf("graphtest: invalid config %+v", cfg)
	}
	if cfg.StructEntries < 1 {
		cfg.StructEntries = 4
	}
	rng := stats.New(cfg.Seed)
	d := netlist.NewDesign(fmt.Sprintf("graphtest_%d", cfg.Seed))

	type outPort struct{ fub, port string }
	var openOutputs []outPort
	for fi := 0; fi < cfg.Fubs; fi++ {
		fubName := fmt.Sprintf("F%02d", fi)
		m := d.AddModule(fmt.Sprintf("m%02d", fi))
		b := netlist.Build(m)
		frng := rng.Fork(uint64(fi))

		uid := 0
		fresh := func(prefix string) string {
			uid++
			return fmt.Sprintf("%s_%d", prefix, uid)
		}

		// Sources: input ports plus structure read ports.
		var pool []string
		nIn := 1 + frng.Intn(2)
		var inPorts []string
		for k := 0; k < nIn; k++ {
			p := b.In(fmt.Sprintf("in%d", k), cfg.Width)
			inPorts = append(inPorts, p)
			pool = append(pool, p)
		}
		for k := 0; k < cfg.Reads; k++ {
			sname := fmt.Sprintf("G%02dR%d", fi, k)
			d.AddStructure(sname, cfg.StructEntries, cfg.Width)
			pool = append(pool, b.SRead(fresh("srd"), cfg.Width, sname, "rd"))
		}

		// Control registers, created lazily on first mask.
		var ctrl string
		ctrlOf := func() string {
			if ctrl == "" {
				ctrl = b.CtrlReg("cfg_mask", cfg.Width, "cfg_mask", uint64(frng.Intn(1<<uint(min(cfg.Width, 16)))))
			}
			return ctrl
		}

		pick := func() string { return pool[frng.Intn(len(pool))] }
		combOps := []netlist.Op{netlist.OpXor, netlist.OpAnd, netlist.OpOr, netlist.OpAdd, netlist.OpNot, netlist.OpPass}
		for l := 0; l < cfg.Layers; l++ {
			// Feedback accumulator: a sequential loop cut by SART's
			// loop-boundary injection.
			if frng.Bool(cfg.PLoop) {
				acc := fresh("acc")
				nxt := fresh("accnext")
				b.M.Add(&netlist.Node{Name: acc, Kind: netlist.KindSeq, Width: cfg.Width, Inputs: []string{nxt}})
				b.C(nxt, cfg.Width, netlist.OpAdd, acc, pick())
				pool = append(pool, b.C(fresh("mix"), cfg.Width, netlist.OpXor, acc, pick()))
			}
			for j := 0; j < cfg.LayerNodes; j++ {
				op := combOps[frng.Intn(len(combOps))]
				var inputs []string
				switch op {
				case netlist.OpNot, netlist.OpPass:
					inputs = []string{pick()}
				case netlist.OpAdd:
					inputs = []string{pick(), pick()}
				default:
					n := 2 + frng.Intn(cfg.FanIn)
					for i := 0; i < n; i++ {
						inputs = append(inputs, pick())
					}
				}
				sig := b.C(fmt.Sprintf("l%d_n%d", l, j), cfg.Width, op, inputs...)
				if frng.Bool(cfg.PCtrl) {
					sig = b.C(fresh("gate"), cfg.Width, netlist.OpAnd, sig, ctrlOf())
				}
				if frng.Bool(cfg.PDebug) {
					b.M.Add(&netlist.Node{
						Name: fresh("dbg"), Kind: netlist.KindSeq,
						Width: cfg.Width, Inputs: []string{sig}, Class: netlist.ClassDebug,
					})
				}
				if frng.Bool(cfg.PSeq) {
					sig = b.Seq(fmt.Sprintf("l%d_q%d", l, j), cfg.Width, sig)
				}
				pool = append(pool, sig)
			}
		}

		// Sinks: structure write ports and FUB outputs.
		for k := 0; k < cfg.Writes; k++ {
			sname := fmt.Sprintf("G%02dW%d", fi, k)
			d.AddStructure(sname, cfg.StructEntries, cfg.Width)
			b.SWrite(fresh("swr"), sname, "wr", pick())
		}
		nOut := 1 + frng.Intn(2)
		var outs []string
		for k := 0; k < nOut; k++ {
			outs = append(outs, b.Out(fmt.Sprintf("out%d", k), cfg.Width, pick()))
		}

		d.AddFub(fubName, m.Name)
		// Feed-forward cross-FUB wiring; undriven inputs stay boundary
		// pseudo-structures.
		if fi > 0 && len(openOutputs) > 0 {
			for _, in := range inPorts {
				if !frng.Bool(cfg.PCross) {
					continue
				}
				src := openOutputs[frng.Intn(len(openOutputs))]
				d.ConnectPorts(src.fub, src.port, fubName, in)
			}
		}
		for _, p := range outs {
			openOutputs = append(openOutputs, outPort{fub: fubName, port: p})
		}
	}

	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("graphtest: generated netlist invalid: %w", err)
	}
	fd, err := netlist.Flatten(d)
	if err != nil {
		return nil, fmt.Errorf("graphtest: %w", err)
	}
	g, err := graph.Build(fd)
	if err != nil {
		return nil, fmt.Errorf("graphtest: %w", err)
	}
	return &Design{Config: cfg, Netlist: d, Flat: fd, Graph: g}, nil
}
