// Package graph extracts the bit-level node graph that SART walks from a
// flattened netlist (the paper's "node graph extracted from RTL").
//
// Every word-level netlist node expands to one vertex per bit. Edges follow
// the operator's bit-dependency class: elementwise operators connect bit i
// to bit i (with mux selects and register enables broadcasting), mixing
// operators (adders, comparators, shifts, decoders) connect every input bit
// to every output bit, and bit-routing operators (select/concat/constant
// shifts) connect the exact positions they route.
//
// The package also finds loops (Tarjan SCC) — the paper's Section 4.3
// challenge — and produces topological orders used by the propagation
// fixpoint, treating a caller-supplied set of vertices as cut points.
package graph

import (
	"fmt"

	"seqavf/internal/netlist"
)

// VertexID indexes a vertex within a Graph.
type VertexID int32

// Vertex is one bit of one flat netlist node.
type Vertex struct {
	Fub  int32 // index into Graph.FubNames
	Node *netlist.Node
	Bit  int32
	// InLoop marks membership in a non-trivial strongly connected
	// component (or a self-loop).
	InLoop bool
}

// Graph is the bit-level dependency graph of a flattened design.
type Graph struct {
	Design   *netlist.FlatDesign
	FubNames []string
	Verts    []Vertex

	succOff, predOff []int32
	succs, preds     []VertexID

	// base maps "fub/node" to the node's first vertex; a node's bit b is
	// base + b.
	base map[string]VertexID

	// CrossEdges lists inter-FUB edges (from FUB output-port bits to FUB
	// input-port bits) — the FUBIO connections merged between relaxation
	// iterations in partitioned mode.
	CrossEdges []Edge

	// DrivenInputs marks FUB input-port vertices driven by a connect;
	// undriven input ports belong to the design boundary
	// pseudo-structure.
	DrivenInputs map[VertexID]bool
	// ConsumedOutputs marks FUB output-port vertices consumed by a
	// connect; unconsumed output ports sink into the boundary
	// pseudo-structure.
	ConsumedOutputs map[VertexID]bool
}

// Edge is a directed bit-level dependency.
type Edge struct {
	From, To VertexID
}

// Build extracts the bit graph from fd.
func Build(fd *netlist.FlatDesign) (*Graph, error) {
	g := &Graph{
		Design:          fd,
		base:            make(map[string]VertexID),
		DrivenInputs:    make(map[VertexID]bool),
		ConsumedOutputs: make(map[VertexID]bool),
	}
	// Create vertices, FUB-contiguous.
	for fi, fub := range fd.Fubs {
		g.FubNames = append(g.FubNames, fub.Name)
		for _, n := range fub.Nodes {
			g.base[fub.Name+"/"+n.Name] = VertexID(len(g.Verts))
			for b := 0; b < n.Width; b++ {
				g.Verts = append(g.Verts, Vertex{Fub: int32(fi), Node: n, Bit: int32(b)})
			}
		}
	}
	var edges []Edge
	addEdge := func(from, to VertexID) { edges = append(edges, Edge{From: from, To: to}) }
	for _, fub := range fd.Fubs {
		for _, n := range fub.Nodes {
			if err := g.nodeEdges(fub, n, addEdge); err != nil {
				return nil, err
			}
		}
	}
	// Inter-FUB connects.
	for _, c := range fd.Connects {
		fromFub := fd.Fub(c.From.Fub)
		toFub := fd.Fub(c.To.Fub)
		if fromFub == nil || toFub == nil {
			return nil, fmt.Errorf("graph: connect references unknown FUB: %v -> %v", c.From, c.To)
		}
		fn := fromFub.Node(c.From.Port)
		tn := toFub.Node(c.To.Port)
		if fn == nil || tn == nil || fn.Width != tn.Width {
			return nil, fmt.Errorf("graph: bad connect %v -> %v", c.From, c.To)
		}
		fb := g.base[c.From.Fub+"/"+c.From.Port]
		tb := g.base[c.To.Fub+"/"+c.To.Port]
		for b := 0; b < fn.Width; b++ {
			e := Edge{From: fb + VertexID(b), To: tb + VertexID(b)}
			edges = append(edges, e)
			g.CrossEdges = append(g.CrossEdges, e)
			g.DrivenInputs[e.To] = true
			g.ConsumedOutputs[e.From] = true
		}
	}
	g.buildCSR(edges)
	g.markLoops()
	if err := g.checkCombLoops(); err != nil {
		return nil, err
	}
	return g, nil
}

// nodeEdges emits the in-edges of every bit of n.
func (g *Graph) nodeEdges(fub *netlist.FlatFub, n *netlist.Node, add func(from, to VertexID)) error {
	out := g.base[fub.Name+"/"+n.Name]
	in := func(i int) (VertexID, int) {
		ref := n.Inputs[i]
		b := g.base[fub.Name+"/"+ref]
		return b, fub.Node(ref).Width
	}
	allToAll := func(i int) {
		ib, iw := in(i)
		for x := 0; x < iw; x++ {
			for y := 0; y < n.Width; y++ {
				add(ib+VertexID(x), out+VertexID(y))
			}
		}
	}
	elementwise := func(i int) {
		ib, _ := in(i)
		for b := 0; b < n.Width; b++ {
			add(ib+VertexID(b), out+VertexID(b))
		}
	}
	broadcast := func(i int) {
		ib, _ := in(i)
		for b := 0; b < n.Width; b++ {
			add(ib, out+VertexID(b))
		}
	}
	switch n.Kind {
	case netlist.KindInput, netlist.KindConst:
		// No intra-FUB edges; inputs gain edges from connects.
	case netlist.KindOutput:
		elementwise(0)
	case netlist.KindSeq:
		elementwise(0)
		if n.HasEnable() {
			broadcast(1)
			// An enabled register holds its value when the enable is low:
			// physically a recirculation mux. The self-edge makes the
			// retention explicit, so SART classifies the bit as a loop
			// boundary (§4's first assumption: data held for more than
			// one cycle cannot be reasoned about as a simple pipeline).
			for b := 0; b < n.Width; b++ {
				add(out+VertexID(b), out+VertexID(b))
			}
		}
	case netlist.KindStructRead:
		// Address/enable inputs feed the structure: they terminate at the
		// port vertices (every addr bit affects every data bit).
		for i := range n.Inputs {
			allToAll(i)
		}
	case netlist.KindStructWrite:
		// Data elementwise into the port's bit vertices (node width is a
		// placeholder 1; map data bit d to vertex min(d, width-1)).
		db, dw := in(0)
		for b := 0; b < dw; b++ {
			t := b
			if t >= n.Width {
				t = n.Width - 1
			}
			add(db+VertexID(b), out+VertexID(t))
		}
		for i := 1; i < len(n.Inputs); i++ {
			allToAll(i)
		}
	case netlist.KindComb:
		switch n.Op {
		case netlist.OpPass, netlist.OpNot:
			elementwise(0)
		case netlist.OpAnd, netlist.OpOr, netlist.OpXor:
			for i := range n.Inputs {
				elementwise(i)
			}
		case netlist.OpNand, netlist.OpNor, netlist.OpXnor:
			elementwise(0)
			elementwise(1)
		case netlist.OpMux:
			broadcast(0)
			elementwise(1)
			elementwise(2)
		case netlist.OpAdd, netlist.OpSub, netlist.OpMul, netlist.OpShl, netlist.OpShr,
			netlist.OpEq, netlist.OpNe, netlist.OpLt,
			netlist.OpRedAnd, netlist.OpRedOr, netlist.OpRedXor, netlist.OpDecode:
			for i := range n.Inputs {
				allToAll(i)
			}
		case netlist.OpSelect:
			ib, _ := in(0)
			for b := 0; b < n.Width; b++ {
				add(ib+VertexID(int64(b)+n.Param), out+VertexID(b))
			}
		case netlist.OpConcat:
			off := 0
			for i := range n.Inputs {
				ib, iw := in(i)
				for b := 0; b < iw; b++ {
					add(ib+VertexID(b), out+VertexID(off+b))
				}
				off += iw
			}
		case netlist.OpShlK:
			ib, _ := in(0)
			for b := int(n.Param); b < n.Width; b++ {
				add(ib+VertexID(b-int(n.Param)), out+VertexID(b))
			}
		case netlist.OpShrK:
			ib, _ := in(0)
			for b := 0; b < n.Width-int(n.Param); b++ {
				add(ib+VertexID(b+int(n.Param)), out+VertexID(b))
			}
		default:
			return fmt.Errorf("graph: FUB %s node %s: unsupported op %v", fub.Name, n.Name, n.Op)
		}
	default:
		return fmt.Errorf("graph: FUB %s node %s: unsupported kind %v", fub.Name, n.Name, n.Kind)
	}
	return nil
}

func (g *Graph) buildCSR(edges []Edge) {
	nv := len(g.Verts)
	g.succOff = make([]int32, nv+1)
	g.predOff = make([]int32, nv+1)
	for _, e := range edges {
		g.succOff[e.From+1]++
		g.predOff[e.To+1]++
	}
	for i := 0; i < nv; i++ {
		g.succOff[i+1] += g.succOff[i]
		g.predOff[i+1] += g.predOff[i]
	}
	g.succs = make([]VertexID, len(edges))
	g.preds = make([]VertexID, len(edges))
	sFill := make([]int32, nv)
	pFill := make([]int32, nv)
	for _, e := range edges {
		g.succs[g.succOff[e.From]+sFill[e.From]] = e.To
		sFill[e.From]++
		g.preds[g.predOff[e.To]+pFill[e.To]] = e.From
		pFill[e.To]++
	}
}

// NumVerts returns the vertex count.
func (g *Graph) NumVerts() int { return len(g.Verts) }

// Succs returns v's out-neighbors. The slice aliases internal storage.
func (g *Graph) Succs(v VertexID) []VertexID { return g.succs[g.succOff[v]:g.succOff[v+1]] }

// Preds returns v's in-neighbors. The slice aliases internal storage.
func (g *Graph) Preds(v VertexID) []VertexID { return g.preds[g.predOff[v]:g.predOff[v+1]] }

// VertexBase returns the first vertex of node within fub and the node's
// width; ok is false if unknown.
func (g *Graph) VertexBase(fub, node string) (base VertexID, width int, ok bool) {
	b, ok := g.base[fub+"/"+node]
	if !ok {
		return 0, 0, false
	}
	f := g.Design.Fub(fub)
	return b, f.Node(node).Width, true
}

// Name returns a human-readable "fub/node[bit]" label for v.
func (g *Graph) Name(v VertexID) string {
	vx := &g.Verts[v]
	return fmt.Sprintf("%s/%s[%d]", g.FubNames[vx.Fub], vx.Node.Name, vx.Bit)
}

// markLoops runs iterative Tarjan SCC and sets InLoop on every vertex in a
// non-trivial component or with a self-edge.
func (g *Graph) markLoops() {
	n := len(g.Verts)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []VertexID
	next := int32(0)

	type frame struct {
		v  VertexID
		ei int32
	}
	var callStack []frame
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		callStack = append(callStack[:0], frame{v: VertexID(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, VertexID(root))
		onStack[root] = true
		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			v := fr.v
			ss := g.Succs(v)
			if int(fr.ei) < len(ss) {
				w := ss[fr.ei]
				fr.ei++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// Pop.
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				// v is an SCC root; pop the component.
				var comp []VertexID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) > 1 {
					for _, w := range comp {
						g.Verts[w].InLoop = true
					}
				} else {
					// Self-loop check.
					w := comp[0]
					for _, s := range g.Succs(w) {
						if s == w {
							g.Verts[w].InLoop = true
							break
						}
					}
				}
			}
		}
	}
}

// checkCombLoops rejects cycles that contain no sequential element —
// invalid RTL that no loop-boundary cut can break.
func (g *Graph) checkCombLoops() error {
	// Within the loop-marked subgraph, cut all sequential vertices and
	// look for a remaining cycle among combinational loop members.
	n := len(g.Verts)
	state := make([]uint8, n) // 0 unvisited, 1 in progress, 2 done
	var stack []VertexID
	isCut := func(v VertexID) bool {
		k := g.Verts[v].Node.Kind
		return k == netlist.KindSeq || k == netlist.KindStructRead || k == netlist.KindStructWrite
	}
	for root := 0; root < n; root++ {
		v0 := VertexID(root)
		if !g.Verts[v0].InLoop || isCut(v0) || state[v0] != 0 {
			continue
		}
		// Iterative DFS with explicit post-processing.
		stack = append(stack[:0], v0)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			if state[v] == 0 {
				state[v] = 1
				for _, w := range g.Succs(v) {
					if !g.Verts[w].InLoop || isCut(w) {
						continue
					}
					if state[w] == 1 {
						return fmt.Errorf("graph: combinational loop through %s and %s", g.Name(v), g.Name(w))
					}
					if state[w] == 0 {
						stack = append(stack, w)
					}
				}
			} else {
				state[v] = 2
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// LoopSeqVertices returns all sequential vertices that belong to loops —
// the nodes that receive the injected loop-boundary pAVF.
func (g *Graph) LoopSeqVertices() []VertexID {
	var out []VertexID
	for i := range g.Verts {
		if g.Verts[i].InLoop && g.Verts[i].Node.Kind == netlist.KindSeq {
			out = append(out, VertexID(i))
		}
	}
	return out
}

// TopoOrder returns a topological order of all vertices for which
// fixed(v) is false. Fixed vertices hold precomputed values, so edges
// leaving them impose no ordering constraint and the vertices themselves
// are not ordered. It returns an error if a cycle remains among non-fixed
// vertices (i.e. the loop cut was incomplete).
func (g *Graph) TopoOrder(fixed func(VertexID) bool) ([]VertexID, error) {
	n := len(g.Verts)
	indeg := make([]int32, n)
	isFixed := make([]bool, n)
	for v := 0; v < n; v++ {
		isFixed[v] = fixed(VertexID(v))
	}
	free := 0
	for v := 0; v < n; v++ {
		if isFixed[v] {
			continue
		}
		free++
		for _, p := range g.Preds(VertexID(v)) {
			if !isFixed[p] {
				indeg[v]++
			}
		}
	}
	order := make([]VertexID, 0, free)
	queue := make([]VertexID, 0, free)
	for v := 0; v < n; v++ {
		if !isFixed[v] && indeg[v] == 0 {
			queue = append(queue, VertexID(v))
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, w := range g.Succs(v) {
			if isFixed[w] {
				continue
			}
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != free {
		return nil, fmt.Errorf("graph: cycle remains among %d unordered vertices (loop cut incomplete)", free-len(order))
	}
	return order, nil
}

// FubOf returns the FUB index of v.
func (g *Graph) FubOf(v VertexID) int32 { return g.Verts[v].Fub }

// IsCross reports whether edge from->to crosses a FUB boundary.
func (g *Graph) IsCross(from, to VertexID) bool {
	return g.Verts[from].Fub != g.Verts[to].Fub
}
