package graph

import (
	"fmt"
	"io"
	"sort"

	"seqavf/internal/netlist"
)

// DesignStats summarizes a bit graph the way an RTL sign-off report
// would: state/logic balance, operator mix, loop census, combinational
// depth and fan-out. The paper's §5.2 sizing discussion ("very large
// memory footprints and slow node traversal") is about exactly these
// numbers.
type DesignStats struct {
	Fubs     int
	Vertices int
	Edges    int

	SeqBits        int
	CombBits       int
	PortBits       int
	StructPortBits int
	ConstBits      int

	LoopSeqBits  int
	LoopCombBits int

	// OpBits counts combinational bits per operator.
	OpBits map[netlist.Op]int

	// MaxCombDepth / AvgCombDepth measure combinational path length
	// between sequential/structure boundaries.
	MaxCombDepth int
	AvgCombDepth float64

	// MaxFanout is the largest out-degree of any bit.
	MaxFanout int
}

// Measure computes statistics for g.
func Measure(g *Graph) DesignStats {
	st := DesignStats{
		Fubs:     len(g.FubNames),
		Vertices: g.NumVerts(),
		OpBits:   make(map[netlist.Op]int),
	}
	isBoundary := func(v VertexID) bool {
		switch g.Verts[v].Node.Kind {
		case netlist.KindSeq, netlist.KindStructRead, netlist.KindStructWrite, netlist.KindConst, netlist.KindInput:
			return true
		}
		return false
	}
	for v := 0; v < g.NumVerts(); v++ {
		id := VertexID(v)
		vx := &g.Verts[v]
		st.Edges += len(g.Succs(id))
		if len(g.Succs(id)) > st.MaxFanout {
			st.MaxFanout = len(g.Succs(id))
		}
		switch vx.Node.Kind {
		case netlist.KindSeq:
			st.SeqBits++
			if vx.InLoop {
				st.LoopSeqBits++
			}
		case netlist.KindComb:
			st.CombBits++
			st.OpBits[vx.Node.Op]++
			if vx.InLoop {
				st.LoopCombBits++
			}
		case netlist.KindInput, netlist.KindOutput:
			st.PortBits++
		case netlist.KindStructRead, netlist.KindStructWrite:
			st.StructPortBits++
		case netlist.KindConst:
			st.ConstBits++
		}
	}
	// Combinational depth: longest chain of comb vertices, measured by a
	// DP over a topological order with sequential/structure boundaries as
	// depth-0 sources. Cycles are cut at sequential bits, so the comb
	// subgraph is acyclic (Build rejects combinational loops).
	order, err := g.TopoOrder(isBoundary)
	if err != nil {
		// Should be impossible after Build's validation; report empty
		// depth rather than panicking in a diagnostics path.
		return st
	}
	depth := make([]int, g.NumVerts())
	var sum, count int
	for _, v := range order {
		d := 0
		for _, p := range g.Preds(v) {
			if isBoundary(p) {
				continue
			}
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		if g.Verts[v].Node.Kind == netlist.KindComb {
			d++
		}
		depth[v] = d
		if d > st.MaxCombDepth {
			st.MaxCombDepth = d
		}
		sum += d
		count++
	}
	if count > 0 {
		st.AvgCombDepth = float64(sum) / float64(count)
	}
	return st
}

// WriteText renders the report.
func (st DesignStats) WriteText(w io.Writer) {
	fmt.Fprintf(w, "design statistics: %d FUBs, %d bit vertices, %d edges\n",
		st.Fubs, st.Vertices, st.Edges)
	fmt.Fprintf(w, "  sequential bits   : %d (%d in loops)\n", st.SeqBits, st.LoopSeqBits)
	fmt.Fprintf(w, "  combinational bits: %d (%d in loops)\n", st.CombBits, st.LoopCombBits)
	fmt.Fprintf(w, "  port bits         : %d module, %d structure\n", st.PortBits, st.StructPortBits)
	fmt.Fprintf(w, "  constants         : %d\n", st.ConstBits)
	fmt.Fprintf(w, "  comb depth        : max %d, avg %.2f\n", st.MaxCombDepth, st.AvgCombDepth)
	fmt.Fprintf(w, "  max fanout        : %d\n", st.MaxFanout)
	type opCount struct {
		op netlist.Op
		n  int
	}
	ops := make([]opCount, 0, len(st.OpBits))
	for op, n := range st.OpBits {
		ops = append(ops, opCount{op, n})
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].n != ops[j].n {
			return ops[i].n > ops[j].n
		}
		return ops[i].op < ops[j].op
	})
	fmt.Fprintf(w, "  operator mix      :")
	for _, oc := range ops {
		fmt.Fprintf(w, " %s=%d", oc.op, oc.n)
	}
	fmt.Fprintln(w)
}
