// Package pavf implements the port-AVF value algebra at the heart of the
// SART methodology (Raasch et al., MICRO-48 2015, Section 4).
//
// A propagated pAVF value is not a plain probability: the paper's worked
// example (Figure 7) requires the union operation to be idempotent, so that
// pAVF_1 ∪ (pAVF_1 ∪ pAVF_2) simplifies to pAVF_1 ∪ pAVF_2. We therefore
// represent every propagated value as a *set of source terms*. Each term
// names one source of ACE traffic: a structure port measured by the ACE
// performance model, an identified configuration control register, an
// injected loop-boundary node, or a pseudo-structure standing in for
// circuits outside the RTL under analysis.
//
// The numeric value of a set under an environment (a table of per-term
// pAVFs) is min(1, Σ term values) — the paper's "union simplifies to the
// sum, capped at 1.0" rule under the no-overlap assumption.
//
// Because values are symbolic sets, the closed-form equations of Section 5.1
// fall out for free: after propagation each node's AVF is
// MIN(Union(forward terms), Union(backward terms)), re-evaluatable against
// fresh pAVF measurements without re-walking the design.
package pavf

import (
	"fmt"
	"sort"
	"strings"
)

// TermKind classifies the source of ACE traffic a term represents.
type TermKind uint8

const (
	// KindTop is the distinguished ⊤ term with fixed value 1.0. A set
	// containing Top evaluates to 1.0 regardless of other members; it
	// models the paper's conservative "node pAVF starts at 1.0" default
	// flowing through a join whose other input was never refined.
	KindTop TermKind = iota
	// KindReadPort is a structure read-port pAVF (pAVF_R), measured by
	// ACE analysis in the performance model.
	KindReadPort
	// KindWritePort is a structure write-port pAVF (pAVF_W).
	KindWritePort
	// KindControlReg is an identified configuration control register,
	// assigned pAVF_R = 100% (Section 5.1).
	KindControlReg
	// KindLoop is a loop-boundary node with an injected static pAVF
	// (Section 4.3; the paper selects 0.3 via the Figure 8 study).
	KindLoop
	// KindPseudo is a pseudo-structure grouping circuits outside the RTL
	// under analysis (Section 5.1).
	KindPseudo
)

func (k TermKind) String() string {
	switch k {
	case KindTop:
		return "top"
	case KindReadPort:
		return "pAVF_R"
	case KindWritePort:
		return "pAVF_W"
	case KindControlReg:
		return "ctrlreg"
	case KindLoop:
		return "loop"
	case KindPseudo:
		return "pseudo"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// TermID is a dense index into a Universe's term table.
type TermID int32

// Top is the TermID of the ⊤ term in every Universe.
const Top TermID = 0

// Term describes one source of ACE traffic.
type Term struct {
	Kind TermKind
	// Name identifies the source: "Struct.port" for ports, the node name
	// for control registers and loop boundaries, the pseudo-structure
	// name for boundary groups.
	Name string
}

func (t Term) String() string {
	if t.Kind == KindTop {
		return "1.0"
	}
	return fmt.Sprintf("%s(%s)", t.Kind, t.Name)
}

// Universe interns terms and assigns them dense IDs. A single Universe is
// shared by all values propagated through one design.
type Universe struct {
	terms []Term
	index map[Term]TermID
}

// NewUniverse returns a Universe containing only the Top term.
func NewUniverse() *Universe {
	u := &Universe{index: make(map[Term]TermID)}
	top := Term{Kind: KindTop}
	u.terms = append(u.terms, top)
	u.index[top] = Top
	return u
}

// Intern returns the ID for t, adding it to the universe if new.
func (u *Universe) Intern(t Term) TermID {
	if id, ok := u.index[t]; ok {
		return id
	}
	id := TermID(len(u.terms))
	u.terms = append(u.terms, t)
	u.index[t] = id
	return id
}

// Lookup returns the ID for t and whether it exists.
func (u *Universe) Lookup(t Term) (TermID, bool) {
	id, ok := u.index[t]
	return id, ok
}

// Term returns the term for id. It panics on an out-of-range ID.
func (u *Universe) Term(id TermID) Term { return u.terms[id] }

// Len returns the number of interned terms, including Top.
func (u *Universe) Len() int { return len(u.terms) }

// Set is an immutable sorted set of term IDs. The zero value is the empty
// set, whose numeric value is 0 (no ACE traffic reaches the node).
type Set struct {
	ids []TermID // sorted ascending, unique
}

// Singleton returns the set {id}.
func Singleton(id TermID) Set { return Set{ids: []TermID{id}} }

// TopSet returns the set {Top}, evaluating to 1.0.
func TopSet() Set { return Singleton(Top) }

// NewSet builds a set from the given IDs (deduplicated, any order).
func NewSet(ids ...TermID) Set {
	if len(ids) == 0 {
		return Set{}
	}
	cp := make([]TermID, len(ids))
	copy(cp, ids)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	out := cp[:1]
	for _, id := range cp[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return Set{ids: out}
}

// SetFromSorted adopts ids as a set WITHOUT copying, sorting, or
// deduplicating. The caller must guarantee the slice is strictly
// ascending and never mutated afterwards. Plan restoration uses this to
// share one validated backing array across hundreds of sets instead of
// re-allocating each; anything not on that path should use NewSet.
func SetFromSorted(ids []TermID) Set {
	if len(ids) == 0 {
		return Set{}
	}
	return Set{ids: ids}
}

// Len returns the number of terms in the set.
func (s Set) Len() int { return len(s.ids) }

// IsEmpty reports whether the set has no terms.
func (s Set) IsEmpty() bool { return len(s.ids) == 0 }

// HasTop reports whether the set contains the ⊤ term.
func (s Set) HasTop() bool { return len(s.ids) > 0 && s.ids[0] == Top }

// Contains reports whether the set contains id.
func (s Set) Contains(id TermID) bool {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	return i < len(s.ids) && s.ids[i] == id
}

// IDs returns the terms in ascending order. The returned slice must not be
// modified.
func (s Set) IDs() []TermID { return s.ids }

// Equal reports whether two sets hold identical terms.
func (s Set) Equal(o Set) bool {
	if len(s.ids) != len(o.ids) {
		return false
	}
	for i, id := range s.ids {
		if o.ids[i] != id {
			return false
		}
	}
	return true
}

// Union returns s ∪ o. Union is idempotent, commutative and associative —
// the set-theory rules of Section 4.1 that keep repeated contributions from
// double counting (Figure 7: pAVF_1 ∪ (pAVF_1 ∪ pAVF_2) = pAVF_1 ∪ pAVF_2).
// If either side contains Top the result collapses to {Top}: no additional
// term can raise the value past 1.0, and collapsing keeps sets small.
func (s Set) Union(o Set) Set {
	if s.HasTop() || o.HasTop() {
		return TopSet()
	}
	if len(s.ids) == 0 {
		return o
	}
	if len(o.ids) == 0 {
		return s
	}
	merged := make([]TermID, 0, len(s.ids)+len(o.ids))
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		switch {
		case s.ids[i] < o.ids[j]:
			merged = append(merged, s.ids[i])
			i++
		case s.ids[i] > o.ids[j]:
			merged = append(merged, o.ids[j])
			j++
		default:
			merged = append(merged, s.ids[i])
			i++
			j++
		}
	}
	merged = append(merged, s.ids[i:]...)
	merged = append(merged, o.ids[j:]...)
	return Set{ids: merged}
}

// UnionAll folds Union over the given sets.
func UnionAll(sets ...Set) Set {
	var acc Set
	for _, s := range sets {
		acc = acc.Union(s)
	}
	return acc
}

// Env assigns a numeric pAVF to every term in a Universe. Index by TermID.
// Env[Top] must be 1.0 (NewEnv guarantees it).
type Env []float64

// NewEnv returns an environment sized for u with Top = 1.0 and all other
// terms 0.
func NewEnv(u *Universe) Env {
	e := make(Env, u.Len())
	e[Top] = 1.0
	return e
}

// Set assigns value v to term id, clamping to [0, 1].
func (e Env) Set(id TermID, v float64) {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	e[id] = v
}

// Validate checks that e is a well-formed environment: the Top term is
// present and exactly 1.0, and every value lies in [0,1]. The comparison
// is written so NaN fails it — BuildEnv's clamping passes NaN through
// (NaN compares false against both bounds), so evaluation boundaries that
// must not propagate NaN into AVFs (the sweep kernels) call Validate
// after building the environment.
func (e Env) Validate() error {
	if len(e) == 0 {
		return fmt.Errorf("pavf: empty environment (no Top term)")
	}
	if e[Top] != 1 {
		return fmt.Errorf("pavf: Top term is %v, must be exactly 1", e[Top])
	}
	for id, v := range e {
		if !(v >= 0 && v <= 1) {
			return fmt.Errorf("pavf: term %d value %v outside [0,1]", id, v)
		}
	}
	return nil
}

// Eval returns the numeric value of s under e: min(1, Σ values). The empty
// set evaluates to 0.
func (s Set) Eval(e Env) float64 {
	sum := 0.0
	for _, id := range s.ids {
		sum += e[id]
		if sum >= 1 {
			return 1
		}
	}
	return sum
}

// Format renders the set as a human-readable union expression under u,
// e.g. "pAVF_R(S1) + pAVF_R(S2)". The empty set renders as "0".
func (s Set) Format(u *Universe) string {
	if len(s.ids) == 0 {
		return "0"
	}
	parts := make([]string, len(s.ids))
	for i, id := range s.ids {
		parts[i] = u.Term(id).String()
	}
	return strings.Join(parts, " + ")
}

// Expr is the closed-form AVF equation for one node after propagation
// (Section 5.1): AVF = MIN(eval(Fwd), eval(Bwd)). A side that was never
// reached by a walk is conservatively ⊤ (1.0); Known* record reachability
// so visitation statistics can be reported.
type Expr struct {
	Fwd      Set
	Bwd      Set
	KnownFwd bool
	KnownBwd bool
}

// Visited reports whether at least one walk reached the node.
func (x Expr) Visited() bool { return x.KnownFwd || x.KnownBwd }

// FwdValue returns the forward estimate under e (1.0 when unvisited).
func (x Expr) FwdValue(e Env) float64 {
	if !x.KnownFwd {
		return 1
	}
	return x.Fwd.Eval(e)
}

// BwdValue returns the backward estimate under e (1.0 when unvisited).
func (x Expr) BwdValue(e Env) float64 {
	if !x.KnownBwd {
		return 1
	}
	return x.Bwd.Eval(e)
}

// Eval resolves the node AVF under e: the smaller of the two conservative
// estimates (Table 1's MIN rule).
func (x Expr) Eval(e Env) float64 {
	f, b := x.FwdValue(e), x.BwdValue(e)
	if b < f {
		return b
	}
	return f
}

// Format renders the closed-form equation, e.g.
// "MIN(pAVF_R(S1) + pAVF_R(S2), pAVF_W(S3))".
func (x Expr) Format(u *Universe) string {
	fwd, bwd := "1.0", "1.0"
	if x.KnownFwd {
		fwd = x.Fwd.Format(u)
	}
	if x.KnownBwd {
		bwd = x.Bwd.Format(u)
	}
	return fmt.Sprintf("MIN(%s, %s)", fwd, bwd)
}
