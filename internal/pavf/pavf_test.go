package pavf

import (
	"math"
	"testing"
	"testing/quick"
)

func testUniverse(t *testing.T) (*Universe, TermID, TermID, TermID) {
	t.Helper()
	u := NewUniverse()
	s1 := u.Intern(Term{Kind: KindReadPort, Name: "S1.rd"})
	s2 := u.Intern(Term{Kind: KindReadPort, Name: "S2.rd"})
	w3 := u.Intern(Term{Kind: KindWritePort, Name: "S3.wr"})
	return u, s1, s2, w3
}

func TestUniverseInternIsStable(t *testing.T) {
	u := NewUniverse()
	a := u.Intern(Term{Kind: KindReadPort, Name: "X"})
	b := u.Intern(Term{Kind: KindReadPort, Name: "X"})
	if a != b {
		t.Fatalf("re-interning produced new ID: %d vs %d", a, b)
	}
	if u.Len() != 2 { // Top + X
		t.Fatalf("universe size = %d, want 2", u.Len())
	}
	if got := u.Term(a); got.Name != "X" {
		t.Fatalf("Term() roundtrip failed: %+v", got)
	}
}

func TestUniverseHasTopAtZero(t *testing.T) {
	u := NewUniverse()
	if u.Term(Top).Kind != KindTop {
		t.Fatal("Top term not at ID 0")
	}
	if _, ok := u.Lookup(Term{Kind: KindTop}); !ok {
		t.Fatal("Top not findable")
	}
}

func TestSetBasics(t *testing.T) {
	_, s1, s2, _ := testUniverse(t)
	empty := Set{}
	if !empty.IsEmpty() || empty.Len() != 0 {
		t.Fatal("zero Set should be empty")
	}
	s := NewSet(s2, s1, s2, s1)
	if s.Len() != 2 {
		t.Fatalf("NewSet dedup failed: %v", s.IDs())
	}
	if !s.Contains(s1) || !s.Contains(s2) || s.Contains(Top) {
		t.Fatal("Contains wrong")
	}
	if got := s.IDs(); got[0] > got[1] {
		t.Fatal("IDs not sorted")
	}
}

func TestUnionIdempotent(t *testing.T) {
	_, s1, s2, _ := testUniverse(t)
	a := Singleton(s1)
	b := NewSet(s1, s2)
	// Figure 7: pAVF_1 U (pAVF_1 U pAVF_2) = pAVF_1 U pAVF_2.
	got := a.Union(b)
	if !got.Equal(b) {
		t.Fatalf("idempotent union failed: %v", got.IDs())
	}
	if !a.Union(a).Equal(a) {
		t.Fatal("self-union should be identity")
	}
}

func TestUnionWithEmptyAndTop(t *testing.T) {
	_, s1, _, _ := testUniverse(t)
	a := Singleton(s1)
	if !a.Union(Set{}).Equal(a) || !(Set{}).Union(a).Equal(a) {
		t.Fatal("union with empty should be identity")
	}
	top := TopSet()
	if !a.Union(top).Equal(top) || !top.Union(a).Equal(top) {
		t.Fatal("union with Top should collapse to Top")
	}
	if !top.HasTop() {
		t.Fatal("HasTop")
	}
}

func TestUnionAll(t *testing.T) {
	_, s1, s2, w3 := testUniverse(t)
	got := UnionAll(Singleton(s1), Singleton(s2), Singleton(w3))
	want := NewSet(s1, s2, w3)
	if !got.Equal(want) {
		t.Fatalf("UnionAll = %v, want %v", got.IDs(), want.IDs())
	}
	if !UnionAll().IsEmpty() {
		t.Fatal("UnionAll() should be empty")
	}
}

func TestEvalCappedSum(t *testing.T) {
	u, s1, s2, w3 := testUniverse(t)
	env := NewEnv(u)
	env.Set(s1, 0.10)
	env.Set(s2, 0.02)
	env.Set(w3, 0.95)

	if got := Singleton(s1).Eval(env); math.Abs(got-0.10) > 1e-12 {
		t.Fatalf("singleton eval = %v", got)
	}
	// Figure 7: union evaluates as the sum (0.12).
	if got := NewSet(s1, s2).Eval(env); math.Abs(got-0.12) > 1e-12 {
		t.Fatalf("join eval = %v, want 0.12", got)
	}
	// Capped at 1.0.
	if got := NewSet(s1, s2, w3).Eval(env); got != 1 {
		t.Fatalf("capped eval = %v, want 1", got)
	}
	if got := (Set{}).Eval(env); got != 0 {
		t.Fatalf("empty eval = %v, want 0", got)
	}
	if got := TopSet().Eval(env); got != 1 {
		t.Fatalf("top eval = %v, want 1", got)
	}
}

func TestEnvClamping(t *testing.T) {
	u, s1, _, _ := testUniverse(t)
	env := NewEnv(u)
	env.Set(s1, 1.7)
	if env[s1] != 1 {
		t.Fatalf("env should clamp to 1, got %v", env[s1])
	}
	env.Set(s1, -0.5)
	if env[s1] != 0 {
		t.Fatalf("env should clamp to 0, got %v", env[s1])
	}
	if env[Top] != 1 {
		t.Fatal("Top must be 1.0 in a fresh env")
	}
}

func TestExprEvalMinRule(t *testing.T) {
	u, s1, s2, w3 := testUniverse(t)
	env := NewEnv(u)
	env.Set(s1, 0.10)
	env.Set(s2, 0.02)
	env.Set(w3, 0.05)

	// Table 1 logical-join row: AVF(Q2a) = MIN(pAVF_R(S1)+pAVF_R(S2), pAVF_W(S3)).
	x := Expr{Fwd: NewSet(s1, s2), Bwd: Singleton(w3), KnownFwd: true, KnownBwd: true}
	if got := x.Eval(env); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("MIN eval = %v, want 0.05", got)
	}
	env.Set(w3, 0.5)
	if got := x.Eval(env); math.Abs(got-0.12) > 1e-12 {
		t.Fatalf("MIN eval = %v, want 0.12", got)
	}
}

func TestExprUnvisitedSidesAreConservative(t *testing.T) {
	u, s1, _, _ := testUniverse(t)
	env := NewEnv(u)
	env.Set(s1, 0.25)

	onlyFwd := Expr{Fwd: Singleton(s1), KnownFwd: true}
	if got := onlyFwd.Eval(env); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("fwd-only eval = %v", got)
	}
	if onlyFwd.BwdValue(env) != 1 {
		t.Fatal("unknown bwd side must be 1.0")
	}
	unvisited := Expr{}
	if unvisited.Eval(env) != 1 {
		t.Fatal("unvisited node must resolve to 1.0")
	}
	if unvisited.Visited() {
		t.Fatal("Visited() on zero Expr")
	}
	if !onlyFwd.Visited() {
		t.Fatal("Visited() should be true with one side known")
	}
}

func TestFormat(t *testing.T) {
	u, s1, s2, w3 := testUniverse(t)
	x := Expr{Fwd: NewSet(s1, s2), Bwd: Singleton(w3), KnownFwd: true, KnownBwd: true}
	got := x.Format(u)
	want := "MIN(pAVF_R(S1.rd) + pAVF_R(S2.rd), pAVF_W(S3.wr))"
	if got != want {
		t.Fatalf("Format = %q, want %q", got, want)
	}
	if got := (Set{}).Format(u); got != "0" {
		t.Fatalf("empty set format = %q", got)
	}
	if got := (Expr{}).Format(u); got != "MIN(1.0, 1.0)" {
		t.Fatalf("unvisited format = %q", got)
	}
}

// Properties of the algebra, checked with testing/quick over random sets.

func randomSet(u *Universe, raw []uint8) Set {
	ids := make([]TermID, 0, len(raw))
	for _, b := range raw {
		ids = append(ids, TermID(int(b)%u.Len()))
	}
	return NewSet(ids...)
}

func TestUnionProperties(t *testing.T) {
	u := NewUniverse()
	for i := 0; i < 12; i++ {
		u.Intern(Term{Kind: KindReadPort, Name: string(rune('A' + i))})
	}
	env := NewEnv(u)
	for i := 1; i < u.Len(); i++ {
		env.Set(TermID(i), float64(i)/20)
	}

	commutative := func(a, b []uint8) bool {
		x, y := randomSet(u, a), randomSet(u, b)
		return x.Union(y).Equal(y.Union(x))
	}
	associative := func(a, b, c []uint8) bool {
		x, y, z := randomSet(u, a), randomSet(u, b), randomSet(u, c)
		return x.Union(y).Union(z).Equal(x.Union(y.Union(z)))
	}
	monotone := func(a, b []uint8) bool {
		x, y := randomSet(u, a), randomSet(u, b)
		return x.Union(y).Eval(env) >= x.Eval(env)-1e-12
	}
	bounded := func(a []uint8) bool {
		v := randomSet(u, a).Eval(env)
		return v >= 0 && v <= 1
	}
	for name, f := range map[string]any{
		"commutative": commutative,
		"associative": associative,
		"monotone":    monotone,
		"bounded":     bounded,
	} {
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestEnvValidate pins the validation boundary the sweep kernels rely
// on: a fresh environment passes; NaN, Inf, negatives, values above 1,
// a perturbed Top term, and the empty environment are each rejected.
// The NaN case matters most — Env.Set clamps out-of-range values but
// passes NaN through (NaN compares false against both bounds), so
// Validate is the only gate between a NaN pAVF and the kernels.
func TestEnvValidate(t *testing.T) {
	u, s1, _, _ := testUniverse(t)
	env := NewEnv(u)
	if err := env.Validate(); err != nil {
		t.Fatalf("fresh env must validate: %v", err)
	}
	env.Set(s1, 0.5)
	if err := env.Validate(); err != nil {
		t.Fatalf("in-range env must validate: %v", err)
	}

	bad := []struct {
		name string
		v    float64
	}{
		{"NaN", math.NaN()},
		{"+Inf", math.Inf(1)},
		{"-Inf", math.Inf(-1)},
	}
	for _, tc := range bad {
		e := append(Env(nil), env...)
		e[s1] = tc.v // bypass Set's clamping, as a corrupted buffer would
		if err := e.Validate(); err == nil {
			t.Errorf("%s environment validated", tc.name)
		}
	}
	e := append(Env(nil), env...)
	e[s1] = -0.25
	if err := e.Validate(); err == nil {
		t.Error("negative term validated")
	}
	e[s1] = 1.25
	if err := e.Validate(); err == nil {
		t.Error("term above 1 validated")
	}
	e[s1] = 0.5
	e[Top] = 0.999999
	if err := e.Validate(); err == nil {
		t.Error("perturbed Top term validated")
	}
	if err := (Env{}).Validate(); err == nil {
		t.Error("empty environment validated")
	}
}
