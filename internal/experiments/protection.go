package experiments

import (
	"fmt"
	"io"

	"seqavf/internal/core"
	"seqavf/internal/design"
	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/ser"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

// ProtPoint is one point of the protection sweep.
type ProtPoint struct {
	// ProtectedFrac is the fraction of structures protected (2/3 parity,
	// 1/3 ECC).
	ProtectedFrac float64
	// SDCFIT / DUEFIT are the modeled totals (AU).
	SDCFIT float64
	DUEFIT float64
	// SeqShare is the sequential share of the SDC FIT.
	SeqShare float64
	// SeqSDC / SeqDUE / SeqDCE decompose the average sequential AVF.
	SeqSDC, SeqDUE, SeqDCE float64
}

// ProtResult reproduces the paper's §1 projection: "as more and more
// register files and arrays are protected by techniques such as parity
// and ECC, the relative SDC SER contribution of sequentials will continue
// to increase even as the absolute SDC SER of the entire part decreases."
// The sweep regenerates the XeonLike design at rising protection coverage
// and recomputes the SDC/DUE decomposition end to end.
type ProtResult struct {
	Points []ProtPoint
}

// Protection runs the sweep.
func Protection(seed uint64, fracs []float64) (*ProtResult, error) {
	if len(fracs) == 0 {
		fracs = []float64{0, 0.2, 0.4, 0.6, 0.8}
	}
	perf, err := uarch.Run(workload.Lattice(10), uarch.DefaultConfig())
	if err != nil {
		return nil, err
	}
	out := &ProtResult{}
	params := ser.DefaultFITParams()
	for _, frac := range fracs {
		cfg := design.DefaultConfig(seed)
		cfg.ParityFrac = frac * 2 / 3
		cfg.ECCFrac = frac / 3
		gen, err := design.Generate(cfg)
		if err != nil {
			return nil, err
		}
		fd, err := netlist.Flatten(gen.Design)
		if err != nil {
			return nil, err
		}
		bg, err := graph.Build(fd)
		if err != nil {
			return nil, err
		}
		a, err := core.NewAnalyzer(bg, design.CanonicalOptions())
		if err != nil {
			return nil, err
		}
		in, err := gen.Inputs(perf.Report)
		if err != nil {
			return nil, err
		}
		res, err := a.Solve(in)
		if err != nil {
			return nil, err
		}
		bits := make(map[string]int, len(gen.Design.Structures))
		for name, st := range gen.Design.Structures {
			bits[name] = st.Bits()
		}
		sdc := ser.ModeledFIT(res, bits, params)
		due := ser.ModeledDUEFIT(res, bits, params)
		dec := res.SeqDecomposition()
		pt := ProtPoint{
			ProtectedFrac: frac,
			SDCFIT:        sdc.Total(),
			DUEFIT:        due.Total(),
			SeqSDC:        dec.SDC,
			SeqDUE:        dec.DUE,
			SeqDCE:        dec.DCE,
		}
		if sdc.Total() > 0 {
			pt.SeqShare = sdc.SeqFIT / sdc.Total()
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

func percent(v float64) string {
	return fmt.Sprintf("%.0f%%", 100*v)
}

// WriteText renders the sweep.
func (r *ProtResult) WriteText(w io.Writer) {
	fprintf(w, "Protection sweep: SDC/DUE vs array protection coverage (§1 projection)\n")
	rule(w)
	fprintf(w, "%-10s %-12s %-12s %-10s %-24s\n",
		"protected", "SDC FIT", "DUE FIT", "seq share", "seq AVF (SDC/DUE/DCE)")
	for _, p := range r.Points {
		fprintf(w, "%-10s %-12.1f %-12.1f %-10s %.4f / %.4f / %.4f\n",
			percent(p.ProtectedFrac), p.SDCFIT, p.DUEFIT, percent(p.SeqShare),
			p.SeqSDC, p.SeqDUE, p.SeqDCE)
	}
	rule(w)
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	fprintf(w, "absolute SDC falls %.1f%% while the sequential share rises %.0f%% -> %.0f%%\n",
		100*(first.SDCFIT-last.SDCFIT)/first.SDCFIT,
		100*first.SeqShare, 100*last.SeqShare)
}
