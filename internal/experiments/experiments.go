// Package experiments regenerates every table and figure from the paper's
// evaluation (§6), plus the validation studies the reproduction adds:
//
//	Table1      — the final AVF equations on the Figure 7 worked example
//	Figure8     — average sequential AVF vs loop-boundary pAVF
//	Figure9     — per-FUB average sequential/node AVF after relaxation
//	Convergence — per-FUB average pAVF per relaxation iteration (§5.2/§6.1)
//	Figure10    — modeled vs beam-measured SER for Lattice and MD5Sum
//	Validate    — SART vs statistical fault injection on the netlist core
//	Symbolic    — closed-form re-evaluation vs full re-solve (§5.1)
//
// Each experiment returns a result struct with a WriteText renderer; the
// cmd/experiments binary is a thin driver.
package experiments

import (
	"fmt"
	"io"

	"seqavf/internal/ace"
	"seqavf/internal/core"
	"seqavf/internal/design"
	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

// Env bundles the expensive shared setup: the generated XeonLike design,
// its SART analyzer, and the ACE measurements of the workload suite.
type Env struct {
	Gen      *design.Generated
	Analyzer *core.Analyzer

	// Workloads and their per-workload ACE reports; AvgReport is the
	// suite average (what the paper applies to the RTL).
	Workloads []string
	Reports   map[string]*ace.Report
	AvgReport *ace.Report

	// AvgInputs is the SART input table for the suite average.
	AvgInputs *core.Inputs
}

// SetupConfig controls environment construction.
type SetupConfig struct {
	Seed      uint64
	SuiteSize int // synthetic workloads beyond the two named kernels
	DesignCfg *design.Config
}

// DefaultSetup is the configuration used by all reported experiments.
func DefaultSetup() SetupConfig {
	return SetupConfig{Seed: 2027, SuiteSize: 12}
}

// Setup builds the environment.
func Setup(cfg SetupConfig) (*Env, error) {
	dcfg := design.DefaultConfig(cfg.Seed)
	if cfg.DesignCfg != nil {
		dcfg = *cfg.DesignCfg
	}
	gen, err := design.Generate(dcfg)
	if err != nil {
		return nil, err
	}
	fd, err := netlist.Flatten(gen.Design)
	if err != nil {
		return nil, err
	}
	bg, err := graph.Build(fd)
	if err != nil {
		return nil, err
	}
	analyzer, err := core.NewAnalyzer(bg, design.CanonicalOptions())
	if err != nil {
		return nil, err
	}

	progs := workload.Standard(cfg.SuiteSize, cfg.Seed)
	results, avg, err := uarch.RunSuite(progs, uarch.DefaultConfig())
	if err != nil {
		return nil, err
	}
	env := &Env{
		Gen:       gen,
		Analyzer:  analyzer,
		Reports:   make(map[string]*ace.Report, len(results)),
		AvgReport: avg,
	}
	for _, r := range results {
		env.Workloads = append(env.Workloads, r.Program.Name)
		env.Reports[r.Program.Name] = r.Report
	}
	env.AvgInputs, err = gen.Inputs(avg)
	if err != nil {
		return nil, err
	}
	return env, nil
}

// StructBits returns per-structure bit counts of the generated design.
func (e *Env) StructBits() map[string]int {
	out := make(map[string]int, len(e.Gen.Design.Structures))
	for name, s := range e.Gen.Design.Structures {
		out[name] = s.Bits()
	}
	return out
}

// ProxyAVF returns the bit-weighted average structure AVF under the given
// inputs — the pre-sequential-AVF proxy value.
func (e *Env) ProxyAVF(in *core.Inputs) float64 {
	var sum, bits float64
	for name, avf := range in.StructAVF {
		w := float64(e.Gen.Design.Structures[name].Bits())
		sum += avf * w
		bits += w
	}
	if bits == 0 {
		return 0
	}
	return sum / bits
}

// solveWith runs the monolithic solver at a given loop/pseudo setting.
func (e *Env) solveWith(opts core.Options, in *core.Inputs) (*core.Result, error) {
	a, err := core.NewAnalyzer(e.Analyzer.G, opts)
	if err != nil {
		return nil, err
	}
	return a.Solve(in)
}

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}

func rule(w io.Writer) {
	fmt.Fprintln(w, "----------------------------------------------------------------------")
}
