package experiments

import (
	"io"
	"math"
	"sort"

	"seqavf/internal/sfi"
	"seqavf/internal/tinycore"
	"seqavf/internal/workload"
)

// ExhaustiveNode compares sampled campaigns against complete coverage.
type ExhaustiveNode struct {
	Node  string
	Truth float64 // exhaustive (#bits x #cycles) AVF — no sampling error
	// Sampled holds the AVF estimate at each sampled injection budget.
	Sampled []float64
	// CoveredByCI reports whether each sampled 95% CI contains the truth.
	CoveredByCI []bool
}

// ExhaustiveResult quantifies §3.1's statistical-significance concern: a
// real campaign samples a tiny fraction of the (#sequentials x #cycles)
// solution space and must carry guardbands. On tinycore with a short
// program, complete coverage is actually computable, so the sampling
// error of realistic budgets can be measured against exact ground truth.
type ExhaustiveResult struct {
	Workload        string
	SolutionSpace   int // #bits x #cycles
	TruthInjections int
	Budgets         []int // injections per bit of each sampled campaign
	Nodes           []ExhaustiveNode
	// MAE per budget (mean |sampled - truth| over nodes).
	MAE []float64
	// Coverage per budget (fraction of nodes whose CI contains truth).
	Coverage []float64
}

// Exhaustive runs complete-coverage injection plus sampled campaigns at
// the given budgets.
func Exhaustive(budgets []int) (*ExhaustiveResult, error) {
	if len(budgets) == 0 {
		budgets = []int{1, 4, 16}
	}
	p := workload.MD5Like(3) // short program keeps #cycles small
	obs := sfi.Observation{
		Fub: tinycore.FubName, Valid: "out_valid", Data: "out_data", Halted: "halted_o",
	}
	m, err := tinycore.New(p)
	if err != nil {
		return nil, err
	}
	exCfg := sfi.DefaultConfig()
	exCfg.Exhaustive = true
	exCfg.Workers = 4
	truth, err := sfi.Run(m.Sim, obs, exCfg)
	if err != nil {
		return nil, err
	}
	out := &ExhaustiveResult{
		Workload:        p.Name,
		TruthInjections: truth.Injections,
		Budgets:         budgets,
	}
	out.SolutionSpace = truth.Injections // by construction: bits x cycles

	truthByNode := truth.NodeAVF()
	nodes := make(map[string]*ExhaustiveNode)
	var order []string
	for name, avf := range truthByNode {
		nodes[name] = &ExhaustiveNode{Node: name, Truth: avf}
		order = append(order, name)
	}
	sort.Strings(order)

	for _, budget := range budgets {
		cfg := sfi.DefaultConfig()
		cfg.InjectionsPerBit = budget
		cfg.Workers = 4
		run, err := sfi.Run(m.Sim, obs, cfg)
		if err != nil {
			return nil, err
		}
		var mae float64
		covered := 0
		byName := make(map[string]*sfi.NodeResult, len(run.Nodes))
		for i := range run.Nodes {
			byName[run.Nodes[i].Fub+"/"+run.Nodes[i].Node] = &run.Nodes[i]
		}
		for _, name := range order {
			n := nodes[name]
			nr := byName[name]
			est := nr.AVF()
			ci := nr.CI()
			n.Sampled = append(n.Sampled, est)
			ok := ci.Contains(n.Truth)
			n.CoveredByCI = append(n.CoveredByCI, ok)
			if ok {
				covered++
			}
			mae += math.Abs(est - n.Truth)
		}
		out.MAE = append(out.MAE, mae/float64(len(order)))
		out.Coverage = append(out.Coverage, float64(covered)/float64(len(order)))
	}
	for _, name := range order {
		out.Nodes = append(out.Nodes, *nodes[name])
	}
	return out, nil
}

// WriteText renders the study.
func (r *ExhaustiveResult) WriteText(w io.Writer) {
	fprintf(w, "Exhaustive vs sampled fault injection (%s)\n", r.Workload)
	fprintf(w, "solution space: %d (bits x cycles) injections — all simulated\n", r.SolutionSpace)
	rule(w)
	fprintf(w, "%-16s %-10s", "node", "truth")
	for _, b := range r.Budgets {
		fprintf(w, " n=%-8d", b)
	}
	fprintf(w, "\n")
	for _, n := range r.Nodes {
		fprintf(w, "%-16s %-10.3f", n.Node, n.Truth)
		for _, s := range n.Sampled {
			fprintf(w, " %-10.3f", s)
		}
		fprintf(w, "\n")
	}
	rule(w)
	fprintf(w, "%-16s %-10s", "MAE", "")
	for _, m := range r.MAE {
		fprintf(w, " %-10.3f", m)
	}
	fprintf(w, "\n%-16s %-10s", "CI coverage", "")
	for _, c := range r.Coverage {
		fprintf(w, " %-10s", percent(c))
	}
	fprintf(w, "\nsampling error shrinks with budget; the 95%% CIs cover the exact\n")
	fprintf(w, "value — the guardbanding story of §3.1 in miniature.\n")
}
