package experiments

import (
	"io"
	"math"
	"sort"

	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/rtlsim"
	"seqavf/internal/sfi"
	"seqavf/internal/tinycore"
	"seqavf/internal/uarch"
)

// LoopCharNode compares the two loop treatments for one node.
type LoopCharNode struct {
	Node      string
	Static    float64 // SART with the static 0.3 loop pAVF
	Char      float64 // SART with the characterized per-node loop pAVF
	Reference float64 // full-strength SFI measurement
}

// LoopCharResult is the §4.3 "solution 2" study: instead of one static
// loop-boundary pAVF, characterize each loop node with a *targeted* RTL
// fault-injection run (restricted to the 2-3% of sequentials in loops)
// and inject the measured values as per-node overrides. The paper lists
// this as the higher-accuracy option "considered on a case by case
// basis"; this experiment quantifies the accuracy gain and the cost of
// the targeted characterization versus a full campaign.
type LoopCharResult struct {
	Workload string
	Nodes    []LoopCharNode
	// MAEStatic / MAEChar are mean absolute errors against the reference.
	MAEStatic float64
	MAEChar   float64
	// CharCycles / ReferenceCycles compare simulation cost.
	CharCycles      uint64
	ReferenceCycles uint64
}

// LoopChar runs the study on tinycore (where every sequential is a loop
// node, making it a stress test for loop treatment).
func LoopChar(prog string, charInject, refInject int) (*LoopCharResult, error) {
	p := pickProgram(prog)
	perf, err := uarch.Run(p, uarch.DefaultConfig())
	if err != nil {
		return nil, err
	}
	inputs, err := tinycore.BindInputs(perf.Report)
	if err != nil {
		return nil, err
	}
	fd, err := tinycore.FlatDesign(len(p.Code))
	if err != nil {
		return nil, err
	}
	bg, err := graph.Build(fd)
	if err != nil {
		return nil, err
	}

	// Identify loop nodes (via a throwaway analyzer).
	probe, err := core.NewAnalyzer(bg, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	loopNode := make(map[string]bool)
	for v := 0; v < bg.NumVerts(); v++ {
		if probe.Role(graph.VertexID(v)) == core.RoleLoop {
			vx := &bg.Verts[v]
			loopNode[bg.FubNames[vx.Fub]+"/"+vx.Node.Name] = true
		}
	}

	obs := sfi.Observation{
		Fub: tinycore.FubName, Valid: "out_valid", Data: "out_data", Halted: "halted_o",
	}
	// Targeted characterization campaign: loop sites only, cheap.
	machine, err := tinycore.New(p)
	if err != nil {
		return nil, err
	}
	charCfg := sfi.DefaultConfig()
	charCfg.InjectionsPerBit = charInject
	charCfg.Seed = 77
	charCfg.SiteFilter = func(s rtlsim.SeqSite) bool {
		return loopNode[s.Fub+"/"+s.Node]
	}
	charRun, err := sfi.Run(machine.Sim, obs, charCfg)
	if err != nil {
		return nil, err
	}
	overrides := charRun.NodeAVF()

	// Reference campaign: independent seed, more injections, all sites.
	refCfg := sfi.DefaultConfig()
	refCfg.InjectionsPerBit = refInject
	refCfg.Seed = 1
	refRun, err := sfi.Run(machine.Sim, obs, refCfg)
	if err != nil {
		return nil, err
	}
	reference := refRun.NodeAVF()

	solveWith := func(opts core.Options) (map[string]float64, error) {
		a, err := core.NewAnalyzer(bg, opts)
		if err != nil {
			return nil, err
		}
		res, err := a.Solve(inputs)
		if err != nil {
			return nil, err
		}
		return res.SeqAVFByNode(), nil
	}
	staticAVF, err := solveWith(core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	charOpts := core.DefaultOptions()
	charOpts.LoopOverrides = overrides
	charAVF, err := solveWith(charOpts)
	if err != nil {
		return nil, err
	}

	out := &LoopCharResult{
		Workload:        p.Name,
		CharCycles:      charRun.SimulatedCycles,
		ReferenceCycles: refRun.SimulatedCycles,
	}
	keys := make([]string, 0, len(reference))
	for k := range reference {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := LoopCharNode{
			Node:      k,
			Static:    staticAVF[k],
			Char:      charAVF[k],
			Reference: reference[k],
		}
		out.Nodes = append(out.Nodes, n)
		out.MAEStatic += math.Abs(n.Static - n.Reference)
		out.MAEChar += math.Abs(n.Char - n.Reference)
	}
	if len(out.Nodes) > 0 {
		out.MAEStatic /= float64(len(out.Nodes))
		out.MAEChar /= float64(len(out.Nodes))
	}
	return out, nil
}

// WriteText renders the comparison.
func (r *LoopCharResult) WriteText(w io.Writer) {
	fprintf(w, "Loop characterization (§4.3 solution 2) on tinycore (%s)\n", r.Workload)
	rule(w)
	fprintf(w, "%-16s %-12s %-12s %-12s\n", "node", "static 0.3", "characterized", "SFI reference")
	for _, n := range r.Nodes {
		fprintf(w, "%-16s %-12.3f %-12.3f %-12.3f\n", n.Node, n.Static, n.Char, n.Reference)
	}
	rule(w)
	fprintf(w, "mean abs error: static %.3f -> characterized %.3f\n", r.MAEStatic, r.MAEChar)
	fprintf(w, "characterization cost: %d cycles vs full reference campaign %d cycles\n",
		r.CharCycles, r.ReferenceCycles)
}
