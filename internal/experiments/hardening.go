package experiments

import (
	"io"

	"seqavf/internal/ser"
)

// HardeningPoint is one target level of the mitigation study.
type HardeningPoint struct {
	Target float64
	// GuidedBitsFrac is the fraction of sequential bits the AVF-guided
	// plan hardens to reach the target.
	GuidedBitsFrac float64
	// RandomBitsFrac is the fraction a uniform (AVF-blind) selection
	// would need for the same expected reduction.
	RandomBitsFrac float64
	// Achieved is the plan's actual FIT reduction.
	Achieved float64
}

// HardeningResult is the mitigation-planning study: the paper's §1
// motivation quantified. AVF-guided cell hardening concentrates the
// low-SER cells where they matter; uniform hardening needs
// target/(1-rateFactor) of all bits regardless.
type HardeningResult struct {
	Points []HardeningPoint
	// Params echoes the modeled hardened-cell technology.
	Params ser.HardeningParams
}

// Hardening sweeps FIT-reduction targets on the XeonLike design using the
// suite-average sequential AVFs.
func Hardening(env *Env, targets []float64) (*HardeningResult, error) {
	if len(targets) == 0 {
		targets = []float64{0.1, 0.2, 0.3, 0.5, 0.7}
	}
	res, err := env.Analyzer.Solve(env.AvgInputs)
	if err != nil {
		return nil, err
	}
	fit := ser.DefaultFITParams()
	hp := ser.DefaultHardeningParams()
	out := &HardeningResult{Params: hp}
	for _, target := range targets {
		plan, err := ser.PlanHardening(res, fit, hp, target)
		if err != nil {
			return nil, err
		}
		pt := HardeningPoint{
			Target:         target,
			GuidedBitsFrac: float64(plan.HardenedBits) / float64(plan.TotalSeqBits),
			// Uniform selection removes avgAVF x (1-rate) per bit, so the
			// expected bit fraction for the same cut is target/(1-rate).
			RandomBitsFrac: target / (1 - hp.RateFactor),
			Achieved:       plan.Reduction(),
		}
		if pt.RandomBitsFrac > 1 {
			pt.RandomBitsFrac = 1
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// WriteText renders the study.
func (r *HardeningResult) WriteText(w io.Writer) {
	fprintf(w, "AVF-guided hardening (low-SER cells at %.0fx rate, %.1fx cost)\n",
		1/r.Params.RateFactor, r.Params.CostPerBit)
	rule(w)
	fprintf(w, "%-12s %-14s %-18s %-12s\n",
		"FIT target", "bits (guided)", "bits (uniform)", "achieved")
	for _, p := range r.Points {
		fprintf(w, "%-12s %-14s %-18s %-12s\n",
			percent(p.Target), percent(p.GuidedBitsFrac),
			percent(p.RandomBitsFrac), percent(p.Achieved))
	}
	rule(w)
	fprintf(w, "SART's per-node AVFs concentrate hardened cells on the vulnerable\n")
	fprintf(w, "minority — the deployment decision §1 says the technique exists for.\n")
}
