package experiments

import (
	"io"
	"math"
	"sort"

	"seqavf/internal/stats"
)

// VariationNode summarizes one sequential node's AVF across workloads.
type VariationNode struct {
	Node string
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// VariationResult is the workload-sensitivity study: §3.2 notes the ACE
// flow "allows the structure AVFs to be targeted to specific workloads
// and/or application suites"; with SART's closed forms, per-workload
// sequential AVFs cost one re-evaluation each, so the workload-to-workload
// variation of every node is essentially free. Nodes with high variation
// are the ones a worst-case (rather than average) hardening plan must
// treat by their Max, not their Mean.
type VariationResult struct {
	Workloads []string
	// PerWorkloadAvg is the design-average sequential AVF per workload.
	PerWorkloadAvg []float64
	// Top lists the most workload-sensitive nodes (by stddev).
	Top []VariationNode
	// StableFrac is the fraction of nodes whose AVF varies by less than
	// 10% of the mean across the suite.
	StableFrac float64
}

// Variation evaluates every workload's pAVFs against the shared closed
// forms and aggregates per-node statistics.
func Variation(env *Env, topN int) (*VariationResult, error) {
	if topN <= 0 {
		topN = 10
	}
	base, err := env.Analyzer.Solve(env.AvgInputs)
	if err != nil {
		return nil, err
	}
	out := &VariationResult{}
	perNode := make(map[string][]float64)
	for _, name := range env.Workloads {
		in, err := env.Gen.Inputs(env.Reports[name])
		if err != nil {
			return nil, err
		}
		if err := base.Reevaluate(in); err != nil {
			return nil, err
		}
		byNode := base.SeqAVFByNode()
		var sum float64
		for node, avf := range byNode {
			perNode[node] = append(perNode[node], avf)
			sum += avf
		}
		out.Workloads = append(out.Workloads, name)
		out.PerWorkloadAvg = append(out.PerWorkloadAvg, sum/float64(len(byNode)))
	}

	nodes := make([]VariationNode, 0, len(perNode))
	stable := 0
	for node, xs := range perNode {
		vn := VariationNode{
			Node: node,
			Mean: stats.Mean(xs),
			Std:  stats.StdDev(xs),
			Min:  math.Inf(1),
			Max:  math.Inf(-1),
		}
		for _, x := range xs {
			vn.Min = math.Min(vn.Min, x)
			vn.Max = math.Max(vn.Max, x)
		}
		nodes = append(nodes, vn)
		if vn.Mean == 0 || vn.Std/vn.Mean < 0.10 {
			stable++
		}
	}
	out.StableFrac = float64(stable) / float64(len(nodes))
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Std != nodes[j].Std {
			return nodes[i].Std > nodes[j].Std
		}
		return nodes[i].Node < nodes[j].Node
	})
	if len(nodes) > topN {
		nodes = nodes[:topN]
	}
	out.Top = nodes
	return out, nil
}

// WriteText renders the study.
func (r *VariationResult) WriteText(w io.Writer) {
	fprintf(w, "Workload-to-workload sequential AVF variation (%d workloads)\n", len(r.Workloads))
	rule(w)
	fprintf(w, "design-average sequential AVF per workload:\n")
	for i, name := range r.Workloads {
		fprintf(w, "  %-14s %.4f\n", name, r.PerWorkloadAvg[i])
	}
	fprintf(w, "\nmost workload-sensitive nodes:\n")
	fprintf(w, "%-28s %-8s %-8s %-8s %-8s\n", "node", "mean", "std", "min", "max")
	for _, n := range r.Top {
		fprintf(w, "%-28s %-8.3f %-8.3f %-8.3f %-8.3f\n", n.Node, n.Mean, n.Std, n.Min, n.Max)
	}
	rule(w)
	fprintf(w, "%s of nodes vary by <10%% of their mean across the suite;\n", percent(r.StableFrac))
	fprintf(w, "the rest need workload-aware (max, not mean) hardening decisions.\n")
}
