package experiments

import (
	"io"
	"strings"

	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/ser"
)

// Fig8Point is one sweep point of the loop-boundary study.
type Fig8Point struct {
	LoopPAVF       float64
	WeightedSeqAVF float64
	LoopSeqAVFOnly float64 // average over loop-boundary bits alone
}

// Fig8Result is the Figure 8 reproduction: average sequential AVF across
// the whole design as a function of the injected loop-boundary pAVF. The
// paper's observations to reproduce: the curve does not saturate at 100%
// loop pAVF, the effect is non-linear, and the variation stays modest.
type Fig8Result struct {
	Points []Fig8Point
	// LoopSeqFraction is the share of sequentials in loops (§4.3: 2-3%).
	LoopSeqFraction float64
}

// Figure8 sweeps the loop-boundary pAVF.
func Figure8(env *Env, loopValues []float64) (*Fig8Result, error) {
	if len(loopValues) == 0 {
		loopValues = []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0}
	}
	out := &Fig8Result{}
	for _, lv := range loopValues {
		opts := env.Analyzer.Opts
		opts.LoopPAVF = lv
		res, err := env.solveWith(opts, env.AvgInputs)
		if err != nil {
			return nil, err
		}
		sum := res.Summarize()
		pt := Fig8Point{LoopPAVF: lv, WeightedSeqAVF: sum.WeightedSeqAVF}
		// Average over the loop bits themselves.
		var loopSum float64
		var loopN int
		for v := 0; v < env.Analyzer.G.NumVerts(); v++ {
			if res.Analyzer.Role(graph.VertexID(v)) == core.RoleLoop {
				loopSum += res.AVF[v]
				loopN++
			}
		}
		if loopN > 0 {
			pt.LoopSeqAVFOnly = loopSum / float64(loopN)
		}
		out.Points = append(out.Points, pt)
		out.LoopSeqFraction = sum.LoopSeqFraction
	}
	return out, nil
}

// WriteText renders the sweep.
func (r *Fig8Result) WriteText(w io.Writer) {
	fprintf(w, "Figure 8: average sequential AVF vs loop-boundary pAVF\n")
	fprintf(w, "(loop sequentials: %.1f%% of all sequential bits)\n", 100*r.LoopSeqFraction)
	rule(w)
	fprintf(w, "%-12s %-22s %-20s\n", "loop pAVF", "avg sequential AVF", "loop-bit AVF")
	for _, p := range r.Points {
		fprintf(w, "%-12.2f %-22.4f %-20.4f\n", p.LoopPAVF, p.WeightedSeqAVF, p.LoopSeqAVFOnly)
	}
	rule(w)
	lo := r.Points[0].WeightedSeqAVF
	hi := r.Points[len(r.Points)-1].WeightedSeqAVF
	fprintf(w, "span: %.4f -> %.4f (no saturation at loop pAVF 1.0)\n", lo, hi)
}

// Fig9Result is the Figure 9 reproduction: per-FUB averages after the
// final relaxation iteration, plus the design-wide weighted averages.
type Fig9Result struct {
	Stats   []core.FubStat
	Summary core.Summary
	// ProxyAVF is the structure-AVF proxy for comparison (§6.2).
	ProxyAVF float64
	// Reduction is the fractional drop from proxy to sequential AVF.
	Reduction float64
}

// Figure9 runs the partitioned relaxation on the suite-average pAVFs.
func Figure9(env *Env) (*Fig9Result, error) {
	res, err := env.Analyzer.SolvePartitioned(env.AvgInputs)
	if err != nil {
		return nil, err
	}
	out := &Fig9Result{
		Stats:    res.FubStats(),
		Summary:  res.Summarize(),
		ProxyAVF: env.ProxyAVF(env.AvgInputs),
	}
	out.Reduction = ser.SeqAVFReduction(out.ProxyAVF, out.Summary.WeightedSeqAVF)
	return out, nil
}

// WriteText renders the per-FUB bars.
func (r *Fig9Result) WriteText(w io.Writer) {
	fprintf(w, "Figure 9: average FUB sequential AVF after the last iteration\n")
	rule(w)
	maxAVF := 0.0
	for _, fs := range r.Stats {
		if fs.AvgSeqAVF > maxAVF {
			maxAVF = fs.AvgSeqAVF
		}
	}
	fprintf(w, "%-8s %-10s %-12s %-12s %-6s %-6s %s\n",
		"FUB", "seq bits", "avg seqAVF", "avg nodeAVF", "loops", "ctrl", "")
	for _, fs := range r.Stats {
		bar := ""
		if maxAVF > 0 {
			bar = strings.Repeat("#", int(24*fs.AvgSeqAVF/maxAVF+0.5))
		}
		fprintf(w, "%-8s %-10d %-12.4f %-12.4f %-6d %-6d %s\n",
			fs.Fub, fs.SeqBits, fs.AvgSeqAVF, fs.AvgNodeAVF, fs.LoopSeqBits, fs.CtrlBits, bar)
	}
	rule(w)
	s := r.Summary
	fprintf(w, "weighted avg sequential AVF : %.4f  (paper: ~0.14)\n", s.WeightedSeqAVF)
	fprintf(w, "weighted avg node AVF       : %.4f\n", s.WeightedNodeAVF)
	fprintf(w, "structure-AVF proxy          : %.4f\n", r.ProxyAVF)
	fprintf(w, "sequential-vs-proxy reduction: %.1f%%  (paper: ~63%% for beam workloads)\n", 100*r.Reduction)
	fprintf(w, "nodes visited by walks       : %.2f%%  (paper: >98%%)\n", 100*s.VisitedFraction)
	fprintf(w, "loop sequential fraction     : %.2f%%  (paper: 2-3%%)\n", 100*s.LoopSeqFraction)
	fprintf(w, "control register bits        : %d\n", s.CtrlBits)
	fprintf(w, "relaxation iterations        : %d (converged=%v; paper: 20)\n", s.Iterations, s.Converged)
}

// ConvergenceResult is the §5.2/§6.1 convergence study: the average
// sequential pAVF of each FUB at each relaxation iteration.
type ConvergenceResult struct {
	FubNames []string
	// Trace[iter][fub].
	Trace      [][]float64
	Iterations int
	Converged  bool
}

// Convergence runs the partitioned solver and extracts its trace.
func Convergence(env *Env) (*ConvergenceResult, error) {
	res, err := env.Analyzer.SolvePartitioned(env.AvgInputs)
	if err != nil {
		return nil, err
	}
	return &ConvergenceResult{
		FubNames:   env.Analyzer.G.FubNames,
		Trace:      res.Trace,
		Iterations: res.Iterations,
		Converged:  res.Converged,
	}, nil
}

// WriteText renders the iteration series (FUBs as columns, every fourth
// FUB to keep the table printable).
func (r *ConvergenceResult) WriteText(w io.Writer) {
	fprintf(w, "Convergence: average sequential pAVF per FUB per iteration\n")
	fprintf(w, "(converged=%v after %d iterations; paper used 20)\n", r.Converged, r.Iterations)
	rule(w)
	step := 4
	fprintf(w, "%-6s", "iter")
	for f := 0; f < len(r.FubNames); f += step {
		fprintf(w, " %-8s", r.FubNames[f])
	}
	fprintf(w, " %-8s\n", "mean")
	for i, row := range r.Trace {
		fprintf(w, "%-6d", i+1)
		var sum float64
		for _, v := range row {
			sum += v
		}
		for f := 0; f < len(row); f += step {
			fprintf(w, " %-8.4f", row[f])
		}
		fprintf(w, " %-8.4f\n", sum/float64(len(row)))
	}
}

// Fig10Workload is one bar group of Figure 10.
type Fig10Workload struct {
	Corr ser.Correlation
	// SeqAVF / ProxyAVF are the per-workload averages behind the bars.
	SeqAVF    float64
	ProxyAVF  float64
	Reduction float64
}

// Fig10Result is the silicon-correlation reproduction: for each beam
// workload, the pre-model (structure proxy), post-model (SART sequential
// AVFs), and the simulated beam measurement with its statistical error.
type Fig10Result struct {
	Workloads []Fig10Workload
	// MeanImprovement is the average correlation improvement (paper: ~66%).
	MeanImprovement float64
}

// BeamWorkloads are the two kernels with (simulated) accelerated SER data.
var BeamWorkloads = []string{"lattice12", "md5like200"}

// Figure10 runs the correlation experiment.
func Figure10(env *Env) (*Fig10Result, error) {
	out := &Fig10Result{}
	params := ser.DefaultFITParams()
	bits := env.StructBits()
	for wi, name := range BeamWorkloads {
		rep, ok := env.Reports[name]
		if !ok {
			continue
		}
		in, err := env.Gen.Inputs(rep)
		if err != nil {
			return nil, err
		}
		res, err := env.Analyzer.Solve(in)
		if err != nil {
			return nil, err
		}
		truth := env.Gen.GroundTruth(res)
		pre := ser.ProxyFIT(res, bits, params)
		post := ser.ModeledFIT(res, bits, params)
		tru := ser.TrueFIT(res, truth, bits, params)
		meas, err := ser.BeamTest(tru.Total(), ser.DefaultBeamConfig(env.Gen.Config.Seed+uint64(wi)))
		if err != nil {
			return nil, err
		}
		sum := res.Summarize()
		proxy := env.ProxyAVF(in)
		out.Workloads = append(out.Workloads, Fig10Workload{
			Corr: ser.Correlation{
				Workload: name,
				Measured: meas,
				PreFIT:   pre.Total(),
				PostFIT:  post.Total(),
			},
			SeqAVF:    sum.WeightedSeqAVF,
			ProxyAVF:  proxy,
			Reduction: ser.SeqAVFReduction(proxy, sum.WeightedSeqAVF),
		})
	}
	for _, wl := range out.Workloads {
		out.MeanImprovement += wl.Corr.Improvement() / float64(len(out.Workloads))
	}
	return out, nil
}

// WriteText renders the bar groups, normalized to the measured value
// (arbitrary units, as in the paper).
func (r *Fig10Result) WriteText(w io.Writer) {
	fprintf(w, "Figure 10: modeled vs measured SER (normalized AU)\n")
	rule(w)
	fprintf(w, "%-12s %-12s %-12s %-16s %-10s %-8s\n",
		"workload", "pre model", "post model", "measured (AU)", "improve", "within")
	for _, wl := range r.Workloads {
		c := wl.Corr
		m := c.Measured.FIT
		fprintf(w, "%-12s %-12.2f %-12.2f %.2f [%.2f,%.2f] %-10.1f%% %-8v\n",
			c.Workload, c.PreFIT/m.Point, c.PostFIT/m.Point,
			1.0, m.Lo/m.Point, m.Hi/m.Point,
			100*c.Improvement(), c.WithinMeasurement())
	}
	rule(w)
	fprintf(w, "mean correlation improvement: %.1f%%  (paper: ~66%%)\n", 100*r.MeanImprovement)
	for _, wl := range r.Workloads {
		fprintf(w, "%s: sequential AVF %.4f vs proxy %.4f (%.0f%% lower; paper: ~63%%)\n",
			wl.Corr.Workload, wl.SeqAVF, wl.ProxyAVF, 100*wl.Reduction)
	}
}
