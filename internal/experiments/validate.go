package experiments

import (
	"io"
	"sort"
	"time"

	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/isa"
	"seqavf/internal/netlist"
	"seqavf/internal/sfi"
	"seqavf/internal/sweep"
	"seqavf/internal/tinycore"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

// Table1Row is one node of the Figure 7 worked example.
type Table1Row struct {
	Node     string
	Equation string
	Forward  float64
	Backward float64
	AVF      float64
}

// Table1Result reproduces the paper's worked propagation example (Figure
// 7 + Table 1): the exact circuit, its closed-form equations, and the
// resolved values.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 builds the Figure 7 circuit with the paper's pAVF values
// (pAVF_R(S1)=0.10, pAVF_R(S2)=0.02) and representative write-port values.
func Table1() (*Table1Result, error) {
	d := netlist.NewDesign("fig7")
	for _, s := range []string{"S1", "S2", "S3", "S4"} {
		d.AddStructure(s, 4, 1)
	}
	m := d.AddModule("m")
	b := netlist.Build(m)
	s1 := b.SRead("s1_rd", 1, "S1", "rd")
	s2 := b.SRead("s2_rd", 1, "S2", "rd")
	q1a := b.Seq("q1a", 1, s1)
	q2a := b.Seq("q2a", 1, q1a)
	q1b := b.Seq("q1b", 1, s2)
	g1 := b.C("g1", 1, netlist.OpNor, q1a, q1b)
	q3b := b.Seq("q3b", 1, g1)
	g2 := b.C("g2", 1, netlist.OpNor, q2a, g1)
	q3a := b.Seq("q3a", 1, g2)
	b.SWrite("s3_wr", "S3", "wr", q3a)
	b.SWrite("s4_wr", "S4", "wr", q3b)
	d.AddFub("F", "m")
	if err := d.Validate(); err != nil {
		return nil, err
	}
	fd, err := netlist.Flatten(d)
	if err != nil {
		return nil, err
	}
	bg, err := graph.Build(fd)
	if err != nil {
		return nil, err
	}
	a, err := core.NewAnalyzer(bg, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	in := core.NewInputs()
	in.ReadPorts[core.StructPort{Struct: "S1", Port: "rd"}] = 0.10
	in.ReadPorts[core.StructPort{Struct: "S2", Port: "rd"}] = 0.02
	in.WritePorts[core.StructPort{Struct: "S3", Port: "wr"}] = 0.50
	in.WritePorts[core.StructPort{Struct: "S4", Port: "wr"}] = 0.20
	res, err := a.Solve(in)
	if err != nil {
		return nil, err
	}
	out := &Table1Result{}
	for _, node := range []string{"q1a", "q2a", "q1b", "g1", "g2", "q3a", "q3b"} {
		v, _, _ := bg.VertexBase("F", node)
		out.Rows = append(out.Rows, Table1Row{
			Node:     node,
			Equation: res.Equation(v),
			Forward:  res.Exprs[v].FwdValue(res.Env),
			Backward: res.Exprs[v].BwdValue(res.Env),
			AVF:      res.AVF[v],
		})
	}
	return out, nil
}

// WriteText renders the worked example.
func (r *Table1Result) WriteText(w io.Writer) {
	fprintf(w, "Table 1 / Figure 7: worked propagation example\n")
	fprintf(w, "pAVF_R(S1)=0.10  pAVF_R(S2)=0.02  pAVF_W(S3)=0.50  pAVF_W(S4)=0.20\n")
	rule(w)
	fprintf(w, "%-6s %-8s %-8s %-8s %s\n", "node", "fwd", "bwd", "AVF", "closed form")
	for _, row := range r.Rows {
		fprintf(w, "%-6s %-8.3f %-8.3f %-8.3f %s\n",
			row.Node, row.Forward, row.Backward, row.AVF, row.Equation)
	}
}

// ValidateNode compares SART and SFI for one sequential node.
type ValidateNode struct {
	Node    string
	Width   int
	IsLoop  bool
	SartAVF float64
	// SartBound is the SART value with the loop-boundary pAVF pinned to
	// 100% — the fully conservative setting of §4.3's solution 3.
	SartBound float64
	SfiAVF    float64
	SfiLo     float64
	SfiHi     float64
}

// ValidateResult is the SART-vs-fault-injection study on the netlist core
// (the reproduction's ground-truth check, experiment E7), together with
// the cost comparison motivating the paper (E6).
type ValidateResult struct {
	Workload string
	Nodes    []ValidateNode
	// ConservativeNonLoop counts non-loop nodes where SART >= SFI lower
	// bound. SART is conservative by construction except at loop
	// boundaries, where the injected static pAVF is an engineering
	// approximation (§4.3).
	ConservativeNonLoop int
	NonLoopNodes        int
	// ConservativeBound counts all nodes where the loop-pAVF=1.0 setting
	// bounds the SFI measurement — the strict conservatism check.
	ConservativeBound int
	TotalNodes        int
	// Cost accounting.
	SfiInjections      int
	SfiSimCycles       uint64
	SfiWallTime        time.Duration
	SartWallTime       time.Duration
	ReevalWallTime     time.Duration
	GoldenCycles       uint64
	SartVisitedPercent float64
}

// Validate runs the study for one workload.
func Validate(prog string, injectionsPerBit int) (*ValidateResult, error) {
	p := pickProgram(prog)
	// Performance-model measurements.
	perf, err := uarch.Run(p, uarch.DefaultConfig())
	if err != nil {
		return nil, err
	}
	inputs, err := tinycore.BindInputs(perf.Report)
	if err != nil {
		return nil, err
	}
	// SART on the netlist.
	fd, err := tinycore.FlatDesign(len(p.Code))
	if err != nil {
		return nil, err
	}
	bg, err := graph.Build(fd)
	if err != nil {
		return nil, err
	}
	analyzer, err := core.NewAnalyzer(bg, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	res, err := analyzer.Solve(inputs)
	if err != nil {
		return nil, err
	}
	sartTime := time.Since(t0)
	t0 = time.Now()
	if err := res.Reevaluate(inputs); err != nil {
		return nil, err
	}
	reevalTime := time.Since(t0)
	sartByNode := res.SeqAVFByNode()

	// Fully conservative loop treatment for the strict bound check.
	boundOpts := core.DefaultOptions()
	boundOpts.LoopPAVF = 1.0
	boundAnalyzer, err := core.NewAnalyzer(bg, boundOpts)
	if err != nil {
		return nil, err
	}
	boundRes, err := boundAnalyzer.Solve(inputs)
	if err != nil {
		return nil, err
	}
	boundByNode := boundRes.SeqAVFByNode()

	// SFI campaign on the same netlist running the same program.
	machine, err := tinycore.New(p)
	if err != nil {
		return nil, err
	}
	cfg := sfi.DefaultConfig()
	if injectionsPerBit > 0 {
		cfg.InjectionsPerBit = injectionsPerBit
	}
	t0 = time.Now()
	camp, err := sfi.Run(machine.Sim, sfi.Observation{
		Fub: tinycore.FubName, Valid: "out_valid", Data: "out_data", Halted: "halted_o",
	}, cfg)
	if err != nil {
		return nil, err
	}
	sfiTime := time.Since(t0)

	out := &ValidateResult{
		Workload:           p.Name,
		SfiInjections:      camp.Injections,
		SfiSimCycles:       camp.SimulatedCycles,
		SfiWallTime:        sfiTime,
		SartWallTime:       sartTime,
		ReevalWallTime:     reevalTime,
		GoldenCycles:       camp.GoldenCycles,
		SartVisitedPercent: 100 * res.VisitedFraction(),
	}
	loopNodes := make(map[string]bool)
	for v := 0; v < bg.NumVerts(); v++ {
		if analyzer.Role(graph.VertexID(v)) == core.RoleLoop {
			vx := &bg.Verts[v]
			loopNodes[bg.FubNames[vx.Fub]+"/"+vx.Node.Name] = true
		}
	}
	for i := range camp.Nodes {
		n := &camp.Nodes[i]
		key := n.Fub + "/" + n.Node
		ci := n.CI()
		vn := ValidateNode{
			Node:      key,
			Width:     n.Width,
			IsLoop:    loopNodes[key],
			SartAVF:   sartByNode[key],
			SartBound: boundByNode[key],
			SfiAVF:    n.AVF(),
			SfiLo:     ci.Lo,
			SfiHi:     ci.Hi,
		}
		out.Nodes = append(out.Nodes, vn)
		out.TotalNodes++
		if vn.SartBound >= vn.SfiLo {
			out.ConservativeBound++
		}
		if !vn.IsLoop {
			out.NonLoopNodes++
			if vn.SartAVF >= vn.SfiLo {
				out.ConservativeNonLoop++
			}
		}
	}
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].Node < out.Nodes[j].Node })
	return out, nil
}

func pickProgram(name string) *isa.Program {
	switch name {
	case "lattice":
		return workload.Lattice(6)
	default:
		return workload.MD5Like(60)
	}
}

// WriteText renders the validation table.
func (r *ValidateResult) WriteText(w io.Writer) {
	fprintf(w, "SART vs statistical fault injection on tinycore (%s)\n", r.Workload)
	rule(w)
	fprintf(w, "%-16s %-6s %-6s %-10s %-10s %-10s %-18s\n",
		"node", "bits", "loop", "SART@0.3", "SART@1.0", "SFI", "SFI 95%CI")
	for _, n := range r.Nodes {
		loop := ""
		if n.IsLoop {
			loop = "yes"
		}
		fprintf(w, "%-16s %-6d %-6s %-10.3f %-10.3f %-10.3f [%.3f, %.3f]\n",
			n.Node, n.Width, loop, n.SartAVF, n.SartBound, n.SfiAVF, n.SfiLo, n.SfiHi)
	}
	rule(w)
	fprintf(w, "non-loop nodes with SART >= SFI lower bound: %d / %d\n",
		r.ConservativeNonLoop, r.NonLoopNodes)
	fprintf(w, "nodes bounded by loop-pAVF=1.0 setting:      %d / %d\n",
		r.ConservativeBound, r.TotalNodes)
	fprintf(w, "SFI: %d injections, %d simulated cycles, %v wall time\n",
		r.SfiInjections, r.SfiSimCycles, r.SfiWallTime.Round(time.Millisecond))
	fprintf(w, "SART: one analytical pass, %v wall time (visited %.1f%% of nodes)\n",
		r.SartWallTime.Round(time.Microsecond), r.SartVisitedPercent)
	fprintf(w, "closed-form re-evaluation:   %v\n", r.ReevalWallTime.Round(time.Microsecond))
	if r.SartWallTime > 0 {
		fprintf(w, "SFI/SART wall-time ratio: %.0fx\n",
			float64(r.SfiWallTime)/float64(r.SartWallTime))
	}
}

// SymbolicResult compares full re-solves against closed-form
// re-evaluation across the workload suite (§5.1's payoff), both
// per-workload (Result.Reevaluate) and batched through the compiled
// sweep plan (internal/sweep).
type SymbolicResult struct {
	Workloads    []string
	MaxDeviation float64
	SolveTime    time.Duration
	ReevalTime   time.Duration
	// CompileTime is the one-off plan compilation; SweepTime is the batch
	// evaluation of every workload through the plan.
	CompileTime time.Duration
	SweepTime   time.Duration
	Plan        sweep.Stats
}

// Symbolic runs the study on the XeonLike environment: one solve against
// the suite average yields closed forms that are re-evaluated for every
// workload three ways (fresh solve, Reevaluate, batch sweep); any
// disagreement shows up in MaxDeviation.
func Symbolic(env *Env) (*SymbolicResult, error) {
	out := &SymbolicResult{}
	base, err := env.Analyzer.Solve(env.AvgInputs)
	if err != nil {
		return nil, err
	}
	ws := make([]sweep.Workload, 0, len(env.Workloads))
	for _, name := range env.Workloads {
		in, err := env.Gen.Inputs(env.Reports[name])
		if err != nil {
			return nil, err
		}
		ws = append(ws, sweep.Workload{Name: name, Inputs: in})
		out.Workloads = append(out.Workloads, name)
	}

	// Reference: a full symbolic solve per workload.
	fresh := make([]*core.Result, len(ws))
	t0 := time.Now()
	for i := range ws {
		if fresh[i], err = env.Analyzer.Solve(ws[i].Inputs); err != nil {
			return nil, err
		}
	}
	out.SolveTime = time.Since(t0)

	// Per-workload closed-form re-evaluation.
	t0 = time.Now()
	for i := range ws {
		if err := base.Reevaluate(ws[i].Inputs); err != nil {
			return nil, err
		}
		if d := core.MaxAbsDiff(base, fresh[i]); d > out.MaxDeviation {
			out.MaxDeviation = d
		}
	}
	out.ReevalTime = time.Since(t0)

	// Batched sweep through the compiled plan.
	eng := sweep.New(sweep.Options{})
	t0 = time.Now()
	plan, err := eng.Plan(base)
	if err != nil {
		return nil, err
	}
	out.CompileTime = time.Since(t0)
	out.Plan = plan.Stats()
	batch, err := eng.Sweep(base, ws)
	if err != nil {
		return nil, err
	}
	out.SweepTime = batch.Elapsed
	for i := range ws {
		if d := core.MaxAbsDiff(batch.Results[i], fresh[i]); d > out.MaxDeviation {
			out.MaxDeviation = d
		}
	}
	return out, nil
}

// WriteText renders the comparison.
func (r *SymbolicResult) WriteText(w io.Writer) {
	fprintf(w, "Closed-form re-evaluation vs full re-solve (%d workloads)\n", len(r.Workloads))
	rule(w)
	fprintf(w, "max |AVF deviation|: %.2e\n", r.MaxDeviation)
	fprintf(w, "full solves:         %v\n", r.SolveTime.Round(time.Microsecond))
	fprintf(w, "closed-form evals:   %v\n", r.ReevalTime.Round(time.Microsecond))
	fprintf(w, "plan compile:        %v (%d unique subterms for %d equations)\n",
		r.CompileTime.Round(time.Microsecond), r.Plan.UniqueSets, r.Plan.Vertices)
	fprintf(w, "batch sweep:         %v\n", r.SweepTime.Round(time.Microsecond))
	if r.ReevalTime > 0 {
		fprintf(w, "speedup (reeval):    %.1fx\n", float64(r.SolveTime)/float64(r.ReevalTime))
	}
	if r.SweepTime > 0 {
		fprintf(w, "speedup (sweep):     %.1fx\n", float64(r.SolveTime)/float64(r.SweepTime))
	}
}
