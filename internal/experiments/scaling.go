package experiments

import (
	"io"

	"seqavf/internal/core"
	"seqavf/internal/design"
	"seqavf/internal/graph"
	"seqavf/internal/netlist"
)

// ScalePoint is one chain length of the convergence-scaling study.
type ScalePoint struct {
	Fubs       int
	Iterations int
	Converged  bool
}

// ScalingResult demonstrates §5.2's central operational property: "any
// walk can only cross one partition during each iteration", so the
// iterations the relaxation needs grow with the partition diameter. On a
// pure FUB chain the diameter equals the chain length; the paper's 20
// iterations reflect its design's diameter.
type ScalingResult struct {
	Points []ScalePoint
}

// ConvergenceScaling sweeps chain lengths.
func ConvergenceScaling(lengths []int) (*ScalingResult, error) {
	if len(lengths) == 0 {
		lengths = []int{4, 8, 12, 16, 20}
	}
	out := &ScalingResult{}
	for _, n := range lengths {
		d, err := design.GenerateChain(n, 2, 8)
		if err != nil {
			return nil, err
		}
		fd, err := netlist.Flatten(d)
		if err != nil {
			return nil, err
		}
		bg, err := graph.Build(fd)
		if err != nil {
			return nil, err
		}
		opts := core.DefaultOptions()
		opts.Iterations = 3 * n // generous cap
		a, err := core.NewAnalyzer(bg, opts)
		if err != nil {
			return nil, err
		}
		in := core.NewInputs()
		in.ReadPorts[core.StructPort{Struct: "HEAD", Port: "rd"}] = 0.25
		in.WritePorts[core.StructPort{Struct: "TAIL", Port: "wr"}] = 0.10
		res, err := a.SolvePartitioned(in)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, ScalePoint{
			Fubs:       n,
			Iterations: res.Iterations,
			Converged:  res.Converged,
		})
	}
	return out, nil
}

// WriteText renders the scaling law.
func (r *ScalingResult) WriteText(w io.Writer) {
	fprintf(w, "Convergence scaling: iterations vs partition diameter (§5.2)\n")
	rule(w)
	fprintf(w, "%-12s %-12s %-10s\n", "chain FUBs", "iterations", "converged")
	for _, p := range r.Points {
		fprintf(w, "%-12d %-12d %-10v\n", p.Fubs, p.Iterations, p.Converged)
	}
	rule(w)
	fprintf(w, "values cross one partition per iteration: iterations track the\n")
	fprintf(w, "chain length, which is why the paper's wide design needed ~20.\n")
}
