package experiments

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/tinycore"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures from current output")

const goldenTol = 1e-9

// TestTinycoreGoldenSeqAVF pins the end-to-end per-node seqAVF values for
// tinycore running the MD5-like kernel. Any change to the walks, the
// environment construction, the pAVF arithmetic, or the microarchitectural
// model that moves a node by more than 1e-9 fails here; run with -update
// to bless an intentional change.
func TestTinycoreGoldenSeqAVF(t *testing.T) {
	p := workload.MD5Like(60)
	fd, err := tinycore.FlatDesign(len(p.Code))
	if err != nil {
		t.Fatalf("FlatDesign: %v", err)
	}
	g, err := graph.Build(fd)
	if err != nil {
		t.Fatalf("graph.Build: %v", err)
	}
	a, err := core.NewAnalyzer(g, core.DefaultOptions())
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	perf, err := uarch.Run(p, uarch.DefaultConfig())
	if err != nil {
		t.Fatalf("uarch.Run: %v", err)
	}
	in, err := tinycore.BindInputs(perf.Report)
	if err != nil {
		t.Fatalf("BindInputs: %v", err)
	}
	res, err := a.Solve(in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	got := res.SeqAVFByNode()
	if len(got) == 0 {
		t.Fatal("no sequential nodes in tinycore result")
	}

	path := filepath.Join("testdata", "tinycore_md5_seqavf.golden")
	if *updateGolden {
		writeGolden(t, path, got)
		t.Logf("rewrote %s with %d nodes", path, len(got))
	}
	want := readGolden(t, path)
	if len(got) != len(want) {
		t.Errorf("node count drifted: golden has %d, current run has %d", len(want), len(got))
	}
	for node, wv := range want {
		gv, ok := got[node]
		if !ok {
			t.Errorf("node %s present in golden but missing from current run", node)
			continue
		}
		if d := math.Abs(gv - wv); !(d <= goldenTol) {
			t.Errorf("node %s drifted: golden %.12f, got %.12f (|d|=%.3e > %.0e)",
				node, wv, gv, d, goldenTol)
		}
	}
	for node := range got {
		if _, ok := want[node]; !ok {
			t.Errorf("node %s missing from golden (run with -update if intentional)", node)
		}
	}
}

func writeGolden(t *testing.T, path string, avf map[string]float64) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(avf))
	for k := range avf {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("# per-node seqAVF, tinycore + MD5Like(60), DefaultOptions\n")
	sb.WriteString("# regenerate: go test ./internal/experiments/ -run TestTinycoreGoldenSeqAVF -update\n")
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s %.15g\n", k, avf[k])
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readGolden(t *testing.T, path string) map[string]float64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("golden fixture unreadable (run with -update to create): %v", err)
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 2 {
			t.Fatalf("%s: malformed line %q", path, sc.Text())
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("%s: bad value in %q: %v", path, sc.Text(), err)
		}
		out[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}
