package experiments

import (
	"io"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
)

var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

// sharedEnv builds one smaller environment for all tests.
func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		cfg := DefaultSetup()
		cfg.SuiteSize = 4
		envVal, envErr = Setup(cfg)
	})
	if envErr != nil {
		t.Fatalf("Setup: %v", envErr)
	}
	return envVal
}

func TestMain(m *testing.M) { os.Exit(m.Run()) }

func TestTable1MatchesPaper(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"q1a": 0.10, "q2a": 0.10, "q1b": 0.02,
		"g1": 0.12, "g2": 0.12, "q3a": 0.12, "q3b": 0.12,
	}
	for _, row := range r.Rows {
		if math.Abs(row.AVF-want[row.Node]) > 1e-9 {
			t.Errorf("%s AVF = %v, want %v", row.Node, row.AVF, want[row.Node])
		}
	}
	var sb strings.Builder
	r.WriteText(&sb)
	if !strings.Contains(sb.String(), "MIN(pAVF_R(S1.rd) + pAVF_R(S2.rd)") {
		t.Errorf("rendered table lacks the join closed form:\n%s", sb.String())
	}
}

func TestFigure8Shape(t *testing.T) {
	env := sharedEnv(t)
	r, err := Figure8(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 9 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].WeightedSeqAVF < r.Points[i-1].WeightedSeqAVF-1e-12 {
			t.Fatalf("sweep not monotone at %v", r.Points[i].LoopPAVF)
		}
	}
	last := r.Points[len(r.Points)-1]
	if last.WeightedSeqAVF > 0.5 {
		t.Fatalf("loop pAVF 1.0 saturated the design: %v", last.WeightedSeqAVF)
	}
	// Loop bits themselves track the injected value exactly.
	for _, p := range r.Points {
		if math.Abs(p.LoopSeqAVFOnly-p.LoopPAVF) > 1e-9 {
			t.Fatalf("loop bits at %v have AVF %v", p.LoopPAVF, p.LoopSeqAVFOnly)
		}
	}
	// The effect is bounded: the full sweep moves the average by less
	// than the loop fraction's ripple allows (paper: "relatively little
	// variation"). The bound is a heuristic over the seed-2027 synthetic
	// design; recalibrated from 0.10 to 0.15 when the unbiased Intn
	// changed the generator's deterministic stream.
	span := last.WeightedSeqAVF - r.Points[0].WeightedSeqAVF
	if span <= 0 || span > 0.15 {
		t.Fatalf("sweep span = %v", span)
	}
	var sb strings.Builder
	r.WriteText(&sb)
	if !strings.Contains(sb.String(), "no saturation") {
		t.Fatal("render missing summary")
	}
}

func TestFigure9Claims(t *testing.T) {
	env := sharedEnv(t)
	r, err := Figure9(env)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summary
	if s.WeightedSeqAVF < 0.05 || s.WeightedSeqAVF > 0.30 {
		t.Fatalf("weighted sequential AVF = %v, want near the paper's 0.14", s.WeightedSeqAVF)
	}
	if r.Reduction < 0.40 || r.Reduction > 0.85 {
		t.Fatalf("proxy reduction = %v, want in the neighborhood of the paper's 0.63", r.Reduction)
	}
	if s.VisitedFraction < 0.98 {
		t.Fatalf("visited = %v, paper reports >98%%", s.VisitedFraction)
	}
	if s.LoopSeqFraction < 0.003 || s.LoopSeqFraction > 0.06 {
		t.Fatalf("loop fraction = %v, paper reports 2-3%%", s.LoopSeqFraction)
	}
	if !s.Converged {
		t.Fatal("relaxation did not converge")
	}
	if len(r.Stats) != len(env.Gen.Design.Fubs) {
		t.Fatalf("stats rows = %d", len(r.Stats))
	}
}

func TestConvergenceMonotone(t *testing.T) {
	env := sharedEnv(t)
	r, err := Convergence(env)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged || r.Iterations < 2 {
		t.Fatalf("iterations=%d converged=%v", r.Iterations, r.Converged)
	}
	for i := 1; i < len(r.Trace); i++ {
		for f := range r.Trace[i] {
			if r.Trace[i][f] > r.Trace[i-1][f]+1e-12 {
				t.Fatalf("iteration %d FUB %d increased", i, f)
			}
		}
	}
}

func TestFigure10Claims(t *testing.T) {
	env := sharedEnv(t)
	r, err := Figure10(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workloads) != 2 {
		t.Fatalf("workloads = %d", len(r.Workloads))
	}
	for _, wl := range r.Workloads {
		c := wl.Corr
		if c.PreFIT <= c.PostFIT {
			t.Fatalf("%s: pre (%v) should exceed post (%v)", c.Workload, c.PreFIT, c.PostFIT)
		}
		if c.PreError() < 0.5 {
			t.Fatalf("%s: pre-model error %v, paper reports ~100%%", c.Workload, c.PreError())
		}
		if !c.WithinMeasurement() {
			t.Fatalf("%s: post model outside measurement error", c.Workload)
		}
		if wl.Reduction < 0.4 {
			t.Fatalf("%s: sequential reduction %v below expectations", c.Workload, wl.Reduction)
		}
	}
	if r.MeanImprovement < 0.5 {
		t.Fatalf("mean improvement = %v", r.MeanImprovement)
	}
}

func TestValidateStudy(t *testing.T) {
	r, err := Validate("md5", 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalNodes == 0 {
		t.Fatal("no nodes")
	}
	// The strict conservative setting must bound every SFI measurement.
	if r.ConservativeBound != r.TotalNodes {
		t.Fatalf("loop-pAVF=1.0 bound failed: %d/%d", r.ConservativeBound, r.TotalNodes)
	}
	// SFI must be orders of magnitude more expensive than one SART pass.
	if r.SfiSimCycles < 100*r.GoldenCycles {
		t.Fatalf("SFI cost %d cycles vs golden %d — campaign too small to show the gap",
			r.SfiSimCycles, r.GoldenCycles)
	}
	var sb strings.Builder
	r.WriteText(&sb)
	if !strings.Contains(sb.String(), "SART@1.0") {
		t.Fatal("render missing bound column")
	}
}

func TestSymbolicStudy(t *testing.T) {
	env := sharedEnv(t)
	r, err := Symbolic(env)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxDeviation != 0 {
		t.Fatalf("closed forms deviate: %v", r.MaxDeviation)
	}
	if len(r.Workloads) != len(env.Workloads) {
		t.Fatalf("workloads covered: %d", len(r.Workloads))
	}
}

func TestProxyAVFWellAboveSeq(t *testing.T) {
	env := sharedEnv(t)
	res, err := env.Analyzer.Solve(env.AvgInputs)
	if err != nil {
		t.Fatal(err)
	}
	proxy := env.ProxyAVF(env.AvgInputs)
	seq := res.Summarize().WeightedSeqAVF
	if proxy <= seq {
		t.Fatalf("proxy %v should exceed sequential average %v", proxy, seq)
	}
}

func TestProtectionSweep(t *testing.T) {
	r, err := Protection(7, []float64{0, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if first.DUEFIT != 0 || first.SeqDUE != 0 {
		t.Fatalf("unprotected design has DUE: %+v", first)
	}
	// The paper's §1 projection: absolute SDC falls, sequential share rises.
	if last.SDCFIT >= first.SDCFIT {
		t.Fatalf("SDC did not fall: %v -> %v", first.SDCFIT, last.SDCFIT)
	}
	if last.SeqShare <= first.SeqShare {
		t.Fatalf("sequential share did not rise: %v -> %v", first.SeqShare, last.SeqShare)
	}
	if last.DUEFIT <= 0 {
		t.Fatal("protected design shows no DUE")
	}
}

func TestLoopCharacterization(t *testing.T) {
	r, err := LoopChar("md5", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nodes) == 0 {
		t.Fatal("no nodes characterized")
	}
	// Solution 2 must beat the static value on this all-loop design.
	if r.MAEChar >= r.MAEStatic {
		t.Fatalf("characterization did not improve accuracy: %v vs %v",
			r.MAEChar, r.MAEStatic)
	}
	var sb strings.Builder
	r.WriteText(&sb)
	if !strings.Contains(sb.String(), "mean abs error") {
		t.Fatal("render incomplete")
	}
}

func TestConvergenceScalingLaw(t *testing.T) {
	r, err := ConvergenceScaling([]int{4, 8, 12})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range r.Points {
		if !p.Converged {
			t.Fatalf("chain %d did not converge", p.Fubs)
		}
		// One partition crossing per iteration: the count tracks the
		// chain length closely.
		if p.Iterations < p.Fubs || p.Iterations > p.Fubs+3 {
			t.Fatalf("chain %d took %d iterations", p.Fubs, p.Iterations)
		}
		if i > 0 && p.Iterations <= r.Points[i-1].Iterations {
			t.Fatal("iterations did not grow with diameter")
		}
	}
}

func TestHardeningStudy(t *testing.T) {
	env := sharedEnv(t)
	r, err := Hardening(env, []float64{0.2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Points {
		if p.Achieved < p.Target {
			t.Fatalf("target %v not achieved: %v", p.Target, p.Achieved)
		}
		if p.GuidedBitsFrac >= p.RandomBitsFrac {
			t.Fatalf("guided plan (%v bits) not cheaper than uniform (%v)",
				p.GuidedBitsFrac, p.RandomBitsFrac)
		}
	}
	// More ambitious targets need more bits.
	if r.Points[1].GuidedBitsFrac <= r.Points[0].GuidedBitsFrac {
		t.Fatal("bit cost did not grow with target")
	}
}

func TestVariationStudy(t *testing.T) {
	env := sharedEnv(t)
	r, err := Variation(env, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workloads) != len(env.Workloads) {
		t.Fatalf("covered %d of %d workloads", len(r.Workloads), len(env.Workloads))
	}
	if len(r.Top) != 5 {
		t.Fatalf("top = %d", len(r.Top))
	}
	for _, n := range r.Top {
		if n.Min > n.Mean || n.Max < n.Mean {
			t.Fatalf("node stats inconsistent: %+v", n)
		}
		if n.Std < 0 {
			t.Fatalf("negative std: %+v", n)
		}
	}
	if r.StableFrac < 0 || r.StableFrac > 1 {
		t.Fatalf("stable frac = %v", r.StableFrac)
	}
	// The named kernels must differ in design-average AVF (workload
	// dependence flows end to end).
	if r.PerWorkloadAvg[0] == r.PerWorkloadAvg[1] {
		t.Fatal("lattice and md5 produced identical averages")
	}
}

func TestExhaustiveStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive campaign skipped in -short")
	}
	r, err := Exhaustive([]int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.SolutionSpace < 10000 {
		t.Fatalf("solution space suspiciously small: %d", r.SolutionSpace)
	}
	if len(r.MAE) != 2 {
		t.Fatalf("MAE entries = %d", len(r.MAE))
	}
	// More samples, less error.
	if r.MAE[1] >= r.MAE[0] {
		t.Fatalf("MAE did not shrink with budget: %v", r.MAE)
	}
	// Coverage is high (95% CIs over 8 nodes: allow one miss).
	if r.Coverage[1] < 0.85 {
		t.Fatalf("CI coverage = %v", r.Coverage[1])
	}
}

// TestRenderersProduceOutput smoke-tests every WriteText renderer so the
// report paths stay exercised.
func TestRenderersProduceOutput(t *testing.T) {
	env := sharedEnv(t)
	check := func(name string, render func(io.Writer)) {
		var sb strings.Builder
		render(&sb)
		if len(sb.String()) < 40 {
			t.Errorf("%s rendered only %d bytes", name, len(sb.String()))
		}
	}
	if r, err := Figure9(env); err == nil {
		check("fig9", func(w io.Writer) { r.WriteText(w) })
	} else {
		t.Fatal(err)
	}
	if r, err := Convergence(env); err == nil {
		check("convergence", func(w io.Writer) { r.WriteText(w) })
	} else {
		t.Fatal(err)
	}
	if r, err := Figure10(env); err == nil {
		check("fig10", func(w io.Writer) { r.WriteText(w) })
	} else {
		t.Fatal(err)
	}
	if r, err := Symbolic(env); err == nil {
		check("symbolic", func(w io.Writer) { r.WriteText(w) })
	} else {
		t.Fatal(err)
	}
	if r, err := Variation(env, 3); err == nil {
		check("variation", func(w io.Writer) { r.WriteText(w) })
	} else {
		t.Fatal(err)
	}
	if r, err := Hardening(env, []float64{0.2}); err == nil {
		check("hardening", func(w io.Writer) { r.WriteText(w) })
	} else {
		t.Fatal(err)
	}
	if r, err := ConvergenceScaling([]int{3}); err == nil {
		check("scaling", func(w io.Writer) { r.WriteText(w) })
	} else {
		t.Fatal(err)
	}
	if r, err := Protection(3, []float64{0, 0.4}); err == nil {
		check("protection", func(w io.Writer) { r.WriteText(w) })
	} else {
		t.Fatal(err)
	}
}
