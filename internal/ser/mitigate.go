package ser

import (
	"fmt"
	"sort"

	"seqavf/internal/core"
	"seqavf/internal/graph"
)

// This file implements the hardening planner the paper motivates in §1:
// "A fast and accurate means of determining the most vulnerable
// sequentials is required to determine the most efficient use of low-SER
// circuit and other SER mitigation techniques for these bits." Given
// per-bit AVFs from SART, the planner selects which sequentials to
// replace with hardened cells (SEUT/BISER-style low-SER circuits, refs
// [3][4][5] — modeled as an intrinsic-rate reduction factor) to meet a
// FIT-reduction target at minimum hardened-bit cost.

// HardeningParams describe the low-SER cell technology.
type HardeningParams struct {
	// RateFactor is the hardened cell's intrinsic FIT relative to a
	// standard cell (e.g. 0.1 for a 10x-harder latch; the paper's ref
	// [3] reports SEUT latches in that class).
	RateFactor float64
	// CostPerBit is the relative area/power cost of hardening one bit
	// (used only for reporting).
	CostPerBit float64
}

// DefaultHardeningParams models a 10x low-SER latch at 1.5x cell cost.
func DefaultHardeningParams() HardeningParams {
	return HardeningParams{RateFactor: 0.1, CostPerBit: 1.5}
}

// HardeningPlan is the result of planning.
type HardeningPlan struct {
	// Nodes selected for hardening, most valuable first.
	Nodes []HardenedNode
	// BaseSeqFIT / PlannedSeqFIT are the sequential SDC FIT before and
	// after applying the plan.
	BaseSeqFIT    float64
	PlannedSeqFIT float64
	// HardenedBits is the number of bits replaced.
	HardenedBits int
	// TotalSeqBits is the design's sequential bit count.
	TotalSeqBits int
	// Cost is HardenedBits x CostPerBit.
	Cost float64
}

// HardenedNode is one selected node.
type HardenedNode struct {
	Node string
	Bits int
	// AVF is the node's average SDC AVF.
	AVF float64
	// SavedFIT is the FIT removed by hardening this node.
	SavedFIT float64
}

// Reduction returns the fractional sequential-FIT reduction achieved.
func (p *HardeningPlan) Reduction() float64 {
	if p.BaseSeqFIT == 0 {
		return 0
	}
	return (p.BaseSeqFIT - p.PlannedSeqFIT) / p.BaseSeqFIT
}

// PlanHardening selects sequential nodes (whole nodes — hardening is a
// cell-swap done per register) in descending SDC-AVF order until the
// target fractional reduction of sequential SDC FIT is met or every node
// is hardened. It returns the plan; target must be in (0, 1].
func PlanHardening(res *core.Result, fit FITParams, hp HardeningParams, target float64) (*HardeningPlan, error) {
	if target <= 0 || target > 1 {
		return nil, fmt.Errorf("ser: hardening target %v out of (0,1]", target)
	}
	if hp.RateFactor < 0 || hp.RateFactor >= 1 {
		return nil, fmt.Errorf("ser: RateFactor %v out of [0,1)", hp.RateFactor)
	}
	type nodeAgg struct {
		name string
		bits int
		sdc  float64 // summed SDC AVF over bits
	}
	byNode := make(map[string]*nodeAgg)
	var order []string
	g := res.Analyzer.G
	for v := 0; v < g.NumVerts(); v++ {
		id := graph.VertexID(v)
		if !res.IsSequentialBit(id) {
			continue
		}
		vx := &g.Verts[v]
		key := g.FubNames[vx.Fub] + "/" + vx.Node.Name
		agg, ok := byNode[key]
		if !ok {
			agg = &nodeAgg{name: key}
			byNode[key] = agg
			order = append(order, key)
		}
		agg.bits++
		agg.sdc += res.SDCAVF(id)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := byNode[order[i]], byNode[order[j]]
		da := a.sdc / float64(a.bits)
		db := b.sdc / float64(b.bits)
		if da != db {
			return da > db
		}
		return a.name < b.name
	})

	plan := &HardeningPlan{}
	for _, agg := range byNode {
		plan.BaseSeqFIT += agg.sdc * fit.IntrinsicSeq
		plan.TotalSeqBits += agg.bits
	}
	plan.PlannedSeqFIT = plan.BaseSeqFIT
	goal := plan.BaseSeqFIT * (1 - target)
	for _, key := range order {
		if plan.PlannedSeqFIT <= goal {
			break
		}
		agg := byNode[key]
		saved := agg.sdc * fit.IntrinsicSeq * (1 - hp.RateFactor)
		plan.PlannedSeqFIT -= saved
		plan.HardenedBits += agg.bits
		plan.Nodes = append(plan.Nodes, HardenedNode{
			Node:     key,
			Bits:     agg.bits,
			AVF:      agg.sdc / float64(agg.bits),
			SavedFIT: saved,
		})
	}
	plan.Cost = float64(plan.HardenedBits) * hp.CostPerBit
	return plan, nil
}

// RandomHardeningFIT computes the sequential FIT left after hardening the
// same number of bits chosen uniformly (ignoring AVF) — the baseline an
// AVF-guided plan is measured against. Because a uniform choice removes
// the average AVF per bit, the expected value has a closed form.
func RandomHardeningFIT(plan *HardeningPlan, fit FITParams, hp HardeningParams) float64 {
	if plan.TotalSeqBits == 0 {
		return 0
	}
	frac := float64(plan.HardenedBits) / float64(plan.TotalSeqBits)
	return plan.BaseSeqFIT * (1 - frac*(1-hp.RateFactor))
}
