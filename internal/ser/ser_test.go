package ser

import (
	"math"
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/design"
	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/stats"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

// fixture runs the full pipeline once: design -> ACE -> SART -> truth.
func fixture(t *testing.T) (*design.Generated, *core.Result, []float64) {
	t.Helper()
	g, err := design.Generate(design.DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	fd, err := netlist.Flatten(g.Design)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := graph.Build(fd)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAnalyzer(bg, design.CanonicalOptions())
	if err != nil {
		t.Fatal(err)
	}
	perf, err := uarch.Run(workload.Lattice(8), uarch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	in, err := g.Inputs(perf.Report)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	return g, res, g.GroundTruth(res)
}

func structBits(g *design.Generated) map[string]int {
	out := make(map[string]int)
	for name, s := range g.Design.Structures {
		out[name] = s.Bits()
	}
	return out
}

func TestFITOrdering(t *testing.T) {
	g, res, truth := fixture(t)
	bits := structBits(g)
	p := DefaultFITParams()
	pre := ProxyFIT(res, bits, p)
	post := ModeledFIT(res, bits, p)
	tru := TrueFIT(res, truth, bits, p)

	// The central ordering of Figure 10: proxy >= modeled >= truth, with
	// identical array contributions.
	if pre.ArrayFIT != post.ArrayFIT || post.ArrayFIT != tru.ArrayFIT {
		t.Fatalf("array FIT should be identical: %v %v %v", pre.ArrayFIT, post.ArrayFIT, tru.ArrayFIT)
	}
	if !(pre.SeqFIT > post.SeqFIT) {
		t.Fatalf("proxy seq FIT (%v) should exceed modeled (%v)", pre.SeqFIT, post.SeqFIT)
	}
	if post.SeqFIT < tru.SeqFIT-1e-9 {
		t.Fatalf("modeled seq FIT (%v) below truth (%v): model not conservative", post.SeqFIT, tru.SeqFIT)
	}
	if tru.SeqFIT <= 0 {
		t.Fatal("zero truth FIT")
	}
	t.Logf("pre=%.1f post=%.1f true=%.1f (AU)", pre.Total(), post.Total(), tru.Total())
}

func TestBeamTestStatistics(t *testing.T) {
	trueFIT := 5000.0
	cfg := BeamConfig{AccelHours: 0.05, Seed: 3}
	m, err := BeamTest(trueFIT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors <= 0 {
		t.Fatalf("no beam errors at lambda=%v", trueFIT*cfg.AccelHours)
	}
	// Expect the measurement within ~5 sigma of truth.
	sigma := math.Sqrt(trueFIT*cfg.AccelHours) / cfg.AccelHours
	if math.Abs(m.FIT.Point-trueFIT) > 5*sigma {
		t.Fatalf("measured %v too far from truth %v", m.FIT.Point, trueFIT)
	}
	if !m.FIT.Contains(m.FIT.Point) || m.FIT.Width() <= 0 {
		t.Fatalf("bad interval %+v", m.FIT)
	}
	if _, err := BeamTest(100, BeamConfig{}); err == nil {
		t.Fatal("zero AccelHours accepted")
	}
}

func TestBeamDeterministicPerSeed(t *testing.T) {
	a, _ := BeamTest(3000, BeamConfig{AccelHours: 0.1, Seed: 9})
	b, _ := BeamTest(3000, BeamConfig{AccelHours: 0.1, Seed: 9})
	if a.Errors != b.Errors {
		t.Fatal("beam test not deterministic")
	}
}

func TestCorrelationMetrics(t *testing.T) {
	c := Correlation{
		Workload: "w",
		Measured: Measurement{FIT: stats.Interval{Point: 100, Lo: 80, Hi: 120}},
		PreFIT:   200,
		PostFIT:  110,
	}
	if math.Abs(c.PreError()-1.0) > 1e-12 {
		t.Fatalf("PreError = %v", c.PreError())
	}
	if math.Abs(c.PostError()-0.1) > 1e-12 {
		t.Fatalf("PostError = %v", c.PostError())
	}
	if math.Abs(c.Improvement()-0.9) > 1e-12 {
		t.Fatalf("Improvement = %v", c.Improvement())
	}
	if !c.WithinMeasurement() {
		t.Fatal("post model should be within measurement")
	}
	c.PostFIT = 150
	if c.WithinMeasurement() {
		t.Fatal("post model outside interval reported as within")
	}
}

func TestSeqAVFReduction(t *testing.T) {
	if got := SeqAVFReduction(0.4, 0.148); math.Abs(got-0.63) > 1e-9 {
		t.Fatalf("reduction = %v", got)
	}
	if SeqAVFReduction(0, 0.1) != 0 {
		t.Fatal("zero proxy should return 0")
	}
}

// TestFullFigure10Shape runs the complete correlation experiment on one
// workload and requires the paper's qualitative outcome.
func TestFullFigure10Shape(t *testing.T) {
	g, res, truth := fixture(t)
	bits := structBits(g)
	p := DefaultFITParams()
	pre := ProxyFIT(res, bits, p).Total()
	post := ModeledFIT(res, bits, p).Total()
	tru := TrueFIT(res, truth, bits, p).Total()

	meas, err := BeamTest(tru, BeamConfig{AccelHours: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c := Correlation{Workload: "lattice", Measured: meas, PreFIT: pre, PostFIT: post}
	if c.Improvement() <= 0 {
		t.Fatalf("sequential AVFs did not improve correlation: %+v", c)
	}
	if c.PreError() <= c.PostError() {
		t.Fatalf("pre error %v should exceed post error %v", c.PreError(), c.PostError())
	}
	t.Logf("pre=%.0f post=%.0f measured=%.0f (±%.0f) improvement=%.0f%%",
		pre, post, meas.FIT.Point, meas.FIT.Width()/2, 100*c.Improvement())
}

func TestPlanHardeningMeetsTarget(t *testing.T) {
	_, res, _ := fixture(t)
	fit := DefaultFITParams()
	hp := DefaultHardeningParams()
	plan, err := PlanHardening(res, fit, hp, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Reduction() < 0.3 {
		t.Fatalf("plan reduction %v below target", plan.Reduction())
	}
	if plan.HardenedBits == 0 || plan.HardenedBits >= plan.TotalSeqBits {
		t.Fatalf("hardened %d of %d bits", plan.HardenedBits, plan.TotalSeqBits)
	}
	// AVF-guided selection beats random selection of the same bit count.
	random := RandomHardeningFIT(plan, fit, hp)
	if plan.PlannedSeqFIT >= random {
		t.Fatalf("guided plan (%v) not better than random (%v)", plan.PlannedSeqFIT, random)
	}
	// Selection is ordered by descending AVF.
	for i := 1; i < len(plan.Nodes); i++ {
		if plan.Nodes[i].AVF > plan.Nodes[i-1].AVF+1e-12 {
			t.Fatal("plan not sorted by AVF")
		}
	}
	// Hardening a high-AVF node saves proportionally more: the guided
	// plan's bits are a small fraction for a 30% cut.
	frac := float64(plan.HardenedBits) / float64(plan.TotalSeqBits)
	if frac > 0.35 {
		t.Fatalf("needed %.0f%% of bits for a 30%% reduction — AVF ranking not helping", 100*frac)
	}
	t.Logf("30%% FIT cut by hardening %.1f%% of bits (random would need ~33%%)", 100*frac)
}

func TestPlanHardeningFullTarget(t *testing.T) {
	_, res, _ := fixture(t)
	plan, err := PlanHardening(res, DefaultFITParams(), DefaultHardeningParams(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// A RateFactor of 0.1 cannot reach 100% reduction: everything gets
	// hardened and the floor is 10% of base.
	if plan.HardenedBits != plan.TotalSeqBits {
		t.Fatalf("full target hardened %d of %d", plan.HardenedBits, plan.TotalSeqBits)
	}
	if r := plan.Reduction(); math.Abs(r-0.9) > 1e-9 {
		t.Fatalf("reduction = %v, want 0.9 (rate-factor floor)", r)
	}
}

func TestPlanHardeningValidation(t *testing.T) {
	_, res, _ := fixture(t)
	if _, err := PlanHardening(res, DefaultFITParams(), DefaultHardeningParams(), 0); err == nil {
		t.Fatal("zero target accepted")
	}
	bad := DefaultHardeningParams()
	bad.RateFactor = 1.0
	if _, err := PlanHardening(res, DefaultFITParams(), bad, 0.5); err == nil {
		t.Fatal("useless rate factor accepted")
	}
}
