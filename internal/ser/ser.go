// Package ser computes soft error rates (Equation 1: FIT = AVF x bits x
// intrinsic rate), simulates accelerated beam testing, and measures
// model-to-measurement correlation — the apparatus behind the paper's
// Figure 10 experiment.
//
// Real proton-beam data (Indiana University Cyclotron, §6.2) is replaced
// by a Monte-Carlo beam: the expected error count under accelerated flux
// is drawn from a Poisson distribution around the design's ground-truth
// FIT, and the measured FIT carries the same counting-statistics error
// bars a real campaign would. FIT values are reported in arbitrary units
// (AU), as in the paper.
package ser

import (
	"fmt"
	"math"
	"sort"

	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/stats"
)

// FITParams sets intrinsic per-bit error rates (arbitrary units per bit).
type FITParams struct {
	// IntrinsicSeq is the intrinsic FIT of one sequential bit.
	IntrinsicSeq float64
	// IntrinsicArray is the intrinsic FIT of one structure (latch array)
	// bit.
	IntrinsicArray float64
}

// DefaultFITParams weights sequential bits fully and array bits at 12%:
// most array bits in a modern core carry parity or ECC, so only a small
// unprotected fraction contributes SDC — which is how sequentials come to
// carry about half of the total SDC SER (§1 of the paper).
func DefaultFITParams() FITParams {
	return FITParams{IntrinsicSeq: 1.0, IntrinsicArray: 0.12}
}

// Breakdown is a modeled SDC FIT decomposition.
type Breakdown struct {
	SeqFIT   float64
	ArrayFIT float64
}

// Total returns the design FIT.
func (b Breakdown) Total() float64 { return b.SeqFIT + b.ArrayFIT }

// ModeledFIT computes the post-sequential-AVF SDC model: every sequential
// bit contributes the SDC component of its SART-resolved AVF; every
// unprotected structure bit contributes its ACE-measured structure AVF.
// (Parity-protected arrays contribute DUE — see ModeledDUEFIT — and
// ECC-protected arrays contribute nothing user-visible.)
func ModeledFIT(res *core.Result, structBits map[string]int, p FITParams) Breakdown {
	var b Breakdown
	for v := 0; v < res.Analyzer.G.NumVerts(); v++ {
		if res.IsSequentialBit(graph.VertexID(v)) {
			b.SeqFIT += res.SDCAVF(graph.VertexID(v)) * p.IntrinsicSeq
		}
	}
	b.ArrayFIT = arrayFIT(res, structBits, p, netlist.ProtNone)
	return b
}

// ModeledDUEFIT computes the detected-uncorrectable rate: the DUE
// component of every sequential bit plus the parity-protected arrays.
func ModeledDUEFIT(res *core.Result, structBits map[string]int, p FITParams) Breakdown {
	var b Breakdown
	for v := 0; v < res.Analyzer.G.NumVerts(); v++ {
		if res.IsSequentialBit(graph.VertexID(v)) {
			b.SeqFIT += res.DUEAVF(graph.VertexID(v)) * p.IntrinsicSeq
		}
	}
	b.ArrayFIT = arrayFIT(res, structBits, p, netlist.ProtParity)
	return b
}

// ProxyFIT computes the pre-sequential-AVF model the paper used before
// this work: sequential bits are conservatively assigned the bit-weighted
// average structure AVF as a proxy (§6.2: "we were conservatively using
// structure AVFs as a proxy for the sequential AVF").
func ProxyFIT(res *core.Result, structBits map[string]int, p FITParams) Breakdown {
	var proxy float64
	{
		var sum, bits float64
		for s, avf := range res.Inputs.StructAVF {
			w := float64(structBits[s])
			sum += avf * w
			bits += w
		}
		if bits > 0 {
			proxy = sum / bits
		}
	}
	var b Breakdown
	for v := 0; v < res.Analyzer.G.NumVerts(); v++ {
		if res.IsSequentialBit(graph.VertexID(v)) {
			b.SeqFIT += proxy * p.IntrinsicSeq
		}
	}
	b.ArrayFIT = arrayFIT(res, structBits, p, netlist.ProtNone)
	return b
}

// TrueFIT computes the ground-truth SDC FIT from a per-vertex truth table
// (e.g. design.Generated.GroundTruth): the quantity silicon would exhibit
// under an SDC-observing beam test. Per-bit truth is split into SDC/DUE
// by the same destination composition the model uses (protection is a
// property of the design, not of the estimate).
func TrueFIT(res *core.Result, truth []float64, structBits map[string]int, p FITParams) Breakdown {
	var b Breakdown
	for v := 0; v < res.Analyzer.G.NumVerts(); v++ {
		if !res.IsSequentialBit(graph.VertexID(v)) {
			continue
		}
		frac := 1.0
		if avf := res.AVF[v]; avf > 0 {
			frac = res.SDCAVF(graph.VertexID(v)) / avf
		}
		b.SeqFIT += truth[v] * frac * p.IntrinsicSeq
	}
	b.ArrayFIT = arrayFIT(res, structBits, p, netlist.ProtNone)
	return b
}

// arrayFIT totals structure contributions for one protection class.
func arrayFIT(res *core.Result, structBits map[string]int, p FITParams, class netlist.Protection) float64 {
	// Fixed summation order (sorted names) keeps results reproducible to
	// the last bit.
	names := make([]string, 0, len(structBits))
	for s := range structBits {
		names = append(names, s)
	}
	sort.Strings(names)
	var fit float64
	structs := res.Analyzer.G.Design.Structures
	for _, s := range names {
		prot := netlist.ProtNone
		if st, ok := structs[s]; ok {
			prot = st.Prot
		}
		if prot != class {
			continue
		}
		avf := res.Inputs.StructAVF[s]
		fit += avf * float64(structBits[s]) * p.IntrinsicArray
	}
	return fit
}

// BeamConfig parameterizes the accelerated-SER measurement.
type BeamConfig struct {
	// AccelHours is the product of flux acceleration and exposure time,
	// in units such that expected errors = FIT(AU) x AccelHours.
	AccelHours float64
	Seed       uint64
}

// DefaultBeamConfig targets a few hundred observed errors for a design
// FIT of a few thousand AU.
func DefaultBeamConfig(seed uint64) BeamConfig {
	return BeamConfig{AccelHours: 0.05, Seed: seed}
}

// Measurement is one simulated beam run.
type Measurement struct {
	Errors int
	// FIT is the measured rate with its 95% counting-statistics interval
	// (arbitrary units).
	FIT stats.Interval
}

// BeamTest simulates an accelerated run against the ground-truth FIT.
func BeamTest(trueFIT float64, cfg BeamConfig) (Measurement, error) {
	if cfg.AccelHours <= 0 {
		return Measurement{}, fmt.Errorf("ser: AccelHours must be positive")
	}
	rng := stats.New(cfg.Seed)
	lambda := trueFIT * cfg.AccelHours
	k := rng.Poisson(lambda)
	return Measurement{
		Errors: k,
		FIT:    stats.PoissonCI(k, cfg.AccelHours),
	}, nil
}

// Correlation quantifies model-to-measurement agreement for one workload.
type Correlation struct {
	Workload string
	// Measured is the beam measurement (AU).
	Measured Measurement
	// PreFIT / PostFIT are the modeled totals before (structure-AVF
	// proxy) and after (SART sequential AVFs) this work.
	PreFIT  float64
	PostFIT float64
}

// PreError returns the relative model error of the proxy model:
// (pre - measured)/measured.
func (c Correlation) PreError() float64 {
	return (c.PreFIT - c.Measured.FIT.Point) / c.Measured.FIT.Point
}

// PostError returns the relative model error after sequential AVFs.
func (c Correlation) PostError() float64 {
	return (c.PostFIT - c.Measured.FIT.Point) / c.Measured.FIT.Point
}

// Improvement is the fractional reduction in absolute model error
// achieved by the sequential AVFs — the paper's "~66% improvement".
func (c Correlation) Improvement() float64 {
	pre := math.Abs(c.PreFIT - c.Measured.FIT.Point)
	post := math.Abs(c.PostFIT - c.Measured.FIT.Point)
	if pre == 0 {
		return 0
	}
	return (pre - post) / pre
}

// WithinMeasurement reports whether the post model falls inside the
// measurement's statistical interval (the paper's success criterion).
func (c Correlation) WithinMeasurement() bool {
	return c.Measured.FIT.Contains(c.PostFIT)
}

// SeqAVFReduction returns the fractional reduction of the average
// sequential AVF relative to the proxy value (the paper reports the new
// sequential AVFs were ~63% lower than the structure-AVF proxy).
func SeqAVFReduction(proxyAVF, seqAVF float64) float64 {
	if proxyAVF == 0 {
		return 0
	}
	return (proxyAVF - seqAVF) / proxyAVF
}
