// Package tinycore is the gate-level ("RTL") implementation of the shared
// ISA, hand-built as a netlist. It is the design on which the brute-force
// statistical fault injection baseline runs, and the design SART's
// estimates are validated against: the ACE performance model
// (internal/uarch) measures port AVFs for the same machine.
//
// The core is a multicycle machine with a three-state FSM:
//
//	F (0): IR <- imem[PC]
//	D (1): A <- rf[ra], B <- rf[rb], IMMR/UIMR <- decoded immediates
//	X (2): execute, memory access, register writeback, PC update, OUT
//
// Retention registers (IR, A, B, ...) recirculate through explicit muxes,
// so the extracted node graph contains the feedback loops §4.3 of the
// paper is about: SART treats those bits as loop-boundary nodes.
package tinycore

import (
	"fmt"

	"seqavf/internal/isa"
	"seqavf/internal/netlist"
	"seqavf/internal/rtlsim"
)

// Structure names used in the netlist (bound to ACE measurements by
// BindInputs).
const (
	StructIMem    = "IMem"
	StructRegFile = "RegFile"
	StructDMem    = "DMem"
)

// FubName is the single functional block of the core.
const FubName = "CORE"

// BuildDesign constructs the netlist for a core whose instruction memory
// holds codeLen words. The program contents live in the behavioral IMem
// model, not in the netlist, so one design serves every program of equal
// or smaller length.
func BuildDesign(codeLen int) *netlist.Design {
	d := netlist.NewDesign("tinycore")
	d.AddStructure(StructIMem, codeLen, 32)
	d.AddStructure(StructRegFile, 16, 32)
	d.AddStructure(StructDMem, 4096, 32)

	m := d.AddModule("core")
	b := netlist.Build(m)

	// Constants.
	c0 := b.Const("c0_2", 2, 0)
	c1 := b.Const("c1_2", 2, 1)
	c2 := b.Const("c2_2", 2, 2)
	one32 := b.Const("one32", 32, 1)
	zero20 := b.Const("zero20", 20, 0)
	ones20 := b.Const("ones20", 20, 0xFFFFF)
	c31 := b.Const("c31", 32, 31)
	opConst := func(op isa.Op) string {
		return b.Const(fmt.Sprintf("c_op_%s", op), 8, uint64(op))
	}

	// FSM state: F -> D -> X -> F.
	b.M.Add(&netlist.Node{Name: "state", Kind: netlist.KindSeq, Width: 2, Inputs: []string{"state_next"}})
	stF := b.C("stF", 1, netlist.OpEq, "state", c0)
	stD := b.C("stD", 1, netlist.OpEq, "state", c1)
	stX := b.C("stX", 1, netlist.OpEq, "state", c2)
	// state_next = stF ? 1 : (stD ? 2 : 0)
	b.Mux("state_nD", 2, stD, c0, c2)
	b.Mux("state_next", 2, stF, "state_nD", c1)

	// Program counter (feedback loop).
	b.M.Add(&netlist.Node{Name: "pc", Kind: netlist.KindSeq, Width: 32, Inputs: []string{"pc_next"}})

	// Fetch: IR latches in F.
	fetched := b.SRead("imem_rd", 32, StructIMem, "fetch", "pc")
	b.Mux("ir_next", 32, stF, "ir", fetched)
	b.M.Add(&netlist.Node{Name: "ir", Kind: netlist.KindSeq, Width: 32, Inputs: []string{"ir_next"}})

	// Decode fields.
	op := b.Select("f_op", 8, "ir", 24)
	rd := b.Select("f_rd", 4, "ir", 20)
	ra := b.Select("f_ra", 4, "ir", 16)
	rb := b.Select("f_rb", 4, "ir", 12)
	imm12 := b.Select("f_imm", 12, "ir", 0)
	sign := b.Select("f_sign", 1, "ir", 11)
	b.Mux("immHi", 20, sign, zero20, ones20)
	immS := b.C("immS", 32, netlist.OpConcat, imm12, "immHi")
	immZ := b.C("immZ", 32, netlist.OpConcat, imm12, zero20)

	// Per-opcode decode strobes.
	is := make(map[isa.Op]string)
	for _, o := range []isa.Op{
		isa.NOP, isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL,
		isa.SHR, isa.MUL, isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.LUI,
		isa.LD, isa.ST, isa.BEQ, isa.BNE, isa.JMP, isa.OUT, isa.HLT,
	} {
		is[o] = b.C(fmt.Sprintf("is_%s", o), 1, netlist.OpEq, op, opConst(o))
	}

	// Register file reads (combinational against current state; operands
	// latch at the end of D).
	rfa := b.SRead("rf_a", 32, StructRegFile, "rd0", ra)
	rfb := b.SRead("rf_b", 32, StructRegFile, "rd1", rb)
	b.Mux("a_next", 32, stD, "opA", rfa)
	b.Mux("b_next", 32, stD, "opB", rfb)
	b.M.Add(&netlist.Node{Name: "opA", Kind: netlist.KindSeq, Width: 32, Inputs: []string{"a_next"}})
	b.M.Add(&netlist.Node{Name: "opB", Kind: netlist.KindSeq, Width: 32, Inputs: []string{"b_next"}})
	b.Mux("imm_next", 32, stD, "immR", immS)
	b.M.Add(&netlist.Node{Name: "immR", Kind: netlist.KindSeq, Width: 32, Inputs: []string{"imm_next"}})
	b.Mux("uimm_next", 32, stD, "uimmR", immZ)
	b.M.Add(&netlist.Node{Name: "uimmR", Kind: netlist.KindSeq, Width: 32, Inputs: []string{"uimm_next"}})

	// Halted flag (sticky).
	b.C("halt_now", 1, netlist.OpAnd, stX, is[isa.HLT])
	b.C("halted_next", 1, netlist.OpOr, "halted", "halt_now")
	b.M.Add(&netlist.Node{Name: "halted", Kind: netlist.KindSeq, Width: 1, Inputs: []string{"halted_next"}})
	b.C("running", 1, netlist.OpNot, "halted")
	xLive := b.C("x_live", 1, netlist.OpAnd, stX, "running")

	// ALU.
	amt := b.C("sh_amt", 32, netlist.OpAnd, "opB", c31)
	b.C("alu_add", 32, netlist.OpAdd, "opA", "opB")
	b.C("alu_sub", 32, netlist.OpSub, "opA", "opB")
	b.C("alu_and", 32, netlist.OpAnd, "opA", "opB")
	b.C("alu_or", 32, netlist.OpOr, "opA", "opB")
	b.C("alu_xor", 32, netlist.OpXor, "opA", "opB")
	b.C("alu_shl", 32, netlist.OpShl, "opA", amt)
	b.C("alu_shr", 32, netlist.OpShr, "opA", amt)
	b.C("alu_mul", 32, netlist.OpMul, "opA", "opB")
	b.C("alu_addi", 32, netlist.OpAdd, "opA", "immR")
	b.C("alu_andi", 32, netlist.OpAnd, "opA", "uimmR")
	b.C("alu_ori", 32, netlist.OpOr, "opA", "uimmR")
	b.C("alu_xori", 32, netlist.OpXor, "opA", "uimmR")
	b.CP("alu_lui", 32, netlist.OpShlK, 12, "uimmR")

	// Memory.
	ea := b.C("mem_ea", 32, netlist.OpAdd, "opA", "immR")
	ldval := b.SRead("dmem_rd", 32, StructDMem, "ld", ea)
	b.C("st_en", 1, netlist.OpAnd, xLive, is[isa.ST])
	b.SWrite("dmem_wr", StructDMem, "st", "opB", ea, "st_en")

	// Writeback value mux tree.
	wb := "alu_add"
	for _, sel := range []struct {
		op  isa.Op
		val string
	}{
		{isa.SUB, "alu_sub"}, {isa.AND, "alu_and"}, {isa.OR, "alu_or"},
		{isa.XOR, "alu_xor"}, {isa.SHL, "alu_shl"}, {isa.SHR, "alu_shr"},
		{isa.MUL, "alu_mul"}, {isa.ADDI, "alu_addi"}, {isa.ANDI, "alu_andi"},
		{isa.ORI, "alu_ori"}, {isa.XORI, "alu_xori"}, {isa.LUI, "alu_lui"},
		{isa.LD, ldval},
	} {
		wb = b.Mux(fmt.Sprintf("wb_%s", sel.op), 32, is[sel.op], wb, sel.val)
	}

	// Writeback enable: X state, opcode writes a register, rd != 0.
	writes := is[isa.ADD]
	for _, o := range []isa.Op{
		isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.MUL,
		isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.LUI, isa.LD,
	} {
		writes = b.C(fmt.Sprintf("wr_or_%s", o), 1, netlist.OpOr, writes, is[o])
	}
	rdnz := b.C("rd_nz", 1, netlist.OpRedOr, rd)
	b.C("wb_en0", 1, netlist.OpAnd, xLive, writes)
	wbEn := b.C("wb_en", 1, netlist.OpAnd, "wb_en0", rdnz)
	b.SWrite("rf_wr", StructRegFile, "wr0", wb, rd, wbEn)

	// Branch resolution and PC update.
	aeqb := b.C("a_eq_b", 1, netlist.OpEq, "opA", "opB")
	aneb := b.C("a_ne_b", 1, netlist.OpNot, aeqb)
	b.C("tk_beq", 1, netlist.OpAnd, is[isa.BEQ], aeqb)
	b.C("tk_bne", 1, netlist.OpAnd, is[isa.BNE], aneb)
	b.C("tk_or", 1, netlist.OpOr, "tk_beq", "tk_bne")
	taken := b.C("taken", 1, netlist.OpOr, "tk_or", is[isa.JMP])
	pc1 := b.C("pc_plus1", 32, netlist.OpAdd, "pc", one32)
	tgt := b.C("br_tgt", 32, netlist.OpAdd, pc1, "immR")
	b.Mux("pc_x0", 32, taken, pc1, tgt)
	// HLT (or halted) holds the PC.
	b.C("pc_hold", 1, netlist.OpOr, is[isa.HLT], "halted")
	b.Mux("pc_x", 32, "pc_hold", "pc_x0", "pc")
	b.Mux("pc_next", 32, stX, "pc", "pc_x")

	// Observation port: OUT emits A during X.
	outValid := b.C("out_valid_c", 1, netlist.OpAnd, xLive, is[isa.OUT])
	b.Out("out_valid", 1, outValid)
	b.Out("out_data", 32, "opA")
	b.Out("halted_o", 1, "halted")

	d.AddFub(FubName, "core")
	return d
}

// Machine is a runnable tinycore instance: netlist simulator plus the
// behavioral structure models loaded with a program.
type Machine struct {
	Sim  *rtlsim.Sim
	prog *isa.Program
}

// New builds, flattens and instantiates a machine for p.
func New(p *isa.Program) (*Machine, error) {
	d := BuildDesign(len(p.Code))
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("tinycore: %w", err)
	}
	fd, err := netlist.Flatten(d)
	if err != nil {
		return nil, fmt.Errorf("tinycore: %w", err)
	}
	words := make([]uint64, len(p.Code))
	for i, in := range p.Code {
		words[i] = uint64(in.Encode())
	}
	dmem := rtlsim.NewSparseMem(32)
	for a, v := range p.Data {
		dmem.Init(uint64(a), uint64(v))
	}
	sim, err := rtlsim.New(fd, map[string]rtlsim.StructSim{
		StructIMem:    rtlsim.NewROM(words),
		StructRegFile: rtlsim.NewRegArray(16, 32, true),
		StructDMem:    dmem,
	})
	if err != nil {
		return nil, fmt.Errorf("tinycore: %w", err)
	}
	return &Machine{Sim: sim, prog: p}, nil
}

// FlatDesign rebuilds the flattened netlist (for SART analysis of the
// same design the machine simulates).
func FlatDesign(codeLen int) (*netlist.FlatDesign, error) {
	d := BuildDesign(codeLen)
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return netlist.Flatten(d)
}

// Step advances one clock.
func (m *Machine) Step() { m.Sim.Step() }

// Out samples the observation port for the current (settled) cycle.
func (m *Machine) Out() (uint64, bool) {
	v, _ := m.Sim.Value(FubName, "out_valid")
	if v&1 == 0 {
		return 0, false
	}
	data, _ := m.Sim.Value(FubName, "out_data")
	return data, true
}

// Halted reports whether the core has executed HLT.
func (m *Machine) Halted() bool {
	v, _ := m.Sim.Value(FubName, "halted_o")
	return v&1 == 1
}

// Clone deep-copies the machine.
func (m *Machine) Clone() *Machine {
	return &Machine{Sim: m.Sim.Clone(), prog: m.prog}
}

// Run executes up to maxCycles, collecting the output stream.
func (m *Machine) Run(maxCycles int) (out []uint32, halted bool) {
	for c := 0; c < maxCycles; c++ {
		if v, ok := m.Out(); ok {
			out = append(out, uint32(v))
		}
		if m.Halted() {
			return out, true
		}
		m.Step()
	}
	return out, m.Halted()
}
