package tinycore

import (
	"fmt"

	"seqavf/internal/ace"
	"seqavf/internal/core"
	"seqavf/internal/uarch"
)

// BindInputs maps an ACE report measured on the performance model
// (internal/uarch) onto tinycore's structure ports — step 4 of the
// paper's tool flow ("Map ACE structure bits to RTL bit names").
//
// The binding is conservative in rate: the performance model retires
// roughly one instruction per cycle while tinycore takes three, so the
// per-cycle ACE rates applied to the netlist are upper bounds on the
// netlist's own traffic.
func BindInputs(rep *ace.Report) (*core.Inputs, error) {
	in := core.NewInputs()
	bindR := func(dst core.StructPort, srcKey string) error {
		v, ok := rep.ReadPorts[srcKey]
		if !ok {
			return fmt.Errorf("tinycore: report lacks read port %s", srcKey)
		}
		in.ReadPorts[dst] = v
		return nil
	}
	bindW := func(dst core.StructPort, srcKey string) error {
		v, ok := rep.WritePorts[srcKey]
		if !ok {
			return fmt.Errorf("tinycore: report lacks write port %s", srcKey)
		}
		in.WritePorts[dst] = v
		return nil
	}
	for _, b := range []struct {
		dst core.StructPort
		src string
		rd  bool
	}{
		{core.StructPort{Struct: StructRegFile, Port: "rd0"}, uarch.StructRegFile + ".rd0", true},
		{core.StructPort{Struct: StructRegFile, Port: "rd1"}, uarch.StructRegFile + ".rd1", true},
		{core.StructPort{Struct: StructRegFile, Port: "wr0"}, uarch.StructRegFile + ".wr0", false},
		// The instruction memory read port carries one fetch per
		// instruction: the fetch-queue drain rate.
		{core.StructPort{Struct: StructIMem, Port: "fetch"}, uarch.StructFetchQ + ".drain", true},
		{core.StructPort{Struct: StructDMem, Port: "ld"}, uarch.StructDCache + ".ld", true},
		{core.StructPort{Struct: StructDMem, Port: "st"}, uarch.StructDCache + ".st", false},
	} {
		var err error
		if b.rd {
			err = bindR(b.dst, b.src)
		} else {
			err = bindW(b.dst, b.src)
		}
		if err != nil {
			return nil, err
		}
	}
	in.StructAVF[StructRegFile] = rep.StructAVF[uarch.StructRegFile]
	in.StructAVF[StructIMem] = rep.StructAVF[uarch.StructFetchQ]
	in.StructAVF[StructDMem] = rep.StructAVF[uarch.StructDCache]
	return in, nil
}

// BindIntervals maps a windowed ACE report onto tinycore's ports, one
// inputs table per time window (index-aligned with rep.Windows). Each
// window binds exactly like BindInputs binds a whole run — the windowed
// reports carry the same structures and ports, so a missing port fails
// the same way.
func BindIntervals(rep *ace.IntervalReport) ([]*core.Inputs, error) {
	if rep == nil || len(rep.Windows) == 0 {
		return nil, fmt.Errorf("tinycore: no interval windows to bind")
	}
	out := make([]*core.Inputs, len(rep.Windows))
	for i, w := range rep.Windows {
		in, err := BindInputs(w.Report)
		if err != nil {
			return nil, fmt.Errorf("tinycore: window %d [%d,%d): %w", w.Index, w.Start, w.End, err)
		}
		out[i] = in
	}
	return out, nil
}
