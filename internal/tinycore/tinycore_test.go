package tinycore

import (
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/isa"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

// runBoth executes p on the architectural reference and on the netlist
// core and requires identical output streams.
func runBoth(t *testing.T, p *isa.Program) {
	t.Helper()
	arch, err := isa.Exec(p, 0)
	if err != nil {
		t.Fatalf("%s: arch: %v", p.Name, err)
	}
	m, err := New(p)
	if err != nil {
		t.Fatalf("%s: tinycore: %v", p.Name, err)
	}
	budget := 3*len(arch.Trace) + 64
	out, halted := m.Run(budget)
	if halted != arch.Halted {
		t.Fatalf("%s: halted = %v, arch %v (out %v vs %v)", p.Name, halted, arch.Halted, out, arch.Out)
	}
	if len(out) != len(arch.Out) {
		t.Fatalf("%s: out lengths %d vs %d\n got %v\nwant %v", p.Name, len(out), len(arch.Out), out, arch.Out)
	}
	for i := range out {
		if out[i] != arch.Out[i] {
			t.Fatalf("%s: out[%d] = %#x, want %#x", p.Name, i, out[i], arch.Out[i])
		}
	}
}

func TestCoreALU(t *testing.T) {
	b := isa.NewBuilder("alu")
	b.Imm(isa.ADDI, 1, 0, 100)
	b.Imm(isa.ADDI, 2, 0, 7)
	b.R(isa.ADD, 3, 1, 2)
	b.R(isa.SUB, 4, 1, 2)
	b.R(isa.AND, 5, 1, 2)
	b.R(isa.OR, 6, 1, 2)
	b.R(isa.XOR, 7, 1, 2)
	b.R(isa.MUL, 8, 1, 2)
	b.Imm(isa.ADDI, 9, 0, 2)
	b.R(isa.SHL, 10, 1, 9)
	b.R(isa.SHR, 11, 1, 9)
	b.Imm(isa.ANDI, 12, 1, 0x6C)
	b.Imm(isa.ORI, 13, 1, 0x803) // zero-extended logical immediate
	b.Imm(isa.XORI, 14, 1, 0xFFF)
	b.Imm(isa.LUI, 15, 0, 0xABC)
	for r := uint8(3); r <= 15; r++ {
		b.Out(r)
	}
	b.Halt()
	runBoth(t, b.MustBuild())
}

func TestCoreNegativeImmediates(t *testing.T) {
	b := isa.NewBuilder("neg")
	b.Imm(isa.ADDI, 1, 0, -5)
	b.Imm(isa.ADDI, 2, 1, -100)
	b.R(isa.SUB, 3, 0, 1) // 0 - (-5) = 5
	b.Out(1)
	b.Out(2)
	b.Out(3)
	b.Halt()
	runBoth(t, b.MustBuild())
}

func TestCoreMemory(t *testing.T) {
	b := isa.NewBuilder("mem")
	b.SetData(10, 1234)
	b.I(isa.LD, 1, 0, 0, 10)
	b.Imm(isa.ADDI, 2, 0, 5)
	b.I(isa.ST, 0, 2, 1, 20) // mem[25] = r1
	b.I(isa.LD, 3, 2, 0, 20)
	b.Out(1)
	b.Out(3)
	b.Halt()
	runBoth(t, b.MustBuild())
}

func TestCoreBranches(t *testing.T) {
	b := isa.NewBuilder("br")
	b.Imm(isa.ADDI, 1, 0, 0)
	b.Imm(isa.ADDI, 2, 0, 10)
	b.Label("loop")
	b.Imm(isa.ADDI, 1, 1, 1)
	b.Branch(isa.BNE, 1, 2, "loop")
	b.Out(1)
	b.Branch(isa.BEQ, 1, 2, "skip")
	b.Out(2) // must be skipped
	b.Label("skip")
	b.Jump("end")
	b.Out(2) // must be skipped
	b.Label("end")
	b.Out(1)
	b.Halt()
	runBoth(t, b.MustBuild())
}

func TestCoreR0Writes(t *testing.T) {
	b := isa.NewBuilder("r0w")
	b.Imm(isa.ADDI, 0, 0, 77) // discarded
	b.Out(0)
	b.Imm(isa.ADDI, 1, 0, 3)
	b.R(isa.ADD, 0, 1, 1) // discarded
	b.Out(0)
	b.Halt()
	runBoth(t, b.MustBuild())
}

func TestCoreRunsWorkloads(t *testing.T) {
	progs := []*isa.Program{
		workload.Lattice(5),
		workload.MD5Like(20),
	}
	progs = append(progs, workload.Suite(3, 17)...)
	for _, p := range progs {
		runBoth(t, p)
	}
}

func TestCoreCyclesPerInstruction(t *testing.T) {
	p := isa.NewBuilder("cpi").
		Imm(isa.ADDI, 1, 0, 1).
		Imm(isa.ADDI, 2, 0, 2).
		Out(1).
		Halt().MustBuild()
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	_, halted := m.Run(1000)
	if !halted {
		t.Fatal("did not halt")
	}
	// 4 instructions x 3 states each, plus the halt flag edge.
	if c := m.Sim.Cycle(); c < 12 || c > 16 {
		t.Fatalf("cycle count = %d, want ~12", c)
	}
}

func TestCoreDesignIsAnalyzable(t *testing.T) {
	fd, err := FlatDesign(32)
	if err != nil {
		t.Fatal(err)
	}
	if fd.NumNodes() < 50 {
		t.Fatalf("suspiciously small design: %d nodes", fd.NumNodes())
	}
	seq := 0
	for _, f := range fd.Fubs {
		for _, n := range f.Nodes {
			if n.Kind.String() == "seq" {
				seq += n.Width
			}
		}
	}
	// PC(32) + IR(32) + state(2) + A/B/IMMR/UIMR(128) + halted(1).
	if seq != 195 {
		t.Fatalf("sequential bits = %d, want 195", seq)
	}
}

func TestMachineClone(t *testing.T) {
	p := workload.MD5Like(5)
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.Step()
	}
	c := m.Clone()
	if c.Sim.Hash() != m.Sim.Hash() {
		t.Fatal("clone hash differs")
	}
	m.Step()
	if c.Sim.Cycle() == m.Sim.Cycle() {
		t.Fatal("clone shares cycle state")
	}
}

// TestCoreFuzzRandomPrograms cross-validates the netlist core against the
// architectural reference over a population of generated programs with
// varied instruction mixes — the reproduction's RTL-vs-spec regression.
func TestCoreFuzzRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz population skipped in -short")
	}
	for seed := uint64(100); seed < 120; seed++ {
		cfg := workload.DefaultSynth("fuzz", seed)
		cfg.Iterations = 8
		cfg.BodyLen = 10
		cfg.MemFrac = float64(seed%5) * 0.2
		cfg.SkipFrac = float64(seed%3) * 0.08
		cfg.DeadFrac = float64(seed%4) * 0.1
		runBoth(t, workload.Synthetic(cfg))
	}
}

// TestCoreServerKernels runs the pointer-chase and transaction kernels on
// the netlist.
func TestCoreServerKernels(t *testing.T) {
	runBoth(t, workload.PointerChase(8, 2))
	runBoth(t, workload.TransactionMix(8, 10))
}

func TestBindInputsRejectsIncompleteReport(t *testing.T) {
	perf, err := uarch.Run(workload.MD5Like(10), uarch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	delete(perf.Report.ReadPorts, "RegFile.rd0")
	if _, err := BindInputs(perf.Report); err == nil {
		t.Fatal("incomplete report accepted")
	}
	perf2, _ := uarch.Run(workload.MD5Like(10), uarch.DefaultConfig())
	in, err := BindInputs(perf2.Report)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range []string{"rd0", "rd1"} {
		if _, ok := in.ReadPorts[core.StructPort{Struct: StructRegFile, Port: sp}]; !ok {
			t.Fatalf("missing bound port %s", sp)
		}
	}
	if in.StructAVF[StructRegFile] == 0 {
		t.Fatal("struct AVF not bound")
	}
}
