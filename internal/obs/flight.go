package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// RequestRecord is one flight-recorder entry: the after-the-fact answer
// to "why was that sweep slow?". It carries the request's trace ID (so
// the record joins logs and JSONL span streams), what was swept, how
// long each pipeline stage took, and how the plan was obtained.
type RequestRecord struct {
	// Time is when the request finished.
	Time time.Time `json:"time"`
	// TraceID links the record to the request's span tree ("" untraced).
	TraceID string `json:"trace_id,omitempty"`
	// Endpoint is the served route ("/v1/sweep", "/v1/designs").
	Endpoint string `json:"endpoint"`
	// Design and Fingerprint identify the swept design.
	Design      string `json:"design,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Workloads is the number of workloads in the request.
	Workloads int `json:"workloads,omitempty"`
	// Per-stage durations: ingest (decode + table validation), plan
	// (cache/store/compile, including any artifact restore), eval (the
	// kernel).
	IngestSeconds float64 `json:"ingest_seconds"`
	PlanSeconds   float64 `json:"plan_seconds"`
	EvalSeconds   float64 `json:"eval_seconds"`
	// PlanSource tells how the plan/result was obtained: "cache",
	// "store", or "compile" for sweeps; "warm" or "cold" for uploads.
	PlanSource string `json:"plan_source,omitempty"`
	// Status and Outcome report the HTTP result ("ok" or the error).
	Status  int    `json:"status"`
	Outcome string `json:"outcome"`
	// DurationSeconds is the whole request, wall clock.
	DurationSeconds float64 `json:"duration_seconds"`
}

// FlightRecorder keeps the last K request records in a fixed-size ring.
// Recording copies one struct into a preallocated slot under a mutex —
// no allocation on the hot path, and the critical section is a memcpy,
// so 64 concurrent request goroutines do not convoy behind a reader.
// All methods are safe on nil (a no-op recorder).
type FlightRecorder struct {
	mu   sync.Mutex
	recs []RequestRecord
	next int // slot for the next record
	n    int // slots filled (saturates at len(recs))
}

// NewFlightRecorder returns a recorder retaining the last k records
// (k <= 0 uses 128).
func NewFlightRecorder(k int) *FlightRecorder {
	if k <= 0 {
		k = 128
	}
	return &FlightRecorder{recs: make([]RequestRecord, k)}
}

// Record stores one request record, evicting the oldest beyond
// capacity. Safe on nil.
func (f *FlightRecorder) Record(rec RequestRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.recs[f.next] = rec
	f.next = (f.next + 1) % len(f.recs)
	if f.n < len(f.recs) {
		f.n++
	}
	f.mu.Unlock()
}

// Len reports the number of records currently retained.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Snapshot returns the retained records, newest first.
func (f *FlightRecorder) Snapshot() []RequestRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]RequestRecord, f.n)
	for i := 0; i < f.n; i++ {
		// next-1 is the newest slot; walk backwards.
		out[i] = f.recs[((f.next-1-i)%len(f.recs)+len(f.recs))%len(f.recs)]
	}
	return out
}

// Handler serves the ring as a JSON array (newest first) — the
// /debug/requests endpoint. Safe on nil (serves []).
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		recs := f.Snapshot()
		if recs == nil {
			recs = []RequestRecord{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(recs)
	})
}
