package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4)
	if f.Len() != 0 {
		t.Fatalf("fresh Len = %d", f.Len())
	}
	for i := 0; i < 6; i++ {
		f.Record(RequestRecord{Endpoint: "/v1/sweep", Outcome: fmt.Sprintf("r%d", i)})
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d after wrap, want 4", f.Len())
	}
	snap := f.Snapshot()
	// Newest first: r5, r4, r3, r2 — r0/r1 evicted.
	want := []string{"r5", "r4", "r3", "r2"}
	for i, rec := range snap {
		if rec.Outcome != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q (full: %+v)", i, rec.Outcome, want[i], snap)
		}
	}
}

func TestFlightRecorderDefaults(t *testing.T) {
	f := NewFlightRecorder(0)
	for i := 0; i < 200; i++ {
		f.Record(RequestRecord{})
	}
	if f.Len() != 128 {
		t.Fatalf("default capacity = %d, want 128", f.Len())
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(RequestRecord{})
	if f.Len() != 0 || f.Snapshot() != nil {
		t.Fatal("nil recorder misbehaved")
	}
	resp := httptest.NewRecorder()
	f.Handler().ServeHTTP(resp, httptest.NewRequest("GET", "/debug/requests", nil))
	var recs []RequestRecord
	if err := json.Unmarshal(resp.Body.Bytes(), &recs); err != nil || len(recs) != 0 {
		t.Fatalf("nil handler body %q (err %v)", resp.Body.String(), err)
	}
}

func TestFlightRecorderHandler(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(RequestRecord{Endpoint: "/v1/sweep", TraceID: "abc", Status: 200, Outcome: "ok", Workloads: 3})
	resp := httptest.NewRecorder()
	f.Handler().ServeHTTP(resp, httptest.NewRequest("GET", "/debug/requests", nil))
	if resp.Code != 200 || resp.Header().Get("Content-Type") != "application/json; charset=utf-8" {
		t.Fatalf("GET: %d %q", resp.Code, resp.Header().Get("Content-Type"))
	}
	var recs []RequestRecord
	if err := json.Unmarshal(resp.Body.Bytes(), &recs); err != nil {
		t.Fatalf("body %q: %v", resp.Body.String(), err)
	}
	if len(recs) != 1 || recs[0].TraceID != "abc" || recs[0].Workloads != 3 {
		t.Fatalf("records = %+v", recs)
	}
	resp = httptest.NewRecorder()
	f.Handler().ServeHTTP(resp, httptest.NewRequest("DELETE", "/debug/requests", nil))
	if resp.Code != 405 {
		t.Fatalf("DELETE: %d, want 405", resp.Code)
	}
}

// TestFlightRecorderConcurrent hammers Record/Snapshot together; under
// -race this proves the ring is data-race free.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record(RequestRecord{Status: w})
				if i%50 == 0 {
					f.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if f.Len() != 16 {
		t.Fatalf("Len = %d, want 16", f.Len())
	}
}
