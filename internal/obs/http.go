package obs

import "net/http"

// MetricsHandler serves the registry's JSON snapshot — counters, gauges,
// histograms, span trees, and the run manifest — as one document per GET.
// It is the /metrics endpoint of long-running processes (seqavfd); batch
// CLIs keep using WriteFile via the -metrics flag. Safe on a nil
// registry, which serves the empty snapshot.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if req.Method == http.MethodHead {
			return
		}
		if err := r.WriteJSON(w); err != nil {
			// Headers are already out; nothing useful left to send.
			return
		}
	})
}
