package obs

import (
	"encoding/json"
	"net/http"
)

// MetricsHandler serves the registry's JSON snapshot — counters, gauges,
// histograms, span trees, and the run manifest — as one document per GET.
// It is the /metrics.json endpoint of long-running processes (seqavfd);
// batch CLIs keep using WriteFile via the -metrics flag, and Prometheus
// scrapers use PromHandler. Safe on a nil registry, which serves the
// empty snapshot.
//
// The response is materialized from one consistent Snapshot (a single
// registry read pass — see Registry.Snapshot) rather than by reading
// metric families piecemeal while writers are active, and carries an
// explicit charset so proxies do not have to sniff.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		snap := r.Snapshot()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Headers are already out on error; nothing useful left to send.
		_ = enc.Encode(snap)
	})
}
