package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// under -race this also proves the increment path is data-race free.
func TestCounterConcurrent(t *testing.T) {
	reg := New()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("shared")
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
			reg.Gauge("last").Set(float64(perWorker))
			reg.Histogram("obs").Observe(1.5)
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("last").Load(); got != perWorker {
		t.Fatalf("gauge = %v, want %v", got, float64(perWorker))
	}
	if got := reg.Histogram("obs").Count(); got != workers {
		t.Fatalf("histogram count = %d, want %d", got, workers)
	}
}

func TestSpanNesting(t *testing.T) {
	reg := New()
	root := reg.StartSpan("solve")
	env := root.Child("env")
	env.End()
	fwd := root.Child("fwd")
	inner := fwd.Child("walk")
	if got := inner.Path(); got != "solve/fwd/walk" {
		t.Fatalf("Path = %q", got)
	}
	if got := inner.Depth(); got != 2 {
		t.Fatalf("Depth = %d", got)
	}
	inner.End()
	fwd.SetAttr("vertices", 42)
	fwd.End()
	root.End()
	root.End() // idempotent

	if root.Running() {
		t.Fatal("root still running after End")
	}
	snap := reg.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("roots = %d, want 1", len(snap.Spans))
	}
	r := snap.Spans[0]
	if r.Name != "solve" || len(r.Children) != 2 {
		t.Fatalf("root = %q with %d children", r.Name, len(r.Children))
	}
	if r.Children[0].Name != "env" || r.Children[1].Name != "fwd" {
		t.Fatalf("children = %v, %v", r.Children[0].Name, r.Children[1].Name)
	}
	if len(r.Children[1].Children) != 1 || r.Children[1].Children[0].Name != "walk" {
		t.Fatalf("grandchildren malformed: %+v", r.Children[1].Children)
	}
	if r.DurationMS < 0 {
		t.Fatalf("negative duration %v", r.DurationMS)
	}
	if v, ok := r.Children[1].Attrs["vertices"]; !ok || v != 42 {
		t.Fatalf("fwd attrs = %v", r.Children[1].Attrs)
	}
}

// TestSpanDurationOrdering checks a parent's duration covers its child's.
func TestSpanDurationOrdering(t *testing.T) {
	reg := New()
	root := reg.StartSpan("outer")
	child := root.Child("inner")
	time.Sleep(2 * time.Millisecond)
	child.End()
	root.End()
	if root.Duration() < child.Duration() {
		t.Fatalf("parent %v shorter than child %v", root.Duration(), child.Duration())
	}
	if child.Duration() < 2*time.Millisecond {
		t.Fatalf("child duration %v < slept 2ms", child.Duration())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := New()
	reg.SetManifest("workload", "md5")
	reg.SetManifest("seed", 42.0)
	reg.Counter("core.union_ops").Add(123)
	reg.Gauge("core.max_delta").Set(0.25)
	reg.Histogram("core.iter_delta").Observe(0.5)
	reg.Histogram("core.iter_delta").Observe(2.0)
	sp := reg.StartSpan("solve")
	sp.SetAttr("converged", true)
	sp.Child("fwd").End()
	sp.End()

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Manifest["workload"] != "md5" || got.Manifest["seed"] != 42.0 {
		t.Fatalf("manifest = %v", got.Manifest)
	}
	if got.Counters["core.union_ops"] != 123 {
		t.Fatalf("counters = %v", got.Counters)
	}
	if got.Gauges["core.max_delta"] != 0.25 {
		t.Fatalf("gauges = %v", got.Gauges)
	}
	h := got.Histograms["core.iter_delta"]
	if h.Count != 2 || h.Sum != 2.5 || h.Min != 0.5 || h.Max != 2.0 || h.Mean != 1.25 {
		t.Fatalf("histogram = %+v", h)
	}
	// 0.5 lands in bucket (0.25, 0.5] => exponent -1; 2.0 in (1, 2] => 1.
	if h.Buckets["-1"] != 1 || h.Buckets["1"] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if len(got.Spans) != 1 || got.Spans[0].Name != "solve" {
		t.Fatalf("spans = %+v", got.Spans)
	}
	if got.Spans[0].Attrs["converged"] != true {
		t.Fatalf("span attrs = %v", got.Spans[0].Attrs)
	}
	if len(got.Spans[0].Children) != 1 || got.Spans[0].Children[0].Name != "fwd" {
		t.Fatalf("span children = %+v", got.Spans[0].Children)
	}
}

// TestNilSafety exercises every entry point through a nil registry — the
// always-off path instrumented code relies on.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("c").Add(1)
	reg.Counter("c").Inc()
	if reg.Counter("c").Load() != 0 {
		t.Fatal("nil counter loaded non-zero")
	}
	reg.Gauge("g").Set(1)
	if reg.Gauge("g").Load() != 0 {
		t.Fatal("nil gauge loaded non-zero")
	}
	reg.Histogram("h").Observe(1)
	reg.SetManifest("k", "v")
	reg.SetSink(Discard)
	sp := reg.StartSpan("root")
	if sp != nil {
		t.Fatal("nil registry produced a span")
	}
	sp.SetAttr("k", 1)
	child := sp.Child("c")
	child.End()
	sp.End()
	if sp.Duration() != 0 || sp.Path() != "" || sp.Depth() != 0 || sp.Running() {
		t.Fatal("nil span misbehaved")
	}
	snap := reg.Snapshot()
	if snap == nil || len(snap.Counters) != 0 {
		t.Fatalf("nil snapshot = %+v", snap)
	}
	var buf bytes.Buffer
	reg.WritePhaseSummary(&buf)
	if buf.Len() != 0 {
		t.Fatalf("nil phase summary wrote %q", buf.String())
	}
}

func TestSinks(t *testing.T) {
	var text, jsonl bytes.Buffer
	reg := New()
	reg.SetSink(NewTextSink(&text))
	root := reg.StartSpan("campaign")
	c := root.Child("golden")
	c.SetAttr("cycles", 100)
	c.End()
	reg.SetSink(NewJSONLSink(&jsonl))
	root.SetAttr("sites", 3)
	root.End()

	if !strings.Contains(text.String(), "golden") || !strings.Contains(text.String(), "cycles=100") {
		t.Fatalf("text sink output %q", text.String())
	}
	var ev struct {
		Span       string         `json:"span"`
		DurationMS float64        `json:"duration_ms"`
		Attrs      map[string]any `json:"attrs"`
	}
	if err := json.Unmarshal(jsonl.Bytes(), &ev); err != nil {
		t.Fatalf("jsonl output %q: %v", jsonl.String(), err)
	}
	if ev.Span != "campaign" || ev.Attrs["sites"] != 3.0 {
		t.Fatalf("jsonl event = %+v", ev)
	}
}

func TestPhaseSummary(t *testing.T) {
	reg := New()
	root := reg.StartSpan("solve")
	root.Child("fwd").End()
	root.End()
	var buf bytes.Buffer
	reg.WritePhaseSummary(&buf)
	out := buf.String()
	if !strings.Contains(out, "phase timings:") ||
		!strings.Contains(out, "solve") || !strings.Contains(out, "fwd") {
		t.Fatalf("summary = %q", out)
	}
}

func TestWriteFile(t *testing.T) {
	reg := New()
	reg.Counter("x").Inc()
	path := t.TempDir() + "/metrics.json"
	if err := reg.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), "\"x\": 1") {
		t.Fatalf("snapshot json = %q", buf.String())
	}
}
