// Package obs is the repo's telemetry substrate: typed counters, gauges,
// and histograms collected in a Registry, hierarchical wall-clock Spans
// for phase tracing, and pluggable Sinks for live emission. It is the
// measurement layer the ROADMAP's scaling work reports against — "where
// does the time go?" for the SART solver, the ACE performance model, the
// SFI campaigns, and the RTL simulator.
//
// Design constraints:
//
//   - zero dependencies beyond the standard library;
//   - lock-cheap on hot paths: counters and gauges are single atomics, and
//     instrumented inner loops accumulate locally and Add once per phase;
//   - nil-safe end to end: every method works on a nil *Registry, nil
//     *Counter, or nil *Span, so instrumented code needs no "is telemetry
//     on?" branches — an un-wired pipeline pays one nil check per call;
//   - snapshot-to-JSON: Registry.Snapshot serializes everything, including
//     a run manifest (options, seed, workload, ...) that makes benchmark
//     JSONs self-describing.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Safe on nil.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 holding a last-written value
// (a rate, a ratio, a convergence delta).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on nil.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// LatencyBuckets is the shared fixed-bucket layout for latency
// histograms observed in seconds (server.request_seconds,
// sweep.plan_compile_seconds, sweep.block_eval_seconds,
// artifact.restore_seconds): 500µs to 10s, roughly geometric — the
// range a sweep stage can plausibly occupy. Fixed, identical bounds are
// what let a fleet gateway sum per-replica Prometheus buckets.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram accumulates a distribution plus count/sum/min/max. Two
// bucket modes exist: the default power-of-two exponent buckets (no
// configuration, unbounded range), and fixed upper-bound buckets
// (FixedHistogram) whose stable layout is required for Prometheus
// exposition that aggregates across processes. Observe takes a mutex:
// use it for per-iteration or per-phase observations, not per-vertex
// ones.
type Histogram struct {
	mu      sync.Mutex
	count   uint64
	sum     float64
	min     float64
	max     float64
	nonpos  uint64
	buckets map[int]uint64 // key: binary exponent e, bucket covers (2^(e-1), 2^e]
	bounds  []float64      // fixed mode: sorted upper bounds (le); nil = exponent mode
	fixed   []uint64       // fixed mode: non-cumulative counts per bound
}

// Observe records one sample. Safe on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if h.bounds != nil {
		// sort.SearchFloat64s returns len(bounds) for NaN and for samples
		// beyond the last bound; both then count only toward the implicit
		// +Inf bucket (count itself).
		if i := sort.SearchFloat64s(h.bounds, v); i < len(h.fixed) {
			h.fixed[i]++
		}
		return
	}
	if v <= 0 || math.IsNaN(v) {
		h.nonpos++
		return
	}
	if h.buckets == nil {
		h.buckets = make(map[int]uint64)
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	if frac == 0.5 {
		exp-- // exact powers of two land in their own bucket's upper edge
	}
	h.buckets[exp]++
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// HistogramSnapshot is the JSON form of a Histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	// Buckets maps the binary exponent e (bucket upper bound 2^e) to the
	// number of positive samples in (2^(e-1), 2^e]. Non-positive samples
	// appear only in Count/Sum/Min (and Nonpos). Exponent mode only.
	Buckets map[string]uint64 `json:"buckets,omitempty"`
	// Nonpos counts the samples excluded from exponent buckets (<= 0 or
	// NaN); Prometheus exposition folds them into every cumulative
	// bucket, since a non-positive sample is <= any positive bound.
	Nonpos uint64 `json:"nonpos,omitempty"`
	// Bounds/Counts are the fixed-bucket view (FixedHistogram): sorted
	// upper bounds and the non-cumulative sample count per bound.
	// Samples beyond the last bound appear only in Count.
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"bucket_counts,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Nonpos: h.nonpos}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	if len(h.buckets) > 0 {
		s.Buckets = make(map[string]uint64, len(h.buckets))
		for e, n := range h.buckets {
			s.Buckets[strconv.Itoa(e)] = n
		}
	}
	if h.bounds != nil {
		s.Bounds = append([]float64(nil), h.bounds...)
		s.Counts = append([]uint64(nil), h.fixed...)
	}
	return s
}

// Registry is a named collection of metrics, spans, and a run manifest.
// The zero value is not usable; call New. A nil *Registry is a valid
// always-off registry: every method no-ops and every returned metric is a
// nil no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	manifest map[string]any
	roots    []*Span
	sink     Sink
}

// New returns an empty Registry with no sink attached.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		manifest: make(map[string]any),
	}
}

// Counter returns the named counter, creating it on first use. Returns a
// nil (no-op) counter on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// FixedHistogram returns the named histogram configured with fixed
// upper-bound buckets (typically LatencyBuckets), creating it on first
// use. Bounds must be sorted ascending. If the name already exists as
// an exponent-mode histogram with no observations yet, it is converted;
// an already-observed histogram keeps its existing layout (first
// registration wins — a stable layout is the point of fixed buckets).
func (r *Registry) FixedHistogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	h.mu.Lock()
	if h.bounds == nil && h.count == 0 {
		h.bounds = append([]float64(nil), bounds...)
		h.fixed = make([]uint64, len(h.bounds))
	}
	h.mu.Unlock()
	return h
}

// SetManifest records one self-describing fact about the run (an option
// value, the seed, the workload name, a result flag). Manifest entries are
// serialized verbatim into the snapshot.
func (r *Registry) SetManifest(key string, v any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.manifest[key] = v
}

// SetSink attaches a live-emission sink (nil detaches).
func (r *Registry) SetSink(s Sink) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink = s
}

func (r *Registry) currentSink() Sink {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sink
}

// Snapshot is the JSON-serializable state of a Registry.
type Snapshot struct {
	Manifest   map[string]any               `json:"manifest,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanSnapshot               `json:"spans,omitempty"`
}

// Snapshot captures the registry's current state in one pass: every
// metric family is read under a single registry lock (histograms take
// their own lock nested inside it), so concurrent writers cannot make
// one family's values inconsistent with another's — the property both
// the JSON endpoint and the Prometheus encoder rely on. In-flight
// spans are included with Running set.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c.Load()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g.Load()
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for k, h := range r.hists {
			s.Histograms[k] = h.snapshot()
		}
	}
	if len(r.manifest) > 0 {
		s.Manifest = make(map[string]any, len(r.manifest))
		for k, v := range r.manifest {
			s.Manifest[k] = v
		}
	}
	roots := append([]*Span(nil), r.roots...)
	r.mu.Unlock()

	if len(counters) > 0 {
		s.Counters = counters
	}
	if len(gauges) > 0 {
		s.Gauges = gauges
	}
	for _, sp := range roots {
		s.Spans = append(s.Spans, sp.snapshot())
	}
	return s
}

// WriteJSON writes an indented JSON snapshot to w.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteFile writes the JSON snapshot to path.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sortedNames returns m's keys in lexical order.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
