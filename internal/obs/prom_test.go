package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// parseProm splits exposition text into name → []"(labels) value" sample
// lines, skipping comments.
func parseProm(t *testing.T, text string) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			out[name[:i]] = append(out[name[:i]], line)
		} else {
			out[name] = append(out[name], line)
		}
	}
	return out
}

func TestWritePromCountersGauges(t *testing.T) {
	reg := New()
	reg.Counter("server.sweep_ok").Add(7)
	reg.Gauge("server.in_flight").Set(3)
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE server_sweep_ok counter\nserver_sweep_ok 7\n") {
		t.Fatalf("counter exposition missing:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE server_in_flight gauge\nserver_in_flight 3\n") {
		t.Fatalf("gauge exposition missing:\n%s", out)
	}
}

// TestWritePromFixedHistogram checks the full family contract: cumulative
// monotone buckets, le="+Inf" equal to _count, and a correct _sum.
func TestWritePromFixedHistogram(t *testing.T) {
	reg := New()
	h := reg.FixedHistogram("server.request_seconds", LatencyBuckets)
	obsd := []float64{0.0004, 0.003, 0.003, 0.08, 42} // 42 > last bound: +Inf only
	var sum float64
	for _, v := range obsd {
		h.Observe(v)
		sum += v
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	samples := parseProm(t, buf.String())
	buckets := samples["server_request_seconds_bucket"]
	if len(buckets) != len(LatencyBuckets)+1 {
		t.Fatalf("bucket series = %d, want %d", len(buckets), len(LatencyBuckets)+1)
	}
	var prev uint64
	for i, line := range buckets {
		var cum uint64
		fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &cum)
		if cum < prev {
			t.Fatalf("bucket %d not cumulative: %q after %d", i, line, prev)
		}
		prev = cum
	}
	last := buckets[len(buckets)-1]
	if !strings.HasPrefix(last, `server_request_seconds_bucket{le="+Inf"} `) {
		t.Fatalf("last bucket %q not +Inf", last)
	}
	if prev != uint64(len(obsd)) {
		t.Fatalf("+Inf cumulative = %d, want %d", prev, len(obsd))
	}
	wantCount := fmt.Sprintf("server_request_seconds_count %d", len(obsd))
	if got := samples["server_request_seconds_count"]; len(got) != 1 || got[0] != wantCount {
		t.Fatalf("_count = %v, want %q", got, wantCount)
	}
	sumLine := samples["server_request_seconds_sum"][0]
	gotSum, _ := strconv.ParseFloat(sumLine[strings.LastIndexByte(sumLine, ' ')+1:], 64)
	if math.Abs(gotSum-sum) > 1e-9 {
		t.Fatalf("_sum = %v, want %v", gotSum, sum)
	}
	// Spot-check le semantics: both 0.003 samples land in le="0.005",
	// and the cumulative value also carries the 0.0004 sample below.
	for _, line := range buckets {
		if strings.HasPrefix(line, `server_request_seconds_bucket{le="0.005"} `) {
			if !strings.HasSuffix(line, " 3") {
				t.Fatalf("le=0.005 cumulative %q, want 3 (0.0004 + two 0.003)", line)
			}
		}
	}
}

// TestWritePromExponentHistogram: default histograms expose power-of-two
// bounds with non-positive samples folded into an le="0" bucket.
func TestWritePromExponentHistogram(t *testing.T) {
	reg := New()
	h := reg.Histogram("core.iter_delta")
	for _, v := range []float64{-1, 0, 0.5, 2, 2} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	samples := parseProm(t, buf.String())
	buckets := samples["core_iter_delta_bucket"]
	want := []string{
		`core_iter_delta_bucket{le="0"} 2`,
		`core_iter_delta_bucket{le="0.5"} 3`,
		`core_iter_delta_bucket{le="2"} 5`,
		`core_iter_delta_bucket{le="+Inf"} 5`,
	}
	if len(buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", buckets, want)
	}
	for i := range want {
		if buckets[i] != want[i] {
			t.Fatalf("bucket[%d] = %q, want %q", i, buckets[i], want[i])
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"server.request_seconds": "server_request_seconds",
		"sweep.plan_cache_hits":  "sweep_plan_cache_hits",
		"a-b c":                  "a_b_c",
		"9lives":                 "_9lives",
		"ok_name:sub":            "ok_name:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromHandler(t *testing.T) {
	reg := New()
	reg.Counter("server.errors").Inc()
	srv := httptest.NewServer(reg.PromHandler())
	defer srv.Close()

	resp := httptest.NewRecorder()
	reg.PromHandler().ServeHTTP(resp, httptest.NewRequest("GET", "/metrics", nil))
	if resp.Code != 200 || resp.Header().Get("Content-Type") != PromContentType {
		t.Fatalf("GET: %d %q", resp.Code, resp.Header().Get("Content-Type"))
	}
	if !strings.Contains(resp.Body.String(), "server_errors 1") {
		t.Fatalf("body %q", resp.Body.String())
	}

	resp = httptest.NewRecorder()
	reg.PromHandler().ServeHTTP(resp, httptest.NewRequest("POST", "/metrics", nil))
	if resp.Code != 405 {
		t.Fatalf("POST: %d, want 405", resp.Code)
	}

	// A nil registry serves an empty but well-formed page.
	var nilReg *Registry
	resp = httptest.NewRecorder()
	nilReg.PromHandler().ServeHTTP(resp, httptest.NewRequest("GET", "/metrics", nil))
	if resp.Code != 200 || resp.Body.Len() != 0 {
		t.Fatalf("nil registry: %d %q", resp.Code, resp.Body.String())
	}
}

func TestPromFloat(t *testing.T) {
	if promFloat(math.Inf(1)) != "+Inf" || promFloat(math.Inf(-1)) != "-Inf" || promFloat(math.NaN()) != "NaN" {
		t.Fatal("special float rendering wrong")
	}
	if promFloat(0.25) != "0.25" {
		t.Fatalf("promFloat(0.25) = %q", promFloat(0.25))
	}
}
