package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Sink receives live telemetry events. Implementations must be safe for
// concurrent use: span ends can arrive from parallel workers.
type Sink interface {
	// SpanEnd is called exactly once when a span ends.
	SpanEnd(sp *Span)
}

// TextSink prints one human-readable line per finished span, indented by
// nesting depth — the -trace view of a run.
type TextSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextSink returns a TextSink writing to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

func (t *TextSink) SpanEnd(sp *Span) {
	line := fmt.Sprintf("trace: %*s%-24s %10s%s",
		2*sp.Depth(), "", sp.Name(), sp.Duration().Round(time.Microsecond), formatAttrs(sp.Attrs()))
	t.mu.Lock()
	fmt.Fprintln(t.w, line)
	t.mu.Unlock()
}

// JSONLSink emits one JSON object per finished span (JSON-lines), suitable
// for machine consumption or appending to a trace log.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink returns a JSONLSink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{enc: json.NewEncoder(w)} }

func (j *JSONLSink) SpanEnd(sp *Span) {
	ev := struct {
		Span       string         `json:"span"`
		DurationMS float64        `json:"duration_ms"`
		Attrs      map[string]any `json:"attrs,omitempty"`
	}{
		Span:       sp.Path(),
		DurationMS: float64(sp.Duration()) / float64(time.Millisecond),
		Attrs:      sp.Attrs(),
	}
	j.mu.Lock()
	j.enc.Encode(ev) //nolint:errcheck // best-effort live emission
	j.mu.Unlock()
}

// Discard is a sink that drops every event (useful to exercise sink code
// paths at zero output cost).
var Discard Sink = discardSink{}

type discardSink struct{}

func (discardSink) SpanEnd(*Span) {}
