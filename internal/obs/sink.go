package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Sink receives live telemetry events. Implementations must be safe for
// concurrent use: span ends can arrive from parallel workers.
type Sink interface {
	// SpanEnd is called exactly once when a span ends.
	SpanEnd(sp *Span)
}

// TextSink prints one human-readable line per finished span, indented by
// nesting depth — the -trace view of a run.
type TextSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextSink returns a TextSink writing to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

func (t *TextSink) SpanEnd(sp *Span) {
	line := fmt.Sprintf("trace: %*s%-24s %10s%s",
		2*sp.Depth(), "", sp.Name(), sp.Duration().Round(time.Microsecond), formatAttrs(sp.Attrs()))
	t.mu.Lock()
	fmt.Fprintln(t.w, line)
	t.mu.Unlock()
}

// JSONLSink emits one JSON object per finished span (JSON-lines), suitable
// for machine consumption or appending to a trace log.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink returns a JSONLSink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{enc: json.NewEncoder(w)} }

func (j *JSONLSink) SpanEnd(sp *Span) {
	ev := struct {
		Span       string         `json:"span"`
		TraceID    string         `json:"trace_id,omitempty"`
		SpanID     string         `json:"span_id,omitempty"`
		ParentID   string         `json:"parent_id,omitempty"`
		DurationMS float64        `json:"duration_ms"`
		Attrs      map[string]any `json:"attrs,omitempty"`
	}{
		Span:       sp.Path(),
		DurationMS: float64(sp.Duration()) / float64(time.Millisecond),
		Attrs:      sp.Attrs(),
	}
	if tid := sp.TraceID(); !tid.IsZero() {
		ev.TraceID = tid.String()
	}
	if sid := sp.SpanID(); !sid.IsZero() {
		ev.SpanID = sid.String()
	}
	if pid := sp.ParentID(); !pid.IsZero() {
		ev.ParentID = pid.String()
	}
	j.mu.Lock()
	// Best-effort live emission: an encode error (closed file, short
	// write, unmarshalable attr) must never panic or poison later
	// events — json.Encoder reports per-call errors without latching.
	_ = j.enc.Encode(ev)
	j.mu.Unlock()
}

// MultiSink fans every event out to each sink in order (nils are
// skipped). It lets a CLI print -trace lines to stderr while also
// appending -trace-jsonl records to a file.
func MultiSink(sinks ...Sink) Sink {
	out := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}

type multiSink []Sink

func (m multiSink) SpanEnd(sp *Span) {
	for _, s := range m {
		s.SpanEnd(sp)
	}
}

// Discard is a sink that drops every event (useful to exercise sink code
// paths at zero output cost).
var Discard Sink = discardSink{}

type discardSink struct{}

func (discardSink) SpanEnd(*Span) {}
