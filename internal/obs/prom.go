package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4) of the registry.
// This is the scrape surface a fleet gateway aggregates: counters and
// gauges sum/average trivially across replicas, and the fixed-bucket
// latency histograms (LatencyBuckets) expose identical le= layouts on
// every process, so per-replica _bucket series add up to fleet-level
// quantile estimates.
//
// Metric names translate by replacing every character outside
// [a-zA-Z0-9_:] with '_': "server.request_seconds" scrapes as
// "server_request_seconds". Exponent-mode histograms (the default
// Histogram) are rendered with their power-of-two upper bounds, which
// are valid cumulative buckets but process-local; fleet-aggregated
// latencies should come from FixedHistogram metrics.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm writes the registry's current state in the Prometheus text
// exposition format. The snapshot is taken once (single registry lock),
// so the exposed families are mutually consistent.
func (r *Registry) WriteProm(w io.Writer) error {
	return writeProm(w, r.Snapshot())
}

func writeProm(w io.Writer, snap *Snapshot) error {
	for _, name := range sortedNames(snap.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", pn, pn, promFloat(float64(snap.Counters[name]))); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(snap.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(snap.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(snap.Histograms) {
		if err := writePromHistogram(w, promName(name), snap.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram family: cumulative _bucket
// series ending in le="+Inf", then _sum and _count.
func writePromHistogram(w io.Writer, pn string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	bounds, counts := promBuckets(h)
	var cum uint64
	for i, le := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count)
	return err
}

// promBuckets returns the non-cumulative (bound, count) series for a
// histogram snapshot. Fixed-bucket histograms expose their configured
// bounds verbatim. Exponent-mode histograms expose the 2^e upper bound
// of each populated bucket, with non-positive samples folded into the
// smallest bucket (a sample <= 0 is <= any positive bound, so every
// cumulative bucket must include it).
func promBuckets(h HistogramSnapshot) (bounds []float64, counts []uint64) {
	if h.Bounds != nil {
		return h.Bounds, h.Counts
	}
	if len(h.Buckets) == 0 && h.Nonpos == 0 {
		return nil, nil
	}
	exps := make([]int, 0, len(h.Buckets))
	for k := range h.Buckets {
		e, err := strconv.Atoi(k)
		if err != nil {
			continue
		}
		exps = append(exps, e)
	}
	sort.Ints(exps)
	if h.Nonpos > 0 {
		// A dedicated le="0" bucket holds the non-positive samples; the
		// cumulative sum then carries them through every later bucket.
		bounds = append(bounds, 0)
		counts = append(counts, h.Nonpos)
	}
	for _, e := range exps {
		bounds = append(bounds, math.Ldexp(1, e))
		counts = append(counts, h.Buckets[strconv.Itoa(e)])
	}
	return bounds, counts
}

// promFloat renders a float in the exposition format's value syntax.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName maps a registry metric name onto the Prometheus name
// grammar: every character outside [a-zA-Z0-9_:] becomes '_', and a
// leading digit is prefixed with '_'.
func promName(name string) string {
	b := make([]byte, 0, len(name)+1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if i == 0 && c >= '0' && c <= '9' {
			b = append(b, '_')
		}
		if !ok {
			c = '_'
		}
		b = append(b, c)
	}
	return string(b)
}

// PromHandler serves the registry in the Prometheus text exposition
// format — the scrape endpoint a gateway or Prometheus server polls.
// Safe on a nil registry, which serves an empty (but valid) page.
func (r *Registry) PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", PromContentType)
		if req.Method == http.MethodHead {
			return
		}
		_ = r.WriteProm(w) // headers are out; nothing useful left to send
	})
}
