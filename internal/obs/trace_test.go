package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := newTraceID(), newSpanID()
	h := FormatTraceparent(tid, sid)
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("formatted traceparent %q", h)
	}
	gt, gs, ok := ParseTraceparent(h)
	if !ok || gt != tid || gs != sid {
		t.Fatalf("ParseTraceparent(%q) = %v %v %v, want %v %v", h, gt, gs, ok, tid, sid)
	}
}

func TestParseTraceparentValid(t *testing.T) {
	const h = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tid, sid, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("rejected valid header %q", h)
	}
	if tid.String() != "0af7651916cd43dd8448eb211c80319c" || sid.String() != "b7ad6b7169203331" {
		t.Fatalf("parsed %v %v", tid, sid)
	}
	// A future version may append "-extra" fields after the flags; the
	// fixed prefix must still parse.
	if _, _, ok := ParseTraceparent(h[:53] + "00-morefields"); !ok {
		t.Fatal("rejected future-version trailing fields")
	}
}

func TestParseTraceparentInvalid(t *testing.T) {
	bad := map[string]string{
		"empty":            "",
		"truncated":        "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033",
		"version ff":       "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"uppercase hex":    "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",
		"zero trace id":    "00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"zero parent id":   "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"bad separators":   "00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01",
		"non-hex version":  "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"non-hex flags":    "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz",
		"non-hex trace id": "00-0af7651916cd43dd8448eb211c80319x-b7ad6b7169203331-01",
		"fused extra":      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-012",
	}
	for name, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: accepted %q", name, h)
		}
	}
}

func TestIDGeneration(t *testing.T) {
	if newTraceID().IsZero() || newSpanID().IsZero() {
		t.Fatal("generated a zero ID")
	}
	if newTraceID() == newTraceID() {
		t.Fatal("two fresh trace IDs collided")
	}
	var tid TraceID
	var sid SpanID
	if !tid.IsZero() || !sid.IsZero() {
		t.Fatal("zero values not zero")
	}
	if len(tid.String()) != 32 || len(sid.String()) != 16 {
		t.Fatalf("String lengths %d/%d", len(tid.String()), len(sid.String()))
	}
}

// TestStartSpanContextNesting: with a span in the context, the new span
// is its child on the same trace.
func TestStartSpanContextNesting(t *testing.T) {
	reg := New()
	root := reg.StartSpan("server.request")
	ctx := ContextWithSpan(context.Background(), root)
	if got := SpanFromContext(ctx); got != root {
		t.Fatal("SpanFromContext did not return the stored span")
	}
	child := reg.StartSpanContext(ctx, "sweep.plan")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %v != root trace %v", child.TraceID(), root.TraceID())
	}
	if child.ParentID() != root.SpanID() {
		t.Fatalf("child parent %v != root span %v", child.ParentID(), root.SpanID())
	}
	// Even a nil registry receiver nests when the context carries a span:
	// the parent's registry wires the sink.
	var nilReg *Registry
	c2 := nilReg.StartSpanContext(ctx, "artifact.restore")
	if c2 == nil || c2.TraceID() != root.TraceID() {
		t.Fatal("nil-registry StartSpanContext did not nest under the context span")
	}
}

// TestStartSpanContextRemoteParent: a context carrying an incoming
// traceparent makes the next root join that trace.
func TestStartSpanContextRemoteParent(t *testing.T) {
	reg := New()
	tid, pid, _ := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	ctx := ContextWithRemoteParent(context.Background(), tid, pid)
	sp := reg.StartSpanContext(ctx, "server.request")
	if sp.TraceID() != tid {
		t.Fatalf("root did not adopt remote trace: %v != %v", sp.TraceID(), tid)
	}
	if sp.ParentID() != pid {
		t.Fatalf("root did not parent remote span: %v != %v", sp.ParentID(), pid)
	}
	if sp.SpanID().IsZero() || sp.SpanID() == SpanID(pid) {
		t.Fatalf("root span ID %v must be fresh", sp.SpanID())
	}
	snap := sp.Snapshot()
	if snap.TraceID != tid.String() || snap.ParentID != pid.String() {
		t.Fatalf("snapshot IDs %q/%q", snap.TraceID, snap.ParentID)
	}
}

// TestStartSpanContextFresh: an empty context starts a fresh trace; a
// nil registry with no parent yields a nil (no-op) span.
func TestStartSpanContextFresh(t *testing.T) {
	reg := New()
	sp := reg.StartSpanContext(context.Background(), "server.request")
	if sp == nil || sp.TraceID().IsZero() || !sp.ParentID().IsZero() {
		t.Fatalf("fresh root = %+v", sp)
	}
	var nilReg *Registry
	if got := nilReg.StartSpanContext(context.Background(), "x"); got != nil {
		t.Fatal("nil registry with empty context produced a span")
	}
	if got := SpanFromContext(nil); got != nil { //nolint:staticcheck // nil ctx is the documented no-op
		t.Fatal("SpanFromContext(nil) non-nil")
	}
	if ctx := ContextWithSpan(context.Background(), nil); SpanFromContext(ctx) != nil {
		t.Fatal("ContextWithSpan(nil span) stored something")
	}
	if ctx := ContextWithRemoteParent(context.Background(), TraceID{}, SpanID{}); ctx != context.Background() {
		t.Fatal("zero remote parent should leave ctx unchanged")
	}
}

// TestRootRingBounded: a long-lived registry must not retain unbounded
// root spans — the ring keeps the newest maxRetainedRoots.
func TestRootRingBounded(t *testing.T) {
	reg := New()
	total := maxRetainedRoots + 17
	var last *Span
	for i := 0; i < total; i++ {
		last = reg.StartSpan("req")
		last.End()
	}
	snap := reg.Snapshot()
	if len(snap.Spans) != maxRetainedRoots {
		t.Fatalf("retained %d roots, want %d", len(snap.Spans), maxRetainedRoots)
	}
	if snap.Spans[len(snap.Spans)-1].TraceID != last.TraceID().String() {
		t.Fatal("newest root evicted instead of oldest")
	}
}
