package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Span measures one phase of work: a named wall-clock interval with
// attributes and child spans. Spans form a tree rooted at
// Registry.StartSpan; nesting is explicit via Child, so concurrent
// pipelines cannot mis-parent each other. All methods are safe on a nil
// *Span, which lets instrumented code run un-wired:
//
//	sp := reg.StartSpan("solve") // reg may be nil
//	defer sp.End()
//	fwd := sp.Child("fwd")
//	... forward fixpoint ...
//	fwd.SetAttr("vertices", n)
//	fwd.End()
type Span struct {
	reg      *Registry
	parent   *Span
	name     string
	start    time.Time
	traceID  TraceID
	spanID   SpanID
	parentID SpanID // parent span ID; for roots, the remote parent (if any)

	mu       sync.Mutex
	end      time.Time
	attrs    map[string]any
	children []*Span
}

// maxRetainedRoots bounds how many root spans a Registry keeps for
// Snapshot/WritePhaseSummary. Batch CLIs open a handful of roots per
// run; a long-lived server opens one per request, and retaining them
// all would leak without bound — the ring keeps the most recent ones.
const maxRetainedRoots = 256

// newRoot builds (but does not retain) a root span with a fresh trace.
func (r *Registry) newRoot(name string) *Span {
	return &Span{reg: r, name: name, start: time.Now(), traceID: newTraceID(), spanID: newSpanID()}
}

// retainRoot appends sp to the bounded root ring, dropping the oldest
// root beyond maxRetainedRoots.
func (r *Registry) retainRoot(sp *Span) {
	r.mu.Lock()
	if len(r.roots) >= maxRetainedRoots {
		copy(r.roots, r.roots[1:])
		r.roots[len(r.roots)-1] = sp
	} else {
		r.roots = append(r.roots, sp)
	}
	r.mu.Unlock()
}

// StartSpan opens a root span on a fresh trace. Returns nil (a no-op
// span) on a nil registry. To continue an incoming trace or nest under
// the current request span, use StartSpanContext.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	sp := r.newRoot(name)
	r.retainRoot(sp)
	return sp
}

// Child opens a nested span sharing the parent's trace ID. Safe on nil
// (returns nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		reg: s.reg, parent: s, name: name, start: time.Now(),
		traceID: s.traceID, spanID: newSpanID(), parentID: s.spanID,
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr attaches a key/value attribute. Safe on nil.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// End closes the span (idempotent) and notifies the registry's sink. Safe
// on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	first := s.end.IsZero()
	if first {
		s.end = time.Now()
	}
	s.mu.Unlock()
	if !first {
		return
	}
	if sink := s.reg.currentSink(); sink != nil {
		sink.SpanEnd(s)
	}
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// TraceID returns the span's trace ID (zero on nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.traceID
}

// SpanID returns the span's own ID (zero on nil).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.spanID
}

// ParentID returns the parent span ID: the local parent's ID for child
// spans, the remote parent for roots joined to an incoming trace, zero
// otherwise.
func (s *Span) ParentID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.parentID
}

// Children returns a copy of the span's direct children (nil on nil).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attr returns the attribute stored under key (nil when absent).
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[key]
}

// ChildSeconds sums the durations, in seconds, of the direct children
// named name — the per-stage duration view the server's flight recorder
// reads off a finished request span.
func (s *Span) ChildSeconds(name string) float64 {
	var total float64
	for _, c := range s.Children() {
		if c.Name() == name {
			total += c.Duration().Seconds()
		}
	}
	return total
}

// Path returns the slash-joined span path from its root, e.g. "solve/fwd".
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	if s.parent == nil {
		return s.name
	}
	return s.parent.Path() + "/" + s.name
}

// Depth returns the nesting depth (0 for roots and nil).
func (s *Span) Depth() int {
	d := 0
	for s != nil && s.parent != nil {
		d++
		s = s.parent
	}
	return d
}

// Duration returns the elapsed time: end-start once ended, time since
// start while running, 0 on nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Running reports whether the span has not yet ended (false on nil).
func (s *Span) Running() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end.IsZero()
}

// Attrs returns a copy of the span's attributes (nil when none).
func (s *Span) Attrs() map[string]any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.attrs) == 0 {
		return nil
	}
	out := make(map[string]any, len(s.attrs))
	for k, v := range s.attrs {
		out[k] = v
	}
	return out
}

// SpanSnapshot is the JSON form of a span subtree. TraceID appears on
// root spans only (children share it by construction); SpanID/ParentID
// appear on every span so flat consumers can re-link the tree.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	TraceID    string         `json:"trace_id,omitempty"`
	SpanID     string         `json:"span_id,omitempty"`
	ParentID   string         `json:"parent_id,omitempty"`
	DurationMS float64        `json:"duration_ms"`
	Running    bool           `json:"running,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot returns the JSON form of the span subtree (zero value on
// nil) — the payload the server's slow-request log embeds.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	return s.snapshot()
}

func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	snap := SpanSnapshot{
		Name:    s.name,
		Running: s.end.IsZero(),
	}
	if s.parent == nil && !s.traceID.IsZero() {
		snap.TraceID = s.traceID.String()
	}
	if !s.spanID.IsZero() {
		snap.SpanID = s.spanID.String()
	}
	if !s.parentID.IsZero() {
		snap.ParentID = s.parentID.String()
	}
	if snap.Running {
		snap.DurationMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	} else {
		snap.DurationMS = float64(s.end.Sub(s.start)) / float64(time.Millisecond)
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			snap.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.snapshot())
	}
	return snap
}

// WritePhaseSummary renders every root span tree as an indented
// phase-timing table — the run-over-run solver-regression view sartool
// prints under -trace.
func (r *Registry) WritePhaseSummary(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	roots := append([]*Span(nil), r.roots...)
	r.mu.Unlock()
	if len(roots) == 0 {
		return
	}
	fmt.Fprintf(w, "phase timings:\n")
	for _, sp := range roots {
		writeSpanSummary(w, sp.snapshot(), 0)
	}
}

func writeSpanSummary(w io.Writer, s SpanSnapshot, depth int) {
	state := ""
	if s.Running {
		state = " (running)"
	}
	fmt.Fprintf(w, "  %-*s%-*s %10.3fms%s%s\n",
		2*depth, "", 24-2*depth, s.Name, s.DurationMS, state, formatAttrs(s.Attrs))
	for _, c := range s.Children {
		writeSpanSummary(w, c, depth+1)
	}
}

// formatAttrs renders scalar attributes as " k=v" pairs in key order;
// slice/map attributes (e.g. per-FUB traces) are elided with their length.
func formatAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, k := range sortedNames(attrs) {
		switch v := attrs[k].(type) {
		case []float64:
			fmt.Fprintf(&b, " %s=[%d]", k, len(v))
		case float64:
			fmt.Fprintf(&b, " %s=%.4g", k, v)
		default:
			fmt.Fprintf(&b, " %s=%v", k, v)
		}
	}
	return b.String()
}
