package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Span measures one phase of work: a named wall-clock interval with
// attributes and child spans. Spans form a tree rooted at
// Registry.StartSpan; nesting is explicit via Child, so concurrent
// pipelines cannot mis-parent each other. All methods are safe on a nil
// *Span, which lets instrumented code run un-wired:
//
//	sp := reg.StartSpan("solve") // reg may be nil
//	defer sp.End()
//	fwd := sp.Child("fwd")
//	... forward fixpoint ...
//	fwd.SetAttr("vertices", n)
//	fwd.End()
type Span struct {
	reg    *Registry
	parent *Span
	name   string
	start  time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    map[string]any
	children []*Span
}

// StartSpan opens a root span. Returns nil (a no-op span) on a nil
// registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	sp := &Span{reg: r, name: name, start: time.Now()}
	r.mu.Lock()
	r.roots = append(r.roots, sp)
	r.mu.Unlock()
	return sp
}

// Child opens a nested span. Safe on nil (returns nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{reg: s.reg, parent: s, name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr attaches a key/value attribute. Safe on nil.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// End closes the span (idempotent) and notifies the registry's sink. Safe
// on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	first := s.end.IsZero()
	if first {
		s.end = time.Now()
	}
	s.mu.Unlock()
	if !first {
		return
	}
	if sink := s.reg.currentSink(); sink != nil {
		sink.SpanEnd(s)
	}
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Path returns the slash-joined span path from its root, e.g. "solve/fwd".
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	if s.parent == nil {
		return s.name
	}
	return s.parent.Path() + "/" + s.name
}

// Depth returns the nesting depth (0 for roots and nil).
func (s *Span) Depth() int {
	d := 0
	for s != nil && s.parent != nil {
		d++
		s = s.parent
	}
	return d
}

// Duration returns the elapsed time: end-start once ended, time since
// start while running, 0 on nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Running reports whether the span has not yet ended (false on nil).
func (s *Span) Running() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end.IsZero()
}

// Attrs returns a copy of the span's attributes (nil when none).
func (s *Span) Attrs() map[string]any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.attrs) == 0 {
		return nil
	}
	out := make(map[string]any, len(s.attrs))
	for k, v := range s.attrs {
		out[k] = v
	}
	return out
}

// SpanSnapshot is the JSON form of a span subtree.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	DurationMS float64        `json:"duration_ms"`
	Running    bool           `json:"running,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	snap := SpanSnapshot{
		Name:    s.name,
		Running: s.end.IsZero(),
	}
	if snap.Running {
		snap.DurationMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	} else {
		snap.DurationMS = float64(s.end.Sub(s.start)) / float64(time.Millisecond)
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			snap.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.snapshot())
	}
	return snap
}

// WritePhaseSummary renders every root span tree as an indented
// phase-timing table — the run-over-run solver-regression view sartool
// prints under -trace.
func (r *Registry) WritePhaseSummary(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	roots := append([]*Span(nil), r.roots...)
	r.mu.Unlock()
	if len(roots) == 0 {
		return
	}
	fmt.Fprintf(w, "phase timings:\n")
	for _, sp := range roots {
		writeSpanSummary(w, sp.snapshot(), 0)
	}
}

func writeSpanSummary(w io.Writer, s SpanSnapshot, depth int) {
	state := ""
	if s.Running {
		state = " (running)"
	}
	fmt.Fprintf(w, "  %-*s%-*s %10.3fms%s%s\n",
		2*depth, "", 24-2*depth, s.Name, s.DurationMS, state, formatAttrs(s.Attrs))
	for _, c := range s.Children {
		writeSpanSummary(w, c, depth+1)
	}
}

// formatAttrs renders scalar attributes as " k=v" pairs in key order;
// slice/map attributes (e.g. per-FUB traces) are elided with their length.
func formatAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, k := range sortedNames(attrs) {
		switch v := attrs[k].(type) {
		case []float64:
			fmt.Fprintf(&b, " %s=[%d]", k, len(v))
		case float64:
			fmt.Fprintf(&b, " %s=%.4g", k, v)
		default:
			fmt.Fprintf(&b, " %s=%v", k, v)
		}
	}
	return b.String()
}
