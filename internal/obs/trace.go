package obs

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
)

// Request-scoped tracing. A trace is identified by a 16-byte TraceID
// shared by every span the request touches — across goroutines and, via
// the W3C traceparent header, across processes (a future sweep-fleet
// gateway forwards the header; each replica's spans then stitch into one
// tree). Each span additionally carries an 8-byte SpanID and its
// parent's SpanID, so flat JSONL span streams reconstruct the tree.
//
// Propagation is by context.Context:
//
//	ctx := obs.ContextWithRemoteParent(r.Context(), tid, pid) // from traceparent
//	sp := reg.StartSpanContext(ctx, "server.request")         // adopts tid, parents pid
//	ctx = obs.ContextWithSpan(ctx, sp)                        // downstream spans nest
//	... eng.SweepContext(ctx, ...)                            // children of sp
//
// All of it is nil-safe: a nil registry yields nil spans, and a context
// without trace state starts a fresh trace.

// TraceID is the W3C trace-context trace identifier: 16 bytes, rendered
// as 32 lowercase hex digits. The zero value means "no trace".
type TraceID [16]byte

// IsZero reports whether the ID is unset (invalid per W3C).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is the W3C parent-id: 8 bytes, 16 lowercase hex digits. The
// zero value means "no span".
type SpanID [8]byte

// IsZero reports whether the ID is unset (invalid per W3C).
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// newTraceID returns a random non-zero TraceID. math/rand/v2's global
// generator is goroutine-safe, seeded from the OS, and lock-cheap —
// trace IDs need uniqueness, not cryptographic unpredictability.
func newTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		putUint64(t[:8], rand.Uint64())
		putUint64(t[8:], rand.Uint64())
	}
	return t
}

// newSpanID returns a random non-zero SpanID.
func newSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		putUint64(s[:], rand.Uint64())
	}
	return s
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// ParseTraceparent parses a W3C traceparent header
// (version-traceid-parentid-flags, e.g.
// "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01") into the
// remote trace and parent span IDs. It accepts any version except the
// reserved "ff", requires lowercase hex per the spec, and rejects the
// all-zero IDs the spec marks invalid.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	var tid TraceID
	var sid SpanID
	// version(2) '-' traceid(32) '-' parentid(16) '-' flags(2); later
	// versions may append fields after the flags.
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tid, sid, false
	}
	if len(h) > 55 && h[55] != '-' {
		return tid, sid, false
	}
	if !isLowerHex(h[:2]) || h[:2] == "ff" {
		return tid, sid, false
	}
	if !isLowerHex(h[53:55]) {
		return tid, sid, false
	}
	if _, err := hex.Decode(tid[:], []byte(h[3:35])); err != nil || !isLowerHex(h[3:35]) {
		return TraceID{}, sid, false
	}
	if _, err := hex.Decode(sid[:], []byte(h[36:52])); err != nil || !isLowerHex(h[36:52]) {
		return TraceID{}, SpanID{}, false
	}
	if tid.IsZero() || sid.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return tid, sid, true
}

// FormatTraceparent renders a version-00 traceparent header with the
// sampled flag set — the form seqavfd echoes back on responses and a
// gateway forwards to replicas.
func FormatTraceparent(t TraceID, s SpanID) string {
	return "00-" + t.String() + "-" + s.String() + "-01"
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

type spanCtxKey struct{}

type remoteParent struct {
	trace TraceID
	span  SpanID
}

type remoteCtxKey struct{}

// ContextWithSpan returns ctx carrying sp as the current span: spans
// started with StartSpanContext nest under it. A nil sp returns ctx
// unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// ContextWithRemoteParent records an incoming traceparent's IDs: the
// next root span started from ctx adopts the trace ID and parents the
// remote span, stitching this process's tree into the caller's trace.
func ContextWithRemoteParent(ctx context.Context, t TraceID, s SpanID) context.Context {
	if t.IsZero() {
		return ctx
	}
	return context.WithValue(ctx, remoteCtxKey{}, remoteParent{trace: t, span: s})
}

// remoteParentFromContext returns the remote trace/parent IDs, if any.
func remoteParentFromContext(ctx context.Context) (TraceID, SpanID, bool) {
	if ctx == nil {
		return TraceID{}, SpanID{}, false
	}
	rp, ok := ctx.Value(remoteCtxKey{}).(remoteParent)
	return rp.trace, rp.span, ok
}

// StartSpanContext opens a span parented by ctx: a child of the
// context's current span when one is set, otherwise a root span that
// joins the context's remote trace (ContextWithRemoteParent) or starts
// a fresh one. Returns nil (a no-op span) when neither a parent span
// nor a non-nil registry is available.
func (r *Registry) StartSpanContext(ctx context.Context, name string) *Span {
	if parent := SpanFromContext(ctx); parent != nil {
		return parent.Child(name)
	}
	if r == nil {
		return nil
	}
	sp := r.newRoot(name)
	if tid, pid, ok := remoteParentFromContext(ctx); ok {
		sp.traceID = tid
		sp.parentID = pid
	}
	r.retainRoot(sp)
	return sp
}
