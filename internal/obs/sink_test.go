package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// failWriter fails every write after the first n bytes — the
// closed-file / full-disk shape a long-running service hits.
type failWriter struct {
	n       int
	written bytes.Buffer
}

func (f *failWriter) Write(p []byte) (int, error) {
	if f.written.Len() >= f.n {
		return 0, errors.New("sink: disk full")
	}
	take := f.n - f.written.Len()
	if take > len(p) {
		take = len(p)
	}
	f.written.Write(p[:take])
	if take < len(p) {
		return take, errors.New("sink: short write")
	}
	return take, nil
}

// TestJSONLSinkWriterFailure: encode errors must neither panic nor
// poison later events, and spans still record durations.
func TestJSONLSinkWriterFailure(t *testing.T) {
	reg := New()
	fw := &failWriter{n: 10}
	reg.SetSink(NewJSONLSink(fw))
	sp := reg.StartSpan("solve")
	time.Sleep(time.Millisecond)
	sp.End() // write fails mid-event; must not panic
	if sp.Duration() < time.Millisecond {
		t.Fatalf("duration %v lost after sink failure", sp.Duration())
	}
	// The registry must stay usable: swap to a good sink and emit again.
	var good bytes.Buffer
	reg.SetSink(NewJSONLSink(&good))
	sp2 := reg.StartSpan("solve")
	sp2.End()
	if !strings.Contains(good.String(), `"span":"solve"`) {
		t.Fatalf("later event lost after earlier sink failure: %q", good.String())
	}
}

// TestJSONLSinkUnencodableAttr: a non-marshalable attribute (chan) must
// not panic or deadlock the registry.
func TestJSONLSinkUnencodableAttr(t *testing.T) {
	reg := New()
	var buf bytes.Buffer
	reg.SetSink(NewJSONLSink(&buf))
	sp := reg.StartSpan("solve")
	sp.SetAttr("bad", make(chan int))
	sp.End()
	// The registry must not be deadlocked: Snapshot takes the same lock
	// currentSink does.
	if snap := reg.Snapshot(); len(snap.Spans) != 1 {
		t.Fatalf("registry wedged after unencodable attr: %+v", snap)
	}
}

// TestTextSinkShortWrite: a short-write TextSink must not panic, and the
// span tree stays intact for Snapshot/WritePhaseSummary.
func TestTextSinkShortWrite(t *testing.T) {
	reg := New()
	fw := &failWriter{n: 5}
	reg.SetSink(NewTextSink(fw))
	root := reg.StartSpan("sweep")
	root.Child("eval").End()
	root.End()
	snap := reg.Snapshot()
	if len(snap.Spans) != 1 || len(snap.Spans[0].Children) != 1 {
		t.Fatalf("span tree lost after short write: %+v", snap.Spans)
	}
	var buf bytes.Buffer
	reg.WritePhaseSummary(&buf)
	if !strings.Contains(buf.String(), "sweep") {
		t.Fatalf("phase summary lost: %q", buf.String())
	}
}

func TestMultiSink(t *testing.T) {
	var a, b bytes.Buffer
	reg := New()
	reg.SetSink(MultiSink(NewTextSink(&a), nil, NewJSONLSink(&b)))
	reg.StartSpan("solve").End()
	if !strings.Contains(a.String(), "solve") || !strings.Contains(b.String(), `"span":"solve"`) {
		t.Fatalf("fan-out missed a sink: text=%q jsonl=%q", a.String(), b.String())
	}
	// A single non-nil sink is returned unwrapped.
	ts := NewTextSink(&a)
	if got := MultiSink(nil, ts); got != Sink(ts) {
		t.Fatalf("MultiSink(single) = %T, want the sink itself", got)
	}
	// A failing member must not stop later members.
	var c bytes.Buffer
	reg.SetSink(MultiSink(NewJSONLSink(&failWriter{}), NewTextSink(&c)))
	reg.StartSpan("eval").End()
	if !strings.Contains(c.String(), "eval") {
		t.Fatalf("later sink starved by failing earlier sink: %q", c.String())
	}
}
