package harden

import (
	"math"
	"sort"
	"strings"
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/graph/graphtest"
	"seqavf/internal/stats"
	"seqavf/internal/sweep"
	"seqavf/internal/tinycore"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

// tinycoreSolved is the canonical small end-to-end source: tinycore
// running the MD5-like kernel, measured on the uarch performance model.
func tinycoreSolved(t testing.TB) (*core.Analyzer, *core.Result, *core.Inputs) {
	t.Helper()
	p := workload.MD5Like(60)
	fd, err := tinycore.FlatDesign(len(p.Code))
	if err != nil {
		t.Fatalf("FlatDesign: %v", err)
	}
	g, err := graph.Build(fd)
	if err != nil {
		t.Fatalf("graph.Build: %v", err)
	}
	a, err := core.NewAnalyzer(g, core.DefaultOptions())
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	perf, err := uarch.Run(p, uarch.DefaultConfig())
	if err != nil {
		t.Fatalf("uarch.Run: %v", err)
	}
	in, err := tinycore.BindInputs(perf.Report)
	if err != nil {
		t.Fatalf("BindInputs: %v", err)
	}
	res, err := a.Solve(in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return a, res, in
}

// solvedRand builds and solves one generated design under seeded random
// inputs.
func solvedRand(t testing.TB, cfg graphtest.Config, inputSeed uint64) (*core.Analyzer, *core.Result, *core.Inputs) {
	t.Helper()
	d, err := graphtest.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	a, err := core.NewAnalyzer(d.Graph, core.DefaultOptions())
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	in := randomInputs(a, inputSeed)
	res, err := a.Solve(in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return a, res, in
}

// randomInputs assigns seeded pAVFs to every structure port in sorted
// order, matching the sweep package's property-test idiom.
func randomInputs(a *core.Analyzer, seed uint64) *core.Inputs {
	rng := stats.New(seed)
	in := core.NewInputs()
	reads := a.ReadPortTerms()
	sort.Slice(reads, func(i, j int) bool {
		return reads[i].Struct < reads[j].Struct ||
			(reads[i].Struct == reads[j].Struct && reads[i].Port < reads[j].Port)
	})
	for _, sp := range reads {
		in.ReadPorts[sp] = rng.Float64()
	}
	writes := a.WritePortTerms()
	sort.Slice(writes, func(i, j int) bool {
		return writes[i].Struct < writes[j].Struct ||
			(writes[i].Struct == writes[j].Struct && writes[i].Port < writes[j].Port)
	})
	for _, sp := range writes {
		in.WritePorts[sp] = rng.Float64()
	}
	return in
}

func gainOf(m *Model, p *Protection) float64 {
	g := 0.0
	for _, c := range p.Chosen {
		g += c.Gain
	}
	return g
}

func chosenKeys(p *Protection) []string {
	keys := make([]string, len(p.Chosen))
	for i, c := range p.Chosen {
		keys[i] = c.Key
	}
	sort.Strings(keys)
	return keys
}

// TestNewModelTinycore pins the candidate set's shape: tinycore's eight
// architectural registers, bits summing to the summary's sequential bit
// count, gains summing to the total sequential AVF mass.
func TestNewModelTinycore(t *testing.T) {
	_, res, _ := tinycoreSolved(t)
	m, err := NewModel(res, nil)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	cands := m.Candidates()
	if len(cands) != 8 {
		t.Fatalf("tinycore has 8 sequential registers, model found %d: %+v", len(cands), cands)
	}
	bits, mass := 0, 0.0
	seen := make(map[string]bool)
	for _, c := range cands {
		if !strings.HasPrefix(c.Key, "CORE/") {
			t.Errorf("candidate key %q not under CORE/", c.Key)
		}
		if seen[c.Key] {
			t.Errorf("duplicate candidate %q", c.Key)
		}
		seen[c.Key] = true
		if c.Cost != float64(c.Bits) {
			t.Errorf("%s: default cost %v != bits %d", c.Key, c.Cost, c.Bits)
		}
		bits += c.Bits
		mass += c.Gain
	}
	if !seen["CORE/pc"] || !seen["CORE/halted"] {
		t.Errorf("expected CORE/pc and CORE/halted among candidates: %+v", cands)
	}
	sum := m.Base()
	if bits != sum.SeqBits {
		t.Errorf("candidate bits %d != summary SeqBits %d", bits, sum.SeqBits)
	}
	want := sum.WeightedSeqAVF * float64(sum.SeqBits)
	if math.Abs(mass-want) > 1e-9*math.Max(1, want) {
		t.Errorf("candidate AVF mass %v != chipAVF*N %v", mass, want)
	}
}

func TestNewModelCostErrors(t *testing.T) {
	_, res, _ := tinycoreSolved(t)
	cases := []struct {
		name  string
		costs map[string]float64
	}{
		{"unknown key", map[string]float64{"CORE/nope": 1}},
		{"zero cost", map[string]float64{"CORE/pc": 0}},
		{"negative cost", map[string]float64{"CORE/pc": -3}},
		{"nan cost", map[string]float64{"CORE/pc": math.NaN()}},
		{"inf cost", map[string]float64{"CORE/pc": math.Inf(1)}},
	}
	for _, tc := range cases {
		if _, err := NewModel(res, tc.costs); err == nil {
			t.Errorf("%s: NewModel accepted %v", tc.name, tc.costs)
		}
	}
	if _, err := NewModel(res, map[string]float64{"CORE/pc": 2.5}); err != nil {
		t.Errorf("valid cost table rejected: %v", err)
	}
}

// TestSolversAgreeTinycore is the acceptance criterion: on tinycore the
// greedy and DP protection sets match exhaustive enumeration. Under
// uniform costs density order equals gain order, so every budget point
// has a greedy-optimal answer and all three solvers must land on the
// same achieved gain (and, with distinct gains, the same set).
func TestSolversAgreeTinycore(t *testing.T) {
	_, res, _ := tinycoreSolved(t)
	uniform := make(map[string]float64)
	m0, err := NewModel(res, nil)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	for _, c := range m0.Candidates() {
		uniform[c.Key] = 1
	}
	m, err := NewModel(res, uniform)
	if err != nil {
		t.Fatalf("NewModel(uniform): %v", err)
	}
	for budget := 1.0; budget <= 8; budget++ {
		g, err := m.Optimize(budget, SolverGreedy)
		if err != nil {
			t.Fatalf("greedy(%v): %v", budget, err)
		}
		d, err := m.Optimize(budget, SolverDP)
		if err != nil {
			t.Fatalf("dp(%v): %v", budget, err)
		}
		x, err := m.Optimize(budget, SolverExhaustive)
		if err != nil {
			t.Fatalf("exhaustive(%v): %v", budget, err)
		}
		gg, gd, gx := gainOf(m, g), gainOf(m, d), gainOf(m, x)
		if math.Abs(gd-gx) > 1e-12 {
			t.Errorf("budget %v: dp gain %v != exhaustive gain %v", budget, gd, gx)
		}
		if math.Abs(gg-gx) > 1e-12 {
			t.Errorf("budget %v: greedy gain %v != exhaustive gain %v", budget, gg, gx)
		}
		kg, kd, kx := chosenKeys(g), chosenKeys(d), chosenKeys(x)
		if strings.Join(kg, ",") != strings.Join(kx, ",") {
			t.Errorf("budget %v: greedy chose %v, exhaustive chose %v", budget, kg, kx)
		}
		if strings.Join(kd, ",") != strings.Join(kx, ",") {
			t.Errorf("budget %v: dp chose %v, exhaustive chose %v", budget, kd, kx)
		}
		if len(x.Chosen) != int(budget) {
			t.Errorf("budget %v: expected %d chosen under uniform cost, got %d", budget, int(budget), len(x.Chosen))
		}
	}
}

// TestSolversAgreeDefaultCosts runs the same cross-check under the
// default bit-weighted costs: DP must equal exhaustive exactly (both are
// exact), greedy must stay within its 1/2 guarantee and, at full budget,
// reach the optimum too.
func TestSolversAgreeDefaultCosts(t *testing.T) {
	_, res, _ := tinycoreSolved(t)
	m, err := NewModel(res, nil)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	total := 0.0
	for _, c := range m.Candidates() {
		total += c.Cost
	}
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		budget := math.Round(total * frac)
		d, err := m.Optimize(budget, SolverDP)
		if err != nil {
			t.Fatalf("dp(%v): %v", budget, err)
		}
		x, err := m.Optimize(budget, SolverExhaustive)
		if err != nil {
			t.Fatalf("exhaustive(%v): %v", budget, err)
		}
		g, err := m.Optimize(budget, SolverGreedy)
		if err != nil {
			t.Fatalf("greedy(%v): %v", budget, err)
		}
		gd, gx, gg := gainOf(m, d), gainOf(m, x), gainOf(m, g)
		if math.Abs(gd-gx) > 1e-12 {
			t.Errorf("budget %v: dp gain %v != exhaustive gain %v", budget, gd, gx)
		}
		if gg < gx/2-1e-12 {
			t.Errorf("budget %v: greedy gain %v below half of optimal %v", budget, gg, gx)
		}
		if frac == 1.0 && math.Abs(gg-gx) > 1e-12 {
			t.Errorf("full budget: greedy gain %v != optimal %v", gg, gx)
		}
		if d.TotalCost > budget+1e-9 || x.TotalCost > budget+1e-9 || g.TotalCost > budget+1e-9 {
			t.Errorf("budget %v overspent: dp %v, exhaustive %v, greedy %v",
				budget, d.TotalCost, x.TotalCost, g.TotalCost)
		}
	}
}

// TestResidualBitConsistency is the other acceptance criterion: the
// reported residual chip AVF must be bit-identical to independently
// re-sweeping the design through the compiled plan, zeroing the hardened
// nodes' bits, and summarizing.
func TestResidualBitConsistency(t *testing.T) {
	a, res, in := tinycoreSolved(t)
	m, err := NewModel(res, nil)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	p, err := sweep.Compile(res)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	env, err := a.CheckedEnv(in)
	if err != nil {
		t.Fatalf("CheckedEnv: %v", err)
	}
	plan, err := m.Optimize(40, SolverExhaustive)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(plan.Chosen) == 0 {
		t.Fatal("budget 40 chose nothing")
	}
	// The independent path: blocked-kernel re-sweep, zero, Summarize.
	avf, err := evalEnvOnce(p, env)
	if err != nil {
		t.Fatalf("evalEnvOnce: %v", err)
	}
	for _, c := range plan.Chosen {
		ci := m.index[c.Key]
		for _, v := range m.verts[ci] {
			avf[v] = 0
		}
	}
	masked := *res
	masked.AVF = avf
	want := masked.Summarize().WeightedSeqAVF
	if plan.ResidualChipAVF != want {
		t.Errorf("residual chip AVF %v not bit-identical to re-sweep+zero+summarize %v (diff %g)",
			plan.ResidualChipAVF, want, plan.ResidualChipAVF-want)
	}
	if plan.ResidualChipAVF > plan.BaseChipAVF {
		t.Errorf("residual %v above base %v", plan.ResidualChipAVF, plan.BaseChipAVF)
	}
	if plan.ReductionFrac <= 0 || plan.ReductionFrac > 1 {
		t.Errorf("reduction fraction %v out of (0, 1]", plan.ReductionFrac)
	}
}

func TestOptimizeValidation(t *testing.T) {
	_, res, _ := tinycoreSolved(t)
	m, err := NewModel(res, nil)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), -1} {
		if _, err := m.Optimize(bad, SolverGreedy); err == nil {
			t.Errorf("Optimize accepted budget %v", bad)
		}
	}
	if _, err := m.Optimize(10, "anneal"); err == nil {
		t.Error("Optimize accepted unknown solver")
	}
	zero, err := m.Optimize(0, SolverAuto)
	if err != nil {
		t.Fatalf("Optimize(0): %v", err)
	}
	if len(zero.Chosen) != 0 || zero.ResidualChipAVF != zero.BaseChipAVF {
		t.Errorf("zero budget should protect nothing: %+v", zero)
	}
	// Auto prefers the exact DP when the table fits.
	p, err := m.Optimize(40, "")
	if err != nil {
		t.Fatalf("Optimize(auto): %v", err)
	}
	if p.Solver != SolverDP {
		t.Errorf("auto on tinycore picked %q, want dp", p.Solver)
	}
}

// TestSweepMonotone: more budget never hurts.
func TestSweepMonotone(t *testing.T) {
	_, res, _ := tinycoreSolved(t)
	m, err := NewModel(res, nil)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	plans, err := m.Sweep([]float64{10, 40, 80, 200}, SolverDP)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].ResidualChipAVF > plans[i-1].ResidualChipAVF+1e-12 {
			t.Errorf("budget %v residual %v worse than budget %v residual %v",
				plans[i].Budget, plans[i].ResidualChipAVF, plans[i-1].Budget, plans[i-1].ResidualChipAVF)
		}
	}
	last := plans[len(plans)-1]
	if last.ResidualChipAVF != 0 {
		t.Errorf("budget 200 covers all %d bits, residual should be 0, got %v", m.SeqBits(), last.ResidualChipAVF)
	}
}

func TestVectorCodecRoundTrip(t *testing.T) {
	v := &Vector{Fingerprint: 0xdeadbeef, EnvHash: 0x1234, SeqBits: 7, ChipAVF: 0.25,
		Deriv: []float64{0, 0.5, 0.125, 1}}
	got, err := DecodeVector(v.Encode())
	if err != nil {
		t.Fatalf("DecodeVector: %v", err)
	}
	if got.Fingerprint != v.Fingerprint || got.EnvHash != v.EnvHash ||
		got.SeqBits != v.SeqBits || got.ChipAVF != v.ChipAVF {
		t.Errorf("header round-trip mismatch: %+v vs %+v", got, v)
	}
	for i := range v.Deriv {
		if got.Deriv[i] != v.Deriv[i] {
			t.Errorf("deriv[%d] %v != %v", i, got.Deriv[i], v.Deriv[i])
		}
	}
	// Corruption must be detected, not trusted.
	enc := v.Encode()
	enc[len(enc)/2] ^= 0x40
	if _, err := DecodeVector(enc); err == nil {
		t.Error("DecodeVector accepted corrupted bytes")
	}
	if _, err := DecodeVector(enc[:10]); err == nil {
		t.Error("DecodeVector accepted truncated bytes")
	}
}

// memStore is an in-memory SensStore for cache-path tests.
type memStore struct {
	m    map[[2]uint64][]byte
	puts int
	gets int
}

func (s *memStore) GetSens(fp, eh uint64) ([]byte, error) {
	s.gets++
	return s.m[[2]uint64{fp, eh}], nil
}
func (s *memStore) PutSens(fp, eh uint64, data []byte) error {
	if s.m == nil {
		s.m = make(map[[2]uint64][]byte)
	}
	s.puts++
	s.m[[2]uint64{fp, eh}] = append([]byte(nil), data...)
	return nil
}

func TestCachedTermDerivs(t *testing.T) {
	a, res, in := tinycoreSolved(t)
	p, err := sweep.Compile(res)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	env, err := a.CheckedEnv(in)
	if err != nil {
		t.Fatalf("CheckedEnv: %v", err)
	}
	st := &memStore{}
	v1, hit, err := CachedTermDerivs(p, env, st)
	if err != nil {
		t.Fatalf("CachedTermDerivs: %v", err)
	}
	if hit {
		t.Error("first lookup reported a hit on an empty store")
	}
	if st.puts != 1 {
		t.Errorf("expected 1 put, got %d", st.puts)
	}
	v2, hit, err := CachedTermDerivs(p, env, st)
	if err != nil {
		t.Fatalf("CachedTermDerivs(2): %v", err)
	}
	if !hit {
		t.Error("second lookup missed")
	}
	for i := range v1.Deriv {
		if v1.Deriv[i] != v2.Deriv[i] {
			t.Fatalf("cached deriv[%d] %v != computed %v", i, v2.Deriv[i], v1.Deriv[i])
		}
	}
	if v1.Fingerprint != a.Fingerprint() || v1.EnvHash != EnvHash(env) {
		t.Errorf("vector key mismatch: %+v", v1)
	}
	// A corrupt cache entry degrades to a recompute and is overwritten.
	key := [2]uint64{a.Fingerprint(), EnvHash(env)}
	st.m[key] = []byte("garbage")
	_, hit, err = CachedTermDerivs(p, env, st)
	if err != nil || hit {
		t.Errorf("corrupt entry: hit=%v err=%v, want miss+recompute", hit, err)
	}
	if _, err := DecodeVector(st.m[key]); err != nil {
		t.Errorf("corrupt entry not overwritten by recompute: %v", err)
	}
}
