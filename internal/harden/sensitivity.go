// Term-level sensitivity analysis: ∂chipAVF/∂env[t] for every pAVF
// source term, answering "which measured port, control register, or
// loop boundary does the chip's vulnerability actually ride on?".
//
// On the symbolic form this is nearly free. Every sequential bit's AVF
// is MIN(min(1, Σ fwd terms), min(1, Σ bwd terms)): piecewise linear in
// every term value. Away from the kinks (a set sum crossing 1.0, the
// two MIN sides crossing each other) the derivative of one bit with
// respect to term t is exactly 1 when t belongs to the winning side's
// set and that set is uncapped, else 0. The compiled CSR plan already
// stores each distinct set once and maps vertices to (fwd, bwd) slots,
// so the whole gradient is one pass over the plan: count, per set, the
// sequential bits whose MIN it wins while uncapped, then scatter the
// counts to the set's terms. No finite differencing, no extra sweeps —
// O(vertices + plan terms) for the full gradient over every term at
// once.
//
// The finite-difference path (FDTermDerivs) exists to validate the
// analytical result and as the fallback for callers holding only a
// plan: each probed term becomes two extra lanes (env[t]±h) in an
// EnvMatrix, batched through the blocked EvalBlock kernel exactly like
// workloads.

package harden

import (
	"fmt"
	"math"
	"sort"

	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/netlist"
	"seqavf/internal/pavf"
	"seqavf/internal/sweep"
)

// TermSensitivity is one term's chip-AVF derivative, decorated for
// reporting.
type TermSensitivity struct {
	ID    pavf.TermID `json:"id"`
	Kind  string      `json:"kind"`
	Name  string      `json:"name"`
	Deriv float64     `json:"deriv"`
}

// seqVerts lists the sequential bit vertices of a design (the chip-AVF
// denominator's population).
func seqVerts(a *core.Analyzer) []graph.VertexID {
	var out []graph.VertexID
	for v := 0; v < a.G.NumVerts(); v++ {
		vx := &a.G.Verts[v]
		if vx.Node.Kind == netlist.KindSeq && a.Role(graph.VertexID(v)) != core.RoleDebug {
			out = append(out, graph.VertexID(v))
		}
	}
	return out
}

// chipAVF is the plain sequential mean of one AVF vector — the same
// quantity as core.Summary.WeightedSeqAVF (the per-FUB weighting cancels
// algebraically), which is all a derivative target needs.
func chipAVF(avf []float64, seq []graph.VertexID) float64 {
	if len(seq) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range seq {
		sum += avf[v]
	}
	return sum / float64(len(seq))
}

// TermDerivs computes the analytical gradient ∂chipAVF/∂env[t] for every
// term in the design's universe, from the compiled plan structure under
// env. At a kink (a set sum at exactly 1.0, or the two MIN sides exactly
// tied) the reported value is the kernel's right-continuation: a capped
// set contributes slope 0, a tie resolves to the forward side, matching
// how Plan.Eval breaks those ties.
func TermDerivs(p *sweep.Plan, env pavf.Env) ([]float64, error) {
	a := p.Analyzer
	if want := a.Universe().Len(); len(env) != want {
		return nil, fmt.Errorf("harden: env has %d terms but design %q has a universe of %d",
			len(env), a.G.Design.Name, want)
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	raw := p.Raw()
	nSets := p.NumSets()

	// Per-set capped sums, replaying the kernel's arithmetic (ascending
	// IDs, early break at >= 1) so "capped" means exactly what Eval saw.
	value := make([]float64, nSets)
	capped := make([]bool, nSets)
	for s := 0; s < nSets; s++ {
		sum := 0.0
		for _, id := range raw.SetIDs[raw.SetOff[s]:raw.SetOff[s+1]] {
			sum += env[id]
			if sum >= 1 {
				sum = 1
				capped[s] = true
				break
			}
		}
		value[s] = sum
	}

	// Count, per set, the sequential bits whose MIN it wins uncapped.
	seq := seqVerts(a)
	wins := make([]int64, nSets)
	for _, v := range seq {
		fi, bi := raw.FwdIdx[v], raw.BwdIdx[v]
		f, b := 1.0, 1.0
		if fi >= 0 {
			f = value[fi]
		}
		if bi >= 0 {
			b = value[bi]
		}
		// Kernel tie-break: the backward side wins only strictly (b < f).
		if b < f {
			if bi >= 0 && !capped[bi] {
				wins[bi]++
			}
		} else if fi >= 0 && !capped[fi] {
			wins[fi]++
		}
	}

	deriv := make([]float64, len(env))
	if len(seq) == 0 {
		return deriv, nil
	}
	n := float64(len(seq))
	for s := 0; s < nSets; s++ {
		if wins[s] == 0 {
			continue
		}
		w := float64(wins[s]) / n
		for _, id := range raw.SetIDs[raw.SetOff[s]:raw.SetOff[s+1]] {
			deriv[id] += w
		}
	}
	// Top is pinned to 1.0 by construction; it has no admissible
	// perturbation (Env.Validate requires Top == 1), so its slot reports
	// 0 regardless of membership. Sets containing Top are capped anyway.
	deriv[pavf.Top] = 0
	return deriv, nil
}

// TermSensitivities decorates TermDerivs with term identities, sorted by
// |deriv| descending (ID ascending on ties). Top is omitted.
func TermSensitivities(p *sweep.Plan, env pavf.Env) ([]TermSensitivity, error) {
	deriv, err := TermDerivs(p, env)
	if err != nil {
		return nil, err
	}
	return RankDerivs(p.Analyzer.Universe(), deriv), nil
}

// RankDerivs decorates a dense gradient (e.g. a cached Vector's Deriv)
// with term identities, sorted by |deriv| descending (ID ascending on
// ties). Top is omitted.
func RankDerivs(u *pavf.Universe, deriv []float64) []TermSensitivity {
	out := make([]TermSensitivity, 0, len(deriv)-1)
	for id := pavf.Top + 1; int(id) < len(deriv); id++ {
		t := u.Term(id)
		out = append(out, TermSensitivity{ID: id, Kind: t.Kind.String(), Name: t.Name, Deriv: deriv[id]})
	}
	sort.SliceStable(out, func(i, j int) bool {
		ai, aj := math.Abs(out[i].Deriv), math.Abs(out[j].Deriv)
		if ai != aj {
			return ai > aj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// evalEnvOnce runs the blocked kernel with a single lane — the raw AVF
// vector of one environment.
func evalEnvOnce(p *sweep.Plan, env pavf.Env) ([]float64, error) {
	var m sweep.EnvMatrix
	if err := m.ResetEnvs([]pavf.Env{env}); err != nil {
		return nil, err
	}
	avf := make([]float64, p.NumVerts())
	scratch := make([]float64, p.ScratchLen(1))
	if err := p.EvalBlock(&m, scratch, [][]float64{avf}); err != nil {
		return nil, err
	}
	return avf, nil
}

// FDTermDerivs estimates ∂chipAVF/∂env[t] for the given terms by central
// finite differences batched through the blocked kernel: each probed
// term contributes two lanes (env[t]+h and env[t]-h) to an EnvMatrix,
// evaluated blockSize lanes at a time (0 = sweep.DefaultBlockSize).
// Terms whose base value leaves no room for a symmetric step (env[t]
// outside [h, 1-h]) — including Top, which is pinned at 1 — report NaN.
func FDTermDerivs(p *sweep.Plan, env pavf.Env, ids []pavf.TermID, h float64, blockSize int) ([]float64, error) {
	a := p.Analyzer
	if want := a.Universe().Len(); len(env) != want {
		return nil, fmt.Errorf("harden: env has %d terms but design %q has a universe of %d",
			len(env), a.G.Design.Name, want)
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if !(h > 0) || h >= 0.5 {
		return nil, fmt.Errorf("harden: fd step %v must be in (0, 0.5)", h)
	}
	if blockSize <= 0 {
		blockSize = sweep.DefaultBlockSize
	}
	pairsPerBlock := blockSize / 2
	if pairsPerBlock < 1 {
		pairsPerBlock = 1
	}
	seq := seqVerts(a)
	out := make([]float64, len(ids))

	var m sweep.EnvMatrix
	var scratch []float64
	nv := p.NumVerts()
	var probe []int // indices into ids with an admissible step
	for start := 0; start < len(ids); start += pairsPerBlock {
		end := start + pairsPerBlock
		if end > len(ids) {
			end = len(ids)
		}
		probe = probe[:0]
		for i := start; i < end; i++ {
			id := ids[i]
			if int(id) < 0 || int(id) >= len(env) {
				return nil, fmt.Errorf("harden: fd term %d outside universe of %d", id, len(env))
			}
			if id == pavf.Top || env[id] < h || env[id] > 1-h {
				out[i] = math.NaN()
				continue
			}
			probe = append(probe, i)
		}
		if len(probe) == 0 {
			continue
		}
		envs := make([]pavf.Env, 0, 2*len(probe))
		for _, i := range probe {
			for _, sign := range []float64{1, -1} {
				e := make(pavf.Env, len(env))
				copy(e, env)
				e[ids[i]] += sign * h
				envs = append(envs, e)
			}
		}
		if err := m.ResetEnvs(envs); err != nil {
			return nil, err
		}
		if need := p.ScratchLen(len(envs)); len(scratch) < need {
			scratch = make([]float64, need)
		}
		buf := make([]float64, len(envs)*nv)
		lanes := make([][]float64, len(envs))
		for w := range lanes {
			lanes[w] = buf[w*nv : (w+1)*nv]
		}
		if err := p.EvalBlock(&m, scratch, lanes); err != nil {
			return nil, err
		}
		for k, i := range probe {
			plus := chipAVF(lanes[2*k], seq)
			minus := chipAVF(lanes[2*k+1], seq)
			out[i] = (plus - minus) / (2 * h)
		}
	}
	return out, nil
}
