// Sensitivity-vector caching. A term gradient depends only on the
// design (its fingerprint pins netlist + pAVF structure) and the
// environment it was evaluated under, so the pair (fingerprint,
// env-hash) is a complete cache key. The vector is encoded as a small
// self-describing CRC-checked artifact — the same defensive posture as
// the .sart codec, scaled down to one section — and stored through the
// SensStore interface so this package needs no dependency on the
// artifact store (which implements it with .sens files).

package harden

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"seqavf/internal/pavf"
	"seqavf/internal/sweep"
)

// SensStore persists sensitivity vectors keyed by (design fingerprint,
// environment hash). Get returns (nil, nil) on a miss. Implemented by
// *artifact.Store.
type SensStore interface {
	GetSens(fingerprint, envHash uint64) ([]byte, error)
	PutSens(fingerprint, envHash uint64, data []byte) error
}

// Vector is one cached term gradient.
type Vector struct {
	Fingerprint uint64
	EnvHash     uint64
	SeqBits     int
	ChipAVF     float64 // chip AVF at the gradient's base point
	Deriv       []float64
}

// EnvHash fingerprints an environment: FNV-1a over the raw float64 bits
// of every term value, in TermID order. Bit-exact — two envs hash equal
// only if every term value is identical.
func EnvHash(env pavf.Env) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	var b [8]byte
	for _, v := range env {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		for _, c := range b {
			h = (h ^ uint64(c)) * prime64
		}
	}
	return h
}

// Codec framing: magic, version, header fields, float64 payload, CRC32C
// over everything before the checksum. Deliberately tiny — a corrupt or
// version-skewed vector is recomputed, never trusted.
const (
	sensMagic   = "SQAVFSNS"
	sensVersion = 1
	// sensMaxTerms caps decode allocation so fuzzed/corrupt bytes fail
	// cleanly instead of attempting a huge slice.
	sensMaxTerms = 64 << 20
)

var sensTable = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes the vector.
func (v *Vector) Encode() []byte {
	buf := make([]byte, 0, len(sensMagic)+4+8+8+8+8+8+8*len(v.Deriv)+4)
	buf = append(buf, sensMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, sensVersion)
	buf = binary.LittleEndian.AppendUint64(buf, v.Fingerprint)
	buf = binary.LittleEndian.AppendUint64(buf, v.EnvHash)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(v.SeqBits))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.ChipAVF))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(v.Deriv)))
	for _, d := range v.Deriv {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, sensTable))
	return buf
}

// DecodeVector parses and checksum-verifies an encoded vector.
func DecodeVector(data []byte) (*Vector, error) {
	head := len(sensMagic) + 4 + 8 + 8 + 8 + 8 + 8
	if len(data) < head+4 {
		return nil, fmt.Errorf("harden: sensitivity vector truncated (%d bytes)", len(data))
	}
	if string(data[:len(sensMagic)]) != sensMagic {
		return nil, fmt.Errorf("harden: bad sensitivity vector magic")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, sensTable) != sum {
		return nil, fmt.Errorf("harden: sensitivity vector checksum mismatch")
	}
	off := len(sensMagic)
	if ver := binary.LittleEndian.Uint32(data[off:]); ver != sensVersion {
		return nil, fmt.Errorf("harden: sensitivity vector version %d, want %d: regenerate", ver, sensVersion)
	}
	off += 4
	v := &Vector{}
	v.Fingerprint = binary.LittleEndian.Uint64(data[off:])
	off += 8
	v.EnvHash = binary.LittleEndian.Uint64(data[off:])
	off += 8
	v.SeqBits = int(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	v.ChipAVF = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	n := binary.LittleEndian.Uint64(data[off:])
	off += 8
	if n > sensMaxTerms {
		return nil, fmt.Errorf("harden: sensitivity vector claims %d terms, cap is %d", n, sensMaxTerms)
	}
	if want := off + int(n)*8 + 4; len(data) != want {
		return nil, fmt.Errorf("harden: sensitivity vector is %d bytes, want %d for %d terms", len(data), want, n)
	}
	v.Deriv = make([]float64, n)
	for i := range v.Deriv {
		v.Deriv[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	return v, nil
}

// CachedTermDerivs computes the analytical term gradient under env,
// consulting store (if non-nil) first. Cache failures — store errors,
// corrupt or version-skewed bytes, a key collision on mismatched
// metadata — degrade to a recompute (and a fresh Put overwrites the bad
// entry); only an actual gradient-computation error is fatal. The
// returned hit flag feeds the harden.sens_cache_* metrics.
func CachedTermDerivs(p *sweep.Plan, env pavf.Env, store SensStore) (*Vector, bool, error) {
	fp := p.Analyzer.Fingerprint()
	eh := EnvHash(env)
	nTerms := p.Analyzer.Universe().Len()
	if store != nil {
		if data, err := store.GetSens(fp, eh); err == nil && data != nil {
			if v, err := DecodeVector(data); err == nil &&
				v.Fingerprint == fp && v.EnvHash == eh && len(v.Deriv) == nTerms {
				return v, true, nil
			}
		}
	}
	deriv, err := TermDerivs(p, env)
	if err != nil {
		return nil, false, err
	}
	seq := seqVerts(p.Analyzer)
	avf, err := evalEnvOnce(p, env)
	if err != nil {
		return nil, false, err
	}
	v := &Vector{
		Fingerprint: fp,
		EnvHash:     eh,
		SeqBits:     len(seq),
		ChipAVF:     chipAVF(avf, seq),
		Deriv:       deriv,
	}
	if store != nil {
		_ = store.PutSens(fp, eh, v.Encode()) // cache write failure degrades, never fails the request
	}
	return v, false, nil
}
