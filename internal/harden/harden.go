// Package harden is the selective-hardening optimizer: the mitigation
// planning scenario the paper's closed forms make analytical instead of
// simulation-bound.
//
// A solved design carries one closed-form AVF equation per sequential
// bit, so the effect of protecting (rad-hardening or parity-protecting)
// a flop register is computable without re-simulating anything: the
// register's bits stop contributing failures, and the chip AVF drops by
// exactly the AVF mass those bits carried. That turns "which flops do I
// harden under an area budget?" into a knapsack over per-node
// sensitivities — evaluated from an already-solved core.Result in one
// pass over the AVF vector.
//
// Two levels of sensitivity are computed:
//
//   - Node level (the optimizer's candidates): every sequential node
//     ("fub/node", the unit a hardened cell swap protects) with its AVF
//     mass — the sum of its bits' AVFs, i.e. N_seq · ∂chipAVF/∂(protect
//     node). Node masses are additive across disjoint nodes, so greedy
//     with lazy re-evaluation, an exact DP knapsack, and brute-force
//     enumeration all apply and can be cross-checked.
//   - Term level (diagnostics): ∂chipAVF/∂env[t] for every pAVF source
//     term, computed analytically from the compiled CSR plan structure
//     (see sensitivity.go) and validated against central finite
//     differences batched through the blocked EvalBlock kernel.
//
// Residual chip AVF is reported bit-consistently with re-sweeping the
// design and zeroing the hardened nodes' contributions: the masked
// summary replays core.Result.Summarize's exact accumulation over an AVF
// vector whose protected bits are 0.0, and a re-sweep through the
// compiled plan reproduces the unprotected bits bit-identically.
package harden

import (
	"fmt"
	"math"
	"sort"

	"seqavf/internal/core"
	"seqavf/internal/graph"
)

// Candidate is one protectable sequential node.
type Candidate struct {
	// Key identifies the node as "fub/node" — the same key
	// core.Result.SeqAVFByNode reports.
	Key string `json:"key"`
	// Bits counts the node's sequential bits (all are protected together:
	// hardening is a per-register cell swap, not per-bit).
	Bits int `json:"bits"`
	// Gain is the node's AVF mass: the sum of its bits' AVFs, the exact
	// reduction in Σ seq-bit AVF achieved by protecting it.
	Gain float64 `json:"gain"`
	// Cost is the hardening cost (area weight). Defaults to Bits;
	// override per node via the cost table.
	Cost float64 `json:"cost"`
}

// Density is the candidate's gain per unit cost — the greedy ranking key.
func (c Candidate) Density() float64 {
	if c.Cost <= 0 {
		return math.Inf(1)
	}
	return c.Gain / c.Cost
}

// Model holds the budgeted-protection problem for one solved design: the
// candidate set with gains and costs, plus the vertex index needed to
// compute residual summaries.
type Model struct {
	res   *core.Result
	cands []Candidate
	verts [][]graph.VertexID // per candidate, its sequential bit vertices
	index map[string]int     // key → candidate index
	base  core.Summary
}

// NewModel builds the protection model from a solved (or swept) result.
// costs overrides per-node hardening costs by "fub/node" key; a key that
// names no sequential node of the design is an error (a silently ignored
// typo would mis-price the plan), as is a non-positive or non-finite
// cost.
func NewModel(res *core.Result, costs map[string]float64) (*Model, error) {
	a := res.Analyzer
	n := a.G.NumVerts()
	if len(res.AVF) != n {
		return nil, fmt.Errorf("harden: result holds %d AVFs but design %q has %d vertices",
			len(res.AVF), a.G.Design.Name, n)
	}
	m := &Model{res: res, index: make(map[string]int)}
	for v := 0; v < n; v++ {
		if !res.IsSequentialBit(graph.VertexID(v)) {
			continue
		}
		vx := &a.G.Verts[v]
		key := a.G.FubNames[vx.Fub] + "/" + vx.Node.Name
		ci, ok := m.index[key]
		if !ok {
			ci = len(m.cands)
			m.index[key] = ci
			m.cands = append(m.cands, Candidate{Key: key})
			m.verts = append(m.verts, nil)
		}
		m.cands[ci].Bits++
		m.cands[ci].Gain += res.AVF[v]
		m.verts[ci] = append(m.verts[ci], graph.VertexID(v))
	}
	for i := range m.cands {
		m.cands[i].Cost = float64(m.cands[i].Bits)
	}
	for key, c := range costs {
		ci, ok := m.index[key]
		if !ok {
			return nil, fmt.Errorf("harden: cost table names unknown sequential node %q", key)
		}
		if !(c > 0) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("harden: cost for %q is %v, must be finite and positive", key, c)
		}
		m.cands[ci].Cost = c
	}
	m.base = res.Summarize()
	return m, nil
}

// Candidates returns the candidate set in vertex order (FUB-contiguous,
// deterministic). The slice is the model's own; treat it as read-only.
func (m *Model) Candidates() []Candidate { return m.cands }

// Base returns the unprotected design-wide summary.
func (m *Model) Base() core.Summary { return m.base }

// SeqBits returns the number of protectable sequential bits.
func (m *Model) SeqBits() int { return m.base.SeqBits }

// Residual computes the design-wide summary with the chosen candidates'
// bits protected — their AVF contributions zeroed.
//
// The result is bit-consistent with re-sweeping the design under the
// same environment and then zeroing the hardened bits: the compiled plan
// reproduces every unprotected bit's AVF bit-identically (the sweep
// engine's bit-identity property), the protected bits are exactly 0.0 in
// both, and the summary below is core.Result.Summarize itself — the same
// accumulation order over the same values.
func (m *Model) Residual(chosen []int) core.Summary {
	avf := make([]float64, len(m.res.AVF))
	copy(avf, m.res.AVF)
	for _, ci := range chosen {
		for _, v := range m.verts[ci] {
			avf[v] = 0
		}
	}
	masked := *m.res
	masked.AVF = avf
	return masked.Summarize()
}

// marginalGain returns the AVF mass removed by additionally protecting
// candidate ci given the bits already protected. Candidates partition
// the sequential bits, so with disjoint nodes this equals the cached
// Gain; the recomputation is what makes the greedy's lazy re-evaluation
// honest (and keeps it correct if overlapping candidate sets ever
// appear).
func (m *Model) marginalGain(ci int, protected []bool) float64 {
	g := 0.0
	for _, v := range m.verts[ci] {
		if !protected[v] {
			g += m.res.AVF[v]
		}
	}
	return g
}

// Protection is one budget point's plan: the selected nodes ranked by
// gain density, with the residual chip AVF after hardening them.
type Protection struct {
	Budget float64 `json:"budget"`
	// Solver names the algorithm that produced the selection ("greedy",
	// "dp", or "exhaustive").
	Solver string `json:"solver"`
	// Chosen lists the protected nodes, ranked by gain/cost density
	// (descending).
	Chosen    []Candidate `json:"chosen"`
	TotalCost float64     `json:"total_cost"`
	// BaseChipAVF and ResidualChipAVF are the design-wide weighted
	// sequential AVF before and after hardening.
	BaseChipAVF     float64 `json:"base_chip_avf"`
	ResidualChipAVF float64 `json:"residual_chip_avf"`
	// ReductionFrac is 1 - residual/base: the fraction of chip AVF (and,
	// at constant raw FIT per bit, of the sequential FIT rate) removed.
	ReductionFrac float64 `json:"reduction_frac"`
}

// finishProtection assembles the report for a chosen index set.
func (m *Model) finishProtection(budget float64, solver string, chosen []int) *Protection {
	p := &Protection{
		Budget:      budget,
		Solver:      solver,
		Chosen:      make([]Candidate, 0, len(chosen)),
		BaseChipAVF: m.base.WeightedSeqAVF,
	}
	for _, ci := range chosen {
		p.Chosen = append(p.Chosen, m.cands[ci])
		p.TotalCost += m.cands[ci].Cost
	}
	sort.SliceStable(p.Chosen, func(i, j int) bool {
		di, dj := p.Chosen[i].Density(), p.Chosen[j].Density()
		if di != dj {
			return di > dj
		}
		return p.Chosen[i].Key < p.Chosen[j].Key
	})
	p.ResidualChipAVF = m.Residual(chosen).WeightedSeqAVF
	if p.BaseChipAVF > 0 {
		p.ReductionFrac = 1 - p.ResidualChipAVF/p.BaseChipAVF
	}
	return p
}
