// Wire types for POST /v1/harden and cmd/hardentool: a strict JSON
// request parser (unknown fields, non-finite numbers, and out-of-range
// budgets are rejected with field-level errors — the fuzz target's
// contract) and the response shape both ends share.

package harden

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

const (
	// MaxBudgets bounds one request's budget sweep; a bigger sweep
	// belongs in multiple requests (and the gateway fans even these out).
	MaxBudgets = 64
	// MaxTopTerms bounds the term-sensitivity report length.
	MaxTopTerms = 10000
)

// Workload is one named pAVF environment in a harden request, in the
// same inline text format /v1/sweep accepts.
type Workload struct {
	Name string `json:"name"`
	PAVF string `json:"pavf"`
}

// Request is the body of POST /v1/harden.
type Request struct {
	// Design names a loaded design.
	Design string `json:"design"`
	// Workloads are optional; with none, the optimizer runs on the
	// design's solved (neutral-input) result. With several, node gains
	// are computed on the mean AVF across workloads.
	Workloads []Workload `json:"workloads,omitempty"`
	// Budgets are the protection budget points to solve, in cost units
	// (default cost: bits). Each must be finite and positive.
	Budgets []float64 `json:"budgets"`
	// Solver is "auto" (default), "greedy", "dp", or "exhaustive".
	Solver string `json:"solver,omitempty"`
	// Costs overrides per-node hardening costs by "fub/node" key.
	Costs map[string]float64 `json:"costs,omitempty"`
	// TopTerms asks for the N most sensitive pAVF terms (0 = omit).
	TopTerms int `json:"top_terms,omitempty"`
}

// ParseRequest decodes and validates a harden request body.
func ParseRequest(data []byte) (*Request, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Request
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("harden: parse request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("harden: parse request: trailing data after JSON object")
	}
	if r.Design == "" {
		return nil, fmt.Errorf("harden: request missing design name")
	}
	if len(r.Budgets) == 0 {
		return nil, fmt.Errorf("harden: request has no budgets")
	}
	if len(r.Budgets) > MaxBudgets {
		return nil, fmt.Errorf("harden: request has %d budgets, cap is %d", len(r.Budgets), MaxBudgets)
	}
	for i, b := range r.Budgets {
		if math.IsNaN(b) || math.IsInf(b, 0) || b <= 0 {
			return nil, fmt.Errorf("harden: budget[%d] is %v, must be finite and positive", i, b)
		}
	}
	if !ValidSolver(r.Solver) {
		return nil, fmt.Errorf("harden: unknown solver %q (want auto, greedy, dp, or exhaustive)", r.Solver)
	}
	for key, c := range r.Costs {
		if math.IsNaN(c) || math.IsInf(c, 0) || c <= 0 {
			return nil, fmt.Errorf("harden: cost for %q is %v, must be finite and positive", key, c)
		}
	}
	if r.TopTerms < 0 || r.TopTerms > MaxTopTerms {
		return nil, fmt.Errorf("harden: top_terms %d out of range [0, %d]", r.TopTerms, MaxTopTerms)
	}
	for i, w := range r.Workloads {
		if w.Name == "" {
			return nil, fmt.Errorf("harden: workload[%d] missing name", i)
		}
		if w.PAVF == "" {
			return nil, fmt.Errorf("harden: workload %q has an empty pavf table", w.Name)
		}
	}
	return &r, nil
}

// Response is the body returned by POST /v1/harden.
type Response struct {
	Design    string   `json:"design"`
	Workloads []string `json:"workloads,omitempty"`
	// SeqBits is the protectable sequential bit count.
	SeqBits int `json:"seq_bits"`
	// Candidates is the number of protectable nodes.
	Candidates  int     `json:"candidates"`
	BaseChipAVF float64 `json:"base_chip_avf"`
	// SensCache reports whether the term-sensitivity vector came from the
	// artifact store ("hit"), was computed ("miss"), or wasn't requested
	// ("").
	SensCache string `json:"sens_cache,omitempty"`
	// Plans holds one protection plan per requested budget, in order.
	Plans []*Protection `json:"plans"`
	// TopTerms, when requested, ranks pAVF terms by |∂chipAVF/∂term|.
	TopTerms  []TermSensitivity `json:"top_terms,omitempty"`
	ElapsedMS float64           `json:"elapsed_ms"`
}
