package harden

import (
	"math"
	"testing"

	"seqavf/internal/graph/graphtest"
	"seqavf/internal/pavf"
	"seqavf/internal/sweep"
)

// TestPropertySensitivityMatchesFD: on 100 seeded random layered DAGs,
// the analytical term gradient matches central finite differences
// batched through the blocked kernel. AVF is piecewise linear in every
// term, so away from kinks the FD quotient is exact up to rounding/(2h);
// terms within the guard band of a kink — a set sum near 1.0, or a
// vertex's two MIN sides nearly tied — are skipped, since there the
// two-sided quotient straddles a slope change and neither value is
// "the" derivative.
func TestPropertySensitivityMatchesFD(t *testing.T) {
	const (
		h     = 1e-4
		guard = 4 * h
		tol   = 1e-6
	)
	checked, skipped, nonzero := 0, 0, 0
	for seed := uint64(0); seed < 100; seed++ {
		a, res, in := solvedRand(t, graphtest.Small(seed), seed^0xfd)
		p, err := sweep.Compile(res)
		if err != nil {
			t.Fatalf("seed %d: Compile: %v", seed, err)
		}
		env, err := a.CheckedEnv(in)
		if err != nil {
			t.Fatalf("seed %d: CheckedEnv: %v", seed, err)
		}
		analytic, err := TermDerivs(p, env)
		if err != nil {
			t.Fatalf("seed %d: TermDerivs: %v", seed, err)
		}

		// Build the kink guard from the same plan structure the
		// analytical pass reads: a term is testable only if no set
		// containing it has a raw (uncapped) sum within the guard band of
		// 1.0, and no vertex referencing it has its two MIN sides within
		// the band of each other.
		raw := p.Raw()
		nSets := p.NumSets()
		rawSum := make([]float64, nSets)
		capVal := make([]float64, nSets)
		for s := 0; s < nSets; s++ {
			sum := 0.0
			for _, id := range raw.SetIDs[raw.SetOff[s]:raw.SetOff[s+1]] {
				sum += env[id]
			}
			rawSum[s] = sum
			capVal[s] = math.Min(1, sum)
		}
		unsafe := make([]bool, len(env))
		markSet := func(s int32) {
			for _, id := range raw.SetIDs[raw.SetOff[s]:raw.SetOff[s+1]] {
				unsafe[id] = true
			}
		}
		for s := int32(0); s < int32(nSets); s++ {
			if math.Abs(rawSum[s]-1) <= guard {
				markSet(s)
			}
		}
		// A MIN tie is only a kink if the two sides are *different* sets
		// (min(x, x) = x is kink-free; plan dedup makes shared slots
		// common) and at least one side can move under a ±h perturbation:
		// a side whose raw sum clears 1+guard is pinned flat at 1, so two
		// such sides tying (the both-sides-saturated case) is harmless —
		// slope 0 everywhere.
		movable := func(s int32) bool { return s >= 0 && rawSum[s] < 1+guard }
		for v := 0; v < p.NumVerts(); v++ {
			fi, bi := raw.FwdIdx[v], raw.BwdIdx[v]
			if fi == bi {
				continue
			}
			f, b := 1.0, 1.0
			if fi >= 0 {
				f = capVal[fi]
			}
			if bi >= 0 {
				b = capVal[bi]
			}
			if math.Abs(f-b) <= guard && (movable(fi) || movable(bi)) {
				if fi >= 0 {
					markSet(fi)
				}
				if bi >= 0 {
					markSet(bi)
				}
			}
		}

		ids := make([]pavf.TermID, 0, len(env))
		for id := range env {
			ids = append(ids, pavf.TermID(id))
		}
		fd, err := FDTermDerivs(p, env, ids, h, 0)
		if err != nil {
			t.Fatalf("seed %d: FDTermDerivs: %v", seed, err)
		}
		for i, id := range ids {
			if math.IsNaN(fd[i]) {
				skipped++ // no admissible symmetric step (Top, or value near 0/1)
				continue
			}
			if unsafe[id] {
				skipped++
				continue
			}
			checked++
			if analytic[id] != 0 {
				nonzero++
			}
			if diff := math.Abs(analytic[id] - fd[i]); diff > tol {
				t.Errorf("seed %d term %d (%s): analytic %v, fd %v (diff %g)",
					seed, id, a.Universe().Term(id).Name, analytic[id], fd[i], diff)
			}
		}
	}
	// Most skips are structural, not guard-driven: pseudo-port and
	// control terms sit pinned at env=1 with no admissible symmetric
	// step. The floors below keep the test honest — plenty of probes,
	// including genuinely sloped ones.
	if checked < 300 || nonzero < 50 {
		t.Fatalf("property checked only %d term derivatives (%d nonzero, %d skipped) — guard too aggressive",
			checked, nonzero, skipped)
	}
	t.Logf("checked %d term derivatives (%d nonzero), skipped %d at kinks/pins", checked, nonzero, skipped)
}

// TestPropertySolversMatchExhaustive: on random small designs, the DP
// knapsack always matches brute-force enumeration, and greedy matches it
// under uniform costs (where density order is gain order) while holding
// its 1/2 guarantee under bit-weighted costs.
func TestPropertySolversMatchExhaustive(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		_, res, _ := solvedRand(t, graphtest.Small(seed+500), seed^0x9e37)
		m, err := NewModel(res, nil)
		if err != nil {
			t.Fatalf("seed %d: NewModel: %v", seed, err)
		}
		n := len(m.Candidates())
		if n == 0 || n > maxExhaustive {
			continue
		}
		total := 0.0
		uniform := make(map[string]float64, n)
		for _, c := range m.Candidates() {
			total += c.Cost
			uniform[c.Key] = 1
		}
		for _, frac := range []float64{0.2, 0.5, 0.8} {
			budget := math.Round(total * frac)
			d, err := m.Optimize(budget, SolverDP)
			if err != nil {
				t.Fatalf("seed %d: dp(%v): %v", seed, budget, err)
			}
			x, err := m.Optimize(budget, SolverExhaustive)
			if err != nil {
				t.Fatalf("seed %d: exhaustive(%v): %v", seed, budget, err)
			}
			g, err := m.Optimize(budget, SolverGreedy)
			if err != nil {
				t.Fatalf("seed %d: greedy(%v): %v", seed, budget, err)
			}
			gd, gx, gg := gainOf(m, d), gainOf(m, x), gainOf(m, g)
			if math.Abs(gd-gx) > 1e-12 {
				t.Errorf("seed %d budget %v: dp gain %v != exhaustive %v", seed, budget, gd, gx)
			}
			if gg < gx/2-1e-12 {
				t.Errorf("seed %d budget %v: greedy gain %v below half of optimal %v", seed, budget, gg, gx)
			}
			if d.ResidualChipAVF != m.Residual(chosenIdx(m, d)).WeightedSeqAVF {
				t.Errorf("seed %d budget %v: dp residual not reproducible", seed, budget)
			}
		}
		mu, err := NewModel(res, uniform)
		if err != nil {
			t.Fatalf("seed %d: NewModel(uniform): %v", seed, err)
		}
		for _, budget := range []float64{1, math.Floor(float64(n) / 2), float64(n)} {
			g, err := mu.Optimize(budget, SolverGreedy)
			if err != nil {
				t.Fatalf("seed %d: greedy(%v): %v", seed, budget, err)
			}
			x, err := mu.Optimize(budget, SolverExhaustive)
			if err != nil {
				t.Fatalf("seed %d: exhaustive(%v): %v", seed, budget, err)
			}
			if gg, gx := gainOf(mu, g), gainOf(mu, x); math.Abs(gg-gx) > 1e-12 {
				t.Errorf("seed %d uniform budget %v: greedy gain %v != exhaustive %v", seed, budget, gg, gx)
			}
		}
	}
}

func chosenIdx(m *Model, p *Protection) []int {
	out := make([]int, len(p.Chosen))
	for i, c := range p.Chosen {
		out[i] = m.index[c.Key]
	}
	return out
}
