package harden

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzParseHardenRequest: whatever bytes arrive, ParseRequest either
// rejects with an error or returns a request whose every numeric field
// is finite, positive, and within caps — the invariant the optimizer
// and the cost table rely on (NaN/Inf budgets would poison every
// comparison downstream).
func FuzzParseHardenRequest(f *testing.F) {
	f.Add([]byte(`{"design":"d","budgets":[10,20],"solver":"greedy"}`))
	f.Add([]byte(`{"design":"d","budgets":[1],"costs":{"CORE/pc":2.5},"top_terms":5}`))
	f.Add([]byte(`{"design":"d","budgets":[1],"workloads":[{"name":"w0","pavf":"G0R0.rd 0.5\n"}]}`))
	f.Add([]byte(`{"design":"","budgets":[]}`))
	f.Add([]byte(`{"design":"d","budgets":[null]}`))
	f.Add([]byte(`{"design":"d","budgets":[-1]}`))
	f.Add([]byte(`{"design":"d","budgets":[1e309]}`))
	f.Add([]byte(`{"design":"d","budgets":[1],"solver":"anneal"}`))
	f.Add([]byte(`{"design":"d","budgets":[1]} trailing`))
	f.Add([]byte(`{"design":"d","budgets":[1],"unknown_field":true}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ParseRequest(data)
		if err != nil {
			if r != nil {
				t.Fatalf("error %v returned alongside a request", err)
			}
			return
		}
		if r.Design == "" {
			t.Fatal("accepted request with empty design")
		}
		if len(r.Budgets) == 0 || len(r.Budgets) > MaxBudgets {
			t.Fatalf("accepted %d budgets", len(r.Budgets))
		}
		for _, b := range r.Budgets {
			if math.IsNaN(b) || math.IsInf(b, 0) || b <= 0 {
				t.Fatalf("accepted budget %v", b)
			}
		}
		if !ValidSolver(r.Solver) {
			t.Fatalf("accepted solver %q", r.Solver)
		}
		for k, c := range r.Costs {
			if math.IsNaN(c) || math.IsInf(c, 0) || c <= 0 {
				t.Fatalf("accepted cost %q=%v", k, c)
			}
		}
		if r.TopTerms < 0 || r.TopTerms > MaxTopTerms {
			t.Fatalf("accepted top_terms %d", r.TopTerms)
		}
		for i, w := range r.Workloads {
			if w.Name == "" || w.PAVF == "" {
				t.Fatalf("accepted workload[%d] with empty name or table", i)
			}
		}
		// Accepted requests re-marshal and re-parse to the same thing.
		enc, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if _, err := ParseRequest(enc); err != nil {
			t.Fatalf("round-trip re-parse failed: %v\n%s", err, enc)
		}
	})
}
