// The budgeted-protection solvers. Node gains are additive (candidates
// partition the sequential bits), so the problem is a 0/1 knapsack:
// maximize removed AVF mass subject to Σ cost ≤ budget.
//
//   - "greedy": density-ordered greedy with lazy re-evaluation (CELF):
//     marginal gains are recomputed against the current selection when an
//     entry surfaces, and a stale entry is pushed back rather than
//     trusted. With disjoint nodes the recomputed gain equals the cached
//     one, but the structure is what keeps the solver correct under
//     overlapping candidate sets. The classic best-single-item
//     refinement gives the standard 1/2-approximation guarantee.
//   - "dp": exact dynamic-programming knapsack over integer-quantized
//     costs — the right answer for small designs, refused (or skipped by
//     "auto") when the DP table would not fit.
//   - "exhaustive": brute-force subset enumeration, exponential; the
//     oracle the property tests check the other two against.

package harden

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Solver names accepted by Optimize. SolverAuto picks DP when the
// quantized table fits (exact beats approximate when affordable) and
// greedy otherwise.
const (
	SolverAuto       = "auto"
	SolverGreedy     = "greedy"
	SolverDP         = "dp"
	SolverExhaustive = "exhaustive"
)

// ValidSolver reports whether name is an accepted solver ("" = auto).
func ValidSolver(name string) bool {
	switch name {
	case "", SolverAuto, SolverGreedy, SolverDP, SolverExhaustive:
		return true
	}
	return false
}

const (
	// maxDPCells bounds the DP decision table (n · (W+1) booleans):
	// past this the knapsack is no longer "small" and greedy takes over.
	maxDPCells = 64 << 20
	// maxExhaustive bounds brute-force enumeration to 2^22 subsets.
	maxExhaustive = 22
)

// Optimize solves one budget point. budget must be finite and
// non-negative (a zero budget yields an empty plan).
func (m *Model) Optimize(budget float64, solver string) (*Protection, error) {
	if math.IsNaN(budget) || math.IsInf(budget, 0) || budget < 0 {
		return nil, fmt.Errorf("harden: budget %v must be finite and non-negative", budget)
	}
	switch solver {
	case "", SolverAuto:
		if _, ok := m.dpScale(budget); ok {
			solver = SolverDP
		} else {
			solver = SolverGreedy
		}
	case SolverGreedy, SolverDP, SolverExhaustive:
	default:
		return nil, fmt.Errorf("harden: unknown solver %q (want auto, greedy, dp, or exhaustive)", solver)
	}
	var chosen []int
	var err error
	switch solver {
	case SolverGreedy:
		chosen = m.greedy(budget)
	case SolverDP:
		chosen, err = m.knapsackDP(budget)
	case SolverExhaustive:
		chosen, err = m.exhaustive(budget)
	}
	if err != nil {
		return nil, err
	}
	return m.finishProtection(budget, solver, chosen), nil
}

// Sweep solves every budget point with one shared model — the budget
// sweep the CLI and the /v1/harden endpoint expose, and the fan-out unit
// the gateway splits across the fleet.
func (m *Model) Sweep(budgets []float64, solver string) ([]*Protection, error) {
	out := make([]*Protection, len(budgets))
	for i, b := range budgets {
		p, err := m.Optimize(b, solver)
		if err != nil {
			return nil, fmt.Errorf("harden: budget %v: %w", b, err)
		}
		out[i] = p
	}
	return out, nil
}

// lazyEntry is one candidate in the greedy's priority queue.
type lazyEntry struct {
	idx   int
	gain  float64 // marginal gain when last evaluated
	round int     // selection round the gain was evaluated in
}

type lazyQueue struct {
	entries []lazyEntry
	cands   []Candidate
}

func (q *lazyQueue) Len() int { return len(q.entries) }
func (q *lazyQueue) Less(i, j int) bool {
	a, b := q.entries[i], q.entries[j]
	da, db := a.gain/q.cands[a.idx].Cost, b.gain/q.cands[b.idx].Cost
	if da != db {
		return da > db
	}
	// Deterministic tie-break: candidate order (vertex order).
	return a.idx < b.idx
}
func (q *lazyQueue) Swap(i, j int) { q.entries[i], q.entries[j] = q.entries[j], q.entries[i] }
func (q *lazyQueue) Push(x any)    { q.entries = append(q.entries, x.(lazyEntry)) }
func (q *lazyQueue) Pop() any {
	old := q.entries
	n := len(old)
	x := old[n-1]
	q.entries = old[:n-1]
	return x
}

// greedy is density-ordered selection with lazy re-evaluation: the top
// entry's marginal gain is recomputed against the current selection
// when its cached value is stale; if it no longer dominates the next
// entry it is re-queued instead of selected. Entries that exceed the
// remaining budget are dropped and the scan continues with smaller
// candidates. The best single affordable item is kept as a fallback —
// the refinement that upgrades density-greedy to the standard knapsack
// 1/2-approximation.
func (m *Model) greedy(budget float64) []int {
	q := &lazyQueue{cands: m.cands}
	bestSingle, bestSingleGain := -1, 0.0
	for i, c := range m.cands {
		if c.Cost <= 0 || c.Gain <= 0 {
			continue
		}
		if c.Cost <= budget {
			q.entries = append(q.entries, lazyEntry{idx: i, gain: c.Gain})
			if c.Gain > bestSingleGain {
				bestSingle, bestSingleGain = i, c.Gain
			}
		}
	}
	heap.Init(q)

	protected := make([]bool, len(m.res.AVF))
	var chosen []int
	total := 0.0
	remaining, round := budget, 0
	for q.Len() > 0 {
		e := heap.Pop(q).(lazyEntry)
		if m.cands[e.idx].Cost > remaining {
			continue
		}
		if e.round != round {
			e.gain = m.marginalGain(e.idx, protected)
			e.round = round
			if e.gain <= 0 {
				continue
			}
			if q.Len() > 0 {
				top := q.entries[0]
				if e.gain/m.cands[e.idx].Cost < top.gain/m.cands[top.idx].Cost {
					heap.Push(q, e)
					continue
				}
			}
		}
		chosen = append(chosen, e.idx)
		total += e.gain
		remaining -= m.cands[e.idx].Cost
		for _, v := range m.verts[e.idx] {
			protected[v] = true
		}
		round++
	}
	if bestSingle >= 0 && bestSingleGain > total {
		return []int{bestSingle}
	}
	return chosen
}

// dpScale finds an integer quantization for the DP knapsack: the
// smallest power-of-ten scale under which every candidate cost and the
// budget are integral (within rounding slop), subject to the DP table
// fitting in maxDPCells. Returns ok=false when no such scale exists —
// irrational-ish costs or a table too big — in which case "auto" uses
// greedy and an explicit "dp" request is refused.
func (m *Model) dpScale(budget float64) (float64, bool) {
	for _, scale := range []float64{1, 10, 100, 1000} {
		ok := true
		if r := budget * scale; math.Abs(r-math.Round(r)) > 1e-6 {
			ok = false
		}
		for _, c := range m.cands {
			if r := c.Cost * scale; math.Abs(r-math.Round(r)) > 1e-6 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		w := int64(math.Round(budget * scale))
		if cells := int64(len(m.cands)) * (w + 1); cells > maxDPCells {
			return 0, false // larger scales only grow the table
		}
		return scale, true
	}
	return 0, false
}

// knapsackDP is the exact 0/1 knapsack over integer-quantized costs,
// with full decision-table reconstruction of the chosen set.
func (m *Model) knapsackDP(budget float64) ([]int, error) {
	scale, ok := m.dpScale(budget)
	if !ok {
		return nil, fmt.Errorf("harden: dp solver needs integer-quantizable costs and a table under %d cells (budget %v, %d candidates); use greedy",
			maxDPCells, budget, len(m.cands))
	}
	w := int(math.Round(budget * scale))
	costs := make([]int, len(m.cands))
	for i, c := range m.cands {
		costs[i] = int(math.Round(c.Cost * scale))
	}
	dp := make([]float64, w+1)
	take := make([]bool, len(m.cands)*(w+1))
	for i, c := range m.cands {
		if c.Gain <= 0 || costs[i] == 0 || costs[i] > w {
			continue
		}
		row := take[i*(w+1) : (i+1)*(w+1)]
		for cap := w; cap >= costs[i]; cap-- {
			if v := dp[cap-costs[i]] + c.Gain; v > dp[cap] {
				dp[cap] = v
				row[cap] = true
			}
		}
	}
	var chosen []int
	cap := w
	for i := len(m.cands) - 1; i >= 0; i-- {
		if take[i*(w+1)+cap] {
			chosen = append(chosen, i)
			cap -= costs[i]
		}
	}
	sort.Ints(chosen)
	return chosen, nil
}

// exhaustive enumerates every subset — the test oracle. Deterministic:
// a subset wins only with strictly greater gain, or equal gain at
// strictly lower cost, so the first optimum in enumeration order is
// kept.
func (m *Model) exhaustive(budget float64) ([]int, error) {
	n := len(m.cands)
	if n > maxExhaustive {
		return nil, fmt.Errorf("harden: exhaustive solver caps at %d candidates, design has %d", maxExhaustive, n)
	}
	bestMask := uint64(0)
	bestGain, bestCost := 0.0, 0.0
	for mask := uint64(0); mask < 1<<n; mask++ {
		gain, cost := 0.0, 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				gain += m.cands[i].Gain
				cost += m.cands[i].Cost
			}
		}
		if cost > budget {
			continue
		}
		if gain > bestGain || (gain == bestGain && cost < bestCost) {
			bestMask, bestGain, bestCost = mask, gain, cost
		}
	}
	var chosen []int
	for i := 0; i < n; i++ {
		if bestMask&(1<<i) != 0 {
			chosen = append(chosen, i)
		}
	}
	return chosen, nil
}
