package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements the textual netlist format, our stand-in for the
// paper's EXLIF intermediate RTL files. The format is line based:
//
//	design <name>
//	structure <name> <entries> <width>
//	module <name>
//	  input  <name> <width>
//	  output <name> <width> = <driver>
//	  const  <name> <width> <value>
//	  seq    <name> <width> = <d> [en=<sig>] [init=<v>] [clock=<c>] [class=<cls>]
//	  comb   <name> <width> <op> <in>... [param=<k>]
//	  sread  <name> <width> <struct> <port> [<addr>...]
//	  swrite <name> <struct> <port> <data> [<addr>...]
//	  inst   <name> <module> <port>=<signal>...
//	endmodule
//	top <fub> <module>
//	connect <fub>.<port> -> <fub>.<port>
//
// '#' starts a comment; blank lines are ignored.

// Parse reads a design in the textual format.
func Parse(r io.Reader) (*Design, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var d *Design
	var cur *Module
	lineNo := 0
	fail := func(format string, args ...any) error {
		return fmt.Errorf("netlist: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		kw, args := fields[0], fields[1:]
		if d == nil && kw != "design" {
			return nil, fail("file must start with a design line")
		}
		switch kw {
		case "design":
			if d != nil {
				return nil, fail("duplicate design line")
			}
			if len(args) != 1 {
				return nil, fail("design takes one name")
			}
			d = NewDesign(args[0])
		case "structure":
			if len(args) != 3 && len(args) != 4 {
				return nil, fail("structure takes name entries width [prot=...]")
			}
			entries, err1 := strconv.Atoi(args[1])
			width, err2 := strconv.Atoi(args[2])
			if err1 != nil || err2 != nil {
				return nil, fail("bad structure geometry %q %q", args[1], args[2])
			}
			st := d.AddStructure(args[0], entries, width)
			if len(args) == 4 {
				v, ok := strings.CutPrefix(args[3], "prot=")
				if !ok {
					return nil, fail("bad structure option %q", args[3])
				}
				p, ok := ProtectionFromName(v)
				if !ok {
					return nil, fail("unknown protection %q", v)
				}
				st.Prot = p
			}
		case "module":
			if cur != nil {
				return nil, fail("nested module")
			}
			if len(args) != 1 {
				return nil, fail("module takes one name")
			}
			if _, dup := d.Modules[args[0]]; dup {
				return nil, fail("duplicate module %q", args[0])
			}
			cur = d.AddModule(args[0])
		case "endmodule":
			if cur == nil {
				return nil, fail("endmodule outside module")
			}
			cur = nil
		case "top":
			if len(args) != 2 {
				return nil, fail("top takes fub module")
			}
			d.AddFub(args[0], args[1])
		case "connect":
			if len(args) != 3 || args[1] != "->" {
				return nil, fail("connect takes <fub>.<port> -> <fub>.<port>")
			}
			from, err1 := parsePortRef(args[0])
			to, err2 := parsePortRef(args[2])
			if err1 != nil {
				return nil, fail("%v", err1)
			}
			if err2 != nil {
				return nil, fail("%v", err2)
			}
			d.Connects = append(d.Connects, Connect{From: from, To: to})
		default:
			if cur == nil {
				return nil, fail("%q outside module", kw)
			}
			if err := parseModuleLine(cur, kw, args); err != nil {
				return nil, fail("%v", err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if d == nil {
		return nil, fmt.Errorf("netlist: empty input")
	}
	if cur != nil {
		return nil, fmt.Errorf("netlist: unterminated module %q", cur.Name)
	}
	return d, nil
}

func parsePortRef(s string) (PortRef, error) {
	i := strings.IndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		return PortRef{}, fmt.Errorf("bad port reference %q", s)
	}
	return PortRef{Fub: s[:i], Port: s[i+1:]}, nil
}

func parseModuleLine(m *Module, kw string, args []string) error {
	switch kw {
	case "input":
		if len(args) != 2 {
			return fmt.Errorf("input takes name width")
		}
		w, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("bad width %q", args[1])
		}
		m.Add(&Node{Name: args[0], Kind: KindInput, Width: w})
	case "output":
		if len(args) != 4 || args[2] != "=" {
			return fmt.Errorf("output takes name width = driver")
		}
		w, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("bad width %q", args[1])
		}
		m.Add(&Node{Name: args[0], Kind: KindOutput, Width: w, Inputs: []string{args[3]}})
	case "const":
		if len(args) != 3 {
			return fmt.Errorf("const takes name width value")
		}
		w, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("bad width %q", args[1])
		}
		v, err := strconv.ParseUint(args[2], 0, 64)
		if err != nil {
			return fmt.Errorf("bad const value %q", args[2])
		}
		m.Add(&Node{Name: args[0], Kind: KindConst, Width: w, Param: int64(v)})
	case "seq":
		if len(args) < 4 || args[2] != "=" {
			return fmt.Errorf("seq takes name width = d [options]")
		}
		w, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("bad width %q", args[1])
		}
		n := &Node{Name: args[0], Kind: KindSeq, Width: w, Inputs: []string{args[3]}}
		for _, opt := range args[4:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return fmt.Errorf("bad seq option %q", opt)
			}
			switch k {
			case "en":
				n.Inputs = append(n.Inputs, v)
			case "init":
				iv, err := strconv.ParseUint(v, 0, 64)
				if err != nil {
					return fmt.Errorf("bad init %q", v)
				}
				n.Init = iv
			case "clock":
				n.Clock = v
			case "class":
				c, ok := ClassFromName(v)
				if !ok {
					return fmt.Errorf("unknown class %q", v)
				}
				n.Class = c
			default:
				return fmt.Errorf("unknown seq option %q", k)
			}
		}
		m.Add(n)
	case "comb":
		if len(args) < 3 {
			return fmt.Errorf("comb takes name width op inputs...")
		}
		w, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("bad width %q", args[1])
		}
		op := OpFromName(args[2])
		if op == OpInvalid {
			return fmt.Errorf("unknown op %q", args[2])
		}
		n := &Node{Name: args[0], Kind: KindComb, Op: op, Width: w}
		for _, a := range args[3:] {
			if v, ok := strings.CutPrefix(a, "param="); ok {
				p, err := strconv.ParseInt(v, 0, 64)
				if err != nil {
					return fmt.Errorf("bad param %q", v)
				}
				n.Param = p
				continue
			}
			n.Inputs = append(n.Inputs, a)
		}
		m.Add(n)
	case "sread":
		if len(args) < 4 {
			return fmt.Errorf("sread takes name width struct port [addrs...]")
		}
		w, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("bad width %q", args[1])
		}
		m.Add(&Node{
			Name: args[0], Kind: KindStructRead, Width: w,
			Struct: args[2], Port: args[3], Inputs: append([]string(nil), args[4:]...),
		})
	case "swrite":
		if len(args) < 4 {
			return fmt.Errorf("swrite takes name struct port data [addrs...]")
		}
		m.Add(&Node{
			Name: args[0], Kind: KindStructWrite, Width: 1,
			Struct: args[1], Port: args[2], Inputs: append([]string(nil), args[3:]...),
		})
	case "inst":
		if len(args) < 2 {
			return fmt.Errorf("inst takes name module [port=signal...]")
		}
		inst := &Inst{Name: args[0], Module: args[1], Conns: make(map[string]string)}
		for _, a := range args[2:] {
			p, s, ok := strings.Cut(a, "=")
			if !ok {
				return fmt.Errorf("bad binding %q", a)
			}
			inst.Conns[p] = s
		}
		m.Insts = append(m.Insts, inst)
	default:
		return fmt.Errorf("unknown keyword %q", kw)
	}
	return nil
}

// Write serializes d in the textual format. Output is deterministic:
// modules and structures appear in lexical order, nodes in declaration
// order.
func Write(w io.Writer, d *Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "design %s\n", d.Name)
	for _, name := range d.SortedStructureNames() {
		s := d.Structures[name]
		fmt.Fprintf(bw, "structure %s %d %d", s.Name, s.Entries, s.Width)
		if s.Prot != ProtNone {
			fmt.Fprintf(bw, " prot=%s", s.Prot)
		}
		fmt.Fprintln(bw)
	}
	for _, name := range d.SortedModuleNames() {
		m := d.Modules[name]
		fmt.Fprintf(bw, "module %s\n", m.Name)
		for _, n := range m.Nodes {
			writeNode(bw, n)
		}
		for _, inst := range m.Insts {
			fmt.Fprintf(bw, "  inst %s %s", inst.Name, inst.Module)
			ports := make([]string, 0, len(inst.Conns))
			for p := range inst.Conns {
				ports = append(ports, p)
			}
			sort.Strings(ports)
			for _, p := range ports {
				fmt.Fprintf(bw, " %s=%s", p, inst.Conns[p])
			}
			fmt.Fprintln(bw)
		}
		fmt.Fprintln(bw, "endmodule")
	}
	for _, f := range d.Fubs {
		fmt.Fprintf(bw, "top %s %s\n", f.Name, f.Module)
	}
	for _, c := range d.Connects {
		fmt.Fprintf(bw, "connect %s -> %s\n", c.From, c.To)
	}
	return bw.Flush()
}

func writeNode(w io.Writer, n *Node) {
	switch n.Kind {
	case KindInput:
		fmt.Fprintf(w, "  input %s %d\n", n.Name, n.Width)
	case KindOutput:
		fmt.Fprintf(w, "  output %s %d = %s\n", n.Name, n.Width, n.Inputs[0])
	case KindConst:
		fmt.Fprintf(w, "  const %s %d %d\n", n.Name, n.Width, uint64(n.Param))
	case KindSeq:
		fmt.Fprintf(w, "  seq %s %d = %s", n.Name, n.Width, n.Inputs[0])
		if len(n.Inputs) == 2 {
			fmt.Fprintf(w, " en=%s", n.Inputs[1])
		}
		if n.Init != 0 {
			fmt.Fprintf(w, " init=%d", n.Init)
		}
		if n.Clock != "" {
			fmt.Fprintf(w, " clock=%s", n.Clock)
		}
		if n.Class != ClassNone {
			fmt.Fprintf(w, " class=%s", n.Class)
		}
		fmt.Fprintln(w)
	case KindComb:
		fmt.Fprintf(w, "  comb %s %d %s", n.Name, n.Width, n.Op)
		for _, in := range n.Inputs {
			fmt.Fprintf(w, " %s", in)
		}
		if n.Param != 0 {
			fmt.Fprintf(w, " param=%d", n.Param)
		}
		fmt.Fprintln(w)
	case KindStructRead:
		fmt.Fprintf(w, "  sread %s %d %s %s", n.Name, n.Width, n.Struct, n.Port)
		for _, in := range n.Inputs {
			fmt.Fprintf(w, " %s", in)
		}
		fmt.Fprintln(w)
	case KindStructWrite:
		fmt.Fprintf(w, "  swrite %s %s %s", n.Name, n.Struct, n.Port)
		for _, in := range n.Inputs {
			fmt.Fprintf(w, " %s", in)
		}
		fmt.Fprintln(w)
	}
}
