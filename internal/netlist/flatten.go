package netlist

import "fmt"

// FlatFub is one fully flattened top-level FUB: all sub-module hierarchy
// expanded, every node carrying a module-local unique name. Instance
// boundary ports become OpPass combinational nodes, preserving the
// original signal names for reporting.
type FlatFub struct {
	Name   string
	Module string
	Nodes  []*Node

	index map[string]*Node
}

// AddNode appends n to the FUB, keeping the lazy name index coherent.
// Mutating Nodes directly after Node has been called would leave the
// index stale; edit tooling must go through this.
func (f *FlatFub) AddNode(n *Node) {
	f.Nodes = append(f.Nodes, n)
	if f.index != nil {
		f.index[n.Name] = n
	}
}

// Node returns the flat node named name, or nil.
func (f *FlatFub) Node(name string) *Node {
	if f.index == nil {
		f.index = make(map[string]*Node, len(f.Nodes))
		for _, n := range f.Nodes {
			f.index[n.Name] = n
		}
	}
	return f.index[name]
}

// FlatDesign is the flattened form of a Design, ready for graph
// extraction, simulation, and SART analysis.
type FlatDesign struct {
	Name       string
	Structures map[string]*Structure
	Fubs       []*FlatFub
	Connects   []Connect
}

// Clone returns a deep copy of the flat design, sharing only the
// immutable Structure definitions. Netlist-edit tooling (ECO flows, the
// edit-generator test harness) mutates the clone and rebuilds the graph
// while the original keeps serving.
func (fd *FlatDesign) Clone() *FlatDesign {
	out := &FlatDesign{
		Name:       fd.Name,
		Structures: fd.Structures,
		Connects:   append([]Connect(nil), fd.Connects...),
		Fubs:       make([]*FlatFub, len(fd.Fubs)),
	}
	for i, f := range fd.Fubs {
		nf := &FlatFub{Name: f.Name, Module: f.Module, Nodes: make([]*Node, len(f.Nodes))}
		for j, n := range f.Nodes {
			nf.Nodes[j] = cloneNode(n)
		}
		out.Fubs[i] = nf
	}
	return out
}

// Fub returns the flat FUB named name, or nil.
func (fd *FlatDesign) Fub(name string) *FlatFub {
	for _, f := range fd.Fubs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// NumNodes returns the total flat node count across all FUBs.
func (fd *FlatDesign) NumNodes() int {
	total := 0
	for _, f := range fd.Fubs {
		total += len(f.Nodes)
	}
	return total
}

// Flatten expands all module hierarchy, producing one FlatFub per top-level
// FUB instance. The design must already Validate.
//
// Expansion rules per instance I of sub-module S inside module M:
//   - every node n of (recursively flattened) S is cloned as "I/n";
//   - S's input port p becomes OpPass node "I/p" driven by M's bound signal;
//   - S's output port p bound to parent signal s becomes OpPass node "s"
//     driven by the (renamed) internal driver — so references in M resolve.
//
// Unbound sub-module outputs become dangling "I/p" pass nodes.
func Flatten(d *Design) (*FlatDesign, error) {
	memo := make(map[string][]*Node)
	var flattenModule func(name string) ([]*Node, error)
	flattenModule = func(name string) ([]*Node, error) {
		if nodes, ok := memo[name]; ok {
			return nodes, nil
		}
		m, ok := d.Modules[name]
		if !ok {
			return nil, fmt.Errorf("netlist: flatten: undefined module %q", name)
		}
		var out []*Node
		for _, n := range m.Nodes {
			out = append(out, cloneNode(n))
		}
		for _, inst := range m.Insts {
			subNodes, err := flattenModule(inst.Module)
			if err != nil {
				return nil, err
			}
			sub := d.Modules[inst.Module]
			rename := func(sig string) string { return inst.Name + "/" + sig }
			for _, n := range subNodes {
				c := cloneNode(n)
				switch {
				case c.Kind == KindInput:
					bound := inst.Conns[c.Name]
					c.Kind = KindComb
					c.Op = OpPass
					c.Name = rename(c.Name)
					c.Inputs = []string{bound}
				case c.Kind == KindOutput:
					origName := c.Name
					c.Kind = KindComb
					c.Op = OpPass
					if bound, ok := inst.Conns[origName]; ok {
						c.Name = bound
					} else {
						c.Name = rename(origName)
					}
					c.Inputs = []string{rename(c.Inputs[0])}
				default:
					c.Name = rename(c.Name)
					for i, in := range c.Inputs {
						// Inputs referencing the sub-module's own input
						// ports resolve to the pass nodes created above.
						c.Inputs[i] = rename(in)
					}
					_ = sub
				}
				out = append(out, c)
			}
		}
		memo[name] = out
		return out, nil
	}

	fd := &FlatDesign{
		Name:       d.Name,
		Structures: d.Structures,
		Connects:   append([]Connect(nil), d.Connects...),
	}
	for _, fub := range d.Fubs {
		nodes, err := flattenModule(fub.Module)
		if err != nil {
			return nil, err
		}
		ff := &FlatFub{Name: fub.Name, Module: fub.Module}
		ff.Nodes = make([]*Node, len(nodes))
		for i, n := range nodes {
			ff.Nodes[i] = cloneNode(n)
		}
		if err := checkFlat(ff); err != nil {
			return nil, err
		}
		fd.Fubs = append(fd.Fubs, ff)
	}
	return fd, nil
}

func cloneNode(n *Node) *Node {
	c := *n
	c.Inputs = append([]string(nil), n.Inputs...)
	return &c
}

// checkFlat verifies that every reference in a flattened FUB resolves.
func checkFlat(f *FlatFub) error {
	names := make(map[string]bool, len(f.Nodes))
	for _, n := range f.Nodes {
		if names[n.Name] {
			return fmt.Errorf("netlist: flatten: FUB %s: duplicate flat node %q", f.Name, n.Name)
		}
		names[n.Name] = true
	}
	for _, n := range f.Nodes {
		for _, in := range n.Inputs {
			if !names[in] {
				return fmt.Errorf("netlist: flatten: FUB %s: node %s references unresolved signal %q", f.Name, n.Name, in)
			}
		}
	}
	return nil
}
