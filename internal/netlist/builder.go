package netlist

// Builder provides terse helpers for constructing modules programmatically.
// Every method returns the created node's name so calls compose naturally:
//
//	b := netlist.Build(m)
//	sum := b.C("sum", 32, netlist.OpAdd, b.In("a", 32), b.In("b", 32))
//	b.Out("q", 32, b.Seq("r", 32, sum))
//
// The builder performs no validation; run Design.Validate afterwards.
type Builder struct {
	M *Module
}

// Build wraps m in a Builder.
func Build(m *Module) *Builder { return &Builder{M: m} }

// In declares a module input port.
func (b *Builder) In(name string, width int) string {
	b.M.Add(&Node{Name: name, Kind: KindInput, Width: width})
	return name
}

// Out declares a module output port driven by driver.
func (b *Builder) Out(name string, width int, driver string) string {
	b.M.Add(&Node{Name: name, Kind: KindOutput, Width: width, Inputs: []string{driver}})
	return name
}

// Seq declares a register with data input d.
func (b *Builder) Seq(name string, width int, d string) string {
	b.M.Add(&Node{Name: name, Kind: KindSeq, Width: width, Inputs: []string{d}})
	return name
}

// SeqInit declares a register with data input d and reset value init.
func (b *Builder) SeqInit(name string, width int, d string, init uint64) string {
	b.M.Add(&Node{Name: name, Kind: KindSeq, Width: width, Inputs: []string{d}, Init: init})
	return name
}

// SeqEn declares an enabled register: it holds its value unless en is 1.
func (b *Builder) SeqEn(name string, width int, d, en string) string {
	b.M.Add(&Node{Name: name, Kind: KindSeq, Width: width, Inputs: []string{d, en}})
	return name
}

// CtrlReg declares a configuration control register (ClassControl).
func (b *Builder) CtrlReg(name string, width int, d string, init uint64) string {
	b.M.Add(&Node{
		Name: name, Kind: KindSeq, Width: width, Inputs: []string{d},
		Init: init, Class: ClassControl, Clock: "cfgclk",
	})
	return name
}

// C declares a combinational node with operator op.
func (b *Builder) C(name string, width int, op Op, inputs ...string) string {
	b.M.Add(&Node{Name: name, Kind: KindComb, Op: op, Width: width, Inputs: inputs})
	return name
}

// CP declares a combinational node that carries a parameter (select low
// bit, constant shift amount).
func (b *Builder) CP(name string, width int, op Op, param int64, inputs ...string) string {
	b.M.Add(&Node{Name: name, Kind: KindComb, Op: op, Width: width, Param: param, Inputs: inputs})
	return name
}

// Const declares a constant node.
func (b *Builder) Const(name string, width int, value uint64) string {
	b.M.Add(&Node{Name: name, Kind: KindConst, Width: width, Param: int64(value)})
	return name
}

// Mux declares a 2-way multiplexer: out = sel ? hi : lo.
func (b *Builder) Mux(name string, width int, sel, lo, hi string) string {
	return b.C(name, width, OpMux, sel, lo, hi)
}

// Select extracts width bits of in starting at bit lo.
func (b *Builder) Select(name string, width int, in string, lo int) string {
	return b.CP(name, width, OpSelect, int64(lo), in)
}

// SRead declares a structure read port named name on structure strct,
// producing width bits of data; addrs are address/enable inputs.
func (b *Builder) SRead(name string, width int, strct, port string, addrs ...string) string {
	b.M.Add(&Node{
		Name: name, Kind: KindStructRead, Width: width,
		Struct: strct, Port: port, Inputs: addrs,
	})
	return name
}

// SWrite declares a structure write port: data plus address/enable inputs.
func (b *Builder) SWrite(name string, strct, port, data string, addrs ...string) string {
	b.M.Add(&Node{
		Name: name, Kind: KindStructWrite, Width: 1,
		Struct: strct, Port: port, Inputs: append([]string{data}, addrs...),
	})
	return name
}

// Pipe declares a chain of depth registers fed by d, named
// name_1..name_depth, returning the final stage's name. depth must be >= 1.
func (b *Builder) Pipe(name string, width, depth int, d string) string {
	cur := d
	for i := 1; i <= depth; i++ {
		cur = b.Seq(pipeStageName(name, i), width, cur)
	}
	return cur
}

func pipeStageName(base string, i int) string {
	return base + "_" + itoa(i)
}

// Inst instantiates sub-module module as name with the given port bindings.
func (b *Builder) Inst(name, module string, conns map[string]string) {
	b.M.Insts = append(b.M.Insts, &Inst{Name: name, Module: module, Conns: conns})
}

// itoa is a dependency-free integer formatter for hot builder paths.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
