package netlist

import (
	"strings"
	"testing"
)

// buildSmallDesign constructs a two-FUB design with a sub-module, one
// structure, a control register and a loop, exercising most node kinds.
func buildSmallDesign(t *testing.T) *Design {
	t.Helper()
	d := NewDesign("small")
	d.AddStructure("RF", 16, 32)

	// Sub-module: a registered adder.
	addm := d.AddModule("addreg")
	ab := Build(addm)
	a := ab.In("a", 32)
	bIn := ab.In("b", 32)
	sum := ab.C("sum", 32, OpAdd, a, bIn)
	ab.Out("q", 32, ab.Seq("r", 32, sum))

	// FUB 1: reads the structure, pipes through the sub-module.
	front := d.AddModule("front")
	fb := Build(front)
	idx := fb.In("idx", 4)
	data := fb.SRead("rf_rd", 32, "RF", "rd0", idx)
	fb.Inst("u_add", "addreg", map[string]string{"a": data, "b": data, "q": "addq"})
	fb.Out("to_back", 32, fb.Seq("stage", 32, "addq"))

	// FUB 2: control register, a loop, a structure write.
	back := d.AddModule("back")
	bb := Build(back)
	in := bb.In("from_front", 32)
	cfg := bb.CtrlReg("cfg_mode", 32, "cfg_mode", 1)
	masked := bb.C("masked", 32, OpAnd, in, cfg)
	// Feedback loop: counter via self-add.
	one := bb.Const("one", 8, 1)
	cnt := bb.M.Add(&Node{Name: "count", Kind: KindSeq, Width: 8, Inputs: []string{"cnt_next"}})
	_ = cnt
	bb.C("cnt_next", 8, OpAdd, "count", one)
	bb.SWrite("rf_wr", "RF", "wr0", masked)
	bb.Out("obs", 8, "count")

	d.AddFub("FRONT", "front")
	d.AddFub("BACK", "back")
	d.ConnectPorts("FRONT", "to_back", "BACK", "from_front")
	return d
}

func TestValidateGoodDesign(t *testing.T) {
	d := buildSmallDesign(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(d *Design)
		want   string
	}{
		{"undefined input ref", func(d *Design) {
			m := d.Modules["back"]
			m.Node("masked").Inputs[0] = "nonesuch"
		}, "undefined signal"},
		{"duplicate node", func(d *Design) {
			m := d.Modules["back"]
			m.Add(&Node{Name: "masked", Kind: KindConst, Width: 1})
			m.reindex()
		}, "duplicate node"},
		{"bad width", func(d *Design) {
			d.Modules["back"].Node("one").Width = 99
		}, "width 99 out of range"},
		{"mux select width", func(d *Design) {
			m := d.Modules["front"]
			Build(m).Mux("m0", 32, "idx", "rf_rd", "rf_rd")
		}, "mux select width"},
		{"unknown structure", func(d *Design) {
			d.Modules["front"].Node("rf_rd").Struct = "NOPE"
		}, "unknown structure"},
		{"recursive module", func(d *Design) {
			m := d.Modules["addreg"]
			m.Insts = append(m.Insts, &Inst{Name: "self", Module: "addreg", Conns: map[string]string{"a": "a", "b": "b"}})
		}, "recursive instantiation"},
		{"unbound inst input", func(d *Design) {
			m := d.Modules["front"]
			delete(m.Insts[0].Conns, "b")
		}, "unbound"},
		{"fub of undefined module", func(d *Design) {
			d.AddFub("X", "ghost")
		}, "undefined module"},
		{"connect width mismatch", func(d *Design) {
			d.Connects[0].To = PortRef{Fub: "BACK", Port: "from_front"}
			d.Modules["back"].Node("from_front").Width = 8
			d.Modules["back"].Node("masked").Inputs = []string{"cfg_mode", "cfg_mode"}
		}, "width mismatch"},
		{"input driven twice", func(d *Design) {
			d.ConnectPorts("FRONT", "to_back", "BACK", "from_front")
		}, "driven twice"},
		{"connect from input port", func(d *Design) {
			d.ConnectPorts("FRONT", "idx", "BACK", "from_front")
		}, "not an output port"},
		{"struct port reuse", func(d *Design) {
			Build(d.Modules["front"]).SRead("rf_rd2", 32, "RF", "rd0", "idx")
		}, "used by both"},
		{"eq width", func(d *Design) {
			m := d.Modules["front"]
			Build(m).C("cmp", 2, OpEq, "rf_rd", "rf_rd")
		}, "output width 2 != 1"},
		{"select out of range", func(d *Design) {
			m := d.Modules["front"]
			Build(m).Select("sel0", 8, "idx", 2)
		}, "out of input width"},
		{"concat width sum", func(d *Design) {
			m := d.Modules["front"]
			Build(m).C("cc", 10, OpConcat, "idx", "idx")
		}, "sum to 8"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := buildSmallDesign(t)
			tc.mutate(d)
			err := d.Validate()
			if err == nil {
				t.Fatalf("Validate accepted bad design (%s)", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestStructModuleInstantiatedTwice(t *testing.T) {
	d := NewDesign("dup")
	d.AddStructure("Q", 4, 8)
	sub := d.AddModule("reader")
	sb := Build(sub)
	sb.Out("q", 8, sb.SRead("rd", 8, "Q", "r0"))
	top := d.AddModule("top")
	tb := Build(top)
	tb.Inst("u1", "reader", map[string]string{"q": "q1"})
	tb.Inst("u2", "reader", map[string]string{"q": "q2"})
	tb.Out("o", 8, tb.C("x", 8, OpXor, "q1", "q2"))
	d.AddFub("T", "top")
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "instantiated 2 times") {
		t.Fatalf("want struct-module reuse error, got %v", err)
	}
}

func TestFlattenSmallDesign(t *testing.T) {
	d := buildSmallDesign(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	fd, err := Flatten(d)
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	if len(fd.Fubs) != 2 {
		t.Fatalf("got %d FUBs", len(fd.Fubs))
	}
	front := fd.Fub("FRONT")
	if front == nil {
		t.Fatal("FRONT missing")
	}
	// The sub-module register must exist with instance-prefixed name.
	r := front.Node("u_add/r")
	if r == nil || r.Kind != KindSeq {
		t.Fatalf("u_add/r not flattened correctly: %+v", r)
	}
	// The instance output is exported under the bound name.
	q := front.Node("addq")
	if q == nil || q.Kind != KindComb || q.Op != OpPass {
		t.Fatalf("bound output addq wrong: %+v", q)
	}
	if q.Inputs[0] != "u_add/r" {
		t.Fatalf("addq driven by %q", q.Inputs[0])
	}
	// Instance input ports became pass nodes bound to parent signals.
	ain := front.Node("u_add/a")
	if ain == nil || ain.Op != OpPass || ain.Inputs[0] != "rf_rd" {
		t.Fatalf("u_add/a wrong: %+v", ain)
	}
	// Every flat reference resolves (checkFlat ran inside Flatten).
	if fd.NumNodes() == 0 {
		t.Fatal("no nodes")
	}
}

func TestFlattenNestedHierarchy(t *testing.T) {
	d := NewDesign("nested")
	leaf := d.AddModule("leaf")
	lb := Build(leaf)
	lb.Out("y", 8, lb.C("inv", 8, OpNot, lb.In("x", 8)))
	mid := d.AddModule("mid")
	mb := Build(mid)
	mb.In("x", 8)
	mb.Inst("u_leaf", "leaf", map[string]string{"x": "x", "y": "ly"})
	mb.Out("y", 8, mb.Seq("r", 8, "ly"))
	top := d.AddModule("top")
	tb := Build(top)
	tb.In("x", 8)
	tb.Inst("u_mid", "mid", map[string]string{"x": "x", "y": "my"})
	tb.Out("y", 8, "my")
	d.AddFub("T", "top")
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	fd, err := Flatten(d)
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	f := fd.Fub("T")
	inv := f.Node("u_mid/u_leaf/inv")
	if inv == nil || inv.Op != OpNot {
		t.Fatalf("nested leaf node missing; have %v", names(f))
	}
	if got := inv.Inputs[0]; got != "u_mid/u_leaf/x" {
		t.Fatalf("nested input = %q", got)
	}
	lx := f.Node("u_mid/u_leaf/x")
	if lx == nil || lx.Op != OpPass || lx.Inputs[0] != "u_mid/x" {
		t.Fatalf("leaf input pass wrong: %+v", lx)
	}
}

func names(f *FlatFub) []string {
	var out []string
	for _, n := range f.Nodes {
		out = append(out, n.Name)
	}
	return out
}

func TestTextRoundTrip(t *testing.T) {
	d := buildSmallDesign(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	var buf strings.Builder
	if err := Write(&buf, d); err != nil {
		t.Fatalf("Write: %v", err)
	}
	d2, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("Parse: %v\ninput:\n%s", err, buf.String())
	}
	if err := d2.Validate(); err != nil {
		t.Fatalf("re-Validate: %v", err)
	}
	var buf2 strings.Builder
	if err := Write(&buf2, d2); err != nil {
		t.Fatalf("Write2: %v", err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("round trip not stable:\n--- first\n%s\n--- second\n%s", buf.String(), buf2.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"no design", "module m\nendmodule\n", "must start with a design"},
		{"dup design", "design a\ndesign b\n", "duplicate design"},
		{"bad structure", "design a\nstructure S x 8\n", "bad structure"},
		{"nested module", "design a\nmodule m\nmodule n\n", "nested module"},
		{"stray endmodule", "design a\nendmodule\n", "outside module"},
		{"unknown op", "design a\nmodule m\ncomb x 8 frob y\nendmodule\n", "unknown op"},
		{"node outside module", "design a\nseq r 8 = d\n", "outside module"},
		{"bad connect", "design a\nconnect A.x B.y\n", "connect takes"},
		{"bad portref", "design a\nconnect Ax -> B.y\n", "bad port reference"},
		{"unterminated", "design a\nmodule m\n", "unterminated module"},
		{"empty", "", "empty input"},
		{"bad seq option", "design a\nmodule m\nseq r 8 = d frotz\nendmodule\n", "bad seq option"},
		{"unknown class", "design a\nmodule m\nseq r 8 = d class=zap\nendmodule\n", "unknown class"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("Parse accepted bad input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParseComments(t *testing.T) {
	in := `
# a comment
design demo   # trailing comment
structure RF 4 8
module m
  input a 8
  output y 8 = r   # pipeline it
  seq r 8 = a init=3 clock=clk class=ctrl
endmodule
top M m
`
	d, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	n := d.Modules["m"].Node("r")
	if n.Init != 3 || n.Clock != "clk" || n.Class != ClassControl {
		t.Fatalf("seq options wrong: %+v", n)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderPipe(t *testing.T) {
	d := NewDesign("p")
	m := d.AddModule("m")
	b := Build(m)
	in := b.In("x", 16)
	last := b.Pipe("st", 16, 3, in)
	if last != "st_3" {
		t.Fatalf("Pipe returned %q", last)
	}
	b.Out("y", 16, last)
	d.AddFub("P", "m")
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.Node("st_1") == nil || m.Node("st_2") == nil {
		t.Fatal("intermediate stages missing")
	}
	if m.Node("st_2").Inputs[0] != "st_1" {
		t.Fatal("pipe not chained")
	}
}

func TestOpClassification(t *testing.T) {
	if !OpMux.Elementwise() || !OpPass.Elementwise() || !OpXor.Elementwise() {
		t.Fatal("elementwise ops misclassified")
	}
	if OpAdd.Elementwise() || OpSelect.Elementwise() || OpDecode.Elementwise() {
		t.Fatal("mixing ops misclassified")
	}
	if OpFromName("add") != OpAdd || OpFromName("nope") != OpInvalid {
		t.Fatal("OpFromName wrong")
	}
	if OpAdd.String() != "add" {
		t.Fatal("Op.String wrong")
	}
}

func TestStructureBits(t *testing.T) {
	s := &Structure{Name: "S", Entries: 16, Width: 32}
	if s.Bits() != 512 {
		t.Fatalf("Bits = %d", s.Bits())
	}
}

func TestHasEnable(t *testing.T) {
	n := &Node{Kind: KindSeq, Inputs: []string{"d", "en"}}
	if !n.HasEnable() {
		t.Fatal("HasEnable false for enabled seq")
	}
	n2 := &Node{Kind: KindSeq, Inputs: []string{"d"}}
	if n2.HasEnable() {
		t.Fatal("HasEnable true for plain seq")
	}
}

func TestProtectionRoundTrip(t *testing.T) {
	d := NewDesign("prot")
	d.AddStructure("P", 4, 8).Prot = ProtParity
	d.AddStructure("E", 4, 8).Prot = ProtECC
	d.AddStructure("N", 4, 8)
	m := d.AddModule("m")
	b := Build(m)
	b.SWrite("w1", "P", "w", b.SRead("r1", 8, "N", "r"))
	b.SWrite("w2", "E", "w", "r1")
	d.AddFub("F", "m")
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "prot=parity") || !strings.Contains(sb.String(), "prot=ecc") {
		t.Fatalf("protection not serialized:\n%s", sb.String())
	}
	d2, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Structures["P"].Prot != ProtParity || d2.Structures["E"].Prot != ProtECC ||
		d2.Structures["N"].Prot != ProtNone {
		t.Fatal("protection not parsed")
	}
	if _, err := Parse(strings.NewReader("design d\nstructure X 2 2 prot=zap\n")); err == nil {
		t.Fatal("bad protection accepted")
	}
	if _, err := Parse(strings.NewReader("design d\nstructure X 2 2 frotz\n")); err == nil {
		t.Fatal("bad structure option accepted")
	}
}

func TestNameConstraints(t *testing.T) {
	d := NewDesign("dots")
	d.AddStructure("a.b", 2, 2)
	m := d.AddModule("m")
	b := Build(m)
	b.Out("o", 2, b.SRead("r", 2, "a.b", "p"))
	d.AddFub("F", "m")
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "must not contain") {
		t.Fatalf("dotted structure name accepted: %v", err)
	}
	d2 := NewDesign("fubdot")
	m2 := d2.AddModule("m")
	b2 := Build(m2)
	b2.Out("o", 2, b2.Seq("r", 2, b2.In("i", 2)))
	d2.AddFub("F.0", "m")
	if err := d2.Validate(); err == nil || !strings.Contains(err.Error(), "must not contain") {
		t.Fatalf("dotted FUB name accepted: %v", err)
	}
}

func TestClassAndProtectionNames(t *testing.T) {
	for _, c := range []Class{ClassNone, ClassControl, ClassDebug, ClassDebugLive} {
		got, ok := ClassFromName(c.String())
		if !ok || got != c {
			t.Fatalf("class %v did not round trip", c)
		}
	}
	if _, ok := ClassFromName("bogus"); ok {
		t.Fatal("bogus class accepted")
	}
	for _, p := range []Protection{ProtNone, ProtParity, ProtECC} {
		got, ok := ProtectionFromName(p.String())
		if !ok || got != p {
			t.Fatalf("protection %v did not round trip", p)
		}
	}
}

func TestFlattenUnboundOutputDangles(t *testing.T) {
	d := NewDesign("dangle")
	sub := d.AddModule("sub")
	sb := Build(sub)
	in := sb.In("x", 4)
	sb.Out("y", 4, in)
	sb.Out("z", 4, sb.C("inv", 4, OpNot, in)) // z left unbound by parent
	top := d.AddModule("top")
	tb := Build(top)
	tb.In("x", 4)
	tb.Inst("u", "sub", map[string]string{"x": "x", "y": "yy"})
	tb.Out("o", 4, "yy")
	d.AddFub("T", "top")
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	fd, err := Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	f := fd.Fub("T")
	z := f.Node("u/z")
	if z == nil || z.Op != OpPass {
		t.Fatalf("unbound output not preserved as dangling pass: %+v", z)
	}
}
