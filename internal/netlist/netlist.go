// Package netlist defines the word-level RTL netlist representation that
// the SART tool flow consumes (the stand-in for the paper's EXLIF
// intermediate format, Section 5.1).
//
// A Design is a set of Modules. Module instances at the top level are FUBs
// (functional blocks) — the paper's natural partition boundary. Modules may
// instantiate sub-modules; Flatten removes all hierarchy, producing one
// flat node list per FUB, "a single model statement that represents the
// original FUB with all hierarchy removed".
//
// Nodes are word-level (1..64 bits). Sequential nodes model flops/latches;
// combinational nodes carry an operator; structure-port nodes bind signals
// to the read/write ports of ACE-modeled storage structures, which are the
// sources and sinks of pAVF walks.
package netlist

import (
	"fmt"
	"sort"
)

// Op enumerates combinational operators. Each op has an arity contract
// (checked by Validate) and a bit-dependency class used when the graph
// package expands word-level nodes to bit-level vertices.
type Op uint8

const (
	OpInvalid Op = iota
	// Elementwise: output bit i depends on bit i of every input.
	OpPass // 1 input
	OpNot  // 1 input
	OpAnd  // 2+ inputs
	OpOr   // 2+ inputs
	OpXor  // 2+ inputs
	OpNand // 2 inputs
	OpNor  // 2 inputs
	OpXnor // 2 inputs
	// OpMux: inputs [sel, a, b]; data elementwise, sel broadcasts to all
	// output bits. sel must be 1 bit wide.
	OpMux
	// Mixing: every output bit depends on every input bit.
	OpAdd // 2 inputs
	OpSub // 2 inputs
	OpMul // 2 inputs
	OpShl // 2 inputs (value, amount)
	OpShr // 2 inputs (value, amount)
	OpEq  // 2 inputs, width must be 1
	OpNe  // 2 inputs, width must be 1
	OpLt  // 2 inputs (unsigned), width must be 1
	// Reductions: 1 input, width must be 1; output depends on all bits.
	OpRedAnd
	OpRedOr
	OpRedXor
	// OpSelect extracts Width bits starting at bit Param of its single
	// input: output bit i depends on input bit Param+i.
	OpSelect
	// OpConcat concatenates inputs, first input in the low bits. Bit
	// positions are preserved.
	OpConcat
	// OpShlK / OpShrK shift by the constant Param; position-preserving.
	OpShlK
	OpShrK
	// OpDecode: 1 input; output bit i is (input == i). Every output bit
	// depends on every input bit. Width may exceed 2^inputWidth needs.
	OpDecode
)

var opNames = map[Op]string{
	OpPass: "pass", OpNot: "not", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpNand: "nand", OpNor: "nor", OpXnor: "xnor", OpMux: "mux",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpShl: "shl", OpShr: "shr",
	OpEq: "eq", OpNe: "ne", OpLt: "lt",
	OpRedAnd: "redand", OpRedOr: "redor", OpRedXor: "redxor",
	OpSelect: "select", OpConcat: "concat", OpShlK: "shlk", OpShrK: "shrk",
	OpDecode: "decode",
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// OpFromName returns the operator named n, or OpInvalid.
func OpFromName(n string) Op { return opByName[n] }

// Elementwise reports whether the op maps input bit i to output bit i
// (with OpMux's select broadcasting).
func (o Op) Elementwise() bool {
	switch o {
	case OpPass, OpNot, OpAnd, OpOr, OpXor, OpNand, OpNor, OpXnor, OpMux:
		return true
	}
	return false
}

// Kind classifies a node.
type Kind uint8

const (
	KindInvalid Kind = iota
	KindInput        // module input port; no inputs inside the module
	KindOutput       // module output port; exactly one input (its driver)
	KindSeq          // flop/latch register; inputs [D] or [D, EN]
	KindComb         // combinational node with an Op
	KindConst        // constant; Param holds the value
	// KindStructRead is a structure read port: Inputs are address/enable
	// signals feeding the structure; the node's value is the data read.
	// pAVF walks treat it as a forward source (pAVF_R).
	KindStructRead
	// KindStructWrite is a structure write port: Inputs[0] is the data,
	// the rest address/enable signals. It is a sink; pAVF walks treat it
	// as a backward source (pAVF_W).
	KindStructWrite
)

var kindNames = map[Kind]string{
	KindInput: "input", KindOutput: "output", KindSeq: "seq",
	KindComb: "comb", KindConst: "const",
	KindStructRead: "sread", KindStructWrite: "swrite",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Class tags a node for SART's special handling.
type Class uint8

const (
	// ClassNone is ordinary functional logic.
	ClassNone Class = iota
	// ClassControl marks a configuration control register: SART assigns
	// pAVF_R = 100% and omits the walk up from its write side (§5.1).
	ClassControl
	// ClassDebug marks DFX/instrumentation logic that plays no role in
	// normal operation; it is stripped before analysis (§4, third
	// assumption) unless it can cause runtime errors.
	ClassDebug
	// ClassDebugLive marks debug control logic intentionally retained
	// because faults in it affect the product ("debug-mode enables").
	ClassDebugLive
)

var classNames = map[Class]string{
	ClassNone: "", ClassControl: "ctrl", ClassDebug: "dfx", ClassDebugLive: "dfxlive",
}

func (c Class) String() string { return classNames[c] }

// ClassFromName parses a class label; unknown labels return ClassNone
// with ok=false.
func ClassFromName(s string) (Class, bool) {
	for c, n := range classNames {
		if n == s {
			return c, true
		}
	}
	return ClassNone, false
}

// Node is one named signal-producing (or, for swrite/output, consuming)
// element of a module.
type Node struct {
	Name  string
	Kind  Kind
	Op    Op  // KindComb only
	Width int // 1..64 (bits of the produced signal; swrite uses data width)
	Param int64
	// Inputs name driver nodes within the same module (post-flatten) or
	// module input ports.
	Inputs []string
	// Struct and Port bind structure-port nodes to an ACE structure.
	Struct string
	Port   string
	// Clock optionally names the clock/enable domain; SART's control
	// register detection can key off it (e.g. "cfgclk").
	Clock string
	Class Class
	// Init is the reset value for sequential nodes.
	Init uint64
}

// HasEnable reports whether a sequential node has an enable input
// (Inputs[1]). Per §4, enabled sequentials behave as structures; the
// design generator maps them to ACE structures, but plain enabled flops
// are still legal here.
func (n *Node) HasEnable() bool { return n.Kind == KindSeq && len(n.Inputs) == 2 }

// Module is a named collection of nodes plus sub-instances.
type Module struct {
	Name  string
	Nodes []*Node
	Insts []*Inst

	index map[string]*Node
}

// Inst is a sub-module instantiation. Conns binds the sub-module's ports:
// input ports map to parent signals driving them; output ports map to
// fresh parent-visible signal names exported by the instance.
type Inst struct {
	Name   string
	Module string
	Conns  map[string]string
}

// Node returns the node named name, or nil.
func (m *Module) Node(name string) *Node {
	if m.index == nil {
		m.reindex()
	}
	return m.index[name]
}

func (m *Module) reindex() {
	m.index = make(map[string]*Node, len(m.Nodes))
	for _, n := range m.Nodes {
		m.index[n.Name] = n
	}
}

// Add appends a node (no validation; Validate checks the whole design).
func (m *Module) Add(n *Node) *Node {
	m.Nodes = append(m.Nodes, n)
	if m.index != nil {
		m.index[n.Name] = n
	}
	return n
}

// Inputs returns the module's input port nodes in declaration order.
func (m *Module) Inputs() []*Node { return m.byKind(KindInput) }

// Outputs returns the module's output port nodes in declaration order.
func (m *Module) Outputs() []*Node { return m.byKind(KindOutput) }

func (m *Module) byKind(k Kind) []*Node {
	var out []*Node
	for _, n := range m.Nodes {
		if n.Kind == k {
			out = append(out, n)
		}
	}
	return out
}

// Protection describes a structure's error protection domain. The model
// follows end-to-end protection schemes (the paper's refs [10][11]): data
// is covered by the code from producer to consumer, so faults in
// sequentials whose traffic sinks exclusively into a protected structure
// are detected (parity -> DUE) or corrected (ECC -> DCE) rather than
// silently corrupting results.
type Protection uint8

const (
	// ProtNone leaves faults silent (SDC).
	ProtNone Protection = iota
	// ProtParity detects but cannot correct (DUE).
	ProtParity
	// ProtECC detects and corrects (DCE).
	ProtECC
)

var protNames = map[Protection]string{
	ProtNone: "", ProtParity: "parity", ProtECC: "ecc",
}

func (p Protection) String() string { return protNames[p] }

// ProtectionFromName parses a protection label.
func ProtectionFromName(s string) (Protection, bool) {
	for p, n := range protNames {
		if n == s {
			return p, true
		}
	}
	return ProtNone, false
}

// Structure declares an ACE-modeled storage structure (latch array,
// register file, queue, ...). The structure's own AVF comes from the ACE
// performance model, not from SART.
type Structure struct {
	Name    string
	Entries int
	Width   int
	Prot    Protection
}

// Bits returns the structure's total storage bit count.
func (s *Structure) Bits() int { return s.Entries * s.Width }

// FubInst is a top-level module instance — one FUB.
type FubInst struct {
	Name   string
	Module string
}

// Connect wires FUB ports together: To (an input port "fub.port") is
// driven by From (an output port "fub.port").
type Connect struct {
	From PortRef
	To   PortRef
}

// PortRef names a FUB port.
type PortRef struct {
	Fub  string
	Port string
}

func (p PortRef) String() string { return p.Fub + "." + p.Port }

// Design is a complete netlist: module library, declared structures, FUB
// instances and their interconnect. FUB input ports left undriven and
// output ports left unconsumed attach to the implicit boundary
// pseudo-structure (the paper's "circuits that lie outside of the RTL
// being analyzed").
type Design struct {
	Name       string
	Modules    map[string]*Module
	Structures map[string]*Structure
	Fubs       []FubInst
	Connects   []Connect
}

// NewDesign returns an empty design.
func NewDesign(name string) *Design {
	return &Design{
		Name:       name,
		Modules:    make(map[string]*Module),
		Structures: make(map[string]*Structure),
	}
}

// AddModule creates (or returns an existing) module named name.
func (d *Design) AddModule(name string) *Module {
	if m, ok := d.Modules[name]; ok {
		return m
	}
	m := &Module{Name: name}
	d.Modules[name] = m
	return m
}

// AddStructure declares a structure.
func (d *Design) AddStructure(name string, entries, width int) *Structure {
	s := &Structure{Name: name, Entries: entries, Width: width}
	d.Structures[name] = s
	return s
}

// AddFub instantiates module as a top-level FUB named name.
func (d *Design) AddFub(name, module string) {
	d.Fubs = append(d.Fubs, FubInst{Name: name, Module: module})
}

// ConnectPorts wires fromFub.fromPort -> toFub.toPort.
func (d *Design) ConnectPorts(fromFub, fromPort, toFub, toPort string) {
	d.Connects = append(d.Connects, Connect{
		From: PortRef{Fub: fromFub, Port: fromPort},
		To:   PortRef{Fub: toFub, Port: toPort},
	})
}

// Fub returns the FUB instance named name, or nil.
func (d *Design) Fub(name string) *FubInst {
	for i := range d.Fubs {
		if d.Fubs[i].Name == name {
			return &d.Fubs[i]
		}
	}
	return nil
}

// SortedModuleNames returns module names in lexical order (stable output
// for serialization and reports).
func (d *Design) SortedModuleNames() []string {
	names := make([]string, 0, len(d.Modules))
	for n := range d.Modules {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SortedStructureNames returns structure names in lexical order.
func (d *Design) SortedStructureNames() []string {
	names := make([]string, 0, len(d.Structures))
	for n := range d.Structures {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
