package netlist

import (
	"fmt"
	"strings"
)

// MaxWidth is the widest signal the toolchain supports (values are uint64).
const MaxWidth = 64

// Validate checks design-level and module-level integrity: name uniqueness,
// module/structure references, instantiation acyclicity, port bindings,
// node arities and widths. It returns the first error found, annotated with
// its location.
func (d *Design) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("netlist: design has no name")
	}
	if err := d.checkInstGraph(); err != nil {
		return err
	}
	for name := range d.Structures {
		if strings.ContainsRune(name, '.') {
			return fmt.Errorf("netlist: structure name %q must not contain '.'", name)
		}
	}
	for _, f := range d.Fubs {
		if strings.ContainsRune(f.Name, '.') {
			return fmt.Errorf("netlist: FUB name %q must not contain '.'", f.Name)
		}
	}
	for _, name := range d.SortedModuleNames() {
		if err := d.validateModule(d.Modules[name]); err != nil {
			return err
		}
	}
	if err := d.validateTop(); err != nil {
		return err
	}
	return d.validateStructPorts()
}

// checkInstGraph rejects missing modules and recursive instantiation.
func (d *Design) checkInstGraph() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(name string, path []string) error
	visit = func(name string, path []string) error {
		switch color[name] {
		case gray:
			return fmt.Errorf("netlist: recursive instantiation: %s", strings.Join(append(path, name), " -> "))
		case black:
			return nil
		}
		m, ok := d.Modules[name]
		if !ok {
			return fmt.Errorf("netlist: module %q not defined (path %s)", name, strings.Join(path, " -> "))
		}
		color[name] = gray
		for _, inst := range m.Insts {
			if err := visit(inst.Module, append(path, name)); err != nil {
				return err
			}
		}
		color[name] = black
		return nil
	}
	for name := range d.Modules {
		if err := visit(name, nil); err != nil {
			return err
		}
	}
	return nil
}

// signalWidths maps every referenceable signal in m to its width: node
// names plus instance-exported output bindings.
func (d *Design) signalWidths(m *Module) (map[string]int, error) {
	widths := make(map[string]int, len(m.Nodes))
	for _, n := range m.Nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("netlist: module %s: node with empty name", m.Name)
		}
		if _, dup := widths[n.Name]; dup {
			return nil, fmt.Errorf("netlist: module %s: duplicate node %q", m.Name, n.Name)
		}
		widths[n.Name] = n.Width
	}
	for _, inst := range m.Insts {
		sub, ok := d.Modules[inst.Module]
		if !ok {
			return nil, fmt.Errorf("netlist: module %s: inst %s of undefined module %q", m.Name, inst.Name, inst.Module)
		}
		for _, out := range sub.Outputs() {
			sig, bound := inst.Conns[out.Name]
			if !bound {
				continue // unconnected output is legal (dangles)
			}
			if _, dup := widths[sig]; dup {
				return nil, fmt.Errorf("netlist: module %s: inst %s output %s collides with signal %q", m.Name, inst.Name, out.Name, sig)
			}
			widths[sig] = out.Width
		}
	}
	return widths, nil
}

func (d *Design) validateModule(m *Module) error {
	widths, err := d.signalWidths(m)
	if err != nil {
		return err
	}
	for _, n := range m.Nodes {
		if err := d.validateNode(m, n, widths); err != nil {
			return err
		}
	}
	for _, inst := range m.Insts {
		sub := d.Modules[inst.Module]
		for port, sig := range inst.Conns {
			pn := sub.Node(port)
			if pn == nil || (pn.Kind != KindInput && pn.Kind != KindOutput) {
				return fmt.Errorf("netlist: module %s: inst %s binds unknown port %q of %s", m.Name, inst.Name, port, inst.Module)
			}
			if pn.Kind == KindInput {
				w, ok := widths[sig]
				if !ok {
					return fmt.Errorf("netlist: module %s: inst %s input %s bound to undefined signal %q", m.Name, inst.Name, port, sig)
				}
				if w != pn.Width {
					return fmt.Errorf("netlist: module %s: inst %s input %s width %d bound to %q width %d", m.Name, inst.Name, port, pn.Width, sig, w)
				}
			}
		}
		for _, in := range sub.Inputs() {
			if _, ok := inst.Conns[in.Name]; !ok {
				return fmt.Errorf("netlist: module %s: inst %s leaves input %s.%s unbound", m.Name, inst.Name, inst.Module, in.Name)
			}
		}
	}
	return nil
}

func (d *Design) validateNode(m *Module, n *Node, widths map[string]int) error {
	where := func(format string, args ...any) error {
		return fmt.Errorf("netlist: module %s: node %s: %s", m.Name, n.Name, fmt.Sprintf(format, args...))
	}
	if n.Width < 1 || n.Width > MaxWidth {
		return where("width %d out of range [1,%d]", n.Width, MaxWidth)
	}
	inW := make([]int, len(n.Inputs))
	for i, ref := range n.Inputs {
		w, ok := widths[ref]
		if !ok {
			return where("input %d references undefined signal %q", i, ref)
		}
		inW[i] = w
	}
	needInputs := func(lo, hi int) error {
		if len(n.Inputs) < lo || (hi >= 0 && len(n.Inputs) > hi) {
			return where("%s takes %d..%d inputs, got %d", n.Kind, lo, hi, len(n.Inputs))
		}
		return nil
	}
	switch n.Kind {
	case KindInput, KindConst:
		return needInputs(0, 0)
	case KindOutput:
		if err := needInputs(1, 1); err != nil {
			return err
		}
		if inW[0] != n.Width {
			return where("driver width %d != port width %d", inW[0], n.Width)
		}
	case KindSeq:
		if err := needInputs(1, 2); err != nil {
			return err
		}
		if inW[0] != n.Width {
			return where("D width %d != register width %d", inW[0], n.Width)
		}
		if len(n.Inputs) == 2 && inW[1] != 1 {
			return where("enable width %d != 1", inW[1])
		}
	case KindStructRead:
		st, ok := d.Structures[n.Struct]
		if !ok {
			return where("unknown structure %q", n.Struct)
		}
		if n.Width > st.Width {
			return where("read width %d exceeds structure width %d", n.Width, st.Width)
		}
		if n.Port == "" {
			return where("structure port name empty")
		}
	case KindStructWrite:
		if _, ok := d.Structures[n.Struct]; !ok {
			return where("unknown structure %q", n.Struct)
		}
		if n.Port == "" {
			return where("structure port name empty")
		}
		if err := needInputs(1, -1); err != nil {
			return err
		}
	case KindComb:
		return validateComb(n, inW, where)
	default:
		return where("invalid kind")
	}
	return nil
}

func validateComb(n *Node, inW []int, where func(string, ...any) error) error {
	arity := func(lo, hi int) error {
		if len(inW) < lo || (hi >= 0 && len(inW) > hi) {
			return where("%s takes %d..%d inputs, got %d", n.Op, lo, hi, len(inW))
		}
		return nil
	}
	sameWidth := func(idx ...int) error {
		for _, i := range idx {
			if inW[i] != n.Width {
				return where("%s input %d width %d != node width %d", n.Op, i, inW[i], n.Width)
			}
		}
		return nil
	}
	switch n.Op {
	case OpPass, OpNot:
		if err := arity(1, 1); err != nil {
			return err
		}
		return sameWidth(0)
	case OpAnd, OpOr, OpXor:
		if err := arity(2, -1); err != nil {
			return err
		}
		idx := make([]int, len(inW))
		for i := range idx {
			idx[i] = i
		}
		return sameWidth(idx...)
	case OpNand, OpNor, OpXnor:
		if err := arity(2, 2); err != nil {
			return err
		}
		return sameWidth(0, 1)
	case OpMux:
		if err := arity(3, 3); err != nil {
			return err
		}
		if inW[0] != 1 {
			return where("mux select width %d != 1", inW[0])
		}
		return sameWidth(1, 2)
	case OpAdd, OpSub, OpMul:
		if err := arity(2, 2); err != nil {
			return err
		}
		return sameWidth(0, 1)
	case OpShl, OpShr:
		if err := arity(2, 2); err != nil {
			return err
		}
		return sameWidth(0)
	case OpEq, OpNe, OpLt:
		if err := arity(2, 2); err != nil {
			return err
		}
		if n.Width != 1 {
			return where("%s output width %d != 1", n.Op, n.Width)
		}
		if inW[0] != inW[1] {
			return where("%s operand widths differ: %d vs %d", n.Op, inW[0], inW[1])
		}
	case OpRedAnd, OpRedOr, OpRedXor:
		if err := arity(1, 1); err != nil {
			return err
		}
		if n.Width != 1 {
			return where("reduction output width %d != 1", n.Width)
		}
	case OpSelect:
		if err := arity(1, 1); err != nil {
			return err
		}
		if n.Param < 0 || int(n.Param)+n.Width > inW[0] {
			return where("select [%d +: %d] out of input width %d", n.Param, n.Width, inW[0])
		}
	case OpConcat:
		if err := arity(1, -1); err != nil {
			return err
		}
		total := 0
		for _, w := range inW {
			total += w
		}
		if total != n.Width {
			return where("concat input widths sum to %d, node width %d", total, n.Width)
		}
	case OpShlK, OpShrK:
		if err := arity(1, 1); err != nil {
			return err
		}
		if n.Param < 0 || n.Param >= int64(n.Width) {
			return where("constant shift %d out of range for width %d", n.Param, n.Width)
		}
		return sameWidth(0)
	case OpDecode:
		if err := arity(1, 1); err != nil {
			return err
		}
	default:
		return where("invalid op")
	}
	return nil
}

// validateTop checks FUB instances and interconnect.
func (d *Design) validateTop() error {
	fubs := make(map[string]*Module, len(d.Fubs))
	for _, f := range d.Fubs {
		if _, dup := fubs[f.Name]; dup {
			return fmt.Errorf("netlist: duplicate FUB %q", f.Name)
		}
		m, ok := d.Modules[f.Module]
		if !ok {
			return fmt.Errorf("netlist: FUB %s instantiates undefined module %q", f.Name, f.Module)
		}
		fubs[f.Name] = m
	}
	driven := make(map[PortRef]bool)
	for _, c := range d.Connects {
		fm, ok := fubs[c.From.Fub]
		if !ok {
			return fmt.Errorf("netlist: connect from unknown FUB %q", c.From.Fub)
		}
		tm, ok := fubs[c.To.Fub]
		if !ok {
			return fmt.Errorf("netlist: connect to unknown FUB %q", c.To.Fub)
		}
		fp := fm.Node(c.From.Port)
		if fp == nil || fp.Kind != KindOutput {
			return fmt.Errorf("netlist: connect source %s is not an output port", c.From)
		}
		tp := tm.Node(c.To.Port)
		if tp == nil || tp.Kind != KindInput {
			return fmt.Errorf("netlist: connect target %s is not an input port", c.To)
		}
		if fp.Width != tp.Width {
			return fmt.Errorf("netlist: connect %s(%d) -> %s(%d): width mismatch", c.From, fp.Width, c.To, tp.Width)
		}
		if driven[c.To] {
			return fmt.Errorf("netlist: input %s driven twice", c.To)
		}
		driven[c.To] = true
	}
	return nil
}

// validateStructPorts enforces one direction and one owner per
// (structure, port) pair across the whole design, counting instantiations:
// a module containing struct ports may be instantiated at most once.
func (d *Design) validateStructPorts() error {
	type use struct {
		kind Kind
		at   string
	}
	seen := make(map[string]use)
	counts := d.moduleInstCounts()
	for _, mname := range d.SortedModuleNames() {
		m := d.Modules[mname]
		for _, n := range m.Nodes {
			if n.Kind != KindStructRead && n.Kind != KindStructWrite {
				continue
			}
			if counts[mname] > 1 {
				return fmt.Errorf("netlist: module %s has structure ports but is instantiated %d times", mname, counts[mname])
			}
			key := n.Struct + "." + n.Port
			at := mname + "/" + n.Name
			if prev, ok := seen[key]; ok {
				return fmt.Errorf("netlist: structure port %s used by both %s and %s", key, prev.at, at)
			}
			seen[key] = use{kind: n.Kind, at: at}
		}
	}
	return nil
}

// moduleInstCounts counts how many times each module is instantiated in
// the fully elaborated design.
func (d *Design) moduleInstCounts() map[string]int {
	memo := make(map[string]map[string]int) // module -> transitive counts incl. self
	var expand func(name string) map[string]int
	expand = func(name string) map[string]int {
		if c, ok := memo[name]; ok {
			return c
		}
		counts := map[string]int{name: 1}
		m := d.Modules[name]
		if m != nil {
			for _, inst := range m.Insts {
				for sub, k := range expand(inst.Module) {
					counts[sub] += k
				}
			}
		}
		memo[name] = counts
		return counts
	}
	total := make(map[string]int)
	for _, f := range d.Fubs {
		for sub, k := range expand(f.Module) {
			total[sub] += k
		}
	}
	return total
}
