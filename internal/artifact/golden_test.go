package artifact

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/tinycore"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden artifact fixture from current output")

// tinycoreSolved produces the canonical small end-to-end artifact
// source: tinycore running the MD5-like kernel, measured on the uarch
// performance model — the same pipeline the experiments' seqAVF golden
// pins.
func tinycoreSolved(t *testing.T) (*core.Analyzer, *core.Result) {
	t.Helper()
	p := workload.MD5Like(60)
	fd, err := tinycore.FlatDesign(len(p.Code))
	if err != nil {
		t.Fatalf("FlatDesign: %v", err)
	}
	g, err := graph.Build(fd)
	if err != nil {
		t.Fatalf("graph.Build: %v", err)
	}
	a, err := core.NewAnalyzer(g, core.DefaultOptions())
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	perf, err := uarch.Run(p, uarch.DefaultConfig())
	if err != nil {
		t.Fatalf("uarch.Run: %v", err)
	}
	in, err := tinycore.BindInputs(perf.Report)
	if err != nil {
		t.Fatalf("BindInputs: %v", err)
	}
	res, err := a.Solve(in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return a, res
}

// TestGoldenArtifactBytes pins the exact on-disk bytes of a tinycore
// artifact. An intentional format change must bump FormatVersion and
// regenerate with -update; an accidental byte-layout change without a
// version bump fails here instead of silently corrupting stores in the
// field (old processes would misparse new bytes under the same
// version).
func TestGoldenArtifactBytes(t *testing.T) {
	a, res := tinycoreSolved(t)
	got, err := Encode(res, nil)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	path := filepath.Join("testdata", "tinycore_md5.sart")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden artifact unreadable (regenerate: go test ./internal/artifact/ -run TestGoldenArtifactBytes -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("artifact bytes changed (%d bytes now, golden %d): if the format changed, "+
			"bump artifact.FormatVersion and regenerate with -update; if it did not, "+
			"this is an accidental encoding change that would corrupt deployed stores",
			len(got), len(want))
	}

	// The committed fixture must also still decode bit-identically — the
	// compatibility direction: artifacts written by the version that
	// committed the fixture remain readable by the current build.
	dec, plan, err := Decode(want, a)
	if err != nil {
		t.Fatalf("decoding golden artifact: %v", err)
	}
	if plan == nil {
		t.Fatal("golden artifact decoded without a plan")
	}
	for v := range res.AVF {
		if dec.AVF[v] != res.AVF[v] {
			t.Fatalf("vertex %d: golden-decoded AVF %v != fresh solve %v", v, dec.AVF[v], res.AVF[v])
		}
	}
}
