package artifact

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"seqavf/internal/obs"
)

func TestSensRoundTripAndMiss(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if data, err := st.GetSens(0xabc, 0xdef); err != nil || data != nil {
		t.Fatalf("clean miss should be (nil, nil), got (%v, %v)", data, err)
	}
	payload := []byte("opaque sensitivity bytes")
	if err := st.PutSens(0xabc, 0xdef, payload); err != nil {
		t.Fatalf("PutSens: %v", err)
	}
	got, err := st.GetSens(0xabc, 0xdef)
	if err != nil {
		t.Fatalf("GetSens: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round-trip mismatch: %q", got)
	}
	// A different env hash is a different key.
	if data, err := st.GetSens(0xabc, 0xd00d); err != nil || data != nil {
		t.Fatalf("other env hash should miss, got (%v, %v)", data, err)
	}
	// Overwrite wins.
	if err := st.PutSens(0xabc, 0xdef, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.GetSens(0xabc, 0xdef); string(got) != "v2" {
		t.Fatalf("overwrite not visible: %q", got)
	}
}

// Sensitivity vectors must count against MaxBytes and age out of the
// same LRU as artifacts — otherwise a harden-heavy fleet grows .sens
// debris without bound under a "bounded" store.
func TestSensEvictionAndSizeBytes(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New()
	st, err := Open(dir, Options{MaxBytes: 256, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	pay := make([]byte, 100)
	if err := st.PutSens(1, 1, pay); err != nil {
		t.Fatal(err)
	}
	if got := st.SizeBytes(); got != 100 {
		t.Fatalf("SizeBytes %d, want 100", got)
	}
	// Age the first entry so LRU order is deterministic.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, "0000000000000001-0000000000000001.sens"), old, old); err != nil {
		t.Fatal(err)
	}
	if err := st.PutSens(2, 2, pay); err != nil {
		t.Fatal(err)
	}
	if err := st.PutSens(3, 3, pay); err != nil {
		t.Fatal(err)
	}
	if got := st.SizeBytes(); got > 256 {
		t.Fatalf("store over budget after eviction: %d > 256", got)
	}
	if data, err := st.GetSens(1, 1); err != nil || data != nil {
		t.Fatalf("oldest vector should have been evicted, got (%v, %v)", data, err)
	}
	if data, _ := st.GetSens(3, 3); data == nil {
		t.Fatal("newest vector evicted")
	}
}
