package artifact

import (
	"sync"
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/obs"
)

// Two Store handles on one directory — two daemons sharing a cache
// volume — racing Put, Get, Prior, and eviction. The invariant under
// test is the atomic-rename contract: a reader observes either a
// complete checksum-valid artifact or a clean miss, never a torn write,
// and the store itself never reports a decode error for bytes it wrote.
func TestStoreSharedDirConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency soak")
	}
	dir := t.TempDir()

	// Pre-solve a handful of designs so the race loop does no expensive
	// math, just store traffic.
	const designs = 4
	type solved struct {
		res  *core.Result
		a    *core.Analyzer
		name string
	}
	items := make([]solved, designs)
	var probeLen int
	for i := range items {
		seed := uint64(80 + i)
		_, res, _ := buildSolved(t, seed, 1)
		items[i] = solved{res: res, a: freshAnalyzer(t, seed), name: res.Analyzer.G.Design.Name}
		if i == 0 {
			probe, err := Encode(res, nil)
			if err != nil {
				t.Fatal(err)
			}
			probeLen = len(probe)
		}
	}

	// A bound that admits roughly half the designs keeps eviction — the
	// most delicate shared-state path — constantly active.
	regA, regB := obs.New(), obs.New()
	stA, err := Open(dir, Options{MaxBytes: int64(probeLen) * 5 / 2, Obs: regA})
	if err != nil {
		t.Fatal(err)
	}
	stB, err := Open(dir, Options{MaxBytes: int64(probeLen) * 5 / 2, Obs: regB})
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 30
	var wg sync.WaitGroup
	for _, st := range []*Store{stA, stB} {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(st *Store, w int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					it := items[(r+w)%designs]
					switch r % 3 {
					case 0:
						if err := st.Put(it.res, nil); err != nil {
							t.Errorf("Put: %v", err)
							return
						}
					case 1:
						got, _, err := st.Get(it.a)
						if err != nil {
							t.Errorf("Get: %v", err)
							return
						}
						if got != nil && got.Analyzer.Fingerprint() != it.a.Fingerprint() {
							t.Error("Get returned another design's result")
							return
						}
					case 2:
						ps, err := st.Prior(t.Context(), it.name)
						if err != nil {
							t.Errorf("Prior: %v", err)
							return
						}
						if ps != nil && ps.Design != it.name {
							t.Errorf("Prior returned state for %q, want %q", ps.Design, it.name)
							return
						}
					}
				}
			}(st, w)
		}
	}
	wg.Wait()

	// No reader may ever have seen a torn or corrupt artifact.
	for _, reg := range []*obs.Registry{regA, regB} {
		if n := reg.Counter("artifact.decode_errors").Load(); n != 0 {
			t.Fatalf("shared-dir race produced %d decode errors: readers saw incomplete artifacts", n)
		}
		if n := reg.Counter("artifact.store_errors").Load(); n != 0 {
			t.Fatalf("shared-dir race produced %d store errors", n)
		}
	}
	// And the directory ends consistent: every artifact decodes, every
	// head resolves.
	for _, it := range items {
		if _, _, err := stA.Get(it.a); err != nil {
			t.Fatalf("post-race Get(%s): %v", it.name, err)
		}
	}
}
