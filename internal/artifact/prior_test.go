package artifact

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/graph/graphtest"
)

// TestDecodePriorRoundTrip proves the FUBSTATE section carries exactly
// what Result.PriorState distills live: encoding a solved result and
// decoding its prior must reproduce the same design name, inputs, set
// table references, fingerprints, and AVFs — with no analyzer in hand.
func TestDecodePriorRoundTrip(t *testing.T) {
	_, res, in := buildSolved(t, 21, 43)
	data, err := Encode(res, nil)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodePrior(data)
	if err != nil {
		t.Fatalf("DecodePrior: %v", err)
	}
	want, err := res.PriorState()
	if err != nil {
		t.Fatalf("PriorState: %v", err)
	}
	if got.Design != want.Design {
		t.Fatalf("design %q, want %q", got.Design, want.Design)
	}
	if !got.Inputs.Equal(in) {
		t.Fatal("decoded prior inputs differ from the solve's inputs")
	}
	if len(got.Fubs) != len(want.Fubs) {
		t.Fatalf("%d FUBs, want %d", len(got.Fubs), len(want.Fubs))
	}
	for f := range want.Fubs {
		gf, wf := &got.Fubs[f], &want.Fubs[f]
		if gf.Name != wf.Name || gf.Fingerprint != wf.Fingerprint {
			t.Fatalf("FUB %d: (%s, %016x), want (%s, %016x)", f, gf.Name, gf.Fingerprint, wf.Name, wf.Fingerprint)
		}
		if len(gf.FwdIdx) != len(wf.FwdIdx) {
			t.Fatalf("FUB %s: %d vertices, want %d", gf.Name, len(gf.FwdIdx), len(wf.FwdIdx))
		}
		for i := range wf.FwdIdx {
			if gf.AVF[i] != wf.AVF[i] {
				t.Fatalf("FUB %s vertex %d: AVF %v, want %v", gf.Name, i, gf.AVF[i], wf.AVF[i])
			}
			// Indices are interned independently on each side; compare the
			// sets they name, including the unknown (-1) marker.
			for side, pair := range [][2]int32{{gf.FwdIdx[i], wf.FwdIdx[i]}, {gf.BwdIdx[i], wf.BwdIdx[i]}} {
				if (pair[0] < 0) != (pair[1] < 0) {
					t.Fatalf("FUB %s vertex %d side %d: known-ness %d vs %d", gf.Name, i, side, pair[0], pair[1])
				}
				if pair[0] < 0 {
					continue
				}
				gs, ws := got.Sets[pair[0]], want.Sets[pair[1]]
				gi, wi := gs.IDs(), ws.IDs()
				if len(gi) != len(wi) {
					t.Fatalf("FUB %s vertex %d side %d: set sizes %d vs %d", gf.Name, i, side, len(gi), len(wi))
				}
				for k := range wi {
					// The decoded universe interns the dictionary in ID
					// order, so term identity must agree by name.
					if got.Universe.Term(gi[k]) != want.Universe.Term(wi[k]) {
						t.Fatalf("FUB %s vertex %d side %d term %d: %v vs %v",
							gf.Name, i, side, k, got.Universe.Term(gi[k]), want.Universe.Term(wi[k]))
					}
				}
			}
		}
	}
}

// TestStorePrior covers the head-pointer flow end to end: Put leaves a
// name-keyed breadcrumb, Prior follows it to a usable seed state, an
// unknown design is a clean miss, and the decoded prior actually drives
// an incremental re-solve of an edited design.
func TestStorePrior(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, res, _ := buildSolved(t, 77, 99)
	if err := st.Put(res, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	ctx := context.Background()
	name := a.G.Design.Name

	ps, err := st.Prior(ctx, name)
	if err != nil {
		t.Fatalf("Prior: %v", err)
	}
	if ps == nil {
		t.Fatal("Prior missed immediately after Put")
	}
	if ps.Design != name {
		t.Fatalf("prior for design %q, want %q", ps.Design, name)
	}

	if miss, err := st.Prior(ctx, "no-such-design"); err != nil || miss != nil {
		t.Fatalf("unknown design: got (%v, %v), want clean miss", miss, err)
	}

	// The persisted prior must seed a real incremental re-solve: edit the
	// design, re-solve warm, and check the differential contract.
	d, err := graphtest.Generate(graphtest.Small(77))
	if err != nil {
		t.Fatal(err)
	}
	_, g2, edit, err := d.ApplyEdit(graphtest.EditAddFlop, 5)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := core.NewAnalyzer(g2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	in2 := seededInputs(a2, 99)
	incr, stats, err := a2.ResolveIncremental(in2, ps)
	if err != nil {
		t.Fatalf("ResolveIncremental from stored prior: %v", err)
	}
	if stats.FubsDirty == 0 || stats.FubsDirty >= stats.FubsTotal {
		t.Fatalf("edit %q dirtied %d of %d FUBs", edit.Desc, stats.FubsDirty, stats.FubsTotal)
	}
	scratch, err := a2.SolvePartitioned(seededInputs(a2, 99))
	if err != nil {
		t.Fatal(err)
	}
	if d := core.MaxAbsDiff(incr, scratch); !(d <= a2.Opts.Epsilon) {
		t.Fatalf("stored-prior re-solve diverges from scratch by %v", d)
	}
}

// TestStorePriorSurvivesEviction pins the degraded modes: a head pointer
// whose artifact was evicted is a clean miss, and a Put for a new
// fingerprint moves the head.
func TestStorePriorSurvivesEviction(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, res, in := buildSolved(t, 31, 62)
	if err := st.Put(res, nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	name := a.G.Design.Name

	// Simulate eviction losing the pointed-to artifact.
	if err := removeAllArtifacts(st.Dir()); err != nil {
		t.Fatal(err)
	}
	if ps, err := st.Prior(ctx, name); err != nil || ps != nil {
		t.Fatalf("dangling head pointer: got (%v, %v), want clean miss", ps, err)
	}

	// A later Put re-establishes the head.
	res2, err := a.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(res2, nil); err != nil {
		t.Fatal(err)
	}
	ps, err := st.Prior(ctx, name)
	if err != nil || ps == nil {
		t.Fatalf("Prior after re-Put: (%v, %v)", ps, err)
	}
}

// removeAllArtifacts deletes every .sart file under dir, leaving head
// pointers in place — the state an aggressive eviction pass produces.
func removeAllArtifacts(dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, "*"+ext))
	if err != nil {
		return err
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			return err
		}
	}
	return nil
}
