package artifact

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/sweep"
)

// TestPropertyRoundTripBitIdentical is the artifact subsystem's
// correctness guarantee: over ≥50 seeded random designs,
// decode(encode(Result)) — decoded against a freshly rebuilt analyzer,
// as a restarted process would hold — yields bit-identical Reevaluate
// and sweep.Sweep outputs, and an artifact decoded against the wrong
// design is refused by both the codec and the store. Any failure prints
// the seed, which replays deterministically through graphtest.
func TestPropertyRoundTripBitIdentical(t *testing.T) {
	const seeds = 50
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < seeds; seed++ {
		a1, res, in := buildSolved(t, seed, seed^0xc0ffee)
		data, err := Encode(res, nil)
		if err != nil {
			t.Fatalf("seed %d: Encode: %v", seed, err)
		}

		// Decode against a fresh analyzer: proves term IDs and equation
		// shape are process-independent, not an artifact of sharing a1.
		a2 := freshAnalyzer(t, seed)
		if a1.Fingerprint() != a2.Fingerprint() {
			t.Fatalf("seed %d: fingerprint not reproducible across analyzer builds", seed)
		}
		got, plan, err := Decode(data, a2)
		if err != nil {
			t.Fatalf("seed %d: Decode: %v", seed, err)
		}
		for v := range res.AVF {
			if got.AVF[v] != res.AVF[v] {
				t.Fatalf("seed %d vertex %d: decoded AVF %v != original %v", seed, v, got.AVF[v], res.AVF[v])
			}
		}

		// Reevaluate both against fresh inputs: bit-identical.
		in2 := seededInputs(a1, seed^0xabad1dea)
		if err := res.Reevaluate(in2); err != nil {
			t.Fatalf("seed %d: Reevaluate(original): %v", seed, err)
		}
		if err := got.Reevaluate(in2); err != nil {
			t.Fatalf("seed %d: Reevaluate(decoded): %v", seed, err)
		}
		for v := range res.AVF {
			if got.AVF[v] != res.AVF[v] {
				t.Fatalf("seed %d vertex %d: decoded Reevaluate %v != original %v", seed, v, got.AVF[v], res.AVF[v])
			}
		}

		// Sweep both through fresh engines: the decoded plan and a fresh
		// compile must agree bit for bit on every workload.
		ws := []sweep.Workload{{Name: "w1", Inputs: in}, {Name: "w2", Inputs: in2}}
		be, err := sweep.New(sweep.Options{Workers: 1}).Sweep(res, ws)
		if err != nil {
			t.Fatalf("seed %d: Sweep(original): %v", seed, err)
		}
		bd, err := planSweep(plan, ws)
		if err != nil {
			t.Fatalf("seed %d: Sweep(decoded): %v", seed, err)
		}
		for i := range ws {
			for v := range be.Results[i].AVF {
				if be.Results[i].AVF[v] != bd[i].AVF[v] {
					t.Fatalf("seed %d workload %d vertex %d: decoded-plan sweep %v != fresh %v",
						seed, i, v, bd[i].AVF[v], be.Results[i].AVF[v])
				}
			}
		}

		// A fingerprint-mismatched artifact is refused by the store: put
		// this seed's artifact, then Get with the next seed's analyzer —
		// the content address differs, so it must miss cleanly, and a
		// forged file under the wrong address must be rejected.
		if err := st.Put(res, plan); err != nil {
			t.Fatalf("seed %d: store Put: %v", seed, err)
		}
		other := freshAnalyzer(t, seed+seeds)
		if r, _, err := st.Get(other); err != nil || r != nil {
			t.Fatalf("seed %d: store served a fingerprint mismatch: (%v, %v)", seed, r, err)
		}
	}
	if st.Len() != seeds {
		t.Fatalf("store holds %d artifacts after %d puts", st.Len(), seeds)
	}

	// A artifact file planted under the wrong content address — seed 0's
	// bytes at seed 1's fingerprint — must be refused at decode, not
	// served as seed 1's result.
	a0, a1f := freshAnalyzer(t, 0), freshAnalyzer(t, 1)
	res0, _, err := st.Get(a0)
	if err != nil || res0 == nil {
		t.Fatalf("seed 0 re-Get: (%v, %v)", res0, err)
	}
	data, err := Encode(res0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(st.Dir(), fmt.Sprintf("%016x.sart", a1f.Fingerprint())), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if r, _, err := st.Get(a1f); err == nil || !errors.Is(err, ErrFingerprint) || r != nil {
		t.Fatalf("forged artifact under wrong address: (%v, %v), want ErrFingerprint", r, err)
	}
}

// planSweep evaluates workloads directly through a decoded plan.
func planSweep(p *sweep.Plan, ws []sweep.Workload) ([]*core.Result, error) {
	out := make([]*core.Result, len(ws))
	for i, w := range ws {
		r, err := p.Eval(w.Inputs, nil)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
