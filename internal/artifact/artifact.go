// Package artifact persists solved SART results and their compiled sweep
// plans: the solve-once / serve-many half of the paper's §5.1 economics
// made durable across process restarts and machines.
//
// A solved design is expensive (full forward/backward walks over every
// bit vertex) but its output — the closed-form equation table plus the
// deduplicated CSR subterm plan — is small, immutable, and derivable
// from nothing but the design graph and the role-affecting options. Both
// are exactly what core.Analyzer.Fingerprint hashes, so the fingerprint
// is a content address: equal fingerprints guarantee equal equations for
// any inputs, and an artifact keyed by fingerprint can be decoded into
// any later process holding the same design with bit-identical
// Reevaluate and sweep results.
//
// The on-disk format is versioned and self-describing:
//
//	header:  magic "SQAVFART", format version u32, fingerprint u64,
//	         section count u32
//	section: id u32, payload length u64, CRC32C u32, payload
//
// with five sections — meta (design name, universe/vertex counts,
// iteration metadata, visited bitset), inputs (the solved port tables,
// sorted for deterministic bytes), plan (the CSR subterm table that
// both reconstructs the closed forms and restores the compiled plan
// without re-interning), avf (the solved per-vertex AVF vector, raw
// float64 bits), and fubstate (the term dictionary plus per-FUB name,
// structural fingerprint, and vertex extent that let DecodePrior rebuild
// per-FUB walk state with no analyzer, seeding incremental re-solves of
// edited designs). Every section is integrity-checked with CRC32C
// (Castagnoli) before any of it is trusted; declared lengths and counts
// are capped against the remaining input before allocation, so
// arbitrary bytes fail cleanly instead of panicking or ballooning
// memory; and a format-version mismatch is an explicit "regenerate"
// error rather than a misparse.
//
// Decoding requires the matching *core.Analyzer (graph construction is
// cheap; it is the solve the artifact elides). The AVF vector is
// restored from its stored bits — bit-identical by construction — and
// Env is rebuilt from the stored inputs exactly as the solver would,
// so Reevaluate and Sweep on a decoded Result behave bit-identically
// to the encoded original. The partitioned solver's per-iteration
// Trace is diagnostic-only and is not persisted.
package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"seqavf/internal/core"
	"seqavf/internal/pavf"
	"seqavf/internal/sweep"
)

// FormatVersion is the current artifact format. Any change to the byte
// layout below MUST bump it: decoders refuse other versions with
// ErrFormatVersion instead of misreading them (the golden-fixture test
// pins the current bytes so an unbumped layout change fails in CI).
//
// Version 2 added the fubstate section (term dictionary + per-FUB
// fingerprints) for incremental re-solves. Version 1 artifacts are
// refused with the usual "regenerate" error; the store overwrites them
// on the next Put.
const FormatVersion = 2

// magic opens every artifact file.
const magic = "SQAVFART"

// Section IDs. Version 2 requires exactly these five, in this order.
const (
	secMeta     = 1
	secInputs   = 2
	secPlan     = 3
	secAVF      = 4
	secFubState = 5
)

var (
	// ErrFormatVersion reports an artifact written by a different format
	// version. The artifact is not corrupt — it is simply unreadable by
	// this build and must be regenerated (re-run the solve; stores
	// overwrite stale entries automatically on the next Put).
	ErrFormatVersion = errors.New("artifact: unsupported format version; regenerate the artifact by re-running the solve")
	// ErrFingerprint reports an artifact that belongs to a different
	// design (or the same design under different role-affecting options).
	ErrFingerprint = errors.New("artifact: fingerprint does not match the design")
	// ErrCorrupt reports structurally invalid bytes: truncation, CRC
	// mismatch, out-of-range counts or term IDs.
	ErrCorrupt = errors.New("artifact: corrupt")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes res (and its compiled plan) into a self-describing
// artifact. plan may be nil, in which case the result is compiled first;
// passing an existing plan merely skips that recompilation — the bytes
// are identical either way, and identical across processes: map-ordered
// inputs are sorted before writing, and everything else is already
// deterministic in the analyzer's construction order.
func Encode(res *core.Result, plan *sweep.Plan) ([]byte, error) {
	a := res.Analyzer
	if plan == nil {
		var err error
		plan, err = sweep.Compile(res)
		if err != nil {
			return nil, fmt.Errorf("artifact: compiling plan: %w", err)
		}
	}
	if plan.Fingerprint != a.Fingerprint() {
		return nil, fmt.Errorf("artifact: plan fingerprint %016x does not match result design %016x",
			plan.Fingerprint, a.Fingerprint())
	}

	meta, err := encodeMeta(res)
	if err != nil {
		return nil, err
	}
	inputs := encodeInputs(res.Inputs)
	planSec := encodePlan(plan.Raw())
	avfSec, err := encodeAVF(res)
	if err != nil {
		return nil, err
	}
	fubSec := encodeFubState(a)

	var buf bytes.Buffer
	buf.WriteString(magic)
	writeU32(&buf, FormatVersion)
	writeU64(&buf, a.Fingerprint())
	writeU32(&buf, 5)
	for _, sec := range []struct {
		id      uint32
		payload []byte
	}{{secMeta, meta}, {secInputs, inputs}, {secPlan, planSec}, {secAVF, avfSec}, {secFubState, fubSec}} {
		writeU32(&buf, sec.id)
		writeU64(&buf, uint64(len(sec.payload)))
		writeU32(&buf, crc32.Checksum(sec.payload, castagnoli))
		buf.Write(sec.payload)
	}
	return buf.Bytes(), nil
}

// Decode reconstructs the solved result and compiled plan from data,
// bound to a (which must carry the artifact's fingerprint — build it
// from the same netlist and options). The returned result's AVF vector
// is restored from its stored float64 bits and its Env rebuilt from
// the stored inputs exactly as the solver would, so the decoded Result
// — and Reevaluate and Sweep on it — behave bit-identically to the
// encoded original. Arbitrary or damaged bytes yield an error wrapping
// ErrCorrupt, ErrFormatVersion, or ErrFingerprint — never a panic.
func Decode(data []byte, a *core.Analyzer) (*core.Result, *sweep.Plan, error) {
	r := &reader{b: data}
	if string(r.bytes(len(magic))) != magic {
		return nil, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version := r.u32()
	fp := r.u64()
	nSec := r.u32()
	if r.err != nil {
		return nil, nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if version != FormatVersion {
		return nil, nil, fmt.Errorf("%w (artifact version %d, this build reads %d)",
			ErrFormatVersion, version, FormatVersion)
	}
	if fp != a.Fingerprint() {
		return nil, nil, fmt.Errorf("%w (artifact %016x, design %q %016x)",
			ErrFingerprint, fp, a.G.Design.Name, a.Fingerprint())
	}
	if nSec != 5 {
		return nil, nil, fmt.Errorf("%w: version 2 carries 5 sections, found %d", ErrCorrupt, nSec)
	}

	var meta *metaSection
	var in *core.Inputs
	var raw sweep.Raw
	var avf []float64
	for _, want := range []uint32{secMeta, secInputs, secPlan, secAVF, secFubState} {
		payload, err := section(r, want)
		if err != nil {
			return nil, nil, err
		}
		switch want {
		case secMeta:
			meta, err = decodeMeta(payload, a)
		case secInputs:
			in, err = decodeInputs(payload)
		case secPlan:
			raw, err = decodePlan(payload, meta.numVerts)
		case secAVF:
			avf, err = decodeAVF(payload, meta.numVerts)
		case secFubState:
			// The analyzer regenerates per-FUB state from its own graph;
			// the stored copy only needs to be self-consistent. (Its real
			// consumer is DecodePrior, which has no analyzer.)
			_, _, err = decodeFubState(payload, meta.uniLen, meta.numVerts)
		}
		if err != nil {
			return nil, nil, err
		}
	}
	if r.remaining() != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.remaining())
	}

	// Restore validates the CSR against the analyzer and rebuilds the
	// closed forms and compiled plan in one fused pass: one pavf.Set per
	// unique subterm set, all sharing the decoded SetIDs backing array.
	plan, exprs, err := sweep.Restore(a, raw, meta.visited)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	// Env rebuilds from the stored inputs through the same code path the
	// solver used, so it matches the original bit for bit.
	if err := a.CheckInputs(in); err != nil {
		return nil, nil, fmt.Errorf("%w: stored inputs rejected: %v", ErrCorrupt, err)
	}
	env, err := a.BuildEnv(in)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: stored inputs rejected: %v", ErrCorrupt, err)
	}
	res := &core.Result{
		Analyzer:   a,
		Inputs:     in,
		Env:        env,
		Exprs:      exprs,
		AVF:        avf,
		Visited:    meta.visited,
		Iterations: meta.iterations,
		Converged:  meta.converged,
	}
	return res, plan, nil
}

// section reads one section envelope (id, length, CRC32C, payload) off
// r, verifying the id and checksum.
func section(r *reader, want uint32) ([]byte, error) {
	id := r.u32()
	length := r.u64()
	sum := r.u32()
	payload := r.bytes(int(length))
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated section %d", ErrCorrupt, want)
	}
	if id != want {
		return nil, fmt.Errorf("%w: section %d where %d expected", ErrCorrupt, id, want)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("%w: section %d CRC32C mismatch", ErrCorrupt, id)
	}
	return payload, nil
}

// metaSection is the decoded meta payload.
type metaSection struct {
	name       string
	uniLen     int
	numVerts   int
	iterations int
	converged  bool
	visited    []bool
}

func encodeMeta(res *core.Result) ([]byte, error) {
	a := res.Analyzer
	n := a.G.NumVerts()
	if len(res.Exprs) != n || len(res.Visited) != n {
		return nil, fmt.Errorf("artifact: result carries %d equations / %d visited flags for %d vertices",
			len(res.Exprs), len(res.Visited), n)
	}
	var buf bytes.Buffer
	writeStr(&buf, a.G.Design.Name)
	writeU32(&buf, uint32(a.Universe().Len()))
	writeU32(&buf, uint32(n))
	writeU32(&buf, uint32(res.Iterations))
	if res.Converged {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	bits := make([]byte, (n+7)/8)
	for v, vis := range res.Visited {
		if vis {
			bits[v/8] |= 1 << (v % 8)
		}
	}
	buf.Write(bits)
	return buf.Bytes(), nil
}

// decodeMeta parses and validates the meta payload against the analyzer.
func decodeMeta(payload []byte, a *core.Analyzer) (*metaSection, error) {
	m, err := decodeMetaRaw(payload)
	if err != nil {
		return nil, err
	}
	if m.name != a.G.Design.Name {
		return nil, fmt.Errorf("%w: artifact design %q, analyzer design %q", ErrFingerprint, m.name, a.G.Design.Name)
	}
	if m.uniLen != a.Universe().Len() {
		return nil, fmt.Errorf("%w: artifact universe has %d terms, analyzer %d", ErrCorrupt, m.uniLen, a.Universe().Len())
	}
	if m.numVerts != a.G.NumVerts() {
		return nil, fmt.Errorf("%w: artifact covers %d vertices, design has %d", ErrCorrupt, m.numVerts, a.G.NumVerts())
	}
	return m, nil
}

// decodeMetaRaw parses the meta payload with no analyzer to check
// against — the DecodePrior path, where the artifact itself is the only
// source of the design's shape.
func decodeMetaRaw(payload []byte) (*metaSection, error) {
	r := &reader{b: payload}
	name := r.str()
	uniLen := r.u32()
	n := r.u32()
	iters := r.u32()
	conv := r.u8()
	if r.err != nil {
		return nil, fmt.Errorf("%w: meta section truncated", ErrCorrupt)
	}
	if conv > 1 {
		return nil, fmt.Errorf("%w: converged flag %d", ErrCorrupt, conv)
	}
	bits := r.bytes((int(n) + 7) / 8)
	if r.err != nil || r.remaining() != 0 {
		return nil, fmt.Errorf("%w: meta visited bitset malformed", ErrCorrupt)
	}
	m := &metaSection{
		name:       name,
		uniLen:     int(uniLen),
		numVerts:   int(n),
		iterations: int(iters),
		converged:  conv == 1,
		visited:    make([]bool, n),
	}
	// Expand byte-wise rather than bit-indexing per vertex: one load and
	// eight shifts per byte keeps this off the decode critical path.
	vis := m.visited
	for i, by := range bits {
		base := i * 8
		end := base + 8
		if end > len(vis) {
			end = len(vis)
		}
		for v := base; v < end; v++ {
			vis[v] = by&1 != 0
			by >>= 1
		}
	}
	return m, nil
}

func encodeInputs(in *core.Inputs) []byte {
	var buf bytes.Buffer
	ports := func(m map[core.StructPort]float64) {
		sps := make([]core.StructPort, 0, len(m))
		for sp := range m {
			sps = append(sps, sp)
		}
		sort.Slice(sps, func(i, j int) bool {
			if sps[i].Struct != sps[j].Struct {
				return sps[i].Struct < sps[j].Struct
			}
			return sps[i].Port < sps[j].Port
		})
		writeU32(&buf, uint32(len(sps)))
		for _, sp := range sps {
			writeStr(&buf, sp.Struct)
			writeStr(&buf, sp.Port)
			writeU64(&buf, math.Float64bits(m[sp]))
		}
	}
	ports(in.ReadPorts)
	ports(in.WritePorts)
	names := make([]string, 0, len(in.StructAVF))
	for s := range in.StructAVF {
		names = append(names, s)
	}
	sort.Strings(names)
	writeU32(&buf, uint32(len(names)))
	for _, s := range names {
		writeStr(&buf, s)
		writeU64(&buf, math.Float64bits(in.StructAVF[s]))
	}
	return buf.Bytes()
}

func decodeInputs(payload []byte) (*core.Inputs, error) {
	r := &reader{b: payload}
	in := core.NewInputs()
	ports := func(m map[core.StructPort]float64, what string) error {
		n := r.count(8) // struct len + port len at minimum
		for i := 0; i < n; i++ {
			sp := core.StructPort{Struct: r.str(), Port: r.str()}
			v := math.Float64frombits(r.u64())
			if r.err != nil {
				return fmt.Errorf("%w: inputs %s table truncated", ErrCorrupt, what)
			}
			if !(v >= 0 && v <= 1) { // also rejects NaN
				return fmt.Errorf("%w: %s pAVF for %s out of [0,1]: %v", ErrCorrupt, what, sp, v)
			}
			if _, dup := m[sp]; dup {
				return fmt.Errorf("%w: duplicate %s port %s", ErrCorrupt, what, sp)
			}
			m[sp] = v
		}
		return nil
	}
	if err := ports(in.ReadPorts, "read"); err != nil {
		return nil, err
	}
	if err := ports(in.WritePorts, "write"); err != nil {
		return nil, err
	}
	n := r.count(12)
	for i := 0; i < n; i++ {
		s := r.str()
		v := math.Float64frombits(r.u64())
		if r.err != nil {
			return nil, fmt.Errorf("%w: inputs structure table truncated", ErrCorrupt)
		}
		if !(v >= 0 && v <= 1) {
			return nil, fmt.Errorf("%w: structure AVF for %q out of [0,1]: %v", ErrCorrupt, s, v)
		}
		if _, dup := in.StructAVF[s]; dup {
			return nil, fmt.Errorf("%w: duplicate structure %q", ErrCorrupt, s)
		}
		in.StructAVF[s] = v
	}
	if r.err != nil || r.remaining() != 0 {
		return nil, fmt.Errorf("%w: inputs section malformed", ErrCorrupt)
	}
	return in, nil
}

func encodePlan(raw sweep.Raw) []byte {
	var buf bytes.Buffer
	writeU32(&buf, uint32(len(raw.SetOff)-1))
	for _, off := range raw.SetOff {
		writeU32(&buf, uint32(off))
	}
	writeU32(&buf, uint32(len(raw.SetIDs)))
	for _, id := range raw.SetIDs {
		writeU32(&buf, uint32(id))
	}
	for _, idx := range raw.FwdIdx {
		writeU32(&buf, uint32(idx))
	}
	for _, idx := range raw.BwdIdx {
		writeU32(&buf, uint32(idx))
	}
	return buf.Bytes()
}

// decodePlan reads the CSR subterm table. Structural validation beyond
// counts (offset monotonicity, term ranges, index coverage) happens in
// sweep.Restore, against the analyzer. The four arrays are read with
// one bounds check each and a tight conversion loop — this is the
// decode hot path.
func decodePlan(payload []byte, numVerts int) (sweep.Raw, error) {
	r := &reader{b: payload}
	nSets := r.count(4)
	raw := sweep.Raw{}
	if r.err != nil || r.remaining() < (nSets+1)*4 {
		return raw, fmt.Errorf("%w: plan offsets truncated", ErrCorrupt)
	}
	raw.SetOff = make([]int32, nSets+1)
	off := r.bytes(4 * (nSets + 1))
	for i := range raw.SetOff {
		v := binary.LittleEndian.Uint32(off[4*i:])
		if v > uint32(len(payload)) { // offsets index SetIDs, bounded by payload size
			return raw, fmt.Errorf("%w: plan offset %d out of range", ErrCorrupt, v)
		}
		raw.SetOff[i] = int32(v)
	}
	nIDs := r.count(4)
	if r.err != nil {
		return raw, fmt.Errorf("%w: plan term table truncated", ErrCorrupt)
	}
	raw.SetIDs = make([]pavf.TermID, nIDs)
	ids := r.bytes(4 * nIDs)
	for i := range raw.SetIDs {
		raw.SetIDs[i] = pavf.TermID(binary.LittleEndian.Uint32(ids[4*i:]))
	}
	if r.remaining() != 2*numVerts*4 {
		return raw, fmt.Errorf("%w: plan indexes %d bytes for %d vertices", ErrCorrupt, r.remaining(), numVerts)
	}
	raw.FwdIdx = make([]int32, numVerts)
	fwd := r.bytes(4 * numVerts)
	for i := range raw.FwdIdx {
		raw.FwdIdx[i] = int32(binary.LittleEndian.Uint32(fwd[4*i:]))
	}
	raw.BwdIdx = make([]int32, numVerts)
	bwd := r.bytes(4 * numVerts)
	for i := range raw.BwdIdx {
		raw.BwdIdx[i] = int32(binary.LittleEndian.Uint32(bwd[4*i:]))
	}
	if r.err != nil || r.remaining() != 0 {
		return raw, fmt.Errorf("%w: plan section malformed", ErrCorrupt)
	}
	return raw, nil
}

// encodeAVF stores the solved AVF vector as raw little-endian float64
// bits — restoring it is a copy, not a re-evaluation, which is what
// makes warm starts an order of magnitude cheaper than cold solves.
func encodeAVF(res *core.Result) ([]byte, error) {
	n := res.Analyzer.G.NumVerts()
	if len(res.AVF) != n {
		return nil, fmt.Errorf("artifact: result carries %d AVFs for %d vertices", len(res.AVF), n)
	}
	out := make([]byte, 8*n)
	for v, avf := range res.AVF {
		if !(avf >= 0 && avf <= 1) {
			return nil, fmt.Errorf("artifact: vertex %d AVF %v out of [0,1]", v, avf)
		}
		binary.LittleEndian.PutUint64(out[8*v:], math.Float64bits(avf))
	}
	return out, nil
}

func decodeAVF(payload []byte, numVerts int) ([]float64, error) {
	if len(payload) != 8*numVerts {
		return nil, fmt.Errorf("%w: avf section holds %d bytes for %d vertices", ErrCorrupt, len(payload), numVerts)
	}
	avf := make([]float64, numVerts)
	for v := range avf {
		f := math.Float64frombits(binary.LittleEndian.Uint64(payload[8*v:]))
		if !(f >= 0 && f <= 1) { // also rejects NaN
			return nil, fmt.Errorf("%w: vertex %d AVF %v out of [0,1]", ErrCorrupt, v, f)
		}
		avf[v] = f
	}
	return avf, nil
}

// encodeFubState writes the incremental-reuse section: the full term
// dictionary (TermID order, so DecodePrior can rebuild the universe and
// reuse the plan section's IDs verbatim) followed by one entry per FUB —
// name, structural fingerprint, vertex count — in FUB declaration order,
// which is also the vertex-array order the plan and avf sections use.
func encodeFubState(a *core.Analyzer) []byte {
	var buf bytes.Buffer
	u := a.Universe()
	writeU32(&buf, uint32(u.Len()))
	for t := 0; t < u.Len(); t++ {
		term := u.Term(pavf.TermID(t))
		buf.WriteByte(byte(term.Kind))
		writeStr(&buf, term.Name)
	}
	counts := make([]uint32, len(a.G.FubNames))
	for v := 0; v < a.G.NumVerts(); v++ {
		counts[a.G.Verts[v].Fub]++
	}
	fps := a.FubFingerprints()
	writeU32(&buf, uint32(len(a.G.FubNames)))
	for f, name := range a.G.FubNames {
		writeStr(&buf, name)
		writeU64(&buf, fps[f])
		writeU32(&buf, counts[f])
	}
	return buf.Bytes()
}

// fubEntry is one decoded fubstate FUB record.
type fubEntry struct {
	name        string
	fingerprint uint64
	verts       int
}

// decodeFubState parses the fubstate payload and checks it against the
// meta section's universe and vertex counts: the dictionary must carry
// exactly uniLen terms starting with ⊤ and free of duplicates, and the
// per-FUB vertex counts must partition numVerts exactly.
func decodeFubState(payload []byte, uniLen, numVerts int) ([]pavf.Term, []fubEntry, error) {
	r := &reader{b: payload}
	nTerms := r.count(5) // kind byte + name length at minimum
	if r.err != nil {
		return nil, nil, fmt.Errorf("%w: fubstate dictionary truncated", ErrCorrupt)
	}
	if nTerms != uniLen || nTerms == 0 {
		return nil, nil, fmt.Errorf("%w: fubstate dictionary has %d terms, meta declares %d", ErrCorrupt, nTerms, uniLen)
	}
	dict := make([]pavf.Term, nTerms)
	seen := make(map[pavf.Term]bool, nTerms)
	for i := range dict {
		kind := pavf.TermKind(r.u8())
		name := r.str()
		if r.err != nil {
			return nil, nil, fmt.Errorf("%w: fubstate dictionary truncated at term %d", ErrCorrupt, i)
		}
		if kind > pavf.KindPseudo {
			return nil, nil, fmt.Errorf("%w: fubstate term %d has unknown kind %d", ErrCorrupt, i, kind)
		}
		t := pavf.Term{Kind: kind, Name: name}
		if (i == 0) != (kind == pavf.KindTop) {
			return nil, nil, fmt.Errorf("%w: fubstate dictionary must open with exactly one ⊤ term", ErrCorrupt)
		}
		if seen[t] {
			return nil, nil, fmt.Errorf("%w: fubstate dictionary repeats term %v", ErrCorrupt, t)
		}
		seen[t] = true
		dict[i] = t
	}
	nFubs := r.count(16) // name length + fingerprint + count at minimum
	if r.err != nil || nFubs == 0 {
		return nil, nil, fmt.Errorf("%w: fubstate FUB table truncated", ErrCorrupt)
	}
	fubs := make([]fubEntry, nFubs)
	total := 0
	names := make(map[string]bool, nFubs)
	for i := range fubs {
		fubs[i] = fubEntry{name: r.str(), fingerprint: r.u64(), verts: int(r.u32())}
		if r.err != nil {
			return nil, nil, fmt.Errorf("%w: fubstate FUB table truncated at entry %d", ErrCorrupt, i)
		}
		if names[fubs[i].name] {
			return nil, nil, fmt.Errorf("%w: fubstate repeats FUB %q", ErrCorrupt, fubs[i].name)
		}
		names[fubs[i].name] = true
		total += fubs[i].verts
	}
	if total != numVerts {
		return nil, nil, fmt.Errorf("%w: fubstate vertex counts sum to %d, meta declares %d", ErrCorrupt, total, numVerts)
	}
	if r.remaining() != 0 {
		return nil, nil, fmt.Errorf("%w: fubstate section malformed", ErrCorrupt)
	}
	return dict, fubs, nil
}

// DecodePrior reconstructs a prior-solve seed from artifact bytes with
// no analyzer: unlike Decode, which requires the identical design, the
// caller here holds an edited design and wants the old design's per-FUB
// walk state to seed core.ResolveIncremental. Everything is validated
// from the artifact alone — the dictionary rebuilds the term universe,
// the plan CSR is checked against it, and the per-FUB extents partition
// the vertex space — so corrupt, truncated, or version-skewed bytes fail
// with explicit errors (ErrCorrupt / ErrFormatVersion), never a panic.
func DecodePrior(data []byte) (*core.PriorState, error) {
	r := &reader{b: data}
	if string(r.bytes(len(magic))) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version := r.u32()
	r.u64() // fingerprint: the edited design's differs by construction
	nSec := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("%w (artifact version %d, this build reads %d)",
			ErrFormatVersion, version, FormatVersion)
	}
	if nSec != 5 {
		return nil, fmt.Errorf("%w: version 2 carries 5 sections, found %d", ErrCorrupt, nSec)
	}
	var meta *metaSection
	var in *core.Inputs
	var raw sweep.Raw
	var avf []float64
	var dict []pavf.Term
	var fubs []fubEntry
	for _, want := range []uint32{secMeta, secInputs, secPlan, secAVF, secFubState} {
		payload, err := section(r, want)
		if err != nil {
			return nil, err
		}
		switch want {
		case secMeta:
			meta, err = decodeMetaRaw(payload)
		case secInputs:
			in, err = decodeInputs(payload)
		case secPlan:
			raw, err = decodePlan(payload, meta.numVerts)
		case secAVF:
			avf, err = decodeAVF(payload, meta.numVerts)
		case secFubState:
			dict, fubs, err = decodeFubState(payload, meta.uniLen, meta.numVerts)
		}
		if err != nil {
			return nil, err
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.remaining())
	}

	// Rebuild the universe in dictionary order: interning into a fresh
	// universe assigns dense sequential IDs, so position i keeps ID i and
	// the plan's term IDs apply unchanged.
	uni := pavf.NewUniverse()
	for i := 1; i < len(dict); i++ {
		if id := uni.Intern(dict[i]); int(id) != i {
			return nil, fmt.Errorf("%w: fubstate dictionary term %d re-interned as %d", ErrCorrupt, i, id)
		}
	}

	// Validate the plan CSR against the dictionary — the same structural
	// rules sweep.Restore enforces, minus the analyzer-specific ones.
	nSets := len(raw.SetOff) - 1
	if nSets < 0 || raw.SetOff[0] != 0 || int(raw.SetOff[nSets]) != len(raw.SetIDs) {
		return nil, fmt.Errorf("%w: plan offsets do not cover the term table", ErrCorrupt)
	}
	sets := make([]pavf.Set, nSets)
	for s := 0; s < nSets; s++ {
		lo, hi := raw.SetOff[s], raw.SetOff[s+1]
		if lo > hi || int(hi) > len(raw.SetIDs) {
			return nil, fmt.Errorf("%w: plan set %d has malformed extent [%d,%d)", ErrCorrupt, s, lo, hi)
		}
		ids := raw.SetIDs[lo:hi]
		for i, id := range ids {
			if id < 0 || int(id) >= len(dict) {
				return nil, fmt.Errorf("%w: plan set %d references term %d outside the dictionary", ErrCorrupt, s, id)
			}
			if i > 0 && ids[i-1] >= id {
				return nil, fmt.Errorf("%w: plan set %d terms not strictly ascending", ErrCorrupt, s)
			}
		}
		sets[s] = pavf.SetFromSorted(ids)
	}
	checkIdx := func(idx []int32) error {
		for _, i := range idx {
			if i < -1 || int(i) >= nSets {
				return fmt.Errorf("%w: plan vertex references set %d of %d", ErrCorrupt, i, nSets)
			}
		}
		return nil
	}
	if err := checkIdx(raw.FwdIdx); err != nil {
		return nil, err
	}
	if err := checkIdx(raw.BwdIdx); err != nil {
		return nil, err
	}

	ps := &core.PriorState{
		Design:   meta.name,
		Universe: uni,
		Inputs:   in,
		Sets:     sets,
		Fubs:     make([]core.FubPrior, len(fubs)),
	}
	off := 0
	for i, fe := range fubs {
		ps.Fubs[i] = core.FubPrior{
			Name:        fe.name,
			Fingerprint: fe.fingerprint,
			FwdIdx:      raw.FwdIdx[off : off+fe.verts],
			BwdIdx:      raw.BwdIdx[off : off+fe.verts],
			AVF:         avf[off : off+fe.verts],
		}
		off += fe.verts
	}
	return ps, nil
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func writeStr(buf *bytes.Buffer, s string) {
	writeU32(buf, uint32(len(s)))
	buf.WriteString(s)
}

// reader is a bounds-checked little-endian cursor. Every accessor
// degrades to a zero value once err is set, so decoders can batch their
// error checks; count caps declared element counts against the bytes
// actually remaining, which is what keeps a fuzzed length field from
// turning into a multi-gigabyte allocation.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated", ErrCorrupt)
	}
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.remaining() < n {
		r.fail()
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// str reads a length-prefixed string; the length is capped by the bytes
// remaining before any allocation happens.
func (r *reader) str() string {
	n := r.u32()
	if r.err != nil || int(n) > r.remaining() {
		r.fail()
		return ""
	}
	return string(r.bytes(int(n)))
}

// count reads an element count and refuses one that could not fit in
// the remaining payload at elemSize bytes per element.
func (r *reader) count(elemSize int) int {
	n := r.u32()
	if r.err != nil || elemSize <= 0 || int(n) > r.remaining()/elemSize {
		r.fail()
		return 0
	}
	return int(n)
}
