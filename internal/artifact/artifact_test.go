package artifact

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"seqavf/internal/core"
	"seqavf/internal/graph/graphtest"
	"seqavf/internal/stats"
	"seqavf/internal/sweep"
)

// buildSolved generates a seeded design, analyzes it, and solves it
// against seeded random inputs.
func buildSolved(t testing.TB, seed, inputSeed uint64) (*core.Analyzer, *core.Result, *core.Inputs) {
	t.Helper()
	d, err := graphtest.Generate(graphtest.Small(seed))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	a, err := core.NewAnalyzer(d.Graph, core.DefaultOptions())
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	in := seededInputs(a, inputSeed)
	res, err := a.Solve(in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return a, res, in
}

// freshAnalyzer rebuilds the analyzer for the same seed from scratch,
// standing in for a different process decoding the artifact.
func freshAnalyzer(t testing.TB, seed uint64) *core.Analyzer {
	t.Helper()
	d, err := graphtest.Generate(graphtest.Small(seed))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	a, err := core.NewAnalyzer(d.Graph, core.DefaultOptions())
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	return a
}

// seededInputs assigns deterministic pAVFs to every structure port.
func seededInputs(a *core.Analyzer, seed uint64) *core.Inputs {
	rng := stats.New(seed)
	in := core.NewInputs()
	sortPorts := func(sps []core.StructPort) {
		sort.Slice(sps, func(i, j int) bool {
			if sps[i].Struct != sps[j].Struct {
				return sps[i].Struct < sps[j].Struct
			}
			return sps[i].Port < sps[j].Port
		})
	}
	reads := a.ReadPortTerms()
	sortPorts(reads)
	for _, sp := range reads {
		in.ReadPorts[sp] = rng.Float64()
	}
	writes := a.WritePortTerms()
	sortPorts(writes)
	for _, sp := range writes {
		in.WritePorts[sp] = rng.Float64()
	}
	return in
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	_, res, _ := buildSolved(t, 7, 1001)
	data, err := Encode(res, nil)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	a2 := freshAnalyzer(t, 7)
	got, plan, err := Decode(data, a2)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if plan == nil {
		t.Fatal("Decode returned nil plan")
	}
	if len(got.AVF) != len(res.AVF) {
		t.Fatalf("decoded %d AVFs, want %d", len(got.AVF), len(res.AVF))
	}
	for v := range res.AVF {
		if got.AVF[v] != res.AVF[v] {
			t.Fatalf("vertex %d: decoded AVF %v != original %v", v, got.AVF[v], res.AVF[v])
		}
	}
	for v := range res.Visited {
		if got.Visited[v] != res.Visited[v] {
			t.Fatalf("vertex %d: decoded visited %v != original %v", v, got.Visited[v], res.Visited[v])
		}
	}
	if got.Iterations != res.Iterations || got.Converged != res.Converged {
		t.Fatalf("metadata drift: got (%d,%v), want (%d,%v)",
			got.Iterations, got.Converged, res.Iterations, res.Converged)
	}
	for v := range res.Exprs {
		if got.Equation(0) != res.Equation(0) {
			t.Fatalf("vertex %d equation drift:\n got %s\nwant %s", v, got.Equation(0), res.Equation(0))
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	_, res, _ := buildSolved(t, 13, 5)
	a, err := Encode(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two encodes of the same result differ byte-wise")
	}
	// Encoding with a pre-compiled plan must produce the same bytes as
	// letting Encode compile one.
	p, err := sweep.Compile(res)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Encode(res, p)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(c) {
		t.Fatal("encode with explicit plan differs from encode with compiled plan")
	}
}

func TestDecodeVersionGate(t *testing.T) {
	_, res, _ := buildSolved(t, 3, 9)
	data, err := Encode(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The version field sits right after the 8-byte magic.
	binary.LittleEndian.PutUint32(data[8:], FormatVersion+1)
	_, _, err = Decode(data, res.Analyzer)
	if !errors.Is(err, ErrFormatVersion) {
		t.Fatalf("future-version artifact: got %v, want ErrFormatVersion", err)
	}
}

func TestDecodeFingerprintGate(t *testing.T) {
	_, res, _ := buildSolved(t, 4, 9)
	data, err := Encode(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	other := freshAnalyzer(t, 5)
	_, _, err = Decode(data, other)
	if !errors.Is(err, ErrFingerprint) {
		t.Fatalf("cross-design decode: got %v, want ErrFingerprint", err)
	}
}

func TestDecodeCorruptionDetected(t *testing.T) {
	_, res, _ := buildSolved(t, 6, 11)
	data, err := Encode(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in every section region; CRC32C must catch
	// each. Skip the 24-byte header (magic+version+fingerprint+count):
	// header damage is reported as corrupt magic/fingerprint instead.
	for _, off := range []int{30, len(data) / 2, len(data) - 2} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		if _, _, err := Decode(mut, res.Analyzer); err == nil {
			t.Fatalf("flipping byte %d went undetected", off)
		}
	}
	// Truncations at every boundary class must error, not panic.
	for _, n := range []int{0, 4, 8, 23, 24, 40, len(data) - 1} {
		if n > len(data) {
			continue
		}
		if _, _, err := Decode(data[:n], res.Analyzer); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestStoreGetPutMissHit(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, res, in := buildSolved(t, 21, 77)

	if got, plan, err := st.Get(a); err != nil || got != nil || plan != nil {
		t.Fatalf("empty store Get = (%v, %v, %v), want clean miss", got, plan, err)
	}
	if err := st.Put(res, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d artifacts, want 1", st.Len())
	}
	got, plan, err := st.Get(freshAnalyzer(t, 21))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got == nil || plan == nil {
		t.Fatal("Get missed after Put")
	}
	if err := got.Reevaluate(in); err != nil {
		t.Fatalf("Reevaluate on stored result: %v", err)
	}
	for v := range res.AVF {
		if got.AVF[v] != res.AVF[v] {
			t.Fatalf("vertex %d: stored AVF %v != original %v", v, got.AVF[v], res.AVF[v])
		}
	}
	// A different design's analyzer must miss, not decode this entry.
	if got, _, err := st.Get(freshAnalyzer(t, 22)); err != nil || got != nil {
		t.Fatalf("cross-design Get = (%v, %v), want clean miss", got, err)
	}
	// No staging temp files may survive a completed Put.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("staging files left behind: %v", tmps)
	}
}

func TestStoreRefusesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, res, _ := buildSolved(t, 30, 1)
	if err := st.Put(res, nil); err != nil {
		t.Fatal(err)
	}
	arts, err := filepath.Glob(filepath.Join(dir, "*.sart"))
	if err != nil || len(arts) != 1 {
		t.Fatalf("glob *.sart: %v (%d entries)", err, len(arts))
	}
	path := arts[0]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(a); err == nil {
		t.Fatal("corrupted store entry served without error")
	}
	// Regeneration path: Put overwrites the bad entry and Get recovers.
	if err := st.Put(res, nil); err != nil {
		t.Fatal(err)
	}
	if got, _, err := st.Get(a); err != nil || got == nil {
		t.Fatalf("Get after regenerating = (%v, %v), want hit", got, err)
	}
}

func TestStoreEviction(t *testing.T) {
	dir := t.TempDir()
	// Size one artifact first so the bound admits roughly two.
	a0, res0, _ := buildSolved(t, 40, 1)
	probe, err := Encode(res0, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{MaxBytes: int64(len(probe)) * 5 / 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(res0, nil); err != nil {
		t.Fatal(err)
	}
	// Make res0 strictly older than the entries that follow.
	old := filepath.Join(dir, ents1(t, dir)[0])
	past := osStatMtime(t, old).Add(-1e9)
	if err := os.Chtimes(old, past, past); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(41); seed <= 43; seed++ {
		_, res, _ := buildSolved(t, seed, 1)
		if err := st.Put(res, nil); err != nil {
			t.Fatal(err)
		}
	}
	if st.opts.MaxBytes > 0 && st.SizeBytes() > 4*st.opts.MaxBytes {
		t.Fatalf("store grew to %d bytes against bound %d", st.SizeBytes(), st.opts.MaxBytes)
	}
	if st.Len() >= 4 {
		t.Fatalf("no eviction happened: %d artifacts for bound %d bytes", st.Len(), st.opts.MaxBytes)
	}
	// The oldest (first) entry is the one evicted.
	if got, _, err := st.Get(a0); err != nil || got != nil {
		t.Fatalf("LRU entry survived eviction: (%v, %v)", got, err)
	}
}

func ents1(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names
}

func osStatMtime(t *testing.T, path string) time.Time {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.ModTime()
}

// EngineSecondLevel: a sweep engine with a fresh in-memory LRU must
// serve its plan from the disk store and the served plan must sweep
// bit-identically to a freshly compiled one.
func TestEngineSecondLevelStore(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, res, in := buildSolved(t, 50, 3)
	if err := st.Put(res, nil); err != nil {
		t.Fatal(err)
	}

	cold := sweep.New(sweep.Options{Workers: 1})
	warm := sweep.New(sweep.Options{Workers: 1, Store: st})
	in2 := seededInputs(a, 999)
	ws := []sweep.Workload{{Name: "w1", Inputs: in}, {Name: "w2", Inputs: in2}}
	bc, err := cold.Sweep(res, ws)
	if err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	bw, err := warm.Sweep(res, ws)
	if err != nil {
		t.Fatalf("warm sweep: %v", err)
	}
	for i := range ws {
		for v := range bc.Results[i].AVF {
			if bc.Results[i].AVF[v] != bw.Results[i].AVF[v] {
				t.Fatalf("workload %d vertex %d: store-served plan %v != compiled plan %v",
					i, v, bw.Results[i].AVF[v], bc.Results[i].AVF[v])
			}
		}
	}
	if warm.CachedPlans() != 1 {
		t.Fatalf("store-served plan not promoted into the memory LRU (%d cached)", warm.CachedPlans())
	}
}

// A compile through an engine wired to a store must persist the plan so
// the next engine (fresh process) starts warm.
func TestEnginePersistsCompiles(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, res, in := buildSolved(t, 51, 3)
	eng := sweep.New(sweep.Options{Workers: 1, Store: st})
	if _, err := eng.Sweep(res, []sweep.Workload{{Name: "w", Inputs: in}}); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("engine compile not persisted: store holds %d artifacts", st.Len())
	}
}
