package artifact

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"seqavf/internal/core"
	"seqavf/internal/obs"
	"seqavf/internal/sweep"
)

// ext names artifact files; the content address (design fingerprint) is
// the file name.
const ext = ".sart"

// headExt names head-pointer files: one per design name, holding the
// fingerprint of that design's most recently Put artifact. Content
// addressing alone cannot answer "what did this design look like before
// the edit?" — the edited design hashes to a fingerprint no artifact
// carries — so Put leaves a name-keyed breadcrumb for Prior to follow.
const headExt = ".head"

// Options configure a Store. The zero value is usable: unbounded disk,
// no telemetry.
type Options struct {
	// MaxBytes bounds the store's total size. When a Put pushes the
	// store past the bound, least-recently-used artifacts (by access
	// time; Get touches) are evicted until it fits, keeping at least the
	// entry just written. 0 means unbounded.
	MaxBytes int64
	// Obs receives store telemetry: hit/miss/put/eviction counters and
	// decode-failure counts. nil disables instrumentation.
	Obs *obs.Registry
}

// Store is an on-disk content-addressed artifact cache: one file per
// design fingerprint, written atomically (temp file + rename), decoded
// with full integrity checking on every Get. Multiple processes may
// share a directory — rename is atomic within a filesystem, and readers
// only ever observe complete files. The in-process mutex serializes
// eviction bookkeeping.
type Store struct {
	dir  string
	opts Options
	mu   sync.Mutex
}

// Open returns a Store rooted at dir, creating the directory if needed.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("artifact: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: creating store: %w", err)
	}
	return &Store{dir: dir, opts: opts}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(fp uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%016x%s", fp, ext))
}

// headPath names the head-pointer file for a design name. The name is
// hashed rather than embedded: design names are arbitrary strings, file
// names are not. Prior re-checks the decoded artifact's design name, so
// a hash collision degrades to a miss, never to wrong state.
func (s *Store) headPath(designName string) string {
	h := fnv.New64a()
	h.Write([]byte(designName))
	return filepath.Join(s.dir, fmt.Sprintf("%016x%s", h.Sum64(), headExt))
}

// Get loads and decodes the artifact for a's fingerprint. A clean miss
// returns (nil, nil, nil); a present-but-unreadable artifact (version
// skew, corruption) returns the decode error so callers can report it
// before regenerating — the next Put overwrites the bad entry.
func (s *Store) Get(a *core.Analyzer) (*core.Result, *sweep.Plan, error) {
	return s.GetContext(context.Background(), a)
}

// GetContext is Get with request-scoped tracing: the "artifact.restore"
// span nests under ctx's current span, its "outcome" attribute
// distinguishes warm-start hits from misses and decode errors, and
// successful restores feed the artifact.restore_seconds latency
// histogram — the warm-start half of the warm-vs-cold budget.
func (s *Store) GetContext(ctx context.Context, a *core.Analyzer) (*core.Result, *sweep.Plan, error) {
	fp := a.Fingerprint()
	sp := s.opts.Obs.StartSpanContext(ctx, "artifact.restore")
	defer sp.End()
	sp.SetAttr("fingerprint", fmt.Sprintf("%016x", fp))
	start := time.Now()
	path := s.path(fp)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		s.opts.Obs.Counter("artifact.store_misses").Inc()
		sp.SetAttr("outcome", "miss")
		return nil, nil, nil
	}
	if err != nil {
		s.opts.Obs.Counter("artifact.store_errors").Inc()
		sp.SetAttr("outcome", "error")
		return nil, nil, fmt.Errorf("artifact: reading %s: %w", path, err)
	}
	res, plan, err := Decode(data, a)
	if err != nil {
		s.opts.Obs.Counter("artifact.decode_errors").Inc()
		sp.SetAttr("outcome", "error")
		return nil, nil, fmt.Errorf("artifact: %s: %w", path, err)
	}
	// Touch for LRU: eviction orders by mtime, and a freshly served
	// artifact is the one to keep. Best-effort — a racing eviction or a
	// read-only store must not fail the hit.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	s.opts.Obs.Counter("artifact.store_hits").Inc()
	s.opts.Obs.FixedHistogram("artifact.restore_seconds", obs.LatencyBuckets).
		Observe(time.Since(start).Seconds())
	sp.SetAttr("outcome", "hit")
	sp.SetAttr("bytes", len(data))
	return res, plan, nil
}

// Put encodes res (compiling its plan when plan is nil) and installs it
// under the design fingerprint via an atomic write-rename, then evicts
// least-recently-used entries beyond MaxBytes. An existing entry for
// the same fingerprint is replaced.
func (s *Store) Put(res *core.Result, plan *sweep.Plan) error {
	data, err := Encode(res, plan)
	if err != nil {
		return err
	}
	path := s.path(res.Analyzer.Fingerprint())
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("artifact: staging write: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmp.Name(), 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: writing %s: %w", path, werr)
	}
	s.opts.Obs.Counter("artifact.store_puts").Inc()
	// Leave the name-keyed head pointer for incremental re-solves.
	// Best-effort: the pointer is an optimization, and a stale or missing
	// one only costs a cold solve.
	head := res.Analyzer.Fingerprint()
	if werr := os.WriteFile(s.headPath(res.Analyzer.G.Design.Name), []byte(fmt.Sprintf("%016x", head)), 0o644); werr != nil {
		s.opts.Obs.Counter("artifact.store_errors").Inc()
	}
	if s.opts.MaxBytes > 0 {
		s.evictLocked(filepath.Base(path))
	}
	return nil
}

// Prior loads the most recently Put artifact for a design *name* —
// regardless of fingerprint — and distills it into the seed state
// core.ResolveIncremental consumes. This is the edited-design path: the
// edit changed the fingerprint, so GetContext misses, but the prior
// artifact still describes every FUB the edit left alone. A clean miss
// (no head pointer, or it names an evicted artifact) returns (nil, nil);
// unreadable bytes return the decode error so callers can report before
// regenerating.
func (s *Store) Prior(ctx context.Context, designName string) (*core.PriorState, error) {
	sp := s.opts.Obs.StartSpanContext(ctx, "artifact.prior")
	defer sp.End()
	sp.SetAttr("design", designName)
	headData, err := os.ReadFile(s.headPath(designName))
	if errors.Is(err, fs.ErrNotExist) {
		sp.SetAttr("outcome", "miss")
		return nil, nil
	}
	if err != nil {
		sp.SetAttr("outcome", "error")
		return nil, fmt.Errorf("artifact: reading head pointer for %q: %w", designName, err)
	}
	var fp uint64
	if _, err := fmt.Sscanf(string(headData), "%16x", &fp); err != nil {
		sp.SetAttr("outcome", "error")
		return nil, fmt.Errorf("artifact: head pointer for %q is malformed", designName)
	}
	path := s.path(fp)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		sp.SetAttr("outcome", "miss")
		return nil, nil
	}
	if err != nil {
		sp.SetAttr("outcome", "error")
		return nil, fmt.Errorf("artifact: reading %s: %w", path, err)
	}
	ps, err := DecodePrior(data)
	if err != nil {
		s.opts.Obs.Counter("artifact.decode_errors").Inc()
		sp.SetAttr("outcome", "error")
		return nil, fmt.Errorf("artifact: %s: %w", path, err)
	}
	if ps.Design != designName {
		// Head-pointer hash collision between two design names.
		sp.SetAttr("outcome", "miss")
		return nil, nil
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	sp.SetAttr("outcome", "hit")
	sp.SetAttr("fingerprint", fmt.Sprintf("%016x", fp))
	return ps, nil
}

// evictLocked removes least-recently-used artifacts until the store
// fits MaxBytes, never removing keep (the entry just written). Requires
// s.mu held.
func (s *Store) evictLocked(keep string) {
	type entry struct {
		name  string
		size  int64
		mtime time.Time
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	var files []entry
	var total int64
	for _, de := range ents {
		if de.IsDir() || filepath.Ext(de.Name()) != ext {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, entry{name: de.Name(), size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= s.opts.MaxBytes {
			break
		}
		if f.name == keep {
			continue
		}
		if os.Remove(filepath.Join(s.dir, f.name)) == nil {
			total -= f.size
			s.opts.Obs.Counter("artifact.evictions").Inc()
		}
	}
}

// Len reports the number of artifacts currently stored.
func (s *Store) Len() int {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range ents {
		if !de.IsDir() && filepath.Ext(de.Name()) == ext {
			n++
		}
	}
	return n
}

// SizeBytes reports the store's total artifact size on disk.
func (s *Store) SizeBytes() int64 {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, de := range ents {
		if de.IsDir() || filepath.Ext(de.Name()) != ext {
			continue
		}
		if info, err := de.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// GetPlan and PutPlan make *Store a sweep.PlanStore: the engine's
// second-level cache behind its in-memory LRU. GetPlan maps decode
// failures to errors (the engine counts them and recompiles) and clean
// misses to (nil, nil). The context carries the request's trace state
// so the restore span lands under the engine's "sweep.plan" span.
func (s *Store) GetPlan(ctx context.Context, res *core.Result) (*sweep.Plan, error) {
	_, plan, err := s.GetContext(ctx, res.Analyzer)
	return plan, err
}

// PutPlan persists the compiled plan (with its source result) under the
// design fingerprint.
func (s *Store) PutPlan(res *core.Result, p *sweep.Plan) error {
	return s.Put(res, p)
}
