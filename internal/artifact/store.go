package artifact

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"seqavf/internal/core"
	"seqavf/internal/fleet"
	"seqavf/internal/obs"
	"seqavf/internal/sweep"
)

// ext names artifact files; the content address (design fingerprint) is
// the file name.
const ext = ".sart"

// headExt names head-pointer files: one per design name, holding the
// fingerprint of that design's most recently Put artifact. Content
// addressing alone cannot answer "what did this design look like before
// the edit?" — the edited design hashes to a fingerprint no artifact
// carries — so Put leaves a name-keyed breadcrumb for Prior to follow.
const headExt = ".head"

// tmpMaxAge gates the stale-staging sweep in Open: a put-*.tmp file
// older than this was stranded by a crash between CreateTemp and
// Rename (a live Put holds its tmp for milliseconds) and is removed so
// dead staging bytes stop eating the MaxBytes budget's disk. Younger
// tmp files may belong to a concurrent writer and are left alone.
const tmpMaxAge = time.Hour

// maxRemoteArtifactBytes caps how much of a peer's response the remote
// tier will buffer: the codec's own section caps mean a genuine
// artifact decodes from far less, so anything bigger is a broken or
// hostile peer.
const maxRemoteArtifactBytes = 1 << 30

// Remote configures the store's pull-through tier: on a local miss the
// store fetches the artifact from the fleet peer that owns its
// fingerprint (rendezvous order over Peers), verifies the bytes with
// the same CRC-checked Decode every local read gets, and installs the
// artifact atomically so the next read is local. Replication is safe
// by construction — artifacts are immutable, versioned, checksummed,
// and keyed by content.
type Remote struct {
	// Peers are the other replicas' base URLs (this process excluded),
	// each serving GET /v1/artifacts/{fingerprint}.
	Peers []string
	// Client performs the fetches. nil uses a client with a 5s timeout.
	Client *http.Client
}

// Options configure a Store. The zero value is usable: unbounded disk,
// no remote tier, no telemetry.
type Options struct {
	// MaxBytes bounds the store's total size — artifacts plus head
	// pointers, the same set eviction accounts. When a Put pushes the
	// store past the bound, least-recently-used artifacts (by access
	// time; Get touches) are evicted until it fits, keeping at least the
	// entry just written. 0 means unbounded.
	MaxBytes int64
	// Remote, when non-nil, enables the pull-through tier: local misses
	// consult the owning peers before reporting a miss.
	Remote *Remote
	// Obs receives store telemetry: hit/miss/put/eviction counters,
	// remote-tier counters, and decode-failure counts. nil disables
	// instrumentation.
	Obs *obs.Registry
}

// Store is an on-disk content-addressed artifact cache: one file per
// design fingerprint, written atomically (temp file + rename), decoded
// with full integrity checking on every Get. Multiple processes may
// share a directory — rename is atomic within a filesystem, and readers
// only ever observe complete files. The in-process mutex serializes
// eviction bookkeeping.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	remote *Remote // guarded by mu; set at Open or via SetRemote
}

// Open returns a Store rooted at dir, creating the directory if needed.
// Staging files stranded by a crashed writer (put-*.tmp older than an
// hour) are swept here so they cannot silently eat the disk budget
// forever; a concurrent writer's fresh tmp is age-gated out of the
// sweep.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("artifact: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: creating store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, remote: opts.Remote}
	s.sweepStaleTmp()
	return s, nil
}

// SetRemote installs (or clears) the pull-through tier after Open —
// the late-binding hook for callers that learn their peer addresses
// only once listeners are up.
func (s *Store) SetRemote(rem *Remote) {
	s.mu.Lock()
	s.remote = rem
	s.mu.Unlock()
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(fp uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%016x%s", fp, ext))
}

// headPath names the head-pointer file for a design name. The name is
// hashed rather than embedded: design names are arbitrary strings, file
// names are not. Prior re-checks the decoded artifact's design name, so
// a hash collision degrades to a miss, never to wrong state.
func (s *Store) headPath(designName string) string {
	h := fnv.New64a()
	h.Write([]byte(designName))
	return filepath.Join(s.dir, fmt.Sprintf("%016x%s", h.Sum64(), headExt))
}

// parseHead validates a head-pointer payload: exactly one 16-hex-digit
// token, nothing else. Sscanf-style parsing accepted trailing garbage —
// a torn or concatenated write would quietly resolve to a wrong-but-
// well-formed fingerprint — so anything but the canonical form Put
// writes is malformed.
func parseHead(b []byte) (uint64, bool) {
	if len(b) != 16 {
		return 0, false
	}
	for _, c := range b {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return 0, false
		}
	}
	fp, err := strconv.ParseUint(string(b), 16, 64)
	return fp, err == nil
}

// sweepStaleTmp removes staging files stranded by crashed writers.
func (s *Store) sweepStaleTmp() {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-tmpMaxAge)
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, "put-") || !strings.HasSuffix(name, ".tmp") {
			continue
		}
		info, err := de.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		if os.Remove(filepath.Join(s.dir, name)) == nil {
			s.opts.Obs.Counter("artifact.tmp_sweeps").Inc()
		}
	}
}

// Get loads and decodes the artifact for a's fingerprint. A clean miss
// returns (nil, nil, nil); a present-but-unreadable artifact (version
// skew, corruption) returns the decode error so callers can report it
// before regenerating — the next Put overwrites the bad entry.
func (s *Store) Get(a *core.Analyzer) (*core.Result, *sweep.Plan, error) {
	return s.GetContext(context.Background(), a)
}

// GetContext is Get with request-scoped tracing: the "artifact.restore"
// span nests under ctx's current span, its "outcome" attribute
// distinguishes warm-start hits from misses, remote-tier hits, and
// decode errors, and successful restores feed the
// artifact.restore_seconds latency histogram — the warm-start half of
// the warm-vs-cold budget. With a Remote configured, a local miss
// consults the owning peers before reporting a miss.
func (s *Store) GetContext(ctx context.Context, a *core.Analyzer) (*core.Result, *sweep.Plan, error) {
	fp := a.Fingerprint()
	sp := s.opts.Obs.StartSpanContext(ctx, "artifact.restore")
	defer sp.End()
	sp.SetAttr("fingerprint", fmt.Sprintf("%016x", fp))
	start := time.Now()
	path := s.path(fp)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		s.opts.Obs.Counter("artifact.store_misses").Inc()
		if res, plan, n := s.fetchRemote(ctx, a, fp); res != nil {
			s.opts.Obs.FixedHistogram("artifact.restore_seconds", obs.LatencyBuckets).
				Observe(time.Since(start).Seconds())
			sp.SetAttr("outcome", "remote")
			sp.SetAttr("bytes", n)
			return res, plan, nil
		}
		sp.SetAttr("outcome", "miss")
		return nil, nil, nil
	}
	if err != nil {
		s.opts.Obs.Counter("artifact.store_errors").Inc()
		sp.SetAttr("outcome", "error")
		return nil, nil, fmt.Errorf("artifact: reading %s: %w", path, err)
	}
	res, plan, err := Decode(data, a)
	if err != nil {
		s.opts.Obs.Counter("artifact.decode_errors").Inc()
		sp.SetAttr("outcome", "error")
		return nil, nil, fmt.Errorf("artifact: %s: %w", path, err)
	}
	// Touch for LRU: eviction orders by mtime, and a freshly served
	// artifact is the one to keep. Best-effort — a racing eviction or a
	// read-only store must not fail the hit.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	s.opts.Obs.Counter("artifact.store_hits").Inc()
	s.opts.Obs.FixedHistogram("artifact.restore_seconds", obs.LatencyBuckets).
		Observe(time.Since(start).Seconds())
	sp.SetAttr("outcome", "hit")
	sp.SetAttr("bytes", len(data))
	return res, plan, nil
}

// fetchRemote is the pull-through tier: peers are tried in rendezvous
// order for the fingerprint (the first choice is the peer a
// consistently-hashed fleet would have routed this design's solve to),
// fetched bytes are verified with the full CRC-checked Decode before
// anything is trusted, and a verified artifact is installed locally so
// the warm start survives the next restart too. Every failure mode is
// soft: a dead peer, a 404, or bytes that fail verification move on to
// the next peer and at worst degrade to a clean local miss.
func (s *Store) fetchRemote(ctx context.Context, a *core.Analyzer, fp uint64) (*core.Result, *sweep.Plan, int) {
	s.mu.Lock()
	rem := s.remote
	s.mu.Unlock()
	if rem == nil || len(rem.Peers) == 0 {
		return nil, nil, 0
	}
	client := rem.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	key := fmt.Sprintf("%016x", fp)
	sp := obs.SpanFromContext(ctx)
	for _, peer := range fleet.Rank(key, rem.Peers) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/artifacts/"+key, nil)
		if err != nil {
			s.opts.Obs.Counter("artifact.remote_errors").Inc()
			continue
		}
		if sp != nil && !sp.TraceID().IsZero() {
			req.Header.Set("traceparent", obs.FormatTraceparent(sp.TraceID(), sp.SpanID()))
		}
		resp, err := client.Do(req)
		if err != nil {
			s.opts.Obs.Counter("artifact.remote_errors").Inc()
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			s.opts.Obs.Counter("artifact.remote_errors").Inc()
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteArtifactBytes))
		resp.Body.Close()
		if err != nil {
			s.opts.Obs.Counter("artifact.remote_errors").Inc()
			continue
		}
		// Verify before trusting: the peer's bytes go through the same
		// fingerprint + CRC gates a local read gets, so a stale, torn, or
		// hostile payload is indistinguishable from a miss, never state.
		res, plan, err := Decode(data, a)
		if err != nil {
			s.opts.Obs.Counter("artifact.remote_errors").Inc()
			continue
		}
		// Install locally (atomic temp + rename) so the pulled artifact
		// survives this process and serves the next peer's pull. Failure
		// to persist must not fail the hit.
		s.mu.Lock()
		if err := s.installLocked(data, fp, res.Analyzer.G.Design.Name); err != nil {
			s.opts.Obs.Counter("artifact.store_errors").Inc()
		}
		s.mu.Unlock()
		s.opts.Obs.Counter("artifact.remote_hits").Inc()
		return res, plan, len(data)
	}
	s.opts.Obs.Counter("artifact.remote_misses").Inc()
	return nil, nil, 0
}

// Raw returns the stored artifact bytes for a fingerprint without
// decoding — the serving side of the remote tier (the peer verifies).
// The read counts as an access for LRU purposes. Missing entries
// return an error satisfying errors.Is(err, fs.ErrNotExist).
func (s *Store) Raw(fp uint64) ([]byte, error) {
	path := s.path(fp)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return data, nil
}

// Put encodes res (compiling its plan when plan is nil) and installs it
// under the design fingerprint via an atomic write-rename, then evicts
// least-recently-used entries beyond MaxBytes. An existing entry for
// the same fingerprint is replaced.
func (s *Store) Put(res *core.Result, plan *sweep.Plan) error {
	data, err := Encode(res, plan)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.installLocked(data, res.Analyzer.Fingerprint(), res.Analyzer.G.Design.Name)
}

// installLocked writes encoded artifact bytes under fp (atomic temp +
// rename), leaves the name-keyed head pointer, and evicts beyond
// MaxBytes. Requires s.mu held. Shared by Put and the remote tier's
// pull-through install.
func (s *Store) installLocked(data []byte, fp uint64, designName string) error {
	path := s.path(fp)
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("artifact: staging write: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmp.Name(), 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: writing %s: %w", path, werr)
	}
	s.opts.Obs.Counter("artifact.store_puts").Inc()
	// Leave the name-keyed head pointer for incremental re-solves — also
	// temp + rename, so a racing Prior (possibly in another process
	// sharing the directory) never reads a torn pointer. Best-effort: the
	// pointer is an optimization, and a stale or missing one only costs a
	// cold solve.
	if werr := s.writeHeadAtomic(designName, fp); werr != nil {
		s.opts.Obs.Counter("artifact.store_errors").Inc()
	}
	if s.opts.MaxBytes > 0 {
		s.evictLocked(filepath.Base(path))
	}
	return nil
}

// writeHeadAtomic installs the head pointer for designName via the same
// temp + rename protocol artifacts use.
func (s *Store) writeHeadAtomic(designName string, fp uint64) error {
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	_, werr := fmt.Fprintf(tmp, "%016x", fp)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmp.Name(), 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), s.headPath(designName))
	}
	if werr != nil {
		os.Remove(tmp.Name())
	}
	return werr
}

// Prior loads the most recently Put artifact for a design *name* —
// regardless of fingerprint — and distills it into the seed state
// core.ResolveIncremental consumes. This is the edited-design path: the
// edit changed the fingerprint, so GetContext misses, but the prior
// artifact still describes every FUB the edit left alone. A clean miss
// (no head pointer, or it names an evicted artifact) returns (nil, nil);
// unreadable bytes return the decode error so callers can report before
// regenerating.
func (s *Store) Prior(ctx context.Context, designName string) (*core.PriorState, error) {
	sp := s.opts.Obs.StartSpanContext(ctx, "artifact.prior")
	defer sp.End()
	sp.SetAttr("design", designName)
	headData, err := os.ReadFile(s.headPath(designName))
	if errors.Is(err, fs.ErrNotExist) {
		sp.SetAttr("outcome", "miss")
		return nil, nil
	}
	if err != nil {
		sp.SetAttr("outcome", "error")
		return nil, fmt.Errorf("artifact: reading head pointer for %q: %w", designName, err)
	}
	fp, ok := parseHead(headData)
	if !ok {
		sp.SetAttr("outcome", "error")
		return nil, fmt.Errorf("artifact: head pointer for %q is malformed", designName)
	}
	path := s.path(fp)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		sp.SetAttr("outcome", "miss")
		return nil, nil
	}
	if err != nil {
		sp.SetAttr("outcome", "error")
		return nil, fmt.Errorf("artifact: reading %s: %w", path, err)
	}
	ps, err := DecodePrior(data)
	if err != nil {
		s.opts.Obs.Counter("artifact.decode_errors").Inc()
		sp.SetAttr("outcome", "error")
		return nil, fmt.Errorf("artifact: %s: %w", path, err)
	}
	if ps.Design != designName {
		// Head-pointer hash collision between two design names.
		sp.SetAttr("outcome", "miss")
		return nil, nil
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	sp.SetAttr("outcome", "hit")
	sp.SetAttr("fingerprint", fmt.Sprintf("%016x", fp))
	return ps, nil
}

// evictLocked brings the store under MaxBytes and sweeps head-pointer
// debris. Requires s.mu held.
//
// Accounting covers everything the store writes: artifact bytes,
// sensitivity-vector bytes, AND head-pointer bytes (SizeBytes reports
// the same set). The pass first
// removes orphaned heads — pointers whose target artifact no longer
// exists, stranded by an earlier eviction or crash; left alone they
// accumulate one per design name forever. Then least-recently-used
// artifacts go (never keep, the entry just written), and each evicted
// artifact takes its now-dangling head pointers with it.
func (s *Store) evictLocked(keep string) {
	type entry struct {
		name  string
		size  int64
		mtime time.Time
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	var files []entry
	var total int64
	live := make(map[string]bool)         // artifact file names present
	headsFor := make(map[string][]string) // artifact file name → head file names
	headSize := make(map[string]int64)
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		switch filepath.Ext(de.Name()) {
		case ext:
			files = append(files, entry{name: de.Name(), size: info.Size(), mtime: info.ModTime()})
			live[de.Name()] = true
			total += info.Size()
		case sensExt:
			// Sensitivity vectors join the same LRU as artifacts: counted
			// against MaxBytes, evicted by age, no head bookkeeping.
			files = append(files, entry{name: de.Name(), size: info.Size(), mtime: info.ModTime()})
			total += info.Size()
		case headExt:
			headSize[de.Name()] = info.Size()
			total += info.Size()
		}
	}
	for head := range headSize {
		target := ""
		if data, err := os.ReadFile(filepath.Join(s.dir, head)); err == nil {
			if fp, ok := parseHead(data); ok {
				target = fmt.Sprintf("%016x%s", fp, ext)
			}
		}
		if target == "" || !live[target] {
			// Orphaned (dangling or unreadable) head: its artifact is gone,
			// so the breadcrumb leads nowhere. Sweep it.
			if os.Remove(filepath.Join(s.dir, head)) == nil {
				total -= headSize[head]
				s.opts.Obs.Counter("artifact.head_evictions").Inc()
			}
			continue
		}
		headsFor[target] = append(headsFor[target], head)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= s.opts.MaxBytes {
			break
		}
		if f.name == keep {
			continue
		}
		if os.Remove(filepath.Join(s.dir, f.name)) == nil {
			total -= f.size
			s.opts.Obs.Counter("artifact.evictions").Inc()
			// The artifact is gone; its heads now dangle. Take them too so
			// the next pass (and SizeBytes) never sees them.
			for _, head := range headsFor[f.name] {
				if os.Remove(filepath.Join(s.dir, head)) == nil {
					total -= headSize[head]
					s.opts.Obs.Counter("artifact.head_evictions").Inc()
				}
			}
		}
	}
}

// Len reports the number of artifacts currently stored (head pointers
// are bookkeeping, not artifacts, and are not counted).
func (s *Store) Len() int {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range ents {
		if !de.IsDir() && filepath.Ext(de.Name()) == ext {
			n++
		}
	}
	return n
}

// SizeBytes reports the store's total size on disk: artifacts,
// sensitivity vectors, and head pointers — the same set eviction
// accounts against MaxBytes.
func (s *Store) SizeBytes() int64 {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		switch filepath.Ext(de.Name()) {
		case ext, headExt, sensExt:
			if info, err := de.Info(); err == nil {
				total += info.Size()
			}
		}
	}
	return total
}

// GetPlan and PutPlan make *Store a sweep.PlanStore: the engine's
// second-level cache behind its in-memory LRU. GetPlan maps decode
// failures to errors (the engine counts them and recompiles) and clean
// misses to (nil, nil). The context carries the request's trace state
// so the restore span lands under the engine's "sweep.plan" span.
func (s *Store) GetPlan(ctx context.Context, res *core.Result) (*sweep.Plan, error) {
	_, plan, err := s.GetContext(ctx, res.Analyzer)
	return plan, err
}

// PutPlan persists the compiled plan (with its source result) under the
// design fingerprint.
func (s *Store) PutPlan(res *core.Result, p *sweep.Plan) error {
	return s.Put(res, p)
}
