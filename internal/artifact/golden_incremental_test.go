package artifact

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/graph"
	"seqavf/internal/graph/graphtest"
	"seqavf/internal/tinycore"
	"seqavf/internal/uarch"
	"seqavf/internal/workload"
)

// incrementalStep is one line of the golden edit script: which edit ran,
// what the incremental re-solver invalidated, how hard it worked, and
// where the design-level answer landed.
type incrementalStep struct {
	Edit           string   `json:"edit"`
	Desc           string   `json:"desc"`
	DirtyFubs      []string `json:"dirty_fubs"`
	FubsDirty      int      `json:"fubs_dirty"`
	FubsReused     int      `json:"fubs_reused"`
	Iterations     int      `json:"iterations"`
	Converged      bool     `json:"converged"`
	WeightedSeqAVF string   `json:"weighted_seq_avf"`
}

// dirtyFubNames recomputes which FUBs the fingerprint diff invalidates —
// the same comparison ResolveIncremental performs — so the golden can pin
// the dirty *set*, not just its size.
func dirtyFubNames(prior *core.PriorState, a *core.Analyzer) []string {
	byName := make(map[string]uint64, len(prior.Fubs))
	for _, f := range prior.Fubs {
		byName[f.Name] = f.Fingerprint
	}
	var dirty []string
	fps := a.FubFingerprints()
	for i, name := range a.G.FubNames {
		if fp, ok := byName[name]; !ok || fp != fps[i] {
			dirty = append(dirty, name)
		}
	}
	return dirty
}

// TestGoldenIncrementalEditScript drives a fixed edit script over the
// tinycore design, chaining each step's converged state into the next
// incremental re-solve, and pins the full trajectory — dirty sets,
// iteration counts, and the resulting weighted seqAVF — as a golden
// fixture. Behavioural drift in the fingerprint scheme, the frontier
// rule, or the solver itself shows up here as a diff instead of a silent
// accuracy change. Regenerate with -update.
func TestGoldenIncrementalEditScript(t *testing.T) {
	p := workload.MD5Like(60)
	fd, err := tinycore.FlatDesign(len(p.Code))
	if err != nil {
		t.Fatalf("FlatDesign: %v", err)
	}
	g, err := graph.Build(fd)
	if err != nil {
		t.Fatalf("graph.Build: %v", err)
	}
	a, err := core.NewAnalyzer(g, core.DefaultOptions())
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	perf, err := uarch.Run(p, uarch.DefaultConfig())
	if err != nil {
		t.Fatalf("uarch.Run: %v", err)
	}
	in, err := tinycore.BindInputs(perf.Report)
	if err != nil {
		t.Fatalf("BindInputs: %v", err)
	}
	res, err := a.SolvePartitioned(in)
	if err != nil {
		t.Fatalf("SolvePartitioned: %v", err)
	}

	// The script exercises every structural edit family tinycore's single
	// FUB supports, plus the no-op measurement step; each step re-solves
	// from the previous step's converged state.
	script := []struct {
		kind graphtest.EditKind
		seed uint64
	}{
		{graphtest.EditAddFlop, 11},
		{graphtest.EditRetimeCell, 22},
		{graphtest.EditRemoveFlop, 33},
		{graphtest.EditPavfOnly, 44},
	}
	var steps []incrementalStep
	for _, sc := range script {
		prior, err := res.PriorState()
		if err != nil {
			t.Fatalf("PriorState: %v", err)
		}
		var edit *graphtest.Edit
		fd, g, edit, err = graphtest.ApplyEditFlat(fd, g, sc.kind, sc.seed)
		if err != nil {
			t.Fatalf("%v seed %d: %v", sc.kind, sc.seed, err)
		}
		a, err = core.NewAnalyzer(g, core.DefaultOptions())
		if err != nil {
			t.Fatalf("edited analyzer: %v", err)
		}
		var st *core.Incremental
		res, st, err = a.ResolveIncremental(in, prior)
		if err != nil {
			t.Fatalf("ResolveIncremental (%s): %v", edit.Desc, err)
		}
		steps = append(steps, incrementalStep{
			Edit:           edit.Kind.String(),
			Desc:           edit.Desc,
			DirtyFubs:      dirtyFubNames(prior, a),
			FubsDirty:      st.FubsDirty,
			FubsReused:     st.FubsReused,
			Iterations:     st.Iterations,
			Converged:      st.Converged,
			WeightedSeqAVF: fmt.Sprintf("%.12f", res.Summarize().WeightedSeqAVF),
		})
	}

	got, err := json.MarshalIndent(steps, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "tinycore_edit_script.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden unreadable (regenerate: go test ./internal/artifact/ -run TestGoldenIncrementalEditScript -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("incremental edit-script trajectory changed:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
