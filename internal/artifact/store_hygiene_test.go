package artifact

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"seqavf/internal/obs"
)

func globCount(t *testing.T, dir, pattern string) int {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	return len(m)
}

// Evicting an artifact must also remove the head pointers naming it:
// before this fix, .head files leaked forever (eviction only considered
// .sart files) and a bounded store's real disk usage grew without
// bound on any workload that kept Putting fresh designs.
func TestEvictionSweepsHeads(t *testing.T) {
	dir := t.TempDir()
	_, res0, _ := buildSolved(t, 70, 1)
	probe, err := Encode(res0, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	st, err := Open(dir, Options{MaxBytes: int64(len(probe)) * 5 / 2, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(res0, nil); err != nil {
		t.Fatal(err)
	}
	// Age the first entry so it is the LRU victim.
	arts, _ := filepath.Glob(filepath.Join(dir, "*"+ext))
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(arts[0], past, past); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(71); seed <= 74; seed++ {
		_, res, _ := buildSolved(t, seed, 1)
		if err := st.Put(res, nil); err != nil {
			t.Fatal(err)
		}
	}
	sarts, heads := globCount(t, dir, "*"+ext), globCount(t, dir, "*"+headExt)
	if sarts >= 5 {
		t.Fatalf("no eviction happened: %d artifacts", sarts)
	}
	// Every surviving head must name a surviving artifact, and evicted
	// artifacts' heads must be gone: with one head per design, heads
	// cannot outnumber artifacts.
	if heads > sarts {
		t.Fatalf("%d head pointers for %d artifacts: evicted artifacts leaked their heads", heads, sarts)
	}
	if reg.Counter("artifact.head_evictions").Load() == 0 {
		t.Fatal("eviction removed artifacts but counted no head evictions")
	}
	for _, head := range globList(t, dir, "*"+headExt) {
		data, err := os.ReadFile(head)
		if err != nil {
			t.Fatal(err)
		}
		fp, ok := parseHead(data)
		if !ok {
			t.Fatalf("surviving head %s is malformed: %q", head, data)
		}
		if _, err := os.Stat(st.path(fp)); err != nil {
			t.Fatalf("surviving head %s dangles: %v", head, err)
		}
	}
}

func globList(t *testing.T, dir, pattern string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Orphaned heads — pointers left by artifacts deleted out from under
// the store — are swept by the next eviction pass.
func TestEvictionSweepsOrphanHeads(t *testing.T) {
	dir := t.TempDir()
	_, res, _ := buildSolved(t, 75, 1)
	probe, err := Encode(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{MaxBytes: int64(len(probe)) * 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(res, nil); err != nil {
		t.Fatal(err)
	}
	// Orphan the head: delete its artifact directly, and drop in a
	// corrupt head that parses to nothing.
	for _, p := range globList(t, dir, "*"+ext) {
		os.Remove(p)
	}
	if err := os.WriteFile(filepath.Join(dir, "feedfacefeedface"+headExt), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if globCount(t, dir, "*"+headExt) != 2 {
		t.Fatal("test setup: want 2 head files")
	}
	// Any Put triggers the sweep.
	_, res2, _ := buildSolved(t, 76, 1)
	if err := st.Put(res2, nil); err != nil {
		t.Fatal(err)
	}
	for _, head := range globList(t, dir, "*"+headExt) {
		data, err := os.ReadFile(head)
		if err != nil {
			t.Fatal(err)
		}
		fp, ok := parseHead(data)
		if !ok {
			t.Fatalf("head %s survived the sweep though malformed", head)
		}
		if _, err := os.Stat(st.path(fp)); err != nil {
			t.Fatalf("orphan head %s survived the sweep", head)
		}
	}
}

// SizeBytes must report what eviction accounts: artifacts plus heads.
func TestSizeBytesIncludesHeads(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, res, _ := buildSolved(t, 77, 1)
	if err := st.Put(res, nil); err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, p := range append(globList(t, dir, "*"+ext), globList(t, dir, "*"+headExt)...) {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		want += info.Size()
	}
	if got := st.SizeBytes(); got != want {
		t.Fatalf("SizeBytes = %d, want %d (artifacts + heads)", got, want)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (heads are not artifacts)", st.Len())
	}
}

// Open sweeps staging files stranded by a crash between CreateTemp and
// Rename — but only old ones; a concurrent writer's fresh tmp survives.
func TestOpenSweepsStaleTmp(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "put-stale123.tmp")
	fresh := filepath.Join(dir, "put-fresh456.tmp")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	if _, err := Open(dir, Options{Obs: reg}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale staging file survived Open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh staging file was swept — a live concurrent Put would lose its write")
	}
	if reg.Counter("artifact.tmp_sweeps").Load() != 1 {
		t.Fatalf("artifact.tmp_sweeps = %d, want 1", reg.Counter("artifact.tmp_sweeps").Load())
	}
}

// Prior must reject head pointers that are not exactly one 16-hex-digit
// token: the old Sscanf("%16x") parse accepted trailing garbage, so a
// torn write resolved to a wrong-but-well-formed fingerprint instead of
// the malformed-head error.
func TestPriorStrictHeadParse(t *testing.T) {
	_, res, _ := buildSolved(t, 78, 1)
	fpHex := "0000000000000000"
	for _, tc := range []struct {
		name    string
		payload string
	}{
		{"trailing garbage", fpHex + "garbage"},
		{"trailing newline", fpHex + "\n"},
		{"leading space", " " + fpHex},
		{"uppercase", strings.ToUpper("abcdef0000000000")},
		{"short", fpHex[:15]},
		{"long", fpHex + "0"},
		{"empty", ""},
		{"non-hex", "zzzzzzzzzzzzzzzz"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Put(res, nil); err != nil {
				t.Fatal(err)
			}
			name := res.Analyzer.G.Design.Name
			if err := os.WriteFile(st.headPath(name), []byte(tc.payload), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err = st.Prior(t.Context(), name)
			if err == nil || !strings.Contains(err.Error(), "malformed") {
				t.Fatalf("Prior with head %q = %v, want malformed-head error", tc.payload, err)
			}
		})
	}
}

// The canonical payload Put writes still parses.
func TestParseHeadAcceptsCanonical(t *testing.T) {
	fp, ok := parseHead([]byte("00c0ffee00c0ffee"))
	if !ok || fp != 0x00c0ffee00c0ffee {
		t.Fatalf("parseHead canonical = (%x, %v)", fp, ok)
	}
}
