package artifact

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"seqavf/internal/obs"
)

// peerFor serves one store's artifacts over the /v1/artifacts wire
// format, standing in for a seqavfd replica.
func peerFor(t *testing.T, st *Store) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/artifacts/{fingerprint}", func(w http.ResponseWriter, r *http.Request) {
		fp, err := strconv.ParseUint(r.PathValue("fingerprint"), 16, 64)
		if err != nil {
			http.Error(w, "bad fingerprint", http.StatusBadRequest)
			return
		}
		data, err := st.Raw(fp)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// A local miss pulls through the peer, verifies, and installs: the
// second Get is a local hit and the artifact survives on disk.
func TestRemotePullThroughInstalls(t *testing.T) {
	src, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, res, in := buildSolved(t, 60, 7)
	if err := src.Put(res, nil); err != nil {
		t.Fatal(err)
	}
	peer := peerFor(t, src)

	reg := obs.New()
	dst, err := Open(t.TempDir(), Options{
		Remote: &Remote{Peers: []string{peer.URL}},
		Obs:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, plan, err := dst.Get(a)
	if err != nil {
		t.Fatalf("remote Get: %v", err)
	}
	if got == nil || plan == nil {
		t.Fatal("remote Get missed though the peer holds the artifact")
	}
	if err := got.Reevaluate(in); err != nil {
		t.Fatal(err)
	}
	for v := range res.AVF {
		if got.AVF[v] != res.AVF[v] {
			t.Fatalf("vertex %d: remote AVF %v != original %v", v, got.AVF[v], res.AVF[v])
		}
	}
	if reg.Counter("artifact.remote_hits").Load() != 1 {
		t.Fatalf("artifact.remote_hits = %d, want 1", reg.Counter("artifact.remote_hits").Load())
	}
	if dst.Len() != 1 {
		t.Fatalf("pulled artifact not installed locally: Len = %d", dst.Len())
	}
	// Head pointer installed too: Prior works on the pulled store.
	ps, err := dst.Prior(t.Context(), res.Analyzer.G.Design.Name)
	if err != nil || ps == nil {
		t.Fatalf("Prior after pull-through = (%v, %v), want hit", ps, err)
	}
	// The second Get must not touch the network (peer closed).
	peer.Close()
	got2, _, err := dst.Get(freshAnalyzer(t, 60))
	if err != nil || got2 == nil {
		t.Fatalf("local Get after install = (%v, %v), want hit", got2, err)
	}
	if reg.Counter("artifact.remote_hits").Load() != 1 {
		t.Fatal("second Get consulted the remote tier again")
	}
}

// Peers without the artifact (and dead peers) degrade to a clean miss.
func TestRemoteMissAndDeadPeer(t *testing.T) {
	empty, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	peer := peerFor(t, empty)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	reg := obs.New()
	dst, err := Open(t.TempDir(), Options{
		Remote: &Remote{
			Peers:  []string{peer.URL, dead.URL},
			Client: &http.Client{Timeout: time.Second},
		},
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _, _ := buildSolved(t, 61, 7)
	got, plan, err := dst.Get(a)
	if err != nil || got != nil || plan != nil {
		t.Fatalf("fleet-wide miss = (%v, %v, %v), want clean miss", got, plan, err)
	}
	if reg.Counter("artifact.remote_misses").Load() != 1 {
		t.Fatalf("artifact.remote_misses = %d, want 1", reg.Counter("artifact.remote_misses").Load())
	}
	if reg.Counter("artifact.remote_errors").Load() != 1 {
		t.Fatalf("artifact.remote_errors = %d, want 1 (the dead peer)", reg.Counter("artifact.remote_errors").Load())
	}
}

// A peer serving corrupt bytes must not poison the local store: the
// fetch fails verification, counts an error, and the next peer serves
// the good copy.
func TestRemoteCorruptPeerRejected(t *testing.T) {
	src, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, res, _ := buildSolved(t, 62, 7)
	if err := src.Put(res, nil); err != nil {
		t.Fatal(err)
	}
	good := peerFor(t, src)

	var evilServed atomic.Int64
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		evilServed.Add(1)
		data, err := src.Raw(res.Analyzer.Fingerprint())
		if err != nil {
			http.NotFound(w, r)
			return
		}
		data[len(data)/2] ^= 0xFF
		w.Write(data)
	}))
	t.Cleanup(evil.Close)

	reg := obs.New()
	dst, err := Open(t.TempDir(), Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic peer order for the test: corrupt peer first.
	dst.SetRemote(&Remote{Peers: []string{evil.URL}})
	if got, _, err := dst.Get(a); err != nil || got != nil {
		t.Fatalf("corrupt-only fleet Get = (%v, %v), want clean miss", got, err)
	}
	if evilServed.Load() == 0 {
		t.Fatal("test vacuous: corrupt peer never consulted")
	}
	if reg.Counter("artifact.remote_errors").Load() == 0 {
		t.Fatal("corrupt peer bytes not counted as artifact.remote_errors")
	}
	if dst.Len() != 0 {
		t.Fatal("corrupt bytes were installed locally")
	}
	// With the good peer behind the corrupt one, the fetch falls through
	// and succeeds.
	dst.SetRemote(&Remote{Peers: []string{evil.URL, good.URL}})
	got, _, err := dst.Get(freshAnalyzer(t, 62))
	if err != nil || got == nil {
		t.Fatalf("fallback past corrupt peer = (%v, %v), want hit", got, err)
	}
	if dst.Len() != 1 {
		t.Fatal("verified artifact not installed after fallback")
	}
}

// A store without a Remote never fabricates network traffic, and
// SetRemote(nil) disables an installed tier.
func TestRemoteDisabled(t *testing.T) {
	dst, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _, _ := buildSolved(t, 63, 7)
	if got, _, err := dst.Get(a); err != nil || got != nil {
		t.Fatalf("no-remote Get = (%v, %v), want clean miss", got, err)
	}
	var consulted atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		consulted.Add(1)
		http.NotFound(w, r)
	}))
	t.Cleanup(peer.Close)
	dst.SetRemote(&Remote{Peers: []string{peer.URL}})
	dst.SetRemote(nil)
	if got, _, err := dst.Get(a); err != nil || got != nil {
		t.Fatalf("cleared-remote Get = (%v, %v), want clean miss", got, err)
	}
	if consulted.Load() != 0 {
		t.Fatal("SetRemote(nil) did not disable the tier")
	}
}

// Raw serves exactly the stored bytes and misses with fs.ErrNotExist.
func TestRawRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, res, _ := buildSolved(t, 64, 7)
	want, err := Encode(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(res, nil); err != nil {
		t.Fatal(err)
	}
	got, err := st.Raw(res.Analyzer.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("Raw returned %d bytes differing from Encode's %d", len(got), len(want))
	}
	if _, err := st.Raw(res.Analyzer.Fingerprint() + 1); err == nil {
		t.Fatal("Raw of absent fingerprint succeeded")
	}
}
