// Sensitivity-vector side artifacts (.sens). A harden request's term
// gradient depends only on (design fingerprint, environment hash), so
// the pair names a tiny cacheable file alongside the design's .sart
// artifact. The store knows nothing of the payload — harden owns the
// CRC-checked codec — it just provides the same atomic-install,
// LRU-accounted persistence artifacts get. *Store implements
// harden.SensStore.

package artifact

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// sensExt names sensitivity-vector files; the key is the design
// fingerprint plus the environment hash the gradient was evaluated
// under.
const sensExt = ".sens"

func (s *Store) sensPath(fp, envHash uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%016x-%016x%s", fp, envHash, sensExt))
}

// GetSens returns the cached sensitivity vector for (fp, envHash), or
// (nil, nil) on a clean miss. Payload integrity is the caller's job
// (harden.DecodeVector is CRC-checked); a corrupt file surfaces there
// and the recompute's PutSens overwrites it.
func (s *Store) GetSens(fp, envHash uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(s.sensPath(fp, envHash))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		s.opts.Obs.Counter("artifact.store_errors").Inc()
		return nil, fmt.Errorf("artifact: reading sensitivity vector: %w", err)
	}
	// Freshen mtime so a hot vector survives LRU eviction, mirroring how
	// artifact reads keep warm entries alive.
	now := time.Now()
	_ = os.Chtimes(s.sensPath(fp, envHash), now, now)
	return data, nil
}

// PutSens installs a sensitivity vector via the store's atomic
// temp+rename protocol, then re-evicts: .sens files count against
// MaxBytes and age out of the same LRU as artifacts.
func (s *Store) PutSens(fp, envHash uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.sensPath(fp, envHash)
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("artifact: staging sensitivity write: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmp.Name(), 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		s.opts.Obs.Counter("artifact.store_errors").Inc()
		return fmt.Errorf("artifact: writing %s: %w", path, werr)
	}
	s.opts.Obs.Counter("artifact.sens_puts").Inc()
	if s.opts.MaxBytes > 0 {
		s.evictLocked(filepath.Base(path))
	}
	return nil
}
