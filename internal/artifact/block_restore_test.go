package artifact

import (
	"math"
	"testing"

	"seqavf/internal/core"
	"seqavf/internal/sweep"
)

// TestRestoredPlanBlockBitIdentity: a plan restored from a decoded
// artifact must drive the blocked kernel exactly like a freshly compiled
// plan — Restore rebuilds the same pair-dedup and run-length broadcast
// tables Compile builds, so the warm-start path gets the SoA kernel with
// no arithmetic drift. Checked over seeded designs, against both the
// fresh plan's EvalBlockInto and the scalar Eval reference, bit for bit.
func TestRestoredPlanBlockBitIdentity(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a1, res, in := buildSolved(t, seed, seed^0xc0ffee)
		fresh, err := sweep.Compile(res)
		if err != nil {
			t.Fatalf("seed %d: Compile: %v", seed, err)
		}
		data, err := Encode(res, nil)
		if err != nil {
			t.Fatalf("seed %d: Encode: %v", seed, err)
		}
		// Decode against a fresh analyzer, as a restarted daemon would.
		a2 := freshAnalyzer(t, seed)
		_, restored, err := Decode(data, a2)
		if err != nil {
			t.Fatalf("seed %d: Decode: %v", seed, err)
		}

		// A ragged 3-workload block through both plans (block width would
		// be 4+ in the engine; EvalBlockInto takes whatever slice it gets).
		ws := []sweep.Workload{
			{Name: "w0", Inputs: in},
			{Name: "w1", Inputs: seededInputs(a1, seed^0xabad1dea)},
			{Name: "w2", Inputs: seededInputs(a1, seed*131+7)},
		}
		fromFresh := make([]*core.Result, len(ws))
		if err := fresh.EvalBlockInto(ws, nil, nil, fromFresh); err != nil {
			t.Fatalf("seed %d: fresh EvalBlockInto: %v", seed, err)
		}
		fromRestored := make([]*core.Result, len(ws))
		if err := restored.EvalBlockInto(ws, nil, nil, fromRestored); err != nil {
			t.Fatalf("seed %d: restored EvalBlockInto: %v", seed, err)
		}
		for i, w := range ws {
			scalar, err := fresh.Eval(w.Inputs, nil)
			if err != nil {
				t.Fatalf("seed %d: scalar Eval(%s): %v", seed, w.Name, err)
			}
			for v := range scalar.AVF {
				rb := math.Float64bits(fromRestored[i].AVF[v])
				fb := math.Float64bits(fromFresh[i].AVF[v])
				sb := math.Float64bits(scalar.AVF[v])
				if rb != fb || rb != sb {
					t.Fatalf("seed %d workload %s vertex %d: restored-block %v, fresh-block %v, scalar %v",
						seed, w.Name, v, fromRestored[i].AVF[v], fromFresh[i].AVF[v], scalar.AVF[v])
				}
			}
		}
	}
}
