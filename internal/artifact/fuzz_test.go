package artifact

import (
	"sync"
	"testing"

	"seqavf/internal/core"
)

// fuzzTarget lazily builds one fixed analyzer (and a valid artifact for
// it) shared by every fuzz execution: the decoder's design-side inputs
// are constant so the corpus explores only the byte format.
var (
	fuzzOnce sync.Once
	fuzzAn   *core.Analyzer
	fuzzSeed []byte
	fuzzErr  error
)

func fuzzSetup(t testing.TB) (*core.Analyzer, []byte) {
	fuzzOnce.Do(func() {
		a, res, _ := buildSolved(t, 12, 34)
		fuzzAn = a
		fuzzSeed, fuzzErr = Encode(res, nil)
	})
	if fuzzErr != nil {
		t.Fatalf("building fuzz seed artifact: %v", fuzzErr)
	}
	return fuzzAn, fuzzSeed
}

// FuzzDecodeArtifact feeds arbitrary bytes to the artifact decoder:
// every input must either decode into a structurally valid result+plan
// or fail with a clean error — never panic, and never allocate
// proportionally to a declared (attacker-controlled) length rather than
// the actual input size. Seeds include a fully valid artifact so the
// mutator starts deep inside the format instead of dying on the magic.
func FuzzDecodeArtifact(f *testing.F) {
	a, valid := fuzzSetup(f)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid)
	// A truncated and a bit-flipped variant seed the interesting error
	// paths directly.
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		res, plan, err := Decode(data, a)
		if err != nil {
			if res != nil || plan != nil {
				t.Fatal("Decode returned partial results alongside an error")
			}
			return
		}
		// Accepted artifacts must be fully usable: a decoded result
		// carries one equation and one in-range AVF per vertex, and its
		// plan evaluates without panicking.
		n := a.G.NumVerts()
		if len(res.AVF) != n || len(res.Exprs) != n || len(res.Visited) != n {
			t.Fatalf("accepted artifact has %d AVFs / %d equations / %d visited for %d vertices",
				len(res.AVF), len(res.Exprs), len(res.Visited), n)
		}
		for v, avf := range res.AVF {
			if !(avf >= 0 && avf <= 1) {
				t.Fatalf("accepted artifact vertex %d AVF %v out of [0,1]", v, avf)
			}
		}
		if plan.NumVerts() != n {
			t.Fatalf("accepted plan covers %d of %d vertices", plan.NumVerts(), n)
		}
		if _, err := plan.Eval(res.Inputs, nil); err != nil {
			t.Fatalf("accepted plan failed to evaluate its own inputs: %v", err)
		}
	})
}
