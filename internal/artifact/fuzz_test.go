package artifact

import (
	"errors"
	"sync"
	"testing"

	"seqavf/internal/core"
)

// fuzzTarget lazily builds one fixed analyzer (and a valid artifact for
// it) shared by every fuzz execution: the decoder's design-side inputs
// are constant so the corpus explores only the byte format.
var (
	fuzzOnce sync.Once
	fuzzAn   *core.Analyzer
	fuzzSeed []byte
	fuzzErr  error
)

func fuzzSetup(t testing.TB) (*core.Analyzer, []byte) {
	fuzzOnce.Do(func() {
		a, res, _ := buildSolved(t, 12, 34)
		fuzzAn = a
		fuzzSeed, fuzzErr = Encode(res, nil)
	})
	if fuzzErr != nil {
		t.Fatalf("building fuzz seed artifact: %v", fuzzErr)
	}
	return fuzzAn, fuzzSeed
}

// FuzzDecodeArtifact feeds arbitrary bytes to the artifact decoder:
// every input must either decode into a structurally valid result+plan
// or fail with a clean error — never panic, and never allocate
// proportionally to a declared (attacker-controlled) length rather than
// the actual input size. Seeds include a fully valid artifact so the
// mutator starts deep inside the format instead of dying on the magic.
func FuzzDecodeArtifact(f *testing.F) {
	a, valid := fuzzSetup(f)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid)
	// A truncated and a bit-flipped variant seed the interesting error
	// paths directly.
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		res, plan, err := Decode(data, a)
		if err != nil {
			if res != nil || plan != nil {
				t.Fatal("Decode returned partial results alongside an error")
			}
			return
		}
		// Accepted artifacts must be fully usable: a decoded result
		// carries one equation and one in-range AVF per vertex, and its
		// plan evaluates without panicking.
		n := a.G.NumVerts()
		if len(res.AVF) != n || len(res.Exprs) != n || len(res.Visited) != n {
			t.Fatalf("accepted artifact has %d AVFs / %d equations / %d visited for %d vertices",
				len(res.AVF), len(res.Exprs), len(res.Visited), n)
		}
		for v, avf := range res.AVF {
			if !(avf >= 0 && avf <= 1) {
				t.Fatalf("accepted artifact vertex %d AVF %v out of [0,1]", v, avf)
			}
		}
		if plan.NumVerts() != n {
			t.Fatalf("accepted plan covers %d of %d vertices", plan.NumVerts(), n)
		}
		if _, err := plan.Eval(res.Inputs, nil); err != nil {
			t.Fatalf("accepted plan failed to evaluate its own inputs: %v", err)
		}
	})
}

// FuzzDecodeFUBState feeds arbitrary bytes to the prior-state decoder —
// the path that must survive artifacts written by crashed processes,
// older binaries, and eviction races. Every input must either decode
// into a self-consistent PriorState or fail with one of the explicit
// "regenerate" sentinel errors (ErrCorrupt / ErrFormatVersion) — never
// panic. Seeds cover the valid artifact plus truncated, bit-flipped,
// and version-skewed variants so the mutator starts on each error path.
func FuzzDecodeFUBState(f *testing.F) {
	_, valid := fuzzSetup(f)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[2*len(flipped)/3] ^= 0x40
	f.Add(flipped)
	// Version skew: a v1-era header (format version field at offset 8)
	// must be rejected up front, not misparsed section by section.
	skewed := append([]byte(nil), valid...)
	skewed[len(magic)] = 1
	f.Add(skewed)

	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := DecodePrior(data)
		if err != nil {
			if ps != nil {
				t.Fatal("DecodePrior returned partial state alongside an error")
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFormatVersion) {
				t.Fatalf("DecodePrior failed without a regenerate sentinel: %v", err)
			}
			return
		}
		// Accepted priors must be fully usable by ResolveIncremental: every
		// per-FUB index lands inside the set table (or is -1), the slices
		// agree on each FUB's vertex count, and AVFs are probabilities.
		if ps.Design == "" || ps.Universe == nil {
			t.Fatalf("accepted prior missing design name or universe: %+v", ps)
		}
		for _, fp := range ps.Fubs {
			if len(fp.FwdIdx) != len(fp.BwdIdx) || len(fp.FwdIdx) != len(fp.AVF) {
				t.Fatalf("FUB %s slice lengths disagree: %d fwd / %d bwd / %d avf",
					fp.Name, len(fp.FwdIdx), len(fp.BwdIdx), len(fp.AVF))
			}
			for i := range fp.FwdIdx {
				for _, idx := range [2]int32{fp.FwdIdx[i], fp.BwdIdx[i]} {
					if idx < -1 || int(idx) >= len(ps.Sets) {
						t.Fatalf("FUB %s vertex %d set index %d outside table of %d", fp.Name, i, idx, len(ps.Sets))
					}
				}
				if !(fp.AVF[i] >= 0 && fp.AVF[i] <= 1) {
					t.Fatalf("FUB %s vertex %d AVF %v out of [0,1]", fp.Name, i, fp.AVF[i])
				}
			}
		}
		for _, s := range ps.Sets {
			for _, id := range s.IDs() {
				if int(id) >= ps.Universe.Len() {
					t.Fatalf("set term %d outside universe of %d", id, ps.Universe.Len())
				}
			}
		}
	})
}
