package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("forked streams with different labels should differ")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64MeanRoughlyHalf(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered %d values, want 7", len(seen))
	}
}

// TestIntnUnbiasedLargeN: the old Uint64()%n implementation was
// modulo-biased — for n = 3·2^61, values in [0, 2^62) have three 64-bit
// preimages while the rest have two, so 3/4 of draws land below 2^62
// instead of the uniform 2/3. Lemire rejection sampling must keep the
// fraction at 2/3.
func TestIntnUnbiasedLargeN(t *testing.T) {
	r := New(13)
	const n = 3 << 61
	const draws = 30000
	low := 0
	for i := 0; i < draws; i++ {
		if r.Intn(n) < 1<<62 {
			low++
		}
	}
	frac := float64(low) / draws
	// Uniform: 2/3 ± ~7σ (σ ≈ 0.0027). The modulo-biased draw gives 3/4.
	if math.Abs(frac-2.0/3) > 0.02 {
		t.Fatalf("Intn(3<<61): %.4f of draws below 2^62, want ~0.667 (modulo bias gives 0.75)", frac)
	}
}

// TestIntnSmallNUniform: a coarse chi-square check over a non-power-of-two
// small n; mostly guards the rejection fast path's hi extraction.
func TestIntnSmallNUniform(t *testing.T) {
	r := New(17)
	const n, draws = 7, 70000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expect := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	// 6 degrees of freedom: P(chi2 > 22.5) < 0.001.
	if chi2 > 22.5 {
		t.Fatalf("Intn(7) chi-square %.1f over %v, want < 22.5", chi2, counts)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestPoissonMean(t *testing.T) {
	r := New(9)
	for _, lambda := range []float64{0.5, 4, 50, 1000} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		tol := 4 * math.Sqrt(lambda/n) * math.Sqrt(lambda) // ~4 sigma of the mean
		if tol < 0.05 {
			tol = 0.05
		}
		if math.Abs(mean-lambda) > tol+0.05*lambda {
			t.Errorf("Poisson(%v) sample mean %v too far off", lambda, mean)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	r := New(1)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm(10, 2)
	}
	if m := Mean(xs); math.Abs(m-10) > 0.05 {
		t.Fatalf("norm mean = %v, want ~10", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 0.05 {
		t.Fatalf("norm stddev = %v, want ~2", s)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestMeanAndWeightedMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
	got := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("WeightedMean = %v, want 2.5", got)
	}
	if got := WeightedMean(nil, nil); got != 0 {
		t.Fatalf("WeightedMean(empty) = %v", got)
	}
}

func TestStdDevSmall(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Fatalf("StdDev single = %v", got)
	}
	got := StdDev([]float64{2, 4})
	if math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Fatalf("StdDev = %v, want sqrt(2)", got)
	}
}

func TestPoissonCI(t *testing.T) {
	iv := PoissonCI(100, 10)
	if iv.Point != 10 {
		t.Fatalf("point = %v, want 10", iv.Point)
	}
	if !iv.Contains(10) {
		t.Fatal("interval should contain its own point")
	}
	if iv.Lo >= iv.Hi {
		t.Fatal("degenerate interval")
	}
	zero := PoissonCI(0, 10)
	if zero.Point != 0 || zero.Hi <= 0 {
		t.Fatalf("zero-count interval wrong: %+v", zero)
	}
}

func TestBinomialCI(t *testing.T) {
	iv := BinomialCI(50, 100)
	if math.Abs(iv.Point-0.5) > 1e-12 {
		t.Fatalf("point = %v", iv.Point)
	}
	if iv.Lo < 0 || iv.Hi > 1 {
		t.Fatalf("interval out of [0,1]: %+v", iv)
	}
	all := BinomialCI(10, 10)
	if all.Hi != 1 {
		t.Fatalf("k==n interval should cap at 1: %+v", all)
	}
}

// Property: Bool(p) empirical frequency tracks p.
func TestBoolFrequency(t *testing.T) {
	r := New(99)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		f := float64(hits) / n
		if math.Abs(f-p) > 0.02 {
			t.Errorf("Bool(%v) frequency = %v", p, f)
		}
	}
}

// Property-based: Range always lands inside [lo, hi).
func TestRangeProperty(t *testing.T) {
	r := New(123)
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(a)+float64(b)+1
		v := r.Range(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
